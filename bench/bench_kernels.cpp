// Compute-kernel microbenchmark: the naive single-threaded matmul vs
// the cache-blocked, thread-pooled kernel (numeric/kernels.hpp) on the
// matrix shapes the Table I CNN actually produces, plus a larger
// square product where blocking has room to work.
//
// Shapes (batch 10, the paper's SGD batch size):
//   conv im2col   [5 x 25]    * [25 x 1960]   (5x5 kernel, 14x14 out)
//   dense 980x100 [100 x 980] * [980 x 10]
//   dense 100x10  [10 x 100]  * [100 x 10]
//   square 384    [384 x 384] * [384 x 384]   (cache-resident reference)
//   square 1024   (B is 8 MB — exceeds L2, where blocking pays off)
//
// Reported metric is GFLOP-equivalent throughput (2*m*k*n multiply-add
// "flops" per second — for the ring kernels these are 64-bit integer
// operations, counted the same way so the columns compare).  Each
// variant runs on both domains: Z_{2^64} (RingTensor, the share
// domain) and double (the plaintext engine).
//
// Ring results are asserted bit-identical between naive and blocked at
// every thread count before timing — a bench that measured a wrong
// kernel would be worse than no bench.
//
// Flags: --threads=N   thread count for the parallel column (default 4)
//        --json=PATH   write the machine-readable snapshot committed
//                      as BENCH_kernels.json at the repo root
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "numeric/kernels.hpp"
#include "numeric/tensor.hpp"

using namespace trustddl;

namespace {

struct ShapeCase {
  std::string name;
  std::size_t m, k, n;
};

const std::vector<ShapeCase> kShapes = {
    {"cnn_conv_im2col_b10", 5, 25, 1960},
    {"cnn_dense_980x100_b10", 100, 980, 10},
    {"cnn_dense_100x10_b10", 10, 100, 10},
    {"square_384", 384, 384, 384},
    {"square_1024", 1024, 1024, 1024},
};

double gflops(const ShapeCase& shape, double seconds) {
  return 2.0 * static_cast<double>(shape.m) * static_cast<double>(shape.k) *
         static_cast<double>(shape.n) / seconds / 1e9;
}

/// Best-of-repetitions timing of `fn`, auto-scaling the inner
/// iteration count so each repetition runs at least ~20 ms.
template <typename Fn>
double time_best_seconds(const Fn& fn) {
  // Warm up + calibrate.
  Stopwatch calibrate;
  fn();
  const double once = calibrate.elapsed_seconds();
  const int iters = once > 0.02 ? 1 : static_cast<int>(0.02 / (once + 1e-9)) + 1;
  double best = 1e100;
  for (int rep = 0; rep < 5; ++rep) {
    Stopwatch watch;
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    best = std::min(best, watch.elapsed_seconds() / iters);
  }
  return best;
}

RingTensor random_ring(const Shape& shape, Rng& rng) {
  RingTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_u64();
  }
  return out;
}

RealTensor random_real(const Shape& shape, Rng& rng) {
  RealTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_double(-2.0, 2.0);
  }
  return out;
}

std::string arg_string(int argc, char** argv, const std::string& key) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

struct CaseResult {
  ShapeCase shape;
  // seconds per product
  double ring_naive, ring_blocked_1t, ring_blocked_nt;
  double real_naive, real_blocked_1t, real_blocked_nt;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = bench::arg_size(argc, argv, "threads", 4);
  const std::string json_path = arg_string(argc, argv, "json");

  kernels::KernelConfig serial;
  serial.threads = 1;
  kernels::KernelConfig parallel;
  parallel.threads = static_cast<int>(threads);

  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("=== Compute kernels: naive vs blocked matmul ===\n");
  std::printf("hardware_concurrency=%u, parallel column uses %zu thread(s)\n\n",
              hardware, threads);
  std::printf("%-24s %14s %14s %14s %9s\n", "shape (GFLOP-equiv)",
              "naive 1t", "blocked 1t", "blocked Nt", "Nt/naive");

  Rng rng(4242);
  std::vector<CaseResult> results;
  for (const ShapeCase& shape : kShapes) {
    const RingTensor ra = random_ring(Shape{shape.m, shape.k}, rng);
    const RingTensor rb = random_ring(Shape{shape.k, shape.n}, rng);
    const RealTensor da = random_real(Shape{shape.m, shape.k}, rng);
    const RealTensor db = random_real(Shape{shape.k, shape.n}, rng);

    // Correctness gate before timing: ring kernels must agree exactly.
    const RingTensor reference = kernels::matmul_naive(ra, rb);
    if (kernels::matmul_blocked(serial, ra, rb) != reference ||
        kernels::matmul_blocked(parallel, ra, rb) != reference) {
      std::fprintf(stderr, "FATAL: blocked ring kernel mismatch on %s\n",
                   shape.name.c_str());
      return 1;
    }

    CaseResult result;
    result.shape = shape;
    result.ring_naive =
        time_best_seconds([&] { (void)kernels::matmul_naive(ra, rb); });
    result.ring_blocked_1t = time_best_seconds(
        [&] { (void)kernels::matmul_blocked(serial, ra, rb); });
    result.ring_blocked_nt = time_best_seconds(
        [&] { (void)kernels::matmul_blocked(parallel, ra, rb); });
    result.real_naive =
        time_best_seconds([&] { (void)kernels::matmul_naive(da, db); });
    result.real_blocked_1t = time_best_seconds(
        [&] { (void)kernels::matmul_blocked(serial, da, db); });
    result.real_blocked_nt = time_best_seconds(
        [&] { (void)kernels::matmul_blocked(parallel, da, db); });
    results.push_back(result);

    std::printf("%-24s %14.3f %14.3f %14.3f %8.2fx  (ring)\n",
                shape.name.c_str(), gflops(shape, result.ring_naive),
                gflops(shape, result.ring_blocked_1t),
                gflops(shape, result.ring_blocked_nt),
                result.ring_naive / result.ring_blocked_nt);
    std::printf("%-24s %14.3f %14.3f %14.3f %8.2fx  (double)\n", "",
                gflops(shape, result.real_naive),
                gflops(shape, result.real_blocked_1t),
                gflops(shape, result.real_blocked_nt),
                result.real_naive / result.real_blocked_nt);
  }

  double ring_geomean = 1.0;
  for (const CaseResult& result : results) {
    ring_geomean *= result.ring_naive / result.ring_blocked_nt;
  }
  ring_geomean =
      std::pow(ring_geomean, 1.0 / static_cast<double>(results.size()));
  std::printf("\ngeomean ring speedup (blocked %zut vs naive 1t): %.2fx\n",
              threads, ring_geomean);
  if (hardware < threads) {
    std::printf("NOTE: only %u hardware thread(s) available — the %zu-thread "
                "column cannot exceed single-core throughput here.\n",
                hardware, threads);
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"hardware_concurrency\": %u,\n", hardware);
    std::fprintf(out, "  \"parallel_threads\": %zu,\n", threads);
    std::fprintf(out, "  \"metric\": \"gflop_equivalent_throughput\",\n");
    std::fprintf(out, "  \"ring_geomean_speedup_blocked_nt_vs_naive\": %.4f,\n",
                 ring_geomean);
    std::fprintf(out, "  \"shapes\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CaseResult& r = results[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"m\": %zu, \"k\": %zu, \"n\": %zu,\n"
                   "     \"ring\": {\"naive_1t\": %.4f, \"blocked_1t\": %.4f, "
                   "\"blocked_nt\": %.4f},\n"
                   "     \"double\": {\"naive_1t\": %.4f, \"blocked_1t\": %.4f, "
                   "\"blocked_nt\": %.4f}}%s\n",
                   r.shape.name.c_str(), r.shape.m, r.shape.k, r.shape.n,
                   gflops(r.shape, r.ring_naive),
                   gflops(r.shape, r.ring_blocked_1t),
                   gflops(r.shape, r.ring_blocked_nt),
                   gflops(r.shape, r.real_naive),
                   gflops(r.shape, r.real_blocked_1t),
                   gflops(r.shape, r.real_blocked_nt),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
