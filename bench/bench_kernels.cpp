// Compute-kernel microbenchmark: scalar vs SIMD matmul kernels and
// the auto-tuned dispatcher (numeric/kernels.hpp) on the matrix
// shapes the Table I CNN actually produces, plus the elementwise /
// digest micro-kernels the protocols lean on.
//
// Matmul shapes (batch 10, the paper's SGD batch size):
//   conv im2col   [5 x 25]    * [25 x 1960]   (5x5 kernel, 14x14 out)
//   dense 980x100 [100 x 980] * [980 x 10]
//   dense 100x10  [10 x 100]  * [100 x 10]
//   square 384    [384 x 384] * [384 x 384]   (cache-resident reference)
//   square 1024   (B is 8 MB — exceeds L2, where blocking pays off)
//
// Every number is a per-iteration time distribution: warm-up, then
// `--trials` independent repetitions summarized as median/P95/CV
// (bench_util.hpp).  The table prints GFLOP-equivalent throughput
// derived from the median (2*m*k*n multiply-add "flops" per second —
// for the ring kernels these are 64-bit integer operations, counted
// the same way so the columns compare); the JSON keeps the raw
// distributions so scripts/check_bench.py can separate a real
// regression from a noisy run.
//
// Columns per shape and domain (Z_{2^64} ring and double):
//   naive(scalar)  — PR-3 baseline: serial naive matmul, SIMD forced off
//   naive(simd)    — same kernel with the detected SIMD backend
//   blocked 1t     — cache-blocked kernel, serial, SIMD on
//   blocked Nt     — cache-blocked kernel on the thread pool (skipped
//                    when the container only exposes one hardware
//                    thread: a serial pool makes the column noise)
//   dispatch       — kernels::matmul, i.e. the auto-tuned crossover the
//                    protocols actually call
//
// Ring results are asserted bit-identical across every kernel and
// backend before timing — a bench that measured a wrong kernel would
// be worse than no bench.
//
// Flags: --threads=N  thread count for the pooled column (default 4)
//        --trials=N   timed repetitions per measurement (default 9)
//        --json=PATH  write the machine-readable snapshot committed
//                     as BENCH_kernels.json at the repo root
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/sha256.hpp"
#include "numeric/kernels.hpp"
#include "numeric/simd.hpp"
#include "numeric/tensor.hpp"

using namespace trustddl;

namespace {

struct ShapeCase {
  std::string name;
  std::size_t m, k, n;
};

const std::vector<ShapeCase> kShapes = {
    {"cnn_conv_im2col_b10", 5, 25, 1960},
    {"cnn_dense_980x100_b10", 100, 980, 10},
    {"cnn_dense_100x10_b10", 10, 100, 10},
    {"square_384", 384, 384, 384},
    {"square_1024", 1024, 1024, 1024},
};

double gflops(const ShapeCase& shape, double seconds) {
  return 2.0 * static_cast<double>(shape.m) * static_cast<double>(shape.k) *
         static_cast<double>(shape.n) / seconds / 1e9;
}

RingTensor random_ring(const Shape& shape, Rng& rng) {
  RingTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_u64();
  }
  return out;
}

RealTensor random_real(const Shape& shape, Rng& rng) {
  RealTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_double(-2.0, 2.0);
  }
  return out;
}

std::string arg_string(int argc, char** argv, const std::string& key) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

/// Distribution columns for one matmul shape in one domain.
struct MatmulStats {
  bench::TrialStats naive_scalar;
  bench::TrialStats naive_simd;
  bench::TrialStats blocked_1t;
  bench::TrialStats blocked_nt;  // valid only when !pool_serial
  bench::TrialStats dispatch;
};

struct CaseResult {
  ShapeCase shape;
  MatmulStats ring;
  MatmulStats real;
};

/// One elementwise/digest micro-kernel, scalar vs SIMD.
struct MicroResult {
  std::string name;
  std::size_t bytes;  // working-set description for the report
  bench::TrialStats scalar;
  bench::TrialStats simd;
  double speedup() const { return scalar.median_s / simd.median_s; }
};

void print_json_stats(std::FILE* out, const char* key,
                      const bench::TrialStats& stats, bool valid,
                      const char* trailer) {
  if (valid) {
    std::fprintf(out,
                 "\"%s\": {\"median_s\": %.6e, \"p95_s\": %.6e, "
                 "\"cv\": %.4f, \"trials\": %d}%s",
                 key, stats.median_s, stats.p95_s, stats.cv, stats.trials,
                 trailer);
  } else {
    std::fprintf(out, "\"%s\": null%s", key, trailer);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = bench::arg_size(argc, argv, "threads", 4);
  const int trials =
      static_cast<int>(bench::arg_size(argc, argv, "trials", 9));
  const std::string json_path = arg_string(argc, argv, "json");

  kernels::KernelConfig serial;
  serial.threads = 1;
  kernels::KernelConfig parallel;
  parallel.threads = static_cast<int>(threads);

  const unsigned hardware = std::thread::hardware_concurrency();
  // hardware_concurrency()==1 is a real container configuration (the
  // CI sandbox): a 4-thread pool then timeslices one core and the
  // pooled column only measures scheduler noise — skip it.
  const bool pool_serial = hardware <= 1;
  const simd::Backend simd_backend = simd::active_backend();
  const char* backend = simd::backend_name(simd_backend);

  std::printf("=== Compute kernels: scalar vs %s, naive/blocked/dispatch ===\n",
              backend);
  std::printf(
      "hardware_concurrency=%u, pool threads=%zu%s, trials=%d, "
      "sha_ni=%s, matmul cutoff=%zu bytes\n\n",
      hardware, threads,
      pool_serial ? " (serial pool — Nt columns skipped)" : "", trials,
      simd::cpu_has_sha_ni() ? "yes" : "no",
      kernels::effective_matmul_cutoff_bytes(serial));

  const auto time_backend = [&](simd::Backend b, const auto& fn) {
    simd::force_backend(b);
    const bench::TrialStats stats = bench::run_trials(fn, trials);
    simd::clear_forced_backend();
    return stats;
  };

  std::printf("%-24s %13s %13s %13s %13s %13s\n", "shape (GFLOP-equiv)",
              "naive scalar", "naive simd", "blocked 1t", "blocked Nt",
              "dispatch");

  Rng rng(4242);
  std::vector<CaseResult> results;
  for (const ShapeCase& shape : kShapes) {
    const RingTensor ra = random_ring(Shape{shape.m, shape.k}, rng);
    const RingTensor rb = random_ring(Shape{shape.k, shape.n}, rng);
    const RealTensor da = random_real(Shape{shape.m, shape.k}, rng);
    const RealTensor db = random_real(Shape{shape.k, shape.n}, rng);

    // Correctness gate before timing: every ring kernel must agree
    // exactly with the scalar naive reference, on every backend.
    simd::force_backend(simd::Backend::kScalar);
    const RingTensor reference = kernels::matmul_naive(ra, rb);
    simd::clear_forced_backend();
    if (kernels::matmul_naive(ra, rb) != reference ||
        kernels::matmul_blocked(serial, ra, rb) != reference ||
        kernels::matmul_blocked(parallel, ra, rb) != reference ||
        kernels::matmul(serial, ra, rb) != reference ||
        kernels::matmul(parallel, ra, rb) != reference) {
      std::fprintf(stderr, "FATAL: ring kernel mismatch on %s\n",
                   shape.name.c_str());
      return 1;
    }

    CaseResult result;
    result.shape = shape;
    result.ring.naive_scalar = time_backend(simd::Backend::kScalar, [&] {
      bench::do_not_optimize(kernels::matmul_naive(ra, rb)[0]);
    });
    result.ring.naive_simd = time_backend(simd_backend, [&] {
      bench::do_not_optimize(kernels::matmul_naive(ra, rb)[0]);
    });
    result.ring.blocked_1t = time_backend(simd_backend, [&] {
      bench::do_not_optimize(kernels::matmul_blocked(serial, ra, rb)[0]);
    });
    if (!pool_serial) {
      result.ring.blocked_nt = time_backend(simd_backend, [&] {
        bench::do_not_optimize(kernels::matmul_blocked(parallel, ra, rb)[0]);
      });
    }
    result.ring.dispatch = time_backend(simd_backend, [&] {
      bench::do_not_optimize(kernels::matmul(serial, ra, rb)[0]);
    });

    result.real.naive_scalar = time_backend(simd::Backend::kScalar, [&] {
      bench::do_not_optimize(kernels::matmul_naive(da, db)[0]);
    });
    result.real.naive_simd = time_backend(simd_backend, [&] {
      bench::do_not_optimize(kernels::matmul_naive(da, db)[0]);
    });
    result.real.blocked_1t = time_backend(simd_backend, [&] {
      bench::do_not_optimize(kernels::matmul_blocked(serial, da, db)[0]);
    });
    if (!pool_serial) {
      result.real.blocked_nt = time_backend(simd_backend, [&] {
        bench::do_not_optimize(kernels::matmul_blocked(parallel, da, db)[0]);
      });
    }
    result.real.dispatch = time_backend(simd_backend, [&] {
      bench::do_not_optimize(kernels::matmul(serial, da, db)[0]);
    });
    results.push_back(result);

    const auto print_row = [&](const char* tag, const MatmulStats& stats) {
      char nt_column[32];
      if (pool_serial) {
        std::snprintf(nt_column, sizeof(nt_column), "%13s", "-");
      } else {
        std::snprintf(nt_column, sizeof(nt_column), "%13.3f",
                      gflops(shape, stats.blocked_nt.median_s));
      }
      std::printf("%-24s %13.3f %13.3f %13.3f %s %13.3f  (%s)\n",
                  tag == std::string("ring") ? shape.name.c_str() : "",
                  gflops(shape, stats.naive_scalar.median_s),
                  gflops(shape, stats.naive_simd.median_s),
                  gflops(shape, stats.blocked_1t.median_s), nt_column,
                  gflops(shape, stats.dispatch.median_s), tag);
    };
    print_row("ring", result.ring);
    print_row("double", result.real);
  }

  // The acceptance headline: the dispatcher (what the protocols call)
  // against the PR-3 baseline (serial naive matmul without SIMD).
  double ring_geomean = 1.0;
  for (const CaseResult& result : results) {
    ring_geomean *=
        result.ring.naive_scalar.median_s / result.ring.dispatch.median_s;
  }
  ring_geomean =
      std::pow(ring_geomean, 1.0 / static_cast<double>(results.size()));
  std::printf("\ngeomean ring speedup (dispatch vs scalar naive 1t): %.2fx\n",
              ring_geomean);

  // ---- Elementwise / digest micro-kernels: scalar vs SIMD. ----
  // 512 u64 per operand: all three operands sit inside L1 (so the
  // columns measure the kernels, not the memory system) and the length
  // matches the per-row spans the matmul/elementwise paths actually
  // sweep (n = 10..1960 on the Table I shapes).
  constexpr std::size_t kElems = 512;
  const RingTensor ma = random_ring(Shape{kElems}, rng);
  const RingTensor mb = random_ring(Shape{kElems}, rng);
  RingTensor mdst(Shape{kElems});
  std::vector<MicroResult> micro;

  const auto micro_case = [&](const std::string& name, std::size_t bytes,
                              const auto& fn) {
    MicroResult result;
    result.name = name;
    result.bytes = bytes;
    result.scalar = time_backend(simd::Backend::kScalar, fn);
    result.simd = time_backend(simd_backend, fn);
    micro.push_back(result);
  };

  micro_case("ring_add", kElems * 8, [&] {
    simd::ring_add(mdst.data(), ma.data(), mb.data(), kElems);
    bench::do_not_optimize(mdst[0]);
  });
  micro_case("ring_hadamard", kElems * 8, [&] {
    simd::ring_mul(mdst.data(), ma.data(), mb.data(), kElems);
    bench::do_not_optimize(mdst[0]);
  });
  micro_case("ring_truncate", kElems * 8, [&] {
    simd::ring_truncate(mdst.data(), ma.data(), 16, kElems);
    bench::do_not_optimize(mdst[0]);
  });
  micro_case("ring_axpy", kElems * 8, [&] {
    simd::ring_axpy(mdst.data(), 0x9E3779B97F4A7C15ull, ma.data(), kElems);
    bench::do_not_optimize(mdst[0]);
  });

  // Digest micro-kernels sized like the robust opening's per-component
  // commitment streams: three 64 KB messages hashed side by side, and
  // one long single-stream hash.
  Bytes sha_payload(3 * 65536);
  for (std::size_t i = 0; i < sha_payload.size(); ++i) {
    sha_payload[i] = static_cast<std::uint8_t>(rng.next_u64());
  }
  const std::vector<Bytes> sha_messages = {
      Bytes(sha_payload.begin(), sha_payload.begin() + 65536),
      Bytes(sha_payload.begin() + 65536, sha_payload.begin() + 2 * 65536),
      Bytes(sha_payload.begin() + 2 * 65536, sha_payload.end()),
  };
  micro_case("sha256_batch3_64KiB", sha_payload.size(), [&] {
    bench::do_not_optimize(sha256_batch(sha_messages)[0][0]);
  });
  micro_case("sha256_single_192KiB", sha_payload.size(), [&] {
    bench::do_not_optimize(Sha256::hash(sha_payload)[0]);
  });

  std::printf("\n%-24s %13s %13s %9s   (micro-kernels, GB/s)\n", "kernel",
              "scalar", backend, "speedup");
  double micro_geomean = 1.0;
  for (const MicroResult& result : micro) {
    const double gb = static_cast<double>(result.bytes) / 1e9;
    std::printf("%-24s %13.3f %13.3f %8.2fx\n", result.name.c_str(),
                gb / result.scalar.median_s, gb / result.simd.median_s,
                result.speedup());
    micro_geomean *= result.speedup();
  }
  micro_geomean =
      std::pow(micro_geomean, 1.0 / static_cast<double>(micro.size()));
  std::printf("geomean micro speedup (%s vs scalar): %.2fx\n", backend,
              micro_geomean);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"format\": \"trustddl.bench_kernels.v2\",\n");
    std::fprintf(out, "  \"hardware_concurrency\": %u,\n", hardware);
    std::fprintf(out, "  \"pool_threads\": %zu,\n", threads);
    std::fprintf(out, "  \"pool_serial\": %s,\n",
                 pool_serial ? "true" : "false");
    std::fprintf(out, "  \"simd_backend\": \"%s\",\n", backend);
    std::fprintf(out, "  \"sha_ni\": %s,\n",
                 simd::cpu_has_sha_ni() ? "true" : "false");
    std::fprintf(out, "  \"trials\": %d,\n", trials);
    std::fprintf(out, "  \"metric\": \"seconds_per_iteration\",\n");
    std::fprintf(out,
                 "  \"ring_geomean_speedup_dispatch_vs_scalar_naive\": "
                 "%.4f,\n",
                 ring_geomean);
    std::fprintf(out, "  \"micro_geomean_speedup_simd_vs_scalar\": %.4f,\n",
                 micro_geomean);
    std::fprintf(out, "  \"shapes\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CaseResult& r = results[i];
      std::fprintf(out, "    {\"name\": \"%s\", \"m\": %zu, \"k\": %zu, "
                        "\"n\": %zu,\n",
                   r.shape.name.c_str(), r.shape.m, r.shape.k, r.shape.n);
      const auto print_domain = [&](const char* key, const MatmulStats& s,
                                    const char* trailer) {
        std::fprintf(out, "     \"%s\": {", key);
        print_json_stats(out, "naive_scalar_1t", s.naive_scalar, true, ", ");
        print_json_stats(out, "naive_simd_1t", s.naive_simd, true, ",\n"
                                                                  "               ");
        print_json_stats(out, "blocked_1t", s.blocked_1t, true, ", ");
        print_json_stats(out, "blocked_nt", s.blocked_nt, !pool_serial,
                         ",\n               ");
        print_json_stats(out, "dispatch_1t", s.dispatch, true, "");
        std::fprintf(out, "}%s\n", trailer);
      };
      print_domain("ring", r.ring, ",");
      print_domain("double", r.real, i + 1 < results.size() ? "}," : "}");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"micro\": [\n");
    for (std::size_t i = 0; i < micro.size(); ++i) {
      const MicroResult& r = micro[i];
      std::fprintf(out, "    {\"name\": \"%s\", \"bytes\": %zu,\n     ",
                   r.name.c_str(), r.bytes);
      print_json_stats(out, "scalar", r.scalar, true, ", ");
      print_json_stats(out, "simd", r.simd, true, ",\n     ");
      std::fprintf(out, "\"speedup_simd_vs_scalar\": %.4f}%s\n", r.speedup(),
                   i + 1 < micro.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
