// Ablation: layer-wise cost split of the Table I network under the
// Byzantine-tolerant protocols (promised in DESIGN.md §3).
//
// Each layer operation runs in isolation across the three computing
// parties; the metered network gives its party-to-party protocol
// traffic (preprocessing material comes from an in-process dealer here
// and is excluded — Table II's end-to-end numbers include it).  The
// split shows where TrustDDL's cost lives: the FC-980x100 layer's
// Beaver mask openings dominate, exactly the term that makes TrustDDL
// orders of magnitude heavier than Falcon-style re-sharing designs.
#include <cstdio>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/secure_model.hpp"
#include "mpc/beaver.hpp"
#include "net/runtime.hpp"
#include "nn/layers.hpp"

using namespace trustddl;

namespace {

constexpr int kF = fx::kDefaultFracBits;

RealTensor random_real(const Shape& shape, Rng& rng, double bound) {
  RealTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_double(-bound, bound);
  }
  return out;
}

struct OpCost {
  double milliseconds = 0;
  double megabytes = 0;
  double messages = 0;
};

/// Run `body(ctx, party)` once per computing party and meter it.
template <typename Body>
OpCost measure(const Body& body) {
  net::Network network(net::NetworkConfig{.num_parties = 3});
  auto dealer = std::make_shared<mpc::SharedDealer>(7, kF);
  std::array<mpc::PartyContext, 3> contexts;
  for (int party = 0; party < 3; ++party) {
    auto& ctx = contexts[static_cast<std::size_t>(party)];
    ctx.endpoint = network.endpoint(party);
    ctx.party = party;
  }
  Stopwatch watch;
  net::run_parties(3, [&](net::PartyId party) {
    mpc::LocalTripleSource triples(dealer, party);
    core::SecureExecContext ctx;
    ctx.mpc = &contexts[static_cast<std::size_t>(party)];
    ctx.triples = &triples;
    ctx.trunc_mode = core::TruncationMode::kLocal;
    body(ctx, party);
  });
  const double wall = watch.elapsed_millis();
  const auto traffic = network.traffic();
  return OpCost{wall,
                static_cast<double>(traffic.total_bytes) / (1 << 20),
                static_cast<double>(traffic.total_messages)};
}

void print_row(const char* name, const OpCost& cost) {
  std::printf("%-26s %12.2f %12.3f %10.0f\n", name, cost.milliseconds,
              cost.megabytes, cost.messages);
}

}  // namespace

int main() {
  std::printf("=== Ablation: layer-wise protocol cost, Table I network, "
              "batch 1, malicious mode ===\n");
  std::printf("(party-to-party traffic only; dealing excluded here)\n\n");
  std::printf("%-26s %12s %12s %10s\n", "operation", "time (ms)",
              "comm (MB)", "messages");

  Rng rng(3);

  // --- Conv 5x5 pad 2 stride 2, 1 -> 5 channels, 28x28 input. ---
  ConvSpec conv;
  conv.in_channels = 1;
  conv.in_height = 28;
  conv.in_width = 28;
  conv.out_channels = 5;
  conv.kernel_h = 5;
  conv.kernel_w = 5;
  conv.pad = 2;
  conv.stride = 2;
  {
    const auto w = mpc::share_secret(
        to_ring(random_real(Shape{5, 25}, rng, 0.3), kF), rng);
    const auto b = mpc::share_secret(
        to_ring(random_real(Shape{5}, rng, 0.1), kF), rng);
    const auto x = mpc::share_secret(
        to_ring(random_real(Shape{1, 784}, rng, 0.5), kF), rng);
    const auto g = mpc::share_secret(
        to_ring(random_real(Shape{1, 980}, rng, 0.5), kF), rng);
    std::array<std::unique_ptr<core::SecureConv>, 3> layers;
    print_row("conv 5x5 forward", measure([&](core::SecureExecContext& ctx,
                                              int party) {
      const auto index = static_cast<std::size_t>(party);
      layers[index] = std::make_unique<core::SecureConv>(conv, w[index],
                                                         b[index]);
      (void)layers[index]->forward(ctx, x[index]);
    }));
    print_row("conv 5x5 backward",
              measure([&](core::SecureExecContext& ctx, int party) {
                (void)layers[static_cast<std::size_t>(party)]->backward(
                    ctx, g[static_cast<std::size_t>(party)]);
              }));
  }

  // --- ReLU(980). ---
  {
    const auto x = mpc::share_secret(
        to_ring(random_real(Shape{1, 980}, rng, 1.0), kF), rng);
    print_row("relu(980)", measure([&](core::SecureExecContext& ctx,
                                       int party) {
      core::SecureRelu relu;
      (void)relu.forward(ctx, x[static_cast<std::size_t>(party)]);
    }));
  }

  // --- MaxPool 2x2 over 5x28x28 (pooled-variant extension). ---
  {
    nn::PoolSpec pool;
    pool.channels = 5;
    pool.in_height = 28;
    pool.in_width = 28;
    pool.window = 2;
    const auto x = mpc::share_secret(
        to_ring(random_real(Shape{1, pool.in_features()}, rng, 1.0), kF),
        rng);
    print_row("maxpool 2x2 (5x28x28)",
              measure([&](core::SecureExecContext& ctx, int party) {
                core::SecureMaxPool layer(pool);
                (void)layer.forward(ctx,
                                    x[static_cast<std::size_t>(party)]);
              }));
  }

  // --- FC 980 -> 100 and FC 100 -> 10. ---
  const auto dense_rows = [&](std::size_t in, std::size_t out,
                              const char* fwd_name, const char* bwd_name) {
    const auto w = mpc::share_secret(
        to_ring(random_real(Shape{in, out}, rng, 0.1), kF), rng);
    const auto b = mpc::share_secret(
        to_ring(random_real(Shape{1, out}, rng, 0.05), kF), rng);
    const auto x = mpc::share_secret(
        to_ring(random_real(Shape{1, in}, rng, 0.5), kF), rng);
    const auto g = mpc::share_secret(
        to_ring(random_real(Shape{1, out}, rng, 0.5), kF), rng);
    std::array<std::unique_ptr<core::SecureDense>, 3> layers;
    print_row(fwd_name, measure([&](core::SecureExecContext& ctx,
                                    int party) {
      const auto index = static_cast<std::size_t>(party);
      layers[index] = std::make_unique<core::SecureDense>(w[index],
                                                          b[index]);
      (void)layers[index]->forward(ctx, x[index]);
    }));
    print_row(bwd_name, measure([&](core::SecureExecContext& ctx,
                                    int party) {
      (void)layers[static_cast<std::size_t>(party)]->backward(
          ctx, g[static_cast<std::size_t>(party)]);
    }));
  };
  dense_rows(980, 100, "fc 980->100 forward", "fc 980->100 backward");
  dense_rows(100, 10, "fc 100->10 forward", "fc 100->10 backward");

  std::printf("\nThe FC 980->100 openings (e/f masks carry the weight "
              "matrix) dominate — the structural reason Table II's "
              "TrustDDL communication sits far above Falcon-style "
              "re-sharing designs.\n");
  return 0;
}
