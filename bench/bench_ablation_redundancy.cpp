// Ablation: what TrustDDL's robustness machinery costs and buys.
//
//  (a) Per-opening cost of the three protocol tiers on one tensor:
//      HbC (pair exchange), crash-fault (SafeML-style + heartbeat),
//      malicious (commitment + ack + triple exchange) — the redundancy
//      and commitment overhead of paper §III-B, isolated.
//  (b) The coordinated-offset attack (DESIGN.md §4): under the paper's
//      bare minimum-distance rule the forged reconstruction pair wins;
//      with share-copy authentication (our hardening) the attack is
//      attributed and the correct value recovered — at zero extra
//      communication.
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "mpc/adversary.hpp"
#include "mpc/open.hpp"
#include "net/runtime.hpp"

using namespace trustddl;

namespace {

RingTensor random_ring(const Shape& shape, Rng& rng) {
  RingTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_u64();
  }
  return out;
}

struct OpenStats {
  double seconds_per_open = 0;
  double kilobytes_per_open = 0;
  double messages_per_open = 0;
};

OpenStats measure_opens(mpc::SecurityMode mode, std::size_t elements,
                        int rounds, bool optimistic = false) {
  Rng rng(42);
  const RingTensor secret = random_ring(Shape{elements}, rng);
  const auto views = mpc::share_secret(secret, rng);
  net::Network network(net::NetworkConfig{.num_parties = 3});
  std::array<mpc::PartyContext, 3> contexts;
  for (int party = 0; party < 3; ++party) {
    auto& ctx = contexts[static_cast<std::size_t>(party)];
    ctx.endpoint = network.endpoint(party);
    ctx.party = party;
    ctx.mode = mode;
    ctx.optimistic = optimistic;
  }
  Stopwatch watch;
  net::run_parties(3, [&](net::PartyId party) {
    for (int round = 0; round < rounds; ++round) {
      (void)mpc::open_value(contexts[static_cast<std::size_t>(party)],
                            views[static_cast<std::size_t>(party)]);
    }
  });
  const double seconds = watch.elapsed_seconds();
  const auto traffic = network.traffic();
  return OpenStats{
      seconds / rounds,
      static_cast<double>(traffic.total_bytes) / 1024.0 / rounds,
      static_cast<double>(traffic.total_messages) / rounds};
}

}  // namespace

int main() {
  std::printf("=== Ablation: redundancy / commitment tiers ===\n");
  std::printf("One robust opening of a 4096-element tensor (mean of 50):\n\n");
  std::printf("%-22s %12s %14s %12s\n", "mode", "time (ms)", "traffic (KB)",
              "messages");
  const struct {
    const char* name;
    mpc::SecurityMode mode;
  } tiers[] = {
      {"HbC (pair exchange)", mpc::SecurityMode::kHonestButCurious},
      {"Crash-fault (SafeML)", mpc::SecurityMode::kCrashFault},
      {"Malicious (full BT)", mpc::SecurityMode::kMalicious},
  };
  for (const auto& tier : tiers) {
    const OpenStats stats = measure_opens(tier.mode, 4096, 50);
    std::printf("%-22s %12.3f %14.1f %12.1f\n", tier.name,
                stats.seconds_per_open * 1e3, stats.kilobytes_per_open,
                stats.messages_per_open);
  }
  {
    // The paper's future-work communication optimization: pairs +
    // per-component commitments on the fast path, escalation only on
    // mismatch (no mismatch here: honest run).
    const OpenStats stats =
        measure_opens(mpc::SecurityMode::kMalicious, 4096, 50,
                      /*optimistic=*/true);
    std::printf("%-22s %12.3f %14.1f %12.1f\n", "Malicious (optimistic)",
                stats.seconds_per_open * 1e3, stats.kilobytes_per_open,
                stats.messages_per_open);
  }

  std::printf("\n=== Coordinated-offset attack vs the decision rule ===\n");
  std::printf("Byzantine P2 adds the SAME delta to its primary, duplicate "
              "and second shares,\nforging an agreeing reconstruction pair "
              "(the case §III-B's argument misses).\n\n");
  for (const bool hardened : {false, true}) {
    Rng rng(7);
    const RingTensor secret = random_ring(Shape{8}, rng);
    const auto views = mpc::share_secret(secret, rng);
    mpc::ByzantineConfig config;
    config.behavior = mpc::ByzantineConfig::Behavior::kCoordinatedDelta;
    mpc::StandardAdversary adversary(config);

    net::Network network(net::NetworkConfig{.num_parties = 3});
    std::array<mpc::PartyContext, 3> contexts;
    for (int party = 0; party < 3; ++party) {
      auto& ctx = contexts[static_cast<std::size_t>(party)];
      ctx.endpoint = network.endpoint(party);
      ctx.party = party;
      ctx.share_authentication = hardened;
    }
    contexts[1].adversary = &adversary;
    std::array<RingTensor, 3> results;
    net::run_parties(3, [&](net::PartyId party) {
      results[static_cast<std::size_t>(party)] = mpc::open_value(
          contexts[static_cast<std::size_t>(party)],
          views[static_cast<std::size_t>(party)]);
    });
    const bool p0_correct = results[0] == secret;
    const bool p2_correct = results[2] == secret;
    std::printf("share authentication %-3s : honest parties opened %s "
                "(auth failures detected: %zu)\n",
                hardened ? "ON" : "OFF",
                (p0_correct && p2_correct) ? "the CORRECT value"
                                           : "a WRONG (shifted) value",
                contexts[0].detections.count(
                    mpc::DetectionEvent::Kind::kShareAuthFailure) +
                    contexts[2].detections.count(
                        mpc::DetectionEvent::Kind::kShareAuthFailure));
  }
  std::printf("\nThe hardening costs no additional communication: it only "
              "compares share copies\nthe replicated layout already "
              "delivers.\n");
  return 0;
}
