// Offline/online split: prefetched triple stores vs synchronous
// per-op dealing on the Table I CNN (DESIGN.md §10).
//
// One inference session runs the same 8-row batch three times in the
// "sync" configuration (every Beaver triple / comparison aux /
// truncation pair is fetched from the owner with a blocking round
// trip at the moment a layer needs it) and in the "prefetch"
// configuration (the demand profiler plans the whole job, a warm
// phase fills the shape-keyed TripleStore with batched kBatchFill
// round trips, and the online phase pops material lock-free).
//
// Links carry an emulated one-way delay so the round-trip savings
// show up as wall clock the way a real LAN would.  The offline phase
// is read back from the `span.triple.warm.us` counter; the parties
// warm concurrently, so the summed span time over-counts the offline
// wall segment and `online_seconds = wall - warm` is a conservative
// (low) estimate of the online phase — the headline comparison is the
// measured total wall, which already includes the warm phase.
//
// Both configurations must predict identical labels: prefetching is a
// scheduling decision, never a results change (the store serves the
// same derived-seed streams in the same order).
//
// Each configuration runs `kTrials` full sessions; the reported wall
// time is the bench_util median/P95/CV over the per-session samples.
//
// Pass --json=<path> to write the snapshot committed as
// BENCH_offline.json at the repo root.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/adapters.hpp"
#include "bench_util.hpp"
#include "data/synthetic_mnist.hpp"
#include "obs/metrics.hpp"

using namespace trustddl;
using baselines::StepCost;

namespace {

constexpr std::size_t kBatchRows = 8;
constexpr int kRepeats = 3;
constexpr int kTrials = 5;
constexpr std::chrono::milliseconds kLinkLatency{2};

struct RunStats {
  StepCost cost;
  bench::TrialStats wall;  // median/P95/CV over kTrials sessions
  std::vector<std::size_t> labels;
  // From the metrics snapshot of the run.
  double warm_seconds = 0.0;      // summed span.triple.warm.us
  double online_seconds = 0.0;    // wall - warm (clamped at 0)
  std::uint64_t online_wait_us = 0;
  std::uint64_t store_misses = 0;
  std::uint64_t produced = 0;
  std::uint64_t consumed = 0;
};

RunStats run_once(bool prefetch, const data::Dataset& batch) {
  core::EngineConfig config;
  config.mode = mpc::SecurityMode::kMalicious;
  config.seed = 7;
  config.emulate_latency = true;
  config.link_latency = kLinkLatency;
  config.triple_prefetch = prefetch;
  // Uncapped store depth: the warm phase prefetches the whole job's
  // demand so the online phase never waits on dealing.
  config.triple_max_depth = std::size_t{1} << 40;

  obs::MetricsRegistry::global().reset();
  obs::set_metrics_enabled(true);
  baselines::EngineFramework framework("TrustDDL", nn::mnist_cnn_spec(),
                                       config);
  RunStats stats;
  stats.cost = framework.infer(batch.images, kRepeats, &stats.labels);
  obs::set_metrics_enabled(false);
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::global().snapshot();

  stats.warm_seconds =
      static_cast<double>(snapshot.counter_sum("span.triple.warm.us")) / 1e6;
  stats.online_seconds =
      std::max(0.0, stats.cost.wall_seconds - stats.warm_seconds);
  stats.store_misses = snapshot.counter_sum("triple.store.miss");
  stats.produced = snapshot.counter_sum("triple.produced");
  stats.consumed = snapshot.counter_sum("triple.consumed");
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == "triple.online_wait.us") {
      stats.online_wait_us = histogram.sum;
    }
  }
  return stats;
}

/// kTrials full sessions; wall median/P95/CV via bench_util, the
/// ancillary counters (labels, messages, warm split) from the last
/// session — they are deterministic across trials.
RunStats run(bool prefetch, const data::Dataset& batch) {
  RunStats stats;
  std::vector<double> walls(kTrials);
  for (int trial = 0; trial < kTrials; ++trial) {
    RunStats once = run_once(prefetch, batch);
    walls[static_cast<std::size_t>(trial)] = once.cost.wall_seconds;
    if (trial > 0 && once.labels != stats.labels) {
      std::fprintf(stderr, "FATAL: labels changed between trials\n");
      std::exit(1);
    }
    stats = std::move(once);
  }
  stats.wall = bench::stats_from_samples(std::move(walls));
  stats.cost.wall_seconds = stats.wall.median_s;
  stats.online_seconds =
      std::max(0.0, stats.cost.wall_seconds - stats.warm_seconds);
  return stats;
}

void print_row(const char* name, const RunStats& stats) {
  std::printf("%-10s %10.3f %10.3f %10.3f %10llu %12llu %8llu\n", name,
              stats.cost.wall_seconds, stats.warm_seconds,
              stats.online_seconds,
              static_cast<unsigned long long>(stats.cost.messages),
              static_cast<unsigned long long>(stats.online_wait_us),
              static_cast<unsigned long long>(stats.store_misses));
}

void write_json_entry(std::FILE* file, const char* key, const RunStats& stats,
                      const char* suffix) {
  std::fprintf(
      file,
      "  \"%s\": {\"wall_seconds\": %.6f, \"wall_p95_seconds\": %.6f, "
      "\"cv\": %.4f, \"warm_seconds\": %.6f, "
      "\"online_seconds\": %.6f, \"messages\": %llu, \"megabytes\": %.3f, "
      "\"online_wait_us\": %llu, \"store_misses\": %llu, "
      "\"triples_produced\": %llu, \"triples_consumed\": %llu}%s\n",
      key, stats.wall.median_s, stats.wall.p95_s, stats.wall.cv,
      stats.warm_seconds, stats.online_seconds,
      static_cast<unsigned long long>(stats.cost.messages),
      stats.cost.megabytes(),
      static_cast<unsigned long long>(stats.online_wait_us),
      static_cast<unsigned long long>(stats.store_misses),
      static_cast<unsigned long long>(stats.produced),
      static_cast<unsigned long long>(stats.consumed), suffix);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  data::SyntheticMnistConfig data_config;
  data_config.train_count = 1;
  data_config.test_count = kBatchRows;
  data_config.seed = 42;
  const auto split = data::generate_synthetic_mnist(data_config);
  const data::Dataset batch = data::slice(split.test, 0, kBatchRows);

  std::printf("=== Offline/online split: prefetch vs synchronous dealing "
              "(Table I CNN, %zu rows x %d batches, malicious, %lldms "
              "links) ===\n\n",
              kBatchRows, kRepeats,
              static_cast<long long>(kLinkLatency.count()));
  std::printf("%-10s %10s %10s %10s %10s %12s %8s\n", "config", "wall (s)",
              "warm (s)", "online(s)", "messages", "wait (us)", "misses");

  const RunStats sync = run(/*prefetch=*/false, batch);
  const RunStats prefetched = run(/*prefetch=*/true, batch);

  print_row("sync", sync);
  print_row("prefetch", prefetched);

  // Prefetching is a scheduling decision: predictions must not change.
  if (sync.labels != prefetched.labels) {
    std::fprintf(stderr, "FATAL: configurations disagree on predictions\n");
    return 1;
  }
  if (prefetched.store_misses != 0) {
    std::fprintf(stderr,
                 "FATAL: warm store missed %llu times — the demand "
                 "profiler under-counted\n",
                 static_cast<unsigned long long>(prefetched.store_misses));
    return 1;
  }

  const double total_speedup =
      sync.cost.wall_seconds / prefetched.cost.wall_seconds;
  const double online_speedup =
      sync.cost.wall_seconds / prefetched.online_seconds;
  std::printf("\nPrefetch total speedup (warm included): %.2fx; online "
              "phase vs all-online sync: %.2fx\n",
              total_speedup, online_speedup);

  if (!json_path.empty()) {
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(file,
                 "{\n  \"workload\": \"cnn_offline_online_infer\",\n"
                 "  \"model\": \"mnist_cnn (Table I)\",\n"
                 "  \"mode\": \"malicious\",\n  \"batch_rows\": %zu,\n"
                 "  \"batches\": %d,\n  \"link_latency_ms\": %lld,\n"
                 "  \"trials\": %d,\n",
                 kBatchRows, kRepeats,
                 static_cast<long long>(kLinkLatency.count()), kTrials);
    write_json_entry(file, "sync", sync, ",");
    write_json_entry(file, "prefetch", prefetched, ",");
    std::fprintf(file,
                 "  \"total_speedup\": %.4f,\n"
                 "  \"online_speedup\": %.4f\n}\n",
                 total_speedup, online_speedup);
    std::fclose(file);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
