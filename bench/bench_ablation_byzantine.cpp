// Ablation: guaranteed output delivery under attack.
//
//  (a) TrustDDL trains through every Byzantine behaviour of Proof 6.2
//      without aborting; accuracy stays at the honest-run level and
//      the detection log attributes the attacker.
//  (b) Contrast with Falcon-malicious, which detects corruption and
//      ABORTS — the qualitative difference Table II's "Model" column
//      encodes and the paper's core claim.
#include <cstdio>

#include "baselines/falcon/falcon.hpp"
#include "bench_util.hpp"
#include "core/engine.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/loss.hpp"

using namespace trustddl;

int main(int argc, char** argv) {
  const std::size_t train_count = bench::arg_size(argc, argv, "train", 160);
  const std::size_t test_count = bench::arg_size(argc, argv, "test", 60);

  data::SyntheticMnistConfig data_config;
  data_config.train_count = train_count;
  data_config.test_count = test_count;
  data_config.seed = 99;
  const auto split = data::generate_synthetic_mnist(data_config);

  core::TrainOptions options;
  options.epochs = 1;
  options.batch_size = 16;
  options.learning_rate = 0.4;

  std::printf("=== Ablation: training under a Byzantine computing party ===\n");
  std::printf("MLP 784-64-10, %zu train / %zu test images, 1 epoch, "
              "malicious-mode protocols.\n\n",
              train_count, test_count);
  std::printf("%-34s %10s %12s %12s %12s %10s\n", "adversary behaviour",
              "accuracy", "wall (s)", "comm (MB)", "detections",
              "recovered");

  const struct {
    const char* name;
    mpc::ByzantineConfig::Behavior behavior;
    double probability;
  } cases[] = {
      {"none (honest run)", mpc::ByzantineConfig::Behavior::kNone, 0.0},
      {"consistent corruption (Case 3)",
       mpc::ByzantineConfig::Behavior::kConsistentCorruption, 0.05},
      {"commitment violation (Case 1)",
       mpc::ByzantineConfig::Behavior::kCommitmentViolationGlobal, 0.05},
      {"targeted violation (Case 2)",
       mpc::ByzantineConfig::Behavior::kCommitmentViolationSingle, 0.05},
      {"coordinated delta (beyond paper)",
       mpc::ByzantineConfig::Behavior::kCoordinatedDelta, 0.05},
  };

  for (const auto& test_case : cases) {
    core::EngineConfig config;
    config.mode = mpc::SecurityMode::kMalicious;
    config.seed = 5;
    // Attack-consistent truncation for every row, including the honest
    // baseline, so the comparison isolates the adversary's effect
    // (see EngineConfig::trunc_mode).
    config.trunc_mode = core::TruncationMode::kMaskedOpen;
    if (test_case.behavior != mpc::ByzantineConfig::Behavior::kNone) {
      config.byzantine_party = 1;
      config.byzantine.behavior = test_case.behavior;
      config.byzantine.probability = test_case.probability;
      config.byzantine.target_peer = 0;
    }
    core::TrustDdlEngine engine(nn::mnist_mlp_spec(), config);
    const core::TrainResult result =
        engine.train(split.train, split.test, options);
    const std::size_t detections = result.cost.commitment_violations +
                                   result.cost.distance_anomalies +
                                   result.cost.share_auth_failures;
    std::printf("%-34s %10.4f %12.2f %12.2f %12zu %10zu\n", test_case.name,
                result.epoch_test_accuracy.empty()
                    ? 0.0
                    : result.epoch_test_accuracy.back(),
                result.cost.wall_seconds, result.cost.total_megabytes(),
                detections, result.cost.recovered_opens);
  }

  std::printf("\n=== Contrast: Falcon-malicious aborts, TrustDDL continues "
              "===\n");
  {
    class CorruptOneResharing final : public net::FaultInjector {
     public:
      net::FaultDecision on_message(const net::Message& message) override {
        if (!done_ && !message.tag.empty() && message.tag[0] == 'r' &&
            message.tag.find('/') == std::string::npos) {
          done_ = true;
          return net::FaultDecision{.corrupt = true};
        }
        return {};
      }

     private:
      bool done_ = false;
    };

    Rng rng(3);
    RealTensor image(Shape{1, 784});
    for (std::size_t i = 0; i < image.size(); ++i) {
      image[i] = rng.next_double(0, 1);
    }
    baselines::falcon::FalconFramework falcon_framework(
        nn::mnist_mlp_spec(), /*malicious=*/true, 7);
    falcon_framework.set_fault_injector(
        std::make_shared<CorruptOneResharing>());
    try {
      falcon_framework.infer(image, 1);
      std::printf("Falcon-malicious: completed (unexpected)\n");
    } catch (const baselines::falcon::FalconAbort& abort) {
      std::printf("Falcon-malicious: ABORTED — \"%s\"\n", abort.what());
    }

    core::EngineConfig config;
    config.trunc_mode = core::TruncationMode::kMaskedOpen;
    config.byzantine_party = 2;
    config.byzantine.behavior =
        mpc::ByzantineConfig::Behavior::kConsistentCorruption;
    config.byzantine.probability = 1.0;
    core::TrustDdlEngine engine(nn::mnist_mlp_spec(), config);
    data::Dataset one;
    one.images = image;
    one.labels = {0};
    const core::InferResult result = engine.infer(one, 1);
    std::printf("TrustDDL-malicious under permanent corruption: completed, "
                "prediction delivered (label %zu), %zu detections — "
                "guaranteed output delivery\n",
                result.labels[0], result.cost.share_auth_failures +
                                      result.cost.commitment_violations);
  }
  return 0;
}
