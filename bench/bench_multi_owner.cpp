// Multi-owner robust training under data poisoning (ISSUE 7
// acceptance experiment).  Three sessions share one synthetic dataset,
// one model seed and one owner population (K = 5); the only deltas
// are whether owner 4 poisons its submissions (a scale=25 gradient
// inflation attack) and which aggregation rule the parties apply to
// the per-owner gradient shares before the SGD step:
//
//   honest      all owners honest, coordinate-wise trimmed mean
//   trimmed     owner 4 poisons,   coordinate-wise trimmed mean
//   mean        owner 4 poisons,   plain mean (no robustness)
//
// Expected shape: the trimmed run's final-epoch test accuracy stays
// within a point of the honest run (the poisoned coordinates land in
// the trimmed extremes), while the plain-mean run degrades sharply —
// one malicious owner out of five owns the average.
//
// Links emulate a LAN (2ms per message) so rounds/s is meaningful.
// Each configuration runs `kTrials` full sessions; the reported wall
// time is the bench_util median/P95/CV over the per-session samples
// and the accuracies must be bit-identical across trials.
// Pass --json=<path> to write the snapshot committed as
// BENCH_train.json at the repo root.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"

#include "common/rng.hpp"
#include "data/synthetic_mnist.hpp"
#include "mpc/robust_aggregate.hpp"
#include "nn/model_zoo.hpp"
#include "train/harness.hpp"

using namespace trustddl;

namespace {

constexpr std::chrono::milliseconds kLinkLatency{2};
constexpr int kOwners = 5;
constexpr std::size_t kRoundsPerEpoch = 20;
constexpr std::size_t kEpochs = 2;
constexpr std::size_t kBatchRows = 12;
constexpr std::uint64_t kSeed = 11;
constexpr double kPoisonFactor = 100.0;
constexpr int kTrials = 3;

bool g_fast = false;  // --fast: drop latency emulation (tuning runs)

nn::ModelSpec bench_spec() {
  nn::ModelSpec spec;
  spec.name = "bench-train-mlp";
  spec.input_features = 12 * 12;
  spec.classes = 4;
  spec.layers.push_back(nn::LayerSpec::make_dense(144, 32));
  spec.layers.push_back(nn::LayerSpec::make_relu());
  spec.layers.push_back(nn::LayerSpec::make_dense(32, 4));
  spec.layers.push_back(nn::LayerSpec::make_softmax());
  return spec;
}

struct RunStats {
  bench::TrialStats wall;  // median/P95/CV over kTrials sessions
  double rounds_per_second = 0.0;
  std::uint64_t rounds = 0;
  std::uint64_t total_messages = 0;
  double accuracy = 0.0;
};

RunStats run_once(mpc::AggregationRule rule, bool poisoned,
                  const data::TrainTestSplit& split,
                  const nn::ModelSpec& spec, double* wall_out) {
  train::TrainSessionConfig session;
  session.spec = spec;
  session.engine.seed = kSeed;
  session.engine.trunc_mode = mpc::TruncationMode::kMaskedOpen;
  session.engine.emulate_latency = !g_fast;
  session.engine.link_latency = kLinkLatency;
  session.engine.collect_timeout = std::chrono::milliseconds(120000);
  session.train.rule = rule;
  session.train.trim = 1;
  session.train.quorum = kOwners;
  session.train.rounds_per_epoch = kRoundsPerEpoch;
  session.train.epochs = kEpochs;
  session.train.round_window = std::chrono::milliseconds(200);
  session.train.input_wait = std::chrono::milliseconds(120000);
  session.train.learning_rate = 0.15;
  session.num_owners = kOwners;
  session.submissions_per_owner = kRoundsPerEpoch * kEpochs;
  session.owner_batch_rows = kBatchRows;
  session.dataset = split.train;
  if (poisoned) {
    session.owners.resize(kOwners);
    session.owners[kOwners - 1].poison =
        train::parse_poison_spec("scale=" + std::to_string(kPoisonFactor));
  }

  const train::TrainSessionResult result = train::run_training_session(session);
  if (!result.clean) {
    std::fprintf(stderr, "FATAL: session did not end on a shutdown manifest\n");
    std::exit(1);
  }

  // Plaintext evaluation: load the final epoch's revealed weights and
  // score the shared test split.  The local model's init is irrelevant
  // — every parameter is overwritten by a reveal.
  Rng model_rng(kSeed);
  nn::Sequential model = nn::build_model(spec, model_rng);
  const std::size_t param_count = model.parameters().size();
  if (!train::apply_revealed_weights(result.revealed, kEpochs - 1, param_count,
                                     fx::kDefaultFracBits, model)) {
    std::fprintf(stderr, "FATAL: final-epoch weight reveal is incomplete\n");
    std::exit(1);
  }

  RunStats stats;
  *wall_out = result.wall_seconds;
  stats.rounds = result.sequencer.rounds;
  stats.total_messages = result.traffic.total_messages;
  stats.accuracy = model.accuracy(split.test.images, split.test.labels);
  return stats;
}

/// kTrials full training sessions; wall median/P95/CV via bench_util.
/// The accuracy must be identical across trials — training is seeded
/// and deterministic, only the wall clock varies.
RunStats run(mpc::AggregationRule rule, bool poisoned,
             const data::TrainTestSplit& split, const nn::ModelSpec& spec) {
  RunStats stats;
  std::vector<double> walls(kTrials);
  for (int trial = 0; trial < kTrials; ++trial) {
    RunStats once = run_once(rule, poisoned, split, spec,
                             &walls[static_cast<std::size_t>(trial)]);
    if (trial > 0 && once.accuracy != stats.accuracy) {
      std::fprintf(stderr, "FATAL: accuracy changed between trials\n");
      std::exit(1);
    }
    stats = once;
  }
  stats.wall = bench::stats_from_samples(std::move(walls));
  stats.rounds_per_second =
      static_cast<double>(stats.rounds) / stats.wall.median_s;
  return stats;
}

void print_row(const char* name, const RunStats& stats) {
  std::printf("%-10s %10.3f %10.3f %8.3f %10.2f %8llu %10llu %10.4f\n",
              name, stats.wall.median_s, stats.wall.p95_s, stats.wall.cv,
              stats.rounds_per_second,
              static_cast<unsigned long long>(stats.rounds),
              static_cast<unsigned long long>(stats.total_messages),
              stats.accuracy);
}

void write_json_entry(std::FILE* file, const char* key, const RunStats& stats,
                      const char* suffix) {
  std::fprintf(file,
               "  \"%s\": {\"wall_seconds\": %.6f, \"wall_p95_seconds\": "
               "%.6f, \"cv\": %.4f, \"rounds_per_second\": "
               "%.3f, \"rounds\": %llu, \"total_messages\": %llu, "
               "\"final_accuracy\": %.4f}%s\n",
               key, stats.wall.median_s, stats.wall.p95_s, stats.wall.cv,
               stats.rounds_per_second,
               static_cast<unsigned long long>(stats.rounds),
               static_cast<unsigned long long>(stats.total_messages),
               stats.accuracy, suffix);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--fast") == 0) {
      g_fast = true;
    }
  }

  const nn::ModelSpec spec = bench_spec();
  data::SyntheticMnistConfig data_config;
  data_config.train_count = 600;
  data_config.test_count = 400;
  data_config.height = 12;
  data_config.width = 12;
  data_config.classes = 4;
  data_config.seed = 7;
  const auto split = data::generate_synthetic_mnist(data_config);

  std::printf("=== Multi-owner robust training: %d owners, 1 poisoner "
              "(scale=%.0f), %zu rounds x %zu epochs, %lldms links ===\n\n",
              kOwners, kPoisonFactor, kRoundsPerEpoch, kEpochs,
              static_cast<long long>(kLinkLatency.count()));
  std::printf("%-10s %10s %10s %8s %10s %8s %10s %10s\n", "config",
              "wall (s)", "p95 (s)", "cv", "rounds/s", "rounds", "messages",
              "accuracy");

  const RunStats honest =
      run(mpc::AggregationRule::kTrimmedMean, /*poisoned=*/false, split, spec);
  print_row("honest", honest);
  const RunStats trimmed =
      run(mpc::AggregationRule::kTrimmedMean, /*poisoned=*/true, split, spec);
  print_row("trimmed", trimmed);
  const RunStats mean =
      run(mpc::AggregationRule::kMean, /*poisoned=*/true, split, spec);
  print_row("mean", mean);

  const double robust_gap = honest.accuracy - trimmed.accuracy;
  const double mean_gap = honest.accuracy - mean.accuracy;
  std::printf("\ntrimmed-mean vs honest accuracy gap: %+.4f "
              "(plain mean: %+.4f)\n",
              -robust_gap, -mean_gap);

  // ISSUE 7 acceptance: trimming absorbs the poisoner (within one
  // accuracy point of all-honest) while plain mean visibly degrades.
  bool ok = true;
  if (robust_gap > 0.01) {
    std::fprintf(stderr, "FAIL: trimmed-mean lost %.4f vs honest (> 0.01)\n",
                 robust_gap);
    ok = false;
  }
  if (mean_gap < 0.05) {
    std::fprintf(stderr, "FAIL: plain mean only lost %.4f vs honest "
                 "(expected >= 0.05)\n", mean_gap);
    ok = false;
  }

  if (!json_path.empty()) {
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(file,
                 "{\n  \"workload\": \"multi_owner_robust_training\",\n"
                 "  \"model\": \"dense144x32x4 (12x12 synthetic, 4 "
                 "classes)\",\n"
                 "  \"owners\": %d,\n  \"poisoner\": \"owner %d, "
                 "scale=%.0f\",\n  \"trim\": 1,\n"
                 "  \"rounds_per_epoch\": %zu,\n  \"epochs\": %zu,\n"
                 "  \"link_latency_ms\": %lld,\n  \"trials\": %d,\n",
                 kOwners, kOwners - 1, kPoisonFactor, kRoundsPerEpoch, kEpochs,
                 static_cast<long long>(kLinkLatency.count()), kTrials);
    write_json_entry(file, "honest_trimmed_mean", honest, ",");
    write_json_entry(file, "poisoned_trimmed_mean", trimmed, ",");
    write_json_entry(file, "poisoned_plain_mean", mean, ",");
    std::fprintf(file,
                 "  \"trimmed_accuracy_gap\": %.4f,\n"
                 "  \"mean_accuracy_gap\": %.4f\n}\n",
                 robust_gap, mean_gap);
    std::fclose(file);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
