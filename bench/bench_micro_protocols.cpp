// Microbenchmarks of the protocol building blocks (google-benchmark):
// sharing/reconstruction, SHA-256 commitment hashing, the robust
// opening in each security mode, SecMul-BT / SecMatMul-BT /
// SecComp-BT, and both fixed-point truncation strategies.  Each
// protocol iteration runs the real three-thread execution over the
// in-process network.
#include <benchmark/benchmark.h>

#include "common/sha256.hpp"
#include "mpc/beaver.hpp"
#include "mpc/open.hpp"
#include "mpc/protocols_bt.hpp"
#include "net/runtime.hpp"
#include "numeric/fixed_point.hpp"

namespace trustddl {
namespace {

constexpr int kF = fx::kDefaultFracBits;

RingTensor random_ring(const Shape& shape, Rng& rng) {
  RingTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_u64();
  }
  return out;
}

void BM_FixedPointEncodeDecode(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> values(1024);
  for (auto& value : values) {
    value = rng.next_double(-100, 100);
  }
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (double value : values) {
      acc += fx::encode(value);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_FixedPointEncodeDecode);

void BM_Sha256Commitment(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Bytes payload(size, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Sha256Commitment)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_CreateReplicatedShares(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const RingTensor secret = random_ring(Shape{n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpc::share_secret(secret, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CreateReplicatedShares)->Arg(1 << 8)->Arg(1 << 14);

/// One full three-party robust opening per iteration.
void BM_Open(benchmark::State& state, mpc::SecurityMode mode) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const RingTensor secret = random_ring(Shape{n}, rng);
  const auto views = mpc::share_secret(secret, rng);
  for (auto _ : state) {
    net::Network network(net::NetworkConfig{.num_parties = 3});
    std::array<mpc::PartyContext, 3> contexts;
    for (int party = 0; party < 3; ++party) {
      auto& ctx = contexts[static_cast<std::size_t>(party)];
      ctx.endpoint = network.endpoint(party);
      ctx.party = party;
      ctx.mode = mode;
    }
    net::run_parties(3, [&](net::PartyId party) {
      benchmark::DoNotOptimize(mpc::open_value(
          contexts[static_cast<std::size_t>(party)],
          views[static_cast<std::size_t>(party)]));
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_Open, hbc, mpc::SecurityMode::kHonestButCurious)
    ->Arg(1 << 8)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_Open, crash_fault, mpc::SecurityMode::kCrashFault)
    ->Arg(1 << 8)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_Open, malicious, mpc::SecurityMode::kMalicious)
    ->Arg(1 << 8)
    ->Arg(1 << 14);

void BM_SecMulBt(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const Shape shape{n};
  const auto x_views = mpc::share_secret(random_ring(shape, rng), rng);
  const auto y_views = mpc::share_secret(random_ring(shape, rng), rng);
  for (auto _ : state) {
    net::Network network(net::NetworkConfig{.num_parties = 3});
    auto dealer = std::make_shared<mpc::SharedDealer>(5, kF);
    std::array<mpc::PartyContext, 3> contexts;
    for (int party = 0; party < 3; ++party) {
      auto& ctx = contexts[static_cast<std::size_t>(party)];
      ctx.endpoint = network.endpoint(party);
      ctx.party = party;
    }
    net::run_parties(3, [&](net::PartyId party) {
      mpc::LocalTripleSource source(dealer, party);
      const auto triple = source.mul_triple(shape);
      benchmark::DoNotOptimize(mpc::sec_mul_bt(
          contexts[static_cast<std::size_t>(party)],
          x_views[static_cast<std::size_t>(party)],
          y_views[static_cast<std::size_t>(party)], triple));
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SecMulBt)->Arg(1 << 8)->Arg(1 << 12);

void BM_SecMatMulBt(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const auto x_views =
      mpc::share_secret(random_ring(Shape{n, n}, rng), rng);
  const auto y_views =
      mpc::share_secret(random_ring(Shape{n, n}, rng), rng);
  for (auto _ : state) {
    net::Network network(net::NetworkConfig{.num_parties = 3});
    auto dealer = std::make_shared<mpc::SharedDealer>(7, kF);
    std::array<mpc::PartyContext, 3> contexts;
    for (int party = 0; party < 3; ++party) {
      auto& ctx = contexts[static_cast<std::size_t>(party)];
      ctx.endpoint = network.endpoint(party);
      ctx.party = party;
    }
    net::run_parties(3, [&](net::PartyId party) {
      mpc::LocalTripleSource source(dealer, party);
      const auto triple = source.matmul_triple(n, n, n);
      benchmark::DoNotOptimize(mpc::sec_matmul_bt(
          contexts[static_cast<std::size_t>(party)],
          x_views[static_cast<std::size_t>(party)],
          y_views[static_cast<std::size_t>(party)], triple));
    });
  }
}
BENCHMARK(BM_SecMatMulBt)->Arg(16)->Arg(64);

void BM_SecCompBt(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  const Shape shape{n};
  const auto x_views = mpc::share_secret(random_ring(shape, rng), rng);
  const auto y_views = mpc::share_secret(random_ring(shape, rng), rng);
  for (auto _ : state) {
    net::Network network(net::NetworkConfig{.num_parties = 3});
    auto dealer = std::make_shared<mpc::SharedDealer>(9, kF);
    std::array<mpc::PartyContext, 3> contexts;
    for (int party = 0; party < 3; ++party) {
      auto& ctx = contexts[static_cast<std::size_t>(party)];
      ctx.endpoint = network.endpoint(party);
      ctx.party = party;
    }
    net::run_parties(3, [&](net::PartyId party) {
      mpc::LocalTripleSource source(dealer, party);
      benchmark::DoNotOptimize(mpc::sec_comp_bt(
          contexts[static_cast<std::size_t>(party)],
          x_views[static_cast<std::size_t>(party)],
          y_views[static_cast<std::size_t>(party)],
          source.comp_aux(shape), source.mul_triple(shape)));
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SecCompBt)->Arg(1 << 8)->Arg(1 << 12);

void BM_Truncation(benchmark::State& state, mpc::TruncationMode mode) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  const Shape shape{n};
  const auto z_views = mpc::share_secret(random_ring(shape, rng), rng);
  for (auto _ : state) {
    net::Network network(net::NetworkConfig{.num_parties = 3});
    auto dealer = std::make_shared<mpc::SharedDealer>(11, kF);
    std::array<mpc::PartyContext, 3> contexts;
    for (int party = 0; party < 3; ++party) {
      auto& ctx = contexts[static_cast<std::size_t>(party)];
      ctx.endpoint = network.endpoint(party);
      ctx.party = party;
    }
    net::run_parties(3, [&](net::PartyId party) {
      const auto& z = z_views[static_cast<std::size_t>(party)];
      if (mode == mpc::TruncationMode::kLocal) {
        benchmark::DoNotOptimize(mpc::truncate_product_local(z, kF));
      } else {
        mpc::LocalTripleSource source(dealer, party);
        benchmark::DoNotOptimize(mpc::truncate_product_masked(
            contexts[static_cast<std::size_t>(party)], z,
            source.trunc_pair(shape)));
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_Truncation, local, mpc::TruncationMode::kLocal)
    ->Arg(1 << 12);
BENCHMARK_CAPTURE(BM_Truncation, masked_open, mpc::TruncationMode::kMaskedOpen)
    ->Arg(1 << 12);

}  // namespace
}  // namespace trustddl

BENCHMARK_MAIN();
