// Microbenchmarks of the protocol building blocks (google-benchmark):
// sharing/reconstruction, SHA-256 commitment hashing, the robust
// opening in each security mode, SecMul-BT / SecMatMul-BT /
// SecComp-BT, both fixed-point truncation strategies, and the
// deferred-opening round scheduler (sequential vs batched).  Each
// protocol iteration runs the real three-thread execution over the
// in-process network.
//
// Pass --rounds_json=<path> to additionally record a round-accounting
// snapshot of one Table I CNN training step (malicious mode, batching
// off vs on) — the before/after evidence for the OpenBatch scheduler.
//
// Pass --obs_json=<path> to measure the metrics-registry overhead on
// the SecMatMul-BT hot path (telemetry disabled vs enabled) and the
// admin-endpoint overhead (metrics on, no endpoint vs a live endpoint
// scraped at 10 Hz) and write the result — the evidence for the
// observability layer's <= 2% overhead contracts (DESIGN.md §8/§12).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

#include "common/sha256.hpp"
#include "common/stopwatch.hpp"
#include "core/engine.hpp"
#include "mpc/beaver.hpp"
#include "mpc/open.hpp"
#include "mpc/protocols_bt.hpp"
#include "net/runtime.hpp"
#include "numeric/fixed_point.hpp"
#include "obs/admin_server.hpp"
#include "obs/metrics.hpp"

namespace trustddl {
namespace {

constexpr int kF = fx::kDefaultFracBits;

RingTensor random_ring(const Shape& shape, Rng& rng) {
  RingTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_u64();
  }
  return out;
}

void BM_FixedPointEncodeDecode(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> values(1024);
  for (auto& value : values) {
    value = rng.next_double(-100, 100);
  }
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (double value : values) {
      acc += fx::encode(value);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_FixedPointEncodeDecode);

void BM_Sha256Commitment(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Bytes payload(size, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Sha256Commitment)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_CreateReplicatedShares(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const RingTensor secret = random_ring(Shape{n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpc::share_secret(secret, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CreateReplicatedShares)->Arg(1 << 8)->Arg(1 << 14);

/// One full three-party robust opening per iteration.
void BM_Open(benchmark::State& state, mpc::SecurityMode mode) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const RingTensor secret = random_ring(Shape{n}, rng);
  const auto views = mpc::share_secret(secret, rng);
  for (auto _ : state) {
    net::Network network(net::NetworkConfig{.num_parties = 3});
    std::array<mpc::PartyContext, 3> contexts;
    for (int party = 0; party < 3; ++party) {
      auto& ctx = contexts[static_cast<std::size_t>(party)];
      ctx.endpoint = network.endpoint(party);
      ctx.party = party;
      ctx.mode = mode;
    }
    net::run_parties(3, [&](net::PartyId party) {
      benchmark::DoNotOptimize(mpc::open_value(
          contexts[static_cast<std::size_t>(party)],
          views[static_cast<std::size_t>(party)]));
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_Open, hbc, mpc::SecurityMode::kHonestButCurious)
    ->Arg(1 << 8)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_Open, crash_fault, mpc::SecurityMode::kCrashFault)
    ->Arg(1 << 8)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_Open, malicious, mpc::SecurityMode::kMalicious)
    ->Arg(1 << 8)
    ->Arg(1 << 14);

void BM_SecMulBt(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const Shape shape{n};
  const auto x_views = mpc::share_secret(random_ring(shape, rng), rng);
  const auto y_views = mpc::share_secret(random_ring(shape, rng), rng);
  for (auto _ : state) {
    net::Network network(net::NetworkConfig{.num_parties = 3});
    auto dealer = std::make_shared<mpc::SharedDealer>(5, kF);
    std::array<mpc::PartyContext, 3> contexts;
    for (int party = 0; party < 3; ++party) {
      auto& ctx = contexts[static_cast<std::size_t>(party)];
      ctx.endpoint = network.endpoint(party);
      ctx.party = party;
    }
    net::run_parties(3, [&](net::PartyId party) {
      mpc::LocalTripleSource source(dealer, party);
      const auto triple = source.mul_triple(shape);
      benchmark::DoNotOptimize(mpc::sec_mul_bt(
          contexts[static_cast<std::size_t>(party)],
          x_views[static_cast<std::size_t>(party)],
          y_views[static_cast<std::size_t>(party)], triple));
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SecMulBt)->Arg(1 << 8)->Arg(1 << 12);

/// One full three-party SecMatMul-BT; shared by the plain benchmark,
/// the metrics-enabled/-disabled comparison column and the --obs_json
/// overhead measurement.
void run_sec_matmul_bt_once(std::size_t n,
                            const std::array<mpc::PartyShare, 3>& x_views,
                            const std::array<mpc::PartyShare, 3>& y_views) {
  net::Network network(net::NetworkConfig{.num_parties = 3});
  auto dealer = std::make_shared<mpc::SharedDealer>(7, kF);
  std::array<mpc::PartyContext, 3> contexts;
  for (int party = 0; party < 3; ++party) {
    auto& ctx = contexts[static_cast<std::size_t>(party)];
    ctx.endpoint = network.endpoint(party);
    ctx.party = party;
  }
  net::run_parties(3, [&](net::PartyId party) {
    mpc::LocalTripleSource source(dealer, party);
    const auto triple = source.matmul_triple(n, n, n);
    benchmark::DoNotOptimize(mpc::sec_matmul_bt(
        contexts[static_cast<std::size_t>(party)],
        x_views[static_cast<std::size_t>(party)],
        y_views[static_cast<std::size_t>(party)], triple));
  });
}

/// metrics = false/true gives the disabled/enabled column of the
/// telemetry-overhead comparison; the flag is restored afterwards so
/// later benchmarks run under the process default.
void BM_SecMatMulBt(benchmark::State& state, bool metrics) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const auto x_views =
      mpc::share_secret(random_ring(Shape{n, n}, rng), rng);
  const auto y_views =
      mpc::share_secret(random_ring(Shape{n, n}, rng), rng);
  const bool was_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(metrics);
  for (auto _ : state) {
    run_sec_matmul_bt_once(n, x_views, y_views);
  }
  obs::set_metrics_enabled(was_enabled);
}
BENCHMARK_CAPTURE(BM_SecMatMulBt, metrics_off, false)->Arg(16)->Arg(64);
BENCHMARK_CAPTURE(BM_SecMatMulBt, metrics_on, true)->Arg(16)->Arg(64);

void BM_SecCompBt(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  const Shape shape{n};
  const auto x_views = mpc::share_secret(random_ring(shape, rng), rng);
  const auto y_views = mpc::share_secret(random_ring(shape, rng), rng);
  for (auto _ : state) {
    net::Network network(net::NetworkConfig{.num_parties = 3});
    auto dealer = std::make_shared<mpc::SharedDealer>(9, kF);
    std::array<mpc::PartyContext, 3> contexts;
    for (int party = 0; party < 3; ++party) {
      auto& ctx = contexts[static_cast<std::size_t>(party)];
      ctx.endpoint = network.endpoint(party);
      ctx.party = party;
    }
    net::run_parties(3, [&](net::PartyId party) {
      mpc::LocalTripleSource source(dealer, party);
      benchmark::DoNotOptimize(mpc::sec_comp_bt(
          contexts[static_cast<std::size_t>(party)],
          x_views[static_cast<std::size_t>(party)],
          y_views[static_cast<std::size_t>(party)],
          source.comp_aux(shape), source.mul_triple(shape)));
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SecCompBt)->Arg(1 << 8)->Arg(1 << 12);

void BM_Truncation(benchmark::State& state, mpc::TruncationMode mode) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  const Shape shape{n};
  const auto z_views = mpc::share_secret(random_ring(shape, rng), rng);
  for (auto _ : state) {
    net::Network network(net::NetworkConfig{.num_parties = 3});
    auto dealer = std::make_shared<mpc::SharedDealer>(11, kF);
    std::array<mpc::PartyContext, 3> contexts;
    for (int party = 0; party < 3; ++party) {
      auto& ctx = contexts[static_cast<std::size_t>(party)];
      ctx.endpoint = network.endpoint(party);
      ctx.party = party;
    }
    net::run_parties(3, [&](net::PartyId party) {
      const auto& z = z_views[static_cast<std::size_t>(party)];
      if (mode == mpc::TruncationMode::kLocal) {
        benchmark::DoNotOptimize(mpc::truncate_product_local(z, kF));
      } else {
        mpc::LocalTripleSource source(dealer, party);
        benchmark::DoNotOptimize(mpc::truncate_product_masked(
            contexts[static_cast<std::size_t>(party)], z,
            source.trunc_pair(shape)));
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_Truncation, local, mpc::TruncationMode::kLocal)
    ->Arg(1 << 12);
BENCHMARK_CAPTURE(BM_Truncation, masked_open, mpc::TruncationMode::kMaskedOpen)
    ->Arg(1 << 12);

/// Sequential-vs-batched opening of `range(0)` values: the per-call
/// round cost the OpenBatch scheduler amortizes.  Counters report
/// opening rounds per iteration and the achieved values-per-round
/// (openings-per-call is 1 for the sequential baseline by definition).
void BM_OpenScheduling(benchmark::State& state, bool batched) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  Rng rng(12);
  const Shape shape{256};
  std::vector<std::array<mpc::PartyShare, 3>> views;
  for (std::size_t i = 0; i < count; ++i) {
    views.push_back(mpc::share_secret(random_ring(shape, rng), rng));
  }
  std::uint64_t rounds = 0;
  std::uint64_t values = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    net::Network network(net::NetworkConfig{.num_parties = 3});
    std::array<mpc::PartyContext, 3> contexts;
    for (int party = 0; party < 3; ++party) {
      auto& ctx = contexts[static_cast<std::size_t>(party)];
      ctx.endpoint = network.endpoint(party);
      ctx.party = party;
    }
    net::run_parties(3, [&](net::PartyId party) {
      auto& ctx = contexts[static_cast<std::size_t>(party)];
      if (batched) {
        mpc::OpenBatch batch(ctx);
        std::vector<mpc::DeferredTensor> handles;
        for (const auto& view : views) {
          handles.push_back(
              batch.enqueue_value(view[static_cast<std::size_t>(party)]));
        }
        batch.flush();
        benchmark::DoNotOptimize(handles.back().get());
      } else {
        for (const auto& view : views) {
          benchmark::DoNotOptimize(mpc::open_value(
              ctx, view[static_cast<std::size_t>(party)]));
        }
      }
    });
    rounds += contexts[0].detections.opens;
    values += contexts[0].detections.values_opened;
    messages += network.traffic().total_messages;
  }
  const double iterations = static_cast<double>(state.iterations());
  state.counters["rounds_per_batch"] = static_cast<double>(rounds) / iterations;
  state.counters["values_per_round"] =
      static_cast<double>(values) / static_cast<double>(rounds);
  state.counters["messages"] = static_cast<double>(messages) / iterations;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK_CAPTURE(BM_OpenScheduling, sequential, false)->Arg(2)->Arg(8);
BENCHMARK_CAPTURE(BM_OpenScheduling, batched, true)->Arg(2)->Arg(8);

/// The converted layer-backward hot path: two data-independent matmuls
/// with masked-open rescale, eager (4 rounds) vs one batch (2 rounds).
void BM_BackwardPairRescaled(benchmark::State& state, bool batched) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  const auto x_views = mpc::share_secret(random_ring(Shape{n, n}, rng), rng);
  const auto y_views = mpc::share_secret(random_ring(Shape{n, n}, rng), rng);
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    net::Network network(net::NetworkConfig{.num_parties = 3});
    auto dealer = std::make_shared<mpc::SharedDealer>(14, kF);
    std::array<mpc::PartyContext, 3> contexts;
    for (int party = 0; party < 3; ++party) {
      auto& ctx = contexts[static_cast<std::size_t>(party)];
      ctx.endpoint = network.endpoint(party);
      ctx.party = party;
    }
    net::run_parties(3, [&](net::PartyId party) {
      const auto index = static_cast<std::size_t>(party);
      auto& ctx = contexts[index];
      mpc::LocalTripleSource source(dealer, party);
      mpc::OpenBatch batch(ctx);
      std::array<mpc::DeferredShare, 2> products;
      for (auto& product : products) {
        const auto triple = source.matmul_triple(n, n, n);
        const auto pair = source.trunc_pair(Shape{n, n});
        product = mpc::sec_matmul_bt_rescaled_prepare(
            batch, x_views[index], y_views[index], triple,
            mpc::TruncationMode::kMaskedOpen, &pair);
        if (!batched) {
          batch.flush_all();
        }
      }
      batch.flush_all();
      benchmark::DoNotOptimize(products[0].get());
      benchmark::DoNotOptimize(products[1].get());
    });
    rounds += contexts[0].detections.opens;
    messages += network.traffic().total_messages;
  }
  const double iterations = static_cast<double>(state.iterations());
  state.counters["rounds_per_batch"] = static_cast<double>(rounds) / iterations;
  state.counters["messages"] = static_cast<double>(messages) / iterations;
}
BENCHMARK_CAPTURE(BM_BackwardPairRescaled, eager, false)->Arg(16)->Arg(64);
BENCHMARK_CAPTURE(BM_BackwardPairRescaled, batched, true)->Arg(16)->Arg(64);

/// One Table I CNN training step through the full engine; returns the
/// cost report for the round-accounting snapshot.
core::CostReport table1_train_step_cost(bool batch_openings,
                                        core::TruncationMode trunc_mode) {
  data::SyntheticMnistConfig data_config;
  data_config.train_count = 2;
  data_config.test_count = 2;
  data_config.seed = 42;
  const auto split = data::generate_synthetic_mnist(data_config);

  core::EngineConfig config;
  config.mode = mpc::SecurityMode::kMalicious;
  config.trunc_mode = trunc_mode;
  config.batch_openings = batch_openings;
  config.emulate_latency = true;
  config.link_latency = std::chrono::microseconds(1);
  config.collect_timeout = std::chrono::milliseconds(300);
  core::TrustDdlEngine engine(nn::mnist_cnn_spec(), config);

  core::TrainOptions options;
  options.epochs = 1;
  options.batch_size = split.train.size();  // exactly one SGD step
  options.learning_rate = 0.2;
  options.reveal_weights = false;  // pure per-step protocol cost
  return engine.train(split.train, split.test, options).cost;
}

void append_snapshot_entry(std::ostream& out, const char* key,
                           const core::CostReport& cost) {
  out << "    \"" << key << "\": {"
      << "\"opening_rounds\": " << cost.opening_rounds << ", "
      << "\"values_opened\": " << cost.values_opened << ", "
      << "\"openings_per_round\": "
      << static_cast<double>(cost.values_opened) /
             static_cast<double>(cost.opening_rounds)
      << ", \"total_messages\": " << cost.total_messages
      << ", \"total_bytes\": " << cost.total_bytes << "}";
}

/// Record the before/after round accounting of the deferred-opening
/// scheduler on one Table I CNN training step.  Returns false if the
/// snapshot could not be written.
bool write_rounds_snapshot(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot open " << path << " for writing\n";
    return false;
  }
  out << "{\n"
      << "  \"workload\": \"table1_cnn_train_step\",\n"
      << "  \"mode\": \"malicious\",\n"
      << "  \"emulate_latency\": true,\n";
  for (const auto trunc : {core::TruncationMode::kMaskedOpen,
                           core::TruncationMode::kLocal}) {
    const bool masked = trunc == core::TruncationMode::kMaskedOpen;
    const auto before = table1_train_step_cost(false, trunc);
    const auto after = table1_train_step_cost(true, trunc);
    out << "  \"" << (masked ? "masked_open" : "local_trunc") << "\": {\n";
    append_snapshot_entry(out, "unbatched", before);
    out << ",\n";
    append_snapshot_entry(out, "batched", after);
    out << ",\n    \"message_reduction\": "
        << 1.0 - static_cast<double>(after.total_messages) /
                     static_cast<double>(before.total_messages)
        << ",\n    \"round_reduction\": "
        << 1.0 - static_cast<double>(after.opening_rounds) /
                     static_cast<double>(before.opening_rounds)
        << "\n  }" << (masked ? ",\n" : "\n");
  }
  out << "}\n";
  out.flush();
  if (!out) {
    std::cerr << "error: failed writing " << path << "\n";
    return false;
  }
  std::cout << "wrote round-accounting snapshot to " << path << "\n";
  return true;
}

/// Wall time of `iterations` SecMatMul-BT protocol runs at the current
/// metrics setting.
double sec_matmul_bt_seconds(std::size_t n, int iterations) {
  Rng rng(6);
  const auto x_views = mpc::share_secret(random_ring(Shape{n, n}, rng), rng);
  const auto y_views = mpc::share_secret(random_ring(Shape{n, n}, rng), rng);
  Stopwatch watch;
  for (int i = 0; i < iterations; ++i) {
    run_sec_matmul_bt_once(n, x_views, y_views);
  }
  return watch.elapsed_seconds();
}

/// Same workload while an admin endpoint is live and a poller thread
/// scrapes /metrics at `hz` — the cost model of a real fleet monitor
/// pointed at this process.
double sec_matmul_bt_seconds_scraped(std::size_t n, int iterations, int hz) {
  obs::AdminOptions options;  // port 0 = ephemeral
  obs::AdminServer server(options);
  server.start();
  std::atomic<bool> stop{false};
  std::thread scraper([&server, &stop, hz] {
    // Sleep first: the poller cadence starts one period in, so a
    // window shorter than a period sees at most its fair share of
    // scrapes instead of a guaranteed burst at t=0.
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1000 / hz));
      if (stop.load(std::memory_order_relaxed)) {
        break;
      }
      (void)obs::http_get("127.0.0.1", server.port(), "/metrics", 500);
    }
  });
  const double seconds = sec_matmul_bt_seconds(n, iterations);
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  server.stop();
  return seconds;
}

/// Measure the telemetry overhead on SecMatMul-BT (the busiest
/// instrumented path: spans, per-tag-class transport counters, recv
/// wait and kernel-pool histograms all fire) and write the snapshot.
/// Repetitions alternate disabled/enabled and the minimum per mode is
/// kept, so drift hits both columns alike.  A second pair measures the
/// admin endpoint the same way: metrics on without an endpoint vs
/// metrics on with a 10 Hz /metrics scraper — snapshots render on the
/// admin thread, so the workload should barely notice.  Returns false
/// if the snapshot could not be written.
bool write_obs_snapshot(const std::string& path) {
  constexpr std::size_t kN = 64;
  constexpr int kIterations = 12;
  constexpr int kRepetitions = 5;
  const bool was_enabled = obs::metrics_enabled();

  obs::set_metrics_enabled(false);
  sec_matmul_bt_seconds(kN, 2);  // warm caches, pool threads, dealer
  double off_seconds = 1e300;
  double on_seconds = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    obs::set_metrics_enabled(false);
    off_seconds = std::min(off_seconds, sec_matmul_bt_seconds(kN, kIterations));
    obs::set_metrics_enabled(true);
    on_seconds = std::min(on_seconds, sec_matmul_bt_seconds(kN, kIterations));
  }

  // Longer windows for the admin pair: the measurement must span
  // several scrape periods, or the realized scrape rate quantizes to
  // 0 or >hz per window and the comparison measures timing luck.
  constexpr int kScrapeHz = 10;
  constexpr int kAdminIterations = 48;
  obs::set_metrics_enabled(true);
  double admin_off_seconds = 1e300;
  double admin_on_seconds = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    admin_off_seconds = std::min(
        admin_off_seconds, sec_matmul_bt_seconds(kN, kAdminIterations));
    admin_on_seconds = std::min(
        admin_on_seconds,
        sec_matmul_bt_seconds_scraped(kN, kAdminIterations, kScrapeHz));
  }
  obs::set_metrics_enabled(was_enabled);

  const double overhead_percent = (on_seconds / off_seconds - 1.0) * 100.0;
  const double admin_overhead_percent =
      (admin_on_seconds / admin_off_seconds - 1.0) * 100.0;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot open " << path << " for writing\n";
    return false;
  }
  out << "{\n"
      << "  \"workload\": \"sec_matmul_bt\",\n"
      << "  \"matrix_n\": " << kN << ",\n"
      << "  \"iterations_per_repetition\": " << kIterations << ",\n"
      << "  \"repetitions\": " << kRepetitions << ",\n"
      << "  \"seconds_metrics_off\": " << off_seconds << ",\n"
      << "  \"seconds_metrics_on\": " << on_seconds << ",\n"
      << "  \"overhead_percent\": " << overhead_percent << ",\n"
      << "  \"overhead_target_percent\": 2.0,\n"
      << "  \"admin_scrape\": {\n"
      << "    \"scrape_hz\": " << kScrapeHz << ",\n"
      << "    \"iterations_per_repetition\": " << kAdminIterations << ",\n"
      << "    \"seconds_admin_off\": " << admin_off_seconds << ",\n"
      << "    \"seconds_admin_on\": " << admin_on_seconds << ",\n"
      << "    \"overhead_percent\": " << admin_overhead_percent << ",\n"
      << "    \"overhead_target_percent\": 2.0\n"
      << "  }\n"
      << "}\n";
  out.flush();
  if (!out) {
    std::cerr << "error: failed writing " << path << "\n";
    return false;
  }
  std::cout << "wrote telemetry-overhead snapshot to " << path << " ("
            << overhead_percent << "% enabled-mode overhead, "
            << admin_overhead_percent << "% 10 Hz admin-scrape overhead)\n";
  return true;
}

}  // namespace
}  // namespace trustddl

int main(int argc, char** argv) {
  std::string rounds_json;
  std::string obs_json;
  // Strip our flags before google-benchmark parses the rest.
  for (int i = 1; i < argc;) {
    if (std::strncmp(argv[i], "--rounds_json=", 14) == 0) {
      rounds_json = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--obs_json=", 11) == 0) {
      obs_json = argv[i] + 11;
    } else {
      ++i;
      continue;
    }
    for (int j = i; j + 1 < argc; ++j) {
      argv[j] = argv[j + 1];
    }
    --argc;
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  if (!rounds_json.empty() && !trustddl::write_rounds_snapshot(rounds_json)) {
    return 1;
  }
  if (!obs_json.empty() && !trustddl::write_obs_snapshot(obs_json)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
