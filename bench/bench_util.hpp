// Shared helpers for the paper-reproduction bench binaries.
//
// Statistical methodology (qMEMO-style, SNIPPETS.md §2-3): every
// reported number is a per-iteration time distribution over n
// independent trials after a warm-up phase, summarized as
// median/P95/CV.  One-shot "best of 5" numbers are gone — the CV is
// what lets scripts/check_bench.py tell a real regression from a
// noisy run.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/framework.hpp"

namespace trustddl::bench {

/// Defeat dead-code elimination of a benchmarked result without
/// perturbing the timed loop (compiler must assume `value` escapes).
template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Summary of a per-iteration wall-time distribution.
struct TrialStats {
  double median_s = 0.0;
  double p95_s = 0.0;
  double cv = 0.0;  // stddev / mean — the flakiness signal
  int trials = 0;
};

/// Summarize raw per-trial wall times into median/P95/CV.  Used
/// directly by session-scale benches (serving, fleet, training) that
/// collect one wall-time sample per multi-second session — the
/// warm-up/inner-loop calibration in run_trials below is built for
/// microsecond kernels and would multiply such sessions 5x per trial.
inline TrialStats stats_from_samples(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  TrialStats stats;
  stats.trials = static_cast<int>(samples.size());
  const std::size_t n = samples.size();
  if (n == 0) {
    return stats;
  }
  stats.median_s = n % 2 == 1 ? samples[n / 2]
                              : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  // Nearest-rank P95.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(n)));
  stats.p95_s = samples[std::min(n - 1, rank == 0 ? 0 : rank - 1)];
  // Robust CV: 1.4826 * MAD / median (the constant makes MAD estimate
  // one standard deviation for Gaussian data, so the 0.15 gate keeps
  // its usual meaning).  Host interference is strictly one-sided —
  // steal bursts contaminate whole trials from above — and a
  // stddev-based CV lets a single such trial brand a perfectly
  // repeatable workload "flaky".  MAD ignores up to half the trials
  // as outliers, so it measures genuine repeatability; contaminated
  // trials still surface in P95.
  std::vector<double> deviations(n);
  for (std::size_t i = 0; i < n; ++i) {
    deviations[i] = std::abs(samples[i] - stats.median_s);
  }
  std::sort(deviations.begin(), deviations.end());
  const double mad = n % 2 == 1
                         ? deviations[n / 2]
                         : 0.5 * (deviations[n / 2 - 1] + deviations[n / 2]);
  stats.cv = stats.median_s > 0.0 ? 1.4826 * mad / stats.median_s : 0.0;
  return stats;
}

/// Run `fn` through warm-up, inner-iteration calibration, and
/// `trials` timed repetitions; returns the per-iteration distribution
/// summary.  Warm-up runs until ~20 ms or 100 iterations have elapsed
/// (at least two), both priming caches/pools and measuring a first
/// per-iteration estimate.  Each trial then times five repetitions of
/// a calibrated inner loop (each at least `min_trial_seconds`) and
/// records the fastest: these benches run on shared virtualized cores
/// where scheduler/steal bursts only ever *add* time, so the minimum
/// is the least-contaminated estimate of the kernel's true cost, and
/// the CV across trials measures genuine drift instead of host noise.
template <typename Fn>
TrialStats run_trials(const Fn& fn, int trials = 9,
                      double min_trial_seconds = 0.02) {
  using clock = std::chrono::steady_clock;
  const auto seconds_since = [](clock::time_point start) {
    return std::chrono::duration<double>(clock::now() - start).count();
  };

  // Warm-up + calibration.
  double warm_elapsed = 0.0;
  int warm_runs = 0;
  {
    const auto start = clock::now();
    do {
      fn();
      ++warm_runs;
      warm_elapsed = seconds_since(start);
    } while (warm_runs < 100 && (warm_runs < 2 || warm_elapsed < 0.02));
  }
  const double once = warm_elapsed / warm_runs;
  const int iters = std::max(
      1, static_cast<int>(min_trial_seconds / (once + 1e-12)));

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(std::max(trials, 1)));
  for (int t = 0; t < std::max(trials, 1); ++t) {
    double fastest = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      const auto start = clock::now();
      for (int i = 0; i < iters; ++i) {
        fn();
      }
      const double seconds = seconds_since(start) / iters;
      if (rep == 0 || seconds < fastest) {
        fastest = seconds;
      }
    }
    samples.push_back(fastest);
  }
  // Min-of-5 already filtered within-trial interference; the robust
  // median/P95/MAD-CV summary across trials is shared with the
  // session-scale benches.
  return stats_from_samples(std::move(samples));
}

/// Modeled LAN time: measured wall time plus a network model of
/// 100 us per message and 1 Gbit/s of bandwidth, divided by 3 because
/// the three computing parties communicate concurrently.  The paper
/// ran on four machines over a real network; this model restores the
/// latency component that an in-process transport removes.  Reported
/// alongside (never instead of) the measured wall time.
inline double modeled_lan_seconds(const baselines::StepCost& cost) {
  constexpr double kPerMessageSeconds = 100e-6;
  constexpr double kBytesPerSecond = 1e9 / 8.0;
  const double network = (static_cast<double>(cost.messages) *
                              kPerMessageSeconds +
                          static_cast<double>(cost.bytes) / kBytesPerSecond) /
                         3.0;
  return cost.wall_seconds + network;
}

/// Parse "--key=value" style size overrides: returns `fallback` when
/// the flag is absent.
inline std::size_t arg_size(int argc, char** argv, const std::string& key,
                            std::size_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoull(arg.c_str() + prefix.size(), nullptr, 10));
    }
  }
  return fallback;
}

}  // namespace trustddl::bench
