// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/framework.hpp"

namespace trustddl::bench {

/// Modeled LAN time: measured wall time plus a network model of
/// 100 us per message and 1 Gbit/s of bandwidth, divided by 3 because
/// the three computing parties communicate concurrently.  The paper
/// ran on four machines over a real network; this model restores the
/// latency component that an in-process transport removes.  Reported
/// alongside (never instead of) the measured wall time.
inline double modeled_lan_seconds(const baselines::StepCost& cost) {
  constexpr double kPerMessageSeconds = 100e-6;
  constexpr double kBytesPerSecond = 1e9 / 8.0;
  const double network = (static_cast<double>(cost.messages) *
                              kPerMessageSeconds +
                          static_cast<double>(cost.bytes) / kBytesPerSecond) /
                         3.0;
  return cost.wall_seconds + network;
}

/// Parse "--key=value" style size overrides: returns `fallback` when
/// the flag is absent.
inline std::size_t arg_size(int argc, char** argv, const std::string& key,
                            std::size_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoull(arg.c_str() + prefix.size(), nullptr, 10));
    }
  }
  return fallback;
}

}  // namespace trustddl::bench
