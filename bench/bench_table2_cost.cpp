// Table II reproduction: runtime and communication cost of a
// single-image (batch size 1) training step and inference on the
// Table I network, for every framework row:
//   SecureNN  (honest-but-curious)
//   Falcon    (honest-but-curious and malicious)
//   SafeML    (crash-fault)
//   TrustDDL  (honest-but-curious and malicious)
//
// Costs are MARGINAL per step: the one-time weight-sharing setup is
// cancelled by differencing a 3-step and a 1-step session.  Two times
// are reported: measured wall time (all frameworks share this
// machine's optimized substrate, so absolute gaps are smaller than the
// paper's mixed-implementation numbers) and a modeled LAN time that
// adds 100 us/message + 1 Gbit/s, restoring the round-trip component
// the paper's four-machine deployment had.  The SHAPE to check against
// the paper: SecureNN/Falcon are orders of magnitude lighter than
// SafeML/TrustDDL in communication; TrustDDL-malicious costs more than
// TrustDDL-HbC but escalates LESS than Falcon does from HbC to
// malicious (paper §IV-C: 0.44x vs 0.62x increase).
//
// Pass --phases for the protocol-phase breakdown mode instead of the
// framework table: one TrustDDL-malicious training step + inference
// with the metrics registry enabled, reported as time per span
// (model/layer/protocol/opening-phase taxonomy from the obs layer).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/adapters.hpp"
#include "baselines/falcon/falcon.hpp"
#include "baselines/securenn/securenn.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/loss.hpp"
#include "numeric/kernels.hpp"
#include "obs/metrics.hpp"

using namespace trustddl;
using baselines::StepCost;

namespace {

struct Row {
  std::string framework;
  std::string model;
  std::string task;
  StepCost cost;
};

StepCost marginal_train(baselines::Framework& framework,
                        const RealTensor& image, const RealTensor& onehot,
                        double lr) {
  const StepCost one = framework.train(image, onehot, lr, 1);
  const StepCost three = framework.train(image, onehot, lr, 3);
  return (three - one).scaled(0.5);
}

StepCost marginal_infer(baselines::Framework& framework,
                        const RealTensor& image) {
  const StepCost one = framework.infer(image, 1);
  const StepCost three = framework.infer(image, 3);
  return (three - one).scaled(0.5);
}

/// --phases: run one TrustDDL-malicious training step and one
/// inference with the metrics registry on, then print every span
/// accumulator (span.<name>.us / span.<name>.count).  Spans NEST —
/// model.forward contains the layer.* spans, which contain proto.* and
/// open.* — so the rows are a taxonomy, not a partition; comparing
/// siblings (e.g. the open.* phases against each other) is the
/// intended reading.
int run_phase_breakdown(const nn::ModelSpec& spec, const RealTensor& image,
                        const RealTensor& onehot, double lr) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::global().reset();

  auto framework =
      baselines::make_trustddl(spec, mpc::SecurityMode::kMalicious, 7);
  const StepCost train_cost = framework->train(image, onehot, lr, 1);
  const StepCost infer_cost = framework->infer(image, 1);

  struct PhaseRow {
    std::string name;
    std::uint64_t us = 0;
    std::uint64_t count = 0;
  };
  std::vector<PhaseRow> phases;
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::global().snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    constexpr const char* kPrefix = "span.";
    constexpr const char* kSuffix = ".us";
    if (name.rfind(kPrefix, 0) != 0 || name.size() < 8 ||
        name.compare(name.size() - 3, 3, kSuffix) != 0) {
      continue;
    }
    PhaseRow row;
    row.name = name.substr(5, name.size() - 8);
    row.us = value;
    row.count = snapshot.counter_sum("span." + row.name + ".count");
    phases.push_back(std::move(row));
  }
  std::sort(phases.begin(), phases.end(),
            [](const PhaseRow& a, const PhaseRow& b) { return a.us > b.us; });

  std::printf("=== TrustDDL malicious: per-phase span breakdown ===\n");
  std::printf("Workload: Table I CNN, one training step + one inference, "
              "batch size 1.\nSpans nest (model > layer > proto > open); "
              "compare siblings, not the column sum.\n\n");
  std::printf("%-28s %10s %12s %12s\n", "Span", "Calls", "Total (ms)",
              "us/call");
  for (const PhaseRow& row : phases) {
    std::printf("%-28s %10llu %12.3f %12.1f\n", row.name.c_str(),
                static_cast<unsigned long long>(row.count),
                static_cast<double>(row.us) / 1000.0,
                row.count == 0 ? 0.0
                               : static_cast<double>(row.us) /
                                     static_cast<double>(row.count));
  }
  std::printf("\nStep wall time: train %.4f s, inference %.4f s "
              "(metrics enabled).\n",
              train_cost.wall_seconds, infer_cost.wall_seconds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool phases = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--phases") == 0) {
      phases = true;
    }
  }
  // --threads=N pins the compute-kernel pool for every framework in
  // the comparison (0 = hardware concurrency, 1 = serial kernels).
  const std::size_t threads =
      bench::arg_size(argc, argv, "threads",
                      static_cast<std::size_t>(
                          kernels::global_config().resolved_threads()));
  {
    kernels::KernelConfig kernel_config = kernels::global_config();
    kernel_config.threads = static_cast<int>(threads);
    kernels::set_global_config(kernel_config);
  }

  if (!phases) {
    std::printf("=== Table II: Runtime and Communication Cost ===\n");
    std::printf("Workload: Table I CNN, batch size 1, 64-bit fixed point "
                "(%d fractional bits); marginal per-step cost; "
                "%zu kernel thread(s).\n\n",
                fx::kDefaultFracBits, threads);
  }

  const nn::ModelSpec spec = nn::mnist_cnn_spec();
  data::SyntheticMnistConfig data_config;
  data_config.train_count = 1;
  data_config.test_count = 1;
  const auto split = data::generate_synthetic_mnist(data_config);
  const RealTensor image = split.train.images;
  const RealTensor onehot = nn::one_hot(split.train.labels, 10);
  const double lr = 0.1;

  if (phases) {
    return run_phase_breakdown(spec, image, onehot, lr);
  }

  std::vector<Row> rows;

  {
    baselines::securenn::SecureNnFramework framework(spec, 7);
    rows.push_back({"SecureNN", "Honest-but-Curious", "Training",
                    marginal_train(framework, image, onehot, lr)});
  }
  {
    baselines::falcon::FalconFramework framework(spec, false, 7);
    rows.push_back({"Falcon", "Honest-but-Curious", "Training",
                    marginal_train(framework, image, onehot, lr)});
  }
  {
    baselines::falcon::FalconFramework framework(spec, true, 7);
    rows.push_back({"Falcon", "Malicious", "Training",
                    marginal_train(framework, image, onehot, lr)});
  }
  {
    auto framework = baselines::make_safeml(spec, 7);
    rows.push_back({"SafeML", "Crash-Fault", "Training",
                    marginal_train(*framework, image, onehot, lr)});
  }
  {
    auto framework =
        baselines::make_trustddl(spec, mpc::SecurityMode::kHonestButCurious, 7);
    rows.push_back({"TrustDDL", "Honest-but-Curious", "Training",
                    marginal_train(*framework, image, onehot, lr)});
  }
  {
    auto framework =
        baselines::make_trustddl(spec, mpc::SecurityMode::kMalicious, 7);
    rows.push_back({"TrustDDL", "Malicious", "Training",
                    marginal_train(*framework, image, onehot, lr)});
  }

  {
    baselines::securenn::SecureNnFramework framework(spec, 7);
    rows.push_back({"SecureNN", "Honest-but-Curious", "Inference",
                    marginal_infer(framework, image)});
  }
  {
    baselines::falcon::FalconFramework framework(spec, false, 7);
    rows.push_back({"Falcon", "Honest-but-Curious", "Inference",
                    marginal_infer(framework, image)});
  }
  {
    baselines::falcon::FalconFramework framework(spec, true, 7);
    rows.push_back({"Falcon", "Malicious", "Inference",
                    marginal_infer(framework, image)});
  }
  {
    auto framework = baselines::make_safeml(spec, 7);
    rows.push_back({"SafeML", "Crash-Fault", "Inference",
                    marginal_infer(*framework, image)});
  }
  {
    auto framework =
        baselines::make_trustddl(spec, mpc::SecurityMode::kHonestButCurious, 7);
    rows.push_back({"TrustDDL", "Honest-but-Curious", "Inference",
                    marginal_infer(*framework, image)});
  }
  {
    auto framework =
        baselines::make_trustddl(spec, mpc::SecurityMode::kMalicious, 7);
    rows.push_back({"TrustDDL", "Malicious", "Inference",
                    marginal_infer(*framework, image)});
  }

  std::printf("%-10s %-20s %-10s %12s %14s %12s %10s\n", "Framework",
              "Model", "Task", "Wall (s)", "LAN-model (s)", "Comm (MB)",
              "Messages");
  for (const Row& row : rows) {
    std::printf("%-10s %-20s %-10s %12.4f %14.4f %12.4f %10llu\n",
                row.framework.c_str(), row.model.c_str(), row.task.c_str(),
                row.cost.wall_seconds, bench::modeled_lan_seconds(row.cost),
                row.cost.megabytes(),
                static_cast<unsigned long long>(row.cost.messages));
  }

  // §IV-C escalation claim: TrustDDL's HbC -> malicious increase is
  // smaller than Falcon's.
  const auto find = [&](const std::string& fw, const std::string& model,
                        const std::string& task) -> const Row& {
    for (const Row& row : rows) {
      if (row.framework == fw && row.model == model && row.task == task) {
        return row;
      }
    }
    std::abort();
  };
  const double falcon_time_escalation =
      bench::modeled_lan_seconds(
          find("Falcon", "Malicious", "Training").cost) /
          bench::modeled_lan_seconds(
              find("Falcon", "Honest-but-Curious", "Training").cost) -
      1.0;
  const double trustddl_time_escalation =
      bench::modeled_lan_seconds(
          find("TrustDDL", "Malicious", "Training").cost) /
          bench::modeled_lan_seconds(
              find("TrustDDL", "Honest-but-Curious", "Training").cost) -
      1.0;
  std::printf("\nHbC -> Malicious runtime escalation (training, "
              "LAN-model): Falcon %+.2fx, TrustDDL %+.2fx "
              "(paper: +0.62x vs +0.44x — TrustDDL escalates less)\n",
              falcon_time_escalation, trustddl_time_escalation);
  const double falcon_comm_escalation =
      static_cast<double>(find("Falcon", "Malicious", "Training").cost.bytes) /
          static_cast<double>(
              find("Falcon", "Honest-but-Curious", "Training").cost.bytes) -
      1.0;
  const double trustddl_comm_escalation =
      static_cast<double>(
          find("TrustDDL", "Malicious", "Training").cost.bytes) /
          static_cast<double>(
              find("TrustDDL", "Honest-but-Curious", "Training").cost.bytes) -
      1.0;
  std::printf("HbC -> Malicious communication escalation (training): "
              "Falcon %+.2fx, TrustDDL %+.2fx\n",
              falcon_comm_escalation, trustddl_comm_escalation);
  return 0;
}
