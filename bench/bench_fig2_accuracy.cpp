// Fig. 2 reproduction: test accuracy per epoch on the MNIST-like task,
// CML (centralized plaintext model learning) vs TrustDDL secure
// training, five epochs, Table I network.
//
// Differences from the paper's run (documented in EXPERIMENTS.md):
//  * synthetic MNIST substitute (no dataset files offline);
//  * a scaled-down training set (default 400 train / 150 test instead
//    of 60k/10k) so the MPC run completes in bench time — override
//    with --train=N --test=N --epochs=N --batch=N.
// The property under test is the SHAPE: the TrustDDL curve tracks the
// CML curve closely because ReLU is exact (SecComp-BT) and Softmax is
// outsourced in floating point.
#include <cstdio>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/loss.hpp"

using namespace trustddl;

int main(int argc, char** argv) {
  const std::size_t train_count = bench::arg_size(argc, argv, "train", 400);
  const std::size_t test_count = bench::arg_size(argc, argv, "test", 150);
  const std::size_t epochs = bench::arg_size(argc, argv, "epochs", 5);
  const std::size_t batch = bench::arg_size(argc, argv, "batch", 16);
  // Truncation: masked-open by default.  The paper's share-local
  // truncation (--local=1) occasionally hits a catastrophic per-element
  // glitch on the large weight-gradient tensors at this scale, which
  // poisons one share set and shows up as a transient accuracy dip —
  // a reproduction finding documented in EXPERIMENTS.md.
  const bool local_trunc = bench::arg_size(argc, argv, "local", 0) != 0;
  const double learning_rate = 0.25;

  std::printf("=== Fig. 2: Model Accuracy on the (synthetic) MNIST task ===\n");
  std::printf(
      "Table I network: Conv 5x5 pad 2 stride 2 (1->5 ch, 28x28->14x14), "
      "ReLU(980), FC 980->100, ReLU(100), FC 100->10, Softmax\n");
  std::printf("train=%zu test=%zu epochs=%zu batch=%zu lr=%.2f "
              "fixed-point=%d frac bits\n\n",
              train_count, test_count, epochs, batch, learning_rate,
              fx::kDefaultFracBits);

  data::SyntheticMnistConfig data_config;
  data_config.train_count = train_count;
  data_config.test_count = test_count;
  data_config.seed = 20240706;
  const auto split = data::generate_synthetic_mnist(data_config);

  // --- CML: centralized plaintext training. ---
  std::vector<double> cml_accuracy;
  {
    Rng rng(1);
    nn::Sequential model = nn::build_model(nn::mnist_cnn_spec(), rng);
    nn::SgdOptimizer optimizer(learning_rate);
    Rng shuffle_rng(99);
    for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
      const auto indices =
          data::shuffled_indices(split.train.size(), shuffle_rng);
      for (std::size_t start = 0; start < split.train.size();
           start += batch) {
        const std::size_t count =
            std::min(batch, split.train.size() - start);
        const data::Dataset step =
            data::gather(split.train, indices, start, count);
        model.train_step(step.images, nn::one_hot(step.labels, 10),
                         optimizer);
      }
      cml_accuracy.push_back(
          model.accuracy(split.test.images, split.test.labels));
    }
  }

  // --- TrustDDL: secure training (malicious model, full protocol). ---
  core::EngineConfig engine_config;
  engine_config.mode = mpc::SecurityMode::kMalicious;
  engine_config.trunc_mode = local_trunc ? core::TruncationMode::kLocal
                                         : core::TruncationMode::kMaskedOpen;
  engine_config.seed = 1;  // same initialization as the CML run
  core::TrustDdlEngine engine(nn::mnist_cnn_spec(), engine_config);

  core::TrainOptions options;
  options.epochs = epochs;
  options.batch_size = batch;
  options.learning_rate = learning_rate;
  options.evaluate_each_epoch = true;
  options.shuffle_seed = 99;
  const core::TrainResult secure =
      engine.train(split.train, split.test, options);

  std::printf("%-8s %-18s %-18s\n", "epoch", "CML accuracy",
              "TrustDDL accuracy");
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    const double secure_acc =
        epoch < secure.epoch_test_accuracy.size()
            ? secure.epoch_test_accuracy[epoch]
            : 0.0;
    std::printf("%-8zu %-18.4f %-18.4f\n", epoch + 1, cml_accuracy[epoch],
                secure_acc);
  }

  if (!secure.epoch_test_accuracy.empty()) {
    const double final_gap =
        cml_accuracy.back() - secure.epoch_test_accuracy.back();
    std::printf("\nfinal-epoch gap (CML - TrustDDL): %+.4f\n", final_gap);
  }
  std::printf("secure training: %.2f s wall, %.2f MB total traffic, "
              "%llu messages\n",
              secure.cost.wall_seconds, secure.cost.total_megabytes(),
              static_cast<unsigned long long>(secure.cost.total_messages));
  std::printf("detections: %zu commitment violations, %zu distance "
              "anomalies, %zu share-auth failures (expected 0 without an "
              "adversary)\n",
              secure.cost.commitment_violations,
              secure.cost.distance_anomalies,
              secure.cost.share_auth_failures);
  return 0;
}
