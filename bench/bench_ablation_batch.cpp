// Ablation: batch-size amortization of secure training.
//
// The paper's microbenchmarks use batch size 1 (Table II); larger
// batches amortize the per-opening round overhead and the commitment
// hashes over more samples.  This bench sweeps batch size on the
// Table I CNN and reports marginal per-IMAGE cost, plus the
// truncation-strategy split (local vs masked-open).
#include <cstdio>

#include "baselines/adapters.hpp"
#include "bench_util.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/loss.hpp"

using namespace trustddl;
using baselines::StepCost;

int main() {
  std::printf("=== Ablation: batch-size amortization (Table I CNN, "
              "TrustDDL-malicious) ===\n\n");
  std::printf("%-8s %14s %16s %14s\n", "batch", "s / image",
              "LAN-model s/img", "MB / image");

  data::SyntheticMnistConfig data_config;
  data_config.train_count = 64;
  data_config.test_count = 1;
  const auto split = data::generate_synthetic_mnist(data_config);

  for (const std::size_t batch : {std::size_t{1}, std::size_t{4},
                                  std::size_t{16}}) {
    const data::Dataset slice_data = data::slice(split.train, 0, batch);
    const RealTensor onehot = nn::one_hot(slice_data.labels, 10);
    auto framework = baselines::make_trustddl(
        nn::mnist_cnn_spec(), mpc::SecurityMode::kMalicious, 7);
    const StepCost one =
        framework->train(slice_data.images, onehot, 0.1, 1);
    const StepCost three =
        framework->train(slice_data.images, onehot, 0.1, 3);
    const StepCost marginal = (three - one).scaled(0.5);
    const double images = static_cast<double>(batch);
    std::printf("%-8zu %14.4f %16.4f %14.4f\n", batch,
                marginal.wall_seconds / images,
                bench::modeled_lan_seconds(marginal) / images,
                marginal.megabytes() / images);
  }

  std::printf("\n=== Ablation: truncation strategy (batch 4) ===\n");
  std::printf("%-14s %12s %14s  %s\n", "strategy", "wall (s)", "comm (MB)",
              "notes");
  const data::Dataset slice_data = data::slice(split.train, 0, 4);
  const RealTensor onehot = nn::one_hot(slice_data.labels, 10);
  for (const auto mode :
       {core::TruncationMode::kLocal, core::TruncationMode::kMaskedOpen}) {
    core::EngineConfig config;
    config.mode = mpc::SecurityMode::kMalicious;
    config.trunc_mode = mode;
    config.seed = 7;
    baselines::EngineFramework framework("TrustDDL", nn::mnist_cnn_spec(),
                                         config);
    const StepCost one = framework.train(slice_data.images, onehot, 0.1, 1);
    const StepCost three = framework.train(slice_data.images, onehot, 0.1, 3);
    const StepCost marginal = (three - one).scaled(0.5);
    std::printf("%-14s %12.4f %14.4f  %s\n",
                mode == core::TruncationMode::kLocal ? "local"
                                                     : "masked-open",
                marginal.wall_seconds, marginal.megabytes(),
                mode == core::TruncationMode::kLocal
                    ? "cheaper; +-1 ulp cross-set drift"
                    : "exact & attack-consistent; +1 opening per product");
  }
  return 0;
}
