// Transport comparison: the five-actor secure-training workload over
// the in-memory mailbox network vs real loopback TCP sockets
// (net::TcpFabric), each with the deferred-opening scheduler on and
// off.
//
// The byte volume is near-identical across transports (each message is
// metered once, at its sender); what TCP adds is a real per-message
// and per-round cost, which is exactly what the deferred-opening
// scheduler amortizes.  Training is used as the workload because its
// backward pass and SGD step carry several independent openings per
// batch — inference opens too few values at a time for the scheduler
// to matter.  Masked-open truncation maximizes what there is to batch.
//
// Loopback sockets have ~microsecond round trips, so both transports
// also run with an emulated kLinkLatency one-way delay (delivery-time
// stamping, no thread blocks) to show the round-count reduction as
// wall-clock the way a real LAN would.  Each configuration trains
// kTrials times; the reported wall time is the bench_util
// median/P95/CV over the runs (accuracies must be identical — the
// transport must not change what is computed).
//
// Pass --json=<path> to write the snapshot committed as
// BENCH_transport.json at the repo root.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "data/synthetic_mnist.hpp"
#include "net/tcp_transport.hpp"

using namespace trustddl;

namespace {

constexpr std::size_t kRows = 24;
constexpr std::size_t kBatch = 8;
constexpr int kTrials = 5;
constexpr std::chrono::milliseconds kLinkLatency{3};

/// A deep, narrow MLP: many layers (= many opening rounds per step)
/// over small tensors (= little fixed per-byte cost), so the round
/// structure — the thing the transports differ on — dominates.
nn::ModelSpec bench_spec() {
  nn::ModelSpec spec;
  spec.name = "deep-narrow-mlp";
  spec.input_features = 784;
  spec.classes = 10;
  spec.layers = {nn::LayerSpec::make_dense(784, 16),
                 nn::LayerSpec::make_relu(),
                 nn::LayerSpec::make_dense(16, 16),
                 nn::LayerSpec::make_relu(),
                 nn::LayerSpec::make_dense(16, 16),
                 nn::LayerSpec::make_relu(),
                 nn::LayerSpec::make_dense(16, 10),
                 nn::LayerSpec::make_softmax()};
  return spec;
}

struct RunStats {
  bench::TrialStats wall;  // median/P95/CV over kTrials runs
  std::uint64_t total_bytes = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t opening_rounds = 0;
  std::uint64_t values_opened = 0;
  std::vector<double> accuracy;
};

RunStats run(const nn::ModelSpec& spec, const core::EngineConfig& config,
             const data::TrainTestSplit& split,
             const core::TrainOptions& options, bool over_tcp) {
  RunStats stats;
  std::vector<double> walls;
  for (int rep = 0; rep < kTrials; ++rep) {
    std::unique_ptr<net::TcpFabric> fabric;
    std::unique_ptr<core::TrustDdlEngine> engine;
    if (over_tcp) {
      net::NetworkConfig net_config;
      net_config.num_parties = core::kNumActors;
      net_config.emulate_latency = config.emulate_latency;
      net_config.link_latency = config.link_latency;
      fabric = std::make_unique<net::TcpFabric>(net_config);
      engine = std::make_unique<core::TrustDdlEngine>(spec, config, *fabric);
    } else {
      engine = std::make_unique<core::TrustDdlEngine>(spec, config);
    }
    const core::TrainResult result =
        engine->train(split.train, split.test, options);
    walls.push_back(result.cost.wall_seconds);
    if (rep > 0 && result.epoch_test_accuracy != stats.accuracy) {
      std::fprintf(stderr, "FATAL: accuracy changed between trials\n");
      std::exit(1);
    }
    stats.total_bytes = result.cost.total_bytes;
    stats.total_messages = result.cost.total_messages;
    stats.opening_rounds = result.cost.opening_rounds;
    stats.values_opened = result.cost.values_opened;
    stats.accuracy = result.epoch_test_accuracy;
  }
  stats.wall = bench::stats_from_samples(std::move(walls));
  return stats;
}

void print_row(const char* name, const RunStats& stats) {
  std::printf("%-22s %10.3f %10.3f %8.3f %12.2f %10llu %10llu %10llu\n",
              name, stats.wall.median_s, stats.wall.p95_s, stats.wall.cv,
              static_cast<double>(stats.total_bytes) / (1 << 20),
              static_cast<unsigned long long>(stats.total_messages),
              static_cast<unsigned long long>(stats.opening_rounds),
              static_cast<unsigned long long>(stats.values_opened));
}

void write_json_entry(std::FILE* file, const char* key,
                      const RunStats& stats, const char* suffix) {
  std::fprintf(file,
               "    \"%s\": {\"wall_seconds\": %.6f, \"wall_p95_seconds\": "
               "%.6f, \"cv\": %.4f, \"total_bytes\": %llu, "
               "\"total_messages\": %llu, \"opening_rounds\": %llu, "
               "\"values_opened\": %llu}%s\n",
               key, stats.wall.median_s, stats.wall.p95_s, stats.wall.cv,
               static_cast<unsigned long long>(stats.total_bytes),
               static_cast<unsigned long long>(stats.total_messages),
               static_cast<unsigned long long>(stats.opening_rounds),
               static_cast<unsigned long long>(stats.values_opened), suffix);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  data::SyntheticMnistConfig data_config;
  data_config.train_count = kRows;
  data_config.test_count = 16;
  const auto split = data::generate_synthetic_mnist(data_config);
  const nn::ModelSpec spec = bench_spec();

  core::EngineConfig config;
  config.mode = mpc::SecurityMode::kMalicious;
  config.trunc_mode = core::TruncationMode::kMaskedOpen;
  config.seed = 7;
  config.emulate_latency = true;
  config.link_latency = kLinkLatency;

  core::TrainOptions options;
  options.epochs = 1;
  options.batch_size = kBatch;
  options.learning_rate = 0.3;

  std::printf("=== Transport: in-memory mailboxes vs loopback TCP "
              "(MLP secure training, %zu rows, malicious) ===\n\n",
              kRows);
  std::printf("%-22s %10s %10s %8s %12s %10s %10s %10s\n", "transport",
              "wall (s)", "p95 (s)", "cv", "comm (MB)", "messages", "rounds",
              "opened");

  config.batch_openings = true;
  const RunStats memory_batched = run(spec, config, split, options, false);
  const RunStats tcp_batched = run(spec, config, split, options, true);
  config.batch_openings = false;
  const RunStats memory_unbatched = run(spec, config, split, options, false);
  const RunStats tcp_unbatched = run(spec, config, split, options, true);

  print_row("in-memory batched", memory_batched);
  print_row("in-memory unbatched", memory_unbatched);
  print_row("tcp batched", tcp_batched);
  print_row("tcp unbatched", tcp_unbatched);

  // The transport must not change what is computed, only how fast.
  if (tcp_batched.accuracy != memory_batched.accuracy ||
      tcp_unbatched.accuracy != memory_unbatched.accuracy ||
      tcp_batched.total_bytes != memory_batched.total_bytes) {
    std::fprintf(stderr, "FATAL: transports disagree on results\n");
    return 1;
  }

  const double tcp_speedup =
      tcp_unbatched.wall.median_s / tcp_batched.wall.median_s;
  std::printf("\nTCP wall-clock speedup from batched openings: %.2fx "
              "(%llu -> %llu opening rounds, %llu -> %llu messages)\n",
              tcp_speedup,
              static_cast<unsigned long long>(tcp_unbatched.opening_rounds),
              static_cast<unsigned long long>(tcp_batched.opening_rounds),
              static_cast<unsigned long long>(tcp_unbatched.total_messages),
              static_cast<unsigned long long>(tcp_batched.total_messages));

  if (!json_path.empty()) {
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(file,
                 "{\n  \"workload\": \"mlp_secure_training_%zu_rows\",\n"
                 "  \"mode\": \"malicious\",\n"
                 "  \"trunc_mode\": \"masked_open\",\n"
                 "  \"trials\": %d,\n",
                 kRows, kTrials);
    std::fprintf(file, "  \"in_memory\": {\n");
    write_json_entry(file, "batched", memory_batched, ",");
    write_json_entry(file, "unbatched", memory_unbatched, "");
    std::fprintf(file, "  },\n  \"tcp\": {\n");
    write_json_entry(file, "batched", tcp_batched, ",");
    write_json_entry(file, "unbatched", tcp_unbatched, "");
    std::fprintf(file, "  },\n  \"tcp_batched_speedup\": %.4f\n}\n",
                 tcp_speedup);
    std::fclose(file);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
