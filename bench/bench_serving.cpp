// Serving-layer throughput: dynamic batching vs one-request batches on
// the Table I CNN.
//
// Four concurrent clients issue 24 single-row inference requests at an
// in-process serving session (three party servers + the model owner's
// batch sequencer).  The "batch1" configuration dispatches every
// request as its own batch (max_batch_rows = 1); "batched" lets the
// owner coalesce up to 8 rows per manifest under a short latency
// window.  The MPC forward pays per-round round trips that are almost
// independent of row count (deferred openings), so coalescing amortizes
// protocol rounds across requests — requests/second is the headline.
//
// Links carry an emulated one-way delay (delivery-time stamping, no
// thread blocks) so round amortization shows up as wall-clock the way
// a real LAN would, not just as a message count.
//
// Both configurations must return identical predictions for every
// request — batching is a scheduling decision, never a results change.
//
// Each configuration runs `kTrials` full sessions; the reported wall
// time is the bench_util median/P95/CV over the per-session samples
// (stats_from_samples — sessions are seconds long, so no kernel-scale
// inner-loop calibration).
//
// Pass --json=<path> to write the snapshot committed as
// BENCH_serving.json at the repo root.
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "data/synthetic_mnist.hpp"
#include "serve/harness.hpp"

using namespace trustddl;

namespace {

constexpr int kClients = 4;
constexpr std::size_t kRequestsPerClient = 6;
constexpr std::size_t kRequests = kClients * kRequestsPerClient;
constexpr std::chrono::milliseconds kLinkLatency{2};
constexpr int kTrials = 3;

struct RunStats {
  bench::TrialStats wall;  // median/P95/CV over kTrials sessions
  double requests_per_second = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t total_messages = 0;
  std::vector<std::size_t> labels;  // [client * kRequestsPerClient + r]
};

RunStats run_once(std::size_t max_batch_rows,
                  std::chrono::milliseconds batch_window,
                  const data::TrainTestSplit& split, double* wall_out) {
  serve::SessionConfig config;
  config.spec = nn::mnist_cnn_spec();
  config.engine.mode = mpc::SecurityMode::kMalicious;
  config.engine.seed = 7;
  config.engine.emulate_latency = true;
  config.engine.link_latency = kLinkLatency;
  config.serve.max_batch_rows = max_batch_rows;
  config.serve.batch_window = batch_window;
  config.num_clients = kClients;
  config.client.response_timeout = std::chrono::milliseconds(120000);
  config.client.deadline = std::chrono::milliseconds(120000);

  std::vector<serve::InferenceResult> results(kRequests);
  const serve::SessionResult session = serve::run_serving_session(
      config, [&](int index, serve::InferenceClient& client) {
        // Keep the owner's queue full: submit the client's whole
        // workload before awaiting anything.
        std::vector<std::uint64_t> seqs(kRequestsPerClient);
        const std::size_t base =
            static_cast<std::size_t>(index) * kRequestsPerClient;
        for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
          seqs[r] =
              client.submit(data::slice(split.test, base + r, 1).images);
        }
        for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
          results[base + r] = client.await(seqs[r], 1);
        }
      });

  RunStats stats;
  *wall_out = session.wall_seconds;
  stats.batches = session.scheduler.batches;
  stats.total_messages = session.traffic.total_messages;
  for (const auto& result : results) {
    if (result.status != serve::Status::kOk || result.labels.size() != 1) {
      std::fprintf(stderr, "FATAL: a request did not complete\n");
      std::exit(1);
    }
    stats.labels.push_back(result.labels[0]);
  }
  return stats;
}

RunStats run(std::size_t max_batch_rows,
             std::chrono::milliseconds batch_window,
             const data::TrainTestSplit& split) {
  RunStats stats;
  std::vector<double> walls(kTrials);
  for (int trial = 0; trial < kTrials; ++trial) {
    RunStats once =
        run_once(max_batch_rows, batch_window, split, &walls[trial]);
    if (trial > 0 && once.labels != stats.labels) {
      std::fprintf(stderr, "FATAL: labels changed between trials\n");
      std::exit(1);
    }
    stats = std::move(once);
  }
  stats.wall = bench::stats_from_samples(std::move(walls));
  stats.requests_per_second =
      static_cast<double>(kRequests) / stats.wall.median_s;
  return stats;
}

void print_row(const char* name, const RunStats& stats) {
  std::printf("%-12s %10.3f %10.3f %8.3f %10.2f %10llu %10llu\n", name,
              stats.wall.median_s, stats.wall.p95_s, stats.wall.cv,
              stats.requests_per_second,
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.total_messages));
}

void write_json_entry(std::FILE* file, const char* key, const RunStats& stats,
                      const char* suffix) {
  std::fprintf(file,
               "  \"%s\": {\"wall_seconds\": %.6f, \"wall_p95_seconds\": "
               "%.6f, \"cv\": %.4f, \"requests_per_second\": %.3f, "
               "\"batches\": %llu, \"total_messages\": %llu}%s\n",
               key, stats.wall.median_s, stats.wall.p95_s, stats.wall.cv,
               stats.requests_per_second,
               static_cast<unsigned long long>(stats.batches),
               static_cast<unsigned long long>(stats.total_messages), suffix);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  data::SyntheticMnistConfig data_config;
  data_config.train_count = 1;
  data_config.test_count = kRequests;
  data_config.seed = 42;
  const auto split = data::generate_synthetic_mnist(data_config);

  std::printf("=== Serving: dynamic batching vs batch-1 (Table I CNN, "
              "%zu requests from %d clients, malicious, %lldms links) "
              "===\n\n",
              kRequests, kClients,
              static_cast<long long>(kLinkLatency.count()));
  std::printf("%-12s %10s %10s %8s %10s %10s %10s\n", "config", "wall (s)",
              "p95 (s)", "cv", "req/s", "batches", "messages");

  const RunStats batch1 =
      run(/*max_batch_rows=*/1, std::chrono::milliseconds(0), split);
  const RunStats batched =
      run(/*max_batch_rows=*/8, std::chrono::milliseconds(20), split);

  print_row("batch1", batch1);
  print_row("batched", batched);

  // Batching is a scheduling decision: predictions must not change.
  if (batch1.labels != batched.labels) {
    std::fprintf(stderr, "FATAL: configurations disagree on predictions\n");
    return 1;
  }

  const double speedup =
      batched.requests_per_second / batch1.requests_per_second;
  std::printf("\nThroughput gain from dynamic batching: %.2fx "
              "(%llu -> %llu batches for %zu requests)\n",
              speedup, static_cast<unsigned long long>(batch1.batches),
              static_cast<unsigned long long>(batched.batches), kRequests);

  if (!json_path.empty()) {
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(file,
                 "{\n  \"workload\": \"cnn_secure_serving_%zu_requests\",\n"
                 "  \"model\": \"mnist_cnn (Table I)\",\n"
                 "  \"mode\": \"malicious\",\n  \"clients\": %d,\n"
                 "  \"link_latency_ms\": %lld,\n  \"trials\": %d,\n",
                 kRequests, kClients,
                 static_cast<long long>(kLinkLatency.count()), kTrials);
    write_json_entry(file, "batch1", batch1, ",");
    write_json_entry(file, "batched", batched, ",");
    std::fprintf(file, "  \"batched_speedup\": %.4f\n}\n", speedup);
    std::fclose(file);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
