// Fleet scaling: one pod vs two pods on the same 24-request serving
// workload (tiny CNN, honest-but-curious mode, 2 ms emulated links).
//
// Eight routed FleetClients issue 3 single-row requests each, every
// request dispatched as its own batch (max_batch_rows = 1 — the
// coalescing win is bench_serving's story; here each batch must pay
// its own protocol rounds).  With one pod all 24 batches serialize
// through a single owner-sequencer and its three parties; with two
// pods the rendezvous hash splits the clients evenly (the "east" /
// "west" names hash keys 5..12 exactly 4/4) and the pods' per-batch
// MPC opening-round waits overlap, so throughput scales close to the
// pod count even on one machine.  The tiny CNN and honest-but-curious
// mode keep per-batch compute small next to the protocol's round
// trips — the waits must be latency-bound, not CPU-bound, for pods
// on one host to overlap (a real fleet gives each pod its own CPUs).
//
// Sharding is a routing decision, never a results change: both fleet
// sizes must reproduce the in-memory engine's labels bit-exactly.
//
// Each configuration runs `kTrials` full sessions and reports the
// bench_util median/P95/CV over the per-session wall times (a full
// session is seconds, so the samples feed stats_from_samples directly
// rather than the calibrated kernel-scale inner loop).
//
// Pass --json=<path> to write the snapshot committed as
// BENCH_fleet.json at the repo root.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "data/synthetic_mnist.hpp"
#include "fleet/harness.hpp"

using namespace trustddl;

namespace {

constexpr int kClients = 8;
constexpr std::size_t kRequestsPerClient = 3;
constexpr std::size_t kRequests = kClients * kRequestsPerClient;
constexpr std::chrono::milliseconds kLinkLatency{2};
constexpr int kTrials = 5;

struct RunStats {
  bench::TrialStats wall;  // median/P95/CV over kTrials sessions
  double requests_per_second = 0.0;
  std::vector<std::size_t> served_by_pod;
  std::size_t failovers = 0;
  std::vector<std::size_t> labels;  // [client * kRequestsPerClient + r]
};

RunStats run(int num_pods, const data::TrainTestSplit& split) {
  fleet::FleetSessionConfig config;
  config.spec = nn::tiny_cnn_spec();
  config.engine.mode = mpc::SecurityMode::kHonestButCurious;
  config.engine.seed = 7;
  config.engine.emulate_latency = true;
  config.engine.link_latency = kLinkLatency;
  config.serve.max_batch_rows = 1;
  config.serve.batch_window = std::chrono::milliseconds(0);
  config.client.response_timeout = std::chrono::milliseconds(120000);
  config.client.deadline = std::chrono::milliseconds(120000);
  config.num_pods = num_pods;
  config.num_clients = kClients;
  // Even 4/4 rendezvous split of client keys 5..12 (see header).
  config.pod_names.assign({"east", "west"});
  config.pod_names.resize(static_cast<std::size_t>(num_pods));

  RunStats stats;
  std::vector<double> walls;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<fleet::FleetResult> results(kRequests);
    const fleet::FleetSessionResult session = fleet::run_fleet_session(
        config, [&](int index, fleet::FleetClient& client) {
          const std::size_t base =
              static_cast<std::size_t>(index) * kRequestsPerClient;
          for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
            results[base + r] =
                client.infer(data::slice(split.test, base + r, 1).images);
          }
        });
    walls.push_back(session.wall_seconds);
    stats.served_by_pod = session.served_by_pod;
    stats.failovers = session.failovers;
    stats.labels.clear();
    for (const auto& entry : results) {
      if (entry.result.status != serve::Status::kOk ||
          entry.result.labels.size() != 1) {
        std::fprintf(stderr, "FATAL: a request did not complete\n");
        std::exit(1);
      }
      stats.labels.push_back(entry.result.labels[0]);
    }
  }
  stats.wall = bench::stats_from_samples(std::move(walls));
  stats.requests_per_second =
      static_cast<double>(kRequests) / stats.wall.median_s;
  return stats;
}

std::string spread_string(const std::vector<std::size_t>& served) {
  std::string out;
  for (std::size_t p = 0; p < served.size(); ++p) {
    if (p != 0) {
      out += "/";
    }
    out += std::to_string(served[p]);
  }
  return out;
}

void print_row(const char* name, const RunStats& stats) {
  std::printf("%-8s %10.3f %10.3f %8.3f %10.2f %12s %10zu\n", name,
              stats.wall.median_s, stats.wall.p95_s, stats.wall.cv,
              stats.requests_per_second,
              spread_string(stats.served_by_pod).c_str(), stats.failovers);
}

void write_json_entry(std::FILE* file, const char* key, const RunStats& stats,
                      const char* suffix) {
  std::fprintf(file,
               "  \"%s\": {\"wall_seconds\": %.6f, \"wall_p95_seconds\": "
               "%.6f, \"cv\": %.4f, \"requests_per_second\": %.3f, "
               "\"served_by_pod\": \"%s\", \"failovers\": %zu}%s\n",
               key, stats.wall.median_s, stats.wall.p95_s, stats.wall.cv,
               stats.requests_per_second,
               spread_string(stats.served_by_pod).c_str(), stats.failovers,
               suffix);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  data::SyntheticMnistConfig data_config;
  data_config.train_count = 1;
  data_config.test_count = kRequests;
  data_config.seed = 42;
  data_config.height = 12;  // tiny_cnn input geometry
  data_config.width = 12;
  data_config.classes = 4;
  const auto split = data::generate_synthetic_mnist(data_config);

  std::printf("=== Fleet scaling: 1 pod vs 2 pods (tiny CNN, %zu requests "
              "from %d clients, semi-honest, %lldms links, median of %d) "
              "===\n\n",
              kRequests, kClients,
              static_cast<long long>(kLinkLatency.count()), kTrials);
  std::printf("%-8s %10s %10s %8s %10s %12s %10s\n", "pods", "wall (s)",
              "p95 (s)", "cv", "req/s", "spread", "failovers");

  const RunStats one = run(1, split);
  const RunStats two = run(2, split);

  print_row("1", one);
  print_row("2", two);

  // Sharding is a routing decision: predictions must not change, and
  // both fleets must match the plain in-memory engine.
  core::EngineConfig reference_config;
  reference_config.mode = mpc::SecurityMode::kHonestButCurious;
  reference_config.seed = 7;
  core::TrustDdlEngine engine(nn::tiny_cnn_spec(), reference_config);
  const auto reference = engine.infer(split.test, /*batch_size=*/4).labels;
  if (one.labels != reference || two.labels != reference) {
    std::fprintf(stderr,
                 "FATAL: fleet predictions diverge from the engine\n");
    return 1;
  }

  const double speedup = one.wall.median_s / two.wall.median_s;
  std::printf("\nScaling from sharding across 2 pods: %.2fx "
              "(client spread %s)\n",
              speedup, spread_string(two.served_by_pod).c_str());

  if (!json_path.empty()) {
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(file,
                 "{\n  \"workload\": \"fleet_sharded_serving_%zu_requests\",\n"
                 "  \"model\": \"tiny_cnn\",\n"
                 "  \"mode\": \"honest_but_curious\",\n  \"clients\": %d,\n"
                 "  \"link_latency_ms\": %lld,\n  \"trials\": %d,\n",
                 kRequests, kClients,
                 static_cast<long long>(kLinkLatency.count()), kTrials);
    write_json_entry(file, "pods1", one, ",");
    write_json_entry(file, "pods2", two, ",");
    std::fprintf(file, "  \"sharding_speedup\": %.4f\n}\n", speedup);
    std::fclose(file);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
