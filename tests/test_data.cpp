#include "data/synthetic_mnist.hpp"

#include <gtest/gtest.h>

#include <set>

#include "nn/model.hpp"
#include "nn/model_zoo.hpp"

namespace trustddl::data {
namespace {

SyntheticMnistConfig small_config() {
  SyntheticMnistConfig config;
  config.train_count = 300;
  config.test_count = 100;
  config.seed = 123;
  return config;
}

TEST(SyntheticMnistTest, ShapesAndValueRange) {
  const auto split = generate_synthetic_mnist(small_config());
  EXPECT_EQ(split.train.images.shape(), (Shape{300, 784}));
  EXPECT_EQ(split.train.labels.size(), 300u);
  EXPECT_EQ(split.test.images.shape(), (Shape{100, 784}));
  for (std::size_t i = 0; i < split.train.images.size(); ++i) {
    EXPECT_GE(split.train.images[i], 0.0);
    EXPECT_LE(split.train.images[i], 1.0);
  }
}

TEST(SyntheticMnistTest, AllClassesPresent) {
  const auto split = generate_synthetic_mnist(small_config());
  std::set<std::size_t> classes(split.train.labels.begin(),
                                split.train.labels.end());
  EXPECT_EQ(classes.size(), 10u);
  for (std::size_t label : split.train.labels) {
    EXPECT_LT(label, 10u);
  }
}

TEST(SyntheticMnistTest, DeterministicFromSeed) {
  const auto a = generate_synthetic_mnist(small_config());
  const auto b = generate_synthetic_mnist(small_config());
  EXPECT_EQ(a.train.labels, b.train.labels);
  EXPECT_EQ(a.train.images.values(), b.train.images.values());
}

TEST(SyntheticMnistTest, TrainAndTestAreDistinct) {
  const auto split = generate_synthetic_mnist(small_config());
  // Same class distribution but different samples: compare the first
  // train and test image of the same label.
  EXPECT_NE(split.train.images.values(), split.test.images.values());
}

TEST(SyntheticMnistTest, DigitsAreVisuallyDistinct) {
  // Average interclass L2 distance must exceed intraclass distance —
  // otherwise the classification task would be unlearnable.
  SyntheticMnistConfig config = small_config();
  Rng rng(5);
  std::array<RealTensor, 10> first;
  std::array<RealTensor, 10> second;
  for (std::size_t digit = 0; digit < 10; ++digit) {
    first[digit] = render_digit(digit, config, rng);
    second[digit] = render_digit(digit, config, rng);
  }
  auto l2 = [](const RealTensor& a, const RealTensor& b) {
    double total = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      total += (a[i] - b[i]) * (a[i] - b[i]);
    }
    return total;
  };
  double intra = 0;
  for (std::size_t digit = 0; digit < 10; ++digit) {
    intra += l2(first[digit], second[digit]);
  }
  intra /= 10;
  double inter = 0;
  int pairs = 0;
  for (std::size_t a = 0; a < 10; ++a) {
    for (std::size_t b = a + 1; b < 10; ++b) {
      inter += l2(first[a], first[b]);
      ++pairs;
    }
  }
  inter /= pairs;
  EXPECT_GT(inter, intra * 1.2);
}

TEST(SyntheticMnistTest, SliceAndGather) {
  const auto split = generate_synthetic_mnist(small_config());
  const Dataset batch = slice(split.train, 10, 5);
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_EQ(batch.labels[0], split.train.labels[10]);
  EXPECT_EQ(batch.images.at(0, 0), split.train.images.at(10, 0));
  EXPECT_THROW(slice(split.train, 299, 5), InvalidArgument);

  Rng rng(9);
  const auto indices = shuffled_indices(split.train.size(), rng);
  const Dataset gathered = gather(split.train, indices, 0, 8);
  EXPECT_EQ(gathered.size(), 8u);
  EXPECT_EQ(gathered.labels[3], split.train.labels[indices[3]]);
}

TEST(SyntheticMnistTest, ShuffleIsAPermutation) {
  Rng rng(11);
  const auto indices = shuffled_indices(100, rng);
  std::set<std::size_t> unique(indices.begin(), indices.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(SyntheticMnistTest, MlpLearnsTheTask) {
  // The dataset must be learnable by a small model within one epoch —
  // the property Fig. 2 depends on.
  SyntheticMnistConfig config;
  config.train_count = 1200;
  config.test_count = 300;
  config.seed = 77;
  const auto split = generate_synthetic_mnist(config);

  Rng rng(1);
  nn::Sequential model = nn::build_model(nn::mnist_mlp_spec(), rng);
  nn::SgdOptimizer optimizer(0.3);
  const std::size_t batch_size = 20;
  for (std::size_t start = 0; start + batch_size <= config.train_count;
       start += batch_size) {
    const Dataset batch = slice(split.train, start, batch_size);
    model.train_step(batch.images, nn::one_hot(batch.labels, 10), optimizer);
  }
  const double accuracy = model.accuracy(split.test.images, split.test.labels);
  EXPECT_GT(accuracy, 0.85) << "synthetic task should be learnable";
}

}  // namespace
}  // namespace trustddl::data
