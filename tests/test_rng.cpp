#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace trustddl {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.next_double();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, DoubleRangeRespected) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.next_double(-2.5, 7.5);
    EXPECT_GE(value, -2.5);
    EXPECT_LT(value, 7.5);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowZeroIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(99);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(99);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.next_gaussian(5.0, 0.5);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.fork();
  std::set<std::uint64_t> values;
  for (int i = 0; i < 50; ++i) {
    values.insert(parent.next_u64());
    values.insert(child.next_u64());
  }
  EXPECT_EQ(values.size(), 100u);
}

TEST(RngTest, FillVector) {
  Rng rng(3);
  std::vector<std::uint64_t> values(64, 0);
  rng.fill_u64(values);
  std::set<std::uint64_t> unique(values.begin(), values.end());
  EXPECT_EQ(unique.size(), 64u);
}

}  // namespace
}  // namespace trustddl
