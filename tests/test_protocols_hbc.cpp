#include "mpc/protocols_hbc.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mpc/sharing.hpp"
#include "net/runtime.hpp"
#include "numeric/fixed_point.hpp"
#include "test_util.hpp"

namespace trustddl::mpc {
namespace {

using testing::random_real;

constexpr int kF = fx::kDefaultFracBits;

/// Deal a plain Beaver triple for N parties.
std::vector<PlainTriple> deal_plain_triples(const Shape& a_shape,
                                            const Shape& b_shape,
                                            bool matrix, int n, Rng& rng) {
  RingTensor a(a_shape);
  RingTensor b(b_shape);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.next_u64();
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = rng.next_u64();
  }
  const RingTensor c = matrix ? matmul(a, b) : hadamard(a, b);
  const auto a_shares = create_additive_shares(a, n, rng);
  const auto b_shares = create_additive_shares(b, n, rng);
  const auto c_shares = create_additive_shares(c, n, rng);
  std::vector<PlainTriple> out;
  for (int party = 0; party < n; ++party) {
    const auto index = static_cast<std::size_t>(party);
    out.push_back(PlainTriple{a_shares[index], b_shares[index],
                              c_shares[index]});
  }
  return out;
}

class PlainProtocolSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlainProtocolSweep, SecMulMatchesPlaintextForNParties) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31);
  const Shape shape{4, 3};
  const RealTensor x = random_real(shape, rng);
  const RealTensor y = random_real(shape, rng);
  const auto x_shares = create_additive_shares(to_ring(x, kF), n, rng);
  const auto y_shares = create_additive_shares(to_ring(y, kF), n, rng);
  const auto triples = deal_plain_triples(shape, shape, false, n, rng);

  net::Network network(net::NetworkConfig{.num_parties = n});
  std::vector<RingTensor> z_shares(static_cast<std::size_t>(n));
  net::run_parties(n, [&](net::PartyId party) {
    const auto index = static_cast<std::size_t>(party);
    PlainContext ctx{network.endpoint(party), party, n, 0};
    z_shares[index] = sec_mul(ctx, x_shares[index], y_shares[index],
                              triples[index], /*designated=*/n - 1);
  });

  const RealTensor result =
      to_real(truncate(reconstruct_additive(z_shares), kF), kF);
  EXPECT_LT(max_abs_diff(result, hadamard(x, y)), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(PartyCounts, PlainProtocolSweep,
                         ::testing::Values(2, 3, 4));

TEST(PlainProtocolTest, SecMatMulMatchesPlaintext) {
  const int n = 2;
  Rng rng(41);
  const RealTensor x = random_real(Shape{3, 5}, rng, 2.0);
  const RealTensor y = random_real(Shape{5, 2}, rng, 2.0);
  const auto x_shares = create_additive_shares(to_ring(x, kF), n, rng);
  const auto y_shares = create_additive_shares(to_ring(y, kF), n, rng);
  const auto triples =
      deal_plain_triples(Shape{3, 5}, Shape{5, 2}, true, n, rng);

  net::Network network(net::NetworkConfig{.num_parties = n});
  std::vector<RingTensor> z_shares(static_cast<std::size_t>(n));
  net::run_parties(n, [&](net::PartyId party) {
    const auto index = static_cast<std::size_t>(party);
    PlainContext ctx{network.endpoint(party), party, n, 0};
    z_shares[index] = sec_matmul(ctx, x_shares[index], y_shares[index],
                                 triples[index], /*designated=*/0);
  });

  const RealTensor result =
      to_real(truncate(reconstruct_additive(z_shares), kF), kF);
  EXPECT_LT(max_abs_diff(result, matmul(x, y)), 1e-3);
}

TEST(PlainProtocolTest, SecCompRevealsSignsToAllParties) {
  const int n = 3;
  Rng rng(43);
  const Shape shape{7};
  const RealTensor x = random_real(shape, rng);
  const RealTensor y = random_real(shape, rng);
  const auto x_shares = create_additive_shares(to_ring(x, kF), n, rng);
  const auto y_shares = create_additive_shares(to_ring(y, kF), n, rng);
  RingTensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = fx::encode(rng.next_double(0.5, 2.0), kF);
  }
  const auto t_shares = create_additive_shares(t, n, rng);
  const auto triples = deal_plain_triples(shape, shape, false, n, rng);

  net::Network network(net::NetworkConfig{.num_parties = n});
  std::vector<RingTensor> signs(static_cast<std::size_t>(n));
  net::run_parties(n, [&](net::PartyId party) {
    const auto index = static_cast<std::size_t>(party);
    PlainContext ctx{network.endpoint(party), party, n, 0};
    signs[index] = sec_comp(ctx, x_shares[index], y_shares[index],
                            t_shares[index], triples[index],
                            /*designated=*/1);
  });

  for (int party = 0; party < n; ++party) {
    const auto& result = signs[static_cast<std::size_t>(party)];
    for (std::size_t i = 0; i < result.size(); ++i) {
      const int expected = (x[i] - y[i] > 0) ? 1 : ((x[i] - y[i] < 0) ? -1 : 0);
      EXPECT_EQ(static_cast<std::int64_t>(result[i]), expected)
          << "party " << party << " element " << i;
    }
  }
}

TEST(PlainProtocolTest, BatchedPreparesMatchSequentialAndShareOneRound) {
  // Two multiplications and a comparison prepared against one
  // PlainOpenBatch must reconstruct bit-identically to the eager calls
  // while their Beaver-mask openings share a single designated-party
  // round (the comparison's β reconstruction chains into a second).
  const int n = 3;
  Rng rng(47);
  const Shape shape{5, 4};
  const RealTensor x = random_real(shape, rng);
  const RealTensor y = random_real(shape, rng);
  const auto x_shares = create_additive_shares(to_ring(x, kF), n, rng);
  const auto y_shares = create_additive_shares(to_ring(y, kF), n, rng);
  RingTensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = fx::encode(rng.next_double(0.5, 2.0), kF);
  }
  const auto t_shares = create_additive_shares(t, n, rng);
  const auto mul_triples = deal_plain_triples(shape, shape, false, n, rng);
  const auto comp_triples = deal_plain_triples(shape, shape, false, n, rng);

  std::vector<RingTensor> eager_mul(static_cast<std::size_t>(n));
  std::vector<RingTensor> eager_comp(static_cast<std::size_t>(n));
  {
    net::Network network(net::NetworkConfig{.num_parties = n});
    net::run_parties(n, [&](net::PartyId party) {
      const auto index = static_cast<std::size_t>(party);
      PlainContext ctx{network.endpoint(party), party, n, 0};
      eager_mul[index] = sec_mul(ctx, x_shares[index], y_shares[index],
                                 mul_triples[index], /*designated=*/2);
      eager_comp[index] = sec_comp(ctx, x_shares[index], y_shares[index],
                                   t_shares[index], comp_triples[index],
                                   /*designated=*/2);
    });
  }

  net::Network network(net::NetworkConfig{.num_parties = n});
  std::vector<RingTensor> batched_mul(static_cast<std::size_t>(n));
  std::vector<RingTensor> batched_comp(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> rounds(static_cast<std::size_t>(n));
  net::run_parties(n, [&](net::PartyId party) {
    const auto index = static_cast<std::size_t>(party);
    PlainContext ctx{network.endpoint(party), party, n, 0};
    PlainOpenBatch batch(ctx, /*designated=*/2);
    Deferred<RingTensor> mul = sec_mul_prepare(batch, x_shares[index],
                                               y_shares[index],
                                               mul_triples[index]);
    Deferred<RingTensor> comp =
        sec_comp_prepare(batch, x_shares[index], y_shares[index],
                         t_shares[index], comp_triples[index]);
    batch.flush_all();
    rounds[index] = batch.flushes();
    batched_mul[index] = mul.take();
    batched_comp[index] = comp.take();
  });

  for (int party = 0; party < n; ++party) {
    const auto index = static_cast<std::size_t>(party);
    EXPECT_EQ(rounds[index], 2u) << "party " << party;
    ASSERT_EQ(batched_mul[index].size(), eager_mul[index].size());
    for (std::size_t i = 0; i < eager_mul[index].size(); ++i) {
      EXPECT_EQ(batched_mul[index][i], eager_mul[index][i])
          << "party " << party << " element " << i;
    }
    ASSERT_EQ(batched_comp[index].size(), eager_comp[index].size());
    for (std::size_t i = 0; i < eager_comp[index].size(); ++i) {
      EXPECT_EQ(batched_comp[index][i], eager_comp[index][i])
          << "party " << party << " element " << i;
    }
  }
}

TEST(PlainProtocolTest, DesignatedPartyOptimizationReducesTraffic) {
  // With the designated-party optimization, masked shares flow to one
  // party and the public result back: 2(N-1) tensor messages instead
  // of N(N-1) for all-to-all exchange.
  const int n = 4;
  Rng rng(45);
  const Shape shape{16, 16};
  const RealTensor x = random_real(shape, rng);
  const RealTensor y = random_real(shape, rng);
  const auto x_shares = create_additive_shares(to_ring(x, kF), n, rng);
  const auto y_shares = create_additive_shares(to_ring(y, kF), n, rng);
  const auto triples = deal_plain_triples(shape, shape, false, n, rng);

  net::Network network(net::NetworkConfig{.num_parties = n});
  net::run_parties(n, [&](net::PartyId party) {
    const auto index = static_cast<std::size_t>(party);
    PlainContext ctx{network.endpoint(party), party, n, 0};
    (void)sec_mul(ctx, x_shares[index], y_shares[index], triples[index], 0);
  });
  // Upstream: (n-1) messages carrying e,f shares; downstream: (n-1)
  // broadcasts of the reconstructed e,f.
  EXPECT_EQ(network.traffic().total_messages,
            static_cast<std::uint64_t>(2 * (n - 1)));
}

}  // namespace
}  // namespace trustddl::mpc
