// Differential tests for the explicit-SIMD layer (numeric/simd.hpp):
// every vectorized kernel must agree exactly with its scalar
// reference on every backend the CPU supports — on wraparound-heavy
// ring inputs, on every tail length (n % lanes != 0), and at
// unaligned offsets into an aligned buffer.  Ring arithmetic is exact
// mod 2^64 so equality is bitwise; the double kernels keep a fixed
// per-element operation order (no FMA), so their equality is bitwise
// too.
//
// The suite names all start with "Simd" so CI can re-run them with
// TRUSTDDL_SIMD pinned to each backend under ASan/UBSan and TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/sha256.hpp"
#include "numeric/simd.hpp"

namespace trustddl {
namespace {

/// Backends this machine can actually run (scalar always first).
std::vector<simd::Backend> testable_backends() {
  std::vector<simd::Backend> backends{simd::Backend::kScalar};
  for (simd::Backend candidate :
       {simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (simd::cpu_supports(candidate)) {
      backends.push_back(candidate);
    }
  }
  return backends;
}

/// Restores automatic backend selection when a test scope exits.
struct BackendGuard {
  ~BackendGuard() { simd::clear_forced_backend(); }
};

/// Wraparound-heavy ring values: boundary constants interleaved with
/// full-range randomness so every carry/overflow path is exercised.
std::vector<std::uint64_t> ring_input(std::size_t count, std::uint64_t seed) {
  static constexpr std::uint64_t kEdges[] = {
      0,
      1,
      2,
      0xFFFFFFFFFFFFFFFFull,
      0xFFFFFFFFFFFFFFFEull,
      0x8000000000000000ull,
      0x7FFFFFFFFFFFFFFFull,
      0x00000000FFFFFFFFull,
      0xFFFFFFFF00000000ull,
  };
  Rng rng(seed);
  std::vector<std::uint64_t> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = (i % 3 == 0) ? kEdges[(i / 3) % (sizeof(kEdges) / 8)]
                          : rng.next_u64();
  }
  return out;
}

std::vector<double> real_input(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = rng.next_double(-1e6, 1e6);
  }
  return out;
}

// Lengths covering empty, sub-lane, every tail residue of the 4-lane
// (and 8-element unrolled) loops, and a few larger spans.
const std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 6, 7, 8,
                                9, 11, 15, 16, 17, 31, 33, 100, 257};
// Element offsets into a shared buffer: 0 is cache-line aligned
// (tensor storage), the rest force 8/16/24-byte misalignment.
const std::size_t kOffsets[] = {0, 1, 2, 3};

/// Runs `kernel(dst, n)` for every backend/length/offset combination
/// and compares against the scalar result computed the same way.
template <typename T, typename Kernel>
void differential_sweep(const Kernel& kernel, std::uint64_t seed) {
  constexpr std::size_t kSpan = 512;
  const auto backends = testable_backends();
  BackendGuard guard;
  for (std::size_t length : kLengths) {
    for (std::size_t offset : kOffsets) {
      ASSERT_LE(offset + length, kSpan);
      ASSERT_TRUE(simd::force_backend(simd::Backend::kScalar));
      std::vector<T> expected(kSpan);
      kernel(expected.data() + offset, length, seed);
      for (simd::Backend backend : backends) {
        ASSERT_TRUE(simd::force_backend(backend));
        std::vector<T> actual(kSpan);
        kernel(actual.data() + offset, length, seed);
        EXPECT_EQ(actual, expected)
            << "backend=" << simd::backend_name(backend)
            << " length=" << length << " offset=" << offset;
      }
    }
  }
}

TEST(SimdDifferentialTest, RingAdd) {
  differential_sweep<std::uint64_t>(
      [](std::uint64_t* dst, std::size_t n, std::uint64_t seed) {
        const auto a = ring_input(n, seed);
        const auto b = ring_input(n, seed ^ 0xABCDEF);
        simd::ring_add(dst, a.data(), b.data(), n);
      },
      101);
}

TEST(SimdDifferentialTest, RingSub) {
  differential_sweep<std::uint64_t>(
      [](std::uint64_t* dst, std::size_t n, std::uint64_t seed) {
        const auto a = ring_input(n, seed);
        const auto b = ring_input(n, seed ^ 0xABCDEF);
        simd::ring_sub(dst, a.data(), b.data(), n);
      },
      102);
}

TEST(SimdDifferentialTest, RingMul) {
  differential_sweep<std::uint64_t>(
      [](std::uint64_t* dst, std::size_t n, std::uint64_t seed) {
        const auto a = ring_input(n, seed);
        const auto b = ring_input(n, seed ^ 0xABCDEF);
        simd::ring_mul(dst, a.data(), b.data(), n);
      },
      103);
}

TEST(SimdDifferentialTest, RingScale) {
  differential_sweep<std::uint64_t>(
      [](std::uint64_t* dst, std::size_t n, std::uint64_t seed) {
        const auto a = ring_input(n, seed);
        simd::ring_scale(dst, a.data(), 0xFFFFFFFFFFFFFFFBull, n);
      },
      104);
}

TEST(SimdDifferentialTest, RingAxpyAccumulatesInPlace) {
  differential_sweep<std::uint64_t>(
      [](std::uint64_t* dst, std::size_t n, std::uint64_t seed) {
        const auto b = ring_input(n, seed);
        const auto c0 = ring_input(n, seed ^ 0x5EED);
        for (std::size_t i = 0; i < n; ++i) {
          dst[i] = c0[i];
        }
        simd::ring_axpy(dst, 0x9E3779B97F4A7C15ull, b.data(), n);
      },
      105);
}

TEST(SimdDifferentialTest, RingTruncateAllShifts) {
  for (int frac_bits : {0, 1, 13, 16, 31, 32, 52, 63}) {
    differential_sweep<std::uint64_t>(
        [frac_bits](std::uint64_t* dst, std::size_t n, std::uint64_t seed) {
          const auto a = ring_input(n, seed);
          simd::ring_truncate(dst, a.data(), frac_bits, n);
        },
        106 + static_cast<std::uint64_t>(frac_bits));
  }
}

TEST(SimdDifferentialTest, RingOpsAliasDstWithA) {
  // The tensor in-place operators call the kernels with dst == a.
  const auto backends = testable_backends();
  BackendGuard guard;
  for (std::size_t length : kLengths) {
    const auto a0 = ring_input(length, 42);
    const auto b = ring_input(length, 43);
    ASSERT_TRUE(simd::force_backend(simd::Backend::kScalar));
    std::vector<std::uint64_t> expected = a0;
    simd::ring_mul(expected.data(), expected.data(), b.data(), length);
    for (simd::Backend backend : backends) {
      ASSERT_TRUE(simd::force_backend(backend));
      std::vector<std::uint64_t> actual = a0;
      simd::ring_mul(actual.data(), actual.data(), b.data(), length);
      EXPECT_EQ(actual, expected)
          << "backend=" << simd::backend_name(backend)
          << " length=" << length;
    }
  }
}

TEST(SimdDifferentialTest, RealAxpyBitIdentical) {
  differential_sweep<double>(
      [](double* dst, std::size_t n, std::uint64_t seed) {
        const auto b = real_input(n, seed);
        const auto c0 = real_input(n, seed ^ 0x5EED);
        for (std::size_t i = 0; i < n; ++i) {
          dst[i] = c0[i];
        }
        simd::real_axpy(dst, 1.0 / 3.0, b.data(), n);
      },
      107);
}

TEST(SimdDifferentialTest, RealMulBitIdentical) {
  differential_sweep<double>(
      [](double* dst, std::size_t n, std::uint64_t seed) {
        const auto a = real_input(n, seed);
        const auto b = real_input(n, seed ^ 0xABCDEF);
        simd::real_mul(dst, a.data(), b.data(), n);
      },
      108);
}

TEST(SimdDifferentialTest, ForceBackendRejectsUnsupported) {
  BackendGuard guard;
#if !defined(__aarch64__)
  EXPECT_FALSE(simd::force_backend(simd::Backend::kNeon));
#endif
#if !defined(__x86_64__) && !defined(_M_X64)
  EXPECT_FALSE(simd::force_backend(simd::Backend::kAvx2));
#endif
  EXPECT_TRUE(simd::force_backend(simd::Backend::kScalar));
}

/// Message lengths hitting every padding case: empty, sub-block,
/// exactly at the 55/56 pad split, block boundaries, multi-block, and
/// a long tail.
std::vector<Bytes> digest_messages() {
  const std::size_t lengths[] = {0,  1,  3,   55,  56,  57,  63, 64,
                                 65, 119, 120, 127, 128, 129, 1000, 4096};
  Rng rng(777);
  std::vector<Bytes> messages;
  for (std::size_t length : lengths) {
    Bytes message(length);
    for (auto& byte : message) {
      byte = static_cast<std::uint8_t>(rng.next_u64());
    }
    messages.push_back(std::move(message));
  }
  return messages;
}

TEST(SimdSha256Test, BatchMatchesSingleOnEveryBackend) {
  const auto all = digest_messages();
  const auto backends = testable_backends();
  BackendGuard guard;
  // Every batch size from 0 up — covers the 4-lane groups, the
  // 2-or-3-message partial group, and the serial remainder.
  for (std::size_t count = 0; count <= all.size(); ++count) {
    const std::vector<Bytes> batch(all.begin(),
                                   all.begin() + static_cast<long>(count));
    ASSERT_TRUE(simd::force_backend(simd::Backend::kScalar));
    std::vector<Sha256Digest> expected;
    for (const Bytes& message : batch) {
      expected.push_back(Sha256::hash(message));
    }
    for (simd::Backend backend : backends) {
      ASSERT_TRUE(simd::force_backend(backend));
      const auto digests = sha256_batch(batch);
      ASSERT_EQ(digests.size(), expected.size());
      for (std::size_t i = 0; i < digests.size(); ++i) {
        EXPECT_EQ(Sha256::hex(digests[i]), Sha256::hex(expected[i]))
            << "backend=" << simd::backend_name(backend) << " batch="
            << count << " message=" << i;
      }
    }
  }
}

TEST(SimdSha256Test, SingleStreamMatchesScalarOnEveryBackend) {
  const auto messages = digest_messages();
  const auto backends = testable_backends();
  BackendGuard guard;
  for (const Bytes& message : messages) {
    ASSERT_TRUE(simd::force_backend(simd::Backend::kScalar));
    const auto expected = Sha256::hash(message);
    for (simd::Backend backend : backends) {
      ASSERT_TRUE(simd::force_backend(backend));
      EXPECT_EQ(Sha256::hex(Sha256::hash(message)), Sha256::hex(expected))
          << "backend=" << simd::backend_name(backend)
          << " bytes=" << message.size();
    }
  }
}

TEST(SimdSha256Test, IncrementalChunkingIsBackendInvariant) {
  // The bulk-block fast path in Sha256::update must produce the same
  // digest regardless of how the stream is chunked.
  Rng rng(888);
  Bytes message(777);
  for (auto& byte : message) {
    byte = static_cast<std::uint8_t>(rng.next_u64());
  }
  const auto backends = testable_backends();
  BackendGuard guard;
  ASSERT_TRUE(simd::force_backend(simd::Backend::kScalar));
  const auto expected = Sha256::hash(message);
  for (simd::Backend backend : backends) {
    ASSERT_TRUE(simd::force_backend(backend));
    for (std::size_t chunk : {1u, 7u, 64u, 65u, 300u}) {
      Sha256 hasher;
      for (std::size_t at = 0; at < message.size(); at += chunk) {
        hasher.update(message.data() + at,
                      std::min(chunk, message.size() - at));
      }
      EXPECT_EQ(Sha256::hex(hasher.finish()), Sha256::hex(expected))
          << "backend=" << simd::backend_name(backend)
          << " chunk=" << chunk;
    }
  }
}

}  // namespace
}  // namespace trustddl
