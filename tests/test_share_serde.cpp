// Serialization of shares, triples and tensors (mpc/share_serde.hpp,
// numeric/serde.hpp), including robustness to hostile payloads.
#include "mpc/share_serde.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "numeric/serde.hpp"
#include "test_util.hpp"

namespace trustddl::mpc {
namespace {

using testing::random_ring;

TEST(ShareSerdeTest, PartyShareRoundTrip) {
  Rng rng(1);
  const auto views = share_secret(random_ring(Shape{3, 4}, rng), rng);
  for (const auto& view : views) {
    ByteWriter writer;
    write_party_share(writer, view);
    ByteReader reader(writer.bytes());
    const PartyShare restored = read_party_share(reader);
    EXPECT_EQ(restored.primary, view.primary);
    EXPECT_EQ(restored.duplicate, view.duplicate);
    EXPECT_EQ(restored.second, view.second);
    EXPECT_TRUE(reader.at_end());
  }
}

TEST(ShareSerdeTest, BeaverTripleRoundTrip) {
  Rng rng(2);
  const auto triples = deal_matmul_triple(3, 4, 2, rng);
  ByteWriter writer;
  write_beaver_share(writer, triples[1]);
  ByteReader reader(writer.bytes());
  const BeaverTripleShare restored = read_beaver_share(reader);
  EXPECT_EQ(restored.a.primary, triples[1].a.primary);
  EXPECT_EQ(restored.b.second, triples[1].b.second);
  EXPECT_EQ(restored.c.duplicate, triples[1].c.duplicate);
}

TEST(ShareSerdeTest, TruncPairRoundTrip) {
  Rng rng(3);
  const auto pairs = deal_trunc_pair(Shape{7}, 20, rng);
  ByteWriter writer;
  write_trunc_pair(writer, pairs[2]);
  ByteReader reader(writer.bytes());
  const TruncPairShare restored = read_trunc_pair(reader);
  EXPECT_EQ(restored.r.primary, pairs[2].r.primary);
  EXPECT_EQ(restored.r_shifted.second, pairs[2].r_shifted.second);
}

TEST(ShareSerdeTest, TruncatedPayloadThrows) {
  Rng rng(4);
  const auto views = share_secret(random_ring(Shape{8}, rng), rng);
  ByteWriter writer;
  write_party_share(writer, views[0]);
  Bytes data = writer.take();
  data.resize(data.size() / 2);
  ByteReader reader(data);
  EXPECT_THROW(read_party_share(reader), SerializationError);
}

TEST(TensorSerdeTest, RoundTripVariousShapes) {
  Rng rng(5);
  for (const Shape& shape :
       {Shape{1}, Shape{16}, Shape{3, 5}, Shape{2, 3, 4}}) {
    const RingTensor tensor = random_ring(shape, rng);
    EXPECT_EQ(tensor_from_bytes(tensor_to_bytes(tensor)), tensor);
  }
}

TEST(TensorSerdeTest, RealTensorRoundTrip) {
  Rng rng(6);
  RealTensor tensor(Shape{4, 4});
  for (std::size_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = rng.next_double(-1e6, 1e6);
  }
  ByteWriter writer;
  write_real_tensor(writer, tensor);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(read_real_tensor(reader).values(), tensor.values());
}

TEST(TensorSerdeTest, HostileRankRejected) {
  ByteWriter writer;
  writer.write_u64(99);  // absurd rank
  EXPECT_THROW(tensor_from_bytes(writer.bytes()), SerializationError);
}

TEST(TensorSerdeTest, HostileSizeRejectedBeforeAllocation) {
  ByteWriter writer;
  writer.write_u64(2);                   // rank 2
  writer.write_u64(1u << 30);            // dims whose product is huge
  writer.write_u64(1u << 30);
  EXPECT_THROW(tensor_from_bytes(writer.bytes()), SerializationError);
}

TEST(TensorSerdeTest, TrailingBytesRejected) {
  Rng rng(7);
  Bytes data = tensor_to_bytes(random_ring(Shape{2}, rng));
  data.push_back(0);
  EXPECT_THROW(tensor_from_bytes(data), SerializationError);
}

TEST(TensorSerdeTest, BitFlipChangesTensor) {
  Rng rng(8);
  const RingTensor tensor = random_ring(Shape{4}, rng);
  Bytes data = tensor_to_bytes(tensor);
  data.back() ^= 0x01;
  EXPECT_NE(tensor_from_bytes(data), tensor);
}

}  // namespace
}  // namespace trustddl::mpc
