// Offline/online split (DESIGN.md §10): derived-seed material streams,
// the shape-keyed TripleStore (prefetch, exhaustion fallback, disk
// round trip, SPSC concurrency) and the engine-level guarantee that
// prefetched and synchronous runs are bit-identical.
#include "mpc/triple_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/triple_pipeline.hpp"
#include "mpc/share_serde.hpp"
#include "numeric/fixed_point.hpp"
#include "obs/metrics.hpp"

namespace trustddl::mpc {
namespace {

constexpr int kF = fx::kDefaultFracBits;
constexpr std::uint64_t kSeed = 4242;

Bytes encode(const BeaverTripleShare& triple) {
  ByteWriter writer;
  write_beaver_share(writer, triple);
  return writer.take();
}

Bytes encode(const PartyShare& share) {
  ByteWriter writer;
  write_party_share(writer, share);
  return writer.take();
}

Bytes encode(const TruncPairShare& pair) {
  ByteWriter writer;
  write_trunc_pair(writer, pair);
  return writer.take();
}

/// Party 0's view of entry `index` of `key`, dealt directly.
MaterialBatch stream_entry(const TripleKey& key, std::uint64_t index) {
  return std::move(deal_material(key, index, 1, kSeed, kF)[0]);
}

TEST(DerivedSeedTest, EntriesArePureFunctionsOfKeyAndIndex) {
  const TripleKey key = TripleKey::matmul(2, 3, 2);
  const auto batch = deal_material(key, 0, 4, kSeed, kF);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const auto single = deal_material(key, i, 1, kSeed, kF);
    for (std::size_t party = 0; party < kNumParties; ++party) {
      EXPECT_EQ(encode(batch[party].triples[i]),
                encode(single[party].triples[0]))
          << "party " << party << " entry " << i;
    }
  }
  // Overlapping ranges agree entry-wise — the property that lets
  // caches, stores and restarts coexist.
  const auto overlap = deal_material(key, 2, 2, kSeed, kF);
  EXPECT_EQ(encode(overlap[0].triples[0]), encode(batch[0].triples[2]));
  EXPECT_EQ(encode(overlap[0].triples[1]), encode(batch[0].triples[3]));
  // Different indices yield different material.
  EXPECT_NE(encode(batch[0].triples[0]), encode(batch[0].triples[1]));
}

TEST(DerivedSeedTest, DealtBatchesSatisfyTheBeaverRelation) {
  const TripleKey key = TripleKey::matmul(3, 4, 2);
  const auto views = deal_material(key, 7, 2, kSeed, kF);
  for (std::size_t i = 0; i < 2; ++i) {
    std::array<PartyShare, 3> a_views, b_views, c_views;
    for (std::size_t party = 0; party < kNumParties; ++party) {
      a_views[party] = views[party].triples[i].a;
      b_views[party] = views[party].triples[i].b;
      c_views[party] = views[party].triples[i].c;
    }
    EXPECT_EQ(matmul(reconstruct(a_views), reconstruct(b_views)),
              reconstruct(c_views))
        << "entry " << i;
  }
}

TEST(TripleStoreTest, ServesTheStreamInOrderAndFallsBackWhenDry) {
  DealerBackend backend(kSeed, kF, /*party=*/0);
  TripleStore store(backend, /*party=*/0);
  const TripleKey key = TripleKey::matmul(2, 3, 2);

  store.demand(key, 3);
  EXPECT_EQ(store.target(key), 3u);
  EXPECT_EQ(store.refill(key, 8), 3u) << "refill is target-bounded";
  EXPECT_EQ(store.depth(key), 3u);

  // Five pops against three buffered entries: the last two exhaust the
  // store and fall back to on-demand dealing — same stream, in order.
  for (std::uint64_t i = 0; i < 5; ++i) {
    const BeaverTripleShare triple = store.matmul_triple(2, 3, 2);
    EXPECT_EQ(encode(triple), encode(stream_entry(key, i).triples[0]))
        << "entry " << i;
  }
  EXPECT_EQ(store.misses(), 2u);
  EXPECT_EQ(store.depth(key), 0u);
  EXPECT_EQ(store.consumed(key), 5u);
}

TEST(TripleStoreTest, KindsKeepIndependentStreams) {
  DealerBackend backend(kSeed, kF, /*party=*/0);
  TripleStore store(backend, /*party=*/0);
  const Shape shape{4, 2};
  store.demand(TripleKey::mul(shape), 2);
  store.demand(TripleKey::comp_aux(shape), 2);
  store.demand(TripleKey::trunc_pair(shape), 2);
  EXPECT_EQ(store.refill_toward_targets(16), 6u);
  EXPECT_EQ(store.depth(), 6u);

  EXPECT_EQ(encode(store.mul_triple(shape)),
            encode(stream_entry(TripleKey::mul(shape), 0).triples[0]));
  EXPECT_EQ(encode(store.comp_aux(shape)),
            encode(stream_entry(TripleKey::comp_aux(shape), 0).aux[0]));
  EXPECT_EQ(encode(store.trunc_pair(shape)),
            encode(stream_entry(TripleKey::trunc_pair(shape), 0).pairs[0]));
  EXPECT_EQ(store.misses(), 0u);
}

TEST(TripleStoreTest, LowWaterListsOnlyShallowKeys) {
  DealerBackend backend(kSeed, kF, /*party=*/0);
  TripleStore store(backend, /*party=*/0);
  const TripleKey deep = TripleKey::mul(Shape{2});
  const TripleKey shallow = TripleKey::mul(Shape{3});
  store.demand(deep, 4);
  store.demand(shallow, 4);
  store.refill(deep, 4);
  store.refill(shallow, 1);

  const auto keys = store.keys_below(0.5);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], shallow);
}

TEST(TripleStoreTest, DiskRoundTripRestoresEntriesAndCursor) {
  const std::string path = ::testing::TempDir() + "triple_store_rt.bin";
  std::remove(path.c_str());
  const std::uint64_t provenance = 0xfeedULL;
  const TripleKey key = TripleKey::trunc_pair(Shape{3, 2});

  {
    DealerBackend backend(kSeed, kF, /*party=*/1);
    TripleStore store(backend, /*party=*/1);
    EXPECT_FALSE(store.load(path, provenance)) << "no file yet";
    store.demand(key, 4);
    store.refill(key, 4);
    (void)store.trunc_pair(Shape{3, 2});  // consume entry 0
    store.save(path, provenance);
  }

  DealerBackend backend(kSeed, kF, /*party=*/1);
  TripleStore restored(backend, /*party=*/1);
  EXPECT_THROW(restored.load(path, provenance + 1), SerializationError)
      << "provenance mismatch must fail loudly";
  ASSERT_TRUE(restored.load(path, provenance));
  EXPECT_EQ(restored.depth(key), 3u);
  EXPECT_EQ(restored.consumed(key), 1u);

  // The restored store resumes the stream exactly where the saved one
  // stopped: entries 1..3 from the buffer, entry 4 via fallback.
  for (std::uint64_t i = 1; i <= 4; ++i) {
    const auto pairs = deal_material(key, i, 1, kSeed, kF);
    EXPECT_EQ(encode(restored.trunc_pair(Shape{3, 2})),
              encode(pairs[1].pairs[0]))
        << "entry " << i;
  }
  std::remove(path.c_str());
}

TEST(TripleStoreTest, ConcurrentProducerAndConsumerPreserveStreamOrder) {
  // SPSC contract under real concurrency (run under TSan in CI): a
  // producer thread refills while the consumer pops; every pop must
  // still see the stream in order, whether it hit the ring or missed.
  DealerBackend backend(kSeed, kF, /*party=*/2);
  TripleStore store(backend, /*party=*/2);
  const TripleKey key = TripleKey::mul(Shape{4});
  constexpr std::size_t kEntries = 400;
  store.demand(key, 32);

  std::atomic<bool> stop{false};
  std::thread producer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (store.refill(key, 8) == 0) {
        std::this_thread::yield();
      }
    }
  });

  std::vector<Bytes> popped;
  popped.reserve(kEntries);
  for (std::size_t i = 0; i < kEntries; ++i) {
    popped.push_back(encode(store.mul_triple(Shape{4})));
  }
  stop.store(true, std::memory_order_relaxed);
  producer.join();

  const auto expected = deal_material(key, 0, kEntries, kSeed, kF);
  for (std::size_t i = 0; i < kEntries; ++i) {
    ASSERT_EQ(popped[i], encode(expected[2].triples[i])) << "entry " << i;
  }
  EXPECT_EQ(store.consumed(key), kEntries);
}

// --- Demand profiler + engine-level equivalence ----------------------

data::TrainTestSplit tiny_split(std::size_t train, std::size_t test) {
  data::SyntheticMnistConfig config;
  config.train_count = train;
  config.test_count = test;
  config.seed = 42;
  return data::generate_synthetic_mnist(config);
}

core::EngineConfig prefetch_config(bool prefetch) {
  core::EngineConfig config;
  config.collect_timeout = std::chrono::milliseconds(300);
  config.triple_prefetch = prefetch;
  // Uncapped targets: the warm phase prefetches the whole job's
  // demand, so any online miss means the profiler under-counted.
  config.triple_max_depth = std::size_t{1} << 40;
  return config;
}

TEST(DemandProfilerTest, CountsMergeAcrossBatchSizes) {
  const nn::ModelSpec spec = nn::mnist_mlp_spec();
  const core::DemandPlan one =
      core::profile_step_demand(spec, 8, TruncationMode::kLocal,
                                /*training=*/false);
  EXPECT_FALSE(one.empty());
  const core::DemandPlan job = core::profile_job_demand(
      spec, {8, 8, 4}, TruncationMode::kLocal, /*training=*/false);
  // Two same-size steps share shape classes; the partial batch gets
  // its own.
  EXPECT_EQ(job.total(), 2 * one.total() +
                             core::profile_step_demand(
                                 spec, 4, TruncationMode::kLocal, false)
                                 .total());
  // Masked truncation adds pairs, training adds backward material.
  EXPECT_GT(core::profile_step_demand(spec, 8, TruncationMode::kMaskedOpen,
                                      true)
                .total(),
            one.total());
}

TEST(PrefetchExactnessTest, InferLabelsBitIdenticalAndStoreNeverMisses) {
  const auto split = tiny_split(30, 16);
  const data::Dataset sample = data::slice(split.test, 0, 6);

  core::TrustDdlEngine sync_engine(nn::tiny_cnn_spec(),
                                   prefetch_config(false));
  const auto sync = sync_engine.infer(sample, /*batch_size=*/4);

  obs::MetricsRegistry::global().reset();
  obs::set_metrics_enabled(true);
  core::TrustDdlEngine prefetch_engine(nn::tiny_cnn_spec(),
                                       prefetch_config(true));
  const auto prefetched = prefetch_engine.infer(sample, /*batch_size=*/4);
  obs::set_metrics_enabled(false);
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::global().snapshot();

  EXPECT_EQ(prefetched.labels, sync.labels);
  // The demand profiler supplied every (kind, shape) the online phase
  // consumed: no pop fell back to on-demand dealing...
  EXPECT_EQ(snapshot.counter_sum("triple.store.miss"), 0u);
  EXPECT_GT(snapshot.counter_sum("triple.consumed"), 0u);
  // ...and the ledger balances: produced == consumed + still in store.
  std::int64_t in_store = 0;
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name.rfind("triple.store.depth", 0) == 0) {
      in_store += gauge.value;
    }
  }
  EXPECT_EQ(snapshot.counter_sum("triple.produced"),
            snapshot.counter_sum("triple.consumed") +
                static_cast<std::uint64_t>(in_store));
}

TEST(PrefetchExactnessTest, TrainedWeightsBitIdenticalWithPrefetch) {
  // The acceptance bar for the offline/online split: prefetched and
  // synchronous training consume identical material streams in
  // identical order, so the trained weights must match BIT FOR BIT —
  // masked-open truncation included (it consumes trunc-pair streams).
  const auto split = tiny_split(32, 12);
  core::TrainOptions options;
  options.epochs = 1;
  options.batch_size = 8;
  options.learning_rate = 0.3;

  auto train_weights = [&](bool prefetch) {
    core::EngineConfig config = prefetch_config(prefetch);
    config.trunc_mode = TruncationMode::kMaskedOpen;
    config.collect_timeout = std::chrono::seconds(30);
    core::TrustDdlEngine engine(nn::mnist_mlp_spec(), config);
    (void)engine.train(split.train, split.test, options);
    std::vector<RealTensor> weights;
    for (nn::Parameter* parameter : engine.reference_model().parameters()) {
      weights.push_back(parameter->value);
    }
    return weights;
  };

  const auto sync = train_weights(false);
  const auto prefetched = train_weights(true);
  ASSERT_EQ(sync.size(), prefetched.size());
  ASSERT_FALSE(sync.empty());
  for (std::size_t p = 0; p < sync.size(); ++p) {
    EXPECT_EQ(sync[p], prefetched[p]) << "parameter " << p;
  }
}

TEST(TriplePipelineTest, PersistedStoreSurvivesARestart) {
  // Same job twice against one store dir: the first run persists
  // whatever its producer over-fetched; the second restores it and
  // resumes the streams mid-cursor.  Results stay correct because the
  // entries are position-addressed, not arrival-ordered.
  const std::string dir = ::testing::TempDir();
  for (int party = 0; party < 3; ++party) {
    std::remove(
        core::TriplePipeline::store_path(dir, party, false).c_str());
  }
  const auto split = tiny_split(20, 12);
  const data::Dataset sample = data::slice(split.test, 0, 6);

  core::EngineConfig config = prefetch_config(true);
  config.triple_store_dir = dir;
  // Cap the targets so the producer over-fetches a little and leaves
  // entries to persist.
  config.triple_max_depth = 8;

  core::TrustDdlEngine first(nn::mnist_mlp_spec(), config);
  const auto first_result = first.infer(sample, /*batch_size=*/3);

  core::TrustDdlEngine second(nn::mnist_mlp_spec(), config);
  const auto second_result = second.infer(sample, /*batch_size=*/3);
  EXPECT_EQ(second_result.labels, first_result.labels);

  for (int party = 0; party < 3; ++party) {
    std::remove(
        core::TriplePipeline::store_path(dir, party, false).c_str());
  }
}

}  // namespace
}  // namespace trustddl::mpc
