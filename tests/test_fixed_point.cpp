#include "numeric/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace trustddl {
namespace {

TEST(FixedPointTest, EncodeDecodeRoundTrip) {
  for (double value : {0.0, 1.0, -1.0, 0.5, -0.25, 3.14159, -123.456, 1e4}) {
    const std::uint64_t encoded = fx::encode(value);
    EXPECT_NEAR(fx::decode(encoded), value, fx::epsilon() * 2)
        << "value=" << value;
  }
}

TEST(FixedPointTest, RoundTripRandomSweep) {
  Rng rng(17);
  for (int frac_bits : {8, 16, 20, 32}) {
    for (int i = 0; i < 1000; ++i) {
      const double value = rng.next_double(-1000.0, 1000.0);
      EXPECT_NEAR(fx::decode(fx::encode(value, frac_bits), frac_bits), value,
                  fx::epsilon(frac_bits) * 2);
    }
  }
}

TEST(FixedPointTest, MulMatchesRealProduct) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(-50.0, 50.0);
    const double y = rng.next_double(-50.0, 50.0);
    const std::uint64_t product = fx::mul(fx::encode(x), fx::encode(y));
    EXPECT_NEAR(fx::decode(product), x * y, 1e-3);
  }
}

TEST(FixedPointTest, TruncateRescalesDoubleProduct) {
  const double x = 2.5;
  const double y = -3.25;
  // Raw ring product carries 2f fractional bits.
  const auto raw =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(fx::encode(x)) *
                                 static_cast<std::int64_t>(fx::encode(y)));
  EXPECT_NEAR(fx::decode(fx::truncate(raw, fx::kDefaultFracBits)), x * y,
              1e-5);
}

TEST(FixedPointTest, SignedWrapAroundAddition) {
  // Ring addition of encodings behaves like real addition for bounded
  // values, including across the sign boundary.
  const std::uint64_t a = fx::encode(-5.0);
  const std::uint64_t b = fx::encode(3.0);
  EXPECT_NEAR(fx::decode(a + b), -2.0, fx::epsilon() * 4);
}

TEST(FixedPointTest, RingDistanceSymmetricAndWrapped) {
  EXPECT_EQ(fx::ring_distance(5, 3), 2u);
  EXPECT_EQ(fx::ring_distance(3, 5), 2u);
  EXPECT_EQ(fx::ring_distance(0, ~std::uint64_t{0}), 1u);
  EXPECT_EQ(fx::ring_distance(7, 7), 0u);
}

TEST(FixedPointTest, SignFunction) {
  EXPECT_EQ(fx::sign(fx::encode(2.0)), 1);
  EXPECT_EQ(fx::sign(fx::encode(-2.0)), -1);
  EXPECT_EQ(fx::sign(0), 0);
}

TEST(FixedPointTest, EpsilonBoundsEncodingError) {
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const double value = rng.next_double(-10.0, 10.0);
    EXPECT_LE(std::fabs(fx::decode(fx::encode(value)) - value),
              fx::epsilon() + 1e-12);
  }
}

TEST(FixedPointTest, MaxRepresentable) {
  EXPECT_DOUBLE_EQ(fx::max_representable(20), std::ldexp(1.0, 43));
  EXPECT_DOUBLE_EQ(fx::max_representable(32), std::ldexp(1.0, 31));
}

class FixedPointPrecisionSweep : public ::testing::TestWithParam<int> {};

TEST_P(FixedPointPrecisionSweep, ProductErrorBounded) {
  const int frac_bits = GetParam();
  Rng rng(101 + static_cast<std::uint64_t>(frac_bits));
  double worst = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.next_double(-8.0, 8.0);
    const double y = rng.next_double(-8.0, 8.0);
    const double product =
        fx::decode(fx::mul(fx::encode(x, frac_bits), fx::encode(y, frac_bits),
                           frac_bits),
                   frac_bits);
    worst = std::max(worst, std::fabs(product - x * y));
  }
  // Error of one product is bounded by ~(|x|+|y|+1) encoding ulps.
  EXPECT_LT(worst, 20.0 * fx::epsilon(frac_bits) + std::ldexp(1.0, -frac_bits));
}

INSTANTIATE_TEST_SUITE_P(Precisions, FixedPointPrecisionSweep,
                         ::testing::Values(12, 16, 20, 24, 28, 32));

}  // namespace
}  // namespace trustddl
