#include "mpc/sharing.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "numeric/fixed_point.hpp"
#include "test_util.hpp"

namespace trustddl::mpc {
namespace {

using testing::random_real;
using testing::random_ring;

TEST(SharingLayoutTest, Fig1IndexMapping) {
  // P1 (index 0) holds {[s]_1^1, [ŝ]_1^2, [s]_2^3} etc. (paper §III-A).
  EXPECT_EQ(set_primary(0), 0);
  EXPECT_EQ(set_duplicate(0), 1);
  EXPECT_EQ(set_second(0), 2);
  EXPECT_EQ(set_primary(1), 1);
  EXPECT_EQ(set_duplicate(1), 2);
  EXPECT_EQ(set_second(1), 0);
  EXPECT_EQ(set_primary(2), 2);
  EXPECT_EQ(set_duplicate(2), 0);
  EXPECT_EQ(set_second(2), 1);
}

TEST(SharingLayoutTest, HolderFunctionsAreInverses) {
  for (int set = 0; set < kNumSets; ++set) {
    EXPECT_EQ(set_primary(holder_of_primary(set)), set);
    EXPECT_EQ(set_duplicate(holder_of_duplicate(set)), set);
    EXPECT_EQ(set_second(holder_of_second(set)), set);
  }
}

TEST(SharingTest, EverySetReconstructsSecret) {
  Rng rng(1);
  const RingTensor secret = random_ring(Shape{3, 4}, rng);
  const ReplicatedSecret dealer = create_replicated(secret, rng);
  for (int set = 0; set < kNumSets; ++set) {
    EXPECT_EQ(dealer.reconstruct_set(set), secret) << "set " << set;
  }
}

TEST(SharingTest, SetsAreIndependentSharings) {
  Rng rng(2);
  const RingTensor secret = random_ring(Shape{4}, rng);
  const ReplicatedSecret dealer = create_replicated(secret, rng);
  // Share 1 of different sets must differ (they are independent
  // random masks) even though each set sums to the same secret.
  EXPECT_NE(dealer.sets[0][0], dealer.sets[1][0]);
  EXPECT_NE(dealer.sets[1][0], dealer.sets[2][0]);
}

TEST(SharingTest, PartyViewMatchesFig1) {
  Rng rng(3);
  const RingTensor secret = random_ring(Shape{2}, rng);
  const ReplicatedSecret dealer = create_replicated(secret, rng);
  for (int party = 0; party < kNumParties; ++party) {
    const PartyShare view = party_view(dealer, party);
    EXPECT_EQ(view.primary,
              dealer.sets[static_cast<std::size_t>(set_primary(party))][0]);
    EXPECT_EQ(view.duplicate,
              dealer.sets[static_cast<std::size_t>(set_duplicate(party))][0]);
    EXPECT_EQ(view.second,
              dealer.sets[static_cast<std::size_t>(set_second(party))][1]);
  }
}

TEST(SharingTest, DuplicateIsExactCopyOfAnotherPrimary) {
  Rng rng(4);
  const auto views = share_secret(random_ring(Shape{3}, rng), rng);
  for (int party = 0; party < kNumParties; ++party) {
    const int source = (party + 1) % kNumParties;  // primary holder of
                                                   // the duplicated set
    EXPECT_EQ(views[static_cast<std::size_t>(party)].duplicate,
              views[static_cast<std::size_t>(source)].primary);
  }
}

TEST(SharingTest, NoPartyHoldsACompleteSet) {
  // Privacy requirement of §III-A: a single party's three components
  // must come from three different sets, so no set is complete.
  for (int party = 0; party < kNumParties; ++party) {
    EXPECT_NE(set_primary(party), set_second(party));
    EXPECT_NE(set_duplicate(party), set_second(party));
    EXPECT_NE(set_primary(party), set_duplicate(party));
  }
}

TEST(SharingTest, ReconstructFromTriples) {
  Rng rng(5);
  const RingTensor secret = random_ring(Shape{5, 2}, rng);
  const auto views = share_secret(secret, rng);
  EXPECT_EQ(reconstruct(views), secret);
}

TEST(SharingTest, LinearityOfShareAddition) {
  Rng rng(6);
  const RingTensor x = random_ring(Shape{4}, rng);
  const RingTensor y = random_ring(Shape{4}, rng);
  const auto x_views = share_secret(x, rng);
  const auto y_views = share_secret(y, rng);
  std::array<PartyShare, kNumParties> sum_views;
  for (int party = 0; party < kNumParties; ++party) {
    const auto index = static_cast<std::size_t>(party);
    sum_views[index] = x_views[index] + y_views[index];
  }
  EXPECT_EQ(reconstruct(sum_views), x + y);
}

TEST(SharingTest, SubtractionAndPublicConstant) {
  Rng rng(7);
  const RingTensor x = random_ring(Shape{4}, rng);
  const RingTensor y = random_ring(Shape{4}, rng);
  const RingTensor constant = random_ring(Shape{4}, rng);
  auto x_views = share_secret(x, rng);
  const auto y_views = share_secret(y, rng);
  for (int party = 0; party < kNumParties; ++party) {
    const auto index = static_cast<std::size_t>(party);
    x_views[index] -= y_views[index];
    x_views[index].add_public(constant);
  }
  EXPECT_EQ(reconstruct(x_views), x - y + constant);
}

TEST(SharingTest, PublicConstantReachesEverySet) {
  // add_public must shift ALL three sets, not just one: verify by
  // reconstructing each set from the updated views.
  Rng rng(8);
  const RingTensor x = random_ring(Shape{2}, rng);
  const RingTensor constant = random_ring(Shape{2}, rng);
  auto views = share_secret(x, rng);
  for (auto& view : views) {
    view.add_public(constant);
  }
  for (int set = 0; set < kNumSets; ++set) {
    const auto& share1 =
        views[static_cast<std::size_t>(holder_of_primary(set))].primary;
    const auto& share2 =
        views[static_cast<std::size_t>(holder_of_second(set))].second;
    EXPECT_EQ(share1 + share2, x + constant) << "set " << set;
  }
}

TEST(SharingTest, PublicMaskMultiplication) {
  Rng rng(9);
  const RealTensor x = random_real(Shape{6}, rng);
  RingTensor mask(Shape{6});
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask[i] = (i % 2 == 0) ? 1 : 0;
  }
  auto views = share_secret(to_ring(x, 20), rng);
  for (auto& view : views) {
    view.mul_public(mask);
  }
  const RealTensor result = to_real(reconstruct(views), 20);
  for (std::size_t i = 0; i < result.size(); ++i) {
    const double expected = (i % 2 == 0) ? x[i] : 0.0;
    EXPECT_NEAR(result[i], expected, 1e-5);
  }
}

TEST(SharingTest, LocalTruncationRescalesProducts) {
  Rng rng(10);
  const RealTensor x = random_real(Shape{8}, rng, 2.0);
  const RealTensor y = random_real(Shape{8}, rng, 2.0);
  // Share x, multiply shares elementwise by the PUBLIC encoding of y
  // (scale 2^40), then locally truncate back to 2^20.
  auto views = share_secret(to_ring(x, 20), rng);
  const RingTensor y_ring = to_ring(y, 20);
  for (auto& view : views) {
    view.primary.hadamard_inplace(y_ring);
    view.duplicate.hadamard_inplace(y_ring);
    view.second.hadamard_inplace(y_ring);
    view.truncate_local(20);
  }
  const RealTensor result = to_real(reconstruct(views), 20);
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_NEAR(result[i], x[i] * y[i], 1e-4);
  }
}

TEST(SharingTest, ZeroShareIsValidSharingOfZero) {
  const PartyShare zero = zero_share(Shape{3});
  std::array<PartyShare, kNumParties> views = {zero, zero, zero};
  EXPECT_EQ(reconstruct(views), RingTensor(Shape{3}));
}

TEST(SharingTest, PlainAdditiveSharesRoundTrip) {
  Rng rng(11);
  const RingTensor secret = random_ring(Shape{4, 4}, rng);
  for (int n : {2, 3, 5}) {
    const auto shares = create_additive_shares(secret, n, rng);
    EXPECT_EQ(shares.size(), static_cast<std::size_t>(n));
    EXPECT_EQ(reconstruct_additive(shares), secret);
  }
}

TEST(SharingTest, SingleAdditiveShareRevealsNothingStructural) {
  // Shares of two different secrets are both uniform; check that the
  // first share (pure randomness) does not depend on the secret.
  Rng rng_a(12);
  Rng rng_b(12);
  const RingTensor secret_a = RingTensor::full(Shape{4}, 1);
  const RingTensor secret_b = RingTensor::full(Shape{4}, 999);
  const auto shares_a = create_additive_shares(secret_a, 2, rng_a);
  const auto shares_b = create_additive_shares(secret_b, 2, rng_b);
  EXPECT_EQ(shares_a[0], shares_b[0]);
  EXPECT_NE(shares_a[1], shares_b[1]);
}

class SharingPropertySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SharingPropertySweep, ReconstructionIdentity) {
  const auto [seed, dim] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919);
  const RingTensor secret =
      random_ring(Shape{static_cast<std::size_t>(dim),
                        static_cast<std::size_t>(dim)},
                  rng);
  const auto views = share_secret(secret, rng);
  EXPECT_EQ(reconstruct(views), secret);
  // Every set independently reconstructs via its holders.
  for (int set = 0; set < kNumSets; ++set) {
    const auto& share1 =
        views[static_cast<std::size_t>(holder_of_primary(set))].primary;
    const auto& share2 =
        views[static_cast<std::size_t>(holder_of_second(set))].second;
    EXPECT_EQ(share1 + share2, secret);
    const auto& dup =
        views[static_cast<std::size_t>(holder_of_duplicate(set))].duplicate;
    EXPECT_EQ(dup + share2, secret);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SharingPropertySweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(1, 3, 8, 17)));

}  // namespace
}  // namespace trustddl::mpc
