#include "mpc/open.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mpc/adversary.hpp"
#include "test_util.hpp"

namespace trustddl::mpc {
namespace {

using testing::ThreePartyHarness;
using testing::random_ring;

/// Run a single opening of `secret` across three parties and return
/// each party's opened value.
std::array<RingTensor, 3> open_once(ThreePartyHarness& harness,
                                    const RingTensor& secret,
                                    std::uint64_t seed = 42) {
  Rng rng(seed);
  const auto views = share_secret(secret, rng);
  std::array<RingTensor, 3> results;
  harness.run([&](PartyContext& ctx) {
    results[static_cast<std::size_t>(ctx.party)] =
        open_value(ctx, views[static_cast<std::size_t>(ctx.party)]);
  });
  return results;
}

TEST(OpenTest, HonestMaliciousModeAllAgree) {
  ThreePartyHarness harness(SecurityMode::kMalicious);
  Rng rng(1);
  const RingTensor secret = random_ring(Shape{4, 3}, rng);
  const auto results = open_once(harness, secret);
  for (const auto& result : results) {
    EXPECT_EQ(result, secret);
  }
  for (const auto& ctx : harness.contexts) {
    EXPECT_TRUE(ctx.detections.events.empty());
    EXPECT_EQ(ctx.detections.opens, 1u);
  }
}

TEST(OpenTest, HonestHbcModeAllAgree) {
  ThreePartyHarness harness(SecurityMode::kHonestButCurious);
  Rng rng(2);
  const RingTensor secret = random_ring(Shape{5}, rng);
  const auto results = open_once(harness, secret);
  for (const auto& result : results) {
    EXPECT_EQ(result, secret);
  }
}

TEST(OpenTest, OpensSeveralValuesInOneStep) {
  ThreePartyHarness harness(SecurityMode::kMalicious);
  Rng rng(3);
  const RingTensor a = random_ring(Shape{2, 2}, rng);
  const RingTensor b = random_ring(Shape{7}, rng);
  const auto a_views = share_secret(a, rng);
  const auto b_views = share_secret(b, rng);
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    const auto opened =
        open_values(ctx, {a_views[index], b_views[index]});
    EXPECT_EQ(opened[0], a);
    EXPECT_EQ(opened[1], b);
  });
}

TEST(OpenTest, HbcCheaperThanMalicious) {
  Rng rng(4);
  const RingTensor secret = random_ring(Shape{16, 16}, rng);

  ThreePartyHarness hbc(SecurityMode::kHonestButCurious);
  open_once(hbc, secret);
  const auto hbc_traffic = hbc.network.traffic();

  ThreePartyHarness malicious(SecurityMode::kMalicious);
  open_once(malicious, secret);
  const auto malicious_traffic = malicious.network.traffic();

  EXPECT_LT(hbc_traffic.total_bytes, malicious_traffic.total_bytes);
  EXPECT_LT(hbc_traffic.total_messages, malicious_traffic.total_messages);
}

class OpenByzantineCase
    : public ::testing::TestWithParam<std::tuple<int, ByzantineConfig::Behavior>> {};

TEST_P(OpenByzantineCase, HonestPartiesRecoverCorrectValue) {
  const auto [byzantine_party, behavior] = GetParam();
  ThreePartyHarness harness(SecurityMode::kMalicious);
  ByzantineConfig config;
  config.behavior = behavior;
  config.target_peer = (byzantine_party + 1) % 3;  // for the single case
  harness.make_byzantine(byzantine_party, config);

  Rng rng(5);
  const RingTensor secret = random_ring(Shape{6, 2}, rng);
  const auto views = share_secret(secret, rng);
  std::array<RingTensor, 3> results;
  harness.run([&](PartyContext& ctx) {
    results[static_cast<std::size_t>(ctx.party)] =
        open_value(ctx, views[static_cast<std::size_t>(ctx.party)]);
  });

  // Every HONEST party must still open the correct value (guaranteed
  // output delivery).
  for (int party = 0; party < 3; ++party) {
    if (party == byzantine_party) {
      continue;
    }
    EXPECT_EQ(results[static_cast<std::size_t>(party)], secret)
        << "honest party " << party << " behavior "
        << static_cast<int>(behavior);
  }
  EXPECT_GE(harness.adversary->attacks_launched(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPartiesAllBehaviors, OpenByzantineCase,
    ::testing::Combine(
        ::testing::Values(0, 1, 2),
        ::testing::Values(
            ByzantineConfig::Behavior::kConsistentCorruption,
            ByzantineConfig::Behavior::kCommitmentViolationGlobal,
            ByzantineConfig::Behavior::kCommitmentViolationSingle,
            ByzantineConfig::Behavior::kDropMessages)));

TEST(OpenTest, Case1GlobalViolationDetectedByBothHonestParties) {
  ThreePartyHarness harness(SecurityMode::kMalicious);
  ByzantineConfig config;
  config.behavior = ByzantineConfig::Behavior::kCommitmentViolationGlobal;
  harness.make_byzantine(1, config);
  Rng rng(6);
  open_once(harness, random_ring(Shape{4}, rng));
  for (int party : {0, 2}) {
    const auto& log = harness.contexts[static_cast<std::size_t>(party)]
                          .detections;
    EXPECT_EQ(log.count(DetectionEvent::Kind::kCommitmentViolation), 1u)
        << "party " << party;
    // The violator is correctly identified.
    for (const auto& event : log.events) {
      if (event.kind == DetectionEvent::Kind::kCommitmentViolation) {
        EXPECT_EQ(event.suspect, 1);
      }
    }
  }
}

TEST(OpenTest, Case2TargetedViolationDetectedOnlyByVictim) {
  ThreePartyHarness harness(SecurityMode::kMalicious);
  ByzantineConfig config;
  config.behavior = ByzantineConfig::Behavior::kCommitmentViolationSingle;
  config.target_peer = 0;
  harness.make_byzantine(1, config);
  Rng rng(7);
  open_once(harness, random_ring(Shape{4}, rng));
  const auto& victim = harness.contexts[0].detections;
  const auto& bystander = harness.contexts[2].detections;
  EXPECT_EQ(victim.count(DetectionEvent::Kind::kCommitmentViolation), 1u);
  EXPECT_EQ(bystander.count(DetectionEvent::Kind::kCommitmentViolation), 0u);
}

TEST(OpenTest, Case3ConsistentCorruptionCaughtByDistanceRule) {
  // Exercise the paper's bare decision rule: share authentication off.
  ThreePartyHarness harness(SecurityMode::kMalicious);
  for (auto& ctx : harness.contexts) {
    ctx.share_authentication = false;
  }
  ByzantineConfig config;
  config.behavior = ByzantineConfig::Behavior::kConsistentCorruption;
  harness.make_byzantine(2, config);
  Rng rng(8);
  open_once(harness, random_ring(Shape{4}, rng));
  for (int party : {0, 1}) {
    const auto& log =
        harness.contexts[static_cast<std::size_t>(party)].detections;
    // No commitment violation (the hashes matched)...
    EXPECT_EQ(log.count(DetectionEvent::Kind::kCommitmentViolation), 0u);
    // ...but the distance rule flags and attributes the anomaly.
    EXPECT_EQ(log.count(DetectionEvent::Kind::kDistanceAnomaly), 1u);
    EXPECT_EQ(log.count(DetectionEvent::Kind::kByzantineSuspected), 1u);
    for (const auto& event : log.events) {
      if (event.kind == DetectionEvent::Kind::kByzantineSuspected) {
        EXPECT_EQ(event.suspect, 2);
      }
    }
  }
}

TEST(OpenTest, CoordinatedDeltaForgesAgreementUnderBareMinDistRule) {
  // The attack the paper's §III-B argument misses: the Byzantine party
  // holds copies of two share-1 values, so adding the SAME delta to
  // all its components forges a reconstruction pair (s^j, ŝ^k), j!=k,
  // that agrees exactly and ties with the honest pair.  With share
  // authentication disabled (paper-faithful mode) honest parties adopt
  // the shifted value.
  ThreePartyHarness harness(SecurityMode::kMalicious);
  for (auto& ctx : harness.contexts) {
    ctx.share_authentication = false;
  }
  ByzantineConfig config;
  config.behavior = ByzantineConfig::Behavior::kCoordinatedDelta;
  harness.make_byzantine(1, config);
  Rng rng(31);
  const RingTensor secret = random_ring(Shape{4}, rng);
  const auto results = open_once(harness, secret);
  // Both honest parties are fooled into the same (wrong) value: the
  // forged pair (s^1, ŝ^2-of-the-byzantine-set) is scanned before the
  // honest pair and has distance zero.
  EXPECT_NE(results[0], secret);
  EXPECT_NE(results[2], secret);
  EXPECT_EQ(results[0], results[2]);
}

TEST(OpenTest, ShareAuthenticationDefeatsCoordinatedDelta) {
  ThreePartyHarness harness(SecurityMode::kMalicious);
  ByzantineConfig config;
  config.behavior = ByzantineConfig::Behavior::kCoordinatedDelta;
  harness.make_byzantine(1, config);
  Rng rng(32);
  const RingTensor secret = random_ring(Shape{4}, rng);
  const auto results = open_once(harness, secret);
  EXPECT_EQ(results[0], secret);
  EXPECT_EQ(results[2], secret);
  // Each honest observer attributes the tamper to party 1 via its own
  // share copy.
  for (int party : {0, 2}) {
    const auto& log =
        harness.contexts[static_cast<std::size_t>(party)].detections;
    EXPECT_GE(log.count(DetectionEvent::Kind::kShareAuthFailure), 1u)
        << "party " << party;
    for (const auto& event : log.events) {
      if (event.kind == DetectionEvent::Kind::kShareAuthFailure) {
        EXPECT_EQ(event.suspect, 1);
      }
    }
  }
}

TEST(OpenTest, StealthyDupSecondAttackAttributedByOneObserver) {
  // Tampering only the duplicate + second components evades the
  // own-primary check at one observer.  The observer holding the
  // primary copy of the tampered duplicate attributes the attack and
  // recovers; the other observer can only detect the copy conflict
  // (documented limitation; classic RSS with replicated share-2 would
  // close it).
  ThreePartyHarness harness(SecurityMode::kMalicious);
  ByzantineConfig config;
  config.behavior = ByzantineConfig::Behavior::kStealthyDupSecond;
  harness.make_byzantine(1, config);
  Rng rng(33);
  const RingTensor secret = random_ring(Shape{4}, rng);
  const auto results = open_once(harness, secret);
  // Party 2 owns the primary copy of party 1's duplicated share-1
  // (set 2), so it attributes and recovers.
  EXPECT_EQ(results[2], secret);
  EXPECT_GE(harness.contexts[2].detections.count(
                DetectionEvent::Kind::kShareAuthFailure),
            1u);
  // Party 0 sees conflicting copies of set 2's share-1 and flags the
  // ambiguity.
  EXPECT_GE(harness.contexts[0].detections.count(
                DetectionEvent::Kind::kShareCopyConflict),
            1u);
}

TEST(OpenTest, SilentPartyToleratedViaTimeouts) {
  net::NetworkConfig net_config;
  net_config.recv_timeout = std::chrono::milliseconds(80);
  ThreePartyHarness harness(SecurityMode::kMalicious, net_config);
  ByzantineConfig config;
  config.behavior = ByzantineConfig::Behavior::kDropMessages;
  harness.make_byzantine(0, config);
  Rng rng(9);
  const RingTensor secret = random_ring(Shape{3}, rng);
  const auto results = open_once(harness, secret);
  EXPECT_EQ(results[1], secret);
  EXPECT_EQ(results[2], secret);
  EXPECT_GE(harness.contexts[1].detections.count(
                DetectionEvent::Kind::kMissingMessage),
            1u);
}

TEST(OpenTest, MalformedPayloadInvalidatesSenderOnly) {
  // A Byzantine party sending structurally bogus bytes must not crash
  // honest parties.
  class GarbageAdversary final : public AdversaryHooks {
   public:
    std::optional<std::vector<PartyShare>> replace_shares_for(
        std::uint64_t, int, const std::vector<PartyShare>&) override {
      // Send one tiny wrong-shaped share vector.
      std::vector<PartyShare> bogus(1);
      bogus[0] = zero_share(Shape{1});
      return bogus;
    }
  };
  ThreePartyHarness harness(SecurityMode::kMalicious);
  GarbageAdversary garbage;
  harness.contexts[1].adversary = &garbage;
  Rng rng(10);
  const RingTensor secret = random_ring(Shape{4, 4}, rng);
  const auto results = open_once(harness, secret);
  EXPECT_EQ(results[0], secret);
  EXPECT_EQ(results[2], secret);
}

TEST(OpenTest, ToleranceAcceptsOffByOneUlpReconstructions) {
  // Share-local truncation perturbs different sets by ±1 ulp; the
  // decision rule must treat those as equal.  Emulate by nudging one
  // share by 1.
  ThreePartyHarness harness(SecurityMode::kMalicious);
  Rng rng(11);
  const RingTensor secret = random_ring(Shape{4}, rng);
  auto views = share_secret(secret, rng);
  views[0].primary[0] += 1;  // set 0 reconstructs secret+1
  std::array<RingTensor, 3> results;
  harness.run([&](PartyContext& ctx) {
    results[static_cast<std::size_t>(ctx.party)] =
        open_value(ctx, views[static_cast<std::size_t>(ctx.party)]);
  });
  for (int party = 0; party < 3; ++party) {
    EXPECT_LE(ring_distance(results[static_cast<std::size_t>(party)], secret),
              1u);
    EXPECT_EQ(harness.contexts[static_cast<std::size_t>(party)]
                  .detections.count(DetectionEvent::Kind::kDistanceAnomaly),
              0u);
  }
}

TEST(OpenTest, Case3ConsistentCorruptionAttributedByShareAuthentication) {
  // Same attack with the hardening enabled: the copy checks attribute
  // it before the distance rule even runs.
  ThreePartyHarness harness(SecurityMode::kMalicious);
  ByzantineConfig config;
  config.behavior = ByzantineConfig::Behavior::kConsistentCorruption;
  harness.make_byzantine(2, config);
  Rng rng(8);
  const RingTensor secret = random_ring(Shape{4}, rng);
  const auto results = open_once(harness, secret);
  EXPECT_EQ(results[0], secret);
  EXPECT_EQ(results[1], secret);
  for (int party : {0, 1}) {
    const auto& log =
        harness.contexts[static_cast<std::size_t>(party)].detections;
    EXPECT_GE(log.count(DetectionEvent::Kind::kShareAuthFailure), 1u);
    for (const auto& event : log.events) {
      if (event.kind == DetectionEvent::Kind::kShareAuthFailure) {
        EXPECT_EQ(event.suspect, 2);
      }
    }
  }
}

TEST(OpenTest, ProbabilisticAttackerCaughtOnAttackedSteps) {
  ThreePartyHarness harness(SecurityMode::kMalicious);
  for (auto& ctx : harness.contexts) {
    ctx.share_authentication = false;  // count distance-rule catches
  }
  ByzantineConfig config;
  config.behavior = ByzantineConfig::Behavior::kConsistentCorruption;
  config.probability = 0.5;
  harness.make_byzantine(1, config);
  Rng rng(12);
  const int rounds = 20;
  std::vector<std::array<PartyShare, 3>> all_views;
  std::vector<RingTensor> secrets;
  for (int round = 0; round < rounds; ++round) {
    secrets.push_back(random_ring(Shape{3}, rng));
    all_views.push_back(share_secret(secrets.back(), rng));
  }
  std::array<std::vector<RingTensor>, 3> results;
  harness.run([&](PartyContext& ctx) {
    for (int round = 0; round < rounds; ++round) {
      results[static_cast<std::size_t>(ctx.party)].push_back(open_value(
          ctx,
          all_views[static_cast<std::size_t>(round)]
                   [static_cast<std::size_t>(ctx.party)]));
    }
  });
  for (int round = 0; round < rounds; ++round) {
    EXPECT_EQ(results[0][static_cast<std::size_t>(round)],
              secrets[static_cast<std::size_t>(round)]);
    EXPECT_EQ(results[2][static_cast<std::size_t>(round)],
              secrets[static_cast<std::size_t>(round)]);
  }
  const auto attacks = harness.adversary->attacks_launched();
  EXPECT_GT(attacks, 0u);
  EXPECT_LT(attacks, static_cast<std::uint64_t>(rounds));
  EXPECT_EQ(harness.contexts[0].detections.count(
                DetectionEvent::Kind::kDistanceAnomaly),
            attacks);
}

}  // namespace
}  // namespace trustddl::mpc
