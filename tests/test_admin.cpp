// Introspection-plane tests: the admin HTTP endpoint (healthz flips
// on peer silence, live /metrics equals the exit-time export, robust
// handling of malformed requests), the Prometheus text exposition, the
// health state's heartbeat/watermark bookkeeping, and concurrent
// scrapes against a churning registry.
//
// Suite names contain "Admin" so the CI thread-sanitizer job picks
// them up — the endpoint's whole contract is that scraping a hot
// process is safe.
#include "obs/admin_server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics_export.hpp"
#include "obs/events.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace trustddl {
namespace {

/// Save/restore the process-global flags so tests compose in one
/// process regardless of environment overrides.
class ObsFlagsGuard {
 public:
  ObsFlagsGuard()
      : metrics_(obs::metrics_enabled()), health_(obs::health_enabled()) {
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::global().reset();
    obs::HealthState::global().reset();
    obs::EventLog::global().clear();
  }
  ~ObsFlagsGuard() {
    obs::set_metrics_enabled(metrics_);
    obs::set_health_enabled(health_);
    obs::MetricsRegistry::global().reset();
    obs::HealthState::global().reset();
    obs::EventLog::global().clear();
  }

 private:
  bool metrics_;
  bool health_;
};

/// Sends raw bytes to the server and returns everything it answers —
/// for the malformed-request cases http_get cannot produce.
std::string raw_request(int port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, payload.data(), payload.size(), 0),
            static_cast<ssize_t>(payload.size()));
  std::string response;
  char buffer[1024];
  while (true) {
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) {
      break;
    }
    response.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return response;
}

TEST(AdminHealthTest, HealthzFlipsOnPeerSilenceAndRecovers) {
  ObsFlagsGuard guard;
  obs::AdminOptions options;
  options.stale_after_ms = 150;
  obs::AdminServer server(options);
  server.start();
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);
  obs::HealthState::global().set_identity("test-party", "unit");

  // A fresh heartbeat: healthy.
  obs::HealthState::global().note_peer(1);
  obs::HttpResponse response =
      obs::http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(response.body.find("\"role\": \"test-party\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"peer\": 1"), std::string::npos);

  // Simulated silence: peer 1 sends nothing for > stale_after_ms.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  response = obs::http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("\"status\": \"degraded\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"stale\": true"), std::string::npos);

  // The peer chatters again: healthy again.
  obs::HealthState::global().note_peer(1);
  response = obs::http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(response.status, 200);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(AdminHealthTest, WatermarksAreMonotonicAndListed) {
  ObsFlagsGuard guard;
  obs::set_health_enabled(true);
  obs::HealthState::global().note_progress("serve.last_batch", 7);
  obs::HealthState::global().note_progress("serve.last_batch", 3);
  obs::HealthState::global().note_progress("train.last_round", 1);
  const auto watermarks = obs::HealthState::global().watermarks();
  ASSERT_EQ(watermarks.size(), 2u);
  EXPECT_EQ(watermarks[0].first, "serve.last_batch");
  EXPECT_EQ(watermarks[0].second, 7u);  // 3 must not regress it
  EXPECT_EQ(watermarks[1].second, 1u);
}

TEST(AdminMetricsTest, LiveScrapeEqualsExitExportWhenQuiesced) {
  ObsFlagsGuard guard;
  obs::count("test.admin.counter", 41);
  obs::gauge_add("test.admin.gauge", 5);
  obs::observe("test.admin.hist", 17);

  // The provider a party installs, with the live wall clock pinned:
  // once the workload is quiesced, a scrape and the exit export render
  // byte-identical documents.
  const std::vector<std::unique_ptr<net::TcpTransport>> transports;
  const std::vector<mpc::DetectionLog> party_logs;
  const double wall_seconds = 1.5;
  obs::AdminServer server;
  server.set_metrics_provider([&](const obs::MetricsSnapshot& snapshot) {
    return core::build_process_export_json(snapshot, transports, party_logs,
                                           wall_seconds, 5, -1);
  });
  server.start();

  const obs::HttpResponse scrape =
      obs::http_get("127.0.0.1", server.port(), "/metrics");
  ASSERT_EQ(scrape.status, 200);
  const std::string exit_export = core::build_process_export_json(
      obs::MetricsRegistry::global().snapshot(), transports, party_logs,
      wall_seconds, 5, -1);
  EXPECT_EQ(scrape.body, exit_export);
  EXPECT_NE(scrape.body.find("\"test.admin.counter\": 41"),
            std::string::npos);
  server.stop();
}

TEST(AdminMetricsTest, PrometheusExpositionMatchesRegistry) {
  ObsFlagsGuard guard;
  obs::count("test.prom.counter", 9);
  obs::gauge_add("test.prom.gauge", 4);
  obs::gauge_add("test.prom.gauge", -1);
  obs::observe("test.prom.hist", 5);  // lands in the le="16" bucket

  const std::string text =
      obs::prometheus_text(obs::MetricsRegistry::global().snapshot());
  EXPECT_NE(text.find("# TYPE trustddl_test_prom_counter counter\n"
                      "trustddl_test_prom_counter 9\n"),
            std::string::npos);
  EXPECT_NE(text.find("trustddl_test_prom_gauge 3\n"), std::string::npos);
  EXPECT_NE(text.find("trustddl_test_prom_gauge_peak 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("trustddl_test_prom_hist_bucket{le=\"4\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("trustddl_test_prom_hist_bucket{le=\"16\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("trustddl_test_prom_hist_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("trustddl_test_prom_hist_count 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("trustddl_test_prom_hist_sum 5\n"),
            std::string::npos);
}

TEST(AdminMetricsTest, PairFormatRendersOneSnapshot) {
  ObsFlagsGuard guard;
  obs::count("test.pair.counter", 23);
  obs::AdminServer server;
  server.start();
  const obs::HttpResponse response = obs::http_get(
      "127.0.0.1", server.port(), "/metrics?format=pair");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"schema\": \"trustddl.admin.pair.v1\""),
            std::string::npos);
  // The same scrape in both views: the JSON export carries the counter
  // and the escaped prometheus text carries the same value.
  EXPECT_NE(response.body.find("\"test.pair.counter\": 23"),
            std::string::npos);
  EXPECT_NE(response.body.find("trustddl_test_pair_counter 23"),
            std::string::npos);
  server.stop();
}

TEST(AdminEventsTest, EventsEndpointServesTail) {
  ObsFlagsGuard guard;
  obs::DetectionEventRecord record;
  record.party = 0;
  record.suspect = 2;
  record.step = 11;
  record.kind = "commitment_violation";
  record.phase = "exchange";
  record.recovery = "discard_shares";
  obs::EventLog::global().record(record);

  obs::AdminServer server;
  server.start();
  obs::HttpResponse response =
      obs::http_get("127.0.0.1", server.port(), "/events?n=10");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"suspect\": 2"), std::string::npos);
  EXPECT_NE(response.body.find("commitment_violation"), std::string::npos);
  // n=0 asks for an empty tail.
  response = obs::http_get("127.0.0.1", server.port(), "/events?n=0");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body.find("suspect"), std::string::npos);
  server.stop();
}

TEST(AdminServerTest, StatusReportsIdentityAndLedgers) {
  ObsFlagsGuard guard;
  obs::count("serve.requests.admitted", 6);
  obs::AdminServer server;
  server.start();
  obs::HealthState::global().set_identity("computing-party-0", "serve");
  const obs::HttpResponse response =
      obs::http_get("127.0.0.1", server.port(), "/status");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"role\": \"computing-party-0\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"task\": \"serve\""), std::string::npos);
  EXPECT_NE(response.body.find("\"serve.requests.admitted\": 6"),
            std::string::npos);
  server.stop();
}

TEST(AdminServerTest, MalformedRequestsAnswerErrorsAndServerSurvives) {
  ObsFlagsGuard guard;
  obs::AdminServer server;
  server.start();
  const int port = server.port();

  EXPECT_NE(raw_request(port, "garbage\r\n\r\n").find("400"),
            std::string::npos);
  EXPECT_NE(raw_request(port, "POST /healthz HTTP/1.0\r\n\r\n").find("405"),
            std::string::npos);
  EXPECT_NE(raw_request(port, "GET /nosuch HTTP/1.0\r\n\r\n").find("404"),
            std::string::npos);
  // A request over the 4KB cap is rejected, not buffered forever.
  EXPECT_NE(raw_request(port, "GET /" + std::string(8192, 'a') +
                                  " HTTP/1.0\r\n\r\n")
                .find("400"),
            std::string::npos);
  // An empty connection (client connects and hangs up) is tolerated.
  raw_request(port, "");

  // After all that abuse the server still answers cleanly.
  const obs::HttpResponse response =
      obs::http_get("127.0.0.1", port, "/healthz");
  EXPECT_EQ(response.status, 200);
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::global().snapshot();
  std::uint64_t errors = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "admin.http.errors") {
      errors = value;
    }
  }
  EXPECT_GE(errors, 3u);
  server.stop();
}

TEST(AdminServerTest, ConcurrentScrapesAgainstChurningRegistry) {
  ObsFlagsGuard guard;
  obs::AdminServer server;
  server.start();
  const int port = server.port();

  // A writer hammers every instrument family while four scrapers pull
  // every endpoint — the tsan job runs this suite to prove a scrape
  // never races the lock-free registry or the health table.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      obs::count("test.churn.counter");
      obs::gauge_add("test.churn.gauge", i % 2 == 0 ? 1 : -1);
      obs::observe("test.churn.hist", i % 257);
      obs::HealthState::global().note_peer(static_cast<int>(i % 5));
      obs::HealthState::global().note_progress("test.churn", i);
      ++i;
    }
  });

  const char* targets[] = {"/healthz", "/metrics", "/events?n=5", "/status",
                           "/metrics?format=prometheus"};
  std::vector<std::thread> scrapers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        const obs::HttpResponse response = obs::http_get(
            "127.0.0.1", port, targets[(t + i) % 5], 5000);
        if (response.status != 200 && response.status != 503) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& scraper : scrapers) {
    scraper.join();
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.requests_served(), 32u);
  server.stop();
}

TEST(AdminServerTest, StopIsIdempotentAndPortIsReusable) {
  ObsFlagsGuard guard;
  int port = 0;
  {
    obs::AdminServer server;
    server.start();
    port = server.port();
    server.stop();
    server.stop();  // second stop is a no-op
  }                 // destructor after stop is a no-op too
  // The old port is free again: a new server can bind it right away.
  obs::AdminOptions options;
  options.port = port;
  obs::AdminServer server(options);
  server.start();
  EXPECT_EQ(server.port(), port);
  const obs::HttpResponse response =
      obs::http_get("127.0.0.1", port, "/healthz");
  EXPECT_EQ(response.status, 200);
  server.stop();
}

}  // namespace
}  // namespace trustddl
