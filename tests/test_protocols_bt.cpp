#include "mpc/protocols_bt.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mpc/adversary.hpp"
#include "numeric/fixed_point.hpp"
#include "test_util.hpp"

namespace trustddl::mpc {
namespace {

using testing::ThreePartyHarness;
using testing::random_real;

constexpr int kF = fx::kDefaultFracBits;

struct MulFixture {
  RealTensor x;
  RealTensor y;
  std::array<PartyShare, 3> x_views;
  std::array<PartyShare, 3> y_views;
  std::shared_ptr<SharedDealer> dealer;

  MulFixture(const Shape& shape, std::uint64_t seed, double bound = 4.0) {
    Rng rng(seed);
    x = random_real(shape, rng, bound);
    y = random_real(shape, rng, bound);
    x_views = share_secret(to_ring(x, kF), rng);
    y_views = share_secret(to_ring(y, kF), rng);
    dealer = std::make_shared<SharedDealer>(seed + 999, kF);
  }
};

TEST(SecMulBtTest, ElementwiseProductMatchesPlaintext) {
  ThreePartyHarness harness;
  MulFixture fixture(Shape{3, 4}, 21);
  std::array<RealTensor, 3> results;
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(fixture.dealer, ctx.party);
    const auto triple = source.mul_triple(Shape{3, 4});
    PartyShare z = sec_mul_bt(ctx, fixture.x_views[index],
                              fixture.y_views[index], triple);
    z = truncate_product_local(z, kF);
    results[index] = to_real(open_value(ctx, z), kF);
  });
  const RealTensor expected = hadamard(fixture.x, fixture.y);
  for (const auto& result : results) {
    EXPECT_LT(max_abs_diff(result, expected), 1e-4);
  }
}

TEST(SecMatMulBtTest, MatrixProductMatchesPlaintext) {
  ThreePartyHarness harness;
  Rng rng(22);
  const RealTensor x = random_real(Shape{4, 6}, rng, 2.0);
  const RealTensor y = random_real(Shape{6, 5}, rng, 2.0);
  const auto x_views = share_secret(to_ring(x, kF), rng);
  const auto y_views = share_secret(to_ring(y, kF), rng);
  auto dealer = std::make_shared<SharedDealer>(777, kF);

  std::array<RealTensor, 3> results;
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(dealer, ctx.party);
    const auto triple = source.matmul_triple(4, 6, 5);
    PartyShare z =
        sec_matmul_bt(ctx, x_views[index], y_views[index], triple);
    z = truncate_product_local(z, kF);
    results[index] = to_real(open_value(ctx, z), kF);
  });
  const RealTensor expected = matmul(x, y);
  for (const auto& result : results) {
    EXPECT_LT(max_abs_diff(result, expected), 1e-3);
  }
}

TEST(SecMulBtTest, MaskedOpenTruncationIsExact) {
  ThreePartyHarness harness;
  MulFixture fixture(Shape{8}, 23);
  std::array<RealTensor, 3> results;
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(fixture.dealer, ctx.party);
    const auto triple = source.mul_triple(Shape{8});
    const auto pair = source.trunc_pair(Shape{8});
    PartyShare z = sec_mul_bt(ctx, fixture.x_views[index],
                              fixture.y_views[index], triple);
    z = truncate_product_masked(ctx, z, pair);
    results[index] = to_real(open_value(ctx, z), kF);
  });
  const RealTensor expected = hadamard(fixture.x, fixture.y);
  for (const auto& result : results) {
    EXPECT_LT(max_abs_diff(result, expected), 4.0 / (1 << kF));
  }
}

TEST(SecCompBtTest, SignsMatchPlaintextComparison) {
  ThreePartyHarness harness;
  Rng rng(24);
  const Shape shape{10};
  RealTensor x = random_real(shape, rng);
  RealTensor y = random_real(shape, rng);
  x[0] = y[0];  // include an exact tie
  const auto x_views = share_secret(to_ring(x, kF), rng);
  const auto y_views = share_secret(to_ring(y, kF), rng);
  auto dealer = std::make_shared<SharedDealer>(555, kF);

  std::array<RingTensor, 3> signs;
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(dealer, ctx.party);
    const auto triple = source.mul_triple(shape);
    const auto t_aux = source.comp_aux(shape);
    signs[index] = sec_comp_bt(ctx, x_views[index], y_views[index], t_aux,
                               triple);
  });
  for (const auto& result : signs) {
    for (std::size_t i = 0; i < result.size(); ++i) {
      const double diff = x[i] - y[i];
      const auto got = static_cast<std::int64_t>(result[i]);
      if (diff > 1e-5) {
        EXPECT_EQ(got, 1) << "element " << i;
      } else if (diff < -1e-5) {
        EXPECT_EQ(got, -1) << "element " << i;
      } else {
        EXPECT_EQ(got, 0) << "element " << i;
      }
    }
  }
}

TEST(SecCompBtTest, SignAgainstZeroAndPositiveMask) {
  ThreePartyHarness harness;
  Rng rng(25);
  const Shape shape{6};
  const RealTensor x(Shape{6}, {-2.0, -0.5, 0.0, 0.5, 2.0, 7.0});
  const auto x_views = share_secret(to_ring(x, kF), rng);
  auto dealer = std::make_shared<SharedDealer>(444, kF);

  std::array<RingTensor, 3> masks;
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(dealer, ctx.party);
    const auto signs = sec_sign_bt(ctx, x_views[index],
                                   source.comp_aux(shape),
                                   source.mul_triple(shape));
    masks[index] = positive_mask(signs);
  });
  const AlignedVector<std::uint64_t> expected{0, 0, 0, 1, 1, 1};
  for (const auto& mask : masks) {
    EXPECT_EQ(mask.values(), expected);
  }
}

class SecMulByzantineSweep
    : public ::testing::TestWithParam<
          std::tuple<int, ByzantineConfig::Behavior>> {};

TEST_P(SecMulByzantineSweep, HonestPartiesComputeCorrectProduct) {
  const auto [byzantine_party, behavior] = GetParam();
  ThreePartyHarness harness;
  ByzantineConfig config;
  config.behavior = behavior;
  config.target_peer = (byzantine_party + 2) % 3;
  harness.make_byzantine(byzantine_party, config);

  MulFixture fixture(Shape{4}, 26);
  std::array<PartyShare, 3> product_shares;
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(fixture.dealer, ctx.party);
    const auto triple = source.mul_triple(Shape{4});
    PartyShare z = sec_mul_bt(ctx, fixture.x_views[index],
                              fixture.y_views[index], triple);
    product_shares[index] = truncate_product_local(z, kF);
  });

  // Verify via the shares of the two honest parties: reconstruct the
  // set whose both halves are honest-held.
  const RealTensor expected = hadamard(fixture.x, fixture.y);
  for (int set = 0; set < kNumSets; ++set) {
    const int p1 = holder_of_primary(set);
    const int p2 = holder_of_second(set);
    if (p1 == byzantine_party || p2 == byzantine_party) {
      continue;
    }
    const RealTensor got = to_real(
        product_shares[static_cast<std::size_t>(p1)].primary +
            product_shares[static_cast<std::size_t>(p2)].second,
        kF);
    EXPECT_LT(max_abs_diff(got, expected), 1e-4)
        << "set " << set << " behavior " << static_cast<int>(behavior);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SecMulByzantineSweep,
    ::testing::Combine(
        ::testing::Values(0, 1, 2),
        ::testing::Values(
            ByzantineConfig::Behavior::kConsistentCorruption,
            ByzantineConfig::Behavior::kCommitmentViolationGlobal,
            ByzantineConfig::Behavior::kCommitmentViolationSingle)));

TEST(SecMulBtTest, ChainedMultiplicationsStayAccurate) {
  // x * y * w with re-truncation between steps: exercises triple reuse
  // ordering and accumulation of fixed-point error.
  ThreePartyHarness harness;
  Rng rng(27);
  const Shape shape{5};
  const RealTensor x = random_real(shape, rng, 2.0);
  const RealTensor y = random_real(shape, rng, 2.0);
  const RealTensor w = random_real(shape, rng, 2.0);
  const auto x_views = share_secret(to_ring(x, kF), rng);
  const auto y_views = share_secret(to_ring(y, kF), rng);
  const auto w_views = share_secret(to_ring(w, kF), rng);
  auto dealer = std::make_shared<SharedDealer>(321, kF);

  std::array<RealTensor, 3> results;
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(dealer, ctx.party);
    PartyShare xy = sec_mul_bt(ctx, x_views[index], y_views[index],
                               source.mul_triple(shape));
    xy = truncate_product_local(xy, kF);
    PartyShare xyw =
        sec_mul_bt(ctx, xy, w_views[index], source.mul_triple(shape));
    xyw = truncate_product_local(xyw, kF);
    results[index] = to_real(open_value(ctx, xyw), kF);
  });
  const RealTensor expected = hadamard(hadamard(x, y), w);
  for (const auto& result : results) {
    EXPECT_LT(max_abs_diff(result, expected), 1e-3);
  }
}

TEST(SecMulBtTest, HbcModeProducesSameResult) {
  ThreePartyHarness harness(SecurityMode::kHonestButCurious);
  MulFixture fixture(Shape{3, 3}, 28);
  std::array<RealTensor, 3> results;
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(fixture.dealer, ctx.party);
    PartyShare z =
        sec_mul_bt(ctx, fixture.x_views[index], fixture.y_views[index],
                   source.mul_triple(Shape{3, 3}));
    z = truncate_product_local(z, kF);
    results[index] = to_real(open_value(ctx, z), kF);
  });
  const RealTensor expected = hadamard(fixture.x, fixture.y);
  for (const auto& result : results) {
    EXPECT_LT(max_abs_diff(result, expected), 1e-4);
  }
}

}  // namespace
}  // namespace trustddl::mpc
