#include "common/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

namespace trustddl {
namespace {

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::hex(Sha256::hash(std::string{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::hex(Sha256::hash(std::string{"abc"})),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::hex(Sha256::hash(std::string{
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.update(chunk);
  }
  EXPECT_EQ(Sha256::hex(hasher.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64-byte input exercises the padding-into-new-block path.
  const std::string input(64, 'x');
  Sha256 one_shot;
  one_shot.update(input);
  Sha256 split;
  split.update(input.substr(0, 17));
  split.update(input.substr(17));
  EXPECT_EQ(Sha256::hex(one_shot.finish()), Sha256::hex(split.finish()));
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string input = "TrustDDL commitment phase test payload";
  Sha256 incremental;
  for (char character : input) {
    incremental.update(std::string(1, character));
  }
  EXPECT_EQ(Sha256::hex(incremental.finish()),
            Sha256::hex(Sha256::hash(input)));
}

TEST(Sha256Test, DifferentInputsDiffer) {
  EXPECT_NE(Sha256::hex(Sha256::hash(std::string{"share-a"})),
            Sha256::hex(Sha256::hash(std::string{"share-b"})));
}

TEST(Sha256Test, BytesOverloadMatchesString) {
  const std::string text = "payload";
  const Bytes bytes(text.begin(), text.end());
  EXPECT_EQ(Sha256::hash(bytes), Sha256::hash(text));
}

}  // namespace
}  // namespace trustddl
