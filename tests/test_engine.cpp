#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "net/tcp_transport.hpp"
#include "nn/loss.hpp"
#include "numeric/simd.hpp"

namespace trustddl::core {
namespace {

data::TrainTestSplit small_split(std::size_t train = 300,
                                 std::size_t test = 80) {
  data::SyntheticMnistConfig config;
  config.train_count = train;
  config.test_count = test;
  config.seed = 42;
  return data::generate_synthetic_mnist(config);
}

EngineConfig fast_config() {
  EngineConfig config;
  config.collect_timeout = std::chrono::milliseconds(300);
  return config;
}

TEST(EngineTest, SecureInferenceMatchesPlaintextPredictions) {
  const auto split = small_split(50, 30);
  TrustDdlEngine engine(nn::mnist_mlp_spec(), fast_config());

  const data::Dataset sample = data::slice(split.test, 0, 12);
  const auto plain_predictions =
      engine.reference_model().predict(sample.images);
  const InferResult result = engine.infer(sample, /*batch_size=*/4);

  ASSERT_EQ(result.labels.size(), 12u);
  std::size_t matches = 0;
  for (std::size_t i = 0; i < result.labels.size(); ++i) {
    matches += (result.labels[i] == plain_predictions[i]) ? 1 : 0;
  }
  // Fixed-point noise can flip near-ties, but predictions should
  // almost always coincide.
  EXPECT_GE(matches, 11u);
  EXPECT_GT(result.cost.total_bytes, 0u);
  EXPECT_GT(result.cost.total_messages, 0u);
}

TEST(EngineTest, TrainingImprovesTestAccuracy) {
  const auto split = small_split(160, 60);
  TrustDdlEngine engine(nn::mnist_mlp_spec(), fast_config());
  const double initial_accuracy = engine.reference_model().accuracy(
      split.test.images, split.test.labels);

  TrainOptions options;
  options.epochs = 1;
  options.batch_size = 16;
  options.learning_rate = 0.4;
  const TrainResult result =
      engine.train(split.train, split.test, options);

  ASSERT_EQ(result.epoch_test_accuracy.size(), 1u);
  EXPECT_GT(result.epoch_test_accuracy[0], initial_accuracy + 0.2);
  EXPECT_GT(result.cost.total_bytes, 0u);
  EXPECT_EQ(result.cost.commitment_violations, 0u);
  EXPECT_EQ(result.cost.share_auth_failures, 0u);
}

TEST(EngineTest, HbcModeIsCheaperThanMalicious) {
  const auto split = small_split(24, 10);
  TrainOptions options;
  options.epochs = 1;
  options.batch_size = 8;
  options.evaluate_each_epoch = false;

  EngineConfig hbc = fast_config();
  hbc.mode = mpc::SecurityMode::kHonestButCurious;
  TrustDdlEngine hbc_engine(nn::mnist_mlp_spec(), hbc);
  const auto hbc_result = hbc_engine.train(split.train, split.test, options);

  EngineConfig malicious = fast_config();
  malicious.mode = mpc::SecurityMode::kMalicious;
  TrustDdlEngine mal_engine(nn::mnist_mlp_spec(), malicious);
  const auto mal_result = mal_engine.train(split.train, split.test, options);

  EXPECT_LT(hbc_result.cost.total_bytes, mal_result.cost.total_bytes);
  EXPECT_LT(hbc_result.cost.total_messages, mal_result.cost.total_messages);
}

TEST(EngineTest, TrainingToleratesByzantineParty) {
  const auto split = small_split(96, 40);
  EngineConfig config = fast_config();
  config.trunc_mode = TruncationMode::kMaskedOpen;  // attack-consistent
  config.byzantine_party = 2;
  config.byzantine.behavior =
      mpc::ByzantineConfig::Behavior::kConsistentCorruption;
  config.byzantine.probability = 0.05;
  TrustDdlEngine engine(nn::mnist_mlp_spec(), config);
  const double initial_accuracy = engine.reference_model().accuracy(
      split.test.images, split.test.labels);

  TrainOptions options;
  options.epochs = 1;
  options.batch_size = 12;
  options.learning_rate = 0.3;
  const TrainResult result = engine.train(split.train, split.test, options);

  ASSERT_EQ(result.epoch_test_accuracy.size(), 1u);
  EXPECT_GT(result.epoch_test_accuracy[0], initial_accuracy + 0.2);
  // The attacks were seen and survived.
  EXPECT_GT(result.cost.share_auth_failures, 0u);
}

TEST(EngineTest, InferenceToleratesByzantineParty) {
  const auto split = small_split(30, 16);
  EngineConfig honest_config = fast_config();
  TrustDdlEngine honest_engine(nn::mnist_mlp_spec(), honest_config);
  const data::Dataset sample = data::slice(split.test, 0, 8);
  const auto expected = honest_engine.reference_model().predict(sample.images);

  EngineConfig config = fast_config();
  config.trunc_mode = TruncationMode::kMaskedOpen;  // attack-consistent
  config.byzantine_party = 0;
  config.byzantine.behavior =
      mpc::ByzantineConfig::Behavior::kCommitmentViolationGlobal;
  TrustDdlEngine engine(nn::mnist_mlp_spec(), config);
  const InferResult result = engine.infer(sample, /*batch_size=*/4);

  std::size_t matches = 0;
  for (std::size_t i = 0; i < result.labels.size(); ++i) {
    matches += (result.labels[i] == expected[i]) ? 1 : 0;
  }
  EXPECT_GE(matches, 7u);
  EXPECT_GT(result.cost.commitment_violations, 0u);
}

TEST(EngineTest, SecureInferenceOverTcpMatchesInMemory) {
  // The same BT (malicious-mode) inference over real loopback sockets:
  // all randomness is seed-derived, so the reconstructed predictions
  // must be bit-identical to the in-memory engine's, and the metered
  // traffic (counted once per message, at the sender) must agree.
  const auto split = small_split(30, 16);
  const data::Dataset sample = data::slice(split.test, 0, 6);

  TrustDdlEngine in_memory(nn::mnist_mlp_spec(), fast_config());
  const InferResult expected = in_memory.infer(sample, /*batch_size=*/3);

  net::NetworkConfig net_config;
  net_config.num_parties = kNumActors;
  net::TcpFabric fabric(net_config);
  TrustDdlEngine over_tcp(nn::mnist_mlp_spec(), fast_config(), fabric);
  const InferResult actual = over_tcp.infer(sample, /*batch_size=*/3);

  EXPECT_EQ(actual.labels, expected.labels);
  EXPECT_EQ(actual.cost.total_messages, expected.cost.total_messages);
  EXPECT_EQ(actual.cost.total_bytes, expected.cost.total_bytes);
  EXPECT_EQ(actual.cost.opening_rounds, expected.cost.opening_rounds);
  EXPECT_EQ(actual.cost.commitment_violations, 0u);
}

TEST(EngineTest, CostReportSplitsProxyAndOwnerTraffic) {
  const auto split = small_split(20, 10);
  TrustDdlEngine engine(nn::mnist_mlp_spec(), fast_config());
  const InferResult result =
      engine.infer(data::slice(split.test, 0, 4), /*batch_size=*/4);
  EXPECT_GT(result.cost.proxy_bytes, 0u);
  EXPECT_GT(result.cost.owner_bytes, 0u);
  EXPECT_EQ(result.cost.proxy_bytes + result.cost.owner_bytes,
            result.cost.total_bytes);
}

TEST(EngineTest, MaskedOpenTruncationAlsoTrains) {
  const auto split = small_split(48, 24);
  EngineConfig config = fast_config();
  config.trunc_mode = TruncationMode::kMaskedOpen;
  TrustDdlEngine engine(nn::mnist_mlp_spec(), config);
  const double initial_accuracy = engine.reference_model().accuracy(
      split.test.images, split.test.labels);

  TrainOptions options;
  options.epochs = 1;
  options.batch_size = 10;
  options.learning_rate = 0.3;
  const TrainResult result = engine.train(split.train, split.test, options);
  ASSERT_EQ(result.epoch_test_accuracy.size(), 1u);
  EXPECT_GT(result.epoch_test_accuracy[0], initial_accuracy);
}

TEST(KernelDeterminismTest, TrainedWeightsBitIdenticalAcrossBackendsAndThreads) {
  // The kernel determinism contract, end to end: the whole secure
  // training loop (sharing, SecMatMul-BT, truncation, robust openings,
  // weight write-back) must produce BIT-IDENTICAL weights across
  // {scalar, SIMD} backends × {1, 4}-thread pools — the protocol's
  // ring arithmetic is exact mod 2^64, the double SIMD kernels keep
  // the scalar per-element operation order (no FMA contraction), and
  // the blocked/parallel matmuls use thread-count-independent
  // accumulation orders.
  const auto split = small_split(64, 24);
  TrainOptions options;
  options.epochs = 1;
  options.batch_size = 8;
  options.learning_rate = 0.3;

  auto train_with = [&](simd::Backend backend, int threads) {
    EXPECT_TRUE(simd::force_backend(backend));
    EngineConfig config = fast_config();
    // A short collect timeout can expire a reveal group and
    // reconstruct the weights from 2-of-3 shares under heavy machine
    // load; after local truncation the share sets disagree by a few
    // ulps, so the 2-share median differs.  That is crash-tolerance
    // timing, not kernel nondeterminism — keep it out of this test.
    config.collect_timeout = std::chrono::seconds(30);
    config.kernels.threads = threads;
    TrustDdlEngine engine(nn::mnist_mlp_spec(), config);
    (void)engine.train(split.train, split.test, options);
    simd::clear_forced_backend();
    std::vector<RealTensor> weights;
    for (nn::Parameter* parameter : engine.reference_model().parameters()) {
      weights.push_back(parameter->value);
    }
    return weights;
  };

  const std::vector<RealTensor> reference =
      train_with(simd::Backend::kScalar, 1);
  ASSERT_FALSE(reference.empty());

  std::vector<simd::Backend> backends{simd::Backend::kScalar};
  if (simd::detected_backend() != simd::Backend::kScalar) {
    backends.push_back(simd::detected_backend());
  }
  for (simd::Backend backend : backends) {
    for (int threads : {1, 4}) {
      if (backend == simd::Backend::kScalar && threads == 1) {
        continue;  // that is the reference run
      }
      const std::vector<RealTensor> weights = train_with(backend, threads);
      ASSERT_EQ(weights.size(), reference.size());
      for (std::size_t p = 0; p < weights.size(); ++p) {
        // Tensor operator== compares every element exactly (doubles
        // included) — no tolerance.
        EXPECT_EQ(weights[p], reference[p])
            << "backend=" << simd::backend_name(backend)
            << " threads=" << threads << " parameter " << p;
      }
    }
  }
}

TEST(EngineTest, InferBatchLargerThanDatasetRunsOnePartialBatch) {
  const auto split = small_split(50, 30);
  TrustDdlEngine engine(nn::mnist_mlp_spec(), fast_config());

  const data::Dataset sample = data::slice(split.test, 0, 3);
  const InferResult result = engine.infer(sample, /*batch_size=*/8);

  ASSERT_EQ(result.labels.size(), 3u);
  const auto plain = engine.reference_model().predict(sample.images);
  std::size_t matches = 0;
  for (std::size_t i = 0; i < result.labels.size(); ++i) {
    matches += (result.labels[i] == plain[i]) ? 1 : 0;
  }
  EXPECT_GE(matches, 2u);
}

TEST(EngineTest, InferHandlesPartialFinalBatch) {
  const auto split = small_split(50, 30);
  TrustDdlEngine engine(nn::mnist_mlp_spec(), fast_config());

  // 10 rows at batch 4: two full batches and a final batch of 2.
  const data::Dataset sample = data::slice(split.test, 0, 10);
  const InferResult result = engine.infer(sample, /*batch_size=*/4);

  ASSERT_EQ(result.labels.size(), 10u);
  const auto plain = engine.reference_model().predict(sample.images);
  std::size_t matches = 0;
  for (std::size_t i = 0; i < result.labels.size(); ++i) {
    matches += (result.labels[i] == plain[i]) ? 1 : 0;
  }
  EXPECT_GE(matches, 9u);
}

TEST(EngineTest, InferRejectsEmptyDataset) {
  const auto split = small_split(50, 30);
  TrustDdlEngine engine(nn::mnist_mlp_spec(), fast_config());
  EXPECT_THROW(engine.infer(data::Dataset{}, /*batch_size=*/4),
               InvalidArgument);
}

}  // namespace
}  // namespace trustddl::core
