// Owner-side robust reconstruction (mpc/robust_reconstruct.hpp): the
// data/model owner combines the three parties' share triples and must
// survive one corrupted or missing triple.
#include "mpc/robust_reconstruct.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "test_util.hpp"

namespace trustddl::mpc {
namespace {

using testing::random_ring;

std::array<std::optional<PartyShare>, 3> as_optional(
    const std::array<PartyShare, 3>& views) {
  return {views[0], views[1], views[2]};
}

TEST(RobustReconstructTest, AllHonestExact) {
  Rng rng(1);
  const RingTensor secret = random_ring(Shape{5, 3}, rng);
  ReconstructReport report;
  const RingTensor value =
      robust_reconstruct(as_optional(share_secret(secret, rng)), 8, &report);
  EXPECT_EQ(value, secret);
  EXPECT_FALSE(report.anomaly);
  EXPECT_FALSE(report.ambiguous);
  EXPECT_EQ(report.suspect, -1);
}

class RobustReconstructMissingParty : public ::testing::TestWithParam<int> {};

TEST_P(RobustReconstructMissingParty, TwoTriplesSuffice) {
  const int missing = GetParam();
  Rng rng(2);
  const RingTensor secret = random_ring(Shape{4}, rng);
  auto triples = as_optional(share_secret(secret, rng));
  triples[static_cast<std::size_t>(missing)].reset();
  EXPECT_EQ(robust_reconstruct(triples, 8), secret);
}

INSTANTIATE_TEST_SUITE_P(Parties, RobustReconstructMissingParty,
                         ::testing::Values(0, 1, 2));

class RobustReconstructCorruptComponent
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RobustReconstructCorruptComponent, SingleComponentCorruptionHealed) {
  const auto [party, component] = GetParam();
  Rng rng(3);
  const RingTensor secret = random_ring(Shape{6}, rng);
  auto views = share_secret(secret, rng);
  RingTensor* target = nullptr;
  switch (component) {
    case 0:
      target = &views[static_cast<std::size_t>(party)].primary;
      break;
    case 1:
      target = &views[static_cast<std::size_t>(party)].duplicate;
      break;
    default:
      target = &views[static_cast<std::size_t>(party)].second;
      break;
  }
  for (std::size_t i = 0; i < target->size(); ++i) {
    (*target)[i] += rng.next_u64() | (1ull << 42);
  }
  ReconstructReport report;
  EXPECT_EQ(robust_reconstruct(as_optional(views), 8, &report), secret)
      << "party " << party << " component " << component;
  EXPECT_TRUE(report.anomaly);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RobustReconstructCorruptComponent,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1, 2)));

TEST(RobustReconstructTest, FullTripleCorruptionAttributed) {
  Rng rng(4);
  const RingTensor secret = random_ring(Shape{4}, rng);
  auto views = share_secret(secret, rng);
  // Party 1 corrupts second component only (primary/duplicate tampering
  // is caught by the copy conflict check, which invalidates the set
  // rather than attributing — test the attributable path).
  for (std::size_t i = 0; i < views[1].second.size(); ++i) {
    views[1].second[i] += (1ull << 50) + i;
  }
  ReconstructReport report;
  EXPECT_EQ(robust_reconstruct(as_optional(views), 8, &report), secret);
  EXPECT_TRUE(report.anomaly);
  EXPECT_EQ(report.suspect, 1);
}

TEST(RobustReconstructTest, CopyConflictInvalidatesSet) {
  Rng rng(5);
  const RingTensor secret = random_ring(Shape{4}, rng);
  auto views = share_secret(secret, rng);
  // Tamper the duplicate copy of set 1's share-1 (held by party 0):
  // primary copy at party 1 stays intact -> conflicting copies.
  views[0].duplicate[2] += 12345;
  ReconstructReport report;
  EXPECT_EQ(robust_reconstruct(as_optional(views), 8, &report), secret);
  EXPECT_TRUE(report.anomaly);
}

TEST(RobustReconstructTest, GarbageShapeTreatedAsAbsent) {
  Rng rng(6);
  const RingTensor secret = random_ring(Shape{4}, rng);
  auto views = share_secret(secret, rng);
  views[2].primary = RingTensor(Shape{1});   // wrong shape
  views[2].duplicate = RingTensor(Shape{1});
  views[2].second = RingTensor(Shape{1});
  EXPECT_EQ(robust_reconstruct(as_optional(views), 8), secret);
}

TEST(RobustReconstructTest, FewerThanTwoTriplesThrows) {
  Rng rng(7);
  const RingTensor secret = random_ring(Shape{4}, rng);
  auto triples = as_optional(share_secret(secret, rng));
  triples[0].reset();
  triples[1].reset();
  EXPECT_THROW(robust_reconstruct(triples, 8), ProtocolError);
}

TEST(RobustReconstructTest, SmallUlpDriftTolerated) {
  // Share-local truncation drift: sets differ by 1 ulp; within
  // tolerance this is not an anomaly.  Drift enters via the second
  // shares (the share-1 copies are identical by construction, so
  // tampering a single copy would correctly trip the conflict check).
  Rng rng(8);
  const RingTensor secret = random_ring(Shape{4}, rng);
  auto views = share_secret(secret, rng);
  views[static_cast<std::size_t>(holder_of_second(0))].second[0] += 1;
  ReconstructReport report;
  const RingTensor value = robust_reconstruct(as_optional(views), 8, &report);
  EXPECT_LE(ring_distance(value, secret), 1u);
  EXPECT_FALSE(report.anomaly);
}

}  // namespace
}  // namespace trustddl::mpc
