// Randomized property sweeps over the Byzantine-tolerant protocols:
// correctness of SecMatMul-BT for random dimensions, accumulation
// through chained operations, comparison edge cases, and robustness of
// the optimistic opening under randomized corruption patterns.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mpc/adversary.hpp"
#include "mpc/protocols_bt.hpp"
#include "numeric/fixed_point.hpp"
#include "test_util.hpp"

namespace trustddl::mpc {
namespace {

using testing::ThreePartyHarness;
using testing::random_real;

constexpr int kF = fx::kDefaultFracBits;

class MatMulDimensionSweep : public ::testing::TestWithParam<int> {};

TEST_P(MatMulDimensionSweep, RandomDimensionsMatchPlaintext) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 5);
  const std::size_t m = 1 + rng.next_below(6);
  const std::size_t k = 1 + rng.next_below(10);
  const std::size_t n = 1 + rng.next_below(6);
  const RealTensor x = random_real(Shape{m, k}, rng, 2.0);
  const RealTensor y = random_real(Shape{k, n}, rng, 2.0);
  const auto x_views = share_secret(to_ring(x, kF), rng);
  const auto y_views = share_secret(to_ring(y, kF), rng);
  auto dealer = std::make_shared<SharedDealer>(
      static_cast<std::uint64_t>(GetParam()) + 1000, kF);

  ThreePartyHarness harness;
  std::array<RealTensor, 3> results;
  harness.run([&](PartyContext& ctx) {
    LocalTripleSource source(dealer, ctx.party);
    PartyShare z = sec_matmul_bt(
        ctx, x_views[static_cast<std::size_t>(ctx.party)],
        y_views[static_cast<std::size_t>(ctx.party)],
        source.matmul_triple(m, k, n));
    z = truncate_product_local(z, kF);
    results[static_cast<std::size_t>(ctx.party)] =
        to_real(open_value(ctx, z), kF);
  });
  const RealTensor expected = matmul(x, y);
  for (const auto& result : results) {
    EXPECT_LT(max_abs_diff(result, expected),
              static_cast<double>(k) * 4e-4)
        << "dims " << m << "x" << k << "x" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulDimensionSweep,
                         ::testing::Range(0, 10));

TEST(ProtocolPropertyTest, LinearCombinationThenMultiply) {
  // (2x - 3y + c) (.) w exercises share addition, public constants,
  // scalar multiplication and SecMul in one pipeline.
  Rng rng(41);
  const Shape shape{7};
  const RealTensor x = random_real(shape, rng, 1.5);
  const RealTensor y = random_real(shape, rng, 1.5);
  const RealTensor w = random_real(shape, rng, 1.5);
  const double constant = 0.75;
  const auto x_views = share_secret(to_ring(x, kF), rng);
  const auto y_views = share_secret(to_ring(y, kF), rng);
  const auto w_views = share_secret(to_ring(w, kF), rng);
  auto dealer = std::make_shared<SharedDealer>(4242, kF);

  ThreePartyHarness harness;
  std::array<RealTensor, 3> results;
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(dealer, ctx.party);
    // u = 2x - 3y + c, all local: raw-integer scalars preserve the
    // fixed-point scale.
    PartyShare u = x_views[index].scaled(2) - y_views[index].scaled(3);
    u.add_public(
        RingTensor::full(shape, fx::encode(constant, kF)));
    PartyShare z =
        sec_mul_bt(ctx, u, w_views[index], source.mul_triple(shape));
    z = truncate_product_local(z, kF);
    results[index] = to_real(open_value(ctx, z), kF);
  });

  RealTensor expected(shape);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = (2 * x[i] - 3 * y[i] + constant) * w[i];
  }
  for (const auto& result : results) {
    EXPECT_LT(max_abs_diff(result, expected), 1e-3);
  }
}

TEST(ProtocolPropertyTest, ComparisonEdgeCases) {
  Rng rng(43);
  const RealTensor x(Shape{6}, {0.0, 1e-5, -1e-5, 1000.0, -1000.0, 0.5});
  const RealTensor y(Shape{6}, {0.0, 0.0, 0.0, 999.0, -999.0, 0.5});
  const auto x_views = share_secret(to_ring(x, kF), rng);
  const auto y_views = share_secret(to_ring(y, kF), rng);
  auto dealer = std::make_shared<SharedDealer>(77, kF);

  ThreePartyHarness harness;
  std::array<RingTensor, 3> signs;
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(dealer, ctx.party);
    signs[index] =
        sec_comp_bt(ctx, x_views[index], y_views[index],
                    source.comp_aux(Shape{6}), source.mul_triple(Shape{6}));
  });
  const std::vector<int> expected{0, 1, -1, 1, -1, 0};
  for (const auto& result : signs) {
    for (std::size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(static_cast<std::int64_t>(result[i]), expected[i])
          << "element " << i;
    }
  }
}

TEST(ProtocolPropertyTest, ReluMaskIdempotentOnGradients) {
  // relu backward mask equals forward mask: mask (.) mask == mask.
  Rng rng(47);
  const Shape shape{12};
  const RealTensor x = random_real(shape, rng, 3.0);
  const auto x_views = share_secret(to_ring(x, kF), rng);
  auto dealer = std::make_shared<SharedDealer>(99, kF);

  ThreePartyHarness harness;
  std::array<RingTensor, 3> masks;
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(dealer, ctx.party);
    const RingTensor signs =
        sec_sign_bt(ctx, x_views[index], source.comp_aux(shape),
                    source.mul_triple(shape));
    masks[index] = positive_mask(signs);
  });
  EXPECT_EQ(masks[0], masks[1]);
  EXPECT_EQ(masks[1], masks[2]);
  const RingTensor squared = hadamard(masks[0], masks[0]);
  EXPECT_EQ(squared, masks[0]);
}

class OptimisticRandomCorruption : public ::testing::TestWithParam<int> {};

TEST_P(OptimisticRandomCorruption, AlwaysDeliversCorrectValueToHonest) {
  // Randomized single-party corruption pattern per seed: behaviour,
  // Byzantine index and probability drawn from the seed.
  Rng meta(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const int byzantine = static_cast<int>(meta.next_below(3));
  const ByzantineConfig::Behavior behaviors[] = {
      ByzantineConfig::Behavior::kConsistentCorruption,
      ByzantineConfig::Behavior::kCommitmentViolationGlobal,
      ByzantineConfig::Behavior::kCommitmentViolationSingle,
      ByzantineConfig::Behavior::kCoordinatedDelta,
  };
  ByzantineConfig config;
  config.behavior = behaviors[meta.next_below(4)];
  config.target_peer = (byzantine + 1 + static_cast<int>(meta.next_below(2))) % 3;
  config.probability = 0.5 + 0.5 * meta.next_double();
  config.seed = meta.next_u64();

  ThreePartyHarness harness;
  for (auto& ctx : harness.contexts) {
    ctx.optimistic = true;
  }
  harness.make_byzantine(byzantine, config);

  Rng rng(meta.next_u64());
  const int rounds = 4;
  std::vector<RingTensor> secrets;
  std::vector<std::array<PartyShare, 3>> views;
  for (int round = 0; round < rounds; ++round) {
    secrets.push_back(testing::random_ring(Shape{5}, rng));
    views.push_back(share_secret(secrets.back(), rng));
  }
  std::array<std::vector<RingTensor>, 3> results;
  harness.run([&](PartyContext& ctx) {
    for (int round = 0; round < rounds; ++round) {
      results[static_cast<std::size_t>(ctx.party)].push_back(open_value(
          ctx, views[static_cast<std::size_t>(round)]
                    [static_cast<std::size_t>(ctx.party)]));
    }
  });
  for (int party = 0; party < 3; ++party) {
    if (party == byzantine) {
      continue;
    }
    for (int round = 0; round < rounds; ++round) {
      EXPECT_EQ(results[static_cast<std::size_t>(party)]
                       [static_cast<std::size_t>(round)],
                secrets[static_cast<std::size_t>(round)])
          << "party " << party << " round " << round << " behavior "
          << static_cast<int>(config.behavior);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimisticRandomCorruption,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace trustddl::mpc
