#include "numeric/conv.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace trustddl {
namespace {

/// Naive direct convolution used as the reference implementation.
RealTensor direct_conv(const RealTensor& image, const RealTensor& weights,
                       const ConvSpec& spec) {
  const std::size_t out_h = spec.out_height();
  const std::size_t out_w = spec.out_width();
  RealTensor out(Shape{spec.out_channels, out_h, out_w});
  for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        double acc = 0.0;
        for (std::size_t ic = 0; ic < spec.in_channels; ++ic) {
          for (std::size_t ky = 0; ky < spec.kernel_h; ++ky) {
            for (std::size_t kx = 0; kx < spec.kernel_w; ++kx) {
              const std::ptrdiff_t in_y =
                  static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                  static_cast<std::ptrdiff_t>(spec.pad);
              const std::ptrdiff_t in_x =
                  static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                  static_cast<std::ptrdiff_t>(spec.pad);
              if (in_y < 0 ||
                  in_y >= static_cast<std::ptrdiff_t>(spec.in_height) ||
                  in_x < 0 ||
                  in_x >= static_cast<std::ptrdiff_t>(spec.in_width)) {
                continue;
              }
              const double pixel =
                  image[(ic * spec.in_height +
                         static_cast<std::size_t>(in_y)) *
                            spec.in_width +
                        static_cast<std::size_t>(in_x)];
              const double weight =
                  weights[((oc * spec.in_channels + ic) * spec.kernel_h + ky) *
                              spec.kernel_w +
                          kx];
              acc += pixel * weight;
            }
          }
        }
        out[(oc * out_h + oy) * out_w + ox] = acc;
      }
    }
  }
  return out;
}

TEST(ConvTest, SpecOutputDimensions) {
  // The paper's Table I layer: 28x28, 5x5 kernel, pad 2 -> 28x28 before
  // stride; with stride 2 it becomes 14x14.
  ConvSpec spec;
  spec.in_channels = 1;
  spec.in_height = 28;
  spec.in_width = 28;
  spec.out_channels = 5;
  spec.kernel_h = 5;
  spec.kernel_w = 5;
  spec.pad = 2;
  spec.stride = 2;
  EXPECT_EQ(spec.out_height(), 14u);
  EXPECT_EQ(spec.out_width(), 14u);
  EXPECT_EQ(spec.col_rows(), 25u);
  EXPECT_EQ(spec.col_cols(), 196u);
}

TEST(ConvTest, Im2colIdentityKernel) {
  ConvSpec spec;
  spec.in_height = 3;
  spec.in_width = 3;
  spec.kernel_h = 1;
  spec.kernel_w = 1;
  RealTensor image(Shape{1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const RealTensor cols = im2col(image, spec);
  EXPECT_EQ(cols.shape(), (Shape{1, 9}));
  EXPECT_EQ(cols.values(), image.values());
}

TEST(ConvTest, Im2colMatmulMatchesDirectConvolution) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    ConvSpec spec;
    spec.in_channels = 1 + rng.next_below(3);
    spec.in_height = 4 + rng.next_below(6);
    spec.in_width = 4 + rng.next_below(6);
    spec.out_channels = 1 + rng.next_below(4);
    spec.kernel_h = 1 + rng.next_below(3);
    spec.kernel_w = 1 + rng.next_below(3);
    spec.pad = rng.next_below(2);
    spec.stride = 1 + rng.next_below(2);

    RealTensor image(Shape{spec.in_channels, spec.in_height, spec.in_width});
    for (std::size_t i = 0; i < image.size(); ++i) {
      image[i] = rng.next_double(-1, 1);
    }
    RealTensor weights(Shape{spec.out_channels,
                             spec.in_channels * spec.kernel_h * spec.kernel_w});
    for (std::size_t i = 0; i < weights.size(); ++i) {
      weights[i] = rng.next_double(-1, 1);
    }

    const RealTensor cols = im2col(image, spec);
    const RealTensor via_matmul = matmul(weights, cols);
    const RealTensor direct = direct_conv(image, weights, spec);
    EXPECT_LT(max_abs_diff(
                  via_matmul.reshape(direct.shape()), direct),
              1e-9)
        << "trial " << trial;
  }
}

TEST(ConvTest, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> characterizes the adjoint, which
  // is exactly what backprop through im2col requires.
  Rng rng(9);
  ConvSpec spec;
  spec.in_channels = 2;
  spec.in_height = 5;
  spec.in_width = 5;
  spec.kernel_h = 3;
  spec.kernel_w = 3;
  spec.pad = 1;
  spec.stride = 1;

  RealTensor x(Shape{spec.in_channels, spec.in_height, spec.in_width});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.next_double(-1, 1);
  }
  RealTensor y(Shape{spec.col_rows(), spec.col_cols()});
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = rng.next_double(-1, 1);
  }

  const RealTensor cols = im2col(x, spec);
  const RealTensor folded = col2im(y, spec);
  double lhs = 0;
  double rhs = 0;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    lhs += cols[i] * y[i];
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += x[i] * folded[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST(ConvTest, RingAndRealIm2colAgree) {
  // im2col is a data-independent local transformation: applying it to
  // fixed-point encodings must equal encoding after applying it to the
  // real image.
  Rng rng(13);
  ConvSpec spec;
  spec.in_channels = 1;
  spec.in_height = 6;
  spec.in_width = 6;
  spec.kernel_h = 3;
  spec.kernel_w = 3;
  spec.pad = 1;

  RealTensor image(Shape{1, 6, 6});
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = rng.next_double(-1, 1);
  }
  const RingTensor ring_cols = im2col(to_ring(image, 20), spec);
  const RingTensor cols_ring = to_ring(im2col(image, spec), 20);
  EXPECT_EQ(ring_cols.values(), cols_ring.values());
}

}  // namespace
}  // namespace trustddl
