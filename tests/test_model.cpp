#include "nn/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/layers.hpp"
#include "nn/model_zoo.hpp"
#include "test_util.hpp"

namespace trustddl::nn {
namespace {

using trustddl::testing::random_real;

TEST(LossTest, CrossEntropyOfPerfectPredictionIsZero) {
  const RealTensor p(Shape{2, 3}, {1, 0, 0, 0, 1, 0});
  const RealTensor y(Shape{2, 3}, {1, 0, 0, 0, 1, 0});
  EXPECT_NEAR(cross_entropy(p, y), 0.0, 1e-9);
}

TEST(LossTest, CrossEntropyKnownValue) {
  const RealTensor p(Shape{1, 2}, {0.5, 0.5});
  const RealTensor y(Shape{1, 2}, {1, 0});
  EXPECT_NEAR(cross_entropy(p, y), std::log(2.0), 1e-9);
}

TEST(LossTest, FusedGradientIsPMinusYOverBatch) {
  const RealTensor p(Shape{2, 2}, {0.8, 0.2, 0.3, 0.7});
  const RealTensor y(Shape{2, 2}, {1, 0, 0, 1});
  const RealTensor grad = cross_entropy_softmax_grad(p, y);
  EXPECT_NEAR(grad.at(0, 0), (0.8 - 1.0) / 2, 1e-9);
  EXPECT_NEAR(grad.at(1, 1), (0.7 - 1.0) / 2, 1e-9);
}

TEST(LossTest, MseAndGradient) {
  const RealTensor p(Shape{1, 2}, {1.0, 3.0});
  const RealTensor y(Shape{1, 2}, {0.0, 1.0});
  EXPECT_NEAR(mean_squared_error(p, y), (1.0 + 4.0) / 2, 1e-9);
  const RealTensor grad = mean_squared_error_grad(p, y);
  EXPECT_NEAR(grad[0], 1.0, 1e-9);
  EXPECT_NEAR(grad[1], 2.0, 1e-9);
}

TEST(LossTest, OneHotEncoding) {
  const RealTensor encoded = one_hot({2, 0}, 3);
  EXPECT_EQ(encoded.values(), (AlignedVector<double>{0, 0, 1, 1, 0, 0}));
  EXPECT_THROW(one_hot({5}, 3), InvalidArgument);
}

TEST(ModelZooTest, TableINetworkValidates) {
  const ModelSpec spec = mnist_cnn_spec();
  EXPECT_EQ(spec.input_features, 784u);
  EXPECT_EQ(spec.classes, 10u);
  EXPECT_EQ(spec.layers.size(), 6u);
  // Conv output must be the 980 units Table I reports.
  EXPECT_EQ(spec.layers[0].conv.out_channels *
                spec.layers[0].conv.out_height() *
                spec.layers[0].conv.out_width(),
            980u);
}

TEST(ModelZooTest, InvalidSpecThrows) {
  ModelSpec spec = mnist_mlp_spec();
  spec.layers[2].in = 99;  // break the 64 -> 10 dense layer
  EXPECT_THROW(validate_spec(spec), InvalidArgument);
}

TEST(ModelZooTest, MissingSoftmaxThrows) {
  ModelSpec spec = mnist_mlp_spec();
  spec.layers.pop_back();
  spec.classes = 10;
  EXPECT_THROW(validate_spec(spec), InvalidArgument);
}

TEST(SequentialTest, ForwardShapes) {
  Rng rng(10);
  Sequential model = build_model(mnist_mlp_spec(), rng);
  const RealTensor input = random_real(Shape{4, 784}, rng, 0.5);
  const RealTensor output = model.forward(input);
  EXPECT_EQ(output.shape(), (Shape{4, 10}));
}

TEST(SequentialTest, TrainStepReducesLossOnFixedBatch) {
  Rng rng(11);
  Sequential model = build_model(mnist_mlp_spec(), rng);
  const RealTensor inputs = random_real(Shape{8, 784}, rng, 0.5);
  const RealTensor targets = one_hot({0, 1, 2, 3, 4, 5, 6, 7}, 10);
  SgdOptimizer optimizer(0.5);
  const double first_loss = model.train_step(inputs, targets, optimizer);
  double last_loss = first_loss;
  for (int i = 0; i < 30; ++i) {
    last_loss = model.train_step(inputs, targets, optimizer);
  }
  EXPECT_LT(last_loss, first_loss * 0.5);
}

TEST(SequentialTest, TrainStepRequiresSoftmaxHead) {
  Rng rng(12);
  Sequential model;
  model.add(std::make_unique<DenseLayer>(4, 2, rng));
  SgdOptimizer optimizer(0.1);
  EXPECT_THROW(model.train_step(RealTensor(Shape{1, 4}),
                                RealTensor(Shape{1, 2}), optimizer),
               InvalidArgument);
}

TEST(SequentialTest, PredictReturnsArgmax) {
  Rng rng(13);
  Sequential model = build_model(mnist_mlp_spec(), rng);
  const RealTensor input = random_real(Shape{3, 784}, rng, 0.5);
  const RealTensor probabilities = model.forward(input);
  const auto predictions = model.predict(input);
  for (std::size_t row = 0; row < 3; ++row) {
    for (std::size_t col = 0; col < 10; ++col) {
      EXPECT_LE(probabilities.at(row, col),
                probabilities.at(row, predictions[row]) + 1e-12);
    }
  }
}

TEST(SequentialTest, GradientCheckThroughWholeCnn) {
  // End-to-end gradient check of the tiny CNN via cross-entropy.
  Rng rng(14);
  Sequential model = build_model(tiny_cnn_spec(), rng);
  const RealTensor inputs = random_real(Shape{2, 144}, rng, 0.5);
  const RealTensor targets = one_hot({1, 3}, 4);

  auto loss_fn = [&] {
    return cross_entropy(model.forward(inputs), targets);
  };

  // Analytical gradients via the fused path.
  model.zero_grads();
  const RealTensor probabilities = model.forward(inputs);
  RealTensor grad = cross_entropy_softmax_grad(probabilities, targets);
  for (std::size_t i = model.layer_count() - 1; i-- > 0;) {
    grad = model.layer(i).backward(grad);
  }

  for (Parameter* parameter : model.parameters()) {
    for (std::size_t i = 0; i < parameter->value.size();
         i += std::max<std::size_t>(1, parameter->value.size() / 13)) {
      const double original = parameter->value[i];
      const double epsilon = 1e-5;
      parameter->value[i] = original + epsilon;
      const double plus = loss_fn();
      parameter->value[i] = original - epsilon;
      const double minus = loss_fn();
      parameter->value[i] = original;
      const double numerical = (plus - minus) / (2 * epsilon);
      EXPECT_NEAR(parameter->grad[i], numerical, 1e-4)
          << parameter->name << "[" << i << "]";
    }
  }
}

}  // namespace
}  // namespace trustddl::nn
