// MNIST idx reader (data/mnist_idx.hpp): big-endian header parsing,
// magic/shape validation, normalization, and the synthetic fallback.
#include "data/mnist_idx.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace trustddl::data {
namespace {

void append_u32_be(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 24));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Write a tiny but well-formed idx pair: `count` images of
/// height x width whose pixel (i, p) is (i * 7 + p) % 256, labels
/// i % 10.
void write_idx_pair(const std::string& images_path,
                    const std::string& labels_path, std::uint32_t count,
                    std::uint32_t height, std::uint32_t width) {
  std::vector<std::uint8_t> images;
  append_u32_be(images, kIdxImagesMagic);
  append_u32_be(images, count);
  append_u32_be(images, height);
  append_u32_be(images, width);
  for (std::uint32_t i = 0; i < count; ++i) {
    for (std::uint32_t p = 0; p < height * width; ++p) {
      images.push_back(static_cast<std::uint8_t>((i * 7 + p) % 256));
    }
  }
  write_file(images_path, images);

  std::vector<std::uint8_t> labels;
  append_u32_be(labels, kIdxLabelsMagic);
  append_u32_be(labels, count);
  for (std::uint32_t i = 0; i < count; ++i) {
    labels.push_back(static_cast<std::uint8_t>(i % 10));
  }
  write_file(labels_path, labels);
}

class MnistIdxTest : public ::testing::Test {
 protected:
  std::string path(const char* name) const {
    return ::testing::TempDir() + name;
  }
};

TEST_F(MnistIdxTest, ParsesImagesAndLabels) {
  const std::string images = path("ok-images");
  const std::string labels = path("ok-labels");
  write_idx_pair(images, labels, 5, 4, 3);

  const Dataset dataset = load_idx_pair(images, labels);
  ASSERT_EQ(dataset.size(), 5u);
  EXPECT_EQ(dataset.images.shape(), (Shape{5, 12}));
  // Pixels normalized to [0, 1] with the exact /255 encoding.
  EXPECT_DOUBLE_EQ(dataset.images.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(dataset.images.at(1, 2), 9.0 / 255.0);
  EXPECT_EQ(dataset.labels[0], 0u);
  EXPECT_EQ(dataset.labels[4], 4u);
}

TEST_F(MnistIdxTest, RejectsBadMagic) {
  const std::string images = path("badmagic-images");
  const std::string labels = path("badmagic-labels");
  write_idx_pair(images, labels, 2, 2, 2);
  // Swap the files: the label magic appears where an image magic is
  // required.
  EXPECT_THROW(load_idx_pair(labels, images), SerializationError);
}

TEST_F(MnistIdxTest, RejectsTruncatedPayload) {
  const std::string images = path("trunc-images");
  const std::string labels = path("trunc-labels");
  write_idx_pair(images, labels, 2, 2, 2);
  std::vector<std::uint8_t> short_images;
  append_u32_be(short_images, kIdxImagesMagic);
  append_u32_be(short_images, 2);
  append_u32_be(short_images, 2);
  append_u32_be(short_images, 2);
  short_images.push_back(1);  // 1 of 8 payload bytes
  write_file(images, short_images);
  EXPECT_THROW(load_idx_pair(images, labels), SerializationError);
}

TEST_F(MnistIdxTest, RejectsCountMismatch) {
  const std::string images = path("mismatch-images");
  const std::string labels = path("mismatch-labels");
  const std::string labels3 = path("mismatch-labels3");
  write_idx_pair(images, labels, 2, 2, 2);
  write_idx_pair(path("mismatch-unused"), labels3, 3, 2, 2);
  EXPECT_THROW(load_idx_pair(images, labels3), SerializationError);
}

TEST_F(MnistIdxTest, RejectsTrailingBytes) {
  const std::string images = path("trailing-images");
  const std::string labels = path("trailing-labels");
  write_idx_pair(images, labels, 2, 2, 2);
  std::ifstream in(images, std::ios::binary);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  bytes.push_back(0);
  write_file(images, bytes);
  EXPECT_THROW(load_idx_pair(images, labels), SerializationError);
}

TEST_F(MnistIdxTest, MissingFilesAreReportedAbsent) {
  EXPECT_FALSE(mnist_files_present(""));
  EXPECT_FALSE(mnist_files_present(path("no-such-dir")));
  EXPECT_THROW(load_idx_pair(path("nope-images"), path("nope-labels")),
               SerializationError);
}

TEST_F(MnistIdxTest, FallsBackToSyntheticWhenDirIncomplete) {
  SyntheticMnistConfig config;
  config.train_count = 12;
  config.test_count = 6;
  config.seed = 9;
  const TrainTestSplit split =
      load_mnist_or_synthetic(path("incomplete-dir"), config);
  EXPECT_EQ(split.train.size(), 12u);
  EXPECT_EQ(split.test.size(), 6u);
  EXPECT_EQ(split.train.images.cols(), config.height * config.width);
}

TEST_F(MnistIdxTest, LoadsRealDirectoryAndTruncatesToRequestedCounts) {
  // A complete canonical directory: the loader must prefer it over the
  // synthetic generator and respect the requested row counts.
  const std::string dir = ::testing::TempDir() + "mnist-dir";
  std::remove(dir.c_str());
#ifdef _WIN32
  GTEST_SKIP();
#endif
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  write_idx_pair(dir + "/" + kMnistTrainImages,
                 dir + "/" + kMnistTrainLabels, 10, 28, 28);
  write_idx_pair(dir + "/" + kMnistTestImages, dir + "/" + kMnistTestLabels,
                 4, 28, 28);
  ASSERT_TRUE(mnist_files_present(dir));

  SyntheticMnistConfig config;
  config.train_count = 6;  // fewer than on disk: truncate
  config.test_count = 0;   // 0: keep everything
  const TrainTestSplit split = load_mnist_or_synthetic(dir, config);
  EXPECT_EQ(split.train.size(), 6u);
  EXPECT_EQ(split.test.size(), 4u);
  EXPECT_EQ(split.train.images.shape(), (Shape{6, 784}));
  EXPECT_EQ(split.test.labels[3], 3u);
}

}  // namespace
}  // namespace trustddl::data
