// Differential and determinism tests for the parallel compute-kernel
// subsystem (numeric/kernels.hpp):
//
//  * blocked matmul vs the naive oracle over ring-wraparound inputs,
//    non-square and degenerate shapes — bit-exact in Z_{2^64};
//  * thread-count sweeps (1, 2, 8) asserting bit-identical outputs for
//    ring AND double kernels (doubles may differ from naive by
//    reassociation, but never across thread counts);
//  * parallel_for / parallel_chunks coverage, partition determinism
//    and exception propagation;
//  * the conv/tensor fast paths (im2col, transpose, sum_rows,
//    sum_cols) against straightforward reference loops.
#include "numeric/kernels.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "numeric/conv.hpp"
#include "numeric/tensor.hpp"

namespace trustddl {
namespace {

kernels::KernelConfig config_with_threads(int threads) {
  kernels::KernelConfig config;
  config.threads = threads;
  return config;
}

/// Ring tensor whose entries exercise the full 64-bit range, so every
/// product and sum wraps around.
RingTensor random_ring(const Shape& shape, Rng& rng) {
  RingTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_u64();
  }
  return out;
}

RealTensor random_real(const Shape& shape, Rng& rng) {
  RealTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_double(-3.0, 3.0);
  }
  return out;
}

/// Straightforward reference im2col (the seed's element-at-a-time
/// formulation) used as the differential oracle.
template <typename T>
Tensor<T> im2col_reference(const Tensor<T>& image, const ConvSpec& spec) {
  const std::size_t out_h = spec.out_height();
  const std::size_t out_w = spec.out_width();
  Tensor<T> columns(Shape{spec.col_rows(), spec.col_cols()});
  for (std::size_t channel = 0; channel < spec.in_channels; ++channel) {
    for (std::size_t ky = 0; ky < spec.kernel_h; ++ky) {
      for (std::size_t kx = 0; kx < spec.kernel_w; ++kx) {
        const std::size_t row =
            (channel * spec.kernel_h + ky) * spec.kernel_w + kx;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t in_y =
                static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                static_cast<std::ptrdiff_t>(spec.pad);
            const std::ptrdiff_t in_x =
                static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                static_cast<std::ptrdiff_t>(spec.pad);
            T value = T{};
            if (in_y >= 0 &&
                in_y < static_cast<std::ptrdiff_t>(spec.in_height) &&
                in_x >= 0 &&
                in_x < static_cast<std::ptrdiff_t>(spec.in_width)) {
              value = image[(channel * spec.in_height +
                             static_cast<std::size_t>(in_y)) *
                                spec.in_width +
                            static_cast<std::size_t>(in_x)];
            }
            columns.at(row, oy * out_w + ox) = value;
          }
        }
      }
    }
  }
  return columns;
}

// --- parallel_for infrastructure -----------------------------------

TEST(KernelParallelForTest, CoversEveryIndexExactlyOnce) {
  const kernels::KernelConfig config = config_with_threads(8);
  for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{100}, std::size_t{100000}}) {
    std::vector<std::atomic<int>> hits(count);
    kernels::parallel_for(config, count, 1,
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i) {
                              hits[i].fetch_add(1);
                            }
                          });
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " of " << count;
    }
  }
}

TEST(KernelParallelForTest, ChunkPlanIsDeterministicAndOrdered) {
  const kernels::KernelConfig config = config_with_threads(4);
  const std::size_t count = 1000;
  const std::size_t chunks = kernels::plan_chunk_count(config, count, 10);
  EXPECT_EQ(chunks, 4u);
  // parallel_chunks must hand out exactly `chunks` disjoint, ordered,
  // covering ranges, with chunk indices below the plan.
  std::vector<std::pair<std::size_t, std::size_t>> ranges(chunks, {0, 0});
  kernels::parallel_chunks(config, count, 10,
                           [&](std::size_t chunk, std::size_t lo,
                               std::size_t hi) {
                             ASSERT_LT(chunk, chunks);
                             ranges[chunk] = {lo, hi};
                           });
  std::size_t expected_lo = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(ranges[c].first, expected_lo);
    EXPECT_GT(ranges[c].second, ranges[c].first);
    expected_lo = ranges[c].second;
  }
  EXPECT_EQ(expected_lo, count);
}

TEST(KernelParallelForTest, GrainKeepsSmallWorkInline) {
  const kernels::KernelConfig config = config_with_threads(8);
  // 100 items at grain 4096 -> one chunk.
  EXPECT_EQ(kernels::plan_chunk_count(config, 100, 4096), 1u);
  // grain 1 caps at the thread count.
  EXPECT_EQ(kernels::plan_chunk_count(config, 100, 1), 8u);
  // chunk count never exceeds what the grain supports.
  EXPECT_EQ(kernels::plan_chunk_count(config, 10, 5), 2u);
}

TEST(KernelParallelForTest, PropagatesBodyException) {
  const kernels::KernelConfig config = config_with_threads(4);
  EXPECT_THROW(
      kernels::parallel_for(config, 1000, 1,
                            [](std::size_t lo, std::size_t) {
                              if (lo == 0) {
                                throw std::runtime_error("boom");
                              }
                            }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<std::size_t> total{0};
  kernels::parallel_for(config, 100, 1,
                        [&](std::size_t lo, std::size_t hi) {
                          total.fetch_add(hi - lo);
                        });
  EXPECT_EQ(total.load(), 100u);
}

TEST(KernelParallelForTest, NestedCallsRunInline) {
  const kernels::KernelConfig config = config_with_threads(4);
  std::vector<std::atomic<int>> hits(64 * 64);
  kernels::parallel_for(config, 64, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      kernels::parallel_for(config, 64, 1,
                            [&](std::size_t jlo, std::size_t jhi) {
                              for (std::size_t j = jlo; j < jhi; ++j) {
                                hits[i * 64 + j].fetch_add(1);
                              }
                            });
    }
  });
  for (auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
}

TEST(KernelParallelInvokeTest, RunsEveryTask) {
  const kernels::KernelConfig config = config_with_threads(3);
  std::array<std::atomic<int>, 3> ran{};
  kernels::parallel_invoke(config, {[&] { ran[0] = 1; },
                                    [&] { ran[1] = 1; },
                                    [&] { ran[2] = 1; }});
  EXPECT_EQ(ran[0], 1);
  EXPECT_EQ(ran[1], 1);
  EXPECT_EQ(ran[2], 1);
}

// --- blocked matmul: differential vs naive --------------------------

TEST(KernelMatmulTest, RingBlockedMatchesNaiveOnWraparoundInputs) {
  Rng rng(7);
  const kernels::KernelConfig config = config_with_threads(4);
  // Non-square shapes around/below/above the block sizes, plus the
  // degenerate single-row/column cases.
  const std::vector<std::array<std::size_t, 3>> shapes = {
      {1, 1, 1},    {1, 64, 1},    {64, 1, 64},   {5, 25, 196},
      {3, 130, 7},  {65, 129, 131}, {128, 128, 128}, {2, 300, 2},
      {200, 3, 177}};
  for (const auto& [m, k, n] : shapes) {
    const RingTensor a = random_ring(Shape{m, k}, rng);
    const RingTensor b = random_ring(Shape{k, n}, rng);
    const RingTensor naive = kernels::matmul_naive(a, b);
    const RingTensor blocked = kernels::matmul_blocked(config, a, b);
    ASSERT_EQ(naive, blocked) << m << "x" << k << "x" << n;
    // The dispatcher must agree with both.
    ASSERT_EQ(kernels::matmul(config, a, b), naive);
  }
}

TEST(KernelMatmulTest, RingBitIdenticalAcrossThreadCounts) {
  Rng rng(11);
  const RingTensor a = random_ring(Shape{70, 140}, rng);
  const RingTensor b = random_ring(Shape{140, 90}, rng);
  const RingTensor reference =
      kernels::matmul_blocked(config_with_threads(1), a, b);
  EXPECT_EQ(reference, kernels::matmul_naive(a, b));
  for (int threads : {2, 8}) {
    const RingTensor result =
        kernels::matmul_blocked(config_with_threads(threads), a, b);
    ASSERT_EQ(result, reference) << "threads=" << threads;
  }
}

TEST(KernelMatmulTest, DoubleBitIdenticalAcrossThreadCounts) {
  Rng rng(13);
  const RealTensor a = random_real(Shape{70, 140}, rng);
  const RealTensor b = random_real(Shape{140, 90}, rng);
  const RealTensor reference =
      kernels::matmul_blocked(config_with_threads(1), a, b);
  for (int threads : {2, 8}) {
    const RealTensor result =
        kernels::matmul_blocked(config_with_threads(threads), a, b);
    ASSERT_EQ(result, reference) << "threads=" << threads;
  }
  // Against naive only up to reassociation error.
  const RealTensor naive = kernels::matmul_naive(a, b);
  EXPECT_LT(max_abs_diff(reference, naive), 1e-9);
}

TEST(KernelMatmulTest, DegenerateShapes) {
  const kernels::KernelConfig config = config_with_threads(4);
  // Zero-sized inner/outer dimensions must yield all-zero outputs of
  // the right shape rather than crashing.
  RingTensor a(Shape{0, 5});
  RingTensor b(Shape{5, 3});
  const RingTensor empty_rows = kernels::matmul_blocked(config, a, b);
  EXPECT_EQ(empty_rows.rows(), 0u);
  EXPECT_EQ(empty_rows.cols(), 3u);
  RingTensor c(Shape{4, 0});
  RingTensor d(Shape{0, 6});
  const RingTensor zero_inner = kernels::matmul_blocked(config, c, d);
  EXPECT_EQ(zero_inner.rows(), 4u);
  EXPECT_EQ(zero_inner.cols(), 6u);
  for (std::size_t i = 0; i < zero_inner.size(); ++i) {
    EXPECT_EQ(zero_inner[i], 0u);
  }
}

TEST(KernelMatmulTest, RespectsTinyBlockSizes) {
  // Pathological block configuration (all 1s) still produces exact
  // results — the blocking only re-tiles the iteration space.
  Rng rng(17);
  kernels::KernelConfig config = config_with_threads(3);
  config.block_m = 1;
  config.block_k = 1;
  config.block_n = 1;
  const RingTensor a = random_ring(Shape{9, 31}, rng);
  const RingTensor b = random_ring(Shape{31, 13}, rng);
  EXPECT_EQ(kernels::matmul_blocked(config, a, b),
            kernels::matmul_naive(a, b));
}

TEST(KernelHadamardTest, MatchesSerialAtAnyThreadCount) {
  Rng rng(19);
  const RingTensor a = random_ring(Shape{513}, rng);
  const RingTensor b = random_ring(Shape{513}, rng);
  const RingTensor expected = hadamard(a, b);
  for (int threads : {1, 2, 8}) {
    kernels::KernelConfig config = config_with_threads(threads);
    config.grain = 16;  // force real chunking
    ASSERT_EQ(kernels::hadamard_parallel(config, a, b), expected);
  }
}

// --- tensor/conv fast paths vs references ---------------------------

TEST(KernelFastPathTest, TransposeMatchesReference) {
  Rng rng(23);
  for (const auto& [rows, cols] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {1, 17}, {33, 1}, {40, 64}, {129, 65}}) {
    const RingTensor input = random_ring(Shape{rows, cols}, rng);
    const RingTensor output = transpose(input);
    ASSERT_EQ(output.rows(), cols);
    ASSERT_EQ(output.cols(), rows);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        ASSERT_EQ(output.at(j, i), input.at(i, j));
      }
    }
  }
}

TEST(KernelFastPathTest, SumRowsAndColsMatchReference) {
  Rng rng(29);
  const RingTensor input = random_ring(Shape{37, 211}, rng);
  const RingTensor rows = sum_rows(input);
  const RingTensor cols = sum_cols(input);
  for (std::size_t j = 0; j < input.cols(); ++j) {
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < input.rows(); ++i) {
      expected += input.at(i, j);
    }
    ASSERT_EQ(rows.at(0, j), expected);
  }
  for (std::size_t i = 0; i < input.rows(); ++i) {
    std::uint64_t expected = 0;
    for (std::size_t j = 0; j < input.cols(); ++j) {
      expected += input.at(i, j);
    }
    ASSERT_EQ(cols[i], expected);
  }
}

TEST(KernelFastPathTest, Im2colMatchesReferenceOnRingInputs) {
  Rng rng(31);
  ConvSpec spec;
  spec.in_channels = 3;
  spec.in_height = 11;
  spec.in_width = 9;
  spec.kernel_h = 3;
  spec.kernel_w = 5;
  spec.stride = 2;
  spec.pad = 2;
  const RingTensor image(
      Shape{spec.in_channels * spec.in_height * spec.in_width},
      [&] {
        std::vector<std::uint64_t> values(spec.in_channels * spec.in_height *
                                          spec.in_width);
        for (auto& value : values) {
          value = rng.next_u64();
        }
        return values;
      }());
  EXPECT_EQ(im2col(image, spec), im2col_reference(image, spec));
  // Round trip through col2im against the reference columns too.
  const RingTensor columns = im2col(image, spec);
  const RingTensor back = col2im(columns, spec);
  const RingTensor reference_back = col2im(im2col_reference(image, spec), spec);
  EXPECT_EQ(back, reference_back);
}

TEST(KernelFastPathTest, BatchIm2colMatchesPerSample) {
  Rng rng(37);
  ConvSpec spec;
  spec.in_channels = 1;
  spec.in_height = 28;
  spec.in_width = 28;
  spec.kernel_h = 5;
  spec.kernel_w = 5;
  spec.stride = 2;
  spec.pad = 2;
  const std::size_t batch = 4;
  const std::size_t in_size =
      spec.in_channels * spec.in_height * spec.in_width;
  const RingTensor input = random_ring(Shape{batch, in_size}, rng);
  const RingTensor batched = batch_im2col(input, spec);
  const std::size_t pixels = spec.col_cols();
  for (std::size_t sample = 0; sample < batch; ++sample) {
    RingTensor image(Shape{in_size});
    for (std::size_t i = 0; i < in_size; ++i) {
      image[i] = input.at(sample, i);
    }
    const RingTensor expected = im2col_reference(image, spec);
    for (std::size_t row = 0; row < spec.col_rows(); ++row) {
      for (std::size_t pixel = 0; pixel < pixels; ++pixel) {
        ASSERT_EQ(batched.at(row, sample * pixels + pixel),
                  expected.at(row, pixel));
      }
    }
  }
}

// --- configuration ---------------------------------------------------

TEST(KernelConfigTest, ResolvedThreadsIsPositive) {
  kernels::KernelConfig config;
  config.threads = 0;
  EXPECT_GE(config.resolved_threads(), 1);
  config.threads = 5;
  EXPECT_EQ(config.resolved_threads(), 5);
}

TEST(KernelConfigTest, GlobalConfigRoundTrips) {
  const kernels::KernelConfig saved = kernels::global_config();
  kernels::KernelConfig modified = saved;
  modified.threads = 3;
  modified.block_n = 77;
  kernels::set_global_config(modified);
  EXPECT_EQ(kernels::global_config().threads, 3);
  EXPECT_EQ(kernels::global_config().block_n, 77u);
  kernels::set_global_config(saved);
}

}  // namespace
}  // namespace trustddl
