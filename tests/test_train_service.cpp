// Multi-owner robust training service tests: wire round-trips, full
// in-process sessions (three party servers + sequencer/owner service +
// K owner clients over one in-memory network), the poisoning
// degradations the trimmed-mean window must absorb, quorum operation
// after an owner crash, checkpoint suspend/resume, and the metrics
// ledgers.
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "data/synthetic_mnist.hpp"
#include "mpc/robust_aggregate.hpp"
#include "nn/model_zoo.hpp"
#include "obs/metrics.hpp"
#include "train/harness.hpp"
#include "train/owner_client.hpp"
#include "train/wire.hpp"

namespace trustddl::train {
namespace {

/// Small dense net over an 8x8 4-class task: big enough to exercise
/// every layer kind the backward pass touches, small enough that a
/// full multi-owner session is test-priced.
nn::ModelSpec tiny_train_spec() {
  nn::ModelSpec spec;
  spec.name = "tiny_train";
  spec.input_features = 8 * 8;
  spec.classes = 4;
  spec.layers = {
      nn::LayerSpec::make_dense(64, 16),
      nn::LayerSpec::make_relu(),
      nn::LayerSpec::make_dense(16, 4),
      nn::LayerSpec::make_softmax(),
  };
  nn::validate_spec(spec);
  return spec;
}

data::Dataset tiny_dataset(std::size_t rows, std::uint64_t seed) {
  data::SyntheticMnistConfig config;
  config.train_count = rows;
  config.test_count = 1;
  config.height = 8;
  config.width = 8;
  config.classes = 4;
  config.seed = seed;
  return data::generate_synthetic_mnist(config).train;
}

TrainSessionConfig base_session(int num_owners) {
  TrainSessionConfig session;
  session.spec = tiny_train_spec();
  session.engine.seed = 11;
  // Value-exact truncation: aggregates (and therefore checkpoints) are
  // pure functions of the submitted values, the anchor of every
  // determinism assertion below.
  session.engine.trunc_mode = mpc::TruncationMode::kMaskedOpen;
  session.engine.collect_timeout = std::chrono::milliseconds(2000);
  session.num_owners = num_owners;
  session.submissions_per_owner = 2;
  session.owner_batch_rows = 4;
  session.train.rule = mpc::AggregationRule::kTrimmedMean;
  session.train.trim = 1;
  session.train.quorum = static_cast<std::size_t>(num_owners);
  session.train.round_window = std::chrono::milliseconds(20);
  session.train.rounds_per_epoch = 2;
  session.train.epochs = 1;
  session.train.learning_rate = 0.1;
  session.dataset = tiny_dataset(24, 5);
  return session;
}

double weight_distance(const std::map<std::string, RingTensor>& a,
                       const std::map<std::string, RingTensor>& b,
                       std::size_t epoch, std::size_t param_count,
                       int frac_bits) {
  double sum = 0.0;
  for (std::size_t p = 0; p < param_count; ++p) {
    const auto key = core::reveal_key(epoch, p);
    const auto it_a = a.find(key);
    const auto it_b = b.find(key);
    EXPECT_NE(it_a, a.end()) << key;
    EXPECT_NE(it_b, b.end()) << key;
    if (it_a == a.end() || it_b == b.end()) {
      continue;
    }
    const RealTensor ra = to_real(it_a->second, frac_bits);
    const RealTensor rb = to_real(it_b->second, frac_bits);
    EXPECT_EQ(ra.shape(), rb.shape()) << key;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      const double d = ra[i] - rb[i];
      sum += d * d;
    }
  }
  return sum;
}

std::string fresh_dir(const std::string& stem) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (stem + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::uint64_t counter_value(const obs::MetricsSnapshot& snapshot,
                            const std::string& name) {
  for (const auto& [counter, value] : snapshot.counters) {
    if (counter == name) {
      return value;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Wire format

TEST(TrainWireTest, ManifestRoundTrips) {
  RoundManifest manifest;
  manifest.round = 7;
  manifest.epoch = 1;
  manifest.epoch_end = true;
  manifest.entries = {{kFirstOwnerId, 3, 8}, {kFirstOwnerId + 2, 5, 4}};
  const RoundManifest decoded =
      decode_round_manifest(encode_round_manifest(manifest));
  EXPECT_EQ(decoded.round, 7u);
  EXPECT_EQ(decoded.epoch, 1u);
  EXPECT_TRUE(decoded.epoch_end);
  EXPECT_FALSE(decoded.shutdown);
  EXPECT_FALSE(decoded.suspend);
  ASSERT_EQ(decoded.entries.size(), 2u);
  EXPECT_EQ(decoded.entries[0].owner, kFirstOwnerId);
  EXPECT_EQ(decoded.entries[0].seq, 3u);
  EXPECT_EQ(decoded.entries[1].rows, 4u);
  EXPECT_EQ(decoded.total_rows(), 12u);
}

TEST(TrainWireTest, NoticeAndHelloRoundTrip) {
  SubmitNotice notice;
  notice.kind = SubmitKind::kStop;
  notice.seq = 9;
  const SubmitNotice n = decode_submit_notice(encode_submit_notice(notice));
  EXPECT_EQ(n.kind, SubmitKind::kStop);
  EXPECT_EQ(n.seq, 9u);

  HelloAck ack;
  ack.next_seq = 4;
  EXPECT_EQ(decode_hello_ack(encode_hello_ack(ack)).next_seq, 4u);
  EXPECT_EQ(decode_hello(encode_hello()), 1u);
}

TEST(TrainWireTest, SubmissionSeedsAreStableAndDistinct) {
  const std::uint64_t o0 = owner_base_seed(11, 0);
  const std::uint64_t o1 = owner_base_seed(11, 1);
  EXPECT_NE(o0, o1);
  EXPECT_EQ(submission_seed(o0, 3), submission_seed(o0, 3));
  EXPECT_NE(submission_seed(o0, 3), submission_seed(o0, 4));
  EXPECT_NE(submission_seed(o0, 3), submission_seed(o1, 3));
}

TEST(PoisonSpecTest, ParsesAllModes) {
  EXPECT_EQ(parse_poison_spec("none").mode, PoisonMode::kNone);
  EXPECT_EQ(parse_poison_spec("sign-flip").mode, PoisonMode::kSignFlip);
  EXPECT_EQ(parse_poison_spec("label-flip").mode, PoisonMode::kLabelFlip);
  const PoisonSpec scaled = parse_poison_spec("scale=25");
  EXPECT_EQ(scaled.mode, PoisonMode::kScale);
  EXPECT_DOUBLE_EQ(scaled.factor, 25.0);
  EXPECT_TRUE(scaled.active());
  EXPECT_FALSE(parse_poison_spec("none").active());
}

TEST(PoisonSpecTest, LabelFlipRotatesLabels) {
  data::Dataset batch;
  batch.images = RealTensor(Shape{2, 4}, std::vector<double>(8, 0.5));
  batch.labels = {1, 3};
  PoisonSpec poison;
  poison.mode = PoisonMode::kLabelFlip;
  const data::Dataset poisoned = apply_poison(batch, poison, 4);
  EXPECT_EQ(poisoned.labels, (std::vector<std::size_t>{2, 0}));
  EXPECT_EQ(poisoned.images, batch.images);
}

// ---------------------------------------------------------------------------
// Full sessions

TEST(TrainServiceTest, HonestSessionIsDeterministicAndBalanced) {
  const TrainSessionConfig session = base_session(3);
  const TrainSessionResult first = run_training_session(session);
  const TrainSessionResult second = run_training_session(session);

  EXPECT_TRUE(first.clean);
  for (const auto rounds : first.party_rounds) {
    EXPECT_EQ(rounds, session.train.total_rounds());
  }
  EXPECT_EQ(first.sequencer.rounds, session.train.total_rounds());
  EXPECT_EQ(first.sequencer.epochs_completed, 1u);
  EXPECT_FALSE(first.sequencer.suspended);
  // Submission ledger: everything admitted is either consumed by a
  // round or discarded at shutdown.
  EXPECT_EQ(first.sequencer.admitted,
            first.sequencer.consumed + first.sequencer.discarded);
  EXPECT_EQ(first.sequencer.consumed,
            session.train.total_rounds() *
                static_cast<std::uint64_t>(session.num_owners));

  // Bit-identical weights across runs: the whole SPMD pipeline —
  // sharing, comparisons, masked rescales, aggregation — is a pure
  // function of the seeds.
  ASSERT_FALSE(first.revealed.empty());
  EXPECT_EQ(first.revealed, second.revealed);

  // And the revealed weights actually load.
  Rng rng(1);
  nn::Sequential model = nn::build_model(session.spec, rng);
  EXPECT_TRUE(apply_revealed_weights(first.revealed, 0,
                                     model.parameters().size(),
                                     session.engine.frac_bits, model));
  EXPECT_FALSE(apply_revealed_weights(first.revealed, 7,
                                      model.parameters().size(),
                                      session.engine.frac_bits, model));
}

TEST(TrainServiceTest, TrimmedMeanAbsorbsPoisonedOwner) {
  TrainSessionConfig honest = base_session(5);
  honest.dataset = tiny_dataset(40, 5);

  TrainSessionConfig poisoned_trimmed = honest;
  poisoned_trimmed.owners.resize(5);
  poisoned_trimmed.owners[4].poison = parse_poison_spec("scale=25");

  TrainSessionConfig poisoned_mean = poisoned_trimmed;
  poisoned_mean.train.rule = mpc::AggregationRule::kMean;

  const auto honest_result = run_training_session(honest);
  const auto trimmed_result = run_training_session(poisoned_trimmed);
  const auto mean_result = run_training_session(poisoned_mean);

  Rng rng(1);
  const std::size_t param_count =
      nn::build_model(honest.spec, rng).parameters().size();
  const double trimmed_dist =
      weight_distance(trimmed_result.revealed, honest_result.revealed, 0,
                      param_count, honest.engine.frac_bits);
  const double mean_dist =
      weight_distance(mean_result.revealed, honest_result.revealed, 0,
                      param_count, honest.engine.frac_bits);
  // The scaled gradient is coordinate-wise extreme, so the trim window
  // removes it: trimmed training stays near the honest trajectory
  // while the undefended mean is dragged away.
  EXPECT_LT(trimmed_dist, mean_dist);
  EXPECT_LT(trimmed_dist, 0.25 * mean_dist);
}

TEST(TrainServiceTest, MedianSessionCompletes) {
  TrainSessionConfig session = base_session(3);
  session.train.rule = mpc::AggregationRule::kMedian;
  const TrainSessionResult result = run_training_session(session);
  EXPECT_TRUE(result.clean);
  EXPECT_FALSE(result.revealed.empty());
}

TEST(TrainServiceTest, QuorumContinuesAfterOwnerCrash) {
  TrainSessionConfig session = base_session(3);
  session.submissions_per_owner = 4;
  session.train.rounds_per_epoch = 4;
  session.train.quorum = 2;
  session.train.round_window = std::chrono::milliseconds(10);
  session.train.dormant_after_misses = 1;
  session.owners.resize(3);
  session.owners[2].crash_after_submissions = 1;

  const TrainSessionResult result = run_training_session(session);
  EXPECT_TRUE(result.clean);
  EXPECT_EQ(result.sequencer.rounds, session.train.total_rounds());
  for (const auto rounds : result.party_rounds) {
    EXPECT_EQ(rounds, session.train.total_rounds());
  }
  // The crashed owner missed at least one round slot.
  EXPECT_GE(result.sequencer.dropped_owner_slots, 1u);
  EXPECT_EQ(result.sequencer.admitted,
            result.sequencer.consumed + result.sequencer.discarded);
  // Epoch weights still reveal — the service degraded, not died.
  Rng rng(1);
  nn::Sequential model = nn::build_model(session.spec, rng);
  EXPECT_TRUE(apply_revealed_weights(result.revealed, 0,
                                     model.parameters().size(),
                                     session.engine.frac_bits, model));
}

TEST(TrainServiceTest, SuspendResumeIsBitIdentical) {
  const std::string checkpoint_dir = fresh_dir("trustddl_train_ckpt_");
  const std::string store_dir = fresh_dir("trustddl_train_tdst_");

  TrainSessionConfig session = base_session(3);
  session.submissions_per_owner = 4;
  session.train.rounds_per_epoch = 4;
  session.train.momentum = 0.5;  // exercise velocity checkpointing
  // Masked-open truncation results depend on the dealt masks, and the
  // derived-seed dealer addresses its streams by cursor — so a resumed
  // session is bit-identical only when the parties' stream cursors
  // persist too (TDST store files), not just the parameter shares.
  session.engine.triple_prefetch = true;

  // Reference: the same session uninterrupted (fresh cursors from 0).
  const TrainSessionResult reference = run_training_session(session);
  ASSERT_TRUE(reference.clean);

  // Interrupted: suspend after 2 of 4 rounds, then resume.
  TrainSessionConfig interrupted = session;
  interrupted.engine.triple_store_dir = store_dir;
  interrupted.train.checkpoint_dir = checkpoint_dir;
  interrupted.train.max_rounds = 2;
  const TrainSessionResult suspended = run_training_session(interrupted);
  EXPECT_FALSE(suspended.clean);
  EXPECT_TRUE(suspended.sequencer.suspended);
  EXPECT_TRUE(suspended.revealed.empty());  // epoch end never reached

  TrainSessionConfig resumed = interrupted;
  resumed.train.max_rounds = 0;
  const TrainSessionResult final_session = run_training_session(resumed);
  EXPECT_TRUE(final_session.clean);

  // Masked-open truncation makes every opened value a pure function of
  // the submitted values, so the resumed trajectory replays the
  // uninterrupted one bit for bit.
  ASSERT_FALSE(final_session.revealed.empty());
  EXPECT_EQ(final_session.revealed, reference.revealed);

  std::filesystem::remove_all(checkpoint_dir);
  std::filesystem::remove_all(store_dir);
}

TEST(TrainServiceTest, MetricsLedgersBalance) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::global().reset();

  TrainSessionConfig session = base_session(3);
  session.owners.resize(3);
  session.owners[2].poison = parse_poison_spec("sign-flip");
  const TrainSessionResult result = run_training_session(session);
  EXPECT_TRUE(result.clean);

  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::global().snapshot();
  obs::set_metrics_enabled(false);

  // Aggregation ledger (summed across the three parties).
  const auto submitted =
      counter_value(snapshot, "train.agg.values.submitted");
  EXPECT_GT(submitted, 0u);
  EXPECT_EQ(submitted,
            counter_value(snapshot, "train.agg.values.aggregated") +
                counter_value(snapshot, "train.agg.values.trimmed"));
  EXPECT_GT(counter_value(snapshot, "train.agg.values.trimmed"), 0u);

  // Sequencer submission ledger.
  const auto admitted =
      counter_value(snapshot, "train.owner.submissions.admitted");
  EXPECT_GT(admitted, 0u);
  EXPECT_EQ(admitted,
            counter_value(snapshot, "train.owner.submissions.consumed") +
                counter_value(snapshot, "train.owner.submissions.discarded"));

  // Round slot ledger.
  const auto expected_slots =
      counter_value(snapshot, "train.owner.slots.expected");
  EXPECT_GT(expected_slots, 0u);
  EXPECT_EQ(expected_slots,
            counter_value(snapshot, "train.owner.slots.included") +
                counter_value(snapshot, "train.owner.slots.dropped"));
}

}  // namespace
}  // namespace trustddl::train
