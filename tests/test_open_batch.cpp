// Deferred-opening round scheduler (mpc::OpenBatch): batched openings
// must reconstruct exactly what sequential openings do, in fewer
// rounds, without weakening any of the Byzantine detection machinery —
// and the engine-level toggle must save the promised round trips on
// the paper's Table I network with bit-identical trained weights.
#include "mpc/open.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "mpc/adversary.hpp"
#include "mpc/protocols_bt.hpp"
#include "numeric/fixed_point.hpp"
#include "test_util.hpp"

namespace trustddl::mpc {
namespace {

using testing::ThreePartyHarness;
using testing::random_real;
using testing::random_ring;

constexpr int kF = fx::kDefaultFracBits;

std::vector<RingTensor> make_secrets(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<RingTensor> secrets;
  secrets.push_back(random_ring(Shape{4, 3}, rng));
  secrets.push_back(random_ring(Shape{7}, rng));
  secrets.push_back(random_ring(Shape{2, 2}, rng));
  return secrets;
}

std::vector<std::array<PartyShare, 3>> share_all(
    const std::vector<RingTensor>& secrets, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::array<PartyShare, 3>> views;
  views.reserve(secrets.size());
  for (const auto& secret : secrets) {
    views.push_back(share_secret(secret, rng));
  }
  return views;
}

class OpenBatchAllModes : public ::testing::TestWithParam<SecurityMode> {};

TEST_P(OpenBatchAllModes, BatchedMatchesSequentialBitIdentically) {
  const SecurityMode mode = GetParam();
  const auto secrets = make_secrets(51);
  const auto views = share_all(secrets, 52);

  // Sequential: one robust opening round per value.
  ThreePartyHarness sequential(mode);
  std::array<std::vector<RingTensor>, 3> seq_results;
  sequential.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    for (const auto& view : views) {
      seq_results[index].push_back(open_value(ctx, view[index]));
    }
  });

  // Batched: all values in ONE round.
  ThreePartyHarness batched(mode);
  std::array<std::vector<RingTensor>, 3> batch_results;
  batched.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    OpenBatch batch(ctx);
    std::vector<DeferredTensor> handles;
    for (const auto& view : views) {
      handles.push_back(batch.enqueue_value(view[index]));
    }
    EXPECT_EQ(batch.pending(), secrets.size());
    batch.flush();
    EXPECT_EQ(batch.pending(), 0u);
    EXPECT_EQ(batch.flushes(), 1u);
    for (auto& handle : handles) {
      batch_results[index].push_back(handle.take());
    }
  });

  for (std::size_t party = 0; party < 3; ++party) {
    ASSERT_EQ(seq_results[party].size(), secrets.size());
    ASSERT_EQ(batch_results[party].size(), secrets.size());
    for (std::size_t i = 0; i < secrets.size(); ++i) {
      EXPECT_EQ(seq_results[party][i], secrets[i]);
      EXPECT_EQ(batch_results[party][i], seq_results[party][i]);
    }
  }
  for (const auto& ctx : sequential.contexts) {
    EXPECT_EQ(ctx.detections.opens, secrets.size());
    EXPECT_EQ(ctx.detections.values_opened, secrets.size());
  }
  for (const auto& ctx : batched.contexts) {
    EXPECT_EQ(ctx.detections.opens, 1u);
    EXPECT_EQ(ctx.detections.values_opened, secrets.size());
  }
}

TEST_P(OpenBatchAllModes, BatchingStrictlyReducesMessageCount) {
  const SecurityMode mode = GetParam();
  const auto secrets = make_secrets(53);
  const auto views = share_all(secrets, 54);

  ThreePartyHarness sequential(mode);
  sequential.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    for (const auto& view : views) {
      open_value(ctx, view[index]);
    }
  });

  ThreePartyHarness batched(mode);
  batched.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    OpenBatch batch(ctx);
    for (const auto& view : views) {
      batch.enqueue_value(view[index]);
    }
    batch.flush();
  });

  const auto seq_traffic = sequential.network.traffic();
  const auto batch_traffic = batched.network.traffic();
  EXPECT_LT(batch_traffic.total_messages, seq_traffic.total_messages);
  // Per-round messages are mode-dependent but value-count independent,
  // so N values batch into exactly the traffic of ONE opening.
  EXPECT_EQ(batch_traffic.total_messages * secrets.size(),
            seq_traffic.total_messages);
}

INSTANTIATE_TEST_SUITE_P(AllSecurityModes, OpenBatchAllModes,
                         ::testing::Values(SecurityMode::kMalicious,
                                           SecurityMode::kHonestButCurious,
                                           SecurityMode::kCrashFault));

TEST(OpenBatchTest, FlushOnEmptyBatchIsFree) {
  ThreePartyHarness harness(SecurityMode::kMalicious);
  harness.run([&](PartyContext& ctx) {
    OpenBatch batch(ctx);
    batch.flush();
    batch.flush_all();
    EXPECT_EQ(batch.flushes(), 0u);
    EXPECT_EQ(ctx.detections.opens, 0u);
  });
  EXPECT_EQ(harness.network.traffic().total_messages, 0u);
}

TEST(OpenBatchTest, DeferredGuardsAgainstUseBeforeFlush) {
  DeferredTensor handle;
  EXPECT_FALSE(handle.ready());
  EXPECT_THROW(handle.get(), Error);
  handle.set(RingTensor(Shape{1}));
  EXPECT_TRUE(handle.ready());
}

// --- Detection semantics inside a batch ---------------------------------

TEST(OpenBatchDetectionTest, CommitmentViolationAttributedToBatchStep) {
  ThreePartyHarness harness(SecurityMode::kMalicious);
  ByzantineConfig config;
  config.behavior = ByzantineConfig::Behavior::kCommitmentViolationGlobal;
  harness.make_byzantine(1, config);

  Rng rng(55);
  const RingTensor eager_secret = random_ring(Shape{3}, rng);
  const auto eager_views = share_secret(eager_secret, rng);
  const auto secrets = make_secrets(56);
  const auto views = share_all(secrets, 57);

  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    // Step 0: an eager opening.  Step 1: one batched round.
    const RingTensor eager = open_value(ctx, eager_views[index]);
    OpenBatch batch(ctx);
    std::vector<DeferredTensor> handles;
    for (const auto& view : views) {
      handles.push_back(batch.enqueue_value(view[index]));
    }
    batch.flush();
    if (ctx.party != 1) {
      EXPECT_EQ(eager, eager_secret);
      for (std::size_t i = 0; i < secrets.size(); ++i) {
        EXPECT_EQ(handles[i].take(), secrets[i]);
      }
    }
  });

  for (int party : {0, 2}) {
    const auto& log =
        harness.contexts[static_cast<std::size_t>(party)].detections;
    // One violation per opening ROUND — batching does not multiply or
    // swallow them — each attributed to the round's own step.
    EXPECT_EQ(log.count(DetectionEvent::Kind::kCommitmentViolation), 2u)
        << "party " << party;
    std::size_t step0 = 0;
    std::size_t step1 = 0;
    for (const auto& event : log.events) {
      if (event.kind != DetectionEvent::Kind::kCommitmentViolation) {
        continue;
      }
      EXPECT_EQ(event.suspect, 1);
      step0 += event.step == 0 ? 1 : 0;
      step1 += event.step == 1 ? 1 : 0;
    }
    EXPECT_EQ(step0, 1u);
    EXPECT_EQ(step1, 1u);
  }
}

TEST(OpenBatchDetectionTest, DistanceAnomalyStillFiresInsideBatch) {
  // Bare decision rule (share authentication off), consistently
  // corrupting adversary: the distance rule must flag the batched
  // round and attribute the suspect exactly as it does eagerly.
  ThreePartyHarness harness(SecurityMode::kMalicious);
  for (auto& ctx : harness.contexts) {
    ctx.share_authentication = false;
  }
  ByzantineConfig config;
  config.behavior = ByzantineConfig::Behavior::kConsistentCorruption;
  harness.make_byzantine(2, config);

  const auto secrets = make_secrets(58);
  const auto views = share_all(secrets, 59);
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    OpenBatch batch(ctx);
    std::vector<DeferredTensor> handles;
    for (const auto& view : views) {
      handles.push_back(batch.enqueue_value(view[index]));
    }
    batch.flush();
    if (ctx.party != 2) {
      for (std::size_t i = 0; i < secrets.size(); ++i) {
        EXPECT_EQ(handles[i].take(), secrets[i]);
      }
    }
  });

  for (int party : {0, 1}) {
    const auto& log =
        harness.contexts[static_cast<std::size_t>(party)].detections;
    EXPECT_GE(log.count(DetectionEvent::Kind::kDistanceAnomaly), 1u)
        << "party " << party;
    EXPECT_GE(log.count(DetectionEvent::Kind::kByzantineSuspected), 1u);
    for (const auto& event : log.events) {
      EXPECT_EQ(event.step, 0u);  // the single batched round
      if (event.kind == DetectionEvent::Kind::kByzantineSuspected) {
        EXPECT_EQ(event.suspect, 2);
      }
    }
  }
}

TEST(OpenBatchDetectionTest, ShareAuthFailureStillFiresInsideBatch) {
  ThreePartyHarness harness(SecurityMode::kMalicious);
  ByzantineConfig config;
  config.behavior = ByzantineConfig::Behavior::kCoordinatedDelta;
  harness.make_byzantine(1, config);

  const auto secrets = make_secrets(60);
  const auto views = share_all(secrets, 61);
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    OpenBatch batch(ctx);
    std::vector<DeferredTensor> handles;
    for (const auto& view : views) {
      handles.push_back(batch.enqueue_value(view[index]));
    }
    batch.flush();
    if (ctx.party != 1) {
      for (std::size_t i = 0; i < secrets.size(); ++i) {
        EXPECT_EQ(handles[i].take(), secrets[i]);
      }
    }
  });

  for (int party : {0, 2}) {
    const auto& log =
        harness.contexts[static_cast<std::size_t>(party)].detections;
    EXPECT_GE(log.count(DetectionEvent::Kind::kShareAuthFailure), 1u)
        << "party " << party;
    for (const auto& event : log.events) {
      EXPECT_EQ(event.step, 0u);
      if (event.kind == DetectionEvent::Kind::kShareAuthFailure) {
        EXPECT_EQ(event.suspect, 1);
      }
    }
  }
}

// --- Prepare variants vs eager protocols --------------------------------

TEST(OpenBatchProtocolTest, PreparedCallsMatchEagerBitIdentically) {
  // Two independent matmuls (with masked-open rescale) and a
  // comparison, all against one batch: two flushes total, identical
  // outputs to the eager calls on identical dealer material.
  Rng rng(62);
  const RealTensor x = random_real(Shape{3, 4}, rng, 2.0);
  const RealTensor y = random_real(Shape{4, 2}, rng, 2.0);
  const RealTensor u = random_real(Shape{6}, rng);
  const RealTensor v = random_real(Shape{6}, rng);
  const auto x_views = share_secret(to_ring(x, kF), rng);
  const auto y_views = share_secret(to_ring(y, kF), rng);
  const auto u_views = share_secret(to_ring(u, kF), rng);
  const auto v_views = share_secret(to_ring(v, kF), rng);

  std::array<RingTensor, 3> eager_products;
  std::array<RingTensor, 3> eager_signs;
  ThreePartyHarness eager(SecurityMode::kMalicious);
  auto eager_dealer = std::make_shared<SharedDealer>(4242, kF);
  eager.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(eager_dealer, ctx.party);
    const auto triple = source.matmul_triple(3, 4, 2);
    const auto pair = source.trunc_pair(Shape{3, 2});
    PartyShare z = sec_matmul_bt(ctx, x_views[index], y_views[index], triple);
    z = truncate_product_masked(ctx, z, pair);
    const auto comp_triple = source.mul_triple(Shape{6});
    const auto t_aux = source.comp_aux(Shape{6});
    eager_signs[index] = sec_comp_bt(ctx, u_views[index], v_views[index],
                                     t_aux, comp_triple);
    eager_products[index] = open_value(ctx, z);
  });

  std::array<RingTensor, 3> batch_products;
  std::array<RingTensor, 3> batch_signs;
  ThreePartyHarness batched(SecurityMode::kMalicious);
  auto batched_dealer = std::make_shared<SharedDealer>(4242, kF);
  batched.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(batched_dealer, ctx.party);
    OpenBatch batch(ctx);
    const auto triple = source.matmul_triple(3, 4, 2);
    const auto pair = source.trunc_pair(Shape{3, 2});
    DeferredShare z = sec_matmul_bt_rescaled_prepare(
        batch, x_views[index], y_views[index], triple,
        TruncationMode::kMaskedOpen, &pair);
    const auto comp_triple = source.mul_triple(Shape{6});
    const auto t_aux = source.comp_aux(Shape{6});
    DeferredTensor signs = sec_comp_bt_prepare(
        batch, u_views[index], v_views[index], t_aux, comp_triple);
    EXPECT_FALSE(z.ready());
    batch.flush_all();
    // Flush 1: Beaver masks of matmul + comparison.  Flush 2: the
    // chained truncation and β openings.
    EXPECT_EQ(batch.flushes(), 2u);
    batch_signs[index] = signs.take();
    batch_products[index] = open_value(ctx, z.take());
  });

  for (std::size_t party = 0; party < 3; ++party) {
    EXPECT_EQ(batch_products[party], eager_products[party]);
    EXPECT_EQ(batch_signs[party], eager_signs[party]);
  }
  // Eager: 4 opening rounds before the final reveal (matmul masks,
  // truncation, comparison masks, β); batched: 2.
  EXPECT_LT(batched.network.traffic().total_messages,
            eager.network.traffic().total_messages);
}

}  // namespace
}  // namespace trustddl::mpc

namespace trustddl::core {
namespace {

TEST(EngineConfigTest, DefaultToleranceMatchesPartyContextDefault) {
  // One documented project-wide default: a hand-rolled PartyContext
  // must judge reconstructions exactly like an engine-built one.
  EXPECT_EQ(EngineConfig{}.dist_tolerance, mpc::PartyContext{}.dist_tolerance);
}

TEST(EngineConfigTest, MakePartyContextPropagatesEveryKnob) {
  net::NetworkConfig net_config;
  net::Network network(net_config);

  EngineConfig config;
  config.mode = mpc::SecurityMode::kHonestButCurious;
  config.frac_bits = 12;
  config.dist_tolerance = 5;
  config.share_authentication = false;
  config.optimistic_open = true;
  config.byzantine_party = 1;
  mpc::StandardAdversary adversary(config.byzantine);

  for (int party = 0; party < 3; ++party) {
    const mpc::PartyContext ctx =
        make_party_context(config, party, network.endpoint(party), &adversary);
    EXPECT_EQ(ctx.party, party);
    EXPECT_EQ(ctx.mode, config.mode);
    EXPECT_EQ(ctx.frac_bits, config.frac_bits);
    EXPECT_EQ(ctx.dist_tolerance, config.dist_tolerance);
    EXPECT_EQ(ctx.share_authentication, config.share_authentication);
    EXPECT_EQ(ctx.optimistic, config.optimistic_open);
    // The adversary lands only on the configured Byzantine party.
    EXPECT_EQ(ctx.adversary, party == 1 ? &adversary : nullptr);
  }
}

TEST(EngineConfigTest, ExecContextCarriesBatchingToggle) {
  net::NetworkConfig net_config;
  net::Network network(net_config);
  EngineConfig config;
  config.trunc_mode = TruncationMode::kMaskedOpen;
  config.batch_openings = false;
  mpc::PartyContext pctx = make_party_context(config, 0, network.endpoint(0));
  OwnerLink link(network.endpoint(0), 0, std::chrono::seconds(1));
  const SecureExecContext sctx = make_exec_context(config, pctx, link);
  EXPECT_EQ(sctx.mpc, &pctx);
  EXPECT_EQ(sctx.trunc_mode, TruncationMode::kMaskedOpen);
  EXPECT_FALSE(sctx.batch_openings);
}

TEST(EngineBatchingTest, TableOneCnnStepSavesQuarterOfMessagesBitIdentically) {
  // The acceptance measurement of the deferred-opening scheduler: one
  // training step of the paper's Table I CNN, malicious mode with
  // masked-open truncation, must cost >= 25% fewer messages with round
  // scheduling on — and train to bit-identical weights, since batching
  // only merges rounds and never changes reconstructed values.
  data::SyntheticMnistConfig data_config;
  data_config.train_count = 2;
  data_config.test_count = 4;
  data_config.seed = 42;
  const auto split = data::generate_synthetic_mnist(data_config);

  const auto run = [&](bool batch_openings) {
    EngineConfig config;
    config.mode = mpc::SecurityMode::kMalicious;
    config.trunc_mode = TruncationMode::kMaskedOpen;
    config.batch_openings = batch_openings;
    config.emulate_latency = true;
    config.link_latency = std::chrono::microseconds(1);
    config.collect_timeout = std::chrono::milliseconds(300);
    TrustDdlEngine engine(nn::mnist_cnn_spec(), config);
    TrainOptions options;
    options.epochs = 1;
    options.batch_size = split.train.size();  // exactly one SGD step
    options.learning_rate = 0.2;
    const TrainResult result = engine.train(split.train, split.test, options);
    std::vector<RealTensor> weights;
    for (const auto* parameter : engine.reference_model().parameters()) {
      weights.push_back(parameter->value);
    }
    return std::make_pair(result, weights);
  };

  const auto [unbatched, unbatched_weights] = run(false);
  const auto [batched, batched_weights] = run(true);

  EXPECT_EQ(unbatched.cost.commitment_violations, 0u);
  EXPECT_EQ(batched.cost.commitment_violations, 0u);
  EXPECT_LE(batched.cost.total_messages,
            unbatched.cost.total_messages * 3 / 4)
      << "batched " << batched.cost.total_messages << " vs unbatched "
      << unbatched.cost.total_messages;

  ASSERT_EQ(batched_weights.size(), unbatched_weights.size());
  for (std::size_t p = 0; p < batched_weights.size(); ++p) {
    ASSERT_EQ(batched_weights[p].size(), unbatched_weights[p].size());
    for (std::size_t i = 0; i < batched_weights[p].size(); ++i) {
      ASSERT_EQ(batched_weights[p][i], unbatched_weights[p][i])
          << "parameter " << p << " element " << i;
    }
  }
}

TEST(EngineBatchingTest, ByzantineTrainingStillRecoversWithBatching) {
  // The injected-fault scenario of EngineTest, with batching explicitly
  // on: detection and recovery must survive round scheduling.
  data::SyntheticMnistConfig data_config;
  data_config.train_count = 96;
  data_config.test_count = 40;
  data_config.seed = 42;
  const auto split = data::generate_synthetic_mnist(data_config);

  EngineConfig config;
  config.trunc_mode = TruncationMode::kMaskedOpen;
  config.batch_openings = true;
  config.collect_timeout = std::chrono::milliseconds(300);
  config.byzantine_party = 2;
  config.byzantine.behavior =
      mpc::ByzantineConfig::Behavior::kConsistentCorruption;
  config.byzantine.probability = 0.05;
  TrustDdlEngine engine(nn::mnist_mlp_spec(), config);
  const double initial_accuracy = engine.reference_model().accuracy(
      split.test.images, split.test.labels);

  TrainOptions options;
  options.epochs = 1;
  options.batch_size = 12;
  options.learning_rate = 0.3;
  const TrainResult result = engine.train(split.train, split.test, options);

  ASSERT_EQ(result.epoch_test_accuracy.size(), 1u);
  EXPECT_GT(result.epoch_test_accuracy[0], initial_accuracy + 0.2);
  EXPECT_GT(result.cost.share_auth_failures, 0u);
}

}  // namespace
}  // namespace trustddl::core
