#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "test_util.hpp"

namespace trustddl::nn {
namespace {

using trustddl::testing::random_real;

/// Numerical gradient of a scalar function of one parameter tensor.
template <typename LossFn>
RealTensor numerical_gradient(RealTensor& variable, const LossFn& loss,
                              double epsilon = 1e-5) {
  RealTensor grad(variable.shape());
  for (std::size_t i = 0; i < variable.size(); ++i) {
    const double original = variable[i];
    variable[i] = original + epsilon;
    const double plus = loss();
    variable[i] = original - epsilon;
    const double minus = loss();
    variable[i] = original;
    grad[i] = (plus - minus) / (2 * epsilon);
  }
  return grad;
}

/// Sum of elementwise products (used to build scalar losses).
double dot_all(const RealTensor& a, const RealTensor& b) {
  double total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += a[i] * b[i];
  }
  return total;
}

TEST(DenseLayerTest, ForwardMatchesManualComputation) {
  Rng rng(1);
  DenseLayer layer(3, 2, rng);
  layer.weights().value = RealTensor(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  layer.bias().value = RealTensor(Shape{1, 2}, {0.5, -0.5});
  const RealTensor input(Shape{1, 3}, {1, 1, 1});
  const RealTensor output = layer.forward(input);
  EXPECT_NEAR(output.at(0, 0), 1 + 3 + 5 + 0.5, 1e-9);
  EXPECT_NEAR(output.at(0, 1), 2 + 4 + 6 - 0.5, 1e-9);
}

TEST(DenseLayerTest, InitializationVarianceMatchesPaper) {
  // Paper §IV-A: dense weights ~ N(0, 1/n), n = input neurons.
  Rng rng(2);
  DenseLayer layer(400, 100, rng);
  double sum = 0;
  double sum_sq = 0;
  const auto& weights = layer.weights().value;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    sum += weights[i];
    sum_sq += weights[i] * weights[i];
  }
  const double n = static_cast<double>(weights.size());
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.002);
  EXPECT_NEAR(variance, 1.0 / 400.0, 0.0005);
}

TEST(DenseLayerTest, GradientsMatchNumericalDifferentiation) {
  Rng rng(3);
  DenseLayer layer(4, 3, rng);
  const RealTensor input = random_real(Shape{2, 4}, rng, 1.0);
  const RealTensor upstream = random_real(Shape{2, 3}, rng, 1.0);

  const auto loss = [&] { return dot_all(layer.forward(input), upstream); };
  const RealTensor expected_w_grad =
      numerical_gradient(layer.weights().value, loss);
  const RealTensor expected_b_grad =
      numerical_gradient(layer.bias().value, loss);

  layer.weights().zero_grad();
  layer.bias().zero_grad();
  layer.forward(input);
  const RealTensor grad_input = layer.backward(upstream);

  EXPECT_LT(max_abs_diff(layer.weights().grad, expected_w_grad), 1e-6);
  EXPECT_LT(max_abs_diff(layer.bias().grad, expected_b_grad), 1e-6);

  // Input gradient via numerical differentiation too.
  RealTensor input_copy = input;
  const auto input_loss = [&] {
    return dot_all(layer.forward(input_copy), upstream);
  };
  const RealTensor expected_input_grad =
      numerical_gradient(input_copy, input_loss);
  EXPECT_LT(max_abs_diff(grad_input, expected_input_grad), 1e-6);
}

TEST(ConvLayerTest, OutputShapeMatchesTableI) {
  Rng rng(4);
  ConvSpec spec;
  spec.in_channels = 1;
  spec.in_height = 28;
  spec.in_width = 28;
  spec.out_channels = 5;
  spec.kernel_h = 5;
  spec.kernel_w = 5;
  spec.pad = 2;
  spec.stride = 2;
  ConvLayer layer(spec, rng);
  const RealTensor input = random_real(Shape{2, 784}, rng, 1.0);
  const RealTensor output = layer.forward(input);
  EXPECT_EQ(output.shape(), (Shape{2, 980}));
}

TEST(ConvLayerTest, InitializationVarianceMatchesPaper) {
  // Paper §IV-A: conv weights ~ N(0, 1/(k1*k2)).
  Rng rng(5);
  ConvSpec spec;
  spec.in_channels = 4;
  spec.in_height = 8;
  spec.in_width = 8;
  spec.out_channels = 32;
  spec.kernel_h = 5;
  spec.kernel_w = 5;
  ConvLayer layer(spec, rng);
  const auto& weights = layer.weights().value;
  double sum_sq = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    sum_sq += weights[i] * weights[i];
  }
  EXPECT_NEAR(sum_sq / static_cast<double>(weights.size()), 1.0 / 25.0,
              0.004);
}

TEST(ConvLayerTest, GradientsMatchNumericalDifferentiation) {
  Rng rng(6);
  ConvSpec spec;
  spec.in_channels = 2;
  spec.in_height = 5;
  spec.in_width = 5;
  spec.out_channels = 3;
  spec.kernel_h = 3;
  spec.kernel_w = 3;
  spec.pad = 1;
  spec.stride = 2;
  ConvLayer layer(spec, rng);
  const std::size_t in_size = 2 * 5 * 5;
  const std::size_t out_size = 3 * spec.out_height() * spec.out_width();
  const RealTensor input = random_real(Shape{2, in_size}, rng, 1.0);
  const RealTensor upstream =
      random_real(Shape{2, out_size}, rng, 1.0);

  const auto loss = [&] { return dot_all(layer.forward(input), upstream); };
  const RealTensor expected_w_grad =
      numerical_gradient(layer.weights().value, loss);
  const RealTensor expected_b_grad =
      numerical_gradient(layer.bias().value, loss);

  layer.weights().zero_grad();
  layer.bias().zero_grad();
  layer.forward(input);
  const RealTensor grad_input = layer.backward(upstream);

  EXPECT_LT(max_abs_diff(layer.weights().grad, expected_w_grad), 1e-5);
  EXPECT_LT(max_abs_diff(layer.bias().grad, expected_b_grad), 1e-5);

  RealTensor input_copy = input;
  const auto input_loss = [&] {
    return dot_all(layer.forward(input_copy), upstream);
  };
  EXPECT_LT(max_abs_diff(grad_input, numerical_gradient(input_copy,
                                                        input_loss)),
            1e-5);
}

TEST(ReluLayerTest, ForwardAndBackward) {
  ReluLayer layer;
  const RealTensor input(Shape{1, 4}, {-1.0, 0.0, 2.0, -0.5});
  const RealTensor output = layer.forward(input);
  EXPECT_EQ(output.values(), (AlignedVector<double>{0, 0, 2, 0}));
  const RealTensor upstream(Shape{1, 4}, {1, 1, 1, 1});
  EXPECT_EQ(layer.backward(upstream).values(),
            (AlignedVector<double>{0, 0, 1, 0}));
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(7);
  const RealTensor logits = random_real(Shape{3, 10}, rng, 5.0);
  const RealTensor probabilities = softmax_rows(logits);
  for (std::size_t row = 0; row < 3; ++row) {
    double total = 0;
    for (std::size_t col = 0; col < 10; ++col) {
      const double p = probabilities.at(row, col);
      EXPECT_GT(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits) {
  const RealTensor logits(Shape{1, 3}, {1000.0, 1001.0, 999.0});
  const RealTensor probabilities = softmax_rows(logits);
  EXPECT_NEAR(probabilities.at(0, 0) + probabilities.at(0, 1) +
                  probabilities.at(0, 2),
              1.0, 1e-9);
  EXPECT_GT(probabilities.at(0, 1), probabilities.at(0, 0));
}

TEST(SoftmaxTest, BackwardMatchesNumericalJacobian) {
  Rng rng(8);
  RealTensor logits = random_real(Shape{2, 5}, rng, 2.0);
  const RealTensor upstream = random_real(Shape{2, 5}, rng, 1.0);
  SoftmaxLayer layer;

  const auto loss = [&] { return dot_all(softmax_rows(logits), upstream); };
  const RealTensor expected = numerical_gradient(logits, loss);

  layer.forward(logits);
  const RealTensor got = layer.backward(upstream);
  EXPECT_LT(max_abs_diff(got, expected), 1e-6);
}

}  // namespace
}  // namespace trustddl::nn
