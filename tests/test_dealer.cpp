// Dealer-side preprocessing material (mpc/beaver.hpp): triple algebra,
// auxiliary values, truncation pairs, and the SharedDealer's
// cross-party consistency under concurrent access.
#include "mpc/beaver.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/rng.hpp"
#include "mpc/open.hpp"
#include "mpc/protocols_bt.hpp"
#include "numeric/fixed_point.hpp"
#include "test_util.hpp"

namespace trustddl::mpc {
namespace {

constexpr int kF = fx::kDefaultFracBits;

RingTensor reconstruct_member(
    const std::array<BeaverTripleShare, 3>& triples,
    PartyShare BeaverTripleShare::*member) {
  std::array<PartyShare, 3> views = {triples[0].*member, triples[1].*member,
                                     triples[2].*member};
  return reconstruct(views);
}

TEST(DealerTest, MulTripleSatisfiesBeaverRelation) {
  Rng rng(1);
  const auto triples = deal_mul_triple(Shape{4, 3}, rng);
  const RingTensor a = reconstruct_member(triples, &BeaverTripleShare::a);
  const RingTensor b = reconstruct_member(triples, &BeaverTripleShare::b);
  const RingTensor c = reconstruct_member(triples, &BeaverTripleShare::c);
  EXPECT_EQ(hadamard(a, b), c);
}

TEST(DealerTest, MatMulTripleSatisfiesBeaverRelation) {
  Rng rng(2);
  const auto triples = deal_matmul_triple(3, 5, 2, rng);
  const RingTensor a = reconstruct_member(triples, &BeaverTripleShare::a);
  const RingTensor b = reconstruct_member(triples, &BeaverTripleShare::b);
  const RingTensor c = reconstruct_member(triples, &BeaverTripleShare::c);
  EXPECT_EQ(a.shape(), (Shape{3, 5}));
  EXPECT_EQ(b.shape(), (Shape{5, 2}));
  EXPECT_EQ(matmul(a, b), c);
}

TEST(DealerTest, PositiveAuxIsPositive) {
  Rng rng(3);
  const auto views = deal_positive_aux(Shape{64}, kF, rng);
  std::array<PartyShare, 3> shares = {views[0], views[1], views[2]};
  const RealTensor t = to_real(reconstruct(shares), kF);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GT(t[i], 0.0);
    EXPECT_LT(t[i], 2.0 + 1e-6);
  }
}

TEST(DealerTest, TruncPairRelation) {
  Rng rng(4);
  const auto pairs = deal_trunc_pair(Shape{32}, kF, rng);
  std::array<PartyShare, 3> r_views = {pairs[0].r, pairs[1].r, pairs[2].r};
  std::array<PartyShare, 3> s_views = {pairs[0].r_shifted,
                                       pairs[1].r_shifted,
                                       pairs[2].r_shifted};
  const RingTensor r = reconstruct(r_views);
  const RingTensor r_shifted = reconstruct(s_views);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_LT(r[i], 1ull << 62) << "mask must be bounded";
    EXPECT_EQ(r_shifted[i], r[i] >> kF);
  }
}

TEST(DealerTest, SharedDealerServesConsistentViews) {
  auto dealer = std::make_shared<SharedDealer>(99, kF);
  std::array<BeaverTripleShare, 3> triples;
  std::array<TruncPairShare, 3> pairs;
  std::vector<std::thread> threads;
  for (int party = 0; party < 3; ++party) {
    threads.emplace_back([&, party] {
      LocalTripleSource source(dealer, party);
      triples[static_cast<std::size_t>(party)] =
          source.matmul_triple(2, 4, 3);
      pairs[static_cast<std::size_t>(party)] = source.trunc_pair(Shape{5});
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const RingTensor a = reconstruct_member(triples, &BeaverTripleShare::a);
  const RingTensor b = reconstruct_member(triples, &BeaverTripleShare::b);
  const RingTensor c = reconstruct_member(triples, &BeaverTripleShare::c);
  EXPECT_EQ(matmul(a, b), c);

  std::array<PartyShare, 3> r_views = {pairs[0].r, pairs[1].r, pairs[2].r};
  std::array<PartyShare, 3> s_views = {pairs[0].r_shifted,
                                       pairs[1].r_shifted,
                                       pairs[2].r_shifted};
  const RingTensor r = reconstruct(r_views);
  EXPECT_EQ(reconstruct(s_views)[0], r[0] >> kF);
}

TEST(DealerTest, SequentialRequestsYieldIndependentTriples) {
  auto dealer = std::make_shared<SharedDealer>(5, kF);
  LocalTripleSource p0(dealer, 0);
  LocalTripleSource p1(dealer, 1);
  LocalTripleSource p2(dealer, 2);
  const auto first = p0.mul_triple(Shape{4});
  (void)p1.mul_triple(Shape{4});
  (void)p2.mul_triple(Shape{4});
  const auto second_p0 = p0.mul_triple(Shape{4});
  EXPECT_NE(first.a.primary, second_p0.a.primary);
}

TEST(DealerTest, CacheStaysBoundedWhenOnePartyRunsAhead) {
  // Regression: the cache used to grow without bound when a party
  // crashed or fell silent — every entry waited forever for the
  // missing party's fetch.  With derived-seed dealing eviction is
  // safe (a straggler's entry is regenerated on demand), so the cache
  // is FIFO-bounded at kMaxCacheEntries.
  auto dealer = std::make_shared<SharedDealer>(11, kF);
  LocalTripleSource p0(dealer, 0);
  constexpr std::size_t kAhead = 600;
  std::vector<BeaverTripleShare> p0_triples;
  p0_triples.reserve(kAhead);
  for (std::size_t i = 0; i < kAhead; ++i) {
    p0_triples.push_back(p0.mul_triple(Shape{3}));
  }
  EXPECT_LE(dealer->cache_entries(), SharedDealer::kMaxCacheEntries);

  // The lagging parties catch up after eviction; regenerated entries
  // must still combine with party 0's long-gone views into valid
  // Beaver triples.
  LocalTripleSource p1(dealer, 1);
  LocalTripleSource p2(dealer, 2);
  for (std::size_t i = 0; i < kAhead; ++i) {
    const std::array<BeaverTripleShare, 3> triples = {
        p0_triples[i], p1.mul_triple(Shape{3}), p2.mul_triple(Shape{3})};
    const RingTensor a = reconstruct_member(triples, &BeaverTripleShare::a);
    const RingTensor b = reconstruct_member(triples, &BeaverTripleShare::b);
    const RingTensor c = reconstruct_member(triples, &BeaverTripleShare::c);
    ASSERT_EQ(hadamard(a, b), c) << "entry " << i;
  }
  EXPECT_LE(dealer->cache_entries(), SharedDealer::kMaxCacheEntries);
}

TEST(DealerTest, MaskedTruncationUsesPairExactly) {
  // End-to-end check of the pair relation through the masked opening:
  // documented error bound is <= 2 ulp (one masking carry + one
  // dealer-pair carry).
  Rng rng(6);
  testing::ThreePartyHarness harness;
  const RealTensor x = testing::random_real(Shape{16}, rng, 3.0);
  const RealTensor y = testing::random_real(Shape{16}, rng, 3.0);
  const auto x_views = share_secret(to_ring(x, kF), rng);
  const auto y_views = share_secret(to_ring(y, kF), rng);
  auto dealer = std::make_shared<SharedDealer>(7, kF);

  std::array<RealTensor, 3> results;
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(dealer, ctx.party);
    PartyShare z = sec_mul_bt(ctx, x_views[index], y_views[index],
                              source.mul_triple(Shape{16}));
    z = truncate_product_masked(ctx, z, source.trunc_pair(Shape{16}));
    results[index] = to_real(open_value(ctx, z), kF);
  });
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(results[0][i], x[i] * y[i], 3.0 * fx::epsilon(kF) * 2);
  }
}

}  // namespace
}  // namespace trustddl::mpc
