// Serving-layer tests: BatchQueue policy, wire framing, and full
// in-process serving sessions (three party servers + owner scheduler +
// clients over one in-memory network), including the Byzantine and
// crash degradations at the serving edge.
#include <atomic>
#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "data/synthetic_mnist.hpp"
#include "obs/metrics.hpp"
#include "serve/batch_queue.hpp"
#include "serve/harness.hpp"
#include "serve/wire.hpp"

namespace trustddl::serve {
namespace {

using Clock = BatchQueue::Clock;
using std::chrono::milliseconds;

BatchQueue::Entry entry(net::PartyId client, std::uint64_t seq,
                        std::size_t rows, Clock::time_point admitted,
                        milliseconds deadline = milliseconds(60000)) {
  BatchQueue::Entry e;
  e.client = client;
  e.seq = seq;
  e.rows = rows;
  e.admitted = admitted;
  e.deadline = admitted + deadline;
  return e;
}

// ---------------------------------------------------------------------------
// BatchQueue: the clock-injected flush/expiry/backpressure state
// machine, unit-tested deterministically.

TEST(BatchQueueTest, FlushesWhenMaxRowsPending) {
  BatchQueue queue(/*capacity=*/16, /*max_batch_rows=*/8,
                   /*window=*/milliseconds(1000));
  const auto now = Clock::now();
  ASSERT_TRUE(queue.push(entry(5, 0, 3, now)));
  EXPECT_FALSE(queue.should_flush(now));
  ASSERT_TRUE(queue.push(entry(5, 1, 5, now)));
  EXPECT_TRUE(queue.should_flush(now));  // 8 rows pending, window not up
}

TEST(BatchQueueTest, FlushesWhenWindowExpires) {
  BatchQueue queue(/*capacity=*/16, /*max_batch_rows=*/8,
                   /*window=*/milliseconds(20));
  const auto now = Clock::now();
  ASSERT_TRUE(queue.push(entry(5, 0, 1, now)));
  EXPECT_FALSE(queue.should_flush(now + milliseconds(19)));
  EXPECT_TRUE(queue.should_flush(now + milliseconds(20)));
}

TEST(BatchQueueTest, RejectsWhenFull) {
  BatchQueue queue(/*capacity=*/2, /*max_batch_rows=*/8,
                   /*window=*/milliseconds(20));
  const auto now = Clock::now();
  EXPECT_TRUE(queue.push(entry(5, 0, 1, now)));
  EXPECT_TRUE(queue.push(entry(6, 0, 1, now)));
  EXPECT_FALSE(queue.push(entry(7, 0, 1, now)));  // backpressure
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BatchQueueTest, ExpiresPastDeadlineEntries) {
  BatchQueue queue(/*capacity=*/16, /*max_batch_rows=*/8,
                   /*window=*/milliseconds(1000));
  const auto now = Clock::now();
  ASSERT_TRUE(queue.push(entry(5, 0, 2, now, milliseconds(10))));
  ASSERT_TRUE(queue.push(entry(6, 0, 3, now, milliseconds(10000))));
  const auto expired = queue.expire(now + milliseconds(11));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].client, 5);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.pending_rows(), 3u);
}

TEST(BatchQueueTest, PopBatchRespectsMaxRowsAndArrivalOrder) {
  BatchQueue queue(/*capacity=*/16, /*max_batch_rows=*/8,
                   /*window=*/milliseconds(0));
  const auto now = Clock::now();
  ASSERT_TRUE(queue.push(entry(5, 0, 3, now)));
  ASSERT_TRUE(queue.push(entry(6, 0, 4, now)));
  ASSERT_TRUE(queue.push(entry(7, 0, 2, now)));  // 3+4+2 > 8: next batch
  const auto batch = queue.pop_batch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].client, 5);
  EXPECT_EQ(batch[1].client, 6);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.pending_rows(), 2u);
}

TEST(BatchQueueTest, OversizedRequestDispatchesAlone) {
  BatchQueue queue(/*capacity=*/16, /*max_batch_rows=*/8,
                   /*window=*/milliseconds(0));
  const auto now = Clock::now();
  ASSERT_TRUE(queue.push(entry(5, 0, 16, now)));
  ASSERT_TRUE(queue.push(entry(6, 0, 1, now)));
  const auto batch = queue.pop_batch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].rows, 16u);
  EXPECT_EQ(queue.pending_rows(), 1u);
}

// ---------------------------------------------------------------------------
// Wire framing round-trips.

TEST(ServeWireTest, NoticeRoundTrip) {
  RequestNotice notice;
  notice.kind = NoticeKind::kRequest;
  notice.seq = 41;
  notice.rows = 7;
  notice.deadline_ms = 1234;
  const RequestNotice decoded = decode_notice(encode_notice(notice));
  EXPECT_EQ(decoded.kind, notice.kind);
  EXPECT_EQ(decoded.seq, notice.seq);
  EXPECT_EQ(decoded.rows, notice.rows);
  EXPECT_EQ(decoded.deadline_ms, notice.deadline_ms);

  RequestNotice stop;
  stop.kind = NoticeKind::kStop;
  stop.seq = 42;
  EXPECT_EQ(decode_notice(encode_notice(stop)).kind, NoticeKind::kStop);
}

TEST(ServeWireTest, ManifestRoundTrip) {
  BatchManifest manifest;
  manifest.index = 9;
  manifest.entries = {{kFirstClientId, 3, 2}, {kFirstClientId + 1, 0, 5}};
  const BatchManifest decoded = decode_manifest(encode_manifest(manifest));
  EXPECT_EQ(decoded.index, 9u);
  EXPECT_FALSE(decoded.shutdown);
  ASSERT_EQ(decoded.entries.size(), 2u);
  EXPECT_EQ(decoded.entries[0].client, kFirstClientId);
  EXPECT_EQ(decoded.entries[1].rows, 5u);
  EXPECT_EQ(decoded.total_rows(), 7u);

  BatchManifest shutdown;
  shutdown.index = 10;
  shutdown.shutdown = true;
  EXPECT_TRUE(decode_manifest(encode_manifest(shutdown)).shutdown);
}

TEST(ServeWireTest, ControlRoundTrip) {
  ControlResponse control;
  control.status = Status::kDeadlineMissed;
  control.seq = 17;
  const ControlResponse decoded = decode_control(encode_control(control));
  EXPECT_EQ(decoded.status, Status::kDeadlineMissed);
  EXPECT_EQ(decoded.seq, 17u);
}

TEST(ServeWireTest, ShareRoundTrip) {
  Rng rng(7);
  RingTensor secret({3, 4});
  for (auto& v : secret.values()) {
    v = rng.next_u64();
  }
  const auto triples = mpc::share_secret(secret, rng);
  for (const auto& triple : triples) {
    const mpc::PartyShare decoded = decode_share(encode_share(triple));
    EXPECT_EQ(decoded.primary, triple.primary);
    EXPECT_EQ(decoded.duplicate, triple.duplicate);
    EXPECT_EQ(decoded.second, triple.second);
  }
}

TEST(ServeWireTest, ConcatThenSliceRoundTrip) {
  Rng rng(11);
  RingTensor a({2, 5});
  RingTensor b({3, 5});
  for (auto& v : a.values()) {
    v = rng.next_u64();
  }
  for (auto& v : b.values()) {
    v = rng.next_u64();
  }
  const auto shares_a = mpc::share_secret(a, rng);
  const auto shares_b = mpc::share_secret(b, rng);
  for (int party = 0; party < mpc::kNumParties; ++party) {
    const mpc::PartyShare coalesced = concat_rows(
        {shares_a[static_cast<std::size_t>(party)],
         shares_b[static_cast<std::size_t>(party)]});
    EXPECT_EQ(coalesced.primary.shape(), (Shape{5, 5}));
    const mpc::PartyShare back_a = slice_rows(coalesced, 0, 2);
    const mpc::PartyShare back_b = slice_rows(coalesced, 2, 3);
    EXPECT_EQ(back_a.primary, shares_a[static_cast<std::size_t>(party)].primary);
    EXPECT_EQ(back_a.second, shares_a[static_cast<std::size_t>(party)].second);
    EXPECT_EQ(back_b.duplicate,
              shares_b[static_cast<std::size_t>(party)].duplicate);
    EXPECT_EQ(back_b.second, shares_b[static_cast<std::size_t>(party)].second);
  }
}

// ---------------------------------------------------------------------------
// Full in-process serving sessions.

core::EngineConfig fast_engine() {
  core::EngineConfig config;
  config.collect_timeout = std::chrono::milliseconds(300);
  return config;
}

data::TrainTestSplit query_split(std::size_t rows) {
  data::SyntheticMnistConfig config;
  config.train_count = 1;
  config.test_count = rows;
  config.seed = 42;
  return data::generate_synthetic_mnist(config);
}

/// Labels the in-memory engine (same spec/config seeds as the serving
/// session) computes for `sample` — the correctness reference:
/// serving coalesces different batch shapes, but predictions must not
/// change.
std::vector<std::size_t> reference_labels(const nn::ModelSpec& spec,
                                          const core::EngineConfig& config,
                                          const data::Dataset& sample) {
  core::TrustDdlEngine engine(spec, config);
  return engine.infer(sample, /*batch_size=*/4).labels;
}

TEST(ServeSessionTest, ConcurrentClientsMatchSequentialInference) {
  constexpr int kClients = 2;
  constexpr std::size_t kRequests = 4;
  const auto split = query_split(kClients * kRequests);

  SessionConfig config;
  config.spec = nn::mnist_mlp_spec();
  config.engine = fast_engine();
  config.serve.max_batch_rows = 4;
  config.serve.batch_window = milliseconds(10);
  config.num_clients = kClients;

  std::vector<std::vector<InferenceResult>> results(
      kClients, std::vector<InferenceResult>(kRequests));
  const SessionResult session = run_serving_session(
      config, [&](int index, InferenceClient& client) {
        for (std::size_t r = 0; r < kRequests; ++r) {
          const data::Dataset row = data::slice(
              split.test, static_cast<std::size_t>(index) * kRequests + r, 1);
          results[static_cast<std::size_t>(index)][r] =
              client.infer(row.images);
        }
      });

  const auto expected = reference_labels(
      config.spec, config.engine,
      data::slice(split.test, 0, kClients * kRequests));
  for (int c = 0; c < kClients; ++c) {
    for (std::size_t r = 0; r < kRequests; ++r) {
      const auto& result = results[static_cast<std::size_t>(c)][r];
      ASSERT_EQ(result.status, Status::kOk) << "client " << c << " seq " << r;
      ASSERT_EQ(result.labels.size(), 1u);
      EXPECT_EQ(result.labels[0],
                expected[static_cast<std::size_t>(c) * kRequests + r]);
      EXPECT_GE(result.responders, 2);
      EXPECT_FALSE(result.anomaly);
    }
  }
  EXPECT_EQ(session.scheduler.admitted, kClients * kRequests);
  EXPECT_EQ(session.scheduler.completed, kClients * kRequests);
}

TEST(ServeSessionTest, CoalescesConcurrentRequestsIntoBatches) {
  constexpr std::size_t kRequests = 8;
  const auto split = query_split(kRequests);

  SessionConfig config;
  config.spec = nn::mnist_mlp_spec();
  config.engine = fast_engine();
  config.serve.max_batch_rows = 4;
  config.serve.batch_window = milliseconds(50);

  std::vector<InferenceResult> results(kRequests);
  const SessionResult session = run_serving_session(
      config, [&](int, InferenceClient& client) {
        // Submit everything up front so the owner sees a full queue,
        // then await: the batcher must coalesce, not serialize.
        std::vector<std::uint64_t> seqs(kRequests);
        for (std::size_t r = 0; r < kRequests; ++r) {
          seqs[r] = client.submit(data::slice(split.test, r, 1).images);
        }
        for (std::size_t r = 0; r < kRequests; ++r) {
          results[r] = client.await(seqs[r], 1);
        }
      });

  const auto expected =
      reference_labels(config.spec, config.engine,
                       data::slice(split.test, 0, kRequests));
  for (std::size_t r = 0; r < kRequests; ++r) {
    ASSERT_EQ(results[r].status, Status::kOk) << "seq " << r;
    EXPECT_EQ(results[r].labels[0], expected[r]);
  }
  EXPECT_LT(session.scheduler.batches, kRequests);  // real coalescing
  EXPECT_EQ(session.scheduler.batched_rows, kRequests);
  for (const std::size_t batches : session.party_batches) {
    EXPECT_EQ(batches, session.scheduler.batches);
  }
}

TEST(ServeSessionTest, LedgerEquationHolds) {
  const auto split = query_split(4);

  SessionConfig config;
  config.spec = nn::mnist_mlp_spec();
  config.engine = fast_engine();
  config.serve.max_batch_rows = 2;
  config.serve.batch_window = milliseconds(10);

  const SessionResult session = run_serving_session(
      config, [&](int, InferenceClient& client) {
        for (std::size_t r = 0; r < 4; ++r) {
          client.infer(data::slice(split.test, r, 1).images);
        }
      });
  EXPECT_EQ(session.scheduler.admitted,
            session.scheduler.completed + session.scheduler.rejected +
                session.scheduler.deadline_missed);
  EXPECT_EQ(session.scheduler.admitted, 4u);
  EXPECT_GT(session.scheduler.batches, 0u);
}

TEST(ServeSessionTest, QueueFullRejectsThenRetrySucceeds) {
  const auto split = query_split(4);

  SessionConfig config;
  config.spec = nn::mnist_mlp_spec();
  config.engine = fast_engine();
  // Nothing flushes for 150ms and only two requests fit: the third
  // must bounce with kRejected, and a retried request must land once
  // the window expires the backlog.
  config.serve.max_batch_rows = 64;
  config.serve.batch_window = milliseconds(150);
  config.serve.queue_capacity = 2;
  config.client.max_retries = 8;
  config.client.retry_backoff = milliseconds(50);

  InferenceResult rejected;
  InferenceResult retried;
  const SessionResult session = run_serving_session(
      config, [&](int, InferenceClient& client) {
        const auto seq_a = client.submit(data::slice(split.test, 0, 1).images);
        const auto seq_b = client.submit(data::slice(split.test, 1, 1).images);
        const auto seq_c = client.submit(data::slice(split.test, 2, 1).images);
        rejected = client.await(seq_c, 1);
        // infer() retries rejected submissions with backoff until the
        // window flushes the two admitted requests.
        retried = client.infer(data::slice(split.test, 3, 1).images);
        client.await(seq_a, 1);
        client.await(seq_b, 1);
      });

  EXPECT_EQ(rejected.status, Status::kRejected);
  EXPECT_EQ(retried.status, Status::kOk);
  EXPECT_GE(session.scheduler.rejected, 1u);
  EXPECT_EQ(session.scheduler.admitted,
            session.scheduler.completed + session.scheduler.rejected +
                session.scheduler.deadline_missed);
}

TEST(ServeSessionTest, ExpiredDeadlineIsReported) {
  const auto split = query_split(1);

  SessionConfig config;
  config.spec = nn::mnist_mlp_spec();
  config.engine = fast_engine();
  // A 1ms queue deadline under a 500ms batch window: the owner's
  // deadline sweep must answer before any batch forms.
  config.serve.max_batch_rows = 64;
  config.serve.batch_window = milliseconds(500);
  config.client.deadline = milliseconds(1);

  InferenceResult result;
  const SessionResult session = run_serving_session(
      config, [&](int, InferenceClient& client) {
        result = client.infer(split.test.images);
      });

  EXPECT_EQ(result.status, Status::kDeadlineMissed);
  EXPECT_EQ(session.scheduler.deadline_missed, 1u);
  EXPECT_EQ(session.scheduler.completed, 0u);
  EXPECT_EQ(session.scheduler.admitted, 1u);
}

TEST(ServeSessionTest, ReconstructsWithPartyCrashedMidService) {
  constexpr std::size_t kRequests = 3;
  const auto split = query_split(kRequests);

  SessionConfig config;
  config.spec = nn::mnist_mlp_spec();
  config.engine = fast_engine();
  // Short protocol timeouts so the surviving parties detect the dead
  // peer quickly; generous client budget so degraded batches finish.
  config.engine.recv_timeout = milliseconds(150);
  config.serve.max_batch_rows = 1;  // one batch per request
  config.serve.batch_window = milliseconds(5);
  config.client.response_timeout = milliseconds(60000);
  config.client.deadline = milliseconds(60000);
  config.crash_party = 2;
  config.crash_after_batches = 1;

  std::vector<InferenceResult> results(kRequests);
  const SessionResult session = run_serving_session(
      config, [&](int, InferenceClient& client) {
        for (std::size_t r = 0; r < kRequests; ++r) {
          results[r] = client.infer(data::slice(split.test, r, 1).images);
        }
      });

  const auto expected = reference_labels(
      config.spec, config.engine, data::slice(split.test, 0, kRequests));
  for (std::size_t r = 0; r < kRequests; ++r) {
    ASSERT_EQ(results[r].status, Status::kOk) << "seq " << r;
    EXPECT_EQ(results[r].labels[0], expected[r]) << "seq " << r;
  }
  // The crashed party executed exactly one batch; requests after the
  // crash were answered from the two survivors (2-of-3).
  EXPECT_EQ(session.party_batches[2], 1u);
  EXPECT_EQ(session.party_batches[0], kRequests);
  EXPECT_LE(results[kRequests - 1].responders, 2);
}

TEST(ServeSessionTest, OutvotesCorruptedResultShares) {
  constexpr std::size_t kRequests = 3;
  const auto split = query_split(kRequests);

  SessionConfig config;
  config.spec = nn::mnist_mlp_spec();
  config.engine = fast_engine();
  config.serve.max_batch_rows = 2;
  config.serve.batch_window = milliseconds(10);
  config.corrupt_party = 1;

  std::vector<InferenceResult> results(kRequests);
  const SessionResult session = run_serving_session(
      config, [&](int, InferenceClient& client) {
        for (std::size_t r = 0; r < kRequests; ++r) {
          results[r] = client.infer(data::slice(split.test, r, 1).images);
        }
      });

  const auto expected = reference_labels(
      config.spec, config.engine, data::slice(split.test, 0, kRequests));
  for (std::size_t r = 0; r < kRequests; ++r) {
    ASSERT_EQ(results[r].status, Status::kOk) << "seq " << r;
    EXPECT_EQ(results[r].labels[0], expected[r]) << "seq " << r;
    // The corrupted share set must be noticed, never believed.
    EXPECT_TRUE(results[r].anomaly) << "seq " << r;
  }
  EXPECT_EQ(session.scheduler.completed, kRequests);
}

TEST(ServeSessionTest, RecordsServeMetrics) {
  const auto split = query_split(4);

  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::global().reset();

  SessionConfig config;
  config.spec = nn::mnist_mlp_spec();
  config.engine = fast_engine();
  config.serve.max_batch_rows = 2;
  config.serve.batch_window = milliseconds(10);

  const SessionResult session = run_serving_session(
      config, [&](int, InferenceClient& client) {
        for (std::size_t r = 0; r < 4; ++r) {
          client.infer(data::slice(split.test, r, 1).images);
        }
      });

  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::global().snapshot();
  obs::set_metrics_enabled(false);

  const auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [counter_name, value] : snapshot.counters) {
      if (counter_name == name) {
        return value;
      }
    }
    return 0;
  };
  EXPECT_EQ(counter("serve.requests.admitted"), session.scheduler.admitted);
  EXPECT_EQ(counter("serve.requests.admitted"),
            counter("serve.requests.completed") +
                counter("serve.requests.rejected") +
                counter("serve.requests.deadline_missed"));
  EXPECT_EQ(counter("serve.batches"), session.scheduler.batches);

  bool found_rows_histogram = false;
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == "serve.batch.rows") {
      found_rows_histogram = true;
      EXPECT_EQ(histogram.count, session.scheduler.batches);
    }
  }
  EXPECT_TRUE(found_rows_histogram);
}

}  // namespace
}  // namespace trustddl::serve
