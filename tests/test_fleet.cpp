// Fleet-layer tests: topology parsing, rendezvous routing, pod-labeled
// metrics, and full in-process fleet sessions (N pods × owner + three
// parties, routed FleetClients), including the whole-pod-crash chaos
// drill where clients must fail over with zero lost requests.
#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/engine.hpp"
#include "data/synthetic_mnist.hpp"
#include "fleet/harness.hpp"
#include "fleet/router.hpp"
#include "fleet/topology.hpp"
#include "obs/admin_server.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "serve/wire.hpp"

namespace trustddl::fleet {
namespace {

using std::chrono::milliseconds;

constexpr const char* kTopologyJson = R"({
  "schema": "trustddl.fleet.v1",
  "clients": 4,
  "pods": [
    {"name": "pod0", "host": "127.0.0.1", "port_base": 29500,
     "admin_ports": [28700, 28701, 28702]},
    {"name": "pod1", "host": "10.0.0.2", "port_base": 29520,
     "admin_ports": [28710]}
  ]
})";

// ---------------------------------------------------------------------------
// Topology file parsing.

TEST(FleetTopologyTest, ParsesCanonicalJson) {
  const FleetTopology topology = parse_topology(kTopologyJson);
  ASSERT_EQ(topology.pods.size(), 2u);
  EXPECT_EQ(topology.clients, 4);
  EXPECT_EQ(topology.pods[0].name, "pod0");
  EXPECT_EQ(topology.pods[0].host, "127.0.0.1");
  EXPECT_EQ(topology.pods[0].port_base, 29500);
  ASSERT_EQ(topology.pods[0].admin_ports.size(), 3u);
  EXPECT_EQ(topology.pods[0].admin_ports[1], 28701);
  EXPECT_EQ(topology.pods[1].host, "10.0.0.2");
  EXPECT_EQ(topology.pods[1].admin_ports.size(), 1u);
  EXPECT_EQ(topology.pod_index("pod1"), 1u);
  EXPECT_EQ(topology.pods[1].address_of(core::kModelOwner),
            "10.0.0.2:29524");
  const std::vector<std::string> names = topology.pod_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "pod0");
  EXPECT_EQ(names[1], "pod1");
}

TEST(FleetTopologyTest, RoundTripsThroughToJson) {
  const FleetTopology topology = parse_topology(kTopologyJson);
  const FleetTopology again = parse_topology(topology.to_json());
  ASSERT_EQ(again.pods.size(), topology.pods.size());
  EXPECT_EQ(again.clients, topology.clients);
  for (std::size_t p = 0; p < topology.pods.size(); ++p) {
    EXPECT_EQ(again.pods[p].name, topology.pods[p].name);
    EXPECT_EQ(again.pods[p].host, topology.pods[p].host);
    EXPECT_EQ(again.pods[p].port_base, topology.pods[p].port_base);
    EXPECT_EQ(again.pods[p].admin_ports, topology.pods[p].admin_ports);
  }
}

TEST(FleetTopologyTest, RejectsMalformedInput) {
  // Not JSON at all.
  EXPECT_THROW(parse_topology("not json"), InvalidArgument);
  // Empty pod list.
  EXPECT_THROW(parse_topology(R"({"pods": []})"), InvalidArgument);
  // Pod without a name.
  EXPECT_THROW(parse_topology(R"({"pods": [{"port_base": 29500}]})"),
               InvalidArgument);
  // Pod without a port base.
  EXPECT_THROW(parse_topology(R"({"pods": [{"name": "pod0"}]})"),
               InvalidArgument);
  // Duplicate pod names.
  EXPECT_THROW(
      parse_topology(R"({"pods": [{"name": "a", "port_base": 1000},
                                  {"name": "a", "port_base": 2000}]})"),
      InvalidArgument);
  // Trailing garbage after the document.
  EXPECT_THROW(
      parse_topology(R"({"pods": [{"name": "a", "port_base": 1000}]} x)"),
      InvalidArgument);
  // Unknown pod is an error on lookup, not a silent default.
  const FleetTopology topology = parse_topology(kTopologyJson);
  EXPECT_THROW(topology.pod_index("pod9"), InvalidArgument);
}

TEST(FleetTopologyTest, SkipsUnknownKeysForForwardCompatibility) {
  const FleetTopology topology = parse_topology(R"({
    "schema": "trustddl.fleet.v2-draft",
    "region": "local",
    "pods": [{"name": "pod0", "port_base": 29500,
              "weights": [1, 2], "zone": "a"}]
  })");
  ASSERT_EQ(topology.pods.size(), 1u);
  EXPECT_EQ(topology.pods[0].name, "pod0");
  EXPECT_EQ(topology.pods[0].host, "127.0.0.1");  // default
}

// ---------------------------------------------------------------------------
// Rendezvous routing.

TEST(FleetRouterTest, PreferenceOrderIsDeterministicPermutation) {
  const std::vector<std::string> names = {"pod0", "pod1", "pod2"};
  const PodRouter a(names);
  const PodRouter b(names);
  for (std::uint64_t key = 5; key < 21; ++key) {
    const auto order = a.preference_order(key);
    EXPECT_EQ(order, b.preference_order(key)) << "key " << key;
    ASSERT_EQ(order.size(), names.size());
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t p = 0; p < names.size(); ++p) {
      EXPECT_EQ(sorted[p], p);  // a permutation of every pod
    }
    EXPECT_EQ(a.home_pod(key), order[0]);
  }
}

TEST(FleetRouterTest, SpreadsKeysAcrossPods) {
  const std::vector<std::string> names = {"pod0", "pod1", "pod2", "pod3"};
  const PodRouter router(names);
  std::vector<std::size_t> load(names.size(), 0);
  constexpr std::uint64_t kKeys = 256;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    ++load[router.home_pod(key)];
  }
  for (std::size_t p = 0; p < names.size(); ++p) {
    // Perfectly even would be 64 each; demand each pod gets at least
    // a quarter of its fair share (hash-quality smoke, not exactness).
    EXPECT_GE(load[p], kKeys / 16) << "pod " << p << " starved";
  }
}

TEST(FleetRouterTest, RemovingAPodOnlyRemapsItsOwnClients) {
  const std::vector<std::string> all = {"pod0", "pod1", "pod2"};
  const std::vector<std::string> survivors = {"pod0", "pod1"};
  const PodRouter full(all);
  const PodRouter reduced(survivors);
  for (std::uint64_t key = 0; key < 128; ++key) {
    const std::size_t before = full.home_pod(key);
    if (before != 2) {
      // Clients not homed on the removed pod keep their assignment —
      // the rendezvous-hash stability property the fleet relies on.
      EXPECT_EQ(reduced.home_pod(key), before) << "key " << key;
    }
  }
}

TEST(FleetRouterTest, FailoverSkipsDownPodUntilCooldown) {
  RouterOptions options;
  options.retry_cooldown = milliseconds(60);
  const PodRouter probe({"pod0", "pod1"});
  PodRouter router({"pod0", "pod1"}, options);
  const std::uint64_t key = 5;
  const auto order = probe.preference_order(key);
  const std::size_t home = order[0];
  const std::size_t backup = order[1];

  EXPECT_EQ(router.route(key), home);
  router.mark_down(home);
  EXPECT_TRUE(router.is_down(home));
  EXPECT_EQ(router.route(key), backup);

  router.mark_up(home);
  EXPECT_EQ(router.route(key), home);

  router.mark_down(home);
  std::this_thread::sleep_for(milliseconds(80));
  // Cooldown expired: the pod is eligible again and one client's
  // next request acts as the probe.
  EXPECT_TRUE(router.eligible(home));
  EXPECT_EQ(router.route(key), home);

  // Both pods down: route still yields a deterministic target.
  router.mark_down(home);
  router.mark_down(backup);
  EXPECT_EQ(router.route(key), home);
}

// ---------------------------------------------------------------------------
// Pod-labeled Prometheus exposition.

TEST(FleetMetricsTest, PrometheusLabelsServeFamiliesWithPod) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::global().reset();
  obs::HealthState::global().set_pod("podz");
  obs::count("serve.test.requests", 3);
  obs::count("net.test.frames", 2);
  obs::observe("serve.test.us", 9);
  const std::string text =
      obs::prometheus_text(obs::MetricsRegistry::global().snapshot());
  obs::HealthState::global().set_pod("");
  obs::set_metrics_enabled(false);

  // serve.* families carry the pod label; other families stay bare.
  EXPECT_NE(text.find("trustddl_serve_test_requests{pod=\"podz\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("trustddl_net_test_frames 2"), std::string::npos)
      << text;
  // Histogram buckets compose pod-then-le.
  EXPECT_NE(text.find("trustddl_serve_test_us_bucket{pod=\"podz\",le="),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("trustddl_serve_test_us_count{pod=\"podz\"} 1"),
            std::string::npos)
      << text;
}

// ---------------------------------------------------------------------------
// Full in-process fleet sessions.

core::EngineConfig fast_engine() {
  core::EngineConfig config;
  config.collect_timeout = milliseconds(300);
  return config;
}

data::TrainTestSplit query_split(std::size_t rows) {
  data::SyntheticMnistConfig config;
  config.train_count = 1;
  config.test_count = rows;
  config.seed = 42;
  return data::generate_synthetic_mnist(config);
}

std::vector<std::size_t> reference_labels(const nn::ModelSpec& spec,
                                          const core::EngineConfig& config,
                                          const data::Dataset& sample) {
  core::TrustDdlEngine engine(spec, config);
  return engine.infer(sample, /*batch_size=*/4).labels;
}

TEST(FleetSessionTest, RoutedClientsMatchEngineAcrossPods) {
  constexpr int kClients = 2;
  constexpr std::size_t kRequests = 3;
  const auto split = query_split(kClients * kRequests);

  FleetSessionConfig config;
  config.spec = nn::mnist_mlp_spec();
  config.engine = fast_engine();
  config.serve.max_batch_rows = 4;
  config.serve.batch_window = milliseconds(10);
  config.num_pods = 2;
  config.num_clients = kClients;

  std::vector<std::vector<FleetResult>> results(
      kClients, std::vector<FleetResult>(kRequests));
  const FleetSessionResult session = run_fleet_session(
      config, [&](int index, FleetClient& client) {
        for (std::size_t r = 0; r < kRequests; ++r) {
          const data::Dataset row = data::slice(
              split.test, static_cast<std::size_t>(index) * kRequests + r, 1);
          results[static_cast<std::size_t>(index)][r] =
              client.infer(row.images);
        }
      });

  const auto expected = reference_labels(
      config.spec, config.engine,
      data::slice(split.test, 0, kClients * kRequests));
  PodRouter router({"pod0", "pod1"});
  for (int c = 0; c < kClients; ++c) {
    const std::size_t home = router.home_pod(
        static_cast<std::uint64_t>(serve::kFirstClientId + c));
    for (std::size_t r = 0; r < kRequests; ++r) {
      const auto& entry = results[static_cast<std::size_t>(c)][r];
      ASSERT_EQ(entry.result.status, serve::Status::kOk)
          << "client " << c << " request " << r;
      ASSERT_EQ(entry.result.labels.size(), 1u);
      EXPECT_EQ(entry.result.labels[0],
                expected[static_cast<std::size_t>(c) * kRequests + r]);
      // A healthy fleet serves every request from the home pod.
      EXPECT_EQ(entry.pod, home);
      EXPECT_EQ(entry.failovers, 0);
    }
  }
  EXPECT_EQ(session.failovers, 0u);
  std::size_t served = 0;
  std::size_t admitted = 0;
  for (std::size_t p = 0; p < 2; ++p) {
    served += session.served_by_pod[p];
    admitted += session.scheduler[p].admitted;
  }
  EXPECT_EQ(served, static_cast<std::size_t>(kClients) * kRequests);
  EXPECT_EQ(admitted, static_cast<std::size_t>(kClients) * kRequests);
}

TEST(FleetSessionTest, PodCrashFailsOverWithZeroLostRequests) {
  constexpr int kClients = 2;
  constexpr std::size_t kRequests = 3;
  const auto split = query_split(kClients * kRequests);

  FleetSessionConfig config;
  config.spec = nn::mnist_mlp_spec();
  config.engine = fast_engine();
  config.serve.max_batch_rows = 1;  // every request is its own batch
  config.serve.batch_window = milliseconds(5);
  config.num_pods = 2;
  config.num_clients = kClients;
  // Kill client 0's home pod after it dispatched one batch: requests
  // already in flight there must time out and resubmit elsewhere.
  PodRouter router({"pod0", "pod1"});
  config.crash_pod = static_cast<int>(
      router.home_pod(static_cast<std::uint64_t>(serve::kFirstClientId)));
  config.crash_pod_after_batches = 1;
  // Fail over quickly — the dead pod never answers, so the response
  // timeout is the failover latency.  The short engine recv timeout
  // also lets the crashed pod's stranded parties exit promptly.
  config.client.response_timeout = milliseconds(800);
  config.engine.recv_timeout = milliseconds(600);
  config.router.retry_cooldown = milliseconds(60000);  // stay away

  std::vector<std::vector<FleetResult>> results(
      kClients, std::vector<FleetResult>(kRequests));
  const FleetSessionResult session = run_fleet_session(
      config, [&](int index, FleetClient& client) {
        for (std::size_t r = 0; r < kRequests; ++r) {
          const data::Dataset row = data::slice(
              split.test, static_cast<std::size_t>(index) * kRequests + r, 1);
          results[static_cast<std::size_t>(index)][r] =
              client.infer(row.images);
        }
      });

  // Zero lost requests: every request completed somewhere, and
  // whichever pod answered, the labels are the engine's.
  const auto expected = reference_labels(
      config.spec, config.engine,
      data::slice(split.test, 0, kClients * kRequests));
  const auto survivor = static_cast<std::size_t>(1 - config.crash_pod);
  for (int c = 0; c < kClients; ++c) {
    for (std::size_t r = 0; r < kRequests; ++r) {
      const auto& entry = results[static_cast<std::size_t>(c)][r];
      ASSERT_EQ(entry.result.status, serve::Status::kOk)
          << "client " << c << " request " << r << " lost in the crash";
      ASSERT_EQ(entry.result.labels.size(), 1u);
      EXPECT_EQ(entry.result.labels[0],
                expected[static_cast<std::size_t>(c) * kRequests + r]);
    }
  }
  EXPECT_GE(session.failovers, 1u);
  // The survivor picked up the orphaned load.
  EXPECT_GE(session.served_by_pod[survivor], kRequests);
}

}  // namespace
}  // namespace trustddl::fleet
