#include "core/secure_model.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "core/engine.hpp"
#include "core/owner_service.hpp"
#include "mpc/share_serde.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "test_util.hpp"

namespace trustddl::core {
namespace {

using trustddl::testing::random_real;

constexpr int kF = fx::kDefaultFracBits;

/// Full five-actor harness: three computing-party contexts, a running
/// model-owner service thread, and helpers to share/reconstruct.
class FiveActorHarness {
 public:
  explicit FiveActorHarness(
      mpc::SecurityMode mode = mpc::SecurityMode::kMalicious,
      TruncationMode trunc = TruncationMode::kLocal)
      : network_(net::NetworkConfig{.num_parties = kNumActors,
                                    .recv_timeout =
                                        std::chrono::milliseconds(2000)}),
        trunc_(trunc),
        rng_(12345) {
    OwnerServiceConfig config;
    config.frac_bits = kF;
    config.collect_timeout = std::chrono::milliseconds(500);
    service_ =
        std::make_unique<ModelOwnerService>(network_.endpoint(kModelOwner),
                                            config);
    service_thread_ = std::thread([this] { service_->run(); });
    for (int party = 0; party < 3; ++party) {
      auto& ctx = contexts_[static_cast<std::size_t>(party)];
      ctx.endpoint = network_.endpoint(party);
      ctx.party = party;
      ctx.mode = mode;
      ctx.frac_bits = kF;
    }
  }

  ~FiveActorHarness() {
    // Any party that did not stop explicitly stops now so the service
    // thread exits.
    service_thread_.join();
  }

  /// Run the SPMD body on three party threads; each gets its context
  /// and an OwnerLink.  Sends kStop automatically afterwards.
  void run(const std::function<void(SecureExecContext&, int)>& body) {
    net::run_parties(3, [&](net::PartyId party) {
      OwnerLink link(network_.endpoint(party), party,
                     std::chrono::seconds(30));
      SecureExecContext ctx;
      ctx.mpc = &contexts_[static_cast<std::size_t>(party)];
      ctx.triples = &link;
      ctx.owner = &link;
      ctx.trunc_mode = trunc_;
      try {
        body(ctx, party);
      } catch (...) {
        link.stop();  // let the service thread exit even on failure
        throw;
      }
      link.stop();
    });
  }

  std::array<mpc::PartyShare, 3> share(const RealTensor& value) {
    return mpc::share_secret(to_ring(value, kF), rng_);
  }

  RealTensor reconstruct(const std::array<mpc::PartyShare, 3>& views) {
    return to_real(mpc::reconstruct(views), kF);
  }

  net::Network network_;
  TruncationMode trunc_;
  Rng rng_;
  std::array<mpc::PartyContext, 3> contexts_;
  std::unique_ptr<ModelOwnerService> service_;
  std::thread service_thread_;
};

TEST(SecureDenseTest, ForwardMatchesPlaintext) {
  Rng rng(1);
  nn::DenseLayer plain(6, 4, rng);
  const RealTensor input = random_real(Shape{3, 6}, rng, 1.0);
  const RealTensor expected = plain.forward(input);

  FiveActorHarness harness;
  const auto w_views = harness.share(plain.weights().value);
  const auto b_views = harness.share(plain.bias().value);
  const auto x_views = harness.share(input);
  std::array<mpc::PartyShare, 3> out_views;
  harness.run([&](SecureExecContext& ctx, int party) {
    const auto index = static_cast<std::size_t>(party);
    SecureDense layer(w_views[index], b_views[index]);
    out_views[index] = layer.forward(ctx, x_views[index]);
  });
  EXPECT_LT(max_abs_diff(harness.reconstruct(out_views), expected), 1e-3);
}

TEST(SecureDenseTest, BackwardGradientsMatchPlaintext) {
  Rng rng(2);
  nn::DenseLayer plain(5, 3, rng);
  const RealTensor input = random_real(Shape{2, 5}, rng, 1.0);
  const RealTensor upstream = random_real(Shape{2, 3}, rng, 1.0);
  plain.forward(input);
  const RealTensor expected_dx = plain.backward(upstream);

  FiveActorHarness harness;
  const auto w_views = harness.share(plain.weights().value);
  const auto b_views = harness.share(plain.bias().value);
  const auto x_views = harness.share(input);
  const auto g_views = harness.share(upstream);
  std::array<mpc::PartyShare, 3> dx_views;
  std::array<mpc::PartyShare, 3> dw_views;
  std::array<mpc::PartyShare, 3> db_views;
  harness.run([&](SecureExecContext& ctx, int party) {
    const auto index = static_cast<std::size_t>(party);
    SecureDense layer(w_views[index], b_views[index]);
    layer.forward(ctx, x_views[index]);
    dx_views[index] = layer.backward(ctx, g_views[index]);
    dw_views[index] = layer.parameters()[0]->grad;
    db_views[index] = layer.parameters()[1]->grad;
  });
  EXPECT_LT(max_abs_diff(harness.reconstruct(dx_views), expected_dx), 1e-3);
  EXPECT_LT(max_abs_diff(harness.reconstruct(dw_views), plain.weights().grad),
            1e-3);
  EXPECT_LT(max_abs_diff(harness.reconstruct(db_views), plain.bias().grad),
            1e-3);
}

TEST(SecureConvTest, ForwardAndBackwardMatchPlaintext) {
  Rng rng(3);
  ConvSpec spec;
  spec.in_channels = 1;
  spec.in_height = 6;
  spec.in_width = 6;
  spec.out_channels = 2;
  spec.kernel_h = 3;
  spec.kernel_w = 3;
  spec.pad = 1;
  spec.stride = 2;
  nn::ConvLayer plain(spec, rng);
  const std::size_t out_features = 2 * spec.out_height() * spec.out_width();
  const RealTensor input = random_real(Shape{2, 36}, rng, 1.0);
  const RealTensor upstream =
      random_real(Shape{2, out_features}, rng, 1.0);
  const RealTensor expected_out = plain.forward(input);
  const RealTensor expected_dx = plain.backward(upstream);

  FiveActorHarness harness;
  const auto w_views = harness.share(plain.weights().value);
  const auto b_views = harness.share(plain.bias().value);
  const auto x_views = harness.share(input);
  const auto g_views = harness.share(upstream);
  std::array<mpc::PartyShare, 3> out_views;
  std::array<mpc::PartyShare, 3> dx_views;
  std::array<mpc::PartyShare, 3> dw_views;
  std::array<mpc::PartyShare, 3> db_views;
  harness.run([&](SecureExecContext& ctx, int party) {
    const auto index = static_cast<std::size_t>(party);
    SecureConv layer(spec, w_views[index], b_views[index]);
    out_views[index] = layer.forward(ctx, x_views[index]);
    dx_views[index] = layer.backward(ctx, g_views[index]);
    dw_views[index] = layer.parameters()[0]->grad;
    db_views[index] = layer.parameters()[1]->grad;
  });
  EXPECT_LT(max_abs_diff(harness.reconstruct(out_views), expected_out), 1e-3);
  EXPECT_LT(max_abs_diff(harness.reconstruct(dx_views), expected_dx), 1e-3);
  EXPECT_LT(max_abs_diff(harness.reconstruct(dw_views), plain.weights().grad),
            1e-3);
  const RealTensor db = harness.reconstruct(db_views);
  EXPECT_LT(max_abs_diff(db.reshape(plain.bias().grad.shape()),
                         plain.bias().grad),
            1e-3);
}

TEST(SecureReluTest, MaskMatchesPlaintextAndDrivesBackward) {
  Rng rng(4);
  const RealTensor input(Shape{2, 4},
                         {-1.5, 0.25, 3.0, -0.01, 0.7, -2.0, 0.0, 1.0});
  const RealTensor upstream = random_real(Shape{2, 4}, rng, 1.0);
  nn::ReluLayer plain;
  const RealTensor expected_out = plain.forward(input);
  const RealTensor expected_dx = plain.backward(upstream);

  FiveActorHarness harness;
  const auto x_views = harness.share(input);
  const auto g_views = harness.share(upstream);
  std::array<mpc::PartyShare, 3> out_views;
  std::array<mpc::PartyShare, 3> dx_views;
  harness.run([&](SecureExecContext& ctx, int party) {
    const auto index = static_cast<std::size_t>(party);
    SecureRelu layer;
    out_views[index] = layer.forward(ctx, x_views[index]);
    dx_views[index] = layer.backward(ctx, g_views[index]);
  });
  EXPECT_LT(max_abs_diff(harness.reconstruct(out_views), expected_out), 1e-4);
  EXPECT_LT(max_abs_diff(harness.reconstruct(dx_views), expected_dx), 1e-4);
}

TEST(SecureSoftmaxTest, OutsourcedForwardMatchesPlaintext) {
  Rng rng(5);
  const RealTensor logits = random_real(Shape{3, 5}, rng, 3.0);
  const RealTensor expected = nn::softmax_rows(logits);

  FiveActorHarness harness;
  const auto x_views = harness.share(logits);
  std::array<mpc::PartyShare, 3> out_views;
  harness.run([&](SecureExecContext& ctx, int party) {
    const auto index = static_cast<std::size_t>(party);
    SecureSoftmax layer;
    out_views[index] = layer.forward(ctx, x_views[index]);
  });
  EXPECT_LT(max_abs_diff(harness.reconstruct(out_views), expected), 1e-4);
}

TEST(SecureSoftmaxTest, OutsourcedBackwardMatchesPlaintext) {
  Rng rng(6);
  const RealTensor logits = random_real(Shape{2, 4}, rng, 2.0);
  const RealTensor upstream = random_real(Shape{2, 4}, rng, 1.0);
  nn::SoftmaxLayer plain;
  plain.forward(logits);
  const RealTensor expected = plain.backward(upstream);

  FiveActorHarness harness;
  const auto x_views = harness.share(logits);
  const auto g_views = harness.share(upstream);
  std::array<mpc::PartyShare, 3> out_views;
  harness.run([&](SecureExecContext& ctx, int party) {
    const auto index = static_cast<std::size_t>(party);
    SecureSoftmax layer;
    layer.forward(ctx, x_views[index]);
    out_views[index] = layer.backward(ctx, g_views[index]);
  });
  EXPECT_LT(max_abs_diff(harness.reconstruct(out_views), expected), 1e-3);
}

/// Shares the parameters of a plaintext model for all parties.
std::array<std::vector<mpc::PartyShare>, 3> share_model_params(
    nn::Sequential& model, FiveActorHarness& harness) {
  std::array<std::vector<mpc::PartyShare>, 3> shares;
  for (nn::Parameter* parameter : model.parameters()) {
    const auto views = harness.share(parameter->value);
    for (int party = 0; party < 3; ++party) {
      shares[static_cast<std::size_t>(party)].push_back(
          views[static_cast<std::size_t>(party)]);
    }
  }
  return shares;
}

class SecureModelModeSweep
    : public ::testing::TestWithParam<std::tuple<mpc::SecurityMode,
                                                 TruncationMode>> {};

TEST_P(SecureModelModeSweep, FullForwardMatchesPlaintext) {
  const auto [mode, trunc] = GetParam();
  Rng rng(7);
  const nn::ModelSpec spec = nn::tiny_cnn_spec();
  nn::Sequential plain = nn::build_model(spec, rng);
  const RealTensor input = random_real(Shape{2, 144}, rng, 0.5);
  const RealTensor expected = plain.forward(input);

  FiveActorHarness harness(mode, trunc);
  auto param_shares = share_model_params(plain, harness);
  const auto x_views = harness.share(input);
  std::array<mpc::PartyShare, 3> out_views;
  harness.run([&](SecureExecContext& ctx, int party) {
    const auto index = static_cast<std::size_t>(party);
    SecureModel model(spec, std::move(param_shares[index]));
    out_views[index] = model.forward(ctx, x_views[index]);
  });
  EXPECT_LT(max_abs_diff(harness.reconstruct(out_views), expected), 5e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SecureModelModeSweep,
    ::testing::Combine(
        ::testing::Values(mpc::SecurityMode::kHonestButCurious,
                          mpc::SecurityMode::kMalicious),
        ::testing::Values(TruncationMode::kLocal,
                          TruncationMode::kMaskedOpen)));

TEST(SecureModelTest, TrainingStepMatchesPlaintextUpdate) {
  Rng rng(8);
  const nn::ModelSpec spec = nn::mnist_mlp_spec();
  nn::Sequential plain = nn::build_model(spec, rng);
  const RealTensor input = random_real(Shape{4, 784}, rng, 0.5);
  const RealTensor targets = nn::one_hot({1, 4, 7, 2}, 10);
  const double lr = 0.2;

  FiveActorHarness harness;
  auto param_shares = share_model_params(plain, harness);
  const auto x_views = harness.share(input);
  const auto y_views = harness.share(targets);

  std::array<std::vector<mpc::PartyShare>, 3> updated;
  harness.run([&](SecureExecContext& ctx, int party) {
    const auto index = static_cast<std::size_t>(party);
    SecureModel model(spec, std::move(param_shares[index]));
    const mpc::PartyShare probabilities =
        model.forward(ctx, x_views[index]);
    const mpc::PartyShare grad = probabilities - y_views[index];
    model.backward_from_logit_grad(ctx, grad);
    model.sgd_step(ctx, lr / 4.0, kF);
    for (SecureParameter* parameter : model.parameters()) {
      updated[index].push_back(parameter->value);
    }
  });

  // Plaintext reference step (fused gradient divides by batch).
  nn::SgdOptimizer optimizer(lr);
  plain.train_step(input, targets, optimizer);

  const auto plain_params = plain.parameters();
  for (std::size_t i = 0; i < plain_params.size(); ++i) {
    const RealTensor secure_value = harness.reconstruct(
        {updated[0][i], updated[1][i], updated[2][i]});
    EXPECT_LT(max_abs_diff(secure_value, plain_params[i]->value), 5e-3)
        << plain_params[i]->name;
  }
}

TEST(SecureModelTest, ByzantinePartyDoesNotCorruptTraining) {
  Rng rng(9);
  const nn::ModelSpec spec = nn::tiny_cnn_spec();
  nn::Sequential plain = nn::build_model(spec, rng);
  const RealTensor input = random_real(Shape{2, 144}, rng, 0.5);
  const RealTensor expected = plain.forward(input);

  // Masked-open truncation keeps honest parties' adopted values
  // bit-identical under exclusion (see EngineConfig::trunc_mode).
  FiveActorHarness harness(mpc::SecurityMode::kMalicious,
                           TruncationMode::kMaskedOpen);
  mpc::ByzantineConfig byzantine;
  byzantine.behavior = mpc::ByzantineConfig::Behavior::kConsistentCorruption;
  byzantine.probability = 1.0;
  mpc::StandardAdversary adversary(byzantine);
  harness.contexts_[1].adversary = &adversary;

  auto param_shares = share_model_params(plain, harness);
  const auto x_views = harness.share(input);
  std::array<mpc::PartyShare, 3> out_views;
  harness.run([&](SecureExecContext& ctx, int party) {
    const auto index = static_cast<std::size_t>(party);
    SecureModel model(spec, std::move(param_shares[index]));
    out_views[index] = model.forward(ctx, x_views[index]);
  });

  // Verify using a set fully held by the honest parties 0 and 2.
  for (int set = 0; set < mpc::kNumSets; ++set) {
    const int p1 = mpc::holder_of_primary(set);
    const int p2 = mpc::holder_of_second(set);
    if (p1 == 1 || p2 == 1) {
      continue;
    }
    const RealTensor got = to_real(
        out_views[static_cast<std::size_t>(p1)].primary +
            out_views[static_cast<std::size_t>(p2)].second,
        kF);
    EXPECT_LT(max_abs_diff(got, expected), 5e-3);
  }
  EXPECT_GT(adversary.attacks_launched(), 0u);
}

}  // namespace
}  // namespace trustddl::core
