// Tests for the extension features beyond the paper's Table I scope:
// max pooling (plaintext, secure, generic-backend) and the optimistic
// opening (the paper's future-work communication optimization).
#include <gtest/gtest.h>

#include <thread>

#include "baselines/falcon/falcon.hpp"
#include "baselines/securenn/securenn.hpp"
#include "core/engine.hpp"
#include "core/owner_service.hpp"
#include "mpc/adversary.hpp"
#include "mpc/open.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "test_util.hpp"

namespace trustddl {
namespace {

using testing::ThreePartyHarness;
using testing::random_real;
using testing::random_ring;

constexpr int kF = fx::kDefaultFracBits;

nn::PoolSpec small_pool() {
  nn::PoolSpec spec;
  spec.channels = 2;
  spec.in_height = 4;
  spec.in_width = 4;
  spec.window = 2;
  return spec;
}

TEST(MaxPoolTest, ForwardSelectsWindowMaxima) {
  nn::MaxPoolLayer layer(small_pool());
  RealTensor input(Shape{1, 32});
  for (std::size_t i = 0; i < 32; ++i) {
    input[i] = static_cast<double>(i % 7) - 3.0;
  }
  const RealTensor output = layer.forward(input);
  EXPECT_EQ(output.shape(), (Shape{1, 8}));
  // Manually check one window: channel 0, oy=0, ox=0 covers flat
  // indices {0, 1, 4, 5} -> values {-3, -2, 1, 2} -> max 2.
  EXPECT_DOUBLE_EQ(output.at(0, 0), 2.0);
}

TEST(MaxPoolTest, BackwardRoutesGradientToArgmax) {
  nn::MaxPoolLayer layer(small_pool());
  Rng rng(1);
  const RealTensor input = random_real(Shape{2, 32}, rng, 2.0);
  layer.forward(input);
  RealTensor upstream(Shape{2, 8});
  for (std::size_t i = 0; i < upstream.size(); ++i) {
    upstream[i] = 1.0;
  }
  const RealTensor grad = layer.backward(upstream);
  // Gradient mass is conserved and lands only on window maxima.
  EXPECT_DOUBLE_EQ(sum(grad), 16.0);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_TRUE(grad[i] == 0.0 || grad[i] == 1.0);
  }
}

TEST(MaxPoolTest, NumericalGradientCheck) {
  nn::MaxPoolLayer layer(small_pool());
  Rng rng(2);
  RealTensor input = random_real(Shape{1, 32}, rng, 2.0);
  const RealTensor upstream = random_real(Shape{1, 8}, rng, 1.0);

  layer.forward(input);
  const RealTensor analytical = layer.backward(upstream);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const double eps = 1e-6;
    const double original = input[i];
    input[i] = original + eps;
    double plus = 0;
    {
      const RealTensor out = layer.forward(input);
      for (std::size_t j = 0; j < out.size(); ++j) {
        plus += out[j] * upstream[j];
      }
    }
    input[i] = original - eps;
    double minus = 0;
    {
      const RealTensor out = layer.forward(input);
      for (std::size_t j = 0; j < out.size(); ++j) {
        minus += out[j] * upstream[j];
      }
    }
    input[i] = original;
    EXPECT_NEAR(analytical[i], (plus - minus) / (2 * eps), 1e-5)
        << "element " << i;
  }
  layer.forward(input);  // restore cache consistency
}

TEST(MaxPoolTest, PooledSpecValidates) {
  const nn::ModelSpec spec = nn::mnist_cnn_pool_spec();
  EXPECT_EQ(spec.layers.size(), 7u);
  Rng rng(3);
  nn::Sequential model = nn::build_model(spec, rng);
  const RealTensor input = random_real(Shape{1, 784}, rng, 0.5);
  EXPECT_EQ(model.forward(input).shape(), (Shape{1, 10}));
}

/// Pooled tiny spec for secure tests.
nn::ModelSpec tiny_pool_spec() {
  nn::ModelSpec spec;
  spec.name = "tiny_pool";
  spec.input_features = 8 * 8;
  spec.classes = 4;
  ConvSpec conv;
  conv.in_channels = 1;
  conv.in_height = 8;
  conv.in_width = 8;
  conv.out_channels = 2;
  conv.kernel_h = 3;
  conv.kernel_w = 3;
  conv.pad = 1;
  conv.stride = 1;  // 8x8x2
  nn::PoolSpec pool;
  pool.channels = 2;
  pool.in_height = 8;
  pool.in_width = 8;
  pool.window = 2;  // -> 4x4x2 = 32
  spec.layers = {
      nn::LayerSpec::make_conv(conv),    nn::LayerSpec::make_relu(),
      nn::LayerSpec::make_maxpool(pool), nn::LayerSpec::make_dense(32, 4),
      nn::LayerSpec::make_softmax(),
  };
  nn::validate_spec(spec);
  return spec;
}

TEST(SecureMaxPoolTest, EngineInferenceMatchesPlaintextWithPooling) {
  Rng rng(4);
  core::EngineConfig config;
  config.collect_timeout = std::chrono::milliseconds(300);
  core::TrustDdlEngine engine(tiny_pool_spec(), config);
  data::Dataset inputs;
  inputs.images = random_real(Shape{4, 64}, rng, 0.7);
  inputs.labels.assign(4, 0);
  const auto expected = engine.reference_model().predict(inputs.images);
  const core::InferResult result = engine.infer(inputs, 4);
  EXPECT_EQ(result.labels, expected);
}

TEST(SecureMaxPoolTest, EngineTrainsPooledModel) {
  data::SyntheticMnistConfig data_config;
  data_config.train_count = 48;
  data_config.test_count = 16;
  const auto split = data::generate_synthetic_mnist(data_config);

  core::EngineConfig config;
  config.collect_timeout = std::chrono::milliseconds(300);
  core::TrustDdlEngine engine(nn::mnist_cnn_pool_spec(), config);
  core::TrainOptions options;
  options.epochs = 1;
  options.batch_size = 16;
  options.learning_rate = 0.3;
  const core::TrainResult result =
      engine.train(split.train, split.test, options);
  ASSERT_EQ(result.epoch_test_accuracy.size(), 1u);  // ran to completion
}

TEST(SecureMaxPoolTest, BaselinesEvaluatePooledModel) {
  Rng rng(5);
  const nn::ModelSpec spec = tiny_pool_spec();
  const RealTensor images = random_real(Shape{3, 64}, rng, 0.7);

  baselines::securenn::SecureNnFramework securenn_fw(spec, 9);
  const auto securenn_expected =
      securenn_fw.reference_model().predict(images);
  std::vector<std::size_t> predictions;
  securenn_fw.infer(images, 1, &predictions);
  EXPECT_EQ(predictions, securenn_expected);

  baselines::falcon::FalconFramework falcon_fw(spec, false, 9);
  const auto falcon_expected = falcon_fw.reference_model().predict(images);
  falcon_fw.infer(images, 1, &predictions);
  EXPECT_EQ(predictions, falcon_expected);
}

// ---------- Optimistic opening ----------

TEST(OptimisticOpenTest, HonestFastPathMatchesAndIsCheaper) {
  Rng rng(6);
  const RingTensor secret = random_ring(Shape{32, 32}, rng);
  const auto views = mpc::share_secret(secret, rng);

  const auto run = [&](bool optimistic) {
    ThreePartyHarness harness(mpc::SecurityMode::kMalicious);
    for (auto& ctx : harness.contexts) {
      ctx.optimistic = optimistic;
    }
    std::array<RingTensor, 3> results;
    harness.run([&](mpc::PartyContext& ctx) {
      results[static_cast<std::size_t>(ctx.party)] = mpc::open_value(
          ctx, views[static_cast<std::size_t>(ctx.party)]);
    });
    for (const auto& result : results) {
      EXPECT_EQ(result, secret);
    }
    return harness.network.traffic().total_bytes;
  };

  const auto full_bytes = run(false);
  const auto optimistic_bytes = run(true);
  EXPECT_LT(optimistic_bytes, full_bytes);
  // Pairs are 2/3 of triples; with hashes/verdicts the saving is
  // roughly 25-35% on a tensor this size.
  EXPECT_LT(static_cast<double>(optimistic_bytes),
            0.85 * static_cast<double>(full_bytes));
}

class OptimisticByzantineSweep
    : public ::testing::TestWithParam<mpc::ByzantineConfig::Behavior> {};

TEST_P(OptimisticByzantineSweep, EscalatesAndRecovers) {
  ThreePartyHarness harness(mpc::SecurityMode::kMalicious);
  for (auto& ctx : harness.contexts) {
    ctx.optimistic = true;
  }
  mpc::ByzantineConfig config;
  config.behavior = GetParam();
  config.target_peer = 0;
  harness.make_byzantine(1, config);

  Rng rng(7);
  const RingTensor secret = random_ring(Shape{6}, rng);
  const auto views = mpc::share_secret(secret, rng);
  std::array<RingTensor, 3> results;
  harness.run([&](mpc::PartyContext& ctx) {
    results[static_cast<std::size_t>(ctx.party)] = mpc::open_value(
        ctx, views[static_cast<std::size_t>(ctx.party)]);
  });
  EXPECT_EQ(results[0], secret);
  EXPECT_EQ(results[2], secret);
  // The attack forced the escalation path.
  EXPECT_GE(harness.contexts[0].detections.recovered_opens +
                harness.contexts[2].detections.recovered_opens,
            1u);
}

INSTANTIATE_TEST_SUITE_P(
    Behaviors, OptimisticByzantineSweep,
    ::testing::Values(
        mpc::ByzantineConfig::Behavior::kConsistentCorruption,
        mpc::ByzantineConfig::Behavior::kCommitmentViolationGlobal,
        mpc::ByzantineConfig::Behavior::kCommitmentViolationSingle,
        mpc::ByzantineConfig::Behavior::kCoordinatedDelta));

TEST(OptimisticOpenTest, EngineRunsWithOptimisticOpenings) {
  Rng rng(8);
  core::EngineConfig config;
  config.optimistic_open = true;
  config.collect_timeout = std::chrono::milliseconds(300);
  core::TrustDdlEngine engine(nn::mnist_mlp_spec(), config);
  data::Dataset inputs;
  inputs.images = random_real(Shape{2, 784}, rng, 0.5);
  inputs.labels.assign(2, 0);
  const auto expected = engine.reference_model().predict(inputs.images);
  const core::InferResult result = engine.infer(inputs, 2);
  EXPECT_EQ(result.labels, expected);

  core::EngineConfig full_config = config;
  full_config.optimistic_open = false;
  core::TrustDdlEngine full_engine(nn::mnist_mlp_spec(), full_config);
  const core::InferResult full_result = full_engine.infer(inputs, 2);
  EXPECT_LT(result.cost.proxy_bytes, full_result.cost.proxy_bytes);
}

}  // namespace
}  // namespace trustddl
