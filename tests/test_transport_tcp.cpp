// Loopback-TCP mirror of tests/test_network.cpp: the TCP transport
// must behave exactly like the in-memory mailbox network — same tag
// demultiplexing, same TimeoutError mapping, same traffic-metering
// shape — so every protocol runs unchanged over sockets.
#include "net/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/error.hpp"
#include "net/network.hpp"
#include "net/runtime.hpp"
#include "obs/health.hpp"

namespace trustddl::net {
namespace {

NetworkConfig fast_config(int parties) {
  NetworkConfig config;
  config.num_parties = parties;
  config.recv_timeout = std::chrono::milliseconds(2000);
  return config;
}

TEST(TcpTransportTest, ParseAddress) {
  const TcpAddress address = parse_address("127.0.0.1:29500");
  EXPECT_EQ(address.host, "127.0.0.1");
  EXPECT_EQ(address.port, 29500);
  EXPECT_THROW(parse_address("no-port"), InvalidArgument);
  EXPECT_THROW(parse_address(":123"), InvalidArgument);
  EXPECT_THROW(parse_address("host:99999"), InvalidArgument);
}

TEST(TcpTransportTest, SendReceiveRoundTrip) {
  TcpFabric fabric(fast_config(2));
  run_parties(2, [&](PartyId party) {
    Endpoint endpoint = fabric.endpoint(party);
    if (party == 0) {
      endpoint.send(1, "greeting", Bytes{1, 2, 3});
    } else {
      EXPECT_EQ(endpoint.recv(0, "greeting"), (Bytes{1, 2, 3}));
    }
  });
}

TEST(TcpTransportTest, TagMatchingIgnoresOtherTags) {
  TcpFabric fabric(fast_config(2));
  run_parties(2, [&](PartyId party) {
    Endpoint endpoint = fabric.endpoint(party);
    if (party == 0) {
      endpoint.send(1, "second", Bytes{2});
      endpoint.send(1, "first", Bytes{1});
    } else {
      // Receive in the opposite order of sending: the reader thread
      // demultiplexes into tag-keyed mailboxes, so order is free.
      EXPECT_EQ(endpoint.recv(0, "first"), Bytes{1});
      EXPECT_EQ(endpoint.recv(0, "second"), Bytes{2});
    }
  });
}

TEST(TcpTransportTest, RecvTimesOutWithTimeoutError) {
  NetworkConfig config = fast_config(2);
  config.recv_timeout = std::chrono::milliseconds(50);
  TcpFabric fabric(config);
  Endpoint endpoint = fabric.endpoint(0);
  EXPECT_THROW(endpoint.recv(1, "never-sent"), TimeoutError);
}

TEST(TcpTransportTest, ExplicitTimeoutOverride) {
  TcpFabric fabric(fast_config(2));
  Endpoint endpoint = fabric.endpoint(0);
  EXPECT_THROW(endpoint.recv(1, "nope", std::chrono::milliseconds(10)),
               TimeoutError);
}

TEST(TcpTransportTest, TryRecvNonBlocking) {
  TcpFabric fabric(fast_config(2));
  Endpoint receiver = fabric.endpoint(1);
  Bytes out;
  EXPECT_FALSE(receiver.try_recv(0, "ping", out));
  fabric.endpoint(0).send(1, "ping", Bytes{9});
  // The frame crosses a real socket; poll until the reader thread has
  // delivered it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!receiver.try_recv(0, "ping", out)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(out, Bytes{9});
}

TEST(TcpTransportTest, SelfSendRejected) {
  TcpFabric fabric(fast_config(2));
  Endpoint endpoint = fabric.endpoint(0);
  EXPECT_THROW(endpoint.send(0, "loop", Bytes{}), InvalidArgument);
}

TEST(TcpTransportTest, LargePayloadSurvivesFraming) {
  TcpFabric fabric(fast_config(2));
  Bytes blob(1 << 20);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::uint8_t>(i * 2654435761u);
  }
  run_parties(2, [&](PartyId party) {
    Endpoint endpoint = fabric.endpoint(party);
    if (party == 0) {
      endpoint.send(1, "blob", blob);
    } else {
      EXPECT_EQ(endpoint.recv(0, "blob", std::chrono::seconds(10)), blob);
    }
  });
}

TEST(TcpTransportTest, TrafficMeteringParityWithInMemory) {
  // The same message pattern must produce an identical snapshot on
  // both transports: each message metered once, at its sender.
  const auto drive = [](Transport& transport) {
    run_parties(3, [&](PartyId party) {
      Endpoint endpoint = transport.endpoint(party);
      if (party == 0) {
        endpoint.send(1, "x", Bytes(100, 0));
        endpoint.send(2, "x", Bytes(50, 0));
      } else {
        endpoint.recv(0, "x");
      }
    });
  };

  Network network(fast_config(3));
  TcpFabric fabric(fast_config(3));
  drive(network);
  drive(fabric);

  const TrafficSnapshot expected = network.traffic();
  const TrafficSnapshot actual = fabric.traffic();
  EXPECT_EQ(actual.total_messages, expected.total_messages);
  EXPECT_EQ(actual.total_bytes, expected.total_bytes);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(actual.links[i][j].messages, expected.links[i][j].messages)
          << "link " << i << "->" << j;
      EXPECT_EQ(actual.links[i][j].bytes, expected.links[i][j].bytes)
          << "link " << i << "->" << j;
    }
  }

  fabric.reset_traffic();
  EXPECT_EQ(fabric.traffic().total_messages, 0u);
}

TEST(TcpTransportTest, DroppedMessagesStillMeteredButNotDelivered) {
  class DropAll final : public FaultInjector {
   public:
    FaultDecision on_message(const Message&) override {
      return FaultDecision{.drop = true};
    }
  };
  NetworkConfig config = fast_config(2);
  config.recv_timeout = std::chrono::milliseconds(30);
  TcpFabric fabric(config);
  fabric.set_fault_injector(std::make_shared<DropAll>());
  fabric.endpoint(0).send(1, "gone", Bytes{1});
  EXPECT_EQ(fabric.traffic().total_messages, 1u);
  EXPECT_THROW(fabric.endpoint(1).recv(0, "gone"), TimeoutError);
}

TEST(TcpTransportTest, CorruptedPayloadDelivered) {
  class CorruptAll final : public FaultInjector {
   public:
    FaultDecision on_message(const Message&) override {
      return FaultDecision{.corrupt = true};
    }
  };
  TcpFabric fabric(fast_config(2));
  fabric.set_fault_injector(std::make_shared<CorruptAll>());
  fabric.endpoint(0).send(1, "bits", Bytes{0x00});
  EXPECT_EQ(fabric.endpoint(1).recv(0, "bits"), Bytes{0xa5});
}

TEST(TcpTransportTest, ManyConcurrentMessages) {
  TcpFabric fabric(fast_config(3));
  std::atomic<int> received{0};
  run_parties(3, [&](PartyId party) {
    Endpoint endpoint = fabric.endpoint(party);
    for (int round = 0; round < 50; ++round) {
      const std::string tag = "round/" + std::to_string(round);
      for (int other = 0; other < 3; ++other) {
        if (other != party) {
          endpoint.send(other, tag, Bytes{static_cast<std::uint8_t>(party)});
        }
      }
      for (int other = 0; other < 3; ++other) {
        if (other != party) {
          const Bytes payload = endpoint.recv(other, tag);
          EXPECT_EQ(payload[0], static_cast<std::uint8_t>(other));
          received.fetch_add(1);
        }
      }
    }
  });
  EXPECT_EQ(received.load(), 3 * 50 * 2);
}

TEST(TcpTransportTest, ExplicitRendezvousBetweenTransports) {
  // Two directly-constructed transports (no fabric): ephemeral ports,
  // addresses exchanged after binding, concurrent connect() as two
  // processes would do it.
  NetworkConfig config = fast_config(2);
  TcpTransport alice(0, "127.0.0.1:0", config);
  TcpTransport bob(1, "127.0.0.1:0", config);
  const std::vector<std::string> addresses = {
      "127.0.0.1:" + std::to_string(alice.bound_port()),
      "127.0.0.1:" + std::to_string(bob.bound_port()),
  };
  std::thread bob_thread([&] { bob.connect(addresses); });
  alice.connect(addresses);
  bob_thread.join();

  alice.endpoint(0).send(1, "hi", Bytes{42});
  EXPECT_EQ(bob.endpoint(1).recv(0, "hi"), Bytes{42});
  // Only the local party's endpoint is served.
  EXPECT_THROW(alice.endpoint(1), InvalidArgument);

  // Graceful shutdown is idempotent and leaves the other side's recv
  // timing out rather than crashing.
  alice.shutdown();
  alice.shutdown();
  EXPECT_THROW(
      bob.endpoint(1).recv(0, "after", std::chrono::milliseconds(30)),
      TimeoutError);
}

TEST(TcpTransportTest, ConnectTimesOutAgainstDeadAddress) {
  NetworkConfig config = fast_config(2);
  config.connect.connect_timeout = std::chrono::milliseconds(200);
  config.connect.initial_backoff = std::chrono::milliseconds(20);
  TcpTransport transport(1, "127.0.0.1:0", config);
  // Port 1 on localhost refuses connections; the retry budget expires.
  const std::vector<std::string> addresses = {
      "127.0.0.1:1",
      "127.0.0.1:" + std::to_string(transport.bound_port()),
  };
  EXPECT_THROW(transport.connect(addresses), TimeoutError);
}

TEST(TcpTransportTest, InjectedDelayHoldsDelivery) {
  class DelayAll final : public FaultInjector {
   public:
    FaultDecision on_message(const Message&) override {
      return FaultDecision{.delay = std::chrono::milliseconds(80)};
    }
  };
  TcpFabric fabric(fast_config(2));
  fabric.set_fault_injector(std::make_shared<DelayAll>());
  const auto start = std::chrono::steady_clock::now();
  run_parties(2, [&](PartyId party) {
    Endpoint endpoint = fabric.endpoint(party);
    if (party == 0) {
      endpoint.send(1, "slow", Bytes{7});
    } else {
      EXPECT_EQ(endpoint.recv(0, "slow"), Bytes{7});
    }
  });
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(75));
}

TEST(NetworkLatencyTest, EmulatedLatencyDoesNotBlockTheSender) {
  // Satellite regression: the sender stamps delivery times instead of
  // sleeping, so fanning out N messages costs ~1 link latency at the
  // receivers, not N at the sender.
  NetworkConfig config;
  config.num_parties = 3;
  config.emulate_latency = true;
  config.link_latency = std::chrono::microseconds(50000);  // 50 ms
  Network network(config);

  Endpoint sender = network.endpoint(0);
  const auto send_start = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) {
    sender.send(1, "t/" + std::to_string(i), Bytes{1});
    sender.send(2, "t/" + std::to_string(i), Bytes{1});
  }
  const auto send_elapsed = std::chrono::steady_clock::now() - send_start;
  // 8 messages x 50 ms would be 400 ms under the old sender-side
  // sleep; stamping is effectively instant.
  EXPECT_LT(send_elapsed, std::chrono::milliseconds(40));

  // The latency is still charged: nothing is deliverable early...
  Bytes out;
  EXPECT_FALSE(network.endpoint(1).try_recv(0, "t/0", out));
  // ...but all messages become deliverable one overlapped latency
  // later (plus scheduling slack).
  const auto recv_start = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(network.endpoint(1).recv(0, "t/" + std::to_string(i)),
              Bytes{1});
    EXPECT_EQ(network.endpoint(2).recv(0, "t/" + std::to_string(i)),
              Bytes{1});
  }
  const auto recv_elapsed = std::chrono::steady_clock::now() - recv_start;
  EXPECT_LT(recv_elapsed, std::chrono::milliseconds(200));
}

TEST(TcpTransportDynamicTest, ClientChurnKeepsLinksAndHealthClean) {
  // Fleet pods accept clients dynamically; clients attach, speak,
  // leave, and re-attach at will (possibly while another client is
  // mid-conversation).  Every reconnect must replace the stale link
  // (reaping the old reader thread), every departure must drop the
  // peer from HealthState, and sends to a departed client must be
  // dropped — not fatal.
  obs::set_health_enabled(true);
  obs::HealthState::global().reset();
  NetworkConfig config = fast_config(3);
  config.recv_timeout = std::chrono::milliseconds(5000);
  TcpTransport server(0, "127.0.0.1:0", config);
  const std::vector<std::string> addresses = {
      "127.0.0.1:" + std::to_string(server.bound_port()), "", ""};
  server.connect(addresses, {});
  server.accept_dynamic_peers(1);

  constexpr int kRounds = 3;
  auto churn = [&](PartyId id) {
    for (int round = 0; round < kRounds; ++round) {
      TcpTransport client(id, "127.0.0.1:0", config);
      client.connect(addresses, {0});
      const std::string suffix =
          std::to_string(id) + "." + std::to_string(round);
      client.endpoint(id).send(0, "hello." + suffix,
                               Bytes{static_cast<std::uint8_t>(round)});
      EXPECT_EQ(client.endpoint(id).recv(0, "ack." + suffix),
                Bytes{static_cast<std::uint8_t>(round)});
      client.shutdown();
    }
  };
  std::thread churn1([&] { churn(1); });
  std::thread churn2([&] { churn(2); });

  // The server answers each hello in order per client; tag-keyed
  // mailboxes buffer whatever interleaving the churn produces.  The
  // hello arriving proves the round's fresh link is installed, so the
  // ack below travels over it.
  Endpoint endpoint = server.endpoint(0);
  for (int round = 0; round < kRounds; ++round) {
    for (const PartyId id : {PartyId{1}, PartyId{2}}) {
      const std::string suffix =
          std::to_string(id) + "." + std::to_string(round);
      EXPECT_EQ(endpoint.recv(id, "hello." + suffix),
                Bytes{static_cast<std::uint8_t>(round)});
      endpoint.send(id, "ack." + suffix,
                    Bytes{static_cast<std::uint8_t>(round)});
    }
  }
  churn1.join();
  churn2.join();

  // Give the reader threads a beat to observe the final EOFs, then
  // check the departures registered: both clients out of the health
  // view, and a send to a gone client is a metered drop, not a throw.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (const auto& sample : obs::HealthState::global().peers()) {
    EXPECT_NE(sample.peer, 1);
    EXPECT_NE(sample.peer, 2);
  }
  EXPECT_NO_THROW(endpoint.send(1, "into.the.void", Bytes{9}));

  // One more attach proves the acceptor outlives arbitrary churn.
  TcpTransport again(1, "127.0.0.1:0", config);
  again.connect(addresses, {0});
  again.endpoint(1).send(0, "hello.again", Bytes{7});
  EXPECT_EQ(endpoint.recv(1, "hello.again"), Bytes{7});
  bool seen = false;
  for (const auto& sample : obs::HealthState::global().peers()) {
    seen = seen || sample.peer == 1;
  }
  EXPECT_TRUE(seen);
  again.shutdown();
  server.shutdown();
  obs::HealthState::global().reset();
  obs::set_health_enabled(false);
}

}  // namespace
}  // namespace trustddl::net
