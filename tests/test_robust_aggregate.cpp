#include "mpc/robust_aggregate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "numeric/fixed_point.hpp"
#include "test_util.hpp"

namespace trustddl::mpc {
namespace {

using testing::ThreePartyHarness;
using testing::random_real;

constexpr int kF = fx::kDefaultFracBits;
// Scaled averages pay one fixed-point multiply (±1 ulp per summand)
// plus one truncation (±1 ulp, +1 carry under masked open).
constexpr double kAvgTol = 8.0 / (1 << kF);

/// K owner tensors secret-shared to the three parties, plus a dealer.
struct AggFixture {
  std::vector<RealTensor> reals;            ///< decoded (post-to_ring) values
  std::vector<std::array<PartyShare, 3>> views;
  std::shared_ptr<SharedDealer> dealer;

  AggFixture(std::size_t k, const Shape& shape, std::uint64_t seed,
             double bound = 4.0) {
    Rng rng(seed);
    for (std::size_t owner = 0; owner < k; ++owner) {
      const RingTensor ring = to_ring(random_real(shape, rng, bound), kF);
      reals.push_back(to_real(ring, kF));
      views.push_back(share_secret(ring, rng));
    }
    dealer = std::make_shared<SharedDealer>(seed + 4242, kF);
  }

  explicit AggFixture(const std::vector<RealTensor>& values,
                      std::uint64_t seed) {
    Rng rng(seed);
    for (const RealTensor& value : values) {
      const RingTensor ring = to_ring(value, kF);
      reals.push_back(to_real(ring, kF));
      views.push_back(share_secret(ring, rng));
    }
    dealer = std::make_shared<SharedDealer>(seed + 4242, kF);
  }

  std::vector<PartyShare> party_inputs(int party) const {
    std::vector<PartyShare> inputs;
    for (const auto& view : views) {
      inputs.push_back(view[static_cast<std::size_t>(party)]);
    }
    return inputs;
  }
};

/// Run the eager aggregate at every party and open the result.
std::array<RealTensor, 3> run_aggregate(const AggFixture& fixture,
                                        const AggregateOptions& options,
                                        AggregateStats* stats = nullptr) {
  ThreePartyHarness harness;
  std::array<RealTensor, 3> results;
  harness.run([&](PartyContext& ctx) {
    const auto index = static_cast<std::size_t>(ctx.party);
    LocalTripleSource source(fixture.dealer, ctx.party);
    AggregateStats local_stats;
    PartyShare agg = robust_aggregate(ctx, source,
                                      fixture.party_inputs(ctx.party), options,
                                      &local_stats);
    if (ctx.party == 0 && stats != nullptr) {
      *stats = local_stats;
    }
    results[index] = to_real(open_value(ctx, agg), kF);
  });
  return results;
}

TEST(RobustAggregateTest, TrimmedMeanMatchesReference) {
  AggFixture fixture(5, Shape{3, 4}, 101);
  AggregateOptions options{AggregationRule::kTrimmedMean, 1,
                           TruncationMode::kLocal};
  const RealTensor expected =
      robust_aggregate_reference(fixture.reals, options);
  for (const auto& result : run_aggregate(fixture, options)) {
    EXPECT_LT(max_abs_diff(result, expected), kAvgTol);
  }
}

TEST(RobustAggregateTest, OddMedianSelectsExactValue) {
  AggFixture fixture(5, Shape{7}, 102);
  AggregateOptions options{AggregationRule::kMedian, 0,
                           TruncationMode::kLocal};
  // n_sel == 1: no rescale, so the aggregate IS the selected shared
  // value — decoded result equals the reference exactly.
  const RealTensor expected =
      robust_aggregate_reference(fixture.reals, options);
  for (const auto& result : run_aggregate(fixture, options)) {
    EXPECT_LT(max_abs_diff(result, expected), 1e-12);
  }
}

TEST(RobustAggregateTest, EvenMedianAveragesMiddlePair) {
  AggFixture fixture(4, Shape{2, 3}, 103);
  AggregateOptions options{AggregationRule::kMedian, 0,
                           TruncationMode::kLocal};
  const RealTensor expected =
      robust_aggregate_reference(fixture.reals, options);
  for (const auto& result : run_aggregate(fixture, options)) {
    EXPECT_LT(max_abs_diff(result, expected), kAvgTol);
  }
}

TEST(RobustAggregateTest, MeanRuleMatchesPlainAverage) {
  AggFixture fixture(4, Shape{6}, 104);
  AggregateOptions options{AggregationRule::kMean, 0, TruncationMode::kLocal};
  RealTensor expected(Shape{6});
  for (std::size_t c = 0; c < expected.size(); ++c) {
    double sum = 0.0;
    for (const RealTensor& value : fixture.reals) {
      sum += value[c];
    }
    expected[c] = sum / 4.0;
  }
  for (const auto& result : run_aggregate(fixture, options)) {
    EXPECT_LT(max_abs_diff(result, expected), kAvgTol);
  }
}

TEST(RobustAggregateTest, TiesBreakByOwnerIndex) {
  // Three owners submit the identical tensor and two submit outliers:
  // every pairwise comparison among the clones opens sign 0, so the
  // rank permutation is decided purely by the index tie-break.
  Rng rng(105);
  const RealTensor base = random_real(Shape{5}, rng, 2.0);
  RealTensor high = base;
  RealTensor low = base;
  for (std::size_t i = 0; i < base.size(); ++i) {
    high[i] += 3.0;
    low[i] -= 3.0;
  }
  AggFixture fixture({base, high, base, low, base}, 105);
  AggregateOptions options{AggregationRule::kTrimmedMean, 1,
                           TruncationMode::kLocal};
  const RealTensor expected =
      robust_aggregate_reference(fixture.reals, options);
  for (const auto& result : run_aggregate(fixture, options)) {
    EXPECT_LT(max_abs_diff(result, expected), kAvgTol);
  }
}

TEST(RobustAggregateTest, SingleInputPassesThrough) {
  AggFixture fixture(1, Shape{3}, 106);
  AggregateOptions options{AggregationRule::kTrimmedMean, 2,
                           TruncationMode::kLocal};
  AggregateStats stats;
  for (const auto& result : run_aggregate(fixture, options, &stats)) {
    EXPECT_LT(max_abs_diff(result, fixture.reals[0]), 1e-12);
  }
  EXPECT_EQ(stats.selected_per_coord, 1u);
  EXPECT_EQ(stats.comparisons, 0u);
}

TEST(RobustAggregateTest, TwoInputsClampTrimToPlainMean) {
  // (K-1)/2 == 0 clamps the trim, so K=2 degenerates to the mean and
  // must not spend any comparison material.
  AggFixture fixture(2, Shape{1}, 107);
  AggregateOptions options{AggregationRule::kTrimmedMean, 1,
                           TruncationMode::kLocal};
  AggregateStats stats;
  RealTensor expected(Shape{1});
  expected[0] = (fixture.reals[0][0] + fixture.reals[1][0]) / 2.0;
  for (const auto& result : run_aggregate(fixture, options, &stats)) {
    EXPECT_LT(max_abs_diff(result, expected), kAvgTol);
  }
  EXPECT_EQ(stats.comparisons, 0u);
  EXPECT_EQ(stats.selected_per_coord, 2u);
}

TEST(RobustAggregateTest, MaskedOpenTruncationMatchesReference) {
  AggFixture fixture(5, Shape{4}, 108);
  AggregateOptions options{AggregationRule::kTrimmedMean, 1,
                           TruncationMode::kMaskedOpen};
  const RealTensor expected =
      robust_aggregate_reference(fixture.reals, options);
  for (const auto& result : run_aggregate(fixture, options)) {
    EXPECT_LT(max_abs_diff(result, expected), kAvgTol);
  }
}

TEST(RobustAggregateTest, PoisonersAreOutvotedAcrossKAndTrim) {
  // K = 3..7 with 0..2 poisoners (never more than the trim can
  // absorb): the trimmed mean must stay inside the honest envelope.
  for (std::size_t k = 3; k <= 7; ++k) {
    const std::size_t max_poisoners = std::min<std::size_t>(2, (k - 1) / 2);
    for (std::size_t poisoners = 0; poisoners <= max_poisoners; ++poisoners) {
      Rng rng(1000 + k * 10 + poisoners);
      const Shape shape{6};
      const RealTensor base = random_real(shape, rng, 1.0);
      std::vector<RealTensor> values;
      for (std::size_t owner = 0; owner < k; ++owner) {
        RealTensor value = base;
        for (std::size_t i = 0; i < value.size(); ++i) {
          value[i] += rng.next_double(-0.05, 0.05);
        }
        if (owner < poisoners) {
          // Alternate scaling directions so poisoners attack both
          // tails of the per-coordinate order.
          const double factor = (owner % 2 == 0) ? 40.0 : -40.0;
          for (std::size_t i = 0; i < value.size(); ++i) {
            value[i] *= factor;
          }
        }
        values.push_back(value);
      }
      AggFixture fixture(values, 2000 + k * 10 + poisoners);
      AggregateOptions options{AggregationRule::kTrimmedMean,
                               std::max<std::size_t>(poisoners, 1),
                               TruncationMode::kLocal};
      const RealTensor expected =
          robust_aggregate_reference(fixture.reals, options);
      const auto results = run_aggregate(fixture, options);
      for (const auto& result : results) {
        EXPECT_LT(max_abs_diff(result, expected), kAvgTol)
            << "k=" << k << " poisoners=" << poisoners;
        for (std::size_t c = 0; c < result.size(); ++c) {
          double honest_lo = 1e30;
          double honest_hi = -1e30;
          for (std::size_t owner = poisoners; owner < k; ++owner) {
            honest_lo = std::min(honest_lo, fixture.reals[owner][c]);
            honest_hi = std::max(honest_hi, fixture.reals[owner][c]);
          }
          EXPECT_GE(result[c], honest_lo - kAvgTol)
              << "k=" << k << " poisoners=" << poisoners << " c=" << c;
          EXPECT_LE(result[c], honest_hi + kAvgTol)
              << "k=" << k << " poisoners=" << poisoners << " c=" << c;
        }
      }
    }
  }
}

TEST(RobustAggregateTest, PreparedAggregatesShareOpeningRounds) {
  // Three parameters aggregated against ONE batch must flush exactly
  // twice under local truncation (Beaver masks, then β) and three
  // times under masked-open (… then the truncation openings).
  AggFixture fx_a(5, Shape{3, 2}, 110);
  AggFixture fx_b(5, Shape{4}, 111);
  AggFixture fx_c(5, Shape{2, 2}, 112);
  for (const TruncationMode mode :
       {TruncationMode::kLocal, TruncationMode::kMaskedOpen}) {
    const std::uint64_t expected_flushes =
        mode == TruncationMode::kLocal ? 2u : 3u;
    AggregateOptions options{AggregationRule::kTrimmedMean, 1, mode};
    ThreePartyHarness harness;
    std::array<std::array<RealTensor, 3>, 3> results;
    harness.run([&](PartyContext& ctx) {
      const auto index = static_cast<std::size_t>(ctx.party);
      OpenBatch batch(ctx);
      std::array<DeferredShare, 3> deferred;
      std::array<const AggFixture*, 3> fixtures{&fx_a, &fx_b, &fx_c};
      std::array<std::unique_ptr<LocalTripleSource>, 3> sources;
      for (std::size_t i = 0; i < 3; ++i) {
        sources[i] = std::make_unique<LocalTripleSource>(fixtures[i]->dealer,
                                                         ctx.party);
        deferred[i] = robust_aggregate_prepare(
            batch, *sources[i], fixtures[i]->party_inputs(ctx.party),
            options);
      }
      batch.flush_all();
      EXPECT_EQ(batch.flushes(), expected_flushes);
      for (std::size_t i = 0; i < 3; ++i) {
        results[i][index] = to_real(open_value(ctx, deferred[i].take()), kF);
      }
    });
    for (std::size_t i = 0; i < 3; ++i) {
      std::array<const AggFixture*, 3> fixtures{&fx_a, &fx_b, &fx_c};
      const RealTensor expected =
          robust_aggregate_reference(fixtures[i]->reals, options);
      for (const auto& result : results[i]) {
        EXPECT_LT(max_abs_diff(result, expected), kAvgTol);
      }
    }
  }
}

TEST(RobustAggregateTest, StatsFormAClosedLedger) {
  AggFixture fixture(6, Shape{3, 3}, 113);
  AggregateOptions options{AggregationRule::kTrimmedMean, 2,
                           TruncationMode::kLocal};
  AggregateStats stats;
  run_aggregate(fixture, options, &stats);
  EXPECT_EQ(stats.values_submitted, 6u * 9u);
  EXPECT_EQ(stats.values_aggregated + stats.values_trimmed,
            stats.values_submitted);
  EXPECT_EQ(stats.selected_per_coord, 2u);
  EXPECT_EQ(stats.comparisons, 15u * 9u);
}

TEST(RobustAggregateTest, DemandMirrorsConsumption) {
  const Shape shape{3, 4};
  AggregateOptions trimmed{AggregationRule::kTrimmedMean, 1,
                           TruncationMode::kMaskedOpen};
  AggregateDemand demand = aggregate_demand(5, shape, trimmed);
  EXPECT_TRUE(demand.needs_comparison);
  EXPECT_EQ(demand.comparison_shape, (Shape{10, 12}));
  EXPECT_TRUE(demand.needs_trunc_pair);
  EXPECT_EQ(demand.trunc_shape, shape);

  AggregateOptions median{AggregationRule::kMedian, 0,
                          TruncationMode::kMaskedOpen};
  demand = aggregate_demand(5, shape, median);
  EXPECT_TRUE(demand.needs_comparison);
  EXPECT_FALSE(demand.needs_trunc_pair);  // n_sel == 1: no rescale

  AggregateOptions mean{AggregationRule::kMean, 0, TruncationMode::kLocal};
  demand = aggregate_demand(5, shape, mean);
  EXPECT_FALSE(demand.needs_comparison);
  EXPECT_FALSE(demand.needs_trunc_pair);

  demand = aggregate_demand(1, shape, trimmed);
  EXPECT_FALSE(demand.needs_comparison);
  EXPECT_FALSE(demand.needs_trunc_pair);
}

TEST(RobustAggregateReferenceTest, MedianOfKnownValues) {
  std::vector<RealTensor> values;
  for (const double v : {3.0, 1.0, 2.0}) {
    RealTensor t(Shape{1});
    t[0] = v;
    values.push_back(t);
  }
  AggregateOptions options{AggregationRule::kMedian, 0,
                           TruncationMode::kLocal};
  const RealTensor median = robust_aggregate_reference(values, options);
  EXPECT_DOUBLE_EQ(median[0], 2.0);
}

}  // namespace
}  // namespace trustddl::mpc
