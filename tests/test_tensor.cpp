#include "numeric/tensor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "numeric/fixed_point.hpp"

namespace trustddl {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  RealTensor t(Shape{2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i], 0.0);
  }
}

TEST(TensorTest, DataSizeMismatchThrows) {
  EXPECT_THROW(RealTensor(Shape{2, 2}, std::vector<double>{1.0, 2.0}),
               InvalidArgument);
}

TEST(TensorTest, FullAndAt) {
  auto t = RealTensor::full(Shape{2, 2}, 7.0);
  t.at(0, 1) = 3.0;
  EXPECT_EQ(t.at(0, 0), 7.0);
  EXPECT_EQ(t.at(0, 1), 3.0);
  EXPECT_EQ(t[1], 3.0);  // row-major layout
}

TEST(TensorTest, AddSubtract) {
  RealTensor a(Shape{2}, {1.0, 2.0});
  RealTensor b(Shape{2}, {10.0, 20.0});
  EXPECT_EQ((a + b).values(), (AlignedVector<double>{11.0, 22.0}));
  EXPECT_EQ((b - a).values(), (AlignedVector<double>{9.0, 18.0}));
  EXPECT_EQ((-a).values(), (AlignedVector<double>{-1.0, -2.0}));
}

TEST(TensorTest, ShapeMismatchThrows) {
  RealTensor a(Shape{2});
  RealTensor b(Shape{3});
  EXPECT_THROW(a += b, InvalidArgument);
}

TEST(TensorTest, RingArithmeticWraps) {
  RingTensor a(Shape{1}, {~std::uint64_t{0}});
  RingTensor b(Shape{1}, {1});
  EXPECT_EQ((a + b)[0], 0u);
  RingTensor zero(Shape{1}, {0});
  EXPECT_EQ((zero - b)[0], ~std::uint64_t{0});
}

TEST(TensorTest, MatmulKnownValues) {
  RealTensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  RealTensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  const RealTensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.values(), (AlignedVector<double>{58, 64, 139, 154}));
}

TEST(TensorTest, MatmulAgainstNaiveReference) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 1 + rng.next_below(8);
    const std::size_t k = 1 + rng.next_below(8);
    const std::size_t n = 1 + rng.next_below(8);
    RealTensor a(Shape{m, k});
    RealTensor b(Shape{k, n});
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = rng.next_double(-2, 2);
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = rng.next_double(-2, 2);
    }
    const RealTensor fast = matmul(a, b);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0;
        for (std::size_t p = 0; p < k; ++p) {
          acc += a.at(i, p) * b.at(p, j);
        }
        EXPECT_NEAR(fast.at(i, j), acc, 1e-9);
      }
    }
  }
}

TEST(TensorTest, MatmulDimensionMismatchThrows) {
  RealTensor a(Shape{2, 3});
  RealTensor b(Shape{2, 3});
  EXPECT_THROW(matmul(a, b), InvalidArgument);
}

TEST(TensorTest, Transpose) {
  RealTensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const RealTensor t = transpose(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.values(), (AlignedVector<double>{1, 4, 2, 5, 3, 6}));
}

TEST(TensorTest, HadamardAndScale) {
  RealTensor a(Shape{3}, {1, 2, 3});
  RealTensor b(Shape{3}, {4, 5, 6});
  EXPECT_EQ(hadamard(a, b).values(), (AlignedVector<double>{4, 10, 18}));
  EXPECT_EQ(scale(a, 2.0).values(), (AlignedVector<double>{2, 4, 6}));
}

TEST(TensorTest, SumAndSumRows) {
  RealTensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(sum(a), 21.0);
  EXPECT_EQ(sum_rows(a).values(), (AlignedVector<double>{5, 7, 9}));
}

TEST(TensorTest, Argmax) {
  RealTensor a(Shape{5}, {0.1, 0.9, 0.3, 0.9, 0.2});
  EXPECT_EQ(argmax(a), 1u);  // first maximum wins
}

TEST(TensorTest, ReshapePreservesData) {
  RealTensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const RealTensor b = a.reshape(Shape{3, 2});
  EXPECT_EQ(b.values(), a.values());
  EXPECT_THROW(a.reshape(Shape{4, 2}), InvalidArgument);
}

TEST(TensorTest, RingRealConversionRoundTrip) {
  Rng rng(77);
  RealTensor real(Shape{4, 4});
  for (std::size_t i = 0; i < real.size(); ++i) {
    real[i] = rng.next_double(-100, 100);
  }
  const RealTensor round_tripped =
      to_real(to_ring(real, fx::kDefaultFracBits), fx::kDefaultFracBits);
  EXPECT_LT(max_abs_diff(real, round_tripped), fx::epsilon() * 2);
}

TEST(TensorTest, TruncateRescalesRingProducts) {
  const RealTensor x(Shape{2}, {1.5, -2.0});
  const RealTensor y(Shape{2}, {4.0, 3.0});
  const RingTensor product =
      hadamard(to_ring(x, 20), to_ring(y, 20));  // scale 2^40
  const RealTensor rescaled = to_real(truncate(product, 20), 20);
  EXPECT_NEAR(rescaled[0], 6.0, 1e-4);
  EXPECT_NEAR(rescaled[1], -6.0, 1e-4);
}

TEST(TensorTest, RingDistanceDetectsCorruption) {
  RingTensor a(Shape{3}, {10, 20, 30});
  RingTensor b = a;
  EXPECT_EQ(ring_distance(a, b), 0u);
  b[1] += 5;
  EXPECT_EQ(ring_distance(a, b), 5u);
}

TEST(TensorTest, EqualityOperators) {
  RingTensor a(Shape{2}, {1, 2});
  RingTensor b(Shape{2}, {1, 2});
  RingTensor c(Shape{2}, {1, 3});
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a != c);
}

TEST(TensorTest, ShapeToString) {
  EXPECT_EQ(shape_to_string(Shape{2, 3, 4}), "[2, 3, 4]");
  EXPECT_EQ(shape_to_string(Shape{}), "[]");
}

}  // namespace
}  // namespace trustddl
