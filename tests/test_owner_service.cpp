// Model-owner service (core/owner_service.hpp): triple-dealing
// consistency, collective Softmax/reveal handling, straggler and
// garbage tolerance, shutdown semantics.
#include "core/owner_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/owner_link.hpp"
#include "mpc/robust_reconstruct.hpp"
#include "net/runtime.hpp"
#include "nn/layers.hpp"
#include "test_util.hpp"

namespace trustddl::core {
namespace {

using testing::random_real;

constexpr int kF = fx::kDefaultFracBits;

struct ServiceHarness {
  net::Network network;
  ModelOwnerService service;
  std::thread thread;

  explicit ServiceHarness(std::chrono::milliseconds collect =
                              std::chrono::milliseconds(300))
      : network(net::NetworkConfig{.num_parties = kNumActors,
                                   .recv_timeout =
                                       std::chrono::milliseconds(2000)}),
        service(network.endpoint(kModelOwner), [&] {
          OwnerServiceConfig config;
          config.frac_bits = kF;
          config.collect_timeout = collect;
          return config;
        }()) {
    thread = std::thread([this] { service.run(); });
  }

  /// Wait for the service loop to finish (call before asserting on
  /// service state; the destructor joins too if not already joined).
  void join() {
    if (thread.joinable()) {
      thread.join();
    }
  }

  ~ServiceHarness() { join(); }
};

TEST(OwnerServiceTest, DealsConsistentTriplesToAllParties) {
  ServiceHarness harness;
  std::array<mpc::BeaverTripleShare, 3> triples;
  net::run_parties(3, [&](net::PartyId party) {
    OwnerLink link(harness.network.endpoint(party), party);
    triples[static_cast<std::size_t>(party)] =
        link.matmul_triple(2, 3, 2);
    link.stop();
  });
  // The dealt views must reconstruct a consistent triple: c == a x b.
  const auto reconstruct = [&](auto member) {
    std::array<mpc::PartyShare, 3> views = {member(triples[0]),
                                            member(triples[1]),
                                            member(triples[2])};
    return mpc::reconstruct(views);
  };
  const RingTensor a =
      reconstruct([](const mpc::BeaverTripleShare& t) { return t.a; });
  const RingTensor b =
      reconstruct([](const mpc::BeaverTripleShare& t) { return t.b; });
  const RingTensor c =
      reconstruct([](const mpc::BeaverTripleShare& t) { return t.c; });
  EXPECT_EQ(matmul(a, b), c);
}

TEST(OwnerServiceTest, SoftmaxCollectiveMatchesPlaintext) {
  ServiceHarness harness;
  Rng rng(1);
  const RealTensor logits = random_real(Shape{2, 5}, rng, 3.0);
  const auto views = mpc::share_secret(to_ring(logits, kF), rng);

  std::array<mpc::PartyShare, 3> p_views;
  net::run_parties(3, [&](net::PartyId party) {
    OwnerLink link(harness.network.endpoint(party), party);
    p_views[static_cast<std::size_t>(party)] =
        link.softmax_forward(views[static_cast<std::size_t>(party)]);
    link.stop();
  });
  const RealTensor probabilities =
      to_real(mpc::reconstruct(p_views), kF);
  EXPECT_LT(max_abs_diff(probabilities, nn::softmax_rows(logits)), 1e-4);
}

TEST(OwnerServiceTest, SoftmaxToleratesOneGarbageSender) {
  ServiceHarness harness;
  Rng rng(2);
  const RealTensor logits = random_real(Shape{1, 4}, rng, 2.0);
  auto views = mpc::share_secret(to_ring(logits, kF), rng);
  // Party 2 sends garbage shares to the owner.
  for (std::size_t i = 0; i < views[2].second.size(); ++i) {
    views[2].second[i] += (1ull << 50) + i;
  }
  std::array<mpc::PartyShare, 3> p_views;
  net::run_parties(3, [&](net::PartyId party) {
    OwnerLink link(harness.network.endpoint(party), party);
    p_views[static_cast<std::size_t>(party)] =
        link.softmax_forward(views[static_cast<std::size_t>(party)]);
    link.stop();
  });
  const RealTensor probabilities = to_real(mpc::reconstruct(p_views), kF);
  EXPECT_LT(max_abs_diff(probabilities, nn::softmax_rows(logits)), 1e-4);
  EXPECT_GE(harness.service.reconstruction_anomalies(), 1u);
}

TEST(OwnerServiceTest, RevealStoredUnderKey) {
  Rng rng(3);
  const RealTensor secret = random_real(Shape{3}, rng, 5.0);
  const auto views = mpc::share_secret(to_ring(secret, kF), rng);
  ServiceHarness harness;
  net::run_parties(3, [&](net::PartyId party) {
    OwnerLink link(harness.network.endpoint(party), party);
    link.reveal("weights/final", views[static_cast<std::size_t>(party)]);
    link.stop();
  });
  harness.join();  // the service must have drained the reveal group
  const auto it = harness.service.revealed().find("weights/final");
  ASSERT_NE(it, harness.service.revealed().end());
  EXPECT_LT(max_abs_diff(to_real(it->second, kF), secret), 1e-5);
}

TEST(OwnerServiceTest, ShutsDownWithTwoStopsAndSilentThirdParty) {
  ServiceHarness harness(std::chrono::milliseconds(150));
  net::run_parties(2, [&](net::PartyId party) {
    OwnerLink link(harness.network.endpoint(party), party);
    (void)link.mul_triple(Shape{2});
    link.stop();
  });
  // The harness destructor joins; reaching here without hanging IS the
  // assertion (party 2 never spoke).
  SUCCEED();
}

TEST(OwnerServiceTest, StragglerServedFromProcessedGroupCache) {
  ServiceHarness harness(std::chrono::milliseconds(100));
  Rng rng(4);
  const RealTensor logits = random_real(Shape{1, 3}, rng, 1.0);
  const auto views = mpc::share_secret(to_ring(logits, kF), rng);

  // Parties 0 and 1 delay their stop until the straggler is served, so
  // the scenario isolates the group cache rather than the shutdown
  // grace window.
  std::atomic<int> finished{0};
  std::array<mpc::PartyShare, 3> p_views;
  net::run_parties(3, [&](net::PartyId party) {
    if (party == 2) {
      // Arrive after the collect deadline: the group is processed with
      // two members, and the straggler must still get its cached view.
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
    OwnerLink link(harness.network.endpoint(party), party);
    p_views[static_cast<std::size_t>(party)] =
        link.softmax_forward(views[static_cast<std::size_t>(party)]);
    finished.fetch_add(1);
    while (finished.load() < 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    link.stop();
  });
  const RealTensor probabilities = to_real(mpc::reconstruct(p_views), kF);
  EXPECT_LT(max_abs_diff(probabilities, nn::softmax_rows(logits)), 1e-3);
}

}  // namespace
}  // namespace trustddl::core
