// Observability subsystem tests: metrics registry (gating, concurrency,
// snapshot determinism), protocol-phase tracer JSONL output, logger
// component overrides / prefixes / capture cap, traffic snapshot
// arithmetic and tag classing, TCP-vs-in-memory metering consistency,
// and the end-to-end malicious-inference detection event log.
//
// Suite names contain "Obs" so the CI thread-sanitizer job picks them
// up — the registry's whole point is to be hammered from kernel-pool
// workers, transport readers and party threads at once.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "core/engine.hpp"
#include "net/network.hpp"
#include "net/tcp_transport.hpp"
#include "numeric/kernels.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"

namespace trustddl {
namespace {

/// Save/restore the process-global metrics flag so tests compose in
/// one process regardless of TRUSTDDL_METRICS.
class MetricsFlagGuard {
 public:
  explicit MetricsFlagGuard(bool enabled) : saved_(obs::metrics_enabled()) {
    obs::set_metrics_enabled(enabled);
  }
  ~MetricsFlagGuard() { obs::set_metrics_enabled(saved_); }

 private:
  bool saved_;
};

std::string temp_path(const std::string& stem) {
  return testing::TempDir() + stem;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ObsMetricsTest, DisabledInstrumentsAreNoOps) {
  MetricsFlagGuard guard(false);
  auto& registry = obs::MetricsRegistry::global();
  auto& counter = registry.counter("test.disabled.counter");
  auto& gauge = registry.gauge("test.disabled.gauge");
  auto& histogram = registry.histogram("test.disabled.histogram");
  counter.reset();
  gauge.reset();
  histogram.reset();

  counter.add(7);
  gauge.add(3);
  histogram.observe(42);
  obs::count("test.disabled.counter", 5);
  obs::gauge_add("test.disabled.gauge", 5);
  obs::observe("test.disabled.histogram", 5);

  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(gauge.peak(), 0);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0u);
}

TEST(ObsMetricsTest, EnabledInstrumentsAccumulate) {
  MetricsFlagGuard guard(true);
  auto& registry = obs::MetricsRegistry::global();
  auto& counter = registry.counter("test.enabled.counter");
  auto& gauge = registry.gauge("test.enabled.gauge");
  counter.reset();
  gauge.reset();

  counter.add(2);
  counter.add();
  EXPECT_EQ(counter.value(), 3u);

  gauge.add(5);
  gauge.add(2);
  gauge.sub(6);
  EXPECT_EQ(gauge.value(), 1);
  EXPECT_EQ(gauge.peak(), 7);
}

TEST(ObsMetricsTest, HistogramBucketBoundaries) {
  MetricsFlagGuard guard(true);
  auto& histogram =
      obs::MetricsRegistry::global().histogram("test.buckets.histogram");
  histogram.reset();

  // Bucket i counts samples <= 4^i; bound(0)=1, bound(1)=4, ...
  EXPECT_EQ(obs::Histogram::bucket_bound(0), 1u);
  EXPECT_EQ(obs::Histogram::bucket_bound(1), 4u);
  EXPECT_EQ(obs::Histogram::bucket_bound(3), 64u);

  histogram.observe(0);
  histogram.observe(1);  // both land in bucket 0
  histogram.observe(2);
  histogram.observe(4);  // bucket 1
  histogram.observe(5);  // bucket 2
  // Far beyond bound(14) = 4^14: the final bucket is the overflow.
  histogram.observe(obs::Histogram::bucket_bound(14) * 100);

  EXPECT_EQ(histogram.bucket(0), 2u);
  EXPECT_EQ(histogram.bucket(1), 2u);
  EXPECT_EQ(histogram.bucket(2), 1u);
  EXPECT_EQ(histogram.bucket(obs::Histogram::kBucketCount - 1), 1u);
  EXPECT_EQ(histogram.count(), 6u);
  EXPECT_EQ(histogram.sum(),
            0u + 1 + 2 + 4 + 5 + obs::Histogram::bucket_bound(14) * 100);
}

TEST(ObsMetricsTest, RegistryReferencesSurviveReset) {
  MetricsFlagGuard guard(true);
  auto& registry = obs::MetricsRegistry::global();
  auto& counter = registry.counter("test.stable.counter");
  counter.add(9);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  counter.add(1);
  EXPECT_EQ(registry.counter("test.stable.counter").value(), 1u);
  EXPECT_EQ(&registry.counter("test.stable.counter"), &counter);
}

TEST(ObsMetricsTest, SnapshotIsSortedAndDeterministic) {
  MetricsFlagGuard guard(true);
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("test.sort.zebra").add(1);
  registry.counter("test.sort.alpha").add(2);
  registry.gauge("test.sort.gauge").add(4);

  const obs::MetricsSnapshot first = registry.snapshot();
  const obs::MetricsSnapshot second = registry.snapshot();
  ASSERT_EQ(first.counters.size(), second.counters.size());
  for (std::size_t i = 0; i + 1 < first.counters.size(); ++i) {
    EXPECT_LT(first.counters[i].first, first.counters[i + 1].first);
  }
  EXPECT_EQ(first.to_json(), second.to_json());
  EXPECT_EQ(first.counter_sum("test.sort."), 3u);
}

TEST(ObsMetricsTest, SnapshotToJsonShape) {
  MetricsFlagGuard guard(true);
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("test.json.counter").reset();
  registry.counter("test.json.counter").add(11);
  registry.gauge("test.json.gauge").reset();
  registry.gauge("test.json.gauge").add(5);
  registry.histogram("test.json.histogram").reset();
  registry.histogram("test.json.histogram").observe(3);

  const std::string json = registry.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"peak\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
}

/// Many kernel-pool workers hammering one counter, one gauge and one
/// histogram concurrently — the TSan target, and a totals check.
TEST(ObsMetricsTest, ConcurrentUpdatesFromKernelPool) {
  MetricsFlagGuard guard(true);
  auto& registry = obs::MetricsRegistry::global();
  auto& counter = registry.counter("test.concurrent.counter");
  auto& gauge = registry.gauge("test.concurrent.gauge");
  auto& histogram = registry.histogram("test.concurrent.histogram");
  counter.reset();
  gauge.reset();
  histogram.reset();

  kernels::KernelConfig config;
  config.threads = 4;
  constexpr std::size_t kIterations = 20000;
  kernels::parallel_for(config, kIterations, /*grain=*/64,
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) {
                            counter.add(1);
                            gauge.add(1);
                            gauge.sub(1);
                            histogram.observe(i % 17);
                            // Registration from multiple threads too.
                            obs::count("test.concurrent.dynamic", 1);
                          }
                        });

  EXPECT_EQ(counter.value(), kIterations);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(histogram.count(), kIterations);
  EXPECT_EQ(registry.counter("test.concurrent.dynamic").value(), kIterations);
}

TEST(ObsTraceTest, ScopedSpanFeedsMetricsCounters) {
  MetricsFlagGuard guard(true);
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("span.test.unit.us").reset();
  registry.counter("span.test.unit.count").reset();
  {
    obs::ScopedSpan span("test.unit", /*party=*/1, /*step=*/3);
  }
  {
    obs::ScopedSpan span("test.unit");
  }
  EXPECT_EQ(registry.counter("span.test.unit.count").value(), 2u);
}

TEST(ObsTraceTest, TracerWritesValidJsonl) {
  MetricsFlagGuard guard(false);
  const std::string path = temp_path("trustddl_test_obs_trace.jsonl");
  obs::Tracer::global().open(path);
  ASSERT_TRUE(obs::tracing_enabled());
  {
    obs::ScopedSpan span("test.trace.span", /*party=*/2, /*step=*/7);
  }
  obs::trace_instant("test.trace.marker", /*party=*/0, /*step=*/1,
                     "\"values\": 4");
  obs::Tracer::global().close();
  EXPECT_FALSE(obs::tracing_enabled());

  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    lines.push_back(line);
  }
  // First record is always the meta header: the wall-clock origin and
  // pid that let scripts/merge_traces.py align files from different
  // processes onto one timeline.
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_NE(lines[0].find("\"kind\": \"meta\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"wall_epoch_us\": "), std::string::npos);
  EXPECT_NE(lines[0].find("\"pid\": "), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\": \"span\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\": \"test.trace.span\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"party\": 2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"step\": 7"), std::string::npos);
  EXPECT_NE(lines[2].find("\"kind\": \"instant\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"values\": 4"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsEventTest, EventLogCapturesAndCounts) {
  MetricsFlagGuard guard(true);
  obs::MetricsRegistry::global().counter("detect.test_kind").reset();
  obs::EventLog::global().clear();

  obs::DetectionEventRecord record;
  record.party = 0;
  record.suspect = 1;
  record.step = 12;
  record.kind = "test_kind";
  record.phase = "exchange";
  record.recovery = "dropped_pair";
  obs::EventLog::global().record(record);

  ASSERT_EQ(obs::EventLog::global().size(), 1u);
  const auto events = obs::EventLog::global().snapshot();
  EXPECT_EQ(events[0].suspect, 1);
  EXPECT_STREQ(events[0].phase, "exchange");
  EXPECT_EQ(
      obs::MetricsRegistry::global().counter("detect.test_kind").value(), 1u);

  const std::string json = obs::EventLog::to_json(events);
  EXPECT_NE(json.find("\"kind\": \"test_kind\""), std::string::npos);
  EXPECT_NE(json.find("\"suspect\": 1"), std::string::npos);
  obs::EventLog::global().clear();
  EXPECT_EQ(obs::EventLog::global().size(), 0u);
}

TEST(ObsEventTest, DisabledEventLogRecordsNothing) {
  MetricsFlagGuard guard(false);
  ASSERT_FALSE(obs::events_enabled());
  obs::EventLog::global().clear();
  obs::DetectionEventRecord record;
  record.kind = "test_kind";
  obs::EventLog::global().record(record);
  EXPECT_EQ(obs::EventLog::global().size(), 0u);
}

TEST(ObsLoggerTest, ComponentLevelOverrides) {
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::kWarn);
  logger.clear_component_levels();

  EXPECT_EQ(logger.effective_level("mpc.open"), LogLevel::kWarn);
  logger.set_component_level("mpc.open", LogLevel::kDebug);
  logger.set_component_level("net.tcp", LogLevel::kError);
  EXPECT_EQ(logger.effective_level("mpc.open"), LogLevel::kDebug);
  EXPECT_EQ(logger.effective_level("net.tcp"), LogLevel::kError);
  EXPECT_EQ(logger.effective_level("core.engine"), LogLevel::kWarn);
  // The macro's lock-free floor tracks the most verbose configuration.
  EXPECT_EQ(logger.min_level(), LogLevel::kDebug);

  logger.set_capture(true);
  logger.clear_captured();
  TRUSTDDL_LOG_DEBUG("mpc.open") << "visible debug line";
  TRUSTDDL_LOG_DEBUG("core.engine") << "suppressed debug line";
  TRUSTDDL_LOG_WARN("net.tcp") << "suppressed warn line";
  TRUSTDDL_LOG_ERROR("net.tcp") << "visible error line";
  const std::string captured = logger.captured();
  logger.set_capture(false);
  logger.clear_component_levels();

  EXPECT_NE(captured.find("visible debug line"), std::string::npos);
  EXPECT_NE(captured.find("visible error line"), std::string::npos);
  EXPECT_EQ(captured.find("suppressed debug line"), std::string::npos);
  EXPECT_EQ(captured.find("suppressed warn line"), std::string::npos);
}

TEST(ObsLoggerTest, LinePrefixHasTimestampAndParty) {
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::kWarn);
  logger.clear_component_levels();
  logger.set_capture(true);
  logger.clear_captured();

  Logger::set_thread_party(2);
  TRUSTDDL_LOG_WARN("test.prefix") << "tagged line";
  Logger::set_thread_party(-1);
  TRUSTDDL_LOG_WARN("test.prefix") << "untagged line";
  const std::string captured = logger.captured();
  logger.set_capture(false);

  std::istringstream in(captured);
  std::string tagged;
  std::string untagged;
  std::getline(in, tagged);
  std::getline(in, untagged);
  // ISO-8601 UTC timestamp: "2026-..T..Z" leads every line.
  ASSERT_GE(tagged.size(), 21u);
  EXPECT_EQ(tagged[4], '-');
  EXPECT_EQ(tagged[10], 'T');
  EXPECT_NE(tagged.find("Z "), std::string::npos);
  EXPECT_NE(tagged.find("[p2]"), std::string::npos);
  EXPECT_NE(tagged.find("tagged line"), std::string::npos);
  EXPECT_EQ(untagged.find("[p"), std::string::npos);
}

TEST(ObsLoggerTest, CaptureStopsAtLimitWithMarker) {
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::kWarn);
  logger.clear_component_levels();
  logger.set_capture(true);
  logger.clear_captured();

  const std::string chunk(4096, 'x');
  // ~1.5 MiB of payload against the 1 MiB cap.
  for (int i = 0; i < 384; ++i) {
    TRUSTDDL_LOG_WARN("test.capture") << chunk;
  }
  const std::string captured = logger.captured();
  logger.set_capture(false);
  logger.clear_captured();

  const std::string marker = Logger::kTruncationMarker;
  EXPECT_LE(captured.size(), Logger::kCaptureLimit + marker.size());
  ASSERT_GE(captured.size(), marker.size());
  EXPECT_EQ(captured.substr(captured.size() - marker.size()), marker);
  // The marker appears exactly once, at the end.
  EXPECT_EQ(captured.find(marker), captured.size() - marker.size());
}

TEST(ObsTrafficTest, SnapshotResetAndDiff) {
  net::NetworkConfig config;
  config.num_parties = 2;
  net::Network network(config);
  const auto alice = network.endpoint(0);
  const auto bob = network.endpoint(1);

  alice.send(1, "t", Bytes{1, 2, 3});
  (void)bob.recv(0, "t");
  const net::TrafficSnapshot before = network.traffic();
  EXPECT_EQ(before.total_messages, 1u);
  // Metered size is payload + per-message framing (tag, header); with a
  // fixed tag the framing is constant, so differences are exact.
  ASSERT_GE(before.links[0][1].bytes, 3u);
  const std::uint64_t framing = before.links[0][1].bytes - 3u;

  alice.send(1, "t", Bytes{4, 5});
  bob.send(0, "t", Bytes{6});
  (void)bob.recv(0, "t");
  (void)alice.recv(1, "t");

  const net::TrafficSnapshot delta = network.traffic().diff(before);
  EXPECT_EQ(delta.total_messages, 2u);
  EXPECT_EQ(delta.total_bytes, 3u + 2 * framing);
  EXPECT_EQ(delta.links[0][1].messages, 1u);
  EXPECT_EQ(delta.links[0][1].bytes, 2u + framing);
  EXPECT_EQ(delta.links[1][0].bytes, 1u + framing);

  net::TrafficSnapshot snapshot = network.traffic();
  snapshot.reset();
  EXPECT_EQ(snapshot.total_bytes, 0u);
  EXPECT_EQ(snapshot.total_messages, 0u);
  for (const auto& row : snapshot.links) {
    for (const auto& cell : row) {
      EXPECT_EQ(cell.bytes, 0u);
      EXPECT_EQ(cell.messages, 0u);
    }
  }

  // diff against an empty "before" is the identity.
  const net::TrafficSnapshot same = network.traffic().diff(snapshot);
  EXPECT_EQ(same.total_bytes, network.traffic().total_bytes);
}

TEST(ObsTrafficTest, TagClassCollapsesProtocolTags) {
  EXPECT_EQ(net::tag_class("12/c"), "c");
  EXPECT_EQ(net::tag_class("7/s2"), "s2");
  EXPECT_EQ(net::tag_class("3/hb"), "hb");
  EXPECT_EQ(net::tag_class("init/3"), "init");
  EXPECT_EQ(net::tag_class("e/0/p/2"), "e");
  EXPECT_EQ(net::tag_class("plain"), "plain");
}

/// The TCP fabric must meter exactly like the in-memory network: same
/// totals, same [sender][receiver] matrix, for the same message
/// pattern.  (A single TcpTransport's totals count its send row only;
/// the fabric merges per-party transports into the network's shape.)
TEST(ObsTrafficTest, TcpFabricMatchesInMemoryMetering) {
  net::NetworkConfig config;
  config.num_parties = 3;
  config.recv_timeout = std::chrono::milliseconds(2000);
  net::Network network(config);
  net::TcpFabric fabric(config);

  const auto exchange = [](net::Transport& transport) {
    // 0 -> 1 (5 bytes), 1 -> 2 (2 bytes), 2 -> 0 twice (1 + 4 bytes).
    transport.endpoint(0).send(1, "a", Bytes(5, 0xaa));
    transport.endpoint(1).send(2, "b", Bytes(2, 0xbb));
    transport.endpoint(2).send(0, "c", Bytes(1, 0xcc));
    transport.endpoint(2).send(0, "c", Bytes(4, 0xdd));
    (void)transport.endpoint(1).recv(0, "a");
    (void)transport.endpoint(2).recv(1, "b");
    (void)transport.endpoint(0).recv(2, "c");
    (void)transport.endpoint(0).recv(2, "c");
  };
  exchange(network);
  exchange(fabric);

  const net::TrafficSnapshot memory = network.traffic();
  const net::TrafficSnapshot tcp = fabric.traffic();
  EXPECT_EQ(tcp.total_messages, memory.total_messages);
  EXPECT_EQ(tcp.total_bytes, memory.total_bytes);
  ASSERT_EQ(tcp.links.size(), memory.links.size());
  for (std::size_t i = 0; i < memory.links.size(); ++i) {
    for (std::size_t j = 0; j < memory.links[i].size(); ++j) {
      EXPECT_EQ(tcp.links[i][j].messages, memory.links[i][j].messages)
          << "link " << i << "->" << j;
      EXPECT_EQ(tcp.links[i][j].bytes, memory.links[i][j].bytes)
          << "link " << i << "->" << j;
    }
  }
}

/// End-to-end: malicious inference with a consistently-corrupting
/// party 1 must attribute every attack in the structured event log —
/// correct suspect, correct phase — and agree with the CostReport and
/// the written metrics export.
TEST(ObsEngineTest, MaliciousInferenceEventLogNamesAdversary) {
  MetricsFlagGuard guard(false);  // engine arms metrics via metrics_out
  const std::string path = temp_path("trustddl_test_obs_metrics.json");

  data::SyntheticMnistConfig data_config;
  data_config.train_count = 20;
  data_config.test_count = 12;
  data_config.seed = 42;
  const auto split = data::generate_synthetic_mnist(data_config);

  core::EngineConfig config;
  config.mode = mpc::SecurityMode::kMalicious;
  config.collect_timeout = std::chrono::milliseconds(300);
  config.byzantine_party = 1;
  config.byzantine.behavior =
      mpc::ByzantineConfig::Behavior::kConsistentCorruption;
  // Local truncation drifts honest states apart under attack
  // (DESIGN.md §4) — adversarial runs need the attack-consistent mode.
  config.trunc_mode = core::TruncationMode::kMaskedOpen;
  config.metrics_out = path;

  core::TrustDdlEngine engine(nn::mnist_mlp_spec(), config);
  const data::Dataset sample = data::slice(split.test, 0, 6);
  const core::InferResult result = engine.infer(sample, /*batch_size=*/2);

  // The attack fired and was detected; every event names party 1 in
  // the exchange phase (Case 3 corruption feeds commitment and
  // exchange consistently, so attribution is unambiguous).
  EXPECT_GT(result.cost.share_auth_failures, 0u);
  const auto events = obs::EventLog::global().snapshot();
  ASSERT_EQ(events.size(), result.cost.share_auth_failures);
  for (const auto& event : events) {
    EXPECT_EQ(event.suspect, 1);
    EXPECT_NE(event.party, 1);
    EXPECT_STREQ(event.kind, "share_auth_failure");
    EXPECT_STREQ(event.phase, "exchange");
    EXPECT_STREQ(event.recovery, "discard_shares");
  }
  EXPECT_EQ(obs::MetricsRegistry::global()
                .counter("detect.share_auth_failure")
                .value(),
            result.cost.share_auth_failures);

  // Inference still works despite the live adversary.
  EXPECT_EQ(result.labels.size(), 6u);

  // The export was written and carries the v1 schema sections; the
  // metered byte total round-trips through the net.sent counters.
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"schema\": \"trustddl.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"traffic\""), std::string::npos);
  EXPECT_NE(json.find("\"cost\""), std::string::npos);
  EXPECT_EQ(obs::MetricsRegistry::global().snapshot().counter_sum(
                "net.sent.bytes."),
            result.cost.total_bytes);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace trustddl
