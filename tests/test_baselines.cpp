#include "baselines/adapters.hpp"
#include "baselines/falcon/falcon.hpp"
#include "baselines/securenn/securenn.hpp"

#include <gtest/gtest.h>

#include "nn/loss.hpp"
#include "test_util.hpp"

namespace trustddl::baselines {
namespace {

using trustddl::testing::random_real;

RealTensor small_images(Rng& rng, std::size_t count, std::size_t features) {
  RealTensor images(Shape{count, features});
  for (std::size_t i = 0; i < images.size(); ++i) {
    images[i] = rng.next_double(0.0, 1.0);
  }
  return images;
}

TEST(SecureNnTest, InferenceMatchesPlaintext) {
  Rng rng(1);
  securenn::SecureNnFramework framework(nn::tiny_cnn_spec(), 3);
  const RealTensor images = small_images(rng, 4, 144);
  const auto expected = framework.reference_model().predict(images);

  std::vector<std::size_t> predictions;
  const StepCost cost = framework.infer(images, 1, &predictions);
  EXPECT_EQ(predictions, expected);
  EXPECT_GT(cost.bytes, 0u);
  EXPECT_GT(cost.messages, 0u);
}

TEST(SecureNnTest, TrainingStepMatchesPlaintextUpdate) {
  Rng rng(2);
  const nn::ModelSpec spec = nn::tiny_cnn_spec();
  securenn::SecureNnFramework framework(spec, 5);
  // An identically seeded plaintext model for the reference step.
  Rng model_rng(5);
  nn::Sequential reference = nn::build_model(spec, model_rng);

  const RealTensor images = small_images(rng, 3, 144);
  const RealTensor targets = nn::one_hot({0, 2, 1}, 4);
  const double lr = 0.2;

  framework.train(images, targets, lr, 1);
  nn::SgdOptimizer optimizer(lr);
  reference.train_step(images, targets, optimizer);

  const auto secure_params = framework.reference_model().parameters();
  const auto plain_params = reference.parameters();
  ASSERT_EQ(secure_params.size(), plain_params.size());
  for (std::size_t i = 0; i < plain_params.size(); ++i) {
    EXPECT_LT(max_abs_diff(secure_params[i]->value, plain_params[i]->value),
              5e-3)
        << plain_params[i]->name;
  }
}

class FalconModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(FalconModeTest, InferenceMatchesPlaintext) {
  const bool malicious = GetParam();
  Rng rng(3);
  falcon::FalconFramework framework(nn::tiny_cnn_spec(), malicious, 7);
  const RealTensor images = small_images(rng, 4, 144);
  const auto expected = framework.reference_model().predict(images);

  std::vector<std::size_t> predictions;
  const StepCost cost = framework.infer(images, 1, &predictions);
  EXPECT_EQ(predictions, expected);
  EXPECT_GT(cost.bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, FalconModeTest, ::testing::Bool());

TEST(FalconTest, TrainingStepMatchesPlaintextUpdate) {
  const nn::ModelSpec spec = nn::tiny_cnn_spec();
  falcon::FalconFramework framework(spec, /*malicious=*/false, 11);
  Rng model_rng(11);
  nn::Sequential reference = nn::build_model(spec, model_rng);

  Rng rng(4);
  const RealTensor images = small_images(rng, 3, 144);
  const RealTensor targets = nn::one_hot({3, 1, 0}, 4);
  const double lr = 0.25;

  framework.train(images, targets, lr, 1);
  nn::SgdOptimizer optimizer(lr);
  reference.train_step(images, targets, optimizer);

  const auto secure_params = framework.reference_model().parameters();
  const auto plain_params = reference.parameters();
  for (std::size_t i = 0; i < plain_params.size(); ++i) {
    EXPECT_LT(max_abs_diff(secure_params[i]->value, plain_params[i]->value),
              5e-3)
        << plain_params[i]->name;
  }
}

TEST(FalconTest, MaliciousCostExceedsSemiHonest) {
  Rng rng(5);
  const RealTensor images = small_images(rng, 1, 144);
  falcon::FalconFramework semi(nn::tiny_cnn_spec(), false, 7);
  falcon::FalconFramework malicious(nn::tiny_cnn_spec(), true, 7);
  const StepCost semi_cost = semi.infer(images, 1);
  const StepCost malicious_cost = malicious.infer(images, 1);
  EXPECT_GT(malicious_cost.bytes, semi_cost.bytes);
  EXPECT_GT(malicious_cost.messages, semi_cost.messages);
  // Falcon's malicious overhead stays within ~3x (paper: ~2.8x).
  EXPECT_LT(malicious_cost.bytes, semi_cost.bytes * 4);
}

TEST(FalconTest, MaliciousModeAbortsOnCorruptedTransport) {
  // A corrupted re-sharing message must fail the digest check.
  class CorruptOneResharing final : public net::FaultInjector {
   public:
    net::FaultDecision on_message(const net::Message& message) override {
      if (!done_ && message.tag.size() >= 2 && message.tag[0] == 'r' &&
          message.tag.find('/') == std::string::npos) {
        done_ = true;
        return net::FaultDecision{.corrupt = true};
      }
      return {};
    }

   private:
    bool done_ = false;
  };

  Rng rng(6);
  const RealTensor images = small_images(rng, 1, 144);

  falcon::FalconFramework malicious(nn::tiny_cnn_spec(), true, 7);
  malicious.set_fault_injector(std::make_shared<CorruptOneResharing>());
  EXPECT_THROW(malicious.infer(images, 1), falcon::FalconAbort);

  // Semi-honest Falcon does NOT notice the corruption: it completes
  // with silently wrong results — the contrast the paper draws with
  // TrustDDL's detect-and-continue.
  falcon::FalconFramework semi(nn::tiny_cnn_spec(), false, 7);
  semi.set_fault_injector(std::make_shared<CorruptOneResharing>());
  EXPECT_NO_THROW(semi.infer(images, 1));
}

TEST(AdapterTest, SafeMlTrainsThroughCrashFaultMode) {
  data::SyntheticMnistConfig config;
  config.train_count = 30;
  config.test_count = 10;
  const auto split = data::generate_synthetic_mnist(config);
  auto safeml = make_safeml(nn::mnist_mlp_spec(), 3);
  const RealTensor targets = nn::one_hot(split.train.labels, 10);
  const StepCost cost =
      safeml->train(split.train.images, targets, 0.1, 1);
  EXPECT_GT(cost.bytes, 0u);
  EXPECT_EQ(safeml->adversary_model(), "Crash-Fault");
}

TEST(AdapterTest, TrustDdlAdapterInferencePredicts) {
  Rng rng(7);
  auto framework =
      make_trustddl(nn::tiny_cnn_spec(), mpc::SecurityMode::kMalicious, 9);
  const RealTensor images = small_images(rng, 2, 144);
  std::vector<std::size_t> predictions;
  const StepCost cost = framework->infer(images, 1, &predictions);
  EXPECT_EQ(predictions.size(), 2u);
  EXPECT_GT(cost.bytes, 0u);
}

TEST(CostShapeTest, FrameworkOrderingMatchesTableII) {
  // The headline shape of Table II on a small workload:
  // Falcon < SecureNN << SafeML ~ TrustDDL-HbC < TrustDDL-Malicious.
  // Use the dense-heavy MLP: the frameworks' asymptotics only separate
  // once weight matrices dominate (SecureNN's Beaver masks carry the
  // full weight matrix; Falcon re-shares only activations).
  Rng rng(8);
  const RealTensor image = small_images(rng, 1, 784);
  const nn::ModelSpec spec = nn::mnist_mlp_spec();

  falcon::FalconFramework falcon_hbc(spec, false, 7);
  securenn::SecureNnFramework securenn_fw(spec, 7);
  auto safeml = make_safeml(spec, 7);
  auto trustddl_hbc =
      make_trustddl(spec, mpc::SecurityMode::kHonestButCurious, 7);
  auto trustddl_mal = make_trustddl(spec, mpc::SecurityMode::kMalicious, 7);

  // Marginal per-inference cost: difference of 3-repeat and 1-repeat
  // sessions, which cancels the one-time weight-sharing setup.
  const auto marginal = [&](Framework& framework) {
    const StepCost one = framework.infer(image, 1);
    const StepCost three = framework.infer(image, 3);
    return (three - one).scaled(0.5);
  };
  const auto falcon_cost = marginal(falcon_hbc);
  const auto securenn_cost = marginal(securenn_fw);
  const auto safeml_cost = marginal(*safeml);
  const auto hbc_cost = marginal(*trustddl_hbc);
  const auto mal_cost = marginal(*trustddl_mal);

  EXPECT_LT(falcon_cost.bytes, securenn_cost.bytes);
  EXPECT_LT(securenn_cost.bytes, hbc_cost.bytes);
  EXPECT_LT(hbc_cost.bytes, mal_cost.bytes);
  // SafeML and TrustDDL-HbC are close relatives (within ~35%).
  const double ratio = static_cast<double>(safeml_cost.bytes) /
                       static_cast<double>(hbc_cost.bytes);
  EXPECT_GT(ratio, 0.65);
  EXPECT_LT(ratio, 1.35);
}

}  // namespace
}  // namespace trustddl::baselines
