#include "net/network.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "common/error.hpp"
#include "net/runtime.hpp"

namespace trustddl::net {
namespace {

TEST(NetworkTest, SendReceiveRoundTrip) {
  Network network(NetworkConfig{.num_parties = 2});
  run_parties(2, [&](PartyId party) {
    Endpoint endpoint = network.endpoint(party);
    if (party == 0) {
      endpoint.send(1, "greeting", Bytes{1, 2, 3});
    } else {
      EXPECT_EQ(endpoint.recv(0, "greeting"), (Bytes{1, 2, 3}));
    }
  });
}

TEST(NetworkTest, TagMatchingIgnoresOtherTags) {
  Network network(NetworkConfig{.num_parties = 2});
  run_parties(2, [&](PartyId party) {
    Endpoint endpoint = network.endpoint(party);
    if (party == 0) {
      endpoint.send(1, "second", Bytes{2});
      endpoint.send(1, "first", Bytes{1});
    } else {
      // Receive in the opposite order of sending.
      EXPECT_EQ(endpoint.recv(0, "first"), Bytes{1});
      EXPECT_EQ(endpoint.recv(0, "second"), Bytes{2});
    }
  });
}

TEST(NetworkTest, RecvTimesOut) {
  Network network(NetworkConfig{.num_parties = 2,
                                .recv_timeout = std::chrono::milliseconds(50)});
  Endpoint endpoint = network.endpoint(0);
  EXPECT_THROW(endpoint.recv(1, "never-sent"), TimeoutError);
}

TEST(NetworkTest, ExplicitTimeoutOverride) {
  Network network(NetworkConfig{.num_parties = 2});
  Endpoint endpoint = network.endpoint(0);
  EXPECT_THROW(endpoint.recv(1, "nope", std::chrono::milliseconds(10)),
               TimeoutError);
}

TEST(NetworkTest, TryRecvNonBlocking) {
  Network network(NetworkConfig{.num_parties = 2});
  Endpoint receiver = network.endpoint(1);
  Bytes out;
  EXPECT_FALSE(receiver.try_recv(0, "ping", out));
  network.endpoint(0).send(1, "ping", Bytes{9});
  EXPECT_TRUE(receiver.try_recv(0, "ping", out));
  EXPECT_EQ(out, Bytes{9});
}

TEST(NetworkTest, SelfSendRejected) {
  Network network(NetworkConfig{.num_parties = 2});
  Endpoint endpoint = network.endpoint(0);
  EXPECT_THROW(endpoint.send(0, "loop", Bytes{}), InvalidArgument);
}

TEST(NetworkTest, TrafficMetering) {
  Network network(NetworkConfig{.num_parties = 3});
  network.endpoint(0).send(1, "x", Bytes(100, 0));
  network.endpoint(0).send(2, "x", Bytes(50, 0));
  const TrafficSnapshot snapshot = network.traffic();
  EXPECT_EQ(snapshot.total_messages, 2u);
  EXPECT_EQ(snapshot.links[0][1].messages, 1u);
  EXPECT_GE(snapshot.links[0][1].bytes, 100u);
  EXPECT_GE(snapshot.total_bytes, 150u);
  network.reset_traffic();
  EXPECT_EQ(network.traffic().total_messages, 0u);
}

TEST(NetworkTest, DroppedMessagesStillMeteredButNotDelivered) {
  class DropAll final : public FaultInjector {
   public:
    FaultDecision on_message(const Message&) override {
      return FaultDecision{.drop = true};
    }
  };
  Network network(NetworkConfig{.num_parties = 2,
                                .recv_timeout = std::chrono::milliseconds(30)});
  network.set_fault_injector(std::make_shared<DropAll>());
  network.endpoint(0).send(1, "gone", Bytes{1});
  EXPECT_EQ(network.traffic().total_messages, 1u);
  EXPECT_THROW(network.endpoint(1).recv(0, "gone"), TimeoutError);
}

TEST(NetworkTest, CorruptedPayloadDelivered) {
  class CorruptAll final : public FaultInjector {
   public:
    FaultDecision on_message(const Message&) override {
      return FaultDecision{.corrupt = true};
    }
  };
  Network network(NetworkConfig{.num_parties = 2});
  network.set_fault_injector(std::make_shared<CorruptAll>());
  network.endpoint(0).send(1, "bits", Bytes{0x00});
  EXPECT_EQ(network.endpoint(1).recv(0, "bits"), Bytes{0xa5});
}

TEST(NetworkTest, ManyConcurrentMessages) {
  Network network(NetworkConfig{.num_parties = 3});
  std::atomic<int> received{0};
  run_parties(3, [&](PartyId party) {
    Endpoint endpoint = network.endpoint(party);
    for (int round = 0; round < 50; ++round) {
      const std::string tag = "round/" + std::to_string(round);
      for (int other = 0; other < 3; ++other) {
        if (other != party) {
          endpoint.send(other, tag,
                        Bytes{static_cast<std::uint8_t>(party)});
        }
      }
      for (int other = 0; other < 3; ++other) {
        if (other != party) {
          const Bytes payload = endpoint.recv(other, tag);
          EXPECT_EQ(payload[0], static_cast<std::uint8_t>(other));
          received.fetch_add(1);
        }
      }
    }
  });
  EXPECT_EQ(received.load(), 3 * 50 * 2);
}

TEST(RuntimeTest, ExceptionPropagatesFromParty) {
  EXPECT_THROW(run_parties(2,
                           [&](PartyId party) {
                             if (party == 1) {
                               throw ProtocolError("boom");
                             }
                           }),
               ProtocolError);
}

TEST(RuntimeTest, OutcomesReportedWithoutRethrow) {
  const auto outcomes = run_parties(
      3,
      [&](PartyId party) {
        if (party == 2) {
          throw TimeoutError("late");
        }
      },
      /*rethrow=*/false);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_TRUE(outcomes[1].ok);
  EXPECT_FALSE(outcomes[2].ok);
}

}  // namespace
}  // namespace trustddl::net
