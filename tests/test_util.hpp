// Shared helpers for multi-party protocol tests.
#pragma once

#include <array>
#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "mpc/adversary.hpp"
#include "mpc/beaver.hpp"
#include "mpc/context.hpp"
#include "net/network.hpp"
#include "net/runtime.hpp"
#include "numeric/tensor.hpp"

namespace trustddl::testing {

/// Random real tensor with entries in [-bound, bound].
inline RealTensor random_real(const Shape& shape, Rng& rng,
                              double bound = 4.0) {
  RealTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_double(-bound, bound);
  }
  return out;
}

/// Random raw ring tensor.
inline RingTensor random_ring(const Shape& shape, Rng& rng) {
  RingTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_u64();
  }
  return out;
}

/// Fixture pieces for a 3-computing-party protocol run: a network, one
/// context per party, and an optional adversary attached to one party.
struct ThreePartyHarness {
  net::Network network;
  std::array<mpc::PartyContext, 3> contexts;
  std::unique_ptr<mpc::StandardAdversary> adversary;

  explicit ThreePartyHarness(
      mpc::SecurityMode mode = mpc::SecurityMode::kMalicious,
      net::NetworkConfig config =
          net::NetworkConfig{
              .num_parties = 3,
              .recv_timeout = std::chrono::milliseconds(300)})
      : network(config) {
    for (int party = 0; party < 3; ++party) {
      auto& ctx = contexts[static_cast<std::size_t>(party)];
      ctx.endpoint = network.endpoint(party);
      ctx.party = party;
      ctx.mode = mode;
    }
  }

  void make_byzantine(int party, mpc::ByzantineConfig config) {
    adversary = std::make_unique<mpc::StandardAdversary>(config);
    contexts[static_cast<std::size_t>(party)].adversary = adversary.get();
  }

  /// Run `body(ctx)` for each party on its own thread.
  void run(const std::function<void(mpc::PartyContext&)>& body) {
    net::run_parties(3, [&](net::PartyId party) {
      body(contexts[static_cast<std::size_t>(party)]);
    });
  }
};

}  // namespace trustddl::testing
