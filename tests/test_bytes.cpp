#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace trustddl {
namespace {

TEST(BytesTest, RoundTripPrimitives) {
  ByteWriter writer;
  writer.write_u8(0xab);
  writer.write_u32(0xdeadbeef);
  writer.write_u64(0x0123456789abcdefULL);
  writer.write_i64(-42);
  writer.write_double(3.5);
  const Bytes data = writer.take();

  ByteReader reader(data);
  EXPECT_EQ(reader.read_u8(), 0xab);
  EXPECT_EQ(reader.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.read_i64(), -42);
  EXPECT_EQ(reader.read_double(), 3.5);
  EXPECT_TRUE(reader.at_end());
}

TEST(BytesTest, RoundTripContainers) {
  ByteWriter writer;
  writer.write_string("hello trustddl");
  writer.write_bytes(Bytes{1, 2, 3});
  writer.write_u64_vector({10, 20, 30});
  const Bytes data = writer.take();

  ByteReader reader(data);
  EXPECT_EQ(reader.read_string(), "hello trustddl");
  EXPECT_EQ(reader.read_bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(reader.read_u64_vector(), (std::vector<std::uint64_t>{10, 20, 30}));
  EXPECT_TRUE(reader.at_end());
}

TEST(BytesTest, EmptyContainers) {
  ByteWriter writer;
  writer.write_string("");
  writer.write_bytes(Bytes{});
  writer.write_u64_vector({});
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_string(), "");
  EXPECT_TRUE(reader.read_bytes().empty());
  EXPECT_TRUE(reader.read_u64_vector().empty());
}

TEST(BytesTest, TruncatedInputThrows) {
  ByteWriter writer;
  writer.write_u64(7);
  Bytes data = writer.take();
  data.pop_back();
  ByteReader reader(data);
  EXPECT_THROW(reader.read_u64(), SerializationError);
}

TEST(BytesTest, TruncatedStringThrows) {
  ByteWriter writer;
  writer.write_string("abcdef");
  Bytes data = writer.take();
  data.resize(data.size() - 3);
  ByteReader reader(data);
  EXPECT_THROW(reader.read_string(), SerializationError);
}

TEST(BytesTest, LyingLengthPrefixThrows) {
  ByteWriter writer;
  writer.write_u64(~std::uint64_t{0});  // claims a huge vector
  ByteReader reader(writer.bytes());
  EXPECT_THROW(reader.read_u64_vector(), SerializationError);
}

TEST(BytesTest, RemainingTracksPosition) {
  ByteWriter writer;
  writer.write_u64(1);
  writer.write_u64(2);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.remaining(), 16u);
  reader.read_u64();
  EXPECT_EQ(reader.remaining(), 8u);
}

}  // namespace
}  // namespace trustddl
