// RobustAggregate — coordinate-wise Byzantine-robust aggregation of K
// secret-shared vectors ("Secure Byzantine-Robust Machine Learning",
// He et al.; see DESIGN.md §11).
//
// Given K share triples of equal shape (one per data owner), the
// parties jointly select, per coordinate, the trimmed mean or median
// of the K submitted values — without ever opening the values
// themselves.  The coordinate ORDERING is computed via SecComp-BT over
// all K(K-1)/2 pairwise differences, stacked into a single comparison
// tensor so the whole aggregation costs the same two opening rounds as
// one SecComp (plus one more for the masked-open rescale, when used).
// The revealed information is the per-coordinate rank permutation of
// the owners — the same leakage class as the ReLU sign reveal the
// framework already accepts (magnitudes stay masked by the positive
// auxiliary values).
//
// Selection is a public 0/1 mask per owner (local mul_public +
// share-wise sum), so the aggregate share is exactly the sum of the
// selected owners' shares, rescaled by 1/|selected| when the rule
// averages more than one value.
#pragma once

#include "mpc/beaver.hpp"
#include "mpc/open.hpp"
#include "mpc/protocols_bt.hpp"

namespace trustddl::mpc {

/// Aggregation rule applied independently per coordinate.
enum class AggregationRule {
  /// Plain average of all K inputs — no robustness, no comparisons.
  /// Kept as the undefended baseline the benches degrade.
  kMean,
  /// Drop the `trim` largest and `trim` smallest values, average the
  /// rest.  trim is clamped so at least one value survives.
  kTrimmedMean,
  /// Middle value (odd K) or average of the two middle values (even
  /// K).  Equivalent to kTrimmedMean with maximal trim.
  kMedian,
};

const char* aggregation_rule_name(AggregationRule rule);

struct AggregateOptions {
  AggregationRule rule = AggregationRule::kTrimmedMean;
  /// Values trimmed per side under kTrimmedMean; effective trim is
  /// min(trim, (K-1)/2) so the selection window never empties.
  std::size_t trim = 1;
  /// How the 1/|selected| fixed-point rescale is truncated.  The
  /// training service uses kMaskedOpen so aggregates are value-exact
  /// across share re-randomizations (checkpoint restarts).
  TruncationMode trunc_mode = TruncationMode::kLocal;
};

/// Data-independent accounting for the obs ledger: per call,
/// values_submitted == values_aggregated + values_trimmed.
struct AggregateStats {
  std::uint64_t values_submitted = 0;   ///< K × numel
  std::uint64_t values_aggregated = 0;  ///< |selected| × numel
  std::uint64_t values_trimmed = 0;     ///< (K − |selected|) × numel
  std::uint64_t comparisons = 0;        ///< K(K−1)/2 × numel (0 for kMean)
  std::size_t selected_per_coord = 0;   ///< |selected| (same ∀ coords)
};

/// Preprocessing demand of one robust_aggregate call, for the
/// TriplePipeline profiler: at most one comp_aux + mul triple of shape
/// {K(K-1)/2, numel} and one trunc pair of the input shape.
/// Mirrors the consumption of robust_aggregate_prepare exactly.
struct AggregateDemand {
  bool needs_comparison = false;
  Shape comparison_shape;  ///< {npairs, numel}
  bool needs_trunc_pair = false;
  Shape trunc_shape;  ///< input shape
};
AggregateDemand aggregate_demand(std::size_t num_inputs, const Shape& shape,
                                 const AggregateOptions& options);

/// Deferred robust aggregation: enqueues against `batch` and resolves
/// after the dependency chain flushed (flush_all).  Independent
/// aggregate calls prepared against the same batch — e.g. one per
/// model parameter — share ALL their opening rounds.
///
/// Preprocessing material is fetched from `triples` at prepare time
/// (SPMD request-order rule); inputs must all share one shape and
/// inputs.size() ≥ 1.  `frac_bits` is taken from the batch's context.
/// `stats`, when non-null, is filled at prepare time (the counts are
/// data-independent).
DeferredShare robust_aggregate_prepare(OpenBatch& batch, TripleSource& triples,
                                       const std::vector<PartyShare>& inputs,
                                       const AggregateOptions& options,
                                       AggregateStats* stats = nullptr);

/// Eager wrapper: prepare + flush_all on a private batch.
PartyShare robust_aggregate(PartyContext& ctx, TripleSource& triples,
                            const std::vector<PartyShare>& inputs,
                            const AggregateOptions& options,
                            AggregateStats* stats = nullptr);

/// Plaintext reference of the same selection semantics (dealer-side,
/// for tests and the undefended baseline): per coordinate, owners are
/// ranked by value with ties broken by owner index (equal values rank
/// in submission order), then the rule's window is averaged in double
/// precision.  Returns one real tensor of the input shape.
RealTensor robust_aggregate_reference(const std::vector<RealTensor>& inputs,
                                      const AggregateOptions& options);

}  // namespace trustddl::mpc
