// Per-party protocol execution context.
//
// TrustDDL's protocols are SPMD: every computing party runs the same
// code over its own share triples.  The context carries the party's
// network endpoint, the security mode, fixed-point precision, the
// Byzantine decision-rule tolerance, a monotonically increasing step
// counter used to derive unique message tags (all parties execute
// protocol invocations in the same order, so counters stay aligned),
// an optional protocol-level adversary, and a detection log.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "numeric/fixed_point.hpp"
#include "numeric/kernels.hpp"

namespace trustddl::mpc {

class AdversaryHooks;

/// Adversary model a protocol run defends against (paper Table II
/// "Model" column for TrustDDL rows).
enum class SecurityMode {
  /// Algorithm 2/3 style: no commitments, single exchange round,
  /// median-of-sets reconstruction.  Secure against honest-but-curious
  /// parties only.
  kHonestButCurious,
  /// Algorithm 4/5: commitment phase + redundant six-way
  /// reconstruction + minimum-distance decision rule.  Tolerates one
  /// Byzantine computing party with guaranteed output delivery.
  kMalicious,
  /// SafeML-style (the authors' predecessor framework, ICDMW'23):
  /// replicated shares exchanged like HbC plus a per-opening heartbeat
  /// acknowledgement round for crash detection.  Tolerates one crashed
  /// party (timeout -> reconstruct from the remaining sets) but not
  /// Byzantine behaviour.
  kCrashFault,
};

const char* to_string(SecurityMode mode);

/// Record of one detected misbehaviour, for tests and examples.
struct DetectionEvent {
  enum class Kind {
    kCommitmentViolation,   ///< hash of received shares != committed hash
    kMissingMessage,        ///< commitment/share message timed out
    kDistanceAnomaly,       ///< some reconstruction pair beyond tolerance
    kByzantineSuspected,    ///< decision rule implicates a specific party
    kShareAuthFailure,      ///< peer's share-1 copy contradicts own copy
    kShareCopyConflict,     ///< the two peers' copies of a share-1 differ
  };
  Kind kind;
  std::uint64_t step = 0;
  int suspect = -1;  ///< implicated party, -1 if unknown
  /// Protocol phase where the anomaly surfaced ("commit", "exchange",
  /// "decide", …) and the recovery path taken; string literals owned
  /// by the recording call site.
  const char* phase = "";
  const char* recovery = "";
};

const char* to_string(DetectionEvent::Kind kind);

/// Per-party tally of what the robust protocols observed.
struct DetectionLog {
  /// Observing party (set by core::make_party_context); only used to
  /// attribute events in the global obs::EventLog.
  int party = -1;
  std::vector<DetectionEvent> events;
  /// Opening ROUNDS performed (one commitment/confirmation/exchange
  /// round trip each).  A batched opening scheduled through
  /// mpc::OpenBatch counts once here no matter how many values it
  /// covers — `opens` is the round count the deferred-opening
  /// scheduler exists to minimize.
  std::uint64_t opens = 0;
  /// Individual values reconstructed across all rounds;
  /// values_opened / opens is the achieved batching factor.
  std::uint64_t values_opened = 0;
  std::uint64_t recovered_opens = 0;    ///< openings that excluded data

  /// Appends one event and mirrors it into the global structured
  /// detection event log (obs::EventLog) when telemetry is enabled.
  void record(DetectionEvent::Kind kind, std::uint64_t step,
              int suspect = -1, const char* phase = "",
              const char* recovery = "");

  std::size_t count(DetectionEvent::Kind kind) const {
    std::size_t total = 0;
    for (const auto& event : events) {
      if (event.kind == kind) {
        ++total;
      }
    }
    return total;
  }
};

struct PartyContext {
  net::Endpoint endpoint;
  int party = 0;  ///< 0..2, the computing-party index
  SecurityMode mode = SecurityMode::kMalicious;
  int frac_bits = fx::kDefaultFracBits;
  /// Decision-rule tolerance in ring units: reconstructions within
  /// this distance count as (approximately) equal.  Honest
  /// disagreement comes only from share-local truncation (±1 ulp per
  /// truncation), so a few ulp per truncation suffice; the default of
  /// 64 leaves headroom for values that accumulate several truncated
  /// products (e.g. gradient sums) while staying far below any real
  /// corruption.  This is THE project-wide default: EngineConfig uses
  /// the same value and propagates it into every party context (see
  /// core::make_party_context), asserted by EngineConfigTest.
  std::uint64_t dist_tolerance = 64;
  /// Cross-authenticate peers' share-1 components against the local
  /// duplicate copies during robust openings.  This hardening (beyond
  /// the paper; see DESIGN.md §4) costs no communication and defeats
  /// coordinated-offset attacks that can forge an agreeing
  /// reconstruction pair under the bare minimum-distance rule.
  bool share_authentication = true;
  /// Optimistic opening (the communication optimization the paper
  /// lists as future work, implemented here): in malicious mode,
  /// exchange only (share-1, share-2) pairs bound by per-component
  /// commitments, check that the three set reconstructions agree, and
  /// escalate to the full triple exchange + six-way decision rule only
  /// when any party reports a mismatch.  Honest-run traffic drops to
  /// roughly the HbC level; any effective corruption forces the
  /// escalation (see open.cpp for the verdict-forwarding round that
  /// keeps honest parties' escalation decisions in agreement).
  bool optimistic = false;
  /// Protocol-level misbehaviour; nullptr for an honest party.
  AdversaryHooks* adversary = nullptr;
  /// Compute-kernel configuration for this party's protocol work
  /// (reconstruction candidates, share-auth scans, commitment
  /// digests).  Defaults to the process-global/env settings;
  /// core::make_party_context copies EngineConfig.kernels here.
  ::trustddl::kernels::KernelConfig kernels =
      ::trustddl::kernels::global_config();
  /// Step counter feeding message tags; advances identically at every
  /// party because the protocol program is SPMD.
  std::uint64_t step = 0;
  DetectionLog detections;

  /// Local peer exclusion (paper §III-B: a party that "deliberately
  /// delays or drops all of its messages" is excluded from further
  /// computations).  After `exclusion_threshold` consecutive openings
  /// in which a peer's shares never arrived, later openings stop
  /// waiting for it — otherwise a dead party costs a full receive
  /// timeout per phase per opening for the rest of the protocol.
  int exclusion_threshold = 2;
  std::array<int, 3> consecutive_misses{};
  std::array<bool, 3> excluded{};

  bool peer_excluded(int peer) const {
    return excluded[static_cast<std::size_t>(peer)];
  }
  void note_peer_miss(int peer) {
    auto& misses = consecutive_misses[static_cast<std::size_t>(peer)];
    if (++misses >= exclusion_threshold) {
      excluded[static_cast<std::size_t>(peer)] = true;
    }
  }
  void note_peer_ok(int peer) {
    consecutive_misses[static_cast<std::size_t>(peer)] = 0;
  }

  std::uint64_t next_step() { return step++; }

  std::string tag(std::uint64_t step_id, const char* phase) const {
    return std::to_string(step_id) + "/" + phase;
  }
};

/// The two peers of a computing party (indices in {0,1,2}).
inline std::array<int, 2> peers_of(int party) {
  return {(party + 1) % 3, (party + 2) % 3};
}

}  // namespace trustddl::mpc
