// Additive secret sharing (ASS) and TrustDDL's replicated 3-set share
// distribution (paper §II and §III-A, Fig. 1).
//
// For each secret s the dealer creates three independent 2-of-2
// additive sharings ("sets"):
//     s^j = { [s]_1^j , [s]_2^j },   [s]_1^j + [s]_2^j = s,  j = 1..3
// and distributes them so that party P_i (0-based i here) holds
//     primary   [s]_1^{i1}   with i1 = i
//     duplicate [ŝ]_1^{i2}   with i2 = (i+1) mod 3   (copy of P_{i2}'s primary)
//     second    [s]_2^{i3}   with i3 = (i+2) mod 3   (unique share 2 of set i3)
// Matching the paper: P1 holds {[s]_1^1, [ŝ]_1^2, [s]_2^3}, P2 holds
// {[s]_1^2, [ŝ]_1^3, [s]_2^1}, P3 holds {[s]_1^3, [ŝ]_1^1, [s]_2^2}.
//
// No party sees both shares of any set (privacy); any two parties
// jointly hold enough shares to reconstruct every set (resiliency).
#pragma once

#include <array>

#include "common/rng.hpp"
#include "numeric/tensor.hpp"

namespace trustddl::mpc {

/// Number of computing parties in the proxy layer (fixed 3PC design).
inline constexpr int kNumParties = 3;
/// Shares per set (the paper instantiates N = 2).
inline constexpr int kSharesPerSet = 2;
/// Number of replicated share sets.
inline constexpr int kNumSets = 3;

/// Set index of party i's primary share-1.
constexpr int set_primary(int party) { return party; }
/// Set index of party i's duplicated share-1 (the "hat" copy).
constexpr int set_duplicate(int party) { return (party + 1) % kNumSets; }
/// Set index of party i's share-2.
constexpr int set_second(int party) { return (party + 2) % kNumSets; }

/// Which party holds the unique share-2 of set j.
constexpr int holder_of_second(int set) { return (set + 1) % kNumSets; }
/// Which party holds the primary share-1 of set j.
constexpr int holder_of_primary(int set) { return set; }
/// Which party holds the duplicate share-1 of set j.
constexpr int holder_of_duplicate(int set) { return (set + 2) % kNumSets; }

/// Dealer-side view: all six shares of one secret.
/// sets[j][k] is [s]_{k+1}^{j+1} in the paper's notation.
struct ReplicatedSecret {
  std::array<std::array<RingTensor, kSharesPerSet>, kNumSets> sets;

  const Shape& shape() const { return sets[0][0].shape(); }

  /// Reconstruct set j (exact, dealer-side).
  RingTensor reconstruct_set(int set) const;
};

/// One computing party's holdings for one secret — the triple
/// ([s]_1^{i1}, [ŝ]_1^{i2}, [s]_2^{i3}) of the paper's protocols.
struct PartyShare {
  RingTensor primary;    ///< [s]_1^{i1}
  RingTensor duplicate;  ///< [ŝ]_1^{i2}
  RingTensor second;     ///< [s]_2^{i3}

  const Shape& shape() const { return primary.shape(); }

  /// Share-wise addition: valid because every component of the triple
  /// is an additive share of the same secret's sets.
  PartyShare& operator+=(const PartyShare& other);
  PartyShare& operator-=(const PartyShare& other);
  friend PartyShare operator+(PartyShare lhs, const PartyShare& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend PartyShare operator-(PartyShare lhs, const PartyShare& rhs) {
    lhs -= rhs;
    return lhs;
  }

  /// Multiply by a public ring constant (both shares of every set
  /// scale, so the secret scales).  The constant is a raw ring value;
  /// fixed-point callers must truncate afterwards.
  PartyShare scaled(std::uint64_t factor) const;

  /// Add a public constant to the secret: only share 2 of each set
  /// absorbs it, so exactly the party holding `second` adds it.
  void add_public(const RingTensor& constant);

  /// Elementwise product with a public tensor (applied to all three
  /// components; used for public masks such as the ReLU sign mask).
  void mul_public(const RingTensor& mask);

  /// Apply arithmetic right-shift truncation to every component
  /// (local fixed-point rescale; see protocols_bt.hpp for caveats).
  void truncate_local(int frac_bits);

  /// Reshape all components (local transformation, §III-C).
  PartyShare reshaped(const Shape& new_shape) const;
};

/// Split a secret tensor into three independent 2-of-2 sharings.
ReplicatedSecret create_replicated(const RingTensor& secret, Rng& rng);

/// Extract party i's triple from the dealer view.
PartyShare party_view(const ReplicatedSecret& dealer, int party);

/// Convenience: share a secret directly into per-party triples.
std::array<PartyShare, kNumParties> share_secret(const RingTensor& secret,
                                                 Rng& rng);

/// Dealer-side reconstruction from the three party triples (exact;
/// uses set 0).  Honest-parties-only helper for tests and the model
/// owner, NOT the robust protocol opening (see open.hpp).
RingTensor reconstruct(const std::array<PartyShare, kNumParties>& triples);

/// Zero-valued share triple of a given shape (all components zero —
/// a valid sharing of zero for every set).
PartyShare zero_share(const Shape& shape);

/// Apply a data-independent local transformation (§III-C) to every
/// component of a share triple (reshape, transpose, im2col, ...).
template <typename Fn>
PartyShare transform_share(const PartyShare& share, const Fn& fn) {
  PartyShare out;
  out.primary = fn(share.primary);
  out.duplicate = fn(share.duplicate);
  out.second = fn(share.second);
  return out;
}

/// Rank-2 transpose of a shared matrix (local transformation).
PartyShare transpose_share(const PartyShare& share);

/// Plain (non-replicated) N-party additive sharing of Algorithm 1,
/// used by the §II baseline protocols and by SecureNN-style baselines.
std::vector<RingTensor> create_additive_shares(const RingTensor& secret,
                                               int num_shares, Rng& rng);

/// Sum of plain additive shares.
RingTensor reconstruct_additive(const std::vector<RingTensor>& shares);

}  // namespace trustddl::mpc
