// Serialization of share triples and preprocessing material for
// owner <-> party messages.
#pragma once

#include "common/bytes.hpp"
#include "mpc/beaver.hpp"
#include "mpc/sharing.hpp"

namespace trustddl::mpc {

void write_party_share(ByteWriter& writer, const PartyShare& share);
PartyShare read_party_share(ByteReader& reader);

void write_beaver_share(ByteWriter& writer, const BeaverTripleShare& triple);
BeaverTripleShare read_beaver_share(ByteReader& reader);

void write_trunc_pair(ByteWriter& writer, const TruncPairShare& pair);
TruncPairShare read_trunc_pair(ByteReader& reader);

}  // namespace trustddl::mpc
