#include "mpc/robust_reconstruct.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "numeric/kernels.hpp"

namespace trustddl::mpc {
namespace {

constexpr const char* kLog = "mpc.reconstruct";

bool corruptible_by(int party, int set, bool hat) {
  if (!hat) {
    return set == party || set == (party + 2) % kNumSets;
  }
  return set == (party + 1) % kNumSets || set == (party + 2) % kNumSets;
}

RingTensor median_of(const std::vector<const RingTensor*>& candidates) {
  TRUSTDDL_ASSERT(!candidates.empty());
  RingTensor out(candidates[0]->shape());
  // Per-element medians over disjoint output chunks — exact at any
  // thread count.
  kernels::parallel_for(out.size(), 2048, [&](std::size_t lo,
                                              std::size_t hi) {
    std::vector<std::int64_t> scratch(candidates.size());
    for (std::size_t e = lo; e < hi; ++e) {
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        scratch[c] = static_cast<std::int64_t>((*candidates[c])[e]);
      }
      std::nth_element(
          scratch.begin(),
          scratch.begin() + static_cast<std::ptrdiff_t>(scratch.size() / 2),
          scratch.end());
      out[e] = static_cast<std::uint64_t>(scratch[scratch.size() / 2]);
    }
  });
  return out;
}

}  // namespace

RingTensor robust_reconstruct(
    const std::array<std::optional<PartyShare>, kNumParties>& triples,
    std::uint64_t tolerance, ReconstructReport* report) {
  ReconstructReport local_report;
  ReconstructReport& out_report = report ? *report : local_report;
  out_report = ReconstructReport{};

  // Structural pre-filter: a party whose components do not all carry
  // the majority shape is treated as absent (garbage from a broken or
  // Byzantine sender must not poison the copy-conflict checks).
  std::array<bool, kNumParties> usable{};
  Shape expected;
  {
    std::array<Shape, kNumParties> shapes;
    for (int party = 0; party < kNumParties; ++party) {
      if (triples[static_cast<std::size_t>(party)].has_value()) {
        shapes[static_cast<std::size_t>(party)] =
            triples[static_cast<std::size_t>(party)]->primary.shape();
      }
    }
    for (int a = 0; a < kNumParties && expected.empty(); ++a) {
      for (int b = a + 1; b < kNumParties; ++b) {
        if (!shapes[static_cast<std::size_t>(a)].empty() &&
            shapes[static_cast<std::size_t>(a)] ==
                shapes[static_cast<std::size_t>(b)]) {
          expected = shapes[static_cast<std::size_t>(a)];
          break;
        }
      }
    }
    for (int party = 0; party < kNumParties; ++party) {
      const auto& triple = triples[static_cast<std::size_t>(party)];
      usable[static_cast<std::size_t>(party)] =
          triple.has_value() && !expected.empty() &&
          triple->primary.shape() == expected &&
          triple->duplicate.shape() == expected &&
          triple->second.shape() == expected;
    }
  }
  const auto present = [&](int party) {
    return usable[static_cast<std::size_t>(party)];
  };

  // Share-copy cross-checks: each set's share-1 exists at its primary
  // holder and its duplicate holder; a mismatch invalidates both
  // reconstructions of that set (one of the two holders lied, the
  // owner cannot tell which).
  bool set_conflicted[kNumSets] = {};
  for (int set = 0; set < kNumSets; ++set) {
    const int p1 = holder_of_primary(set);
    const int pd = holder_of_duplicate(set);
    if (present(p1) && present(pd)) {
      const auto& primary_copy =
          triples[static_cast<std::size_t>(p1)]->primary;
      const auto& dup_copy =
          triples[static_cast<std::size_t>(pd)]->duplicate;
      if (primary_copy.shape() != dup_copy.shape() ||
          primary_copy != dup_copy) {
        set_conflicted[set] = true;
        out_report.anomaly = true;
        TRUSTDDL_LOG_WARN(kLog)
            << "conflicting share-1 copies for set " << set
            << " (holders " << p1 << " and " << pd << ")";
      }
    }
  }

  struct Candidate {
    RingTensor tensor;
    bool valid = false;
  };
  Candidate plain[kNumSets];
  Candidate hats[kNumSets];
  // The six candidate reconstructions (plain + hat per set) are
  // independent ring additions into disjoint slots — build them
  // concurrently.
  kernels::parallel_for(kNumSets, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      const int set = static_cast<int>(s);
      const int p1 = holder_of_primary(set);
      const int p2 = holder_of_second(set);
      const int pd = holder_of_duplicate(set);
      if (present(p1) && present(p2) && !set_conflicted[set]) {
        const auto& primary = triples[static_cast<std::size_t>(p1)]->primary;
        const auto& second = triples[static_cast<std::size_t>(p2)]->second;
        if (primary.shape() == second.shape()) {
          plain[set].tensor = primary + second;
          plain[set].valid = true;
        }
      }
      if (present(pd) && present(p2) && !set_conflicted[set]) {
        const auto& dup = triples[static_cast<std::size_t>(pd)]->duplicate;
        const auto& second = triples[static_cast<std::size_t>(p2)]->second;
        if (dup.shape() == second.shape()) {
          hats[set].tensor = dup + second;
          hats[set].valid = true;
        }
      }
    }
  });

  int best_j = -1;
  std::uint64_t best_dist = ~std::uint64_t{0};
  for (int j = 0; j < kNumSets; ++j) {
    for (int k = 0; k < kNumSets; ++k) {
      if (j == k || !plain[j].valid || !hats[k].valid) {
        continue;
      }
      const std::uint64_t d = ring_distance(plain[j].tensor, hats[k].tensor);
      if (d < best_dist) {
        best_dist = d;
        best_j = j;
      }
    }
  }

  std::vector<const RingTensor*> valid_candidates;
  for (int set = 0; set < kNumSets; ++set) {
    if (plain[set].valid) {
      valid_candidates.push_back(&plain[set].tensor);
    }
    if (hats[set].valid) {
      valid_candidates.push_back(&hats[set].tensor);
    }
  }
  if (valid_candidates.empty()) {
    throw ProtocolError(
        "robust_reconstruct: no usable reconstruction — more than one "
        "party failed");
  }

  if (best_j < 0 || best_dist > tolerance) {
    out_report.anomaly = true;
    out_report.ambiguous = true;
    TRUSTDDL_LOG_WARN(kLog)
        << "no agreeing reconstruction pair — falling back to median over "
        << valid_candidates.size() << " candidates";
    return median_of(valid_candidates);
  }

  const RingTensor& chosen = plain[best_j].tensor;
  bool deviations[kNumSets][2] = {};
  for (int set = 0; set < kNumSets; ++set) {
    for (int hat = 0; hat < 2; ++hat) {
      const Candidate& candidate = (hat == 0) ? plain[set] : hats[set];
      if (candidate.valid &&
          ring_distance(candidate.tensor, chosen) > tolerance) {
        deviations[set][hat] = true;
        out_report.anomaly = true;
      }
    }
  }
  if (out_report.anomaly) {
    int implicated = 0;
    for (int party = 0; party < kNumParties; ++party) {
      bool explains_all = true;
      for (int set = 0; set < kNumSets && explains_all; ++set) {
        for (int hat = 0; hat < 2; ++hat) {
          if (deviations[set][hat] && !corruptible_by(party, set, hat == 1)) {
            explains_all = false;
            break;
          }
        }
      }
      if (explains_all) {
        out_report.suspect = party;
        ++implicated;
      }
    }
    if (implicated != 1) {
      out_report.suspect = -1;
    }
    TRUSTDDL_LOG_WARN(kLog) << "reconstruction anomaly recovered"
                            << (out_report.suspect >= 0
                                    ? " — suspect party " +
                                          std::to_string(out_report.suspect)
                                    : "");
  }
  return chosen;
}

}  // namespace trustddl::mpc
