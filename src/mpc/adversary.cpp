#include "mpc/adversary.hpp"

namespace trustddl::mpc {

StandardAdversary::StandardAdversary(ByzantineConfig config)
    : config_(config), rng_(config.seed) {}

bool StandardAdversary::attack_this_step(std::uint64_t step) {
  // A step is probed by several hooks (before_commit, then one
  // replace/drop per peer); the attack decision must be stable within
  // the step so "attack" means one coherent misbehaviour.
  if (step != last_step_checked_) {
    last_step_checked_ = step;
    last_decision_ = rng_.next_double() < config_.probability;
    if (last_decision_) {
      ++attacks_;
    }
  }
  return last_decision_;
}

void StandardAdversary::corrupt(std::vector<PartyShare>& triples) {
  for (auto& triple : triples) {
    // Large random offsets: the adversary sends garbage shares.  Only
    // the components the other parties actually use matter, but we
    // corrupt all three for generality.
    for (RingTensor* component :
         {&triple.primary, &triple.duplicate, &triple.second}) {
      for (std::size_t i = 0; i < component->size(); ++i) {
        (*component)[i] += rng_.next_u64() | (std::uint64_t{1} << 40);
      }
    }
  }
}

void StandardAdversary::before_commit(std::uint64_t step,
                                      std::vector<PartyShare>& triples) {
  if (!attack_this_step(step)) {
    return;
  }
  switch (config_.behavior) {
    case ByzantineConfig::Behavior::kConsistentCorruption:
      corrupt(triples);
      break;
    case ByzantineConfig::Behavior::kCoordinatedDelta:
      for (auto& triple : triples) {
        for (std::size_t i = 0; i < triple.primary.size(); ++i) {
          const std::uint64_t delta = rng_.next_u64() | (1ull << 40);
          triple.primary[i] += delta;
          triple.duplicate[i] += delta;
          triple.second[i] += delta;
        }
      }
      break;
    case ByzantineConfig::Behavior::kStealthyDupSecond:
      for (auto& triple : triples) {
        for (std::size_t i = 0; i < triple.duplicate.size(); ++i) {
          const std::uint64_t delta = rng_.next_u64() | (1ull << 40);
          triple.duplicate[i] += delta;
          triple.second[i] += delta;
        }
      }
      break;
    default:
      break;
  }
}

std::optional<std::vector<PartyShare>> StandardAdversary::replace_shares_for(
    std::uint64_t step, int peer, const std::vector<PartyShare>& honest) {
  const bool global =
      config_.behavior == ByzantineConfig::Behavior::kCommitmentViolationGlobal;
  const bool single =
      config_.behavior ==
          ByzantineConfig::Behavior::kCommitmentViolationSingle &&
      peer == config_.target_peer;
  if ((global || single) && attack_this_step(step)) {
    std::vector<PartyShare> corrupted = honest;
    corrupt(corrupted);
    return corrupted;
  }
  return std::nullopt;
}

bool StandardAdversary::drop_messages_to(std::uint64_t step, int /*peer*/) {
  return config_.behavior == ByzantineConfig::Behavior::kDropMessages &&
         attack_this_step(step);
}

}  // namespace trustddl::mpc
