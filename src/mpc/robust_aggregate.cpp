#include "mpc/robust_aggregate.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "numeric/fixed_point.hpp"
#include "obs/trace.hpp"

namespace trustddl::mpc {
namespace {

/// Selected rank window [lo, hi) for K inputs under `rule`.  Ranks are
/// 0-based positions in the per-coordinate ascending order; the window
/// is the same for every coordinate, so |selected| is data-independent.
struct SelectionWindow {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::size_t count() const { return hi - lo; }
};

SelectionWindow selection_window(std::size_t k, const AggregateOptions& opts) {
  switch (opts.rule) {
    case AggregationRule::kMean:
      return {0, k};
    case AggregationRule::kTrimmedMean: {
      const std::size_t trim = std::min(opts.trim, (k - 1) / 2);
      return {trim, k - trim};
    }
    case AggregationRule::kMedian:
      if (k % 2 == 1) {
        return {(k - 1) / 2, (k - 1) / 2 + 1};
      }
      return {k / 2 - 1, k / 2 + 1};
  }
  TRUSTDDL_REQUIRE(false, "robust_aggregate: unknown aggregation rule");
  return {};
}

RingTensor shift_public(const RingTensor& d, int frac_bits) {
  RingTensor shifted(d.shape());
  for (std::size_t i = 0; i < d.size(); ++i) {
    shifted[i] = fx::truncate(d[i], frac_bits);
  }
  return shifted;
}

/// Stack one operand of every pairwise comparison into a {npairs,
/// numel} share: row p holds the flattened share of input i (first) or
/// j (second) for the p-th pair (i, j), i < j, in lexicographic order.
PartyShare stack_pair_rows(const std::vector<PartyShare>& inputs,
                           std::size_t numel, std::size_t npairs,
                           bool first_of_pair) {
  const Shape stacked{npairs, numel};
  PartyShare out{RingTensor(stacked), RingTensor(stacked),
                 RingTensor(stacked)};
  std::size_t p = 0;
  for (std::size_t i = 0; i + 1 < inputs.size(); ++i) {
    for (std::size_t j = i + 1; j < inputs.size(); ++j, ++p) {
      const PartyShare& src = inputs[first_of_pair ? i : j];
      std::copy(src.primary.data(), src.primary.data() + numel,
                out.primary.data() + p * numel);
      std::copy(src.duplicate.data(), src.duplicate.data() + numel,
                out.duplicate.data() + p * numel);
      std::copy(src.second.data(), src.second.data() + numel,
                out.second.data() + p * numel);
    }
  }
  return out;
}

/// Average `acc` (sum of n_sel selected shares) and hand the result to
/// `out`: n_sel == 1 is exact, otherwise multiply by the fixed-point
/// encoding of 1/n_sel and rescale.  With kMaskedOpen the truncation
/// opening is enqueued against `batch` (it lands in the flush after
/// the caller's current round).
void finalize_average(OpenBatch& batch, DeferredShare out, PartyShare acc,
                      std::size_t n_sel, TruncationMode trunc_mode,
                      const TruncPairShare& pair) {
  if (n_sel == 1) {
    out.set(std::move(acc));
    return;
  }
  const int frac_bits = batch.context().frac_bits;
  PartyShare scaled =
      acc.scaled(fx::encode(1.0 / static_cast<double>(n_sel), frac_bits));
  if (trunc_mode == TruncationMode::kLocal) {
    scaled.truncate_local(frac_bits);
    out.set(std::move(scaled));
    return;
  }
  std::vector<PartyShare> masked;
  masked.push_back(scaled - pair.r);
  batch.enqueue(std::move(masked),
                [out, pair, frac_bits](std::vector<RingTensor> opened) mutable {
                  PartyShare result = pair.r_shifted;
                  result.add_public(shift_public(opened[0], frac_bits));
                  out.set(std::move(result));
                });
}

}  // namespace

const char* aggregation_rule_name(AggregationRule rule) {
  switch (rule) {
    case AggregationRule::kMean:
      return "mean";
    case AggregationRule::kTrimmedMean:
      return "trimmed_mean";
    case AggregationRule::kMedian:
      return "median";
  }
  return "unknown";
}

AggregateDemand aggregate_demand(std::size_t num_inputs, const Shape& shape,
                                 const AggregateOptions& options) {
  AggregateDemand demand;
  if (num_inputs <= 1) {
    return demand;
  }
  const SelectionWindow window = selection_window(num_inputs, options);
  const std::size_t numel = shape_size(shape);
  if (window.count() < num_inputs) {
    demand.needs_comparison = true;
    demand.comparison_shape =
        Shape{num_inputs * (num_inputs - 1) / 2, numel};
  }
  if (window.count() > 1 &&
      options.trunc_mode == TruncationMode::kMaskedOpen) {
    demand.needs_trunc_pair = true;
    demand.trunc_shape = shape;
  }
  return demand;
}

DeferredShare robust_aggregate_prepare(OpenBatch& batch, TripleSource& triples,
                                       const std::vector<PartyShare>& inputs,
                                       const AggregateOptions& options,
                                       AggregateStats* stats) {
  TRUSTDDL_REQUIRE(!inputs.empty(), "robust_aggregate: no inputs");
  const Shape shape = inputs[0].shape();
  for (const PartyShare& in : inputs) {
    TRUSTDDL_REQUIRE(in.shape() == shape,
                     "robust_aggregate: input shapes differ");
  }
  const std::size_t k = inputs.size();
  const std::size_t numel = shape_size(shape);
  const SelectionWindow window = selection_window(k, options);
  const std::size_t n_sel = window.count();
  const bool needs_comparison = n_sel < k;
  if (stats != nullptr) {
    stats->values_submitted = k * numel;
    stats->values_aggregated = n_sel * numel;
    stats->values_trimmed = (k - n_sel) * numel;
    stats->comparisons = needs_comparison ? k * (k - 1) / 2 * numel : 0;
    stats->selected_per_coord = n_sel;
  }

  DeferredShare out;
  if (k == 1) {
    out.set(inputs[0]);
    return out;
  }

  // All preprocessing material is fetched here, before any opening is
  // enqueued, so the SPMD request order is a pure function of
  // (k, shape, options) at every party.
  const bool needs_pair =
      n_sel > 1 && options.trunc_mode == TruncationMode::kMaskedOpen;
  TruncPairShare pair;
  if (needs_pair) {
    pair = triples.trunc_pair(shape);
  }

  if (!needs_comparison) {
    // Selection keeps every input: the rule degenerates to the plain
    // mean and no comparisons are spent (kMean, trim 0, or K ≤ 2).
    PartyShare sum = inputs[0];
    for (std::size_t i = 1; i < k; ++i) {
      sum += inputs[i];
    }
    finalize_average(batch, out, std::move(sum), n_sel, options.trunc_mode,
                     pair);
    return out;
  }

  const std::size_t npairs = k * (k - 1) / 2;
  const Shape comparison_shape{npairs, numel};
  const PartyShare xs = stack_pair_rows(inputs, numel, npairs, true);
  const PartyShare ys = stack_pair_rows(inputs, numel, npairs, false);
  const PartyShare t_aux = triples.comp_aux(comparison_shape);
  const BeaverTripleShare triple = triples.mul_triple(comparison_shape);

  const TruncationMode trunc_mode = options.trunc_mode;
  sec_comp_bt_prepare_on(
      batch, xs, ys, t_aux, triple,
      [&batch, out, inputs, shape, numel, k, window, n_sel, trunc_mode,
       pair](RingTensor signs) mutable {
        // Per-coordinate rank of each owner: the number of owners it
        // beats, ties broken by owner index (i < j and equal values →
        // j outranks i), so ranks form a permutation of 0..k-1 at
        // every coordinate.
        std::vector<std::uint32_t> rank(k * numel, 0);
        std::size_t p = 0;
        for (std::size_t i = 0; i + 1 < k; ++i) {
          for (std::size_t j = i + 1; j < k; ++j, ++p) {
            const std::uint64_t* row = signs.data() + p * numel;
            for (std::size_t c = 0; c < numel; ++c) {
              if (static_cast<std::int64_t>(row[c]) > 0) {
                ++rank[i * numel + c];
              } else {
                ++rank[j * numel + c];
              }
            }
          }
        }
        PartyShare acc = zero_share(shape);
        RingTensor mask(shape);
        for (std::size_t owner = 0; owner < k; ++owner) {
          const std::uint32_t* owner_rank = rank.data() + owner * numel;
          for (std::size_t c = 0; c < numel; ++c) {
            mask[c] =
                (owner_rank[c] >= window.lo && owner_rank[c] < window.hi)
                    ? 1u
                    : 0u;
          }
          PartyShare selected = inputs[owner];
          selected.mul_public(mask);
          acc += selected;
        }
        finalize_average(batch, out, std::move(acc), n_sel, trunc_mode, pair);
      });
  return out;
}

PartyShare robust_aggregate(PartyContext& ctx, TripleSource& triples,
                            const std::vector<PartyShare>& inputs,
                            const AggregateOptions& options,
                            AggregateStats* stats) {
  obs::ScopedSpan span("proto.robust_aggregate", ctx.party, ctx.step);
  OpenBatch batch(ctx);
  DeferredShare out =
      robust_aggregate_prepare(batch, triples, inputs, options, stats);
  batch.flush_all();
  return out.take();
}

RealTensor robust_aggregate_reference(const std::vector<RealTensor>& inputs,
                                      const AggregateOptions& options) {
  TRUSTDDL_REQUIRE(!inputs.empty(), "robust_aggregate_reference: no inputs");
  const Shape shape = inputs[0].shape();
  for (const RealTensor& in : inputs) {
    TRUSTDDL_REQUIRE(in.shape() == shape,
                     "robust_aggregate_reference: input shapes differ");
  }
  const std::size_t k = inputs.size();
  const SelectionWindow window = selection_window(k, options);
  RealTensor out(shape);
  std::vector<std::pair<double, std::size_t>> order(k);
  for (std::size_t c = 0; c < out.size(); ++c) {
    for (std::size_t owner = 0; owner < k; ++owner) {
      order[owner] = {inputs[owner][c], owner};
    }
    std::sort(order.begin(), order.end());
    double sum = 0.0;
    for (std::size_t pos = window.lo; pos < window.hi; ++pos) {
      sum += order[pos].first;
    }
    out[c] = sum / static_cast<double>(window.count());
  }
  return out;
}

}  // namespace trustddl::mpc
