#include "mpc/protocols_bt.hpp"

#include "numeric/fixed_point.hpp"
#include "numeric/kernels.hpp"
#include "obs/trace.hpp"

namespace trustddl::mpc {
namespace {

/// Shared tail of SecMul-BT / SecMatMul-BT (Algorithm 4 lines 21-24):
/// combine the opened masks e, f with the triple shares.  `product`
/// abstracts elementwise vs matrix multiplication.
template <typename ProductFn>
PartyShare combine_with_triple(const RingTensor& e, const RingTensor& f,
                               const BeaverTripleShare& triple,
                               const ProductFn& product) {
  PartyShare z;
  z.primary = triple.c.primary + product(e, triple.b.primary) +
              product(triple.a.primary, f);
  z.duplicate = triple.c.duplicate + product(e, triple.b.duplicate) +
                product(triple.a.duplicate, f);
  // r = 2 in Algorithm 4: the e·f term goes into share 2 of every set,
  // which each party holds for exactly one set.
  z.second = triple.c.second + product(e, triple.b.second) +
             product(triple.a.second, f) + product(e, f);
  return z;
}

RingTensor hadamard_product(const RingTensor& lhs, const RingTensor& rhs) {
  return kernels::hadamard_parallel(lhs, rhs);
}

RingTensor matmul_product(const RingTensor& lhs, const RingTensor& rhs) {
  return matmul(lhs, rhs);
}

/// Shared head of the deferred multiplications: enqueue the opening of
/// (e, f) = (x − a, y − b) and hand the continuation the combine step.
template <typename ProductFn>
DeferredShare masked_multiply_prepare(OpenBatch& batch, const PartyShare& x,
                                      const PartyShare& y,
                                      const BeaverTripleShare& triple,
                                      const ProductFn& product) {
  DeferredShare out;
  const int party = batch.context().party;
  std::vector<PartyShare> masked;
  {
    obs::ScopedSpan mask_span("proto.mask", party, batch.context().step);
    masked.push_back(x - triple.a);
    masked.push_back(y - triple.b);
  }
  batch.enqueue(
      std::move(masked),
      [out, triple, product, party](std::vector<RingTensor> opened) mutable {
        obs::ScopedSpan combine_span("proto.combine", party);
        out.set(combine_with_triple(opened[0], opened[1], triple, product));
      });
  return out;
}

RingTensor signs_from_beta(const RingTensor& beta) {
  RingTensor signs(beta.shape());
  for (std::size_t i = 0; i < signs.size(); ++i) {
    signs[i] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(fx::sign(beta[i])));
  }
  return signs;
}

RingTensor shift_public(const RingTensor& d, int frac_bits) {
  RingTensor shifted(d.shape());
  for (std::size_t i = 0; i < d.size(); ++i) {
    shifted[i] = fx::truncate(d[i], frac_bits);
  }
  return shifted;
}

}  // namespace

DeferredShare sec_mul_bt_prepare(OpenBatch& batch, const PartyShare& x,
                                 const PartyShare& y,
                                 const BeaverTripleShare& triple) {
  TRUSTDDL_REQUIRE(x.shape() == y.shape(),
                   "sec_mul_bt: operand shapes differ");
  return masked_multiply_prepare(batch, x, y, triple, hadamard_product);
}

DeferredShare sec_matmul_bt_prepare(OpenBatch& batch, const PartyShare& x,
                                    const PartyShare& y,
                                    const BeaverTripleShare& triple) {
  TRUSTDDL_REQUIRE(x.shape().size() == 2 && y.shape().size() == 2 &&
                       x.shape()[1] == y.shape()[0],
                   "sec_matmul_bt: incompatible operand shapes");
  return masked_multiply_prepare(batch, x, y, triple, matmul_product);
}

void sec_comp_bt_prepare_on(OpenBatch& batch, const PartyShare& x,
                            const PartyShare& y, const PartyShare& t_aux,
                            const BeaverTripleShare& triple,
                            std::function<void(RingTensor)> on_signs) {
  TRUSTDDL_REQUIRE(x.shape() == y.shape(),
                   "sec_comp_bt: operand shapes differ");
  // beta = t ⊙ (x - y); t has positive entries, so sign(beta) equals
  // sign(x - y) while the magnitude stays masked.
  const PartyShare alpha = x - y;
  std::vector<PartyShare> masked;
  masked.push_back(t_aux - triple.a);
  masked.push_back(alpha - triple.b);
  batch.enqueue(
      std::move(masked),
      [&batch, on_signs = std::move(on_signs),
       triple](std::vector<RingTensor> opened) mutable {
        PartyShare beta = combine_with_triple(opened[0], opened[1], triple,
                                              hadamard_product);
        // The β opening depends on this round's result, so it lands in
        // the NEXT flush — alongside every other chained opening.
        std::vector<PartyShare> follow_up;
        follow_up.push_back(std::move(beta));
        batch.enqueue(std::move(follow_up),
                      [on_signs = std::move(on_signs)](
                          std::vector<RingTensor> opened_beta) mutable {
                        on_signs(signs_from_beta(opened_beta[0]));
                      });
      });
}

DeferredTensor sec_comp_bt_prepare(OpenBatch& batch, const PartyShare& x,
                                   const PartyShare& y,
                                   const PartyShare& t_aux,
                                   const BeaverTripleShare& triple) {
  DeferredTensor out;
  sec_comp_bt_prepare_on(batch, x, y, t_aux, triple,
                         [out](RingTensor signs) mutable {
                           out.set(std::move(signs));
                         });
  return out;
}

DeferredTensor sec_sign_bt_prepare(OpenBatch& batch, const PartyShare& x,
                                   const PartyShare& t_aux,
                                   const BeaverTripleShare& triple) {
  return sec_comp_bt_prepare(batch, x, zero_share(x.shape()), t_aux, triple);
}

DeferredShare truncate_product_masked_prepare(OpenBatch& batch,
                                              const PartyShare& z,
                                              const TruncPairShare& pair) {
  TRUSTDDL_REQUIRE(z.shape() == pair.r.shape(),
                   "truncate_product_masked: pair shape mismatch");
  DeferredShare out;
  const int frac_bits = batch.context().frac_bits;
  // Open d = v - r; r is uniform 62-bit so d never wraps for bounded v
  // and statistically hides it.  The public shift is then exact and,
  // crucially, identical at every party — all six reconstructions of
  // downstream values stay consistent.
  std::vector<PartyShare> masked;
  masked.push_back(z - pair.r);
  batch.enqueue(std::move(masked),
                [out, pair, frac_bits](std::vector<RingTensor> opened) mutable {
                  PartyShare result = pair.r_shifted;
                  result.add_public(shift_public(opened[0], frac_bits));
                  out.set(std::move(result));
                });
  return out;
}

DeferredShare sec_matmul_bt_rescaled_prepare(
    OpenBatch& batch, const PartyShare& x, const PartyShare& y,
    const BeaverTripleShare& triple, TruncationMode trunc_mode,
    const TruncPairShare* pair) {
  TRUSTDDL_REQUIRE(x.shape().size() == 2 && y.shape().size() == 2 &&
                       x.shape()[1] == y.shape()[0],
                   "sec_matmul_bt: incompatible operand shapes");
  DeferredShare out;
  const int frac_bits = batch.context().frac_bits;
  if (trunc_mode == TruncationMode::kLocal) {
    std::vector<PartyShare> masked;
    masked.push_back(x - triple.a);
    masked.push_back(y - triple.b);
    batch.enqueue(std::move(masked),
                  [out, triple, frac_bits](
                      std::vector<RingTensor> opened) mutable {
                    PartyShare z = combine_with_triple(
                        opened[0], opened[1], triple, matmul_product);
                    z.truncate_local(frac_bits);
                    out.set(std::move(z));
                  });
    return out;
  }
  TRUSTDDL_REQUIRE(pair != nullptr,
                   "sec_matmul_bt_rescaled_prepare: masked-open rescale "
                   "needs a truncation pair");
  const TruncPairShare trunc = *pair;
  TRUSTDDL_REQUIRE(
      trunc.r.shape() == Shape({x.shape()[0], y.shape()[1]}),
      "sec_matmul_bt_rescaled_prepare: pair shape mismatch");
  std::vector<PartyShare> masked;
  masked.push_back(x - triple.a);
  masked.push_back(y - triple.b);
  batch.enqueue(
      std::move(masked),
      [&batch, out, triple, trunc,
       frac_bits](std::vector<RingTensor> opened) mutable {
        const PartyShare z = combine_with_triple(opened[0], opened[1], triple,
                                                 matmul_product);
        // Chain the masked-open truncation into the next flush: every
        // matmul prepared against this batch shares that round too.
        std::vector<PartyShare> follow_up;
        follow_up.push_back(z - trunc.r);
        batch.enqueue(std::move(follow_up),
                      [out, trunc, frac_bits](
                          std::vector<RingTensor> opened_d) mutable {
                        PartyShare result = trunc.r_shifted;
                        result.add_public(
                            shift_public(opened_d[0], frac_bits));
                        out.set(std::move(result));
                      });
      });
  return out;
}

PartyShare sec_mul_bt(PartyContext& ctx, const PartyShare& x,
                      const PartyShare& y, const BeaverTripleShare& triple) {
  obs::ScopedSpan span("proto.sec_mul_bt", ctx.party, ctx.step);
  OpenBatch batch(ctx);
  DeferredShare z = sec_mul_bt_prepare(batch, x, y, triple);
  batch.flush_all();
  return z.take();
}

PartyShare sec_matmul_bt(PartyContext& ctx, const PartyShare& x,
                         const PartyShare& y,
                         const BeaverTripleShare& triple) {
  obs::ScopedSpan span("proto.sec_matmul_bt", ctx.party, ctx.step);
  OpenBatch batch(ctx);
  DeferredShare z = sec_matmul_bt_prepare(batch, x, y, triple);
  batch.flush_all();
  return z.take();
}

RingTensor sec_comp_bt(PartyContext& ctx, const PartyShare& x,
                       const PartyShare& y, const PartyShare& t_aux,
                       const BeaverTripleShare& triple) {
  obs::ScopedSpan span("proto.sec_comp_bt", ctx.party, ctx.step);
  OpenBatch batch(ctx);
  DeferredTensor signs = sec_comp_bt_prepare(batch, x, y, t_aux, triple);
  batch.flush_all();
  return signs.take();
}

RingTensor sec_sign_bt(PartyContext& ctx, const PartyShare& x,
                       const PartyShare& t_aux,
                       const BeaverTripleShare& triple) {
  return sec_comp_bt(ctx, x, zero_share(x.shape()), t_aux, triple);
}

RingTensor positive_mask(const RingTensor& signs) {
  RingTensor mask(signs.shape());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask[i] = (static_cast<std::int64_t>(signs[i]) > 0) ? 1u : 0u;
  }
  return mask;
}

PartyShare truncate_product_local(const PartyShare& z, int frac_bits) {
  PartyShare out = z;
  out.truncate_local(frac_bits);
  return out;
}

PartyShare truncate_product_masked(PartyContext& ctx, const PartyShare& z,
                                   const TruncPairShare& pair) {
  OpenBatch batch(ctx);
  DeferredShare out = truncate_product_masked_prepare(batch, z, pair);
  batch.flush_all();
  return out.take();
}

}  // namespace trustddl::mpc
