#include "mpc/protocols_bt.hpp"

#include "numeric/fixed_point.hpp"

namespace trustddl::mpc {
namespace {

/// Shared tail of SecMul-BT / SecMatMul-BT (Algorithm 4 lines 21-24):
/// combine the opened masks e, f with the triple shares.  `product`
/// abstracts elementwise vs matrix multiplication.
template <typename ProductFn>
PartyShare combine_with_triple(const RingTensor& e, const RingTensor& f,
                               const BeaverTripleShare& triple,
                               const ProductFn& product) {
  PartyShare z;
  z.primary = triple.c.primary + product(e, triple.b.primary) +
              product(triple.a.primary, f);
  z.duplicate = triple.c.duplicate + product(e, triple.b.duplicate) +
                product(triple.a.duplicate, f);
  // r = 2 in Algorithm 4: the e·f term goes into share 2 of every set,
  // which each party holds for exactly one set.
  z.second = triple.c.second + product(e, triple.b.second) +
             product(triple.a.second, f) + product(e, f);
  return z;
}

}  // namespace

PartyShare sec_mul_bt(PartyContext& ctx, const PartyShare& x,
                      const PartyShare& y, const BeaverTripleShare& triple) {
  TRUSTDDL_REQUIRE(x.shape() == y.shape(),
                   "sec_mul_bt: operand shapes differ");
  const PartyShare e_share = x - triple.a;
  const PartyShare f_share = y - triple.b;
  const std::vector<RingTensor> opened =
      open_values(ctx, {e_share, f_share});
  const RingTensor& e = opened[0];
  const RingTensor& f = opened[1];
  return combine_with_triple(
      e, f, triple,
      [](const RingTensor& lhs, const RingTensor& rhs) {
        return hadamard(lhs, rhs);
      });
}

PartyShare sec_matmul_bt(PartyContext& ctx, const PartyShare& x,
                         const PartyShare& y,
                         const BeaverTripleShare& triple) {
  TRUSTDDL_REQUIRE(x.shape().size() == 2 && y.shape().size() == 2 &&
                       x.shape()[1] == y.shape()[0],
                   "sec_matmul_bt: incompatible operand shapes");
  const PartyShare e_share = x - triple.a;
  const PartyShare f_share = y - triple.b;
  const std::vector<RingTensor> opened =
      open_values(ctx, {e_share, f_share});
  const RingTensor& e = opened[0];
  const RingTensor& f = opened[1];
  return combine_with_triple(
      e, f, triple,
      [](const RingTensor& lhs, const RingTensor& rhs) {
        return matmul(lhs, rhs);
      });
}

RingTensor sec_comp_bt(PartyContext& ctx, const PartyShare& x,
                       const PartyShare& y, const PartyShare& t_aux,
                       const BeaverTripleShare& triple) {
  TRUSTDDL_REQUIRE(x.shape() == y.shape(),
                   "sec_comp_bt: operand shapes differ");
  const PartyShare alpha = x - y;
  // beta = t ⊙ (x - y); t has positive entries, so sign(beta) equals
  // sign(x - y) while the magnitude stays masked.
  const PartyShare beta = sec_mul_bt(ctx, t_aux, alpha, triple);
  const RingTensor opened_beta = open_value(ctx, beta);
  RingTensor signs(opened_beta.shape());
  for (std::size_t i = 0; i < signs.size(); ++i) {
    signs[i] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(fx::sign(opened_beta[i])));
  }
  return signs;
}

RingTensor sec_sign_bt(PartyContext& ctx, const PartyShare& x,
                       const PartyShare& t_aux,
                       const BeaverTripleShare& triple) {
  return sec_comp_bt(ctx, x, zero_share(x.shape()), t_aux, triple);
}

RingTensor positive_mask(const RingTensor& signs) {
  RingTensor mask(signs.shape());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask[i] = (static_cast<std::int64_t>(signs[i]) > 0) ? 1u : 0u;
  }
  return mask;
}

PartyShare truncate_product_local(const PartyShare& z, int frac_bits) {
  PartyShare out = z;
  out.truncate_local(frac_bits);
  return out;
}

PartyShare truncate_product_masked(PartyContext& ctx, const PartyShare& z,
                                   const TruncPairShare& pair) {
  TRUSTDDL_REQUIRE(z.shape() == pair.r.shape(),
                   "truncate_product_masked: pair shape mismatch");
  // Open d = v - r; r is uniform 62-bit so d never wraps for bounded v
  // and statistically hides it.  The public shift is then exact and,
  // crucially, identical at every party — all six reconstructions of
  // downstream values stay consistent.
  const PartyShare d_share = z - pair.r;
  const RingTensor d = open_value(ctx, d_share);
  RingTensor d_shifted(d.shape());
  for (std::size_t i = 0; i < d.size(); ++i) {
    d_shifted[i] = fx::truncate(d[i], ctx.frac_bits);
  }
  PartyShare out = pair.r_shifted;
  out.add_public(d_shifted);
  return out;
}

}  // namespace trustddl::mpc
