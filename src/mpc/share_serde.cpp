#include "mpc/share_serde.hpp"

#include "numeric/serde.hpp"

namespace trustddl::mpc {

void write_party_share(ByteWriter& writer, const PartyShare& share) {
  write_tensor(writer, share.primary);
  write_tensor(writer, share.duplicate);
  write_tensor(writer, share.second);
}

PartyShare read_party_share(ByteReader& reader) {
  PartyShare share;
  share.primary = read_tensor(reader);
  share.duplicate = read_tensor(reader);
  share.second = read_tensor(reader);
  return share;
}

void write_beaver_share(ByteWriter& writer, const BeaverTripleShare& triple) {
  write_party_share(writer, triple.a);
  write_party_share(writer, triple.b);
  write_party_share(writer, triple.c);
}

BeaverTripleShare read_beaver_share(ByteReader& reader) {
  BeaverTripleShare triple;
  triple.a = read_party_share(reader);
  triple.b = read_party_share(reader);
  triple.c = read_party_share(reader);
  return triple;
}

void write_trunc_pair(ByteWriter& writer, const TruncPairShare& pair) {
  write_party_share(writer, pair.r);
  write_party_share(writer, pair.r_shifted);
}

TruncPairShare read_trunc_pair(ByteReader& reader) {
  TruncPairShare pair;
  pair.r = read_party_share(reader);
  pair.r_shifted = read_party_share(reader);
  return pair;
}

}  // namespace trustddl::mpc
