// Robust opening of replicated-shared values — the reconstruction core
// shared by SecMul-BT, SecMatMul-BT and SecComp-BT (paper §III-B,
// Algorithm 4 lines 3-20 / Algorithm 5 lines 3-17).
//
// In SecurityMode::kMalicious an opening runs three rounds:
//   1. commitment: each party sends SHA-256(step ‖ sender ‖ triples)
//   2. confirmation: receipt acks, so nobody reveals shares before
//      everyone committed
//   3. exchange: full share triples, re-hashed and checked against the
//      commitments
// followed by the six reconstructions  s^j = [s]_1^j + [s]_2^j  and
// ŝ^j = [ŝ]_1^j + [s]_2^j  per value and the minimum-distance decision
// rule over pairs (s^j, ŝ^k), j ≠ k.  Reconstructions that involve a
// party whose commitment check failed (or whose messages never
// arrived) are flagged and excluded — one Byzantine party can corrupt
// at most {s^a, ŝ^{a+1}, s^{a+2}, ŝ^{a+2}}, so a clean pair always
// survives and every honest party recovers without aborting
// (guaranteed output delivery).
//
// In SecurityMode::kHonestButCurious the commitment and confirmation
// rounds are skipped and parties exchange only the (share-1, share-2)
// pair; reconstruction takes the elementwise median of the three sets,
// which also absorbs the rare ±big glitches of share-local fixed-point
// truncation.
#pragma once

#include <vector>

#include "mpc/context.hpp"
#include "mpc/sharing.hpp"

namespace trustddl::mpc {

/// Open several shared values to all computing parties in one round
/// trip (one commitment covers all of them, as Algorithm 4 opens e and
/// f together).  Returns the public values in input order.
/// Throws ProtocolError if fewer than two parties' data is usable.
std::vector<RingTensor> open_values(PartyContext& ctx,
                                    const std::vector<PartyShare>& values);

/// Single-value convenience wrapper.
RingTensor open_value(PartyContext& ctx, const PartyShare& value);

}  // namespace trustddl::mpc
