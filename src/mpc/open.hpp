// Robust opening of replicated-shared values — the reconstruction core
// shared by SecMul-BT, SecMatMul-BT and SecComp-BT (paper §III-B,
// Algorithm 4 lines 3-20 / Algorithm 5 lines 3-17).
//
// In SecurityMode::kMalicious an opening runs three rounds:
//   1. commitment: each party sends SHA-256(step ‖ sender ‖ triples)
//   2. confirmation: receipt acks, so nobody reveals shares before
//      everyone committed
//   3. exchange: full share triples, re-hashed and checked against the
//      commitments
// followed by the six reconstructions  s^j = [s]_1^j + [s]_2^j  and
// ŝ^j = [ŝ]_1^j + [s]_2^j  per value and the minimum-distance decision
// rule over pairs (s^j, ŝ^k), j ≠ k.  Reconstructions that involve a
// party whose commitment check failed (or whose messages never
// arrived) are flagged and excluded — one Byzantine party can corrupt
// at most {s^a, ŝ^{a+1}, s^{a+2}, ŝ^{a+2}}, so a clean pair always
// survives and every honest party recovers without aborting
// (guaranteed output delivery).
//
// In SecurityMode::kHonestButCurious the commitment and confirmation
// rounds are skipped and parties exchange only the (share-1, share-2)
// pair; reconstruction takes the elementwise median of the three sets,
// which also absorbs the rare ±big glitches of share-local fixed-point
// truncation.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "mpc/context.hpp"
#include "mpc/sharing.hpp"

namespace trustddl::mpc {

/// Open several shared values to all computing parties in one round
/// trip (one commitment covers all of them, as Algorithm 4 opens e and
/// f together).  Returns the public values in input order.
/// Throws ProtocolError if fewer than two parties' data is usable.
std::vector<RingTensor> open_values(PartyContext& ctx,
                                    const std::vector<PartyShare>& values);

/// Multi-call variant used by OpenBatch: one network round covers all
/// `values`, but the minimum-distance decision rule runs independently
/// over each consecutive group of `group_sizes[i]` values — exactly as
/// if each group had been opened by its own open_values call.  This
/// keeps pair selection (and therefore the adopted reconstruction,
/// which can differ by share-local truncation ulps between pairs)
/// bit-identical to the unbatched schedule.  group_sizes must sum to
/// values.size().
std::vector<RingTensor> open_values_grouped(
    PartyContext& ctx, const std::vector<PartyShare>& values,
    const std::vector<std::size_t>& group_sizes);

/// Single-value convenience wrapper.
RingTensor open_value(PartyContext& ctx, const PartyShare& value);

/// Handle to a value that becomes available once the OpenBatch that
/// produced it has flushed the round(s) it depends on.  Copies share
/// the slot, so a protocol `_prepare` call can hand the caller a
/// handle while the batch keeps another to fill in.
template <typename T>
class Deferred {
 public:
  Deferred() : slot_(std::make_shared<std::optional<T>>()) {}

  bool ready() const { return slot_->has_value(); }

  /// The resolved value; only valid after the owning batch flushed
  /// every round this result depends on (see OpenBatch::flush_all).
  const T& get() const {
    TRUSTDDL_REQUIRE(slot_->has_value(),
                     "Deferred::get before the owning OpenBatch flushed");
    return **slot_;
  }

  /// Move the resolved value out.
  T take() {
    TRUSTDDL_REQUIRE(slot_->has_value(),
                     "Deferred::take before the owning OpenBatch flushed");
    return std::move(**slot_);
  }

  void set(T value) { *slot_ = std::move(value); }

 private:
  std::shared_ptr<std::optional<T>> slot_;
};

using DeferredShare = Deferred<PartyShare>;
using DeferredTensor = Deferred<RingTensor>;

/// Round scheduler for robust openings (see DESIGN.md §"Round
/// scheduling").
///
/// Protocol calls that would each pay a full
/// commitment→confirmation→exchange round trip instead *enqueue* their
/// masked shares here together with a continuation; `flush()` then
/// runs ONE opening round (one commitment covering every pending
/// value, exactly like Algorithm 4 opens e and f together) and
/// dispatches the reconstructed public values back to the per-call
/// continuations in enqueue order.  Continuations may enqueue further
/// openings (data-dependent follow-ups such as the masked-open
/// truncation of a product); those run in the NEXT flush, so
/// `flush_all()` loops until the dependency chains are drained.
///
/// SPMD alignment: all parties execute the same protocol program, so
/// they enqueue the same openings in the same order and call flush at
/// the same points — each flush consumes exactly one step-counter
/// value at every party and the message tags stay aligned.  Batching
/// changes neither the reconstructed values nor the detection
/// machinery: the commitment and share-authentication checks cover the
/// whole round, while the six-way minimum-distance rule runs per
/// enqueued group (open_values_grouped), so each protocol call adopts
/// the same reconstruction pair it would have chosen unbatched.
class OpenBatch {
 public:
  using Continuation = std::function<void(std::vector<RingTensor>)>;

  explicit OpenBatch(PartyContext& ctx) : ctx_(ctx) {}
  OpenBatch(const OpenBatch&) = delete;
  OpenBatch& operator=(const OpenBatch&) = delete;
  ~OpenBatch();

  PartyContext& context() { return ctx_; }

  /// Enqueue `values` for the next flush; `on_open` receives their
  /// reconstructed public values (input order preserved).
  void enqueue(std::vector<PartyShare> values, Continuation on_open);

  /// Convenience: enqueue a single value and get a handle to its
  /// public reconstruction.
  DeferredTensor enqueue_value(PartyShare value);

  /// Number of openings (enqueue calls) awaiting the next flush.
  std::size_t pending() const { return pending_.size(); }

  /// One commitment/confirmation/exchange round over everything
  /// pending; no-op when nothing is queued.
  void flush();

  /// Flush until continuations stop enqueueing follow-up openings.
  void flush_all();

  /// Lifetime stats, for tests and benches.
  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t openings_enqueued() const { return enqueued_; }

 private:
  struct PendingOpen {
    std::size_t count = 0;
    Continuation on_open;
  };

  PartyContext& ctx_;
  std::vector<PartyShare> queue_;
  std::vector<PendingOpen> pending_;
  std::uint64_t flushes_ = 0;
  std::uint64_t enqueued_ = 0;
};

}  // namespace trustddl::mpc
