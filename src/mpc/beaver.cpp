#include "mpc/beaver.hpp"

#include <utility>

#include "common/error.hpp"
#include "numeric/fixed_point.hpp"

namespace trustddl::mpc {
namespace {

RingTensor random_ring_tensor(const Shape& shape, Rng& rng) {
  RingTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_u64();
  }
  return out;
}

std::array<BeaverTripleShare, kNumParties> package_triple(
    const RingTensor& a, const RingTensor& b, const RingTensor& c, Rng& rng) {
  const auto a_views = share_secret(a, rng);
  const auto b_views = share_secret(b, rng);
  const auto c_views = share_secret(c, rng);
  std::array<BeaverTripleShare, kNumParties> out;
  for (int party = 0; party < kNumParties; ++party) {
    const auto index = static_cast<std::size_t>(party);
    out[index] = BeaverTripleShare{a_views[index], b_views[index],
                                   c_views[index]};
  }
  return out;
}

/// splitmix64 finalizer: the standard 64-bit avalanche mix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::array<BeaverTripleShare, kNumParties> deal_mul_triple(const Shape& shape,
                                                           Rng& rng) {
  const RingTensor a = random_ring_tensor(shape, rng);
  const RingTensor b = random_ring_tensor(shape, rng);
  const RingTensor c = hadamard(a, b);
  return package_triple(a, b, c, rng);
}

std::array<BeaverTripleShare, kNumParties> deal_matmul_triple(std::size_t m,
                                                              std::size_t k,
                                                              std::size_t n,
                                                              Rng& rng) {
  const RingTensor a = random_ring_tensor(Shape{m, k}, rng);
  const RingTensor b = random_ring_tensor(Shape{k, n}, rng);
  const RingTensor c = matmul(a, b);
  return package_triple(a, b, c, rng);
}

std::array<PartyShare, kNumParties> deal_positive_aux(const Shape& shape,
                                                      int frac_bits,
                                                      Rng& rng) {
  RingTensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = fx::encode(rng.next_double(0.5, 2.0), frac_bits);
  }
  return share_secret(t, rng);
}

std::array<TruncPairShare, kNumParties> deal_trunc_pair(const Shape& shape,
                                                        int frac_bits,
                                                        Rng& rng) {
  RingTensor r(shape);
  RingTensor r_shifted(shape);
  for (std::size_t i = 0; i < r.size(); ++i) {
    // r uniform in [0, 2^62): the masked difference v - r stays inside
    // (-2^62, 2^62) for any bounded v, so opening it never wraps.
    r[i] = rng.next_u64() >> 2;
    r_shifted[i] = r[i] >> frac_bits;
  }
  const auto r_views = share_secret(r, rng);
  const auto shifted_views = share_secret(r_shifted, rng);
  std::array<TruncPairShare, kNumParties> out;
  for (int party = 0; party < kNumParties; ++party) {
    const auto index = static_cast<std::size_t>(party);
    out[index] = TruncPairShare{r_views[index], shifted_views[index]};
  }
  return out;
}

const char* triple_kind_name(TripleKind kind) {
  switch (kind) {
    case TripleKind::kMul:
      return "mul";
    case TripleKind::kMatMul:
      return "matmul";
    case TripleKind::kCompAux:
      return "comp_aux";
    case TripleKind::kTruncPair:
      return "trunc_pair";
  }
  return "unknown";
}

std::size_t TripleKeyHash::operator()(const TripleKey& key) const {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(key.kind) + 1);
  for (std::size_t dim : key.dims) {
    h = mix64(h ^ static_cast<std::uint64_t>(dim));
  }
  return static_cast<std::size_t>(h);
}

std::uint64_t derive_material_seed(std::uint64_t master_seed,
                                   const TripleKey& key, std::uint64_t index) {
  std::uint64_t h = mix64(master_seed);
  h = mix64(h ^ (static_cast<std::uint64_t>(key.kind) + 0x51ULL));
  h = mix64(h ^ static_cast<std::uint64_t>(key.dims.size()));
  for (std::size_t dim : key.dims) {
    h = mix64(h ^ static_cast<std::uint64_t>(dim));
  }
  return mix64(h ^ index);
}

std::array<MaterialBatch, kNumParties> deal_material(const TripleKey& key,
                                                     std::uint64_t start,
                                                     std::size_t count,
                                                     std::uint64_t master_seed,
                                                     int frac_bits) {
  std::array<MaterialBatch, kNumParties> out;
  for (std::size_t i = 0; i < count; ++i) {
    // Fresh generator per entry: material is addressable by (key,
    // index) alone, independent of the range it was requested in.
    Rng rng(derive_material_seed(master_seed, key, start + i));
    switch (key.kind) {
      case TripleKind::kMul: {
        const auto views = deal_mul_triple(key.dims, rng);
        for (int p = 0; p < kNumParties; ++p) {
          out[static_cast<std::size_t>(p)].triples.push_back(
              views[static_cast<std::size_t>(p)]);
        }
        break;
      }
      case TripleKind::kMatMul: {
        if (key.dims.size() != 3) {
          throw InvalidArgument("matmul triple key needs dims {m, k, n}");
        }
        const auto views =
            deal_matmul_triple(key.dims[0], key.dims[1], key.dims[2], rng);
        for (int p = 0; p < kNumParties; ++p) {
          out[static_cast<std::size_t>(p)].triples.push_back(
              views[static_cast<std::size_t>(p)]);
        }
        break;
      }
      case TripleKind::kCompAux: {
        const auto views = deal_positive_aux(key.dims, frac_bits, rng);
        for (int p = 0; p < kNumParties; ++p) {
          out[static_cast<std::size_t>(p)].aux.push_back(
              views[static_cast<std::size_t>(p)]);
        }
        break;
      }
      case TripleKind::kTruncPair: {
        const auto views = deal_trunc_pair(key.dims, frac_bits, rng);
        for (int p = 0; p < kNumParties; ++p) {
          out[static_cast<std::size_t>(p)].pairs.push_back(
              views[static_cast<std::size_t>(p)]);
        }
        break;
      }
    }
  }
  return out;
}

SharedDealer::SharedDealer(std::uint64_t seed, int frac_bits)
    : seed_(seed), frac_bits_(frac_bits) {}

MaterialBatch SharedDealer::fetch(const TripleKey& key, std::uint64_t index,
                                  int party) {
  auto& per_key = cache_[key];
  auto it = per_key.find(index);
  if (it == per_key.end()) {
    // Derived-seed generation: regenerating an evicted entry yields the
    // identical material, so eviction below is always safe.
    it = per_key
             .emplace(index,
                      Entry{deal_material(key, index, 1, seed_, frac_bits_),
                            0})
             .first;
    cache_fifo_.emplace_back(key, index);
    ++cache_size_;
    while (cache_size_ > kMaxCacheEntries) {
      const auto [old_key, old_index] = cache_fifo_.front();
      cache_fifo_.pop_front();
      auto bucket = cache_.find(old_key);
      if (bucket != cache_.end() && bucket->second.erase(old_index) > 0) {
        --cache_size_;
        if (bucket->second.empty()) {
          cache_.erase(bucket);
        }
      }
      // The FIFO may hold stale records for entries already retired by
      // the all-parties-served fast path; skip those and keep draining.
      // The entry just inserted is newest in FIFO order, so it is never
      // evicted here and `it` stays valid (erase only invalidates
      // iterators to the erased elements).
    }
  }
  MaterialBatch view = it->second.views[static_cast<std::size_t>(party)];
  it->second.served |= (1 << party);
  if (it->second.served == 0b111) {
    cache_[key].erase(index);
    if (cache_[key].empty()) {
      cache_.erase(key);
    }
    --cache_size_;
  }
  return view;
}

BeaverTripleShare SharedDealer::mul_triple(int party, const Shape& shape) {
  std::lock_guard<std::mutex> lock(mu_);
  const TripleKey key = TripleKey::mul(shape);
  const std::uint64_t index =
      counters_[key][static_cast<std::size_t>(party)]++;
  return std::move(fetch(key, index, party).triples[0]);
}

BeaverTripleShare SharedDealer::matmul_triple(int party, std::size_t m,
                                              std::size_t k, std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  const TripleKey key = TripleKey::matmul(m, k, n);
  const std::uint64_t index =
      counters_[key][static_cast<std::size_t>(party)]++;
  return std::move(fetch(key, index, party).triples[0]);
}

PartyShare SharedDealer::comp_aux(int party, const Shape& shape) {
  std::lock_guard<std::mutex> lock(mu_);
  const TripleKey key = TripleKey::comp_aux(shape);
  const std::uint64_t index =
      counters_[key][static_cast<std::size_t>(party)]++;
  return std::move(fetch(key, index, party).aux[0]);
}

TruncPairShare SharedDealer::trunc_pair(int party, const Shape& shape) {
  std::lock_guard<std::mutex> lock(mu_);
  const TripleKey key = TripleKey::trunc_pair(shape);
  const std::uint64_t index =
      counters_[key][static_cast<std::size_t>(party)]++;
  return std::move(fetch(key, index, party).pairs[0]);
}

std::size_t SharedDealer::cache_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_size_;
}

}  // namespace trustddl::mpc
