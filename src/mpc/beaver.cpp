#include "mpc/beaver.hpp"

#include "common/error.hpp"
#include "numeric/fixed_point.hpp"

namespace trustddl::mpc {
namespace {

RingTensor random_ring_tensor(const Shape& shape, Rng& rng) {
  RingTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_u64();
  }
  return out;
}

std::array<BeaverTripleShare, kNumParties> package_triple(
    const RingTensor& a, const RingTensor& b, const RingTensor& c, Rng& rng) {
  const auto a_views = share_secret(a, rng);
  const auto b_views = share_secret(b, rng);
  const auto c_views = share_secret(c, rng);
  std::array<BeaverTripleShare, kNumParties> out;
  for (int party = 0; party < kNumParties; ++party) {
    const auto index = static_cast<std::size_t>(party);
    out[index] = BeaverTripleShare{a_views[index], b_views[index],
                                   c_views[index]};
  }
  return out;
}

}  // namespace

std::array<BeaverTripleShare, kNumParties> deal_mul_triple(const Shape& shape,
                                                           Rng& rng) {
  const RingTensor a = random_ring_tensor(shape, rng);
  const RingTensor b = random_ring_tensor(shape, rng);
  const RingTensor c = hadamard(a, b);
  return package_triple(a, b, c, rng);
}

std::array<BeaverTripleShare, kNumParties> deal_matmul_triple(std::size_t m,
                                                              std::size_t k,
                                                              std::size_t n,
                                                              Rng& rng) {
  const RingTensor a = random_ring_tensor(Shape{m, k}, rng);
  const RingTensor b = random_ring_tensor(Shape{k, n}, rng);
  const RingTensor c = matmul(a, b);
  return package_triple(a, b, c, rng);
}

std::array<PartyShare, kNumParties> deal_positive_aux(const Shape& shape,
                                                      int frac_bits,
                                                      Rng& rng) {
  RingTensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = fx::encode(rng.next_double(0.5, 2.0), frac_bits);
  }
  return share_secret(t, rng);
}

std::array<TruncPairShare, kNumParties> deal_trunc_pair(const Shape& shape,
                                                        int frac_bits,
                                                        Rng& rng) {
  RingTensor r(shape);
  RingTensor r_shifted(shape);
  for (std::size_t i = 0; i < r.size(); ++i) {
    // r uniform in [0, 2^62): the masked difference v - r stays inside
    // (-2^62, 2^62) for any bounded v, so opening it never wraps.
    r[i] = rng.next_u64() >> 2;
    r_shifted[i] = r[i] >> frac_bits;
  }
  const auto r_views = share_secret(r, rng);
  const auto shifted_views = share_secret(r_shifted, rng);
  std::array<TruncPairShare, kNumParties> out;
  for (int party = 0; party < kNumParties; ++party) {
    const auto index = static_cast<std::size_t>(party);
    out[index] = TruncPairShare{r_views[index], shifted_views[index]};
  }
  return out;
}

SharedDealer::SharedDealer(std::uint64_t seed, int frac_bits)
    : rng_(seed), frac_bits_(frac_bits) {
  for (auto& counters : counters_per_party_) {
    counters = {0, 0, 0, 0};
  }
}

template <typename Item>
Item SharedDealer::fetch(
    std::unordered_map<std::uint64_t, std::pair<std::array<Item, 3>, int>>&
        cache,
    std::uint64_t index, int party,
    const std::function<std::array<Item, 3>()>& generate) {
  auto it = cache.find(index);
  if (it == cache.end()) {
    it = cache.emplace(index, std::make_pair(generate(), 0)).first;
  }
  Item view = it->second.first[static_cast<std::size_t>(party)];
  it->second.second |= (1 << party);
  if (it->second.second == 0b111) {
    cache.erase(it);
  }
  return view;
}

BeaverTripleShare SharedDealer::mul_triple(int party, const Shape& shape) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t index = counters_per_party_[party][0]++;
  return fetch<BeaverTripleShare>(mul_cache_, index, party, [&] {
    return deal_mul_triple(shape, rng_);
  });
}

BeaverTripleShare SharedDealer::matmul_triple(int party, std::size_t m,
                                              std::size_t k, std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t index = counters_per_party_[party][1]++;
  return fetch<BeaverTripleShare>(matmul_cache_, index, party, [&] {
    return deal_matmul_triple(m, k, n, rng_);
  });
}

PartyShare SharedDealer::comp_aux(int party, const Shape& shape) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t index = counters_per_party_[party][2]++;
  return fetch<PartyShare>(aux_cache_, index, party, [&] {
    return deal_positive_aux(shape, frac_bits_, rng_);
  });
}

TruncPairShare SharedDealer::trunc_pair(int party, const Shape& shape) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t index = counters_per_party_[party][3]++;
  return fetch<TruncPairShare>(trunc_cache_, index, party, [&] {
    return deal_trunc_pair(shape, frac_bits_, rng_);
  });
}

}  // namespace trustddl::mpc
