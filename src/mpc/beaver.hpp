// Beaver triples and the auxiliary preprocessing material TrustDDL's
// model owner deals to the computing parties (paper §II and §III-A:
// the model owner "is responsible for creating and distributing shares
// for ... auxiliary values (e.g., Beaver triples and auxiliary
// positive numbers)").
//
// Three kinds of material are dealt:
//  * multiplication triples  (a, b, c = a·b or a×b), replicated-shared
//  * comparison auxiliaries  t with positive entries (SecComp masks
//    x−y multiplicatively, preserving the sign)
//  * truncation pairs        (r, ⌊r/2^f⌋) for the exact masked-open
//    fixed-point rescale (see protocols_bt.hpp for the two truncation
//    strategies)
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/rng.hpp"
#include "mpc/sharing.hpp"

namespace trustddl::mpc {

/// One party's replicated shares of a Beaver triple.
struct BeaverTripleShare {
  PartyShare a;
  PartyShare b;
  PartyShare c;
};

/// One party's shares of a truncation pair (r, ⌊r/2^f⌋); r is uniform
/// in [0, 2^62) so the masked difference never wraps.
struct TruncPairShare {
  PartyShare r;
  PartyShare r_shifted;
};

/// Dealer-side generation (trusted model-owner role).  Each function
/// returns the three per-party share views.
std::array<BeaverTripleShare, kNumParties> deal_mul_triple(const Shape& shape,
                                                           Rng& rng);
std::array<BeaverTripleShare, kNumParties> deal_matmul_triple(std::size_t m,
                                                              std::size_t k,
                                                              std::size_t n,
                                                              Rng& rng);
/// Positive auxiliary values, fixed-point encoded in [0.5, 2).
std::array<PartyShare, kNumParties> deal_positive_aux(const Shape& shape,
                                                      int frac_bits, Rng& rng);
std::array<TruncPairShare, kNumParties> deal_trunc_pair(const Shape& shape,
                                                        int frac_bits,
                                                        Rng& rng);

/// Per-party access to preprocessing material.  Implementations must
/// return the *same* underlying triples to all parties for the same
/// request sequence (the protocols are SPMD, so parties request in
/// identical order).
class TripleSource {
 public:
  virtual ~TripleSource() = default;
  virtual BeaverTripleShare mul_triple(const Shape& shape) = 0;
  virtual BeaverTripleShare matmul_triple(std::size_t m, std::size_t k,
                                          std::size_t n) = 0;
  virtual PartyShare comp_aux(const Shape& shape) = 0;
  virtual TruncPairShare trunc_pair(const Shape& shape) = 0;
};

/// Dealer shared by the three in-process parties; thread-safe.  Each
/// party's LocalTripleSource pulls its view; entries are generated on
/// first request and retired once all parties fetched them.  Used by
/// unit tests and microbenchmarks; the full framework deals through
/// the network instead (core/preprocessing.hpp) so dealing traffic is
/// metered.
class SharedDealer {
 public:
  SharedDealer(std::uint64_t seed, int frac_bits);

  BeaverTripleShare mul_triple(int party, const Shape& shape);
  BeaverTripleShare matmul_triple(int party, std::size_t m, std::size_t k,
                                  std::size_t n);
  PartyShare comp_aux(int party, const Shape& shape);
  TruncPairShare trunc_pair(int party, const Shape& shape);

 private:
  template <typename Item>
  Item fetch(std::unordered_map<std::uint64_t, std::pair<std::array<Item, 3>,
                                                         int>>& cache,
             std::uint64_t index, int party,
             const std::function<std::array<Item, 3>()>& generate);

  std::mutex mu_;
  Rng rng_;
  int frac_bits_;
  std::array<std::uint64_t, 4> counters_per_party_[kNumParties];
  std::unordered_map<std::uint64_t,
                     std::pair<std::array<BeaverTripleShare, 3>, int>>
      mul_cache_;
  std::unordered_map<std::uint64_t,
                     std::pair<std::array<BeaverTripleShare, 3>, int>>
      matmul_cache_;
  std::unordered_map<std::uint64_t, std::pair<std::array<PartyShare, 3>, int>>
      aux_cache_;
  std::unordered_map<std::uint64_t,
                     std::pair<std::array<TruncPairShare, 3>, int>>
      trunc_cache_;
};

/// TripleSource view of a SharedDealer for one party.
class LocalTripleSource final : public TripleSource {
 public:
  LocalTripleSource(std::shared_ptr<SharedDealer> dealer, int party)
      : dealer_(std::move(dealer)), party_(party) {}

  BeaverTripleShare mul_triple(const Shape& shape) override {
    return dealer_->mul_triple(party_, shape);
  }
  BeaverTripleShare matmul_triple(std::size_t m, std::size_t k,
                                  std::size_t n) override {
    return dealer_->matmul_triple(party_, m, k, n);
  }
  PartyShare comp_aux(const Shape& shape) override {
    return dealer_->comp_aux(party_, shape);
  }
  TruncPairShare trunc_pair(const Shape& shape) override {
    return dealer_->trunc_pair(party_, shape);
  }

 private:
  std::shared_ptr<SharedDealer> dealer_;
  int party_;
};

}  // namespace trustddl::mpc
