// Beaver triples and the auxiliary preprocessing material TrustDDL's
// model owner deals to the computing parties (paper §II and §III-A:
// the model owner "is responsible for creating and distributing shares
// for ... auxiliary values (e.g., Beaver triples and auxiliary
// positive numbers)").
//
// Three kinds of material are dealt:
//  * multiplication triples  (a, b, c = a·b or a×b), replicated-shared
//  * comparison auxiliaries  t with positive entries (SecComp masks
//    x−y multiplicatively, preserving the sign)
//  * truncation pairs        (r, ⌊r/2^f⌋) for the exact masked-open
//    fixed-point rescale (see protocols_bt.hpp for the two truncation
//    strategies)
//
// Material is organized into *streams*: one FIFO sequence per
// (kind, dims) shape class, addressed by a `TripleKey` and an entry
// index.  Entry i of a stream is generated from a seed derived from
// (master seed, key, i) alone — never from arrival order — so any
// backend (the in-process SharedDealer, the networked owner service)
// regenerates the same entry at any time.  That makes caches and
// prefetch stores pure optimizations: eviction, restarts and
// request-interleaving differences between parties cannot change what
// a party receives for a given (key, index).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "mpc/sharing.hpp"

namespace trustddl::mpc {

/// One party's replicated shares of a Beaver triple.
struct BeaverTripleShare {
  PartyShare a;
  PartyShare b;
  PartyShare c;
};

/// One party's shares of a truncation pair (r, ⌊r/2^f⌋); r is uniform
/// in [0, 2^62) so the masked difference never wraps.
struct TruncPairShare {
  PartyShare r;
  PartyShare r_shifted;
};

/// Dealer-side generation (trusted model-owner role).  Each function
/// returns the three per-party share views.
std::array<BeaverTripleShare, kNumParties> deal_mul_triple(const Shape& shape,
                                                           Rng& rng);
std::array<BeaverTripleShare, kNumParties> deal_matmul_triple(std::size_t m,
                                                              std::size_t k,
                                                              std::size_t n,
                                                              Rng& rng);
/// Positive auxiliary values, fixed-point encoded in [0.5, 2).
std::array<PartyShare, kNumParties> deal_positive_aux(const Shape& shape,
                                                      int frac_bits, Rng& rng);
std::array<TruncPairShare, kNumParties> deal_trunc_pair(const Shape& shape,
                                                        int frac_bits,
                                                        Rng& rng);

// --- Material streams -----------------------------------------------

/// The four kinds of dealt material.  Values are wire/persistence
/// format — do not renumber.
enum class TripleKind : std::uint8_t {
  kMul = 0,
  kMatMul = 1,
  kCompAux = 2,
  kTruncPair = 3,
};

/// Stable lowercase name for metrics/logs ("mul", "matmul",
/// "comp_aux", "trunc_pair").
const char* triple_kind_name(TripleKind kind);

/// Identity of one material shape class.  For kMul / kCompAux /
/// kTruncPair `dims` is the tensor shape; for kMatMul it is {m, k, n}.
struct TripleKey {
  TripleKind kind = TripleKind::kMul;
  Shape dims;

  bool operator==(const TripleKey& other) const {
    return kind == other.kind && dims == other.dims;
  }

  static TripleKey mul(const Shape& shape) {
    return TripleKey{TripleKind::kMul, shape};
  }
  static TripleKey matmul(std::size_t m, std::size_t k, std::size_t n) {
    return TripleKey{TripleKind::kMatMul, Shape{m, k, n}};
  }
  static TripleKey comp_aux(const Shape& shape) {
    return TripleKey{TripleKind::kCompAux, shape};
  }
  static TripleKey trunc_pair(const Shape& shape) {
    return TripleKey{TripleKind::kTruncPair, shape};
  }
};

struct TripleKeyHash {
  std::size_t operator()(const TripleKey& key) const;
};

/// Seed of entry `index` of stream `key` under `master_seed`
/// (splitmix-style mixing).  The whole offline/online split rests on
/// this being a pure function of its arguments.
std::uint64_t derive_material_seed(std::uint64_t master_seed,
                                   const TripleKey& key, std::uint64_t index);

/// One party's view of a contiguous range of a material stream.
/// Exactly one vector is populated, selected by the key's kind.
struct MaterialBatch {
  std::vector<BeaverTripleShare> triples;  ///< kMul / kMatMul
  std::vector<PartyShare> aux;             ///< kCompAux
  std::vector<TruncPairShare> pairs;       ///< kTruncPair

  std::size_t count() const {
    return triples.size() + aux.size() + pairs.size();
  }
};

/// All three parties' views of entries [start, start+count) of stream
/// `key`.  Deterministic in (key, start, count, master_seed,
/// frac_bits); requesting overlapping ranges yields overlapping
/// entries bit for bit.
std::array<MaterialBatch, kNumParties> deal_material(const TripleKey& key,
                                                     std::uint64_t start,
                                                     std::size_t count,
                                                     std::uint64_t master_seed,
                                                     int frac_bits);

/// Per-party access to preprocessing material.  Implementations must
/// return the *same* underlying triples to all parties for the same
/// request sequence (the protocols are SPMD, so parties request in
/// identical order).
class TripleSource {
 public:
  virtual ~TripleSource() = default;
  virtual BeaverTripleShare mul_triple(const Shape& shape) = 0;
  virtual BeaverTripleShare matmul_triple(std::size_t m, std::size_t k,
                                          std::size_t n) = 0;
  virtual PartyShare comp_aux(const Shape& shape) = 0;
  virtual TruncPairShare trunc_pair(const Shape& shape) = 0;
};

/// Batched range access to one party's material streams — the
/// offline-phase counterpart of TripleSource.  One call fills N
/// entries of a shape class (one round trip when the backend is the
/// networked owner link).
class TripleBackend {
 public:
  virtual ~TripleBackend() = default;
  virtual MaterialBatch fill(const TripleKey& key, std::uint64_t start,
                             std::size_t count) = 0;
};

/// In-process TripleBackend for one party: derives every entry
/// locally from the master seed (the same derivation the owner
/// service uses, so in-process and networked supplies agree).
class DealerBackend final : public TripleBackend {
 public:
  DealerBackend(std::uint64_t master_seed, int frac_bits, int party)
      : master_seed_(master_seed), frac_bits_(frac_bits), party_(party) {}

  MaterialBatch fill(const TripleKey& key, std::uint64_t start,
                     std::size_t count) override {
    return std::move(deal_material(key, start, count, master_seed_,
                                   frac_bits_)[static_cast<std::size_t>(
        party_)]);
  }

 private:
  std::uint64_t master_seed_;
  int frac_bits_;
  int party_;
};

/// Dealer shared by the three in-process parties; thread-safe.  Each
/// party's LocalTripleSource pulls its view by per-key stream index;
/// entries are derived-seed generated on first request and retired
/// once all parties fetched them.  The cache is bounded: a crashed or
/// silent party can no longer leak every subsequent triple — evicted
/// entries are simply regenerated if a straggler asks later.  Used by
/// unit tests and microbenchmarks; the full framework deals through
/// the network instead so dealing traffic is metered.
class SharedDealer {
 public:
  /// Retire-on-eviction bound: at most this many in-flight entries are
  /// cached before the oldest is dropped (regenerable, so always safe).
  static constexpr std::size_t kMaxCacheEntries = 256;

  SharedDealer(std::uint64_t seed, int frac_bits);

  BeaverTripleShare mul_triple(int party, const Shape& shape);
  BeaverTripleShare matmul_triple(int party, std::size_t m, std::size_t k,
                                  std::size_t n);
  PartyShare comp_aux(int party, const Shape& shape);
  TruncPairShare trunc_pair(int party, const Shape& shape);

  /// Entries currently cached (regression guard for the bounded-cache
  /// fix; never exceeds kMaxCacheEntries).
  std::size_t cache_entries() const;

 private:
  struct Entry {
    std::array<MaterialBatch, kNumParties> views;
    int served = 0;  ///< bitmask of parties that fetched their view
  };

  /// The party's view of entry (key, index): cache hit, or derived-seed
  /// regeneration on miss.  Caller holds mu_.
  MaterialBatch fetch(const TripleKey& key, std::uint64_t index, int party);

  mutable std::mutex mu_;
  std::uint64_t seed_;
  int frac_bits_;
  std::unordered_map<TripleKey, std::array<std::uint64_t, kNumParties>,
                     TripleKeyHash>
      counters_;
  std::unordered_map<TripleKey, std::unordered_map<std::uint64_t, Entry>,
                     TripleKeyHash>
      cache_;
  std::deque<std::pair<TripleKey, std::uint64_t>> cache_fifo_;
  std::size_t cache_size_ = 0;
};

/// TripleSource view of a SharedDealer for one party.
class LocalTripleSource final : public TripleSource {
 public:
  LocalTripleSource(std::shared_ptr<SharedDealer> dealer, int party)
      : dealer_(std::move(dealer)), party_(party) {}

  BeaverTripleShare mul_triple(const Shape& shape) override {
    return dealer_->mul_triple(party_, shape);
  }
  BeaverTripleShare matmul_triple(std::size_t m, std::size_t k,
                                  std::size_t n) override {
    return dealer_->matmul_triple(party_, m, k, n);
  }
  PartyShare comp_aux(const Shape& shape) override {
    return dealer_->comp_aux(party_, shape);
  }
  TruncPairShare trunc_pair(const Shape& shape) override {
    return dealer_->trunc_pair(party_, shape);
  }

 private:
  std::shared_ptr<SharedDealer> dealer_;
  int party_;
};

}  // namespace trustddl::mpc
