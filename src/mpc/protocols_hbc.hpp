// The paper's §II building blocks: SecMul (Algorithm 2) and SecComp
// (Algorithm 3) over plain N-party additive shares, with the
// designated-party optimization (one random party r collects the
// masked shares, reconstructs, and broadcasts the result).
//
// These are the honest-but-curious primitives TrustDDL builds on; the
// framework itself runs the replicated Byzantine-tolerant variants in
// protocols_bt.hpp.  They are exposed for fidelity tests, for the
// SecureNN-style baseline, and as a reference implementation.
#pragma once

#include <cstdint>

#include "net/network.hpp"
#include "numeric/tensor.hpp"

namespace trustddl::mpc {

/// Execution context for the plain N-party protocols.
struct PlainContext {
  net::Endpoint endpoint;
  int party = 0;        ///< this party's index in 0..num_parties-1
  int num_parties = 2;  ///< N of the (N,N) sharing
  std::uint64_t step = 0;

  std::uint64_t next_step() { return step++; }
};

/// Plain Beaver shares for one multiplication.
struct PlainTriple {
  RingTensor a;
  RingTensor b;
  RingTensor c;
};

/// Algorithm 2: elementwise z = x ⊙ y.  Every party calls this with
/// its shares; party `r` plays the designated reconstructor.  Returns
/// the caller's share of z (raw ring scale).
RingTensor sec_mul(PlainContext& ctx, const RingTensor& x_share,
                   const RingTensor& y_share, const PlainTriple& triple,
                   int designated);

/// The SecMatMul variant: x is [m,k], y is [k,n].
RingTensor sec_matmul(PlainContext& ctx, const RingTensor& x_share,
                      const RingTensor& y_share, const PlainTriple& triple,
                      int designated);

/// Algorithm 3: elementwise sign(x - y), revealed to every party.
/// `t_share` are shares of positive masking values.
RingTensor sec_comp(PlainContext& ctx, const RingTensor& x_share,
                    const RingTensor& y_share, const RingTensor& t_share,
                    const PlainTriple& triple, int designated);

}  // namespace trustddl::mpc
