// The paper's §II building blocks: SecMul (Algorithm 2) and SecComp
// (Algorithm 3) over plain N-party additive shares, with the
// designated-party optimization (one random party r collects the
// masked shares, reconstructs, and broadcasts the result).
//
// These are the honest-but-curious primitives TrustDDL builds on; the
// framework itself runs the replicated Byzantine-tolerant variants in
// protocols_bt.hpp.  They are exposed for fidelity tests, for the
// SecureNN-style baseline, and as a reference implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mpc/open.hpp"
#include "net/network.hpp"
#include "numeric/tensor.hpp"

namespace trustddl::mpc {

/// Execution context for the plain N-party protocols.
struct PlainContext {
  net::Endpoint endpoint;
  int party = 0;        ///< this party's index in 0..num_parties-1
  int num_parties = 2;  ///< N of the (N,N) sharing
  std::uint64_t step = 0;

  std::uint64_t next_step() { return step++; }
};

/// Plain Beaver shares for one multiplication.
struct PlainTriple {
  RingTensor a;
  RingTensor b;
  RingTensor c;
};

/// Algorithm 2: elementwise z = x ⊙ y.  Every party calls this with
/// its shares; party `r` plays the designated reconstructor.  Returns
/// the caller's share of z (raw ring scale).
RingTensor sec_mul(PlainContext& ctx, const RingTensor& x_share,
                   const RingTensor& y_share, const PlainTriple& triple,
                   int designated);

/// The SecMatMul variant: x is [m,k], y is [k,n].
RingTensor sec_matmul(PlainContext& ctx, const RingTensor& x_share,
                      const RingTensor& y_share, const PlainTriple& triple,
                      int designated);

/// Algorithm 3: elementwise sign(x - y), revealed to every party.
/// `t_share` are shares of positive masking values.
RingTensor sec_comp(PlainContext& ctx, const RingTensor& x_share,
                    const RingTensor& y_share, const RingTensor& t_share,
                    const PlainTriple& triple, int designated);

/// Round scheduler for the designated-party reconstruction — the plain
/// N-party analogue of mpc::OpenBatch.  Calls prepared against the
/// same batch send their masked shares to the designated party in ONE
/// gather/broadcast round per flush; the fixed designated party plays
/// the role the commitment round plays in the BT scheduler.  Eager
/// sec_mul/sec_matmul/sec_comp are thin wrappers (prepare + flush).
class PlainOpenBatch {
 public:
  using Continuation = std::function<void(std::vector<RingTensor>)>;

  PlainOpenBatch(PlainContext& ctx, int designated)
      : ctx_(ctx), designated_(designated) {}
  PlainOpenBatch(const PlainOpenBatch&) = delete;
  PlainOpenBatch& operator=(const PlainOpenBatch&) = delete;

  PlainContext& context() { return ctx_; }
  int designated() const { return designated_; }

  void enqueue(std::vector<RingTensor> values, Continuation on_open);
  std::size_t pending() const { return pending_.size(); }
  void flush();
  void flush_all();
  std::uint64_t flushes() const { return flushes_; }

 private:
  struct PendingOpen {
    std::size_t count = 0;
    Continuation on_open;
  };

  PlainContext& ctx_;
  int designated_;
  std::vector<RingTensor> queue_;
  std::vector<PendingOpen> pending_;
  std::uint64_t flushes_ = 0;
};

/// Deferred Algorithm 2 variants: resolve after one flush.
Deferred<RingTensor> sec_mul_prepare(PlainOpenBatch& batch,
                                     const RingTensor& x_share,
                                     const RingTensor& y_share,
                                     const PlainTriple& triple);
Deferred<RingTensor> sec_matmul_prepare(PlainOpenBatch& batch,
                                        const RingTensor& x_share,
                                        const RingTensor& y_share,
                                        const PlainTriple& triple);

/// Deferred Algorithm 3: the Beaver masks open in the first flush, the
/// β reconstruction rides the second (see OpenBatch::flush_all).
Deferred<RingTensor> sec_comp_prepare(PlainOpenBatch& batch,
                                      const RingTensor& x_share,
                                      const RingTensor& y_share,
                                      const RingTensor& t_share,
                                      const PlainTriple& triple);

}  // namespace trustddl::mpc
