// Shape-keyed prefetch store for preprocessing material — the online
// half of the offline/online split (FALCON-style: correlated
// randomness is produced ahead of time so the online phase is pure
// communication + local compute).
//
// One SPSC ring per (kind, dims) stream: the party's protocol thread
// is the only consumer, the background producer (or the party thread
// itself between serving batches) is the only refiller.  The hot path
// — popping a prefetched entry — is lock-free: one acquire load and
// one release store on the ring indices.  Only a *miss* (store
// exhausted) takes the per-key fill mutex and falls back to an
// on-demand single-entry fetch from the backend, so correctness never
// depends on the producer keeping up.
//
// Determinism: entries are consumed strictly in stream order per key,
// starting at index 0, regardless of whether they arrived via a batch
// refill, a miss, or a disk restore.  Combined with derived-seed
// dealing (beaver.hpp) this makes store-backed and synchronous runs
// bit-identical.
//
// Instrumented under `triple.*`: per-kind produced/consumed counters
// and store-depth gauges, `triple.refill.batch` (entries per refill),
// `triple.online_wait.us` (time the online path spent waiting for
// material — ~0 when prefetch keeps up), `triple.store.miss`.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mpc/beaver.hpp"

namespace trustddl::mpc {

class TripleStore final : public TripleSource {
 public:
  TripleStore(TripleBackend& backend, int party);

  // TripleSource — the online hot path.
  BeaverTripleShare mul_triple(const Shape& shape) override;
  BeaverTripleShare matmul_triple(std::size_t m, std::size_t k,
                                  std::size_t n) override;
  PartyShare comp_aux(const Shape& shape) override;
  TruncPairShare trunc_pair(const Shape& shape) override;

  /// Raise the refill target for `key` to at least `count` entries and
  /// reserve ring capacity.  NOT safe concurrently with pops of the
  /// same key (may reallocate the ring): call during planning, before
  /// the online phase, or from the consumer thread itself.
  void demand(const TripleKey& key, std::size_t count);

  /// Current refill target for `key` (0 if never demanded).
  std::size_t target(const TripleKey& key) const;

  /// Keys whose depth sits below `low_water_fraction` of their target
  /// (producer work list).
  std::vector<TripleKey> keys_below(double low_water_fraction) const;

  /// Refill `key` toward its target, fetching at most `max_entries` in
  /// one backend round trip.  Returns entries added.  Thread-safe
  /// against the consumer; single producer per store.
  std::size_t refill(const TripleKey& key, std::size_t max_entries);

  /// One pass over all keys, refilling each toward its target
  /// (at most `max_entries` per key per call).  Returns entries added.
  std::size_t refill_toward_targets(std::size_t max_entries);

  /// Entries currently buffered (across all keys / for one key).
  std::size_t depth() const;
  std::size_t depth(const TripleKey& key) const;

  /// Stream cursor: entries of `key` handed to the consumer so far
  /// (equals the index the next pop will receive minus buffered depth
  /// bookkeeping; after a restore it starts at the persisted cursor).
  std::uint64_t consumed(const TripleKey& key) const;

  /// Pops that found the store empty and fell back to on-demand
  /// dealing.
  std::uint64_t misses() const;

  /// Persist buffered entries and stream cursors (versioned binary
  /// format).  `provenance` ties the file to the dealing seed — a
  /// restore under a different seed must fail loudly rather than serve
  /// material from the wrong stream.  Call with producer stopped.
  void save(const std::string& path, std::uint64_t provenance) const;

  /// Restore a saved store.  Returns false if `path` does not exist;
  /// throws SerializationError on a malformed file or provenance
  /// mismatch.  Call before the online phase starts.
  bool load(const std::string& path, std::uint64_t provenance);

 private:
  /// One entry of any kind; exactly one member is meaningful,
  /// selected by the owning queue's key.
  struct Slot {
    BeaverTripleShare triple;
    PartyShare aux;
    TruncPairShare pair;
  };

  struct KeyQueue {
    std::vector<Slot> ring;      ///< capacity is a power of two
    std::atomic<std::uint64_t> head{0};  ///< next pop (consumer-owned)
    std::atomic<std::uint64_t> tail{0};  ///< next push (producer-owned)
    /// Stream index of the next backend fetch; guarded by fill_mu.
    std::uint64_t next_fill = 0;
    std::size_t target = 0;
    mutable std::mutex fill_mu;

    std::size_t capacity() const { return ring.size(); }
    std::size_t depth_now() const {
      return static_cast<std::size_t>(
          tail.load(std::memory_order_acquire) -
          head.load(std::memory_order_acquire));
    }
  };

  KeyQueue& queue_for(const TripleKey& key);
  const KeyQueue* find_queue(const TripleKey& key) const;

  /// Pop the next entry for `key`, refilling on demand if the store is
  /// dry.  The returned Slot's member for the key's kind is valid.
  Slot pop(const TripleKey& key);

  /// Fill up to `want` entries into `queue` (caller holds fill_mu).
  std::size_t fill_locked(const TripleKey& key, KeyQueue& queue,
                          std::size_t want);

  void grow_ring(KeyQueue& queue, std::size_t min_capacity);

  TripleBackend& backend_;
  int party_;

  mutable std::mutex map_mu_;
  std::unordered_map<TripleKey, std::unique_ptr<KeyQueue>, TripleKeyHash>
      queues_;

  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace trustddl::mpc
