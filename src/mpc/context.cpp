#include "mpc/context.hpp"

namespace trustddl::mpc {

const char* to_string(SecurityMode mode) {
  switch (mode) {
    case SecurityMode::kHonestButCurious:
      return "Honest-but-Curious";
    case SecurityMode::kMalicious:
      return "Malicious";
    case SecurityMode::kCrashFault:
      return "Crash-Fault";
  }
  return "?";
}

}  // namespace trustddl::mpc
