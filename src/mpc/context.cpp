#include "mpc/context.hpp"

#include "obs/events.hpp"

namespace trustddl::mpc {

const char* to_string(SecurityMode mode) {
  switch (mode) {
    case SecurityMode::kHonestButCurious:
      return "Honest-but-Curious";
    case SecurityMode::kMalicious:
      return "Malicious";
    case SecurityMode::kCrashFault:
      return "Crash-Fault";
  }
  return "?";
}

const char* to_string(DetectionEvent::Kind kind) {
  switch (kind) {
    case DetectionEvent::Kind::kCommitmentViolation:
      return "commitment_violation";
    case DetectionEvent::Kind::kMissingMessage:
      return "missing_message";
    case DetectionEvent::Kind::kDistanceAnomaly:
      return "distance_anomaly";
    case DetectionEvent::Kind::kByzantineSuspected:
      return "byzantine_suspected";
    case DetectionEvent::Kind::kShareAuthFailure:
      return "share_auth_failure";
    case DetectionEvent::Kind::kShareCopyConflict:
      return "share_copy_conflict";
  }
  return "?";
}

void DetectionLog::record(DetectionEvent::Kind kind, std::uint64_t step,
                          int suspect, const char* phase,
                          const char* recovery) {
  events.push_back(DetectionEvent{kind, step, suspect, phase, recovery});
  if (obs::events_enabled()) {
    obs::DetectionEventRecord record;
    record.party = party;
    record.suspect = suspect;
    record.step = step;
    record.kind = to_string(kind);
    record.phase = phase;
    record.recovery = recovery;
    obs::EventLog::global().record(record);
  }
}

}  // namespace trustddl::mpc
