#include "mpc/open.hpp"

#include <algorithm>
#include <array>
#include <optional>

#include "common/logging.hpp"
#include "common/sha256.hpp"
#include "mpc/adversary.hpp"
#include "numeric/kernels.hpp"
#include "numeric/serde.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace trustddl::mpc {
namespace {

constexpr const char* kLog = "mpc.open";

/// Serialize a vector of share triples for the wire / the commitment.
Bytes serialize_triples(const std::vector<PartyShare>& triples,
                        bool include_duplicate) {
  ByteWriter writer;
  writer.write_u64(triples.size());
  for (const auto& triple : triples) {
    write_tensor(writer, triple.primary);
    if (include_duplicate) {
      write_tensor(writer, triple.duplicate);
    }
    write_tensor(writer, triple.second);
  }
  return writer.take();
}

std::vector<PartyShare> deserialize_triples(const Bytes& data,
                                            bool include_duplicate) {
  ByteReader reader(data);
  const std::uint64_t count = reader.read_u64();
  if (count > 1024) {
    throw SerializationError("triple vector too large");
  }
  std::vector<PartyShare> triples(count);
  for (auto& triple : triples) {
    triple.primary = read_tensor(reader);
    if (include_duplicate) {
      triple.duplicate = read_tensor(reader);
    }
    triple.second = read_tensor(reader);
  }
  return triples;
}

Sha256Digest commitment_digest(std::uint64_t step, int sender,
                               const Bytes& payload) {
  Sha256 hasher;
  ByteWriter header;
  header.write_u64(step);
  header.write_u8(static_cast<std::uint8_t>(sender));
  hasher.update(header.bytes());
  hasher.update(payload);
  return hasher.finish();
}

/// Elementwise median of the signed interpretations of the candidate
/// reconstructions — the guaranteed-output-delivery fallback.
RingTensor elementwise_median(const std::vector<const RingTensor*>& candidates) {
  TRUSTDDL_ASSERT(!candidates.empty());
  RingTensor out(candidates[0]->shape());
  // Each element's median is independent — chunks own disjoint output
  // ranges (and their own scratch), so the result is exact at any
  // thread count.
  kernels::parallel_for(out.size(), 2048, [&](std::size_t lo,
                                              std::size_t hi) {
    std::vector<std::int64_t> scratch(candidates.size());
    for (std::size_t e = lo; e < hi; ++e) {
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        scratch[c] = static_cast<std::int64_t>((*candidates[c])[e]);
      }
      std::nth_element(scratch.begin(),
                       scratch.begin() + static_cast<std::ptrdiff_t>(
                                             scratch.size() / 2),
                       scratch.end());
      out[e] = static_cast<std::uint64_t>(scratch[scratch.size() / 2]);
    }
  });
  return out;
}

struct ReceivedTriples {
  bool present = false;
  std::vector<PartyShare> triples;
};

/// A Byzantine party can send structurally bogus data (wrong count,
/// wrong shapes); that must invalidate its contribution, not crash the
/// honest party.
bool triples_compatible(const std::vector<PartyShare>& received,
                        const std::vector<PartyShare>& reference,
                        bool include_duplicate) {
  if (received.size() != reference.size()) {
    return false;
  }
  for (std::size_t v = 0; v < received.size(); ++v) {
    if (received[v].primary.shape() != reference[v].primary.shape() ||
        received[v].second.shape() != reference[v].second.shape()) {
      return false;
    }
    if (include_duplicate &&
        received[v].duplicate.shape() != reference[v].duplicate.shape()) {
      return false;
    }
  }
  return true;
}

/// HbC / crash-fault opening: one exchange of (share-1, share-2)
/// pairs, then the elementwise median of the available set
/// reconstructions.  In crash-fault mode (SafeML-style) a heartbeat
/// acknowledgement round precedes the exchange and receive timeouts
/// are tolerated: a silent party costs two sets, but exactly one set
/// is always held entirely by the surviving parties.
std::vector<RingTensor> open_hbc(PartyContext& ctx,
                                 const std::vector<PartyShare>& values) {
  const bool crash_fault = ctx.mode == SecurityMode::kCrashFault;
  const std::uint64_t step = ctx.next_step();
  const auto peers = peers_of(ctx.party);
  const Bytes wire = serialize_triples(values, /*include_duplicate=*/false);
  const std::string share_tag = ctx.tag(step, "s");

  if (crash_fault) {
    // Heartbeat/ack round: parties confirm liveness before the
    // exchange (SafeML's crash-detection handshake).
    obs::ScopedSpan heartbeat_span("open.heartbeat", ctx.party, step);
    const std::string ack_tag = ctx.tag(step, "hb");
    for (int peer : peers) {
      ctx.endpoint.send(peer, ack_tag, Bytes{1});
    }
    for (int peer : peers) {
      if (ctx.peer_excluded(peer)) {
        continue;
      }
      try {
        (void)ctx.endpoint.recv(peer, ack_tag);
      } catch (const TimeoutError&) {
        ctx.detections.record(DetectionEvent::Kind::kMissingMessage, step,
                              peer, "heartbeat", "reconstruct_remaining");
      }
    }
  }

  std::array<ReceivedTriples, kNumParties> from;
  from[static_cast<std::size_t>(ctx.party)].present = true;
  from[static_cast<std::size_t>(ctx.party)].triples = values;
  {
    obs::ScopedSpan exchange_span("open.exchange", ctx.party, step);
    for (int peer : peers) {
      ctx.endpoint.send(peer, share_tag, wire);
    }
    for (int peer : peers) {
      auto& slot = from[static_cast<std::size_t>(peer)];
      if (crash_fault && ctx.peer_excluded(peer)) {
        ctx.detections.record(DetectionEvent::Kind::kMissingMessage, step,
                              peer, "exchange", "reconstruct_remaining");
        continue;
      }
      try {
        const Bytes payload = ctx.endpoint.recv(peer, share_tag);
        slot.triples =
            deserialize_triples(payload, /*include_duplicate=*/false);
        if (!triples_compatible(slot.triples, values,
                                /*include_duplicate=*/false)) {
          throw ProtocolError("open (HbC): malformed shares from party " +
                              std::to_string(peer));
        }
        slot.present = true;
        ctx.note_peer_ok(peer);
      } catch (const TimeoutError&) {
        if (!crash_fault) {
          throw;
        }
        ctx.note_peer_miss(peer);
        ctx.detections.record(DetectionEvent::Kind::kMissingMessage, step,
                              peer, "exchange", "reconstruct_remaining");
        TRUSTDDL_LOG_WARN(kLog)
            << "party " << ctx.party << ": party " << peer
            << " silent at step " << step
            << " — reconstructing from remaining sets";
      }
    }
  }

  ctx.detections.opens += 1;
  ctx.detections.values_opened += values.size();
  obs::ScopedSpan reconstruct_span("open.reconstruct", ctx.party, step);
  std::vector<RingTensor> opened;
  opened.reserve(values.size());
  for (std::size_t v = 0; v < values.size(); ++v) {
    std::array<RingTensor, kNumSets> sets;
    std::vector<const RingTensor*> available;
    for (int set = 0; set < kNumSets; ++set) {
      const auto& provider1 =
          from[static_cast<std::size_t>(holder_of_primary(set))];
      const auto& provider2 =
          from[static_cast<std::size_t>(holder_of_second(set))];
      if (!provider1.present || !provider2.present) {
        continue;
      }
      sets[static_cast<std::size_t>(set)] =
          provider1.triples[v].primary + provider2.triples[v].second;
      available.push_back(&sets[static_cast<std::size_t>(set)]);
    }
    if (available.empty()) {
      throw ProtocolError("open (HbC): no reconstructible set");
    }
    opened.push_back(elementwise_median(available));
  }
  return opened;
}

/// Which reconstructions peer `a` can corrupt, from any observer's
/// point of view: its primary feeds s^a, its duplicate feeds ŝ^{a+1},
/// its second feeds both s^{a+2} and ŝ^{a+2}.
bool corruptible_by(int peer, int set, bool hat) {
  if (!hat) {
    return set == peer || set == (peer + 2) % kNumSets;
  }
  return set == (peer + 1) % kNumSets || set == (peer + 2) % kNumSets;
}

/// Shared tail of the malicious-mode openings: share-copy
/// authentication, the six reconstructions, the minimum-distance
/// decision rule and the guaranteed-delivery fallback.  `from` holds
/// the full triples received (own at ctx.party), `provider_valid`
/// carries the commitment-check results.
std::vector<RingTensor> decide_from_triples(
    PartyContext& ctx, const std::vector<PartyShare>& values,
    const std::array<ReceivedTriples, kNumParties>& from,
    std::array<bool, kNumParties>& provider_valid, std::uint64_t step,
    const std::vector<std::size_t>& group_sizes) {
  obs::ScopedSpan decide_span("open.decide", ctx.party, step);
  const auto peers = peers_of(ctx.party);
  // --- Share-copy cross-authentication (hardening beyond the paper;
  // see DESIGN.md §4).  Each share-1 value exists in two copies held
  // by different parties, and the observer itself holds two of them:
  //   * peer (i+1)'s primary duplicates the observer's `duplicate`
  //   * peer (i+2)'s duplicate duplicates the observer's `primary`
  //   * peer (i+1)'s duplicate and peer (i+2)'s primary duplicate
  //     each other (set i+2's share-1, which the observer lacks)
  // Copies are bit-exact by construction, so any difference exposes a
  // tampered component.  The first two checks attribute the tamper to
  // a specific peer; the third only proves one of the two lied.
  // Tampered components invalidate exactly the reconstructions that
  // use them.  per_value_invalid[v][set][hat].
  std::vector<std::array<std::array<bool, 2>, kNumSets>> component_invalid(
      values.size());
  if (ctx.share_authentication) {
    const int peer_a = (ctx.party + 1) % kNumParties;
    const int peer_b = (ctx.party + 2) % kNumParties;
    const auto a_index = static_cast<std::size_t>(peer_a);
    const auto b_index = static_cast<std::size_t>(peer_b);

    // Pass 1 — attributable checks against the observer's OWN copies.
    // A failure proves the peer tampered (the local copy is trusted),
    // so its entire contribution is discarded, exactly like a
    // commitment violation.  The tensor comparisons (the expensive
    // part) run in parallel over the batched values into per-value
    // flags; the fold below walks the flags in v order so the
    // detection events land exactly where the serial loop put them.
    std::vector<std::uint8_t> a_mismatch(values.size(), 0);
    std::vector<std::uint8_t> b_mismatch(values.size(), 0);
    const bool check_a = from[a_index].present && provider_valid[a_index];
    const bool check_b = from[b_index].present && provider_valid[b_index];
    if (check_a || check_b) {
      kernels::parallel_for(
          ctx.kernels, values.size(), 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t v = lo; v < hi; ++v) {
              if (check_a &&
                  from[a_index].triples[v].primary != values[v].duplicate) {
                a_mismatch[v] = 1;
              }
              if (check_b &&
                  from[b_index].triples[v].duplicate != values[v].primary) {
                b_mismatch[v] = 1;
              }
            }
          });
    }
    for (std::size_t v = 0; v < values.size(); ++v) {
      if (a_mismatch[v] && provider_valid[a_index]) {
        provider_valid[a_index] = false;
        ctx.detections.record(DetectionEvent::Kind::kShareAuthFailure, step,
                              peer_a, "exchange", "discard_shares");
        TRUSTDDL_LOG_WARN(kLog)
            << "party " << ctx.party << ": share-copy authentication failed "
            << "for party " << peer_a << "'s primary at step " << step
            << " — discarding its shares";
      }
      if (b_mismatch[v] && provider_valid[b_index]) {
        provider_valid[b_index] = false;
        ctx.detections.record(DetectionEvent::Kind::kShareAuthFailure, step,
                              peer_b, "exchange", "discard_shares");
        TRUSTDDL_LOG_WARN(kLog)
            << "party " << ctx.party << ": share-copy authentication failed "
            << "for party " << peer_b << "'s duplicate at step " << step
            << " — discarding its shares";
      }
    }

    // Pass 2 — the cross-peer copy of set (i+2)'s share-1, which the
    // observer does not hold itself.  A mismatch between two
    // still-trusted peers proves one of them lied without saying
    // which; both reconstructions of that set are dropped.
    if (from[a_index].present && provider_valid[a_index] &&
        from[b_index].present && provider_valid[b_index]) {
      std::vector<std::uint8_t> conflict(values.size(), 0);
      kernels::parallel_for(
          ctx.kernels, values.size(), 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t v = lo; v < hi; ++v) {
              if (from[a_index].triples[v].duplicate !=
                  from[b_index].triples[v].primary) {
                conflict[v] = 1;
              }
            }
          });
      for (std::size_t v = 0; v < values.size(); ++v) {
        if (conflict[v]) {
          const auto conflicted =
              static_cast<std::size_t>(set_primary(peer_b));
          component_invalid[v][conflicted][0] = true;
          component_invalid[v][conflicted][1] = true;
          ctx.detections.record(DetectionEvent::Kind::kShareCopyConflict,
                                step, -1, "decide", "drop_set");
          TRUSTDDL_LOG_WARN(kLog)
              << "party " << ctx.party << ": conflicting share-1 copies for "
              << "set " << set_primary(peer_b) << " at step " << step
              << " — discarding both reconstructions of that set";
        }
      }
    }
  }

  // --- Six reconstructions per value + decision rule (lines 15-20). ---
  ctx.detections.opens += 1;
  ctx.detections.values_opened += values.size();
  struct Reconstruction {
    RingTensor tensor;
    bool valid = false;
  };
  // reconstructions[v][set] / hat_reconstructions[v][set]
  std::vector<std::array<Reconstruction, kNumSets>> plain(values.size());
  std::vector<std::array<Reconstruction, kNumSets>> hats(values.size());

  auto provider_ok = [&](int party) {
    return from[static_cast<std::size_t>(party)].present &&
           provider_valid[static_cast<std::size_t>(party)];
  };

  // Candidate construction is pure ring arithmetic over disjoint
  // [v][set] slots — the six reconstructions of every batched value
  // build concurrently.
  kernels::parallel_for(
      ctx.kernels, values.size(), 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t v = lo; v < hi; ++v) {
          for (int set = 0; set < kNumSets; ++set) {
            const int p1 = holder_of_primary(set);
            const int p2 = holder_of_second(set);
            const int pd = holder_of_duplicate(set);
            const auto set_index = static_cast<std::size_t>(set);
            if (provider_ok(p1) && provider_ok(p2) &&
                !component_invalid[v][set_index][0]) {
              plain[v][set_index].tensor =
                  from[static_cast<std::size_t>(p1)].triples[v].primary +
                  from[static_cast<std::size_t>(p2)].triples[v].second;
              plain[v][set_index].valid = true;
            }
            if (provider_ok(pd) && provider_ok(p2) &&
                !component_invalid[v][set_index][1]) {
              hats[v][set_index].tensor =
                  from[static_cast<std::size_t>(pd)].triples[v].duplicate +
                  from[static_cast<std::size_t>(p2)].triples[v].second;
              hats[v][set_index].valid = true;
            }
          }
        }
      });

  // The decision rule runs independently over each group — a group is
  // one protocol call's open set (e.g. Algorithm 4's {e, f}).  Pair
  // selection minimizes the summed distance WITHIN a group only, so a
  // batched round adopts exactly the reconstructions its calls would
  // have chosen unbatched: under share-local truncation different
  // groups can legitimately favor different pairs (ulp drift), and one
  // round-global choice would flag honest drift as an anomaly.
  std::vector<RingTensor> opened;
  opened.reserve(values.size());
  std::size_t group_lo = 0;
  for (const std::size_t group_size : group_sizes) {
    const std::size_t group_hi = group_lo + group_size;
    TRUSTDDL_REQUIRE(group_hi <= values.size(),
                     "open_values: group sizes exceed value count");

    // Minimum summed distance over pairs (s^j, ŝ^k), j != k, both
    // valid.
    long best_j = -1;
    [[maybe_unused]] long best_k = -1;  // kept for diagnostics/symmetry
    std::uint64_t best_dist = ~std::uint64_t{0};
    for (int j = 0; j < kNumSets; ++j) {
      for (int k = 0; k < kNumSets; ++k) {
        if (j == k) {
          continue;
        }
        bool usable = true;
        std::uint64_t total = 0;
        for (std::size_t v = group_lo; v < group_hi; ++v) {
          const auto& lhs = plain[v][static_cast<std::size_t>(j)];
          const auto& rhs = hats[v][static_cast<std::size_t>(k)];
          if (!lhs.valid || !rhs.valid) {
            usable = false;
            break;
          }
          const std::uint64_t d = ring_distance(lhs.tensor, rhs.tensor);
          total = (total > ~d) ? ~std::uint64_t{0} : total + d;
        }
        if (usable && total < best_dist) {
          best_dist = total;
          best_j = j;
          best_k = k;
        }
      }
    }

    if (best_j < 0) {
      throw ProtocolError(
          "open_values: no valid reconstruction pair — more than one party "
          "failed, which exceeds the fault model");
    }

    // Detect whether any *valid* reconstruction deviates from the
    // chosen pair; if so the opening recovered from a corruption and
    // we try to implicate the responsible peer.
    bool anomaly = false;
    // deviations[set][hat]: some value's reconstruction of that kind
    // disagrees with the chosen pair.
    bool deviations[kNumSets][2] = {};
    for (std::size_t v = group_lo; v < group_hi; ++v) {
      const auto& reference =
          plain[v][static_cast<std::size_t>(best_j)].tensor;
      for (int set = 0; set < kNumSets; ++set) {
        const auto set_index = static_cast<std::size_t>(set);
        for (int hat = 0; hat < 2; ++hat) {
          const auto& candidate =
              (hat == 0) ? plain[v][set_index] : hats[v][set_index];
          if (!candidate.valid) {
            continue;
          }
          if (ring_distance(candidate.tensor, reference) >
              ctx.dist_tolerance) {
            anomaly = true;
            deviations[set][hat] = true;
          }
        }
      }
    }

    if (anomaly) {
      ctx.detections.record(DetectionEvent::Kind::kDistanceAnomaly, step, -1,
                            "decide", "min_distance");
      ctx.detections.recovered_opens += 1;
      // A peer is the plausible culprit if EVERY deviating
      // reconstruction is one it can touch; exactly one such peer
      // means attribution.
      int suspect = -1;
      int implicated = 0;
      for (int peer : peers) {
        bool explains_all = true;
        for (int set = 0; set < kNumSets && explains_all; ++set) {
          for (int hat = 0; hat < 2; ++hat) {
            if (deviations[set][hat] && !corruptible_by(peer, set, hat == 1)) {
              explains_all = false;
              break;
            }
          }
        }
        if (explains_all) {
          suspect = peer;
          ++implicated;
        }
      }
      if (implicated == 1) {
        ctx.detections.record(DetectionEvent::Kind::kByzantineSuspected, step,
                              suspect, "decide", "redundant_reconstruction");
        TRUSTDDL_LOG_WARN(kLog)
            << "party " << ctx.party << ": reconstruction anomaly at step "
            << step << " implicates party " << suspect
            << " — recovered via redundant reconstruction";
      } else {
        TRUSTDDL_LOG_WARN(kLog)
            << "party " << ctx.party << ": reconstruction anomaly at step "
            << step << " — recovered via minimum-distance rule";
      }
    }

    if (best_dist <= ctx.dist_tolerance * group_size) {
      for (std::size_t v = group_lo; v < group_hi; ++v) {
        opened.push_back(plain[v][static_cast<std::size_t>(best_j)].tensor);
      }
      group_lo = group_hi;
      continue;
    }

    // Even the closest pair disagrees beyond tolerance (e.g. several
    // share-local truncation glitches landing together).  Guarantee
    // output delivery with the elementwise median of every valid
    // reconstruction.
    ctx.detections.recovered_opens += 1;
    TRUSTDDL_LOG_WARN(kLog) << "party " << ctx.party
                            << ": min-distance pair beyond tolerance at step "
                            << step << " — falling back to elementwise median";
    for (std::size_t v = group_lo; v < group_hi; ++v) {
      std::vector<const RingTensor*> candidates;
      for (int set = 0; set < kNumSets; ++set) {
        const auto set_index = static_cast<std::size_t>(set);
        if (plain[v][set_index].valid) {
          candidates.push_back(&plain[v][set_index].tensor);
        }
        if (hats[v][set_index].valid) {
          candidates.push_back(&hats[v][set_index].tensor);
        }
      }
      opened.push_back(elementwise_median(candidates));
    }
    group_lo = group_hi;
  }
  TRUSTDDL_REQUIRE(group_lo == values.size(),
                   "open_values: group sizes must cover every value");
  return opened;
}


/// Serialize one component (0 = primary, 1 = duplicate, 2 = second) of
/// every value — the unit the per-component commitments bind.
Bytes serialize_component(const std::vector<PartyShare>& triples,
                          int component) {
  ByteWriter writer;
  writer.write_u64(triples.size());
  for (const auto& triple : triples) {
    const RingTensor& tensor = component == 0   ? triple.primary
                               : component == 1 ? triple.duplicate
                                                : triple.second;
    write_tensor(writer, tensor);
  }
  return writer.take();
}

/// The commitment stream for one component: 10-byte header then the
/// serialized component — digests are over the concatenation, so the
/// batched hasher sees the same bytes the old incremental updates did.
Bytes component_message(std::uint64_t step, int sender, int component,
                        const std::vector<PartyShare>& triples) {
  ByteWriter header;
  header.write_u64(step);
  header.write_u8(static_cast<std::uint8_t>(sender));
  header.write_u8(static_cast<std::uint8_t>(component));
  Bytes message = header.take();
  const Bytes payload = serialize_component(triples, component);
  message.insert(message.end(), payload.begin(), payload.end());
  return message;
}

/// Digests for a set of components of one sender's triples, hashed as
/// one SIMD batch (4-lane lockstep where available; see
/// common/sha256.hpp).  Serialization of the streams still fans out on
/// the kernel pool.
std::vector<Sha256Digest> component_digests(
    std::uint64_t step, int sender, const std::vector<int>& components,
    const kernels::KernelConfig& config,
    const std::vector<PartyShare>& triples) {
  std::vector<Bytes> messages(components.size());
  if (components.size() == 2) {
    kernels::parallel_invoke(
        config,
        {[&] {
           messages[0] =
               component_message(step, sender, components[0], triples);
         },
         [&] {
           messages[1] =
               component_message(step, sender, components[1], triples);
         }});
  } else if (components.size() == 3) {
    kernels::parallel_invoke(
        config,
        {[&] {
           messages[0] =
               component_message(step, sender, components[0], triples);
         },
         [&] {
           messages[1] =
               component_message(step, sender, components[1], triples);
         },
         [&] {
           messages[2] =
               component_message(step, sender, components[2], triples);
         }});
  } else {
    for (std::size_t i = 0; i < components.size(); ++i) {
      messages[i] = component_message(step, sender, components[i], triples);
    }
  }
  return sha256_batch(messages);
}

/// Optimistic malicious opening (the paper\'s future-work
/// communication optimization — see PartyContext::optimistic):
///
///  fast path   per-component commitments -> ack -> (share-1, share-2)
///              PAIR exchange -> three set reconstructions; if the
///              hashes verify and the sets agree, done at ~2/3 of the
///              full-triple bytes.
///  verdicts    every party broadcasts ok/escalate and then FORWARDS
///              the verdicts it received; an adversary that tells one
///              honest party "ok" and the other "escalate" cannot
///              split them, because the escalating party\'s verdict
///              reaches everyone directly.
///  escalation  full triples exchanged and verified against the SAME
///              commitments, then the standard six-way decision rule.
std::vector<RingTensor> open_optimistic(
    PartyContext& ctx, const std::vector<PartyShare>& values,
    const std::vector<std::size_t>& group_sizes) {
  const std::uint64_t step = ctx.next_step();
  const auto peers = peers_of(ctx.party);

  std::vector<PartyShare> wire_triples = values;
  if (ctx.adversary != nullptr) {
    ctx.adversary->before_commit(step, wire_triples);
  }

  // --- Commit to every component separately. ---
  std::array<std::optional<std::array<Sha256Digest, 3>>, kNumParties>
      commitments;
  {
    obs::ScopedSpan commit_span("open.commit", ctx.party, step);
    // Three independent SHA-256 streams: serialized side by side on
    // the pool, then hashed as one lockstep SIMD batch (the digest
    // bytes are identical either way).
    std::array<Sha256Digest, 3> own_digests;
    const std::vector<Sha256Digest> batched = component_digests(
        step, ctx.party, {0, 1, 2}, ctx.kernels, wire_triples);
    std::copy(batched.begin(), batched.end(), own_digests.begin());
    const std::string commit_tag = ctx.tag(step, "c");
    for (int peer : peers) {
      if (ctx.adversary != nullptr &&
          ctx.adversary->drop_messages_to(step, peer)) {
        continue;
      }
      Bytes commit;
      for (const auto& digest : own_digests) {
        commit.insert(commit.end(), digest.begin(), digest.end());
      }
      ctx.endpoint.send(peer, commit_tag, std::move(commit));
    }
    for (int peer : peers) {
      if (ctx.peer_excluded(peer)) {
        ctx.detections.record(DetectionEvent::Kind::kMissingMessage, step,
                              peer, "commit", "escalate");
        continue;
      }
      try {
        const Bytes payload = ctx.endpoint.recv(peer, commit_tag);
        if (payload.size() == 96) {
          std::array<Sha256Digest, 3> digests;
          for (int component = 0; component < 3; ++component) {
            std::copy(payload.begin() + 32 * component,
                      payload.begin() + 32 * (component + 1),
                      digests[static_cast<std::size_t>(component)].begin());
          }
          commitments[static_cast<std::size_t>(peer)] = digests;
        }
      } catch (const TimeoutError&) {
        ctx.detections.record(DetectionEvent::Kind::kMissingMessage, step,
                              peer, "commit", "escalate");
      }
    }
  }

  // --- Ack round (Algorithm 4 line 8). ---
  {
    obs::ScopedSpan confirm_span("open.confirm", ctx.party, step);
    const std::string ack_tag = ctx.tag(step, "a");
    for (int peer : peers) {
      if (ctx.adversary != nullptr &&
          ctx.adversary->drop_messages_to(step, peer)) {
        continue;
      }
      ctx.endpoint.send(peer, ack_tag, Bytes{1});
    }
    for (int peer : peers) {
      if (ctx.peer_excluded(peer)) {
        continue;
      }
      try {
        (void)ctx.endpoint.recv(peer, ack_tag);
      } catch (const TimeoutError&) {
      }
    }
  }

  // --- Fast path: pair exchange. ---
  std::array<ReceivedTriples, kNumParties> pairs;
  pairs[static_cast<std::size_t>(ctx.party)].present = true;
  pairs[static_cast<std::size_t>(ctx.party)].triples = values;
  bool own_escalate = false;
  {
    obs::ScopedSpan exchange_span("open.exchange", ctx.party, step);
    const std::string pair_tag = ctx.tag(step, "s");
    for (int peer : peers) {
      if (ctx.adversary != nullptr &&
          ctx.adversary->drop_messages_to(step, peer)) {
        continue;
      }
      std::vector<PartyShare> to_send = wire_triples;
      if (ctx.adversary != nullptr) {
        if (auto replacement =
                ctx.adversary->replace_shares_for(step, peer, wire_triples)) {
          to_send = std::move(*replacement);
        }
      }
      ctx.endpoint.send(
          peer, pair_tag,
          serialize_triples(to_send, /*include_duplicate=*/false));
    }

    for (int peer : peers) {
      const auto peer_index = static_cast<std::size_t>(peer);
      if (ctx.peer_excluded(peer)) {
        own_escalate = true;
        ctx.detections.record(DetectionEvent::Kind::kMissingMessage, step,
                              peer, "exchange", "escalate");
        continue;
      }
      try {
        const Bytes payload = ctx.endpoint.recv(peer, pair_tag);
        pairs[peer_index].triples =
            deserialize_triples(payload, /*include_duplicate=*/false);
        if (!triples_compatible(pairs[peer_index].triples, values,
                                /*include_duplicate=*/false)) {
          throw SerializationError("structurally invalid pair");
        }
        pairs[peer_index].present = true;
        bool hashes_ok = commitments[peer_index].has_value();
        if (hashes_ok) {
          // The pair carries components 0 and 2; verify both digests
          // as one batch (each stream is hashed whole, byte-identical).
          const std::vector<Sha256Digest> digests = component_digests(
              step, peer, {0, 2}, ctx.kernels, pairs[peer_index].triples);
          hashes_ok = (*commitments[peer_index])[0] == digests[0] &&
                      (*commitments[peer_index])[2] == digests[1];
        }
        if (!hashes_ok) {
          own_escalate = true;
          ctx.detections.record(DetectionEvent::Kind::kCommitmentViolation,
                                step, peer, "exchange", "escalate");
        }
      } catch (const TimeoutError&) {
        own_escalate = true;
        ctx.detections.record(DetectionEvent::Kind::kMissingMessage, step,
                              peer, "exchange", "escalate");
      } catch (const SerializationError&) {
        own_escalate = true;
        ctx.detections.record(DetectionEvent::Kind::kCommitmentViolation,
                              step, peer, "exchange", "escalate");
      }
    }
  }

  // Three set reconstructions; any disagreement forces escalation.
  std::vector<std::array<RingTensor, kNumSets>> sets(values.size());
  if (!own_escalate) {
    obs::ScopedSpan reconstruct_span("open.reconstruct", ctx.party, step);
    for (std::size_t v = 0; v < values.size() && !own_escalate; ++v) {
      for (int set = 0; set < kNumSets; ++set) {
        sets[v][static_cast<std::size_t>(set)] =
            pairs[static_cast<std::size_t>(holder_of_primary(set))]
                .triples[v]
                .primary +
            pairs[static_cast<std::size_t>(holder_of_second(set))]
                .triples[v]
                .second;
      }
      for (int a = 0; a < kNumSets && !own_escalate; ++a) {
        for (int b = a + 1; b < kNumSets; ++b) {
          if (ring_distance(sets[v][static_cast<std::size_t>(a)],
                            sets[v][static_cast<std::size_t>(b)]) >
              ctx.dist_tolerance) {
            own_escalate = true;
            ctx.detections.record(DetectionEvent::Kind::kDistanceAnomaly,
                                  step, -1, "reconstruct", "escalate");
            break;
          }
        }
      }
    }
  }

  // --- Verdict broadcast + forwarding (keeps honest escalation
  // decisions in agreement even under equivocation). ---
  bool escalate = own_escalate;
  {
    obs::ScopedSpan verdict_span("open.verdict", ctx.party, step);
    const std::string verdict_tag = ctx.tag(step, "v");
    const std::string forward_tag = ctx.tag(step, "w");
    for (int peer : peers) {
      ctx.endpoint.send(
          peer, verdict_tag,
          Bytes{own_escalate ? std::uint8_t{1} : std::uint8_t{0}});
    }
    std::array<std::uint8_t, 2> received_verdicts{1, 1};  // missing => escalate
    for (std::size_t i = 0; i < peers.size(); ++i) {
      if (ctx.peer_excluded(peers[i])) {
        escalate = true;
        continue;
      }
      try {
        const Bytes verdict = ctx.endpoint.recv(peers[i], verdict_tag);
        received_verdicts[i] = verdict.empty() ? 1 : verdict[0];
      } catch (const TimeoutError&) {
      }
      escalate = escalate || received_verdicts[i] != 0;
    }
    for (std::size_t i = 0; i < peers.size(); ++i) {
      // Forward the OTHER peer\'s verdict to this peer.
      ctx.endpoint.send(peers[i], forward_tag,
                        Bytes{received_verdicts[1 - i]});
    }
    for (int peer : peers) {
      if (ctx.peer_excluded(peer)) {
        escalate = true;
        continue;
      }
      try {
        const Bytes forwarded = ctx.endpoint.recv(peer, forward_tag);
        escalate = escalate || forwarded.empty() || forwarded[0] != 0;
      } catch (const TimeoutError&) {
        escalate = true;
      }
    }
  }

  ctx.detections.opens += 1;
  ctx.detections.values_opened += values.size();
  if (!escalate) {
    std::vector<RingTensor> opened;
    opened.reserve(values.size());
    for (std::size_t v = 0; v < values.size(); ++v) {
      opened.push_back(elementwise_median(
          {&sets[v][0], &sets[v][1], &sets[v][2]}));
    }
    return opened;
  }

  // --- Escalation: full triples, verified against the commitments,
  // then the standard decision machinery. ---
  TRUSTDDL_LOG_WARN(kLog) << "party " << ctx.party
                          << ": optimistic opening escalated at step "
                          << step;
  ctx.detections.recovered_opens += 1;
  obs::ScopedSpan escalate_span("open.escalate", ctx.party, step);
  const std::string full_tag = ctx.tag(step, "s2");
  for (int peer : peers) {
    if (ctx.adversary != nullptr &&
        ctx.adversary->drop_messages_to(step, peer)) {
      continue;
    }
    std::vector<PartyShare> to_send = wire_triples;
    if (ctx.adversary != nullptr) {
      if (auto replacement =
              ctx.adversary->replace_shares_for(step, peer, wire_triples)) {
        to_send = std::move(*replacement);
      }
    }
    ctx.endpoint.send(peer, full_tag,
                      serialize_triples(to_send, /*include_duplicate=*/true));
  }
  std::array<ReceivedTriples, kNumParties> from;
  std::array<bool, kNumParties> provider_valid{};
  from[static_cast<std::size_t>(ctx.party)].present = true;
  from[static_cast<std::size_t>(ctx.party)].triples = values;
  provider_valid[static_cast<std::size_t>(ctx.party)] = true;
  for (int peer : peers) {
    const auto peer_index = static_cast<std::size_t>(peer);
    if (ctx.peer_excluded(peer)) {
      ctx.detections.record(DetectionEvent::Kind::kMissingMessage, step,
                            peer, "escalate", "reconstruct_remaining");
      continue;
    }
    try {
      const Bytes payload = ctx.endpoint.recv(peer, full_tag);
      from[peer_index].triples =
          deserialize_triples(payload, /*include_duplicate=*/true);
      if (!triples_compatible(from[peer_index].triples, values,
                              /*include_duplicate=*/true)) {
        throw SerializationError("structurally invalid triples");
      }
      from[peer_index].present = true;
      bool commit_ok = commitments[peer_index].has_value();
      if (commit_ok) {
        const std::vector<Sha256Digest> digests = component_digests(
            step, peer, {0, 1, 2}, ctx.kernels, from[peer_index].triples);
        for (int component = 0; commit_ok && component < 3; ++component) {
          commit_ok =
              (*commitments[peer_index])[static_cast<std::size_t>(component)] ==
              digests[static_cast<std::size_t>(component)];
        }
      }
      provider_valid[peer_index] = commit_ok;
      ctx.note_peer_ok(peer);
      if (!commit_ok) {
        ctx.detections.record(DetectionEvent::Kind::kCommitmentViolation,
                              step, peer, "escalate", "discard_shares");
      }
    } catch (const TimeoutError&) {
      ctx.note_peer_miss(peer);
      ctx.detections.record(DetectionEvent::Kind::kMissingMessage, step,
                            peer, "escalate", "reconstruct_remaining");
    } catch (const SerializationError&) {
      ctx.detections.record(DetectionEvent::Kind::kCommitmentViolation, step,
                            peer, "escalate", "discard_shares");
    }
  }
  return decide_from_triples(ctx, values, from, provider_valid, step,
                             group_sizes);
}

}  // namespace

std::vector<RingTensor> open_values_grouped(
    PartyContext& ctx, const std::vector<PartyShare>& values,
    const std::vector<std::size_t>& group_sizes) {
  TRUSTDDL_REQUIRE(!values.empty(), "open_values: nothing to open");
  std::size_t grouped = 0;
  for (const std::size_t group_size : group_sizes) {
    grouped += group_size;
  }
  TRUSTDDL_REQUIRE(grouped == values.size(),
                   "open_values_grouped: group sizes must sum to the value "
                   "count");
  if (ctx.mode == SecurityMode::kHonestButCurious ||
      ctx.mode == SecurityMode::kCrashFault) {
    return open_hbc(ctx, values);
  }
  if (ctx.optimistic) {
    return open_optimistic(ctx, values, group_sizes);
  }

  const std::uint64_t step = ctx.next_step();
  const auto peers = peers_of(ctx.party);

  // An adversary may corrupt the triples consistently (Case 3): the
  // corrupted copy feeds both the commitment and the exchange.
  std::vector<PartyShare> wire_triples = values;
  if (ctx.adversary != nullptr) {
    ctx.adversary->before_commit(step, wire_triples);
  }
  const Bytes wire = serialize_triples(wire_triples, /*include_duplicate=*/true);
  const Sha256Digest own_digest = commitment_digest(step, ctx.party, wire);

  // --- Round 1: commitment phase (Algorithm 4 lines 3-7). ---
  std::array<std::optional<Sha256Digest>, kNumParties> commitments;
  {
    obs::ScopedSpan commit_span("open.commit", ctx.party, step);
    const std::string commit_tag = ctx.tag(step, "c");
    for (int peer : peers) {
      if (ctx.adversary != nullptr &&
          ctx.adversary->drop_messages_to(step, peer)) {
        continue;
      }
      Bytes commit(own_digest.begin(), own_digest.end());
      ctx.endpoint.send(peer, commit_tag, std::move(commit));
    }
    for (int peer : peers) {
      if (ctx.peer_excluded(peer)) {
        ctx.detections.record(DetectionEvent::Kind::kMissingMessage, step,
                              peer, "commit", "discard_shares");
        continue;
      }
      try {
        const Bytes payload = ctx.endpoint.recv(peer, commit_tag);
        if (payload.size() == 32) {
          Sha256Digest digest;
          std::copy(payload.begin(), payload.end(), digest.begin());
          commitments[static_cast<std::size_t>(peer)] = digest;
        }
      } catch (const TimeoutError&) {
        ctx.detections.record(DetectionEvent::Kind::kMissingMessage, step,
                              peer, "commit", "discard_shares");
        TRUSTDDL_LOG_WARN(kLog) << "party " << ctx.party
                                << ": no commitment from party " << peer
                                << " at step " << step;
      }
    }
  }

  // --- Round 2: confirm receipt (Algorithm 4 line 8). ---
  {
    obs::ScopedSpan confirm_span("open.confirm", ctx.party, step);
    const std::string ack_tag = ctx.tag(step, "a");
    for (int peer : peers) {
      if (ctx.adversary != nullptr &&
          ctx.adversary->drop_messages_to(step, peer)) {
        continue;
      }
      ctx.endpoint.send(peer, ack_tag, Bytes{1});
    }
    for (int peer : peers) {
      if (ctx.peer_excluded(peer)) {
        continue;
      }
      try {
        (void)ctx.endpoint.recv(peer, ack_tag);
      } catch (const TimeoutError&) {
        // A missing ack cannot block the opening: proceed; the peer's
        // shares will simply fail the commitment check if inconsistent.
      }
    }
  }

  // --- Round 3: share exchange + commitment check (lines 9-14). ---
  std::array<ReceivedTriples, kNumParties> from;
  std::array<bool, kNumParties> provider_valid{};
  from[static_cast<std::size_t>(ctx.party)].present = true;
  from[static_cast<std::size_t>(ctx.party)].triples = values;
  provider_valid[static_cast<std::size_t>(ctx.party)] = true;
  {
    obs::ScopedSpan exchange_span("open.exchange", ctx.party, step);
    const std::string share_tag = ctx.tag(step, "s");
    for (int peer : peers) {
      if (ctx.adversary != nullptr &&
          ctx.adversary->drop_messages_to(step, peer)) {
        continue;
      }
      Bytes to_send = wire;
      if (ctx.adversary != nullptr) {
        // Case 1/2: shares sent may differ from the committed ones.
        if (auto replacement =
                ctx.adversary->replace_shares_for(step, peer, wire_triples)) {
          to_send =
              serialize_triples(*replacement, /*include_duplicate=*/true);
        }
      }
      ctx.endpoint.send(peer, share_tag, std::move(to_send));
    }

    for (int peer : peers) {
      const auto peer_index = static_cast<std::size_t>(peer);
      if (ctx.peer_excluded(peer)) {
        ctx.detections.record(DetectionEvent::Kind::kMissingMessage, step,
                              peer, "exchange", "reconstruct_remaining");
        continue;
      }
      try {
        const Bytes payload = ctx.endpoint.recv(peer, share_tag);
        const Sha256Digest received_digest =
            commitment_digest(step, peer, payload);
        from[peer_index].triples =
            deserialize_triples(payload, /*include_duplicate=*/true);
        if (!triples_compatible(from[peer_index].triples, values,
                                /*include_duplicate=*/true)) {
          throw SerializationError("structurally invalid triples");
        }
        from[peer_index].present = true;
        const bool commit_ok =
            commitments[peer_index].has_value() &&
            *commitments[peer_index] == received_digest;
        provider_valid[peer_index] = commit_ok;
        ctx.note_peer_ok(peer);
        if (!commit_ok) {
          ctx.detections.record(DetectionEvent::Kind::kCommitmentViolation,
                                step, peer, "exchange", "discard_shares");
          TRUSTDDL_LOG_WARN(kLog)
              << "party " << ctx.party
              << ": commitment check failed for party " << peer << " at step "
              << step << " — discarding its shares";
        }
      } catch (const TimeoutError&) {
        ctx.note_peer_miss(peer);
        ctx.detections.record(DetectionEvent::Kind::kMissingMessage, step,
                              peer, "exchange", "reconstruct_remaining");
        TRUSTDDL_LOG_WARN(kLog) << "party " << ctx.party
                                << ": no shares from party " << peer
                                << " at step " << step;
      } catch (const SerializationError&) {
        ctx.detections.record(DetectionEvent::Kind::kCommitmentViolation,
                              step, peer, "exchange", "discard_shares");
      }
    }
  }

  return decide_from_triples(ctx, values, from, provider_valid, step,
                             group_sizes);
}

std::vector<RingTensor> open_values(PartyContext& ctx,
                                    const std::vector<PartyShare>& values) {
  return open_values_grouped(ctx, values, {values.size()});
}

RingTensor open_value(PartyContext& ctx, const PartyShare& value) {
  return open_values(ctx, {value})[0];
}

OpenBatch::~OpenBatch() {
  if (!pending_.empty()) {
    // Cannot flush from a destructor (it communicates and may throw);
    // unflushed work is a bug unless we are unwinding from an error.
    TRUSTDDL_LOG_WARN(kLog)
        << "party " << ctx_.party << ": OpenBatch destroyed with "
        << pending_.size() << " unflushed opening(s)";
  }
}

void OpenBatch::enqueue(std::vector<PartyShare> values, Continuation on_open) {
  TRUSTDDL_REQUIRE(!values.empty(), "OpenBatch::enqueue: nothing to open");
  PendingOpen entry;
  entry.count = values.size();
  entry.on_open = std::move(on_open);
  for (auto& value : values) {
    queue_.push_back(std::move(value));
  }
  pending_.push_back(std::move(entry));
  ++enqueued_;
}

DeferredTensor OpenBatch::enqueue_value(PartyShare value) {
  DeferredTensor result;
  std::vector<PartyShare> values;
  values.push_back(std::move(value));
  enqueue(std::move(values), [result](std::vector<RingTensor> opened) mutable {
    result.set(std::move(opened[0]));
  });
  return result;
}

void OpenBatch::flush() {
  if (pending_.empty()) {
    return;
  }
  const std::vector<PartyShare> values = std::move(queue_);
  const std::vector<PendingOpen> dispatch = std::move(pending_);
  queue_.clear();
  pending_.clear();
  ++flushes_;

  // ONE robust opening round covers every pending value: a single
  // commitment, confirmation and exchange regardless of how many
  // protocol calls contributed.  The decision rule still runs per
  // enqueued group so every call adopts the reconstruction pair it
  // would have chosen unbatched.
  std::vector<std::size_t> group_sizes;
  group_sizes.reserve(dispatch.size());
  for (const PendingOpen& entry : dispatch) {
    group_sizes.push_back(entry.count);
  }
  if (obs::metrics_enabled()) {
    obs::count("open.batch.flushes");
    obs::count("open.batch.values", values.size());
    obs::count("open.batch.groups", group_sizes.size());
  }
  obs::trace_instant("open.flush", ctx_.party, ctx_.step,
                     "\"values\": " + std::to_string(values.size()) +
                         ", \"groups\": " +
                         std::to_string(group_sizes.size()));
  std::vector<RingTensor> opened =
      open_values_grouped(ctx_, values, group_sizes);

  // Dispatch reconstructed slices back to the continuations in enqueue
  // order.  Continuations may enqueue follow-up openings; those landed
  // in the (now fresh) queue and wait for the next flush.
  std::size_t offset = 0;
  for (const PendingOpen& entry : dispatch) {
    std::vector<RingTensor> slice(
        std::make_move_iterator(opened.begin() +
                                static_cast<std::ptrdiff_t>(offset)),
        std::make_move_iterator(opened.begin() +
                                static_cast<std::ptrdiff_t>(offset +
                                                            entry.count)));
    offset += entry.count;
    entry.on_open(std::move(slice));
  }
}

void OpenBatch::flush_all() {
  while (!pending_.empty()) {
    flush();
  }
}

}  // namespace trustddl::mpc
