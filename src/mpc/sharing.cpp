#include "mpc/sharing.hpp"

#include "common/error.hpp"

namespace trustddl::mpc {
namespace {

RingTensor random_ring_tensor(const Shape& shape, Rng& rng) {
  RingTensor out(shape);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = rng.next_u64();
  }
  return out;
}

}  // namespace

RingTensor ReplicatedSecret::reconstruct_set(int set) const {
  TRUSTDDL_ASSERT(set >= 0 && set < kNumSets);
  return sets[static_cast<std::size_t>(set)][0] +
         sets[static_cast<std::size_t>(set)][1];
}

PartyShare& PartyShare::operator+=(const PartyShare& other) {
  primary += other.primary;
  duplicate += other.duplicate;
  second += other.second;
  return *this;
}

PartyShare& PartyShare::operator-=(const PartyShare& other) {
  primary -= other.primary;
  duplicate -= other.duplicate;
  second -= other.second;
  return *this;
}

PartyShare PartyShare::scaled(std::uint64_t factor) const {
  PartyShare out(*this);
  out.primary.scale_inplace(factor);
  out.duplicate.scale_inplace(factor);
  out.second.scale_inplace(factor);
  return out;
}

void PartyShare::add_public(const RingTensor& constant) {
  second += constant;
}

void PartyShare::mul_public(const RingTensor& mask) {
  primary.hadamard_inplace(mask);
  duplicate.hadamard_inplace(mask);
  second.hadamard_inplace(mask);
}

void PartyShare::truncate_local(int frac_bits) {
  primary = truncate(primary, frac_bits);
  duplicate = truncate(duplicate, frac_bits);
  second = truncate(second, frac_bits);
}

PartyShare PartyShare::reshaped(const Shape& new_shape) const {
  PartyShare out;
  out.primary = primary.reshape(new_shape);
  out.duplicate = duplicate.reshape(new_shape);
  out.second = second.reshape(new_shape);
  return out;
}

ReplicatedSecret create_replicated(const RingTensor& secret, Rng& rng) {
  ReplicatedSecret out;
  for (int set = 0; set < kNumSets; ++set) {
    auto& pair = out.sets[static_cast<std::size_t>(set)];
    pair[0] = random_ring_tensor(secret.shape(), rng);
    pair[1] = secret - pair[0];
  }
  return out;
}

PartyShare party_view(const ReplicatedSecret& dealer, int party) {
  TRUSTDDL_REQUIRE(party >= 0 && party < kNumParties,
                   "party index out of range");
  PartyShare view;
  view.primary =
      dealer.sets[static_cast<std::size_t>(set_primary(party))][0];
  view.duplicate =
      dealer.sets[static_cast<std::size_t>(set_duplicate(party))][0];
  view.second = dealer.sets[static_cast<std::size_t>(set_second(party))][1];
  return view;
}

std::array<PartyShare, kNumParties> share_secret(const RingTensor& secret,
                                                 Rng& rng) {
  const ReplicatedSecret dealer = create_replicated(secret, rng);
  std::array<PartyShare, kNumParties> views;
  for (int party = 0; party < kNumParties; ++party) {
    views[static_cast<std::size_t>(party)] = party_view(dealer, party);
  }
  return views;
}

RingTensor reconstruct(const std::array<PartyShare, kNumParties>& triples) {
  // Set 0's share 1 is party 0's primary; its share 2 is held by
  // holder_of_second(0) = party 1 as its `second` component.
  return triples[0].primary +
         triples[static_cast<std::size_t>(holder_of_second(0))].second;
}

PartyShare zero_share(const Shape& shape) {
  PartyShare out;
  out.primary = RingTensor(shape);
  out.duplicate = RingTensor(shape);
  out.second = RingTensor(shape);
  return out;
}

PartyShare transpose_share(const PartyShare& share) {
  return transform_share(share, [](const RingTensor& component) {
    return transpose(component);
  });
}

std::vector<RingTensor> create_additive_shares(const RingTensor& secret,
                                               int num_shares, Rng& rng) {
  TRUSTDDL_REQUIRE(num_shares >= 2, "need at least two shares");
  std::vector<RingTensor> shares;
  shares.reserve(static_cast<std::size_t>(num_shares));
  RingTensor sum(secret.shape());
  for (int i = 0; i + 1 < num_shares; ++i) {
    shares.push_back(random_ring_tensor(secret.shape(), rng));
    sum += shares.back();
  }
  shares.push_back(secret - sum);
  return shares;
}

RingTensor reconstruct_additive(const std::vector<RingTensor>& shares) {
  TRUSTDDL_REQUIRE(!shares.empty(), "no shares to reconstruct");
  RingTensor sum(shares[0].shape());
  for (const auto& share : shares) {
    sum += share;
  }
  return sum;
}

}  // namespace trustddl::mpc
