// Owner-side robust reconstruction.
//
// The data owner and the model owner receive the full share triples of
// all three computing parties (e.g. logits for Softmax outsourcing,
// trained weights, inference results).  A Byzantine computing party
// may send corrupted shares, so the owners apply the same redundancy
// machinery as the parties: share-copy cross-checks over the three
// replicated share-1 copies, six reconstructions, and the
// minimum-distance decision rule with a median fallback.
#pragma once

#include <array>
#include <optional>

#include "mpc/sharing.hpp"

namespace trustddl::mpc {

struct ReconstructReport {
  bool anomaly = false;      ///< some reconstruction deviated
  int suspect = -1;          ///< attributed party, if identifiable
  bool ambiguous = false;    ///< fell back to the median
};

/// Robustly reconstruct a secret from the three party triples.
/// `present[i]` marks whether party i's triple was received at all
/// (crash/drop tolerance).  Throws ProtocolError if fewer than two
/// triples are usable.
RingTensor robust_reconstruct(
    const std::array<std::optional<PartyShare>, kNumParties>& triples,
    std::uint64_t tolerance, ReconstructReport* report = nullptr);

}  // namespace trustddl::mpc
