#include "mpc/triple_store.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <utility>

#include "common/error.hpp"
#include "mpc/share_serde.hpp"
#include "obs/metrics.hpp"

namespace trustddl::mpc {
namespace {

/// "TDST" little-endian: triple-store file magic.
constexpr std::uint32_t kStoreMagic = 0x54534454;
constexpr std::uint32_t kStoreVersion = 1;

std::size_t next_pow2(std::size_t n) {
  std::size_t cap = 1;
  while (cap < n) {
    cap <<= 1;
  }
  return cap;
}

void count_kind(const char* stem, TripleKind kind, std::uint64_t delta) {
  if (obs::metrics_enabled()) {
    obs::count(std::string(stem) + triple_kind_name(kind), delta);
  }
}

void gauge_kind(TripleKind kind, std::int64_t delta) {
  if (obs::metrics_enabled()) {
    obs::gauge_add(std::string("triple.store.depth.") +
                       triple_kind_name(kind),
                   delta);
  }
}

}  // namespace

TripleStore::TripleStore(TripleBackend& backend, int party)
    : backend_(backend), party_(party) {
  (void)party_;  // identifies the store in errors/persistence only
}

TripleStore::KeyQueue& TripleStore::queue_for(const TripleKey& key) {
  std::lock_guard<std::mutex> lock(map_mu_);
  auto& slot = queues_[key];
  if (!slot) {
    slot = std::make_unique<KeyQueue>();
  }
  return *slot;
}

const TripleStore::KeyQueue* TripleStore::find_queue(
    const TripleKey& key) const {
  std::lock_guard<std::mutex> lock(map_mu_);
  const auto it = queues_.find(key);
  return it == queues_.end() ? nullptr : it->second.get();
}

TripleStore::Slot TripleStore::pop(const TripleKey& key) {
  KeyQueue& queue = queue_for(key);
  const std::uint64_t head = queue.head.load(std::memory_order_relaxed);
  if (head != queue.tail.load(std::memory_order_acquire)) {
    // Hot path: prefetched entry, no lock, no wait.
    Slot slot = std::move(queue.ring[head & (queue.capacity() - 1)]);
    queue.head.store(head + 1, std::memory_order_release);
    count_kind("triple.consumed.", key.kind, 1);
    gauge_kind(key.kind, -1);
    if (obs::metrics_enabled()) {
      obs::observe("triple.online_wait.us", 0);
    }
    return slot;
  }

  // Store dry: fall back to an on-demand single-entry fetch.  The fill
  // mutex serializes against the producer so the stream cursor stays
  // strictly ordered.
  const auto start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(queue.fill_mu);
  Slot slot;
  const std::uint64_t head2 = queue.head.load(std::memory_order_relaxed);
  if (head2 != queue.tail.load(std::memory_order_acquire)) {
    // The producer filled while we were acquiring the lock.
    slot = std::move(queue.ring[head2 & (queue.capacity() - 1)]);
    queue.head.store(head2 + 1, std::memory_order_release);
    count_kind("triple.consumed.", key.kind, 1);
    gauge_kind(key.kind, -1);
  } else {
    MaterialBatch batch = backend_.fill(key, queue.next_fill, 1);
    queue.next_fill += 1;
    misses_.fetch_add(1, std::memory_order_relaxed);
    count_kind("triple.produced.", key.kind, 1);
    count_kind("triple.consumed.", key.kind, 1);
    obs::count("triple.store.miss");
    switch (key.kind) {
      case TripleKind::kMul:
      case TripleKind::kMatMul:
        slot.triple = std::move(batch.triples.at(0));
        break;
      case TripleKind::kCompAux:
        slot.aux = std::move(batch.aux.at(0));
        break;
      case TripleKind::kTruncPair:
        slot.pair = std::move(batch.pairs.at(0));
        break;
    }
  }
  if (obs::metrics_enabled()) {
    const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    obs::observe("triple.online_wait.us", static_cast<std::uint64_t>(waited));
  }
  return slot;
}

BeaverTripleShare TripleStore::mul_triple(const Shape& shape) {
  return std::move(pop(TripleKey::mul(shape)).triple);
}

BeaverTripleShare TripleStore::matmul_triple(std::size_t m, std::size_t k,
                                             std::size_t n) {
  return std::move(pop(TripleKey::matmul(m, k, n)).triple);
}

PartyShare TripleStore::comp_aux(const Shape& shape) {
  return std::move(pop(TripleKey::comp_aux(shape)).aux);
}

TruncPairShare TripleStore::trunc_pair(const Shape& shape) {
  return std::move(pop(TripleKey::trunc_pair(shape)).pair);
}

void TripleStore::grow_ring(KeyQueue& queue, std::size_t min_capacity) {
  const std::size_t new_cap = next_pow2(min_capacity);
  if (new_cap <= queue.capacity()) {
    return;
  }
  std::vector<Slot> fresh(new_cap);
  const std::uint64_t head = queue.head.load(std::memory_order_relaxed);
  const std::uint64_t tail = queue.tail.load(std::memory_order_relaxed);
  for (std::uint64_t i = head; i != tail; ++i) {
    fresh[i & (new_cap - 1)] =
        std::move(queue.ring[i & (queue.capacity() - 1)]);
  }
  queue.ring = std::move(fresh);
}

void TripleStore::demand(const TripleKey& key, std::size_t count) {
  KeyQueue& queue = queue_for(key);
  std::lock_guard<std::mutex> lock(queue.fill_mu);
  if (count > queue.target) {
    queue.target = count;
  }
  if (queue.target > queue.capacity()) {
    grow_ring(queue, queue.target);
  }
}

std::size_t TripleStore::target(const TripleKey& key) const {
  const KeyQueue* queue = find_queue(key);
  if (queue == nullptr) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(queue->fill_mu);
  return queue->target;
}

std::vector<TripleKey> TripleStore::keys_below(
    double low_water_fraction) const {
  std::vector<TripleKey> out;
  std::lock_guard<std::mutex> lock(map_mu_);
  for (const auto& [key, queue] : queues_) {
    std::size_t target = 0;
    {
      std::lock_guard<std::mutex> fill_lock(queue->fill_mu);
      target = queue->target;
    }
    if (target == 0) {
      continue;
    }
    const double depth = static_cast<double>(queue->depth_now());
    if (depth < low_water_fraction * static_cast<double>(target)) {
      out.push_back(key);
    }
  }
  return out;
}

std::size_t TripleStore::fill_locked(const TripleKey& key, KeyQueue& queue,
                                     std::size_t want) {
  const std::uint64_t head = queue.head.load(std::memory_order_acquire);
  const std::uint64_t tail = queue.tail.load(std::memory_order_relaxed);
  const std::size_t depth = static_cast<std::size_t>(tail - head);
  const std::size_t space = queue.capacity() - depth;
  if (want > space) {
    want = space;
  }
  if (want == 0) {
    return 0;
  }
  MaterialBatch batch = backend_.fill(key, queue.next_fill, want);
  if (batch.count() != want) {
    throw ProtocolError("triple backend returned short batch");
  }
  for (std::size_t i = 0; i < want; ++i) {
    Slot& slot = queue.ring[(tail + i) & (queue.capacity() - 1)];
    switch (key.kind) {
      case TripleKind::kMul:
      case TripleKind::kMatMul:
        slot.triple = std::move(batch.triples[i]);
        break;
      case TripleKind::kCompAux:
        slot.aux = std::move(batch.aux[i]);
        break;
      case TripleKind::kTruncPair:
        slot.pair = std::move(batch.pairs[i]);
        break;
    }
  }
  queue.tail.store(tail + want, std::memory_order_release);
  queue.next_fill += want;
  count_kind("triple.produced.", key.kind, want);
  gauge_kind(key.kind, static_cast<std::int64_t>(want));
  if (obs::metrics_enabled()) {
    obs::observe("triple.refill.batch", want);
  }
  return want;
}

std::size_t TripleStore::refill(const TripleKey& key,
                                std::size_t max_entries) {
  KeyQueue& queue = queue_for(key);
  std::lock_guard<std::mutex> lock(queue.fill_mu);
  const std::size_t depth = queue.depth_now();
  if (depth >= queue.target) {
    return 0;
  }
  std::size_t want = queue.target - depth;
  if (want > max_entries) {
    want = max_entries;
  }
  return fill_locked(key, queue, want);
}

std::size_t TripleStore::refill_toward_targets(std::size_t max_entries) {
  std::vector<TripleKey> keys;
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    keys.reserve(queues_.size());
    for (const auto& [key, queue] : queues_) {
      (void)queue;
      keys.push_back(key);
    }
  }
  std::size_t added = 0;
  for (const auto& key : keys) {
    added += refill(key, max_entries);
  }
  return added;
}

std::size_t TripleStore::depth() const {
  std::lock_guard<std::mutex> lock(map_mu_);
  std::size_t total = 0;
  for (const auto& [key, queue] : queues_) {
    (void)key;
    total += queue->depth_now();
  }
  return total;
}

std::size_t TripleStore::depth(const TripleKey& key) const {
  const KeyQueue* queue = find_queue(key);
  return queue == nullptr ? 0 : queue->depth_now();
}

std::uint64_t TripleStore::consumed(const TripleKey& key) const {
  const KeyQueue* queue = find_queue(key);
  if (queue == nullptr) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(queue->fill_mu);
  return queue->next_fill - queue->depth_now();
}

std::uint64_t TripleStore::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

void TripleStore::save(const std::string& path,
                       std::uint64_t provenance) const {
  ByteWriter writer;
  writer.write_u32(kStoreMagic);
  writer.write_u32(kStoreVersion);
  writer.write_u64(provenance);
  writer.write_u32(static_cast<std::uint32_t>(party_));

  std::lock_guard<std::mutex> lock(map_mu_);
  writer.write_u64(queues_.size());
  for (const auto& [key, queue] : queues_) {
    std::lock_guard<std::mutex> fill_lock(queue->fill_mu);
    const std::uint64_t head = queue->head.load(std::memory_order_acquire);
    const std::uint64_t tail = queue->tail.load(std::memory_order_acquire);
    const std::uint64_t depth = tail - head;
    writer.write_u8(static_cast<std::uint8_t>(key.kind));
    writer.write_u64(key.dims.size());
    for (std::size_t dim : key.dims) {
      writer.write_u64(dim);
    }
    writer.write_u64(queue->next_fill - depth);  // stream cursor
    writer.write_u64(queue->target);
    writer.write_u64(depth);
    for (std::uint64_t i = head; i != tail; ++i) {
      const Slot& slot = queue->ring[i & (queue->capacity() - 1)];
      switch (key.kind) {
        case TripleKind::kMul:
        case TripleKind::kMatMul:
          write_beaver_share(writer, slot.triple);
          break;
        case TripleKind::kCompAux:
          write_party_share(writer, slot.aux);
          break;
        case TripleKind::kTruncPair:
          write_trunc_pair(writer, slot.pair);
          break;
      }
    }
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw Error("triple store: cannot write " + path);
  }
  const Bytes& bytes = writer.bytes();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw Error("triple store: short write to " + path);
  }
}

bool TripleStore::load(const std::string& path, std::uint64_t provenance) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return false;
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes bytes(static_cast<std::size_t>(size));
  if (!in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw SerializationError("triple store: short read from " + path);
  }
  ByteReader reader(std::move(bytes));
  if (reader.read_u32() != kStoreMagic) {
    throw SerializationError("triple store: bad magic in " + path);
  }
  if (reader.read_u32() != kStoreVersion) {
    throw SerializationError("triple store: unsupported version in " + path);
  }
  if (reader.read_u64() != provenance) {
    throw SerializationError(
        "triple store: provenance mismatch (file dealt under a different "
        "seed): " +
        path);
  }
  if (reader.read_u32() != static_cast<std::uint32_t>(party_)) {
    throw SerializationError("triple store: file belongs to another party: " +
                             path);
  }
  const std::uint64_t num_keys = reader.read_u64();
  for (std::uint64_t k = 0; k < num_keys; ++k) {
    TripleKey key;
    key.kind = static_cast<TripleKind>(reader.read_u8());
    if (key.kind > TripleKind::kTruncPair) {
      throw SerializationError("triple store: unknown material kind");
    }
    const std::uint64_t rank = reader.read_u64();
    if (rank > 8) {
      throw SerializationError("triple store: shape rank too large");
    }
    key.dims.resize(rank);
    for (auto& dim : key.dims) {
      dim = reader.read_u64();
    }
    const std::uint64_t first_index = reader.read_u64();
    const std::uint64_t target = reader.read_u64();
    const std::uint64_t depth = reader.read_u64();

    KeyQueue& queue = queue_for(key);
    std::lock_guard<std::mutex> lock(queue.fill_mu);
    if (queue.next_fill != 0 || queue.depth_now() != 0) {
      throw SerializationError("triple store: load into a non-empty store");
    }
    queue.target = static_cast<std::size_t>(
        std::max<std::uint64_t>(target, depth));
    grow_ring(queue, std::max<std::size_t>(queue.target, 1));
    for (std::uint64_t i = 0; i < depth; ++i) {
      Slot& slot = queue.ring[i & (queue.capacity() - 1)];
      switch (key.kind) {
        case TripleKind::kMul:
        case TripleKind::kMatMul:
          slot.triple = read_beaver_share(reader);
          break;
        case TripleKind::kCompAux:
          slot.aux = read_party_share(reader);
          break;
        case TripleKind::kTruncPair:
          slot.pair = read_trunc_pair(reader);
          break;
      }
    }
    queue.tail.store(depth, std::memory_order_release);
    queue.next_fill = first_index + depth;
    count_kind("triple.produced.", key.kind, depth);
    gauge_kind(key.kind, static_cast<std::int64_t>(depth));
  }
  if (!reader.at_end()) {
    throw SerializationError("triple store: trailing bytes in " + path);
  }
  return true;
}

}  // namespace trustddl::mpc
