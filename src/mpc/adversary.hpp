// Protocol-level Byzantine behaviour.
//
// The robust protocols consult these hooks at the points where a
// malicious computing party could deviate (paper §III-B and the three
// cases of Proof 6.2):
//
//   Case 1  violate the commitment phase towards everyone: commit to
//           the honest shares, then send different shares to both
//           peers (detected by the hash re-check).
//   Case 2  violate the commitment phase towards one peer only: the
//           victim detects it; the other honest party does not, but
//           both still reconstruct correctly.
//   Case 3  stay commitment-consistent but use corrupted shares in
//           both the hash and the exchange (caught by the
//           minimum-distance decision rule, since the Byzantine party
//           cannot force two differently-derived reconstructions to
//           agree without knowing the peers' shares).
//
// Transport-level faults (drops, delays) are modelled separately by
// net::FaultInjector.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "mpc/sharing.hpp"

namespace trustddl::mpc {

/// Interface the robust protocols call when the local party is
/// configured as the adversary.  Honest parties have no hooks.
class AdversaryHooks {
 public:
  virtual ~AdversaryHooks() = default;

  /// Called before the commitment is computed.  Mutating `triples`
  /// here corrupts both the committed hash and the sent shares
  /// (Case 3: consistent corruption).
  virtual void before_commit(std::uint64_t /*step*/,
                             std::vector<PartyShare>& /*triples*/) {}

  /// Called per peer after commitments went out, before the share
  /// exchange.  Returning a replacement makes the sent shares differ
  /// from the committed ones for that peer (Case 1 if done for both
  /// peers, Case 2 if for one).
  virtual std::optional<std::vector<PartyShare>> replace_shares_for(
      std::uint64_t /*step*/, int /*peer*/,
      const std::vector<PartyShare>& /*honest*/) {
    return std::nullopt;
  }

  /// If true, silently skip sending the commitment and the shares to
  /// `peer` for this step (message-dropping misbehaviour).
  virtual bool drop_messages_to(std::uint64_t /*step*/, int /*peer*/) {
    return false;
  }
};

/// Configuration for the stock adversary behaviours used by tests,
/// examples and benchmarks.
struct ByzantineConfig {
  enum class Behavior {
    kNone,
    kConsistentCorruption,       ///< Case 3 (random garbage shares)
    kCommitmentViolationGlobal,  ///< Case 1
    kCommitmentViolationSingle,  ///< Case 2 (towards `target_peer`)
    kDropMessages,               ///< silence towards everyone
    /// The coordinated-offset attack the paper's §III-B argument
    /// misses: add the SAME delta to primary, duplicate and second, so
    /// a forged reconstruction pair (s^j, ŝ^k), j != k, agrees exactly
    /// and ties with the honest pair under the bare minimum-distance
    /// rule.  Defeated by share-copy authentication (DESIGN.md §4).
    kCoordinatedDelta,
    /// Coordinated delta on duplicate + second only (primary kept
    /// honest).  Share-copy authentication attributes this at one
    /// honest observer; the other can only detect the copy conflict.
    kStealthyDupSecond,
  };
  Behavior behavior = Behavior::kNone;
  int target_peer = -1;       ///< victim for kCommitmentViolationSingle
  double probability = 1.0;   ///< chance a given step is attacked
  std::uint64_t seed = 0xbadf00d;
};

/// Stock adversary implementing the configured behaviour by adding
/// large random offsets to the outgoing share triples.
class StandardAdversary final : public AdversaryHooks {
 public:
  explicit StandardAdversary(ByzantineConfig config);

  void before_commit(std::uint64_t step,
                     std::vector<PartyShare>& triples) override;
  std::optional<std::vector<PartyShare>> replace_shares_for(
      std::uint64_t step, int peer,
      const std::vector<PartyShare>& honest) override;
  bool drop_messages_to(std::uint64_t step, int peer) override;

  /// Number of protocol steps this adversary actually attacked.
  std::uint64_t attacks_launched() const { return attacks_; }

 private:
  bool attack_this_step(std::uint64_t step);
  void corrupt(std::vector<PartyShare>& triples);

  ByzantineConfig config_;
  Rng rng_;
  std::uint64_t attacks_ = 0;
  std::uint64_t last_step_checked_ = ~std::uint64_t{0};
  bool last_decision_ = false;
};

}  // namespace trustddl::mpc
