// TrustDDL's Byzantine-tolerant ASS protocols (paper Algorithms 4-5)
// plus the fixed-point rescaling step the deep-learning layers need.
//
// All protocols are SPMD: every computing party calls the same
// function with its own context and share triples, and the calls
// communicate through ctx.endpoint.  The commitment phase, redundant
// reconstruction and decision rule live in open.hpp; these functions
// add the Beaver masking (SecMul/SecMatMul) and the sign extraction
// (SecComp) on top.
#pragma once

#include "mpc/beaver.hpp"
#include "mpc/context.hpp"
#include "mpc/open.hpp"

namespace trustddl::mpc {

/// Elementwise product z = x ⊙ y (Algorithm 4).  Inputs and output are
/// raw ring values: fixed-point callers must rescale with
/// truncate_product afterwards.
PartyShare sec_mul_bt(PartyContext& ctx, const PartyShare& x,
                      const PartyShare& y, const BeaverTripleShare& triple);

/// Matrix product z = x × y (the SecMatMul-BT variant of Algorithm 4).
/// x is [m,k], y is [k,n], the triple must be dealt for (m,k,n).
PartyShare sec_matmul_bt(PartyContext& ctx, const PartyShare& x,
                         const PartyShare& y, const BeaverTripleShare& triple);

/// Elementwise comparison (Algorithm 5): returns sign(x - y) publicly
/// as a tensor with elements 1, 0 or 2^64-1 (i.e. -1 in the ring).
/// `t_aux` are shares of the dealer's positive masking values.
RingTensor sec_comp_bt(PartyContext& ctx, const PartyShare& x,
                       const PartyShare& y, const PartyShare& t_aux,
                       const BeaverTripleShare& triple);

/// sign(x) — comparison against zero without spending share material
/// on the zero operand.
RingTensor sec_sign_bt(PartyContext& ctx, const PartyShare& x,
                       const PartyShare& t_aux,
                       const BeaverTripleShare& triple);

/// 0/1 mask (raw ring values) from a sign tensor: 1 where sign is
/// positive.  Multiplying shares by this public mask implements ReLU
/// and its backward pass locally (paper §III-C).
RingTensor positive_mask(const RingTensor& signs);

/// How a double-precision (2f-bit) fixed-point product is rescaled
/// back to f fractional bits.
enum class TruncationMode {
  /// Shift every share locally (SecureML-style).  One round cheaper;
  /// each element is exact ±1 ulp except with probability
  /// ≈ 2^(ℓ+1-64) (ℓ = magnitude bits of the value), when it is off by
  /// a large multiple — the redundant reconstruction absorbs such
  /// glitches statistically.
  kLocal,
  /// Open the masked value v - r (r from a dealer truncation pair) and
  /// shift publicly: always exact ±1 ulp, costs one robust opening.
  /// Hides v statistically (r is 62-bit uniform; see DESIGN.md).
  kMaskedOpen,
};

/// Rescale a product share from 2f to f fractional bits using local
/// share truncation.
PartyShare truncate_product_local(const PartyShare& z, int frac_bits);

/// Rescale via masked opening; consumes one truncation pair.
PartyShare truncate_product_masked(PartyContext& ctx, const PartyShare& z,
                                   const TruncPairShare& pair);

// --- Deferred (prepare/finalize) variants -------------------------------
//
// Each `_prepare` call enqueues its opening(s) into an OpenBatch
// instead of blocking on a round trip; the returned Deferred handle
// resolves once the batch flushed every round the result depends on
// (`OpenBatch::flush_all`).  Data-independent calls prepared against
// the same batch therefore share opening rounds: their masked shares
// travel under ONE commitment/confirmation/exchange, and (for the
// chained variants) their follow-up openings share the next round.
// The eager functions above are thin wrappers: prepare + immediate
// flush, with identical traffic to the pre-scheduler code.
//
// The batch dispatches continuations in enqueue order at every party,
// so preprocessing material must be fetched at prepare time (as these
// functions' signatures force) to keep the SPMD request order aligned.

/// Deferred SecMul-BT: resolves after one flush.
DeferredShare sec_mul_bt_prepare(OpenBatch& batch, const PartyShare& x,
                                 const PartyShare& y,
                                 const BeaverTripleShare& triple);

/// Deferred SecMatMul-BT: resolves after one flush.
DeferredShare sec_matmul_bt_prepare(OpenBatch& batch, const PartyShare& x,
                                    const PartyShare& y,
                                    const BeaverTripleShare& triple);

/// Deferred SecComp-BT: the Beaver-mask opening rides the first flush,
/// the β = t⊙(x−y) opening the second; resolves after two flushes.
DeferredTensor sec_comp_bt_prepare(OpenBatch& batch, const PartyShare& x,
                                   const PartyShare& y,
                                   const PartyShare& t_aux,
                                   const BeaverTripleShare& triple);

/// Continuation-style SecComp-BT for protocols built on top of the
/// revealed comparison (robust aggregation, tournaments): `on_signs`
/// runs inside the β flush's dispatch, so it may enqueue follow-up
/// openings against the same batch (they land in the NEXT flush).
/// Round structure is identical to sec_comp_bt_prepare, which is a
/// thin wrapper over this.
void sec_comp_bt_prepare_on(OpenBatch& batch, const PartyShare& x,
                            const PartyShare& y, const PartyShare& t_aux,
                            const BeaverTripleShare& triple,
                            std::function<void(RingTensor)> on_signs);

/// Deferred sign(x); same round structure as sec_comp_bt_prepare.
DeferredTensor sec_sign_bt_prepare(OpenBatch& batch, const PartyShare& x,
                                   const PartyShare& t_aux,
                                   const BeaverTripleShare& triple);

/// Deferred masked-open rescale: resolves after one flush.
DeferredShare truncate_product_masked_prepare(OpenBatch& batch,
                                              const PartyShare& z,
                                              const TruncPairShare& pair);

/// Deferred SecMatMul-BT fused with the fixed-point rescale.  With
/// kLocal truncation the product is shifted share-locally as soon as
/// the Beaver masks open (one flush); with kMaskedOpen the truncation
/// opening is enqueued from the matmul's continuation, so the
/// truncations of every matmul prepared against the same batch share
/// the SECOND flush (`pair` must be non-null, dealt for the product
/// shape).  frac_bits is taken from the batch's context.
DeferredShare sec_matmul_bt_rescaled_prepare(
    OpenBatch& batch, const PartyShare& x, const PartyShare& y,
    const BeaverTripleShare& triple, TruncationMode trunc_mode,
    const TruncPairShare* pair);

}  // namespace trustddl::mpc
