#include "mpc/protocols_hbc.hpp"

#include <utility>

#include "common/error.hpp"
#include "numeric/fixed_point.hpp"
#include "numeric/kernels.hpp"
#include "numeric/serde.hpp"
#include "obs/trace.hpp"

namespace trustddl::mpc {
namespace {

/// Designated-party reconstruction (Algorithm 2 lines 3-10): everyone
/// sends its masked shares to party `designated`, which sums and
/// broadcasts the public values.
std::vector<RingTensor> reconstruct_at_designated(
    PlainContext& ctx, std::uint64_t step,
    const std::vector<RingTensor>& local_shares, int designated) {
  const std::string up_tag = "p" + std::to_string(step) + "/u";
  const std::string down_tag = "p" + std::to_string(step) + "/d";

  if (ctx.party == designated) {
    std::vector<RingTensor> totals = local_shares;
    for (int sender = 0; sender < ctx.num_parties; ++sender) {
      if (sender == ctx.party) {
        continue;
      }
      ByteReader reader_payload(ctx.endpoint.recv(sender, up_tag));
      for (auto& total : totals) {
        total += read_tensor(reader_payload);
      }
    }
    ByteWriter writer;
    for (const auto& total : totals) {
      write_tensor(writer, total);
    }
    const Bytes broadcast = writer.take();
    for (int receiver = 0; receiver < ctx.num_parties; ++receiver) {
      if (receiver == ctx.party) {
        continue;
      }
      ctx.endpoint.send(receiver, down_tag, broadcast);
    }
    return totals;
  }

  ByteWriter writer;
  for (const auto& share : local_shares) {
    write_tensor(writer, share);
  }
  ctx.endpoint.send(designated, up_tag, writer.take());
  ByteReader reader(ctx.endpoint.recv(designated, down_tag));
  std::vector<RingTensor> totals;
  totals.reserve(local_shares.size());
  for (std::size_t i = 0; i < local_shares.size(); ++i) {
    totals.push_back(read_tensor(reader));
  }
  return totals;
}

template <typename ProductFn>
Deferred<RingTensor> masked_multiply_prepare(PlainOpenBatch& batch,
                                             const RingTensor& x_share,
                                             const RingTensor& y_share,
                                             const PlainTriple& triple,
                                             const ProductFn& product) {
  PlainContext& ctx = batch.context();
  TRUSTDDL_REQUIRE(
      batch.designated() >= 0 && batch.designated() < ctx.num_parties,
      "sec_mul: designated party out of range");
  Deferred<RingTensor> out;
  const bool is_designated = ctx.party == batch.designated();
  // [z]_i = [c]_i + e * [b]_i + [a]_i * f, and the designated party
  // additionally adds the public term e * f (Algorithm 2 lines 7/11).
  batch.enqueue({x_share - triple.a, y_share - triple.b},
                [out, triple, is_designated,
                 product](std::vector<RingTensor> opened) mutable {
                  const RingTensor& e = opened[0];
                  const RingTensor& f = opened[1];
                  RingTensor z =
                      triple.c + product(e, triple.b) + product(triple.a, f);
                  if (is_designated) {
                    z += product(e, f);
                  }
                  out.set(std::move(z));
                });
  return out;
}

}  // namespace

void PlainOpenBatch::enqueue(std::vector<RingTensor> values,
                             Continuation on_open) {
  TRUSTDDL_REQUIRE(!values.empty(), "PlainOpenBatch: empty enqueue");
  PendingOpen entry;
  entry.count = values.size();
  entry.on_open = std::move(on_open);
  pending_.push_back(std::move(entry));
  for (auto& value : values) {
    queue_.push_back(std::move(value));
  }
}

void PlainOpenBatch::flush() {
  if (pending_.empty()) {
    return;
  }
  std::vector<RingTensor> queue = std::move(queue_);
  std::vector<PendingOpen> pending = std::move(pending_);
  queue_.clear();
  pending_.clear();

  const std::uint64_t step = ctx_.next_step();
  std::vector<RingTensor> opened =
      reconstruct_at_designated(ctx_, step, queue, designated_);
  flushes_ += 1;

  std::size_t cursor = 0;
  for (auto& entry : pending) {
    std::vector<RingTensor> slice(
        std::make_move_iterator(opened.begin() + cursor),
        std::make_move_iterator(opened.begin() + cursor + entry.count));
    cursor += entry.count;
    entry.on_open(std::move(slice));
  }
}

void PlainOpenBatch::flush_all() {
  while (!pending_.empty()) {
    flush();
  }
}

Deferred<RingTensor> sec_mul_prepare(PlainOpenBatch& batch,
                                     const RingTensor& x_share,
                                     const RingTensor& y_share,
                                     const PlainTriple& triple) {
  TRUSTDDL_REQUIRE(x_share.shape() == y_share.shape(),
                   "sec_mul: operand shapes differ");
  return masked_multiply_prepare(batch, x_share, y_share, triple,
                                 [](const RingTensor& lhs,
                                    const RingTensor& rhs) {
                                   return kernels::hadamard_parallel(lhs, rhs);
                                 });
}

Deferred<RingTensor> sec_matmul_prepare(PlainOpenBatch& batch,
                                        const RingTensor& x_share,
                                        const RingTensor& y_share,
                                        const PlainTriple& triple) {
  TRUSTDDL_REQUIRE(x_share.rank() == 2 && y_share.rank() == 2 &&
                       x_share.cols() == y_share.rows(),
                   "sec_matmul: incompatible operand shapes");
  return masked_multiply_prepare(batch, x_share, y_share, triple,
                                 [](const RingTensor& lhs,
                                    const RingTensor& rhs) {
                                   return matmul(lhs, rhs);
                                 });
}

Deferred<RingTensor> sec_comp_prepare(PlainOpenBatch& batch,
                                      const RingTensor& x_share,
                                      const RingTensor& y_share,
                                      const RingTensor& t_share,
                                      const PlainTriple& triple) {
  TRUSTDDL_REQUIRE(x_share.shape() == y_share.shape(),
                   "sec_comp: operand shapes differ");
  PlainContext& ctx = batch.context();
  const RingTensor alpha = x_share - y_share;
  const bool is_designated = ctx.party == batch.designated();
  Deferred<RingTensor> out;
  // β = t ⊙ (x - y): the Beaver masks open in this flush; the
  // continuation enqueues β's own reconstruction, which flush_all
  // drains in the NEXT round together with any other chained work.
  batch.enqueue(
      {t_share - triple.a, alpha - triple.b},
      [out, triple, is_designated,
       &batch](std::vector<RingTensor> opened) mutable {
        const RingTensor& e = opened[0];
        const RingTensor& f = opened[1];
        RingTensor beta_share = triple.c +
                                kernels::hadamard_parallel(e, triple.b) +
                                kernels::hadamard_parallel(triple.a, f);
        if (is_designated) {
          beta_share += kernels::hadamard_parallel(e, f);
        }
        batch.enqueue({std::move(beta_share)},
                      [out](std::vector<RingTensor> beta) mutable {
                        RingTensor signs(beta[0].shape());
                        for (std::size_t i = 0; i < signs.size(); ++i) {
                          signs[i] = static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(fx::sign(beta[0][i])));
                        }
                        out.set(std::move(signs));
                      });
      });
  return out;
}

RingTensor sec_mul(PlainContext& ctx, const RingTensor& x_share,
                   const RingTensor& y_share, const PlainTriple& triple,
                   int designated) {
  obs::ScopedSpan span("proto.sec_mul", ctx.party);
  PlainOpenBatch batch(ctx, designated);
  Deferred<RingTensor> z = sec_mul_prepare(batch, x_share, y_share, triple);
  batch.flush_all();
  return z.take();
}

RingTensor sec_matmul(PlainContext& ctx, const RingTensor& x_share,
                      const RingTensor& y_share, const PlainTriple& triple,
                      int designated) {
  obs::ScopedSpan span("proto.sec_matmul", ctx.party);
  PlainOpenBatch batch(ctx, designated);
  Deferred<RingTensor> z = sec_matmul_prepare(batch, x_share, y_share, triple);
  batch.flush_all();
  return z.take();
}

RingTensor sec_comp(PlainContext& ctx, const RingTensor& x_share,
                    const RingTensor& y_share, const RingTensor& t_share,
                    const PlainTriple& triple, int designated) {
  obs::ScopedSpan span("proto.sec_comp", ctx.party);
  PlainOpenBatch batch(ctx, designated);
  Deferred<RingTensor> signs =
      sec_comp_prepare(batch, x_share, y_share, t_share, triple);
  batch.flush_all();
  return signs.take();
}

}  // namespace trustddl::mpc
