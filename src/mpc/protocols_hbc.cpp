#include "mpc/protocols_hbc.hpp"

#include "common/error.hpp"
#include "numeric/fixed_point.hpp"
#include "numeric/serde.hpp"

namespace trustddl::mpc {
namespace {

/// Designated-party reconstruction (Algorithm 2 lines 3-10): everyone
/// sends its masked shares to party `designated`, which sums and
/// broadcasts the public values.
std::vector<RingTensor> reconstruct_at_designated(
    PlainContext& ctx, std::uint64_t step,
    const std::vector<RingTensor>& local_shares, int designated) {
  const std::string up_tag = "p" + std::to_string(step) + "/u";
  const std::string down_tag = "p" + std::to_string(step) + "/d";

  if (ctx.party == designated) {
    std::vector<RingTensor> totals = local_shares;
    for (int sender = 0; sender < ctx.num_parties; ++sender) {
      if (sender == ctx.party) {
        continue;
      }
      ByteReader reader_payload(ctx.endpoint.recv(sender, up_tag));
      for (auto& total : totals) {
        total += read_tensor(reader_payload);
      }
    }
    ByteWriter writer;
    for (const auto& total : totals) {
      write_tensor(writer, total);
    }
    const Bytes broadcast = writer.take();
    for (int receiver = 0; receiver < ctx.num_parties; ++receiver) {
      if (receiver == ctx.party) {
        continue;
      }
      ctx.endpoint.send(receiver, down_tag, broadcast);
    }
    return totals;
  }

  ByteWriter writer;
  for (const auto& share : local_shares) {
    write_tensor(writer, share);
  }
  ctx.endpoint.send(designated, up_tag, writer.take());
  ByteReader reader(ctx.endpoint.recv(designated, down_tag));
  std::vector<RingTensor> totals;
  totals.reserve(local_shares.size());
  for (std::size_t i = 0; i < local_shares.size(); ++i) {
    totals.push_back(read_tensor(reader));
  }
  return totals;
}

template <typename ProductFn>
RingTensor masked_multiply(PlainContext& ctx, const RingTensor& x_share,
                           const RingTensor& y_share,
                           const PlainTriple& triple, int designated,
                           const ProductFn& product) {
  TRUSTDDL_REQUIRE(designated >= 0 && designated < ctx.num_parties,
                   "sec_mul: designated party out of range");
  const std::uint64_t step = ctx.next_step();
  const RingTensor e_share = x_share - triple.a;
  const RingTensor f_share = y_share - triple.b;
  const std::vector<RingTensor> opened =
      reconstruct_at_designated(ctx, step, {e_share, f_share}, designated);
  const RingTensor& e = opened[0];
  const RingTensor& f = opened[1];

  // [z]_i = [c]_i + e * [b]_i + [a]_i * f, and the designated party
  // additionally adds the public term e * f (Algorithm 2 lines 7/11).
  RingTensor z = triple.c + product(e, triple.b) + product(triple.a, f);
  if (ctx.party == designated) {
    z += product(e, f);
  }
  return z;
}

}  // namespace

RingTensor sec_mul(PlainContext& ctx, const RingTensor& x_share,
                   const RingTensor& y_share, const PlainTriple& triple,
                   int designated) {
  TRUSTDDL_REQUIRE(x_share.shape() == y_share.shape(),
                   "sec_mul: operand shapes differ");
  return masked_multiply(ctx, x_share, y_share, triple, designated,
                         [](const RingTensor& lhs, const RingTensor& rhs) {
                           return hadamard(lhs, rhs);
                         });
}

RingTensor sec_matmul(PlainContext& ctx, const RingTensor& x_share,
                      const RingTensor& y_share, const PlainTriple& triple,
                      int designated) {
  TRUSTDDL_REQUIRE(x_share.rank() == 2 && y_share.rank() == 2 &&
                       x_share.cols() == y_share.rows(),
                   "sec_matmul: incompatible operand shapes");
  return masked_multiply(ctx, x_share, y_share, triple, designated,
                         [](const RingTensor& lhs, const RingTensor& rhs) {
                           return matmul(lhs, rhs);
                         });
}

RingTensor sec_comp(PlainContext& ctx, const RingTensor& x_share,
                    const RingTensor& y_share, const RingTensor& t_share,
                    const PlainTriple& triple, int designated) {
  TRUSTDDL_REQUIRE(x_share.shape() == y_share.shape(),
                   "sec_comp: operand shapes differ");
  const RingTensor alpha = x_share - y_share;
  const RingTensor beta_share =
      sec_mul(ctx, t_share, alpha, triple, designated);
  const std::uint64_t step = ctx.next_step();
  const std::vector<RingTensor> opened =
      reconstruct_at_designated(ctx, step, {beta_share}, designated);
  RingTensor signs(opened[0].shape());
  for (std::size_t i = 0; i < signs.size(); ++i) {
    signs[i] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(fx::sign(opened[0][i])));
  }
  return signs;
}

}  // namespace trustddl::mpc
