#include "core/actors.hpp"

#include "common/logging.hpp"
#include "core/triple_pipeline.hpp"
#include "mpc/robust_reconstruct.hpp"
#include "mpc/share_serde.hpp"
#include "nn/loss.hpp"

namespace trustddl::core {
namespace {

constexpr const char* kLog = "core.actors";

/// Bound on the waits that cross actor roles (initial shares, batch
/// inputs, predictions): generous because another *process* may still
/// be starting up, unlike the tight per-opening protocol timeouts.
constexpr auto kActorTimeout = std::chrono::seconds(60);

std::string init_tag(std::size_t index) {
  return "init/" + std::to_string(index);
}
std::string batch_tag(std::size_t step, const char* what) {
  return "b/" + std::to_string(step) + "/" + what;
}
std::string pred_tag(std::size_t step) {
  return "pred/" + std::to_string(step);
}

}  // namespace

void share_parameters(nn::Sequential& model, net::Endpoint endpoint,
                      int frac_bits, Rng& rng) {
  const auto parameters = model.parameters();
  for (std::size_t i = 0; i < parameters.size(); ++i) {
    const auto views =
        mpc::share_secret(to_ring(parameters[i]->value, frac_bits), rng);
    for (int party = 0; party < kComputingParties; ++party) {
      ByteWriter writer;
      mpc::write_party_share(writer, views[static_cast<std::size_t>(party)]);
      endpoint.send(party, init_tag(i), writer.take());
    }
  }
}

std::vector<mpc::PartyShare> receive_parameters(net::Endpoint endpoint,
                                                std::size_t param_count) {
  std::vector<mpc::PartyShare> shares;
  shares.reserve(param_count);
  for (std::size_t i = 0; i < param_count; ++i) {
    ByteReader reader(endpoint.recv(kModelOwner, init_tag(i), kActorTimeout));
    shares.push_back(mpc::read_party_share(reader));
  }
  return shares;
}

OwnerServiceConfig make_owner_service_config(const EngineConfig& config,
                                             bool training) {
  OwnerServiceConfig owner_config;
  owner_config.frac_bits = config.frac_bits;
  owner_config.dist_tolerance = config.dist_tolerance;
  owner_config.collect_timeout = config.collect_timeout;
  owner_config.seed =
      training ? config.seed * 31 + 7 : config.seed * 41 + 17;
  return owner_config;
}

std::string reveal_key(std::size_t epoch, std::size_t param) {
  return "e/" + std::to_string(epoch) + "/p/" + std::to_string(param);
}

// --- Secure inference -----------------------------------------------

InferJob make_infer_job(nn::ModelSpec spec, const EngineConfig& config,
                        std::size_t param_count, const data::Dataset& inputs,
                        std::size_t batch_size) {
  TRUSTDDL_REQUIRE(batch_size >= 1, "infer: invalid batch size");
  TRUSTDDL_REQUIRE(inputs.size() >= 1, "infer: empty dataset");
  InferJob job;
  job.spec = std::move(spec);
  job.config = config;
  job.param_count = param_count;
  job.total_rows = inputs.size();
  for (std::size_t start = 0; start < inputs.size(); start += batch_size) {
    job.batches.push_back(data::slice(
        inputs, start, std::min(batch_size, inputs.size() - start)));
  }
  return job;
}

void infer_model_owner_body(const InferJob& job, net::Endpoint endpoint,
                            nn::Sequential& model,
                            ModelOwnerService& service) {
  Rng rng(job.config.seed * 59 + 29);
  share_parameters(model, endpoint, job.config.frac_bits, rng);
  service.run();
}

std::vector<std::size_t> infer_data_owner_body(const InferJob& job,
                                               net::Endpoint endpoint) {
  Rng rng(job.config.seed * 71 + 5);
  for (std::size_t step = 0; step < job.batches.size(); ++step) {
    const auto x_views = mpc::share_secret(
        to_ring(job.batches[step].images, job.config.frac_bits), rng);
    for (int party = 0; party < kComputingParties; ++party) {
      ByteWriter writer;
      mpc::write_party_share(writer,
                             x_views[static_cast<std::size_t>(party)]);
      endpoint.send(party, batch_tag(step, "x"), writer.take());
    }
  }
  // Collect prediction shares and reconstruct (the data owner
  // receives the inference result — paper §III-A).
  std::vector<std::size_t> labels(job.total_rows);
  std::size_t row_offset = 0;
  for (std::size_t step = 0; step < job.batches.size(); ++step) {
    std::array<std::optional<mpc::PartyShare>, kComputingParties> triples;
    for (int party = 0; party < kComputingParties; ++party) {
      try {
        ByteReader reader(
            endpoint.recv(party, pred_tag(step), kActorTimeout));
        triples[static_cast<std::size_t>(party)] =
            mpc::read_party_share(reader);
      } catch (const Error&) {
        TRUSTDDL_LOG_WARN(kLog) << "no prediction share from party "
                                << party << " for step " << step;
      }
    }
    const RealTensor probabilities = to_real(
        mpc::robust_reconstruct(triples, job.config.dist_tolerance),
        job.config.frac_bits);
    for (std::size_t row = 0; row < probabilities.rows(); ++row) {
      std::size_t best = 0;
      for (std::size_t col = 1; col < probabilities.cols(); ++col) {
        if (probabilities.at(row, col) > probabilities.at(row, best)) {
          best = col;
        }
      }
      labels[row_offset + row] = best;
    }
    row_offset += probabilities.rows();
  }
  return labels;
}

mpc::DetectionLog infer_computing_party_body(const InferJob& job, int party,
                                             net::Endpoint endpoint,
                                             mpc::AdversaryHooks* adversary) {
  OwnerLink link(endpoint, party, kActorTimeout);
  SecureModel model(job.spec, receive_parameters(endpoint, job.param_count));

  mpc::PartyContext pctx =
      make_party_context(job.config, party, endpoint, adversary);
  SecureExecContext sctx = make_exec_context(job.config, pctx, link);

  // Offline phase: size the stores from the exact per-batch demand,
  // warm them synchronously, then keep them topped up in the
  // background while the online steps run.
  TriplePipeline pipeline(job.config, link, party, /*training=*/false);
  if (pipeline.active()) {
    std::vector<std::size_t> batch_rows;
    batch_rows.reserve(job.batches.size());
    for (const auto& batch : job.batches) {
      batch_rows.push_back(batch.size());
    }
    pipeline.plan(profile_job_demand(job.spec, batch_rows,
                                     job.config.resolved_trunc_mode(),
                                     /*training=*/false));
    pipeline.warm();
    pipeline.start();
    sctx.triples = &pipeline.source();
  }

  for (std::size_t step = 0; step < job.batches.size(); ++step) {
    ByteReader reader(
        endpoint.recv(kDataOwner, batch_tag(step, "x"), kActorTimeout));
    const mpc::PartyShare x = mpc::read_party_share(reader);
    const mpc::PartyShare probabilities = model.forward(sctx, x);
    ByteWriter writer;
    mpc::write_party_share(writer, probabilities);
    endpoint.send(kDataOwner, pred_tag(step), writer.take());
  }
  pipeline.shutdown();  // stop the producer before the owner link closes
  link.stop();
  return pctx.detections;
}

// --- Secure training ------------------------------------------------

TrainJob make_train_job(nn::ModelSpec spec, const EngineConfig& config,
                        const TrainOptions& options,
                        const data::Dataset& train_data,
                        std::size_t param_count) {
  TRUSTDDL_REQUIRE(options.epochs >= 1 && options.batch_size >= 1,
                   "train: invalid options");
  TrainJob job;
  job.spec = std::move(spec);
  job.config = config;
  job.options = options;
  job.param_count = param_count;
  Rng shuffle_rng(options.shuffle_seed);
  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    const auto indices =
        data::shuffled_indices(train_data.size(), shuffle_rng);
    for (std::size_t start = 0; start < train_data.size();
         start += options.batch_size) {
      const std::size_t count =
          std::min(options.batch_size, train_data.size() - start);
      job.batches.push_back(data::gather(train_data, indices, start, count));
    }
    job.epoch_last_step.push_back(job.batches.size() - 1);
  }
  return job;
}

void train_model_owner_body(const TrainJob& job, net::Endpoint endpoint,
                            nn::Sequential& model,
                            ModelOwnerService& service) {
  Rng rng(job.config.seed * 101 + 3);
  share_parameters(model, endpoint, job.config.frac_bits, rng);
  service.run();
}

void train_data_owner_body(const TrainJob& job, net::Endpoint endpoint) {
  Rng rng(job.config.seed * 203 + 11);
  for (std::size_t step = 0; step < job.batches.size(); ++step) {
    const auto& batch = job.batches[step];
    const auto x_views = mpc::share_secret(
        to_ring(batch.images, job.config.frac_bits), rng);
    const auto y_views = mpc::share_secret(
        to_ring(nn::one_hot(batch.labels, job.spec.classes),
                job.config.frac_bits),
        rng);
    for (int party = 0; party < kComputingParties; ++party) {
      const auto index = static_cast<std::size_t>(party);
      ByteWriter x_writer;
      mpc::write_party_share(x_writer, x_views[index]);
      endpoint.send(party, batch_tag(step, "x"), x_writer.take());
      ByteWriter y_writer;
      mpc::write_party_share(y_writer, y_views[index]);
      endpoint.send(party, batch_tag(step, "y"), y_writer.take());
    }
  }
}

mpc::DetectionLog train_computing_party_body(const TrainJob& job, int party,
                                             net::Endpoint endpoint,
                                             mpc::AdversaryHooks* adversary) {
  OwnerLink link(endpoint, party, kActorTimeout);
  SecureModel model(job.spec, receive_parameters(endpoint, job.param_count));

  mpc::PartyContext pctx =
      make_party_context(job.config, party, endpoint, adversary);
  SecureExecContext sctx = make_exec_context(job.config, pctx, link);

  TriplePipeline pipeline(job.config, link, party, /*training=*/true);
  if (pipeline.active()) {
    std::vector<std::size_t> batch_rows;
    batch_rows.reserve(job.batches.size());
    for (const auto& batch : job.batches) {
      batch_rows.push_back(batch.size());
    }
    pipeline.plan(profile_job_demand(job.spec, batch_rows,
                                     job.config.resolved_trunc_mode(),
                                     /*training=*/true));
    pipeline.warm();
    pipeline.start();
    sctx.triples = &pipeline.source();
  }

  std::size_t epoch = 0;
  for (std::size_t step = 0; step < job.batches.size(); ++step) {
    ByteReader x_reader(
        endpoint.recv(kDataOwner, batch_tag(step, "x"), kActorTimeout));
    const mpc::PartyShare x = mpc::read_party_share(x_reader);
    ByteReader y_reader(
        endpoint.recv(kDataOwner, batch_tag(step, "y"), kActorTimeout));
    const mpc::PartyShare y = mpc::read_party_share(y_reader);

    const mpc::PartyShare probabilities = model.forward(sctx, x);
    // Fused softmax + cross-entropy gradient: p - y, computed locally
    // on shares (§III-C); the batch mean folds into the learning rate.
    const mpc::PartyShare grad_logits = probabilities - y;
    model.backward_from_logit_grad(sctx, grad_logits);
    const std::size_t batch_rows = x.shape()[0];
    model.sgd_step(sctx,
                   job.options.learning_rate /
                       static_cast<double>(batch_rows),
                   job.config.frac_bits);

    if (step == job.epoch_last_step[epoch]) {
      const bool last_epoch = epoch + 1 == job.options.epochs;
      if (job.options.reveal_weights &&
          (job.options.evaluate_each_epoch || last_epoch)) {
        const auto params = model.parameters();
        for (std::size_t i = 0; i < params.size(); ++i) {
          link.reveal(reveal_key(epoch, i), params[i]->value);
        }
      }
      ++epoch;
    }
  }
  pipeline.shutdown();  // stop the producer before the owner link closes
  link.stop();
  return pctx.detections;
}

}  // namespace trustddl::core
