#include "core/metrics_export.hpp"

#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace trustddl::core {
namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

void append_link_matrix(std::string& out, const net::TrafficSnapshot& traffic,
                        bool bytes) {
  out += "[";
  for (std::size_t i = 0; i < traffic.links.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += "[";
    for (std::size_t j = 0; j < traffic.links[i].size(); ++j) {
      if (j > 0) {
        out += ", ";
      }
      out += std::to_string(bytes ? traffic.links[i][j].bytes
                                  : traffic.links[i][j].messages);
    }
    out += "]";
  }
  out += "]";
}

}  // namespace

std::string metrics_export_json(
    const obs::MetricsSnapshot& metrics,
    const std::vector<obs::DetectionEventRecord>& events,
    const net::TrafficSnapshot& traffic, const CostReport& cost) {
  std::string out = "{\n";
  out += "  \"schema\": \"trustddl.metrics.v1\",\n";
  out += "  \"metrics\": " + metrics.to_json() + ",\n";
  out += "  \"events\": " + obs::EventLog::to_json(events) + ",\n";
  out += "  \"traffic\": {\"total_bytes\": " +
         std::to_string(traffic.total_bytes) +
         ", \"total_messages\": " + std::to_string(traffic.total_messages) +
         ", \"links_bytes\": ";
  append_link_matrix(out, traffic, /*bytes=*/true);
  out += ", \"links_messages\": ";
  append_link_matrix(out, traffic, /*bytes=*/false);
  out += "},\n";
  out += "  \"cost\": {";
  out += "\"wall_seconds\": " + format_double(cost.wall_seconds);
  out += ", \"total_bytes\": " + std::to_string(cost.total_bytes);
  out += ", \"total_messages\": " + std::to_string(cost.total_messages);
  out += ", \"proxy_bytes\": " + std::to_string(cost.proxy_bytes);
  out += ", \"owner_bytes\": " + std::to_string(cost.owner_bytes);
  out += ", \"commitment_violations\": " +
         std::to_string(cost.commitment_violations);
  out += ", \"distance_anomalies\": " + std::to_string(cost.distance_anomalies);
  out += ", \"share_auth_failures\": " +
         std::to_string(cost.share_auth_failures);
  out += ", \"recovered_opens\": " + std::to_string(cost.recovered_opens);
  out += ", \"opening_rounds\": " + std::to_string(cost.opening_rounds);
  out += ", \"values_opened\": " + std::to_string(cost.values_opened);
  out += "}\n}\n";
  return out;
}

void write_metrics_export(const std::string& path,
                          const obs::MetricsSnapshot& metrics,
                          const std::vector<obs::DetectionEventRecord>& events,
                          const net::TrafficSnapshot& traffic,
                          const CostReport& cost) {
  std::ofstream out(path, std::ios::trunc);
  TRUSTDDL_REQUIRE(out.good(), "metrics export: cannot open " + path);
  out << metrics_export_json(metrics, events, traffic, cost);
  TRUSTDDL_REQUIRE(out.good(), "metrics export: write failed for " + path);
}

}  // namespace trustddl::core
