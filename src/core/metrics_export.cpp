#include "core/metrics_export.hpp"

#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace trustddl::core {
namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

void append_link_matrix(std::string& out, const net::TrafficSnapshot& traffic,
                        bool bytes) {
  out += "[";
  for (std::size_t i = 0; i < traffic.links.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += "[";
    for (std::size_t j = 0; j < traffic.links[i].size(); ++j) {
      if (j > 0) {
        out += ", ";
      }
      out += std::to_string(bytes ? traffic.links[i][j].bytes
                                  : traffic.links[i][j].messages);
    }
    out += "]";
  }
  out += "]";
}

}  // namespace

std::string metrics_export_json(
    const obs::MetricsSnapshot& metrics,
    const std::vector<obs::DetectionEventRecord>& events,
    const net::TrafficSnapshot& traffic, const CostReport& cost) {
  std::string out = "{\n";
  out += "  \"schema\": \"trustddl.metrics.v1\",\n";
  out += "  \"metrics\": " + metrics.to_json() + ",\n";
  out += "  \"events\": " + obs::EventLog::to_json(events) + ",\n";
  out += "  \"traffic\": {\"total_bytes\": " +
         std::to_string(traffic.total_bytes) +
         ", \"total_messages\": " + std::to_string(traffic.total_messages) +
         ", \"links_bytes\": ";
  append_link_matrix(out, traffic, /*bytes=*/true);
  out += ", \"links_messages\": ";
  append_link_matrix(out, traffic, /*bytes=*/false);
  out += "},\n";
  out += "  \"cost\": {";
  out += "\"wall_seconds\": " + format_double(cost.wall_seconds);
  out += ", \"total_bytes\": " + std::to_string(cost.total_bytes);
  out += ", \"total_messages\": " + std::to_string(cost.total_messages);
  out += ", \"proxy_bytes\": " + std::to_string(cost.proxy_bytes);
  out += ", \"owner_bytes\": " + std::to_string(cost.owner_bytes);
  out += ", \"commitment_violations\": " +
         std::to_string(cost.commitment_violations);
  out += ", \"distance_anomalies\": " + std::to_string(cost.distance_anomalies);
  out += ", \"share_auth_failures\": " +
         std::to_string(cost.share_auth_failures);
  out += ", \"recovered_opens\": " + std::to_string(cost.recovered_opens);
  out += ", \"opening_rounds\": " + std::to_string(cost.opening_rounds);
  out += ", \"values_opened\": " + std::to_string(cost.values_opened);
  out += "}\n}\n";
  return out;
}

void write_metrics_export(const std::string& path,
                          const obs::MetricsSnapshot& metrics,
                          const std::vector<obs::DetectionEventRecord>& events,
                          const net::TrafficSnapshot& traffic,
                          const CostReport& cost) {
  std::ofstream out(path, std::ios::trunc);
  TRUSTDDL_REQUIRE(out.good(), "metrics export: cannot open " + path);
  out << metrics_export_json(metrics, events, traffic, cost);
  TRUSTDDL_REQUIRE(out.good(), "metrics export: write failed for " + path);
}

void print_process_traffic(
    const std::vector<std::unique_ptr<net::TcpTransport>>& transports) {
  for (const auto& transport : transports) {
    const net::TrafficSnapshot traffic = transport->traffic();
    std::uint64_t sent_bytes = 0;
    std::uint64_t sent_messages = 0;
    const auto self = static_cast<std::size_t>(transport->self());
    for (const auto& link : traffic.links[self]) {
      sent_bytes += link.bytes;
      sent_messages += link.messages;
    }
    std::printf("[party %d] sent %llu messages, %.2f MB\n",
                static_cast<int>(transport->self()),
                static_cast<unsigned long long>(sent_messages),
                static_cast<double>(sent_bytes) / (1 << 20));
  }
}

std::string build_process_export_json(
    const obs::MetricsSnapshot& metrics,
    const std::vector<std::unique_ptr<net::TcpTransport>>& transports,
    const std::vector<mpc::DetectionLog>& party_logs, double wall_seconds,
    int num_actors, int byzantine_party) {
  net::TrafficSnapshot traffic;
  traffic.links.assign(static_cast<std::size_t>(num_actors),
                       std::vector<net::LinkMetrics>(
                           static_cast<std::size_t>(num_actors)));
  for (const auto& transport : transports) {
    const net::TrafficSnapshot local = transport->traffic();
    for (std::size_t i = 0; i < local.links.size(); ++i) {
      for (std::size_t j = 0; j < local.links[i].size(); ++j) {
        traffic.links[i][j].bytes += local.links[i][j].bytes;
        traffic.links[i][j].messages += local.links[i][j].messages;
      }
    }
    traffic.total_bytes += local.total_bytes;
    traffic.total_messages += local.total_messages;
  }

  CostReport cost;
  cost.wall_seconds = wall_seconds;
  cost.total_bytes = traffic.total_bytes;
  cost.total_messages = traffic.total_messages;
  for (int i = 0; i < num_actors; ++i) {
    for (int j = 0; j < num_actors; ++j) {
      const auto bytes = traffic.links[static_cast<std::size_t>(i)]
                                      [static_cast<std::size_t>(j)]
                                          .bytes;
      if (i < kComputingParties && j < kComputingParties) {
        cost.proxy_bytes += bytes;
      } else {
        cost.owner_bytes += bytes;
      }
    }
  }
  int rounds_party = num_actors;
  for (std::size_t i = 0; i < transports.size(); ++i) {
    const int id = static_cast<int>(transports[i]->self());
    if (id >= kComputingParties) {
      continue;
    }
    const mpc::DetectionLog& log = party_logs[i];
    cost.commitment_violations +=
        log.count(mpc::DetectionEvent::Kind::kCommitmentViolation);
    cost.distance_anomalies +=
        log.count(mpc::DetectionEvent::Kind::kDistanceAnomaly);
    cost.share_auth_failures +=
        log.count(mpc::DetectionEvent::Kind::kShareAuthFailure);
    cost.recovered_opens += log.recovered_opens;
    if (id != byzantine_party && id < rounds_party) {
      rounds_party = id;
      cost.opening_rounds = log.opens;
      cost.values_opened = log.values_opened;
    }
  }

  return metrics_export_json(metrics, obs::EventLog::global().snapshot(),
                             traffic, cost);
}

void write_process_export(
    const std::string& path,
    const std::vector<std::unique_ptr<net::TcpTransport>>& transports,
    const std::vector<mpc::DetectionLog>& party_logs, double wall_seconds,
    int num_actors, int byzantine_party) {
  if (path.empty()) {
    return;
  }
  std::ofstream out(path, std::ios::trunc);
  TRUSTDDL_REQUIRE(out.good(), "metrics export: cannot open " + path);
  out << build_process_export_json(obs::MetricsRegistry::global().snapshot(),
                                   transports, party_logs, wall_seconds,
                                   num_actors, byzantine_party);
  TRUSTDDL_REQUIRE(out.good(), "metrics export: write failed for " + path);
  std::printf("metrics export written to %s\n", path.c_str());
}

}  // namespace trustddl::core
