// Shared observability export: one JSON document combining the
// metrics registry snapshot, the structured Byzantine detection event
// log, the transport traffic matrix and the engine cost report.
//
// Schema (validated by scripts/check_metrics.py against
// docs/metrics.schema.json):
//   {
//     "schema": "trustddl.metrics.v1",
//     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
//     "events": [{"party", "suspect", "step", "kind", "phase",
//                 "recovery"}, ...],
//     "traffic": {"total_bytes", "total_messages",
//                 "links_bytes": [[...]], "links_messages": [[...]]},
//     "cost": {"wall_seconds", "total_bytes", ..., "values_opened"}
//   }
// Both the engine (EngineConfig::metrics_out) and the multi-process
// party runner (trustddl_party --metrics-out) write this document, so
// the CI schema check covers either producer.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "net/transport.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace trustddl::core {

/// Serialize the full export document (see header comment for the
/// layout).
std::string metrics_export_json(
    const obs::MetricsSnapshot& metrics,
    const std::vector<obs::DetectionEventRecord>& events,
    const net::TrafficSnapshot& traffic, const CostReport& cost);

/// Write `metrics_export_json(...)` to `path` (truncating).  Throws
/// via TRUSTDDL_REQUIRE when the file cannot be written.
void write_metrics_export(const std::string& path,
                          const obs::MetricsSnapshot& metrics,
                          const std::vector<obs::DetectionEventRecord>& events,
                          const net::TrafficSnapshot& traffic,
                          const CostReport& cost);

}  // namespace trustddl::core
