// Shared observability export: one JSON document combining the
// metrics registry snapshot, the structured Byzantine detection event
// log, the transport traffic matrix and the engine cost report.
//
// Schema (validated by scripts/check_metrics.py against
// docs/metrics.schema.json):
//   {
//     "schema": "trustddl.metrics.v1",
//     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
//     "events": [{"party", "suspect", "step", "kind", "phase",
//                 "recovery"}, ...],
//     "traffic": {"total_bytes", "total_messages",
//                 "links_bytes": [[...]], "links_messages": [[...]]},
//     "cost": {"wall_seconds", "total_bytes", ..., "values_opened"}
//   }
// Both the engine (EngineConfig::metrics_out) and the multi-process
// party runner (trustddl_party --metrics-out) write this document, so
// the CI schema check covers either producer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "net/tcp_transport.hpp"
#include "net/transport.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace trustddl::core {

/// Serialize the full export document (see header comment for the
/// layout).
std::string metrics_export_json(
    const obs::MetricsSnapshot& metrics,
    const std::vector<obs::DetectionEventRecord>& events,
    const net::TrafficSnapshot& traffic, const CostReport& cost);

/// Write `metrics_export_json(...)` to `path` (truncating).  Throws
/// via TRUSTDDL_REQUIRE when the file cannot be written.
void write_metrics_export(const std::string& path,
                          const obs::MetricsSnapshot& metrics,
                          const std::vector<obs::DetectionEventRecord>& events,
                          const net::TrafficSnapshot& traffic,
                          const CostReport& cost);

/// Per-process traffic report for multi-process runners (one line per
/// hosted transport on stdout).  Each frame is metered once at its
/// sender, so summing the printed rows across processes reproduces the
/// in-memory engine's totals.
void print_process_traffic(
    const std::vector<std::unique_ptr<net::TcpTransport>>& transports);

/// Builds the full export document for ONE process's hosted actors in
/// an `num_actors`-wide mesh: the hosted transports' traffic matrices
/// are merged cell-wise (each single-transport total counts the sender
/// row only, preserving once-per-message semantics), detection tallies
/// come from the hosted computing parties, and opening rounds from the
/// lowest-id hosted honest computing party (the counters are identical
/// at every honest party — the protocol is SPMD).  `party_logs` is
/// indexed like `transports`; ids >= kComputingParties contribute no
/// detections.  Safe to call on a live process — `metrics` is a
/// caller-taken snapshot and `TcpTransport::traffic()` is internally
/// locked — which is how the admin endpoint serves a mid-run /metrics
/// scrape that byte-matches the exit-time export.
std::string build_process_export_json(
    const obs::MetricsSnapshot& metrics,
    const std::vector<std::unique_ptr<net::TcpTransport>>& transports,
    const std::vector<mpc::DetectionLog>& party_logs, double wall_seconds,
    int num_actors, int byzantine_party);

/// Writes `build_process_export_json` over a fresh registry snapshot
/// to `path`.  No-op when `path` is empty.
void write_process_export(
    const std::string& path,
    const std::vector<std::unique_ptr<net::TcpTransport>>& transports,
    const std::vector<mpc::DetectionLog>& party_logs, double wall_seconds,
    int num_actors, int byzantine_party);

}  // namespace trustddl::core
