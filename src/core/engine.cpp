#include "core/engine.hpp"

#include <thread>

#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "mpc/robust_reconstruct.hpp"
#include "mpc/share_serde.hpp"
#include "nn/loss.hpp"

namespace trustddl::core {
namespace {

constexpr const char* kLog = "core.engine";
constexpr auto kActorTimeout = std::chrono::seconds(60);

/// Run heterogeneous actor bodies on their own threads; rethrow the
/// first failure of an actor marked critical (honest parties, owners).
void run_actors(const std::vector<std::function<void()>>& bodies,
                const std::vector<bool>& critical) {
  std::vector<std::exception_ptr> errors(bodies.size());
  std::vector<std::thread> threads;
  threads.reserve(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        bodies[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    if (errors[i]) {
      if (critical[i]) {
        std::rethrow_exception(errors[i]);
      }
      std::string reason = "unknown";
      try {
        std::rethrow_exception(errors[i]);
      } catch (const std::exception& error) {
        reason = error.what();
      } catch (...) {
      }
      TRUSTDDL_LOG_WARN(kLog) << "non-critical actor " << i
                              << " failed (tolerated): " << reason;
    }
  }
}

std::string init_tag(std::size_t index) {
  return "init/" + std::to_string(index);
}
std::string batch_tag(std::size_t step, const char* what) {
  return "b/" + std::to_string(step) + "/" + what;
}
std::string reveal_key(std::size_t epoch, std::size_t param) {
  return "e/" + std::to_string(epoch) + "/p/" + std::to_string(param);
}
std::string pred_tag(std::size_t step) {
  return "pred/" + std::to_string(step);
}

}  // namespace

mpc::PartyContext make_party_context(const EngineConfig& config, int party,
                                     net::Endpoint endpoint,
                                     mpc::AdversaryHooks* adversary) {
  mpc::PartyContext pctx;
  pctx.endpoint = std::move(endpoint);
  pctx.party = party;
  pctx.mode = config.mode;
  pctx.frac_bits = config.frac_bits;
  pctx.dist_tolerance = config.dist_tolerance;
  pctx.share_authentication = config.share_authentication;
  pctx.optimistic = config.optimistic_open;
  if (party == config.byzantine_party) {
    pctx.adversary = adversary;
  }
  return pctx;
}

SecureExecContext make_exec_context(const EngineConfig& config,
                                    mpc::PartyContext& pctx, OwnerLink& link) {
  SecureExecContext sctx;
  sctx.mpc = &pctx;
  sctx.triples = &link;
  sctx.owner = &link;
  sctx.trunc_mode = config.resolved_trunc_mode();
  sctx.batch_openings = config.batch_openings;
  return sctx;
}

TrustDdlEngine::TrustDdlEngine(nn::ModelSpec spec, EngineConfig config)
    : spec_(std::move(spec)), config_(config), model_([&] {
        Rng rng(config.seed);
        return nn::build_model(spec_, rng);
      }()) {}

CostReport TrustDdlEngine::collect_cost(
    double wall_seconds, const std::array<mpc::DetectionLog, 3>& logs) const {
  CostReport report;
  report.wall_seconds = wall_seconds;
  const net::TrafficSnapshot traffic = network_->traffic();
  report.total_bytes = traffic.total_bytes;
  report.total_messages = traffic.total_messages;
  for (int i = 0; i < kNumActors; ++i) {
    for (int j = 0; j < kNumActors; ++j) {
      const auto bytes =
          traffic.links[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(j)]
                           .bytes;
      if (i < kComputingParties && j < kComputingParties) {
        report.proxy_bytes += bytes;
      } else {
        report.owner_bytes += bytes;
      }
    }
  }
  for (const auto& log : logs) {
    report.commitment_violations +=
        log.count(mpc::DetectionEvent::Kind::kCommitmentViolation);
    report.distance_anomalies +=
        log.count(mpc::DetectionEvent::Kind::kDistanceAnomaly);
    report.share_auth_failures +=
        log.count(mpc::DetectionEvent::Kind::kShareAuthFailure);
    report.recovered_opens += log.recovered_opens;
  }
  report.opening_rounds = logs[0].opens;
  report.values_opened = logs[0].values_opened;
  return report;
}

TrainResult TrustDdlEngine::train(const data::Dataset& train_data,
                                  const data::Dataset& test_data,
                                  const TrainOptions& options) {
  TRUSTDDL_REQUIRE(options.epochs >= 1 && options.batch_size >= 1,
                   "train: invalid options");
  net::NetworkConfig net_config;
  net_config.num_parties = kNumActors;
  net_config.recv_timeout = config_.recv_timeout;
  net_config.emulate_latency = config_.emulate_latency;
  net_config.link_latency = config_.link_latency;
  network_ = std::make_unique<net::Network>(net_config);

  // Pre-compute the batch schedule (deterministic shuffling), shared
  // by the data owner and the parties.
  std::vector<data::Dataset> batches;
  std::vector<std::size_t> epoch_last_step;
  {
    Rng shuffle_rng(options.shuffle_seed);
    for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
      const auto indices =
          data::shuffled_indices(train_data.size(), shuffle_rng);
      for (std::size_t start = 0; start < train_data.size();
           start += options.batch_size) {
        const std::size_t count =
            std::min(options.batch_size, train_data.size() - start);
        batches.push_back(data::gather(train_data, indices, start, count));
      }
      epoch_last_step.push_back(batches.size() - 1);
    }
  }

  const auto parameters = model_.parameters();
  const std::size_t param_count = parameters.size();

  std::unique_ptr<mpc::StandardAdversary> adversary;
  if (config_.byzantine_party >= 0) {
    adversary = std::make_unique<mpc::StandardAdversary>(config_.byzantine);
  }

  OwnerServiceConfig owner_config;
  owner_config.frac_bits = config_.frac_bits;
  owner_config.dist_tolerance = config_.dist_tolerance;
  owner_config.collect_timeout = config_.collect_timeout;
  owner_config.seed = config_.seed * 31 + 7;
  ModelOwnerService service(network_->endpoint(kModelOwner), owner_config);

  std::array<mpc::DetectionLog, 3> logs;
  Stopwatch watch;

  std::vector<std::function<void()>> bodies;
  std::vector<bool> critical;

  // Model owner: share initial parameters, then serve.
  bodies.push_back([&] {
    Rng rng(config_.seed * 101 + 3);
    net::Endpoint endpoint = network_->endpoint(kModelOwner);
    for (std::size_t i = 0; i < param_count; ++i) {
      const auto views = mpc::share_secret(
          to_ring(parameters[i]->value, config_.frac_bits), rng);
      for (int party = 0; party < kComputingParties; ++party) {
        ByteWriter writer;
        mpc::write_party_share(writer,
                               views[static_cast<std::size_t>(party)]);
        endpoint.send(party, init_tag(i), writer.take());
      }
    }
    service.run();
  });
  critical.push_back(true);

  // Data owner: share every batch's inputs and one-hot labels.
  bodies.push_back([&] {
    Rng rng(config_.seed * 203 + 11);
    net::Endpoint endpoint = network_->endpoint(kDataOwner);
    for (std::size_t step = 0; step < batches.size(); ++step) {
      const auto& batch = batches[step];
      const auto x_views = mpc::share_secret(
          to_ring(batch.images, config_.frac_bits), rng);
      const auto y_views = mpc::share_secret(
          to_ring(nn::one_hot(batch.labels, spec_.classes),
                  config_.frac_bits),
          rng);
      for (int party = 0; party < kComputingParties; ++party) {
        const auto index = static_cast<std::size_t>(party);
        ByteWriter x_writer;
        mpc::write_party_share(x_writer, x_views[index]);
        endpoint.send(party, batch_tag(step, "x"), x_writer.take());
        ByteWriter y_writer;
        mpc::write_party_share(y_writer, y_views[index]);
        endpoint.send(party, batch_tag(step, "y"), y_writer.take());
      }
    }
  });
  critical.push_back(true);

  // Computing parties.
  for (int party = 0; party < kComputingParties; ++party) {
    bodies.push_back([&, party] {
      net::Endpoint endpoint = network_->endpoint(party);
      OwnerLink link(endpoint, party, kActorTimeout);

      std::vector<mpc::PartyShare> param_shares;
      param_shares.reserve(param_count);
      for (std::size_t i = 0; i < param_count; ++i) {
        ByteReader reader(
            endpoint.recv(kModelOwner, init_tag(i), kActorTimeout));
        param_shares.push_back(mpc::read_party_share(reader));
      }
      SecureModel model(spec_, std::move(param_shares));

      mpc::PartyContext pctx =
          make_party_context(config_, party, endpoint, adversary.get());
      SecureExecContext sctx = make_exec_context(config_, pctx, link);

      std::size_t epoch = 0;
      for (std::size_t step = 0; step < batches.size(); ++step) {
        ByteReader x_reader(
            endpoint.recv(kDataOwner, batch_tag(step, "x"), kActorTimeout));
        const mpc::PartyShare x = mpc::read_party_share(x_reader);
        ByteReader y_reader(
            endpoint.recv(kDataOwner, batch_tag(step, "y"), kActorTimeout));
        const mpc::PartyShare y = mpc::read_party_share(y_reader);

        const mpc::PartyShare probabilities = model.forward(sctx, x);
        // Fused softmax + cross-entropy gradient: p - y, computed
        // locally on shares (§III-C); the batch mean folds into the
        // learning rate.
        const mpc::PartyShare grad_logits = probabilities - y;
        model.backward_from_logit_grad(sctx, grad_logits);
        const std::size_t batch_rows = x.shape()[0];
        model.sgd_step(sctx,
                       options.learning_rate /
                           static_cast<double>(batch_rows),
                       config_.frac_bits);

        if (step == epoch_last_step[epoch]) {
          const bool last_epoch = epoch + 1 == options.epochs;
          if (options.reveal_weights &&
              (options.evaluate_each_epoch || last_epoch)) {
            const auto params = model.parameters();
            for (std::size_t i = 0; i < params.size(); ++i) {
              link.reveal(reveal_key(epoch, i), params[i]->value);
            }
          }
          ++epoch;
        }
      }
      link.stop();
      logs[static_cast<std::size_t>(party)] = pctx.detections;
    });
    critical.push_back(party != config_.byzantine_party);
  }

  run_actors(bodies, critical);
  const double wall = watch.elapsed_seconds();

  // Evaluate the reconstructed weights per epoch on the test set.
  TrainResult result;
  for (std::size_t epoch = 0;
       options.reveal_weights && epoch < options.epochs; ++epoch) {
    const bool last_epoch = epoch + 1 == options.epochs;
    if (!options.evaluate_each_epoch && !last_epoch) {
      continue;
    }
    bool complete = true;
    for (std::size_t i = 0; i < param_count; ++i) {
      const auto it = service.revealed().find(reveal_key(epoch, i));
      if (it == service.revealed().end()) {
        complete = false;
        break;
      }
      parameters[i]->value = to_real(it->second, config_.frac_bits);
    }
    if (!complete) {
      TRUSTDDL_LOG_WARN(kLog) << "missing revealed weights for epoch "
                              << epoch;
      continue;
    }
    result.epoch_test_accuracy.push_back(
        model_.accuracy(test_data.images, test_data.labels));
  }
  result.cost = collect_cost(wall, logs);
  return result;
}

InferResult TrustDdlEngine::infer(const data::Dataset& inputs,
                                  std::size_t batch_size) {
  TRUSTDDL_REQUIRE(batch_size >= 1, "infer: invalid batch size");
  net::NetworkConfig net_config;
  net_config.num_parties = kNumActors;
  net_config.recv_timeout = config_.recv_timeout;
  net_config.emulate_latency = config_.emulate_latency;
  net_config.link_latency = config_.link_latency;
  network_ = std::make_unique<net::Network>(net_config);

  std::vector<data::Dataset> batches;
  for (std::size_t start = 0; start < inputs.size(); start += batch_size) {
    batches.push_back(data::slice(
        inputs, start, std::min(batch_size, inputs.size() - start)));
  }

  const auto parameters = model_.parameters();
  const std::size_t param_count = parameters.size();

  std::unique_ptr<mpc::StandardAdversary> adversary;
  if (config_.byzantine_party >= 0) {
    adversary = std::make_unique<mpc::StandardAdversary>(config_.byzantine);
  }

  OwnerServiceConfig owner_config;
  owner_config.frac_bits = config_.frac_bits;
  owner_config.dist_tolerance = config_.dist_tolerance;
  owner_config.collect_timeout = config_.collect_timeout;
  owner_config.seed = config_.seed * 41 + 17;
  ModelOwnerService service(network_->endpoint(kModelOwner), owner_config);

  std::array<mpc::DetectionLog, 3> logs;
  std::vector<std::size_t> labels(inputs.size());
  Stopwatch watch;

  std::vector<std::function<void()>> bodies;
  std::vector<bool> critical;

  bodies.push_back([&] {
    Rng rng(config_.seed * 59 + 29);
    net::Endpoint endpoint = network_->endpoint(kModelOwner);
    for (std::size_t i = 0; i < param_count; ++i) {
      const auto views = mpc::share_secret(
          to_ring(parameters[i]->value, config_.frac_bits), rng);
      for (int party = 0; party < kComputingParties; ++party) {
        ByteWriter writer;
        mpc::write_party_share(writer,
                               views[static_cast<std::size_t>(party)]);
        endpoint.send(party, init_tag(i), writer.take());
      }
    }
    service.run();
  });
  critical.push_back(true);

  bodies.push_back([&] {
    Rng rng(config_.seed * 71 + 5);
    net::Endpoint endpoint = network_->endpoint(kDataOwner);
    for (std::size_t step = 0; step < batches.size(); ++step) {
      const auto x_views = mpc::share_secret(
          to_ring(batches[step].images, config_.frac_bits), rng);
      for (int party = 0; party < kComputingParties; ++party) {
        ByteWriter writer;
        mpc::write_party_share(writer,
                               x_views[static_cast<std::size_t>(party)]);
        endpoint.send(party, batch_tag(step, "x"), writer.take());
      }
    }
    // Collect prediction shares and reconstruct (the data owner
    // receives the inference result — paper §III-A).
    std::size_t row_offset = 0;
    for (std::size_t step = 0; step < batches.size(); ++step) {
      std::array<std::optional<mpc::PartyShare>, kComputingParties> triples;
      for (int party = 0; party < kComputingParties; ++party) {
        try {
          ByteReader reader(
              endpoint.recv(party, pred_tag(step), kActorTimeout));
          triples[static_cast<std::size_t>(party)] =
              mpc::read_party_share(reader);
        } catch (const Error&) {
          TRUSTDDL_LOG_WARN(kLog) << "no prediction share from party "
                                  << party << " for step " << step;
        }
      }
      const RealTensor probabilities = to_real(
          mpc::robust_reconstruct(triples, config_.dist_tolerance),
          config_.frac_bits);
      for (std::size_t row = 0; row < probabilities.rows(); ++row) {
        std::size_t best = 0;
        for (std::size_t col = 1; col < probabilities.cols(); ++col) {
          if (probabilities.at(row, col) > probabilities.at(row, best)) {
            best = col;
          }
        }
        labels[row_offset + row] = best;
      }
      row_offset += probabilities.rows();
    }
  });
  critical.push_back(true);

  for (int party = 0; party < kComputingParties; ++party) {
    bodies.push_back([&, party] {
      net::Endpoint endpoint = network_->endpoint(party);
      OwnerLink link(endpoint, party, kActorTimeout);

      std::vector<mpc::PartyShare> param_shares;
      param_shares.reserve(param_count);
      for (std::size_t i = 0; i < param_count; ++i) {
        ByteReader reader(
            endpoint.recv(kModelOwner, init_tag(i), kActorTimeout));
        param_shares.push_back(mpc::read_party_share(reader));
      }
      SecureModel model(spec_, std::move(param_shares));

      mpc::PartyContext pctx =
          make_party_context(config_, party, endpoint, adversary.get());
      SecureExecContext sctx = make_exec_context(config_, pctx, link);

      for (std::size_t step = 0; step < batches.size(); ++step) {
        ByteReader reader(
            endpoint.recv(kDataOwner, batch_tag(step, "x"), kActorTimeout));
        const mpc::PartyShare x = mpc::read_party_share(reader);
        const mpc::PartyShare probabilities = model.forward(sctx, x);
        ByteWriter writer;
        mpc::write_party_share(writer, probabilities);
        endpoint.send(kDataOwner, pred_tag(step), writer.take());
      }
      link.stop();
      logs[static_cast<std::size_t>(party)] = pctx.detections;
    });
    critical.push_back(party != config_.byzantine_party);
  }

  run_actors(bodies, critical);

  InferResult result;
  result.labels = std::move(labels);
  result.cost = collect_cost(watch.elapsed_seconds(), logs);
  return result;
}

}  // namespace trustddl::core
