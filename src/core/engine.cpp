#include "core/engine.hpp"

#include <thread>

#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "core/actors.hpp"
#include "core/metrics_export.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace trustddl::core {
namespace {

constexpr const char* kLog = "core.engine";

/// Arm the telemetry sinks the config asks for.  metrics_out enables
/// the registry (never disables it — TRUSTDDL_METRICS may have turned
/// it on process-wide) and zeroes it so the export covers exactly this
/// run; either sink clears the detection event log.
void begin_observation(const EngineConfig& config) {
  if (!config.metrics_out.empty()) {
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::global().reset();
  }
  if (!config.trace_out.empty()) {
    obs::Tracer::global().open(config.trace_out);
  }
  if (!config.metrics_out.empty() || !config.trace_out.empty()) {
    obs::EventLog::global().clear();
  }
}

void finish_observation(const EngineConfig& config,
                        const net::Transport& transport,
                        const CostReport& cost) {
  if (!config.metrics_out.empty()) {
    write_metrics_export(config.metrics_out,
                         obs::MetricsRegistry::global().snapshot(),
                         obs::EventLog::global().snapshot(),
                         transport.traffic(), cost);
  }
  if (!config.trace_out.empty()) {
    obs::Tracer::global().close();
  }
}

/// Run heterogeneous actor bodies on their own threads; rethrow the
/// first failure of an actor marked critical (honest parties, owners).
void run_actors(const std::vector<std::function<void()>>& bodies,
                const std::vector<bool>& critical) {
  std::vector<std::exception_ptr> errors(bodies.size());
  std::vector<std::thread> threads;
  threads.reserve(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        bodies[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    if (errors[i]) {
      if (critical[i]) {
        std::rethrow_exception(errors[i]);
      }
      std::string reason = "unknown";
      try {
        std::rethrow_exception(errors[i]);
      } catch (const std::exception& error) {
        reason = error.what();
      } catch (...) {
      }
      TRUSTDDL_LOG_WARN(kLog) << "non-critical actor " << i
                              << " failed (tolerated): " << reason;
    }
  }
}

}  // namespace

mpc::PartyContext make_party_context(const EngineConfig& config, int party,
                                     net::Endpoint endpoint,
                                     mpc::AdversaryHooks* adversary) {
  mpc::PartyContext pctx;
  pctx.endpoint = std::move(endpoint);
  pctx.party = party;
  pctx.detections.party = party;
  pctx.mode = config.mode;
  pctx.frac_bits = config.frac_bits;
  pctx.dist_tolerance = config.dist_tolerance;
  pctx.share_authentication = config.share_authentication;
  pctx.optimistic = config.optimistic_open;
  pctx.kernels = config.kernels;
  if (party == config.byzantine_party) {
    pctx.adversary = adversary;
  }
  return pctx;
}

SecureExecContext make_exec_context(const EngineConfig& config,
                                    mpc::PartyContext& pctx, OwnerLink& link) {
  SecureExecContext sctx;
  sctx.mpc = &pctx;
  sctx.triples = &link;
  sctx.owner = &link;
  sctx.trunc_mode = config.resolved_trunc_mode();
  sctx.batch_openings = config.batch_openings;
  return sctx;
}

TrustDdlEngine::TrustDdlEngine(nn::ModelSpec spec, EngineConfig config)
    : spec_(std::move(spec)), config_(config), model_([&] {
        Rng rng(config.seed);
        return nn::build_model(spec_, rng);
      }()) {}

TrustDdlEngine::TrustDdlEngine(nn::ModelSpec spec, EngineConfig config,
                               net::Transport& transport)
    : TrustDdlEngine(std::move(spec), config) {
  TRUSTDDL_REQUIRE(transport.num_parties() >= kNumActors,
                   "external transport must serve all five actors");
  external_transport_ = &transport;
}

net::Transport& TrustDdlEngine::prepare_transport() {
  if (external_transport_ != nullptr) {
    external_transport_->reset_traffic();
    return *external_transport_;
  }
  net::NetworkConfig net_config;
  net_config.num_parties = kNumActors;
  net_config.recv_timeout = config_.recv_timeout;
  net_config.emulate_latency = config_.emulate_latency;
  net_config.link_latency = config_.link_latency;
  network_ = std::make_unique<net::Network>(net_config);
  return *network_;
}

CostReport TrustDdlEngine::collect_cost(
    const net::Transport& transport, double wall_seconds,
    const std::array<mpc::DetectionLog, 3>& logs) const {
  CostReport report;
  report.wall_seconds = wall_seconds;
  const net::TrafficSnapshot traffic = transport.traffic();
  report.total_bytes = traffic.total_bytes;
  report.total_messages = traffic.total_messages;
  for (int i = 0; i < kNumActors; ++i) {
    for (int j = 0; j < kNumActors; ++j) {
      const auto bytes =
          traffic.links[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(j)]
                           .bytes;
      if (i < kComputingParties && j < kComputingParties) {
        report.proxy_bytes += bytes;
      } else {
        report.owner_bytes += bytes;
      }
    }
  }
  for (const auto& log : logs) {
    report.commitment_violations +=
        log.count(mpc::DetectionEvent::Kind::kCommitmentViolation);
    report.distance_anomalies +=
        log.count(mpc::DetectionEvent::Kind::kDistanceAnomaly);
    report.share_auth_failures +=
        log.count(mpc::DetectionEvent::Kind::kShareAuthFailure);
    report.recovered_opens += log.recovered_opens;
  }
  report.opening_rounds = logs[0].opens;
  report.values_opened = logs[0].values_opened;
  return report;
}

TrainResult TrustDdlEngine::train(const data::Dataset& train_data,
                                  const data::Dataset& test_data,
                                  const TrainOptions& options) {
  // Free tensor/conv kernels pick their parallelism up from the
  // process-global config; pin it to this engine's setting so the
  // whole run (including plaintext evaluation) honours it.
  kernels::set_global_config(config_.kernels);
  begin_observation(config_);
  net::Transport& transport = prepare_transport();

  const auto parameters = model_.parameters();
  const TrainJob job =
      make_train_job(spec_, config_, options, train_data, parameters.size());

  std::unique_ptr<mpc::StandardAdversary> adversary;
  if (config_.byzantine_party >= 0) {
    adversary = std::make_unique<mpc::StandardAdversary>(config_.byzantine);
  }

  ModelOwnerService service(transport.endpoint(kModelOwner),
                            make_owner_service_config(config_, true));

  std::array<mpc::DetectionLog, 3> logs;
  Stopwatch watch;

  std::vector<std::function<void()>> bodies;
  std::vector<bool> critical;

  bodies.push_back([&] {
    train_model_owner_body(job, transport.endpoint(kModelOwner), model_,
                           service);
  });
  critical.push_back(true);

  bodies.push_back(
      [&] { train_data_owner_body(job, transport.endpoint(kDataOwner)); });
  critical.push_back(true);

  for (int party = 0; party < kComputingParties; ++party) {
    bodies.push_back([&, party] {
      logs[static_cast<std::size_t>(party)] = train_computing_party_body(
          job, party, transport.endpoint(party), adversary.get());
    });
    critical.push_back(party != config_.byzantine_party);
  }

  run_actors(bodies, critical);
  const double wall = watch.elapsed_seconds();

  // Evaluate the reconstructed weights per epoch on the test set.
  TrainResult result;
  for (std::size_t epoch = 0;
       options.reveal_weights && epoch < options.epochs; ++epoch) {
    const bool last_epoch = epoch + 1 == options.epochs;
    if (!options.evaluate_each_epoch && !last_epoch) {
      continue;
    }
    bool complete = true;
    for (std::size_t i = 0; i < parameters.size(); ++i) {
      const auto it = service.revealed().find(reveal_key(epoch, i));
      if (it == service.revealed().end()) {
        complete = false;
        break;
      }
      parameters[i]->value = to_real(it->second, config_.frac_bits);
    }
    if (!complete) {
      TRUSTDDL_LOG_WARN(kLog) << "missing revealed weights for epoch "
                              << epoch;
      continue;
    }
    result.epoch_test_accuracy.push_back(
        model_.accuracy(test_data.images, test_data.labels));
  }
  result.cost = collect_cost(transport, wall, logs);
  finish_observation(config_, transport, result.cost);
  return result;
}

InferResult TrustDdlEngine::infer(const data::Dataset& inputs,
                                  std::size_t batch_size) {
  kernels::set_global_config(config_.kernels);
  begin_observation(config_);
  net::Transport& transport = prepare_transport();

  const InferJob job = make_infer_job(
      spec_, config_, model_.parameters().size(), inputs, batch_size);

  std::unique_ptr<mpc::StandardAdversary> adversary;
  if (config_.byzantine_party >= 0) {
    adversary = std::make_unique<mpc::StandardAdversary>(config_.byzantine);
  }

  ModelOwnerService service(transport.endpoint(kModelOwner),
                            make_owner_service_config(config_, false));

  std::array<mpc::DetectionLog, 3> logs;
  std::vector<std::size_t> labels;
  Stopwatch watch;

  std::vector<std::function<void()>> bodies;
  std::vector<bool> critical;

  bodies.push_back([&] {
    infer_model_owner_body(job, transport.endpoint(kModelOwner), model_,
                           service);
  });
  critical.push_back(true);

  bodies.push_back([&] {
    labels = infer_data_owner_body(job, transport.endpoint(kDataOwner));
  });
  critical.push_back(true);

  for (int party = 0; party < kComputingParties; ++party) {
    bodies.push_back([&, party] {
      logs[static_cast<std::size_t>(party)] = infer_computing_party_body(
          job, party, transport.endpoint(party), adversary.get());
    });
    critical.push_back(party != config_.byzantine_party);
  }

  run_actors(bodies, critical);

  InferResult result;
  result.labels = std::move(labels);
  result.cost = collect_cost(transport, watch.elapsed_seconds(), logs);
  finish_observation(config_, transport, result.cost);
  return result;
}

}  // namespace trustddl::core
