// Party-side link to the model owner.
//
// TrustDDL's model owner deals preprocessing material (Beaver triples,
// comparison auxiliaries, truncation pairs — paper §III-A) and
// performs the outsourced Softmax computation (§III-C).  Computing
// parties pull both through this link; every byte crosses the metered
// network, so the benchmark's communication costs include dealing
// traffic.
//
// Requests carry a per-party sequence counter.  The protocols are
// SPMD, so all parties issue the same request sequence and the model
// owner can serve consistent share views (the same underlying triple)
// for the same counter.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "mpc/beaver.hpp"
#include "net/network.hpp"

namespace trustddl::core {

/// Request opcodes for the model-owner service.
enum class OwnerOp : std::uint8_t {
  kMulTriple = 0,
  kMatMulTriple = 1,
  kCompAux = 2,
  kTruncPair = 3,
  kSoftmaxForward = 4,
  kSoftmaxBackward = 5,
  kReveal = 6,  ///< deliver a share for owner-side reconstruction
  kStop = 7,
};

class OwnerLink final : public mpc::TripleSource {
 public:
  OwnerLink(net::Endpoint endpoint, int party,
            std::chrono::milliseconds response_timeout =
                std::chrono::seconds(30))
      : endpoint_(endpoint),
        party_(party),
        response_timeout_(response_timeout) {}

  // TripleSource interface — unary requests served immediately.
  mpc::BeaverTripleShare mul_triple(const Shape& shape) override;
  mpc::BeaverTripleShare matmul_triple(std::size_t m, std::size_t k,
                                       std::size_t n) override;
  mpc::PartyShare comp_aux(const Shape& shape) override;
  mpc::TruncPairShare trunc_pair(const Shape& shape) override;

  /// Outsourced Softmax forward: send logit shares, receive fresh
  /// shares of the probabilities (collective op — the owner combines
  /// all three parties' shares).
  mpc::PartyShare softmax_forward(const mpc::PartyShare& logits);

  /// Outsourced Softmax Jacobian-vector product for non-fused losses:
  /// send shares of probabilities and upstream gradient, receive
  /// shares of the logits gradient.
  mpc::PartyShare softmax_backward(const mpc::PartyShare& probabilities,
                                   const mpc::PartyShare& grad);

  /// Send a share to the owner for reconstruction under `key`
  /// (trained weights, metrics).  Fire-and-forget.
  void reveal(const std::string& key, const mpc::PartyShare& share);

  /// Tell the owner this party is done.
  void stop();

  std::uint64_t requests_sent() const { return counter_; }

 private:
  Bytes roundtrip(Bytes request);
  void send_only(Bytes request);

  net::Endpoint endpoint_;
  int party_;
  std::chrono::milliseconds response_timeout_;
  std::uint64_t counter_ = 0;
};

}  // namespace trustddl::core
