// Party-side link to the model owner.
//
// TrustDDL's model owner deals preprocessing material (Beaver triples,
// comparison auxiliaries, truncation pairs — paper §III-A) and
// performs the outsourced Softmax computation (§III-C).  Computing
// parties pull both through this link; every byte crosses the metered
// network, so the benchmark's communication costs include dealing
// traffic.
//
// The link carries TWO independent per-party request streams:
//
//  * unary stream ("req/<id>" -> "rsp/<id>"): batched material fills.
//    Material is addressed by (stream key, index range) and dealt
//    statelessly from derived seeds, so requests need no cross-party
//    coordination — a background prefetch thread may issue them at any
//    time, interleaved differently on every party.  Thread-safe.
//  * collective stream ("col/<id>" -> "crsp/<id>"): Softmax
//    forward/backward, reveals, stop.  The owner groups the three
//    parties' payloads by this counter, so it must advance identically
//    on every party — these calls stay on the party's protocol thread
//    (SPMD), untouched by prefetch traffic.
//
// Splitting the streams is what makes the offline/online overlap safe:
// before, one shared counter meant any extra dealing request would
// desynchronize collective grouping across parties.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "mpc/beaver.hpp"
#include "net/network.hpp"

namespace trustddl::core {

/// Request opcodes for the model-owner service.  kBatchFill rides the
/// unary stream; the rest are collective.  Values are wire format.
enum class OwnerOp : std::uint8_t {
  kBatchFill = 0,  ///< fill N entries of one material stream
  kSoftmaxForward = 4,
  kSoftmaxBackward = 5,
  kReveal = 6,  ///< deliver a share for owner-side reconstruction
  kStop = 7,
};

class OwnerLink final : public mpc::TripleSource, public mpc::TripleBackend {
 public:
  OwnerLink(net::Endpoint endpoint, int party,
            std::chrono::milliseconds response_timeout =
                std::chrono::seconds(30))
      : endpoint_(endpoint),
        party_(party),
        response_timeout_(response_timeout) {}

  /// TripleBackend: fetch entries [start, start+count) of `key` in one
  /// round trip.  Thread-safe (prefetch producer + protocol thread).
  mpc::MaterialBatch fill(const mpc::TripleKey& key, std::uint64_t start,
                          std::size_t count) override;

  // TripleSource — synchronous single-entry convenience over fill();
  // each key's entries are handed out in stream order starting at 0,
  // so a link used directly (no store) matches a store-backed run bit
  // for bit.
  mpc::BeaverTripleShare mul_triple(const Shape& shape) override;
  mpc::BeaverTripleShare matmul_triple(std::size_t m, std::size_t k,
                                       std::size_t n) override;
  mpc::PartyShare comp_aux(const Shape& shape) override;
  mpc::TruncPairShare trunc_pair(const Shape& shape) override;

  /// Outsourced Softmax forward: send logit shares, receive fresh
  /// shares of the probabilities (collective op — the owner combines
  /// all three parties' shares).  Protocol thread only.
  mpc::PartyShare softmax_forward(const mpc::PartyShare& logits);

  /// Outsourced Softmax Jacobian-vector product for non-fused losses:
  /// send shares of probabilities and upstream gradient, receive
  /// shares of the logits gradient.  Protocol thread only.
  mpc::PartyShare softmax_backward(const mpc::PartyShare& probabilities,
                                   const mpc::PartyShare& grad);

  /// Send a share to the owner for reconstruction under `key`
  /// (trained weights, metrics).  Fire-and-forget, protocol thread
  /// only.
  void reveal(const std::string& key, const mpc::PartyShare& share);

  /// Tell the owner this party is done.  Protocol thread only; no
  /// dealing requests may follow.
  void stop();

  std::uint64_t requests_sent() const {
    std::lock_guard<std::mutex> lock(mu_);
    return unary_counter_ + collective_counter_;
  }

 private:
  /// Unary round trip: counter allocation + send are atomic under the
  /// lock; the receive happens outside it (responses are tag-matched,
  /// so concurrent requesters cannot steal each other's replies).
  Bytes unary_roundtrip(Bytes request);
  Bytes collective_roundtrip(Bytes request);
  void collective_send(Bytes request);

  /// Single-entry TripleSource access: fill(cursor++, 1) for the key.
  mpc::MaterialBatch next_single(const mpc::TripleKey& key);

  net::Endpoint endpoint_;
  int party_;
  std::chrono::milliseconds response_timeout_;

  mutable std::mutex mu_;
  std::uint64_t unary_counter_ = 0;
  std::uint64_t collective_counter_ = 0;
  /// Per-key stream cursor for direct (store-less) TripleSource use.
  std::unordered_map<mpc::TripleKey, std::uint64_t, mpc::TripleKeyHash>
      stream_cursor_;
};

}  // namespace trustddl::core
