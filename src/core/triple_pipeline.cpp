#include "core/triple_pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "common/logging.hpp"
#include "core/actors.hpp"
#include "obs/trace.hpp"

namespace trustddl::core {
namespace {

constexpr const char* kLog = "core.triples";

}  // namespace

void DemandPlan::add(const mpc::TripleKey& key, std::size_t count) {
  if (count == 0) {
    return;
  }
  for (auto& [existing, existing_count] : counts) {
    if (existing == key) {
      existing_count += count;
      return;
    }
  }
  counts.emplace_back(key, count);
}

void DemandPlan::merge(const DemandPlan& other) {
  for (const auto& [key, count] : other.counts) {
    add(key, count);
  }
}

std::size_t DemandPlan::total() const {
  std::size_t sum = 0;
  for (const auto& [key, count] : counts) {
    (void)key;
    sum += count;
  }
  return sum;
}

DemandPlan profile_step_demand(const nn::ModelSpec& spec,
                               std::size_t batch_rows,
                               TruncationMode trunc_mode, bool training) {
  // This walk mirrors the consumption sites in secure_model.cpp — the
  // shapes below must match the Secure* layers' requests exactly or a
  // "warm" store will still miss.  PrefetchExactnessTest pins that
  // equivalence (miss count zero, store drained after the job).
  const bool masked = trunc_mode == TruncationMode::kMaskedOpen;
  DemandPlan plan;
  std::size_t features = spec.input_features;
  for (const nn::LayerSpec& layer : spec.layers) {
    switch (layer.kind) {
      case nn::LayerSpec::Kind::kDense: {
        // forward: one matmul triple + masked rescale of the product.
        plan.add(mpc::TripleKey::matmul(batch_rows, layer.in, layer.out), 1);
        if (masked) {
          plan.add(mpc::TripleKey::trunc_pair(Shape{batch_rows, layer.out}),
                   1);
        }
        if (training) {
          // backward: weight grad (in x batch)·(batch x out), input
          // grad (batch x out)·(out x in), each rescaled.
          plan.add(mpc::TripleKey::matmul(layer.in, batch_rows, layer.out),
                   1);
          plan.add(mpc::TripleKey::matmul(batch_rows, layer.out, layer.in),
                   1);
          if (masked) {
            plan.add(mpc::TripleKey::trunc_pair(Shape{layer.in, layer.out}),
                     1);
            plan.add(
                mpc::TripleKey::trunc_pair(Shape{batch_rows, layer.in}), 1);
          }
        }
        features = layer.out;
        break;
      }
      case nn::LayerSpec::Kind::kConv: {
        const ConvSpec& conv = layer.conv;
        const std::size_t pixels = conv.col_cols();
        const std::size_t cols = batch_rows * pixels;
        plan.add(
            mpc::TripleKey::matmul(conv.out_channels, conv.col_rows(), cols),
            1);
        if (masked) {
          plan.add(
              mpc::TripleKey::trunc_pair(Shape{conv.out_channels, cols}), 1);
        }
        if (training) {
          plan.add(mpc::TripleKey::matmul(conv.out_channels, cols,
                                          conv.col_rows()),
                   1);
          plan.add(mpc::TripleKey::matmul(conv.col_rows(), conv.out_channels,
                                          cols),
                   1);
          if (masked) {
            plan.add(mpc::TripleKey::trunc_pair(
                         Shape{conv.out_channels, conv.col_rows()}),
                     1);
            plan.add(
                mpc::TripleKey::trunc_pair(Shape{conv.col_rows(), cols}), 1);
          }
        }
        features = conv.out_channels * pixels;
        break;
      }
      case nn::LayerSpec::Kind::kRelu: {
        // forward: one SecSign = comparison auxiliary + mul triple on
        // the activation shape.  Backward is a public-mask product —
        // no material.
        const Shape shape{batch_rows, features};
        plan.add(mpc::TripleKey::comp_aux(shape), 1);
        plan.add(mpc::TripleKey::mul(shape), 1);
        break;
      }
      case nn::LayerSpec::Kind::kMaxPool: {
        // Tournament over window^2 candidates: window^2 - 1 batched
        // comparisons, each on the [batch, pools] candidate shape.
        const std::size_t window_size = layer.pool.window * layer.pool.window;
        const Shape shape{batch_rows, layer.pool.out_features()};
        if (window_size > 1) {
          plan.add(mpc::TripleKey::comp_aux(shape), window_size - 1);
          plan.add(mpc::TripleKey::mul(shape), window_size - 1);
        }
        features = layer.pool.out_features();
        break;
      }
      case nn::LayerSpec::Kind::kSoftmax:
        // Outsourced to the model owner — no dealt material.
        break;
    }
  }
  if (training && masked) {
    // sgd_step: one masked rescale per parameter, in layer order.
    for (const nn::LayerSpec& layer : spec.layers) {
      if (layer.kind == nn::LayerSpec::Kind::kDense) {
        plan.add(mpc::TripleKey::trunc_pair(Shape{layer.in, layer.out}), 1);
        plan.add(mpc::TripleKey::trunc_pair(Shape{1, layer.out}), 1);
      } else if (layer.kind == nn::LayerSpec::Kind::kConv) {
        plan.add(mpc::TripleKey::trunc_pair(
                     Shape{layer.conv.out_channels, layer.conv.col_rows()}),
                 1);
        plan.add(mpc::TripleKey::trunc_pair(Shape{layer.conv.out_channels}),
                 1);
      }
    }
  }
  return plan;
}

DemandPlan profile_job_demand(const nn::ModelSpec& spec,
                              const std::vector<std::size_t>& batch_rows,
                              TruncationMode trunc_mode, bool training) {
  DemandPlan plan;
  for (std::size_t rows : batch_rows) {
    plan.merge(profile_step_demand(spec, rows, trunc_mode, training));
  }
  return plan;
}

DemandPlan profile_train_round_demand(
    const nn::ModelSpec& spec, const std::vector<std::size_t>& owner_rows,
    TruncationMode trunc_mode, const mpc::AggregateOptions& aggregation,
    bool momentum) {
  const bool masked = trunc_mode == TruncationMode::kMaskedOpen;
  DemandPlan plan;
  for (std::size_t rows : owner_rows) {
    plan.merge(profile_step_demand(spec, rows, trunc_mode, /*training=*/true));
    if (masked) {
      // Per-owner logit-gradient normalization: (p - y) * enc(1/rows)
      // rescaled before backward so owner gradients are comparable.
      plan.add(mpc::TripleKey::trunc_pair(Shape{rows, spec.classes}), 1);
    }
  }
  // Parameter shapes in layer order (W then b), mirroring
  // SecureModel::parameters().
  std::vector<Shape> param_shapes;
  for (const nn::LayerSpec& layer : spec.layers) {
    if (layer.kind == nn::LayerSpec::Kind::kDense) {
      param_shapes.push_back(Shape{layer.in, layer.out});
      param_shapes.push_back(Shape{1, layer.out});
    } else if (layer.kind == nn::LayerSpec::Kind::kConv) {
      param_shapes.push_back(
          Shape{layer.conv.out_channels, layer.conv.col_rows()});
      param_shapes.push_back(Shape{layer.conv.out_channels});
    }
  }
  mpc::AggregateOptions options = aggregation;
  options.trunc_mode = trunc_mode;
  for (const Shape& shape : param_shapes) {
    const mpc::AggregateDemand demand =
        mpc::aggregate_demand(owner_rows.size(), shape, options);
    if (demand.needs_comparison) {
      plan.add(mpc::TripleKey::comp_aux(demand.comparison_shape), 1);
      plan.add(mpc::TripleKey::mul(demand.comparison_shape), 1);
    }
    if (demand.needs_trunc_pair) {
      plan.add(mpc::TripleKey::trunc_pair(demand.trunc_shape), 1);
    }
    if (momentum && masked) {
      plan.add(mpc::TripleKey::trunc_pair(shape), 1);
    }
  }
  return plan;
}

std::uint64_t TriplePipeline::store_provenance(const EngineConfig& config,
                                               bool training) {
  const OwnerServiceConfig owner = make_owner_service_config(config, training);
  // Any change to the dealing seed or the fixed-point format makes
  // persisted material unusable; fold both into the tag.
  return mpc::derive_material_seed(
      owner.seed, mpc::TripleKey::mul(Shape{static_cast<std::size_t>(
                      config.frac_bits)}),
      0x7d57);
}

std::string TriplePipeline::store_path(const std::string& dir, int party,
                                       bool training) {
  return dir + "/party" + std::to_string(party) +
         (training ? ".train" : ".infer") + ".triples";
}

TriplePipeline::TriplePipeline(const EngineConfig& config, OwnerLink& link,
                               int party, bool training)
    : config_(config), link_(link), party_(party), training_(training) {
  if (!config_.triple_prefetch && config_.triple_store_dir.empty()) {
    return;
  }
  store_ = std::make_unique<mpc::TripleStore>(link_, party_);
  if (!config_.triple_store_dir.empty()) {
    const std::string path =
        store_path(config_.triple_store_dir, party_, training_);
    if (store_->load(path, store_provenance(config_, training_))) {
      TRUSTDDL_LOG_INFO(kLog)
          << "party " << party_ << " restored " << store_->depth()
          << " prefetched entries from " << path;
    }
  }
}

TriplePipeline::~TriplePipeline() {
  try {
    shutdown();
  } catch (const Error& error) {
    TRUSTDDL_LOG_WARN(kLog)
        << "party " << party_ << " pipeline shutdown: " << error.what();
  }
}

mpc::TripleSource& TriplePipeline::source() {
  if (store_ != nullptr) {
    return *store_;
  }
  return link_;
}

void TriplePipeline::plan(const DemandPlan& plan) {
  if (store_ == nullptr) {
    return;
  }
  for (const auto& [key, count] : plan.counts) {
    store_->demand(key, std::min(count, config_.triple_max_depth));
  }
}

void TriplePipeline::plan_step(const nn::ModelSpec& spec, std::size_t rows,
                               std::size_t depth_factor) {
  if (store_ == nullptr) {
    return;
  }
  DemandPlan step = profile_step_demand(spec, rows,
                                        config_.resolved_trunc_mode(),
                                        /*training=*/false);
  DemandPlan scaled;
  for (const auto& [key, count] : step.counts) {
    scaled.add(key, count * std::max<std::size_t>(depth_factor, 1));
  }
  plan(scaled);
}

std::size_t TriplePipeline::warm() {
  if (store_ == nullptr || !config_.triple_prefetch) {
    return 0;
  }
  obs::ScopedSpan span("triple.warm", party_);
  std::size_t total = 0;
  for (;;) {
    const std::size_t added =
        store_->refill_toward_targets(config_.triple_refill_batch);
    if (added == 0) {
      break;
    }
    total += added;
  }
  return total;
}

std::size_t TriplePipeline::refill_once() {
  if (store_ == nullptr || !config_.triple_prefetch) {
    return 0;
  }
  return store_->refill_toward_targets(config_.triple_refill_batch);
}

void TriplePipeline::start() {
  if (store_ == nullptr || !config_.triple_prefetch || producer_.joinable()) {
    return;
  }
  stop_.store(false, std::memory_order_relaxed);
  producer_ = std::thread([this] { producer_loop(); });
}

void TriplePipeline::producer_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    std::size_t added = 0;
    for (const mpc::TripleKey& key :
         store_->keys_below(config_.triple_low_water)) {
      if (stop_.load(std::memory_order_relaxed)) {
        break;
      }
      added += store_->refill(key, config_.triple_refill_batch);
    }
    if (added == 0) {
      // Nothing under water: idle briefly rather than spin on the
      // owner link.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

void TriplePipeline::shutdown() {
  if (producer_.joinable()) {
    stop_.store(true, std::memory_order_relaxed);
    producer_.join();
  }
  if (shut_down_ || store_ == nullptr) {
    return;
  }
  shut_down_ = true;
  if (!config_.triple_store_dir.empty()) {
    const std::string path =
        store_path(config_.triple_store_dir, party_, training_);
    store_->save(path, store_provenance(config_, training_));
    TRUSTDDL_LOG_INFO(kLog)
        << "party " << party_ << " persisted " << store_->depth()
        << " prefetched entries to " << path;
  }
}

}  // namespace trustddl::core
