#include "core/owner_link.hpp"

#include "core/roles.hpp"
#include "mpc/share_serde.hpp"
#include "numeric/serde.hpp"

namespace trustddl::core {

Bytes OwnerLink::unary_roundtrip(Bytes request) {
  std::uint64_t id = 0;
  {
    // Counter allocation and send are one atomic step so ids reach the
    // owner gap-free and in order per party.
    std::lock_guard<std::mutex> lock(mu_);
    id = unary_counter_++;
    endpoint_.send(kModelOwner, "req/" + std::to_string(id),
                   std::move(request));
  }
  return endpoint_.recv(kModelOwner, "rsp/" + std::to_string(id),
                        response_timeout_);
}

Bytes OwnerLink::collective_roundtrip(Bytes request) {
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = collective_counter_++;
  }
  endpoint_.send(kModelOwner, "col/" + std::to_string(id),
                 std::move(request));
  return endpoint_.recv(kModelOwner, "crsp/" + std::to_string(id),
                        response_timeout_);
}

void OwnerLink::collective_send(Bytes request) {
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = collective_counter_++;
  }
  endpoint_.send(kModelOwner, "col/" + std::to_string(id),
                 std::move(request));
}

mpc::MaterialBatch OwnerLink::fill(const mpc::TripleKey& key,
                                   std::uint64_t start, std::size_t count) {
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(OwnerOp::kBatchFill));
  request.write_u8(static_cast<std::uint8_t>(key.kind));
  request.write_u64(key.dims.size());
  for (std::size_t dim : key.dims) {
    request.write_u64(dim);
  }
  request.write_u64(start);
  request.write_u32(static_cast<std::uint32_t>(count));

  ByteReader response(unary_roundtrip(request.take()));
  const std::uint32_t served = response.read_u32();
  if (served != count) {
    throw ProtocolError("owner served short material batch");
  }
  mpc::MaterialBatch batch;
  for (std::uint32_t i = 0; i < served; ++i) {
    switch (key.kind) {
      case mpc::TripleKind::kMul:
      case mpc::TripleKind::kMatMul:
        batch.triples.push_back(mpc::read_beaver_share(response));
        break;
      case mpc::TripleKind::kCompAux:
        batch.aux.push_back(mpc::read_party_share(response));
        break;
      case mpc::TripleKind::kTruncPair:
        batch.pairs.push_back(mpc::read_trunc_pair(response));
        break;
    }
  }
  return batch;
}

mpc::MaterialBatch OwnerLink::next_single(const mpc::TripleKey& key) {
  std::uint64_t index = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    index = stream_cursor_[key]++;
  }
  return fill(key, index, 1);
}

mpc::BeaverTripleShare OwnerLink::mul_triple(const Shape& shape) {
  return std::move(next_single(mpc::TripleKey::mul(shape)).triples.at(0));
}

mpc::BeaverTripleShare OwnerLink::matmul_triple(std::size_t m, std::size_t k,
                                                std::size_t n) {
  return std::move(
      next_single(mpc::TripleKey::matmul(m, k, n)).triples.at(0));
}

mpc::PartyShare OwnerLink::comp_aux(const Shape& shape) {
  return std::move(next_single(mpc::TripleKey::comp_aux(shape)).aux.at(0));
}

mpc::TruncPairShare OwnerLink::trunc_pair(const Shape& shape) {
  return std::move(next_single(mpc::TripleKey::trunc_pair(shape)).pairs.at(0));
}

mpc::PartyShare OwnerLink::softmax_forward(const mpc::PartyShare& logits) {
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(OwnerOp::kSoftmaxForward));
  mpc::write_party_share(request, logits);
  ByteReader response(collective_roundtrip(request.take()));
  return mpc::read_party_share(response);
}

mpc::PartyShare OwnerLink::softmax_backward(
    const mpc::PartyShare& probabilities, const mpc::PartyShare& grad) {
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(OwnerOp::kSoftmaxBackward));
  mpc::write_party_share(request, probabilities);
  mpc::write_party_share(request, grad);
  ByteReader response(collective_roundtrip(request.take()));
  return mpc::read_party_share(response);
}

void OwnerLink::reveal(const std::string& key, const mpc::PartyShare& share) {
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(OwnerOp::kReveal));
  request.write_string(key);
  mpc::write_party_share(request, share);
  collective_send(request.take());
}

void OwnerLink::stop() {
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(OwnerOp::kStop));
  collective_send(request.take());
}

}  // namespace trustddl::core
