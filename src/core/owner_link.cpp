#include "core/owner_link.hpp"

#include "core/roles.hpp"
#include "mpc/share_serde.hpp"
#include "numeric/serde.hpp"

namespace trustddl::core {
namespace {

void write_shape(ByteWriter& writer, const Shape& shape) {
  writer.write_u64(shape.size());
  for (std::size_t dim : shape) {
    writer.write_u64(dim);
  }
}

}  // namespace

Bytes OwnerLink::roundtrip(Bytes request) {
  const std::uint64_t id = counter_++;
  endpoint_.send(kModelOwner, "req/" + std::to_string(id),
                 std::move(request));
  return endpoint_.recv(kModelOwner, "rsp/" + std::to_string(id),
                        response_timeout_);
}

void OwnerLink::send_only(Bytes request) {
  const std::uint64_t id = counter_++;
  endpoint_.send(kModelOwner, "req/" + std::to_string(id),
                 std::move(request));
}

mpc::BeaverTripleShare OwnerLink::mul_triple(const Shape& shape) {
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(OwnerOp::kMulTriple));
  write_shape(request, shape);
  ByteReader response(roundtrip(request.take()));
  return mpc::read_beaver_share(response);
}

mpc::BeaverTripleShare OwnerLink::matmul_triple(std::size_t m, std::size_t k,
                                                std::size_t n) {
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(OwnerOp::kMatMulTriple));
  request.write_u64(m);
  request.write_u64(k);
  request.write_u64(n);
  ByteReader response(roundtrip(request.take()));
  return mpc::read_beaver_share(response);
}

mpc::PartyShare OwnerLink::comp_aux(const Shape& shape) {
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(OwnerOp::kCompAux));
  write_shape(request, shape);
  ByteReader response(roundtrip(request.take()));
  return mpc::read_party_share(response);
}

mpc::TruncPairShare OwnerLink::trunc_pair(const Shape& shape) {
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(OwnerOp::kTruncPair));
  write_shape(request, shape);
  ByteReader response(roundtrip(request.take()));
  return mpc::read_trunc_pair(response);
}

mpc::PartyShare OwnerLink::softmax_forward(const mpc::PartyShare& logits) {
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(OwnerOp::kSoftmaxForward));
  mpc::write_party_share(request, logits);
  ByteReader response(roundtrip(request.take()));
  return mpc::read_party_share(response);
}

mpc::PartyShare OwnerLink::softmax_backward(
    const mpc::PartyShare& probabilities, const mpc::PartyShare& grad) {
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(OwnerOp::kSoftmaxBackward));
  mpc::write_party_share(request, probabilities);
  mpc::write_party_share(request, grad);
  ByteReader response(roundtrip(request.take()));
  return mpc::read_party_share(response);
}

void OwnerLink::reveal(const std::string& key, const mpc::PartyShare& share) {
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(OwnerOp::kReveal));
  request.write_string(key);
  mpc::write_party_share(request, share);
  send_only(request.take());
}

void OwnerLink::stop() {
  ByteWriter request;
  request.write_u8(static_cast<std::uint8_t>(OwnerOp::kStop));
  send_only(request.take());
}

}  // namespace trustddl::core
