#include "core/owner_service.hpp"

#include <algorithm>
#include <thread>

#include "common/logging.hpp"
#include "mpc/share_serde.hpp"
#include "nn/layers.hpp"
#include "numeric/serde.hpp"

namespace trustddl::core {
namespace {

constexpr const char* kLog = "core.owner";

Shape read_shape(ByteReader& reader) {
  const std::uint64_t rank = reader.read_u64();
  if (rank > 8) {
    throw SerializationError("shape rank too large");
  }
  Shape shape(rank);
  for (auto& dim : shape) {
    dim = reader.read_u64();
  }
  return shape;
}

}  // namespace

std::size_t ModelOwnerService::BytesHash::operator()(
    const Bytes& bytes) const {
  // FNV-1a over the payload; requests are tens of bytes.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : bytes) {
    h = (h ^ byte) * 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

ModelOwnerService::ModelOwnerService(net::Endpoint endpoint,
                                     OwnerServiceConfig config)
    : endpoint_(endpoint), config_(config), rng_(config.seed) {}

void ModelOwnerService::run() {
  using Clock = std::chrono::steady_clock;
  std::optional<Clock::time_point> grace_deadline;
  for (;;) {
    if (abort_requested_.load(std::memory_order_relaxed)) {
      return;
    }
    bool progress = false;
    for (int party = 0; party < kComputingParties; ++party) {
      const auto slot = static_cast<std::size_t>(party);
      Bytes payload;
      // stop means the party is done: stop polling both its streams.
      if (stopped_[slot]) {
        continue;
      }
      if (endpoint_.try_recv(party,
                             "req/" + std::to_string(next_unary_[slot]),
                             payload)) {
        try {
          handle_unary(party, payload, next_unary_[slot]);
        } catch (const Error& error) {
          TRUSTDDL_LOG_WARN(kLog)
              << "malformed fill request " << next_unary_[slot]
              << " from party " << party << ": " << error.what();
        }
        next_unary_[slot] += 1;
        progress = true;
      }
      if (endpoint_.try_recv(
              party, "col/" + std::to_string(next_collective_[slot]),
              payload)) {
        try {
          handle_collective(party, payload, next_collective_[slot]);
        } catch (const Error& error) {
          TRUSTDDL_LOG_WARN(kLog)
              << "malformed collective request " << next_collective_[slot]
              << " from party " << party << ": " << error.what();
        }
        next_collective_[slot] += 1;
        progress = true;
      }
    }

    // Process collective groups that are complete or past deadline.
    const auto now = Clock::now();
    for (auto& [id, group] : groups_) {
      if (group.processed) {
        continue;
      }
      int members = 0;
      for (const auto& payload : group.payloads) {
        members += payload.has_value() ? 1 : 0;
      }
      const bool complete = members == kComputingParties;
      const bool expired =
          members >= 2 && now > group.created + config_.collect_timeout;
      // Do NOT short-circuit 2-member groups just because two parties
      // already stopped: a live third party's fire-and-forget payloads
      // (weight reveals) may still be in flight, and reconstructing
      // from 2 instead of 3 shares can differ by a few fixed-point
      // ulps once local truncation has decorrelated the share sets.
      // The grace window exists precisely so the straggler can finish;
      // partial groups are only drained at the deadline below.
      if (complete || expired) {
        process_group(id, group);
        progress = true;
      }
    }

    if (stop_count_ >= 2 && !grace_deadline) {
      grace_deadline = now + config_.collect_timeout;
    }
    if (stop_count_ >= kComputingParties ||
        (grace_deadline && now > *grace_deadline)) {
      // Final drain of any processable groups, then exit.
      for (auto& [id, group] : groups_) {
        if (!group.processed) {
          int members = 0;
          for (const auto& payload : group.payloads) {
            members += payload.has_value() ? 1 : 0;
          }
          if (members >= 2) {
            process_group(id, group);
          }
        }
      }
      return;
    }
    if (!progress) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

void ModelOwnerService::handle_unary(int party, const Bytes& payload,
                                     std::uint64_t id) {
  ByteReader peek(payload);
  const auto op = static_cast<OwnerOp>(peek.read_u8());
  if (op != OwnerOp::kBatchFill) {
    throw ProtocolError("unexpected op on unary stream");
  }

  auto it = fill_cache_.find(payload);
  if (it == fill_cache_.end()) {
    ByteReader reader(payload);
    (void)reader.read_u8();
    mpc::TripleKey key;
    key.kind = static_cast<mpc::TripleKind>(reader.read_u8());
    if (key.kind > mpc::TripleKind::kTruncPair) {
      throw SerializationError("unknown material kind");
    }
    key.dims = read_shape(reader);
    const std::uint64_t start = reader.read_u64();
    const std::uint32_t count = reader.read_u32();
    if (count == 0 || count > config_.max_batch_entries) {
      throw ProtocolError("fill count out of bounds");
    }
    std::size_t entry_values = 1;
    for (std::size_t dim : key.dims) {
      entry_values *= std::max<std::size_t>(dim, 1);
    }
    if (entry_values * count > (std::size_t{1} << 28)) {
      throw ProtocolError("fill request too large");
    }

    // Stateless derived-seed dealing: the response is a pure function
    // of (request payload, service seed).
    const auto views = mpc::deal_material(key, start, count, config_.seed,
                                          config_.frac_bits);
    FillCacheEntry entry;
    for (int p = 0; p < kComputingParties; ++p) {
      const auto& view = views[static_cast<std::size_t>(p)];
      ByteWriter writer;
      writer.write_u32(count);
      switch (key.kind) {
        case mpc::TripleKind::kMul:
        case mpc::TripleKind::kMatMul:
          for (const auto& triple : view.triples) {
            mpc::write_beaver_share(writer, triple);
          }
          break;
        case mpc::TripleKind::kCompAux:
          for (const auto& aux : view.aux) {
            mpc::write_party_share(writer, aux);
          }
          break;
        case mpc::TripleKind::kTruncPair:
          for (const auto& pair : view.pairs) {
            mpc::write_trunc_pair(writer, pair);
          }
          break;
      }
      entry.responses[static_cast<std::size_t>(p)] = writer.take();
    }
    // Evict BEFORE inserting so the fresh entry is never the victim
    // (FIFO records can be stale after the all-served fast path below).
    while (fill_cache_.size() >= kMaxFillCacheEntries &&
           !fill_cache_fifo_.empty()) {
      fill_cache_.erase(fill_cache_fifo_.front());
      fill_cache_fifo_.pop_front();
    }
    it = fill_cache_.emplace(payload, std::move(entry)).first;
    fill_cache_fifo_.push_back(payload);
  }
  endpoint_.send(party, "rsp/" + std::to_string(id),
                 it->second.responses[static_cast<std::size_t>(party)]);
  it->second.served |= (1 << party);
  ++fills_served_;
  if (it->second.served == 0b111) {
    // All parties took this range; drop it early (the FIFO record goes
    // stale, which the eviction sweep tolerates).
    fill_cache_.erase(it);
  }
}

void ModelOwnerService::handle_collective(int party, const Bytes& payload,
                                          std::uint64_t id) {
  ByteReader peek(payload);
  const auto op = static_cast<OwnerOp>(peek.read_u8());

  if (op == OwnerOp::kStop) {
    stopped_[static_cast<std::size_t>(party)] = true;
    ++stop_count_;
    return;
  }
  if (op != OwnerOp::kSoftmaxForward && op != OwnerOp::kSoftmaxBackward &&
      op != OwnerOp::kReveal) {
    throw ProtocolError("unexpected op on collective stream");
  }

  // Collective ops: stash the payload; a cached processed group serves
  // stragglers immediately.
  auto [it, inserted] = groups_.try_emplace(id);
  Group& group = it->second;
  if (inserted) {
    group.op = op;
    group.created = std::chrono::steady_clock::now();
  }
  group.payloads[static_cast<std::size_t>(party)] = payload;
  if (group.processed) {
    // Late arrival: serve the cached response if any.
    if (group.responses[static_cast<std::size_t>(party)].has_value() &&
        !group.responded[static_cast<std::size_t>(party)]) {
      endpoint_.send(party, "crsp/" + std::to_string(id),
                     *group.responses[static_cast<std::size_t>(party)]);
      group.responded[static_cast<std::size_t>(party)] = true;
    }
  }
}

RingTensor ModelOwnerService::reconstruct_collective(
    const Group& group, std::size_t payload_offset_values) {
  std::array<std::optional<mpc::PartyShare>, kComputingParties> triples;
  for (int party = 0; party < kComputingParties; ++party) {
    const auto& payload = group.payloads[static_cast<std::size_t>(party)];
    if (!payload.has_value()) {
      continue;
    }
    try {
      ByteReader reader(*payload);
      (void)reader.read_u8();
      if (group.op == OwnerOp::kReveal) {
        (void)reader.read_string();
      }
      mpc::PartyShare share = mpc::read_party_share(reader);
      for (std::size_t skip = 0; skip < payload_offset_values; ++skip) {
        share = mpc::read_party_share(reader);
      }
      triples[static_cast<std::size_t>(party)] = std::move(share);
    } catch (const Error&) {
      // Garbage from a Byzantine party: treat as absent.
    }
  }
  mpc::ReconstructReport report;
  RingTensor value =
      mpc::robust_reconstruct(triples, config_.dist_tolerance, &report);
  if (report.anomaly) {
    ++anomalies_;
  }
  return value;
}

void ModelOwnerService::process_group(std::uint64_t id, Group& group) {
  group.processed = true;
  switch (group.op) {
    case OwnerOp::kSoftmaxForward: {
      const RingTensor logits = reconstruct_collective(group, 0);
      const RealTensor probabilities =
          nn::softmax_rows(to_real(logits, config_.frac_bits));
      const auto views = mpc::share_secret(
          to_ring(probabilities, config_.frac_bits), rng_);
      for (int party = 0; party < kComputingParties; ++party) {
        ByteWriter writer;
        mpc::write_party_share(writer, views[static_cast<std::size_t>(party)]);
        group.responses[static_cast<std::size_t>(party)] = writer.take();
      }
      break;
    }
    case OwnerOp::kSoftmaxBackward: {
      const RingTensor p_ring = reconstruct_collective(group, 0);
      const RingTensor g_ring = reconstruct_collective(group, 1);
      const RealTensor grad = nn::softmax_backward_rows(
          to_real(p_ring, config_.frac_bits),
          to_real(g_ring, config_.frac_bits));
      const auto views =
          mpc::share_secret(to_ring(grad, config_.frac_bits), rng_);
      for (int party = 0; party < kComputingParties; ++party) {
        ByteWriter writer;
        mpc::write_party_share(writer, views[static_cast<std::size_t>(party)]);
        group.responses[static_cast<std::size_t>(party)] = writer.take();
      }
      break;
    }
    case OwnerOp::kReveal: {
      // Key: taken from the first present payload (all honest parties
      // send the same key).
      std::string key;
      for (const auto& payload : group.payloads) {
        if (payload.has_value()) {
          try {
            ByteReader reader(*payload);
            (void)reader.read_u8();
            key = reader.read_string();
            break;
          } catch (const Error&) {
          }
        }
      }
      revealed_[key] = reconstruct_collective(group, 0);
      return;  // no responses for reveals
    }
    default:
      return;
  }
  for (int party = 0; party < kComputingParties; ++party) {
    if (group.payloads[static_cast<std::size_t>(party)].has_value() &&
        group.responses[static_cast<std::size_t>(party)].has_value()) {
      endpoint_.send(party, "crsp/" + std::to_string(id),
                     *group.responses[static_cast<std::size_t>(party)]);
      group.responded[static_cast<std::size_t>(party)] = true;
    }
  }
}

}  // namespace trustddl::core
