#include "core/owner_service.hpp"

#include <thread>

#include "common/logging.hpp"
#include "mpc/share_serde.hpp"
#include "nn/layers.hpp"
#include "numeric/serde.hpp"

namespace trustddl::core {
namespace {

constexpr const char* kLog = "core.owner";

Shape read_shape(ByteReader& reader) {
  const std::uint64_t rank = reader.read_u64();
  if (rank > 8) {
    throw SerializationError("shape rank too large");
  }
  Shape shape(rank);
  for (auto& dim : shape) {
    dim = reader.read_u64();
  }
  return shape;
}

bool is_unary(OwnerOp op) {
  return op == OwnerOp::kMulTriple || op == OwnerOp::kMatMulTriple ||
         op == OwnerOp::kCompAux || op == OwnerOp::kTruncPair;
}

}  // namespace

ModelOwnerService::ModelOwnerService(net::Endpoint endpoint,
                                     OwnerServiceConfig config)
    : endpoint_(endpoint), config_(config), rng_(config.seed) {}

void ModelOwnerService::run() {
  using Clock = std::chrono::steady_clock;
  std::optional<Clock::time_point> grace_deadline;
  for (;;) {
    bool progress = false;
    for (int party = 0; party < kComputingParties; ++party) {
      if (stopped_[static_cast<std::size_t>(party)]) {
        continue;
      }
      Bytes payload;
      const std::uint64_t id =
          next_counter_[static_cast<std::size_t>(party)];
      if (endpoint_.try_recv(party, "req/" + std::to_string(id), payload)) {
        try {
          if (handle_request(party, payload, id)) {
            progress = true;
          }
        } catch (const Error& error) {
          TRUSTDDL_LOG_WARN(kLog)
              << "malformed request " << id << " from party " << party
              << ": " << error.what();
        }
        next_counter_[static_cast<std::size_t>(party)] += 1;
        progress = true;
      }
    }

    // Process collective groups that are complete or past deadline.
    const auto now = Clock::now();
    for (auto& [id, group] : groups_) {
      if (group.processed) {
        continue;
      }
      int members = 0;
      for (const auto& payload : group.payloads) {
        members += payload.has_value() ? 1 : 0;
      }
      const bool complete = members == kComputingParties;
      const bool expired =
          members >= 2 && now > group.created + config_.collect_timeout;
      // Do NOT short-circuit 2-member groups just because two parties
      // already stopped: a live third party's fire-and-forget payloads
      // (weight reveals) may still be in flight, and reconstructing
      // from 2 instead of 3 shares can differ by a few fixed-point
      // ulps once local truncation has decorrelated the share sets.
      // The grace window exists precisely so the straggler can finish;
      // partial groups are only drained at the deadline below.
      if (complete || expired) {
        process_group(id, group);
        progress = true;
      }
    }

    if (stop_count_ >= 2 && !grace_deadline) {
      grace_deadline = now + config_.collect_timeout;
    }
    if (stop_count_ >= kComputingParties || (grace_deadline && now > *grace_deadline)) {
      // Final drain of any processable groups, then exit.
      for (auto& [id, group] : groups_) {
        if (!group.processed) {
          int members = 0;
          for (const auto& payload : group.payloads) {
            members += payload.has_value() ? 1 : 0;
          }
          if (members >= 2) {
            process_group(id, group);
          }
        }
      }
      return;
    }
    if (!progress) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

bool ModelOwnerService::handle_request(int party, const Bytes& payload,
                                       std::uint64_t id) {
  ByteReader peek(payload);
  const auto op = static_cast<OwnerOp>(peek.read_u8());

  if (op == OwnerOp::kStop) {
    stopped_[static_cast<std::size_t>(party)] = true;
    ++stop_count_;
    return true;
  }

  if (is_unary(op)) {
    auto it = unary_cache_.find(id);
    if (it == unary_cache_.end()) {
      std::array<Bytes, kComputingParties> responses;
      ByteReader reader(payload);
      (void)reader.read_u8();
      switch (op) {
        case OwnerOp::kMulTriple: {
          const Shape shape = read_shape(reader);
          const auto views = mpc::deal_mul_triple(shape, rng_);
          for (int p = 0; p < kComputingParties; ++p) {
            ByteWriter writer;
            mpc::write_beaver_share(writer,
                                    views[static_cast<std::size_t>(p)]);
            responses[static_cast<std::size_t>(p)] = writer.take();
          }
          break;
        }
        case OwnerOp::kMatMulTriple: {
          const std::size_t m = reader.read_u64();
          const std::size_t k = reader.read_u64();
          const std::size_t n = reader.read_u64();
          const auto views = mpc::deal_matmul_triple(m, k, n, rng_);
          for (int p = 0; p < kComputingParties; ++p) {
            ByteWriter writer;
            mpc::write_beaver_share(writer,
                                    views[static_cast<std::size_t>(p)]);
            responses[static_cast<std::size_t>(p)] = writer.take();
          }
          break;
        }
        case OwnerOp::kCompAux: {
          const Shape shape = read_shape(reader);
          const auto views =
              mpc::deal_positive_aux(shape, config_.frac_bits, rng_);
          for (int p = 0; p < kComputingParties; ++p) {
            ByteWriter writer;
            mpc::write_party_share(writer,
                                   views[static_cast<std::size_t>(p)]);
            responses[static_cast<std::size_t>(p)] = writer.take();
          }
          break;
        }
        case OwnerOp::kTruncPair: {
          const Shape shape = read_shape(reader);
          const auto views =
              mpc::deal_trunc_pair(shape, config_.frac_bits, rng_);
          for (int p = 0; p < kComputingParties; ++p) {
            ByteWriter writer;
            mpc::write_trunc_pair(writer, views[static_cast<std::size_t>(p)]);
            responses[static_cast<std::size_t>(p)] = writer.take();
          }
          break;
        }
        default:
          break;
      }
      it = unary_cache_.emplace(id, std::make_pair(std::move(responses), 0))
               .first;
    }
    endpoint_.send(party, "rsp/" + std::to_string(id),
                   it->second.first[static_cast<std::size_t>(party)]);
    it->second.second |= (1 << party);
    if (it->second.second == 0b111) {
      unary_cache_.erase(it);
    }
    return true;
  }

  // Collective ops: stash the payload; a cached processed group serves
  // stragglers immediately.
  auto [it, inserted] = groups_.try_emplace(id);
  Group& group = it->second;
  if (inserted) {
    group.op = op;
    group.created = std::chrono::steady_clock::now();
  }
  group.payloads[static_cast<std::size_t>(party)] = payload;
  if (group.processed) {
    // Late arrival: serve the cached response if any.
    if (group.responses[static_cast<std::size_t>(party)].has_value() &&
        !group.responded[static_cast<std::size_t>(party)]) {
      endpoint_.send(party, "rsp/" + std::to_string(id),
                     *group.responses[static_cast<std::size_t>(party)]);
      group.responded[static_cast<std::size_t>(party)] = true;
    }
  }
  return true;
}

RingTensor ModelOwnerService::reconstruct_collective(
    const Group& group, std::size_t payload_offset_values) {
  std::array<std::optional<mpc::PartyShare>, kComputingParties> triples;
  for (int party = 0; party < kComputingParties; ++party) {
    const auto& payload = group.payloads[static_cast<std::size_t>(party)];
    if (!payload.has_value()) {
      continue;
    }
    try {
      ByteReader reader(*payload);
      (void)reader.read_u8();
      if (group.op == OwnerOp::kReveal) {
        (void)reader.read_string();
      }
      mpc::PartyShare share = mpc::read_party_share(reader);
      for (std::size_t skip = 0; skip < payload_offset_values; ++skip) {
        share = mpc::read_party_share(reader);
      }
      triples[static_cast<std::size_t>(party)] = std::move(share);
    } catch (const Error&) {
      // Garbage from a Byzantine party: treat as absent.
    }
  }
  mpc::ReconstructReport report;
  RingTensor value =
      mpc::robust_reconstruct(triples, config_.dist_tolerance, &report);
  if (report.anomaly) {
    ++anomalies_;
  }
  return value;
}

void ModelOwnerService::process_group(std::uint64_t id, Group& group) {
  group.processed = true;
  switch (group.op) {
    case OwnerOp::kSoftmaxForward: {
      const RingTensor logits = reconstruct_collective(group, 0);
      const RealTensor probabilities =
          nn::softmax_rows(to_real(logits, config_.frac_bits));
      const auto views = mpc::share_secret(
          to_ring(probabilities, config_.frac_bits), rng_);
      for (int party = 0; party < kComputingParties; ++party) {
        ByteWriter writer;
        mpc::write_party_share(writer, views[static_cast<std::size_t>(party)]);
        group.responses[static_cast<std::size_t>(party)] = writer.take();
      }
      break;
    }
    case OwnerOp::kSoftmaxBackward: {
      const RingTensor p_ring = reconstruct_collective(group, 0);
      const RingTensor g_ring = reconstruct_collective(group, 1);
      const RealTensor grad = nn::softmax_backward_rows(
          to_real(p_ring, config_.frac_bits),
          to_real(g_ring, config_.frac_bits));
      const auto views =
          mpc::share_secret(to_ring(grad, config_.frac_bits), rng_);
      for (int party = 0; party < kComputingParties; ++party) {
        ByteWriter writer;
        mpc::write_party_share(writer, views[static_cast<std::size_t>(party)]);
        group.responses[static_cast<std::size_t>(party)] = writer.take();
      }
      break;
    }
    case OwnerOp::kReveal: {
      // Key: taken from the first present payload (all honest parties
      // send the same key).
      std::string key;
      for (const auto& payload : group.payloads) {
        if (payload.has_value()) {
          try {
            ByteReader reader(*payload);
            (void)reader.read_u8();
            key = reader.read_string();
            break;
          } catch (const Error&) {
          }
        }
      }
      revealed_[key] = reconstruct_collective(group, 0);
      return;  // no responses for reveals
    }
    default:
      return;
  }
  for (int party = 0; party < kComputingParties; ++party) {
    if (group.payloads[static_cast<std::size_t>(party)].has_value() &&
        group.responses[static_cast<std::size_t>(party)].has_value()) {
      endpoint_.send(party, "rsp/" + std::to_string(id),
                     *group.responses[static_cast<std::size_t>(party)]);
      group.responded[static_cast<std::size_t>(party)] = true;
    }
  }
}

}  // namespace trustddl::core
