// Actor layout on the simulated network (paper Fig. 1): three
// computing parties in the proxy layer plus the data owner and the
// model owner.
#pragma once

#include "net/message.hpp"

namespace trustddl::core {

inline constexpr int kComputingParties = 3;
inline constexpr net::PartyId kDataOwner = 3;
inline constexpr net::PartyId kModelOwner = 4;
inline constexpr int kNumActors = 5;

}  // namespace trustddl::core
