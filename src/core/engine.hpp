// TrustDDL engine: orchestrates the five actors (three computing
// parties, data owner, model owner) over the metered in-process
// network for secure training and secure inference.
//
// The engine owns a plaintext "reference model" in the model-owner
// role.  train() shares its parameters to the proxy layer, drives the
// secure SGD loop, and writes the robustly reconstructed weights back;
// infer() runs private inference and reconstructs predictions at the
// data owner.  Every call returns a CostReport with wall time, bytes
// and messages (split party<->party vs owner<->party) plus the
// Byzantine-detection counters — the raw material for Table II.
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "core/owner_service.hpp"
#include "core/secure_model.hpp"
#include "data/synthetic_mnist.hpp"
#include "mpc/adversary.hpp"
#include "nn/model_zoo.hpp"
#include "numeric/kernels.hpp"

namespace trustddl::core {

struct EngineConfig {
  mpc::SecurityMode mode = mpc::SecurityMode::kMalicious;
  int frac_bits = fx::kDefaultFracBits;
  /// Fixed-point rescale strategy.  Unset resolves to kLocal, matching
  /// the paper's implementation (its "approximate equality" tolerance
  /// exists precisely because share-local truncation lets different
  /// share sets drift by +-1 ulp).  IMPORTANT: under an ACTIVE
  /// adversary that attacks selectively (Case 2 style), local
  /// truncation lets honest parties adopt openings differing by 1 ulp,
  /// which cascades into divergent states; set kMaskedOpen for
  /// adversarial deployments — it keeps all six reconstructions
  /// bit-identical at one extra opening per product (quantified in
  /// bench_ablation_batch).  See DESIGN.md §4.
  std::optional<TruncationMode> trunc_mode;

  TruncationMode resolved_trunc_mode() const {
    return trunc_mode.value_or(TruncationMode::kLocal);
  }
  /// Decision-rule tolerance, propagated into every party context and
  /// the owner service.  Must stay in sync with the
  /// mpc::PartyContext::dist_tolerance default — EngineConfigTest
  /// asserts the two agree so a party context built outside the engine
  /// behaves the same.
  std::uint64_t dist_tolerance = 64;
  bool share_authentication = true;
  /// Optimistic openings in malicious mode (the paper's future-work
  /// communication optimization; see mpc::PartyContext::optimistic).
  bool optimistic_open = false;
  /// Deferred-opening round scheduling (mpc::OpenBatch): independent
  /// openings within a layer/step share commitment rounds.  Off
  /// reproduces the eager one-round-per-protocol-call structure with
  /// bit-identical results; only the round-trip count changes.
  bool batch_openings = true;
  /// Sleep link_latency per message to emulate a LAN, making round
  /// trips dominate wall time as they would in deployment.
  bool emulate_latency = false;
  std::chrono::microseconds link_latency{50};
  std::chrono::milliseconds recv_timeout{2000};
  std::chrono::milliseconds collect_timeout{500};
  std::uint64_t seed = 1;
  /// Index of a computing party to run with protocol-level Byzantine
  /// behaviour (-1 = all honest).
  int byzantine_party = -1;
  mpc::ByzantineConfig byzantine{};
  /// Compute-kernel settings (thread count, matmul block sizes) for
  /// the whole run: copied into every party context and installed as
  /// the process-global config at the start of train()/infer().
  /// Defaults to the environment (TRUSTDDL_THREADS etc.); threads = 1
  /// reproduces the serial kernels exactly, and ring results are
  /// bit-identical at any thread count (see numeric/kernels.hpp).
  ::trustddl::kernels::KernelConfig kernels =
      ::trustddl::kernels::global_config();
  /// Write the observability export (schema trustddl.metrics.v1; see
  /// core/metrics_export.hpp) here after each train()/infer() call.
  /// Setting this enables metrics collection for the run and resets
  /// the registry + detection event log at the start of the call.
  std::string metrics_out;
  /// Write a protocol-phase trace (one JSON object per line) here;
  /// opened at the start of each train()/infer() call, closed at the
  /// end.  Tracing also captures detection events.
  std::string trace_out;
  /// Offline/online split (DESIGN.md §10).  When on, each computing
  /// party prefetches preprocessing material into a shape-keyed
  /// TripleStore ahead of the online phase (a demand profiler sizes
  /// the stores from the model architecture) and a background producer
  /// keeps them topped up; the online hot path then pops prefetched
  /// entries instead of blocking on the owner.  Off reproduces the
  /// synchronous request-per-entry path with bit-identical results —
  /// both modes consume the same derived-seed material streams in the
  /// same order.
  bool triple_prefetch = false;
  /// Producer refill trigger: a store is refilled when its depth falls
  /// below this fraction of its per-shape target.
  double triple_low_water = 0.5;
  /// Entries fetched per refill round trip (per shape class).
  std::size_t triple_refill_batch = 32;
  /// Cap on any one shape class's store target (bounds memory for
  /// long jobs; the producer keeps refilling as entries are consumed).
  std::size_t triple_max_depth = 32;
  /// Persist/restore store contents under this directory (empty = no
  /// persistence).  Files are per party and per mode (train/infer) and
  /// carry a provenance tag derived from the dealing seed.
  std::string triple_store_dir;
};

struct CostReport {
  double wall_seconds = 0.0;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t proxy_bytes = 0;  ///< among computing parties
  std::uint64_t owner_bytes = 0;  ///< to/from data & model owners
  std::size_t commitment_violations = 0;
  std::size_t distance_anomalies = 0;
  std::size_t share_auth_failures = 0;
  std::size_t recovered_opens = 0;
  /// Robust opening ROUNDS and individual values opened, as counted by
  /// computing party 0 (the counters are identical at every honest
  /// party — the protocol is SPMD).  values_opened / opening_rounds is
  /// the batching factor achieved by the deferred-opening scheduler.
  std::uint64_t opening_rounds = 0;
  std::uint64_t values_opened = 0;

  double total_megabytes() const {
    return static_cast<double>(total_bytes) / (1024.0 * 1024.0);
  }
};

struct TrainOptions {
  std::size_t epochs = 1;
  std::size_t batch_size = 10;
  double learning_rate = 0.1;
  /// Reveal + evaluate weights after every epoch (Fig. 2 series);
  /// otherwise only after the last epoch.
  bool evaluate_each_epoch = true;
  /// Reveal weights to the model owner at all (off to measure pure
  /// per-step protocol cost for Table II).
  bool reveal_weights = true;
  std::uint64_t shuffle_seed = 99;
};

struct TrainResult {
  std::vector<double> epoch_test_accuracy;
  CostReport cost;
};

struct InferResult {
  std::vector<std::size_t> labels;
  CostReport cost;
};

/// Build one computing party's protocol context from the engine
/// configuration.  Factored out of the training/inference actor bodies
/// so tests can assert every EngineConfig knob lands in the context
/// (EngineConfigTest) — a silent default mismatch here once shipped a
/// dist_tolerance of 8 in hand-rolled contexts vs 64 in the engine.
/// `adversary` may be nullptr; it is attached only when `party` equals
/// config.byzantine_party.
mpc::PartyContext make_party_context(const EngineConfig& config, int party,
                                     net::Endpoint endpoint,
                                     mpc::AdversaryHooks* adversary = nullptr);

/// Build the layer-execution context over an already-built party
/// context and owner link; propagates trunc_mode and batch_openings.
SecureExecContext make_exec_context(const EngineConfig& config,
                                    mpc::PartyContext& pctx, OwnerLink& link);

class TrustDdlEngine {
 public:
  /// Engine over an internally-owned in-memory Network (one fresh
  /// network per train()/infer() call).
  TrustDdlEngine(nn::ModelSpec spec, EngineConfig config);

  /// Engine over an externally-owned transport — e.g. a net::TcpFabric
  /// running every actor over real loopback sockets.  The transport
  /// must serve at least kNumActors endpoints and outlive the engine;
  /// its traffic counters are reset at the start of each call.  The
  /// EngineConfig latency/timeout knobs that configure the internal
  /// network (emulate_latency, link_latency, recv_timeout) are the
  /// transport owner's responsibility in this mode.
  TrustDdlEngine(nn::ModelSpec spec, EngineConfig config,
                 net::Transport& transport);

  /// Secure training over `train`; test accuracy evaluated on the
  /// reconstructed weights after each epoch.
  TrainResult train(const data::Dataset& train_data,
                    const data::Dataset& test_data,
                    const TrainOptions& options);

  /// Secure inference: data owner shares inputs, parties evaluate the
  /// current model, the data owner reconstructs the predictions.
  InferResult infer(const data::Dataset& inputs, std::size_t batch_size = 1);

  /// The model-owner's current plaintext model (initial weights, or
  /// the reconstructed weights after train()).
  nn::Sequential& reference_model() { return model_; }
  const nn::ModelSpec& spec() const { return spec_; }
  const EngineConfig& config() const { return config_; }

 private:
  /// The transport the next run's actors communicate over: the
  /// external one (counters reset) or a freshly built Network.
  net::Transport& prepare_transport();

  CostReport collect_cost(const net::Transport& transport,
                          double wall_seconds,
                          const std::array<mpc::DetectionLog, 3>& logs) const;

  nn::ModelSpec spec_;
  EngineConfig config_;
  nn::Sequential model_;
  std::unique_ptr<net::Network> network_;
  net::Transport* external_transport_ = nullptr;
};

}  // namespace trustddl::core
