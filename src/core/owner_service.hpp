// Model-owner service loop.
//
// Serves the computing parties' requests over the metered network.
// Each party speaks on two independent streams (see owner_link.hpp):
//
//  * unary stream ("req/<id>"): batched material fills (kBatchFill).
//    Material is dealt *statelessly* — entry (key, index) is generated
//    from a seed derived from the service seed, so the same range
//    request yields the same shares no matter which party asks first,
//    how requests interleave with prefetch traffic, or whether the
//    service restarted in between.  A small response cache only saves
//    recomputation when the three parties request the same range
//    back-to-back; evicting it is always safe.
//  * collective stream ("col/<id>"): Softmax forward/backward,
//    reveals, stop.  The owner collects the three parties' shares for
//    one collective counter, robustly reconstructs (a Byzantine party
//    may send junk or stay silent), computes, re-shares, and responds
//    on "crsp/<id>".  Responses are cached so a slow-but-honest party
//    arriving after the group deadline is still served.
//
// The loop exits once at least two parties sent kStop (the fault model
// guarantees two honest parties) and pending groups are drained.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/owner_link.hpp"
#include "core/roles.hpp"
#include "mpc/robust_reconstruct.hpp"
#include "net/network.hpp"

namespace trustddl::core {

struct OwnerServiceConfig {
  int frac_bits = 20;
  std::uint64_t dist_tolerance = 32;
  /// How long a collective op waits for stragglers before processing
  /// with the members present.
  std::chrono::milliseconds collect_timeout{1000};
  /// Master seed of the derived-seed material streams AND of the
  /// owner's re-sharing randomness.  Parties comparing runs must agree
  /// on it (the engine derives it from EngineConfig::seed).
  std::uint64_t seed = 0xdea1e5;
  /// Upper bound on entries per kBatchFill request (backpressure
  /// against a buggy or hostile party asking for gigabytes).
  std::uint32_t max_batch_entries = 8192;
};

class ModelOwnerService {
 public:
  ModelOwnerService(net::Endpoint endpoint, OwnerServiceConfig config);

  /// Serve until shutdown (see header comment).  Runs on the model
  /// owner's thread.
  void run();

  /// Makes run() return at its next loop iteration without waiting
  /// for party stops — used when the owner process itself is going
  /// down (scheduler chaos crash in pod-failover tests).  Safe to
  /// call from any thread.
  void request_stop() {
    abort_requested_.store(true, std::memory_order_relaxed);
  }

  /// Values reconstructed from kReveal requests, by key.
  const std::map<std::string, RingTensor>& revealed() const {
    return revealed_;
  }

  /// Anomalies observed while reconstructing collective inputs.
  std::size_t reconstruction_anomalies() const { return anomalies_; }

  /// kBatchFill requests served (all parties, all streams).
  std::uint64_t fills_served() const { return fills_served_; }

 private:
  struct Group {
    OwnerOp op = OwnerOp::kSoftmaxForward;
    std::array<std::optional<Bytes>, kComputingParties> payloads;
    std::chrono::steady_clock::time_point created;
    bool processed = false;
    std::array<std::optional<Bytes>, kComputingParties> responses;
    std::array<bool, kComputingParties> responded{};
  };

  /// Unary-stream request (kBatchFill).
  void handle_unary(int party, const Bytes& payload, std::uint64_t id);
  /// Collective-stream request (softmax/reveal/stop).
  void handle_collective(int party, const Bytes& payload, std::uint64_t id);
  void process_group(std::uint64_t id, Group& group);

  RingTensor reconstruct_collective(const Group& group,
                                    std::size_t payload_offset_values);

  net::Endpoint endpoint_;
  OwnerServiceConfig config_;
  Rng rng_;

  std::array<std::uint64_t, kComputingParties> next_unary_{};
  std::array<std::uint64_t, kComputingParties> next_collective_{};
  int stop_count_ = 0;
  std::array<bool, kComputingParties> stopped_{};
  std::atomic<bool> abort_requested_{false};

  /// Fill-response cache keyed by the raw request payload: the three
  /// parties issue byte-identical requests for a range, so the second
  /// and third hit the cache instead of re-dealing.  Bounded FIFO;
  /// dealing is stateless, so eviction never changes served material.
  static constexpr std::size_t kMaxFillCacheEntries = 64;
  struct FillCacheEntry {
    std::array<Bytes, kComputingParties> responses;
    int served = 0;
  };
  struct BytesHash {
    std::size_t operator()(const Bytes& bytes) const;
  };
  std::unordered_map<Bytes, FillCacheEntry, BytesHash> fill_cache_;
  std::deque<Bytes> fill_cache_fifo_;

  std::unordered_map<std::uint64_t, Group> groups_;
  std::map<std::string, RingTensor> revealed_;
  std::size_t anomalies_ = 0;
  std::uint64_t fills_served_ = 0;
};

}  // namespace trustddl::core
