// Model-owner service loop.
//
// Serves the computing parties' requests over the metered network:
//  * unary preprocessing requests (Beaver triples, comparison
//    auxiliaries, truncation pairs) — answered immediately; the same
//    request counter yields the same underlying material for every
//    party, so share views stay consistent;
//  * collective requests (Softmax forward/backward, reveals) — the
//    owner collects the three parties' shares for one counter,
//    robustly reconstructs (a Byzantine party may send junk or stay
//    silent), computes, re-shares, and responds.  Responses are cached
//    so a slow-but-honest party arriving after the group deadline is
//    still served.
//
// The loop exits once at least two parties sent kStop (the fault model
// guarantees two honest parties) and pending groups are drained.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/owner_link.hpp"
#include "core/roles.hpp"
#include "mpc/robust_reconstruct.hpp"
#include "net/network.hpp"

namespace trustddl::core {

struct OwnerServiceConfig {
  int frac_bits = 20;
  std::uint64_t dist_tolerance = 32;
  /// How long a collective op waits for stragglers before processing
  /// with the members present.
  std::chrono::milliseconds collect_timeout{1000};
  std::uint64_t seed = 0xdea1e5;
};

class ModelOwnerService {
 public:
  ModelOwnerService(net::Endpoint endpoint, OwnerServiceConfig config);

  /// Serve until shutdown (see header comment).  Runs on the model
  /// owner's thread.
  void run();

  /// Values reconstructed from kReveal requests, by key.
  const std::map<std::string, RingTensor>& revealed() const {
    return revealed_;
  }

  /// Anomalies observed while reconstructing collective inputs.
  std::size_t reconstruction_anomalies() const { return anomalies_; }

 private:
  struct Group {
    OwnerOp op = OwnerOp::kSoftmaxForward;
    std::array<std::optional<Bytes>, kComputingParties> payloads;
    std::chrono::steady_clock::time_point created;
    bool processed = false;
    std::array<std::optional<Bytes>, kComputingParties> responses;
    std::array<bool, kComputingParties> responded{};
  };

  bool handle_request(int party, const Bytes& payload, std::uint64_t id);
  void process_group(std::uint64_t id, Group& group);
  Bytes unary_response(std::uint64_t id, const Bytes& payload);

  RingTensor reconstruct_collective(const Group& group,
                                    std::size_t payload_offset_values);

  net::Endpoint endpoint_;
  OwnerServiceConfig config_;
  Rng rng_;

  std::array<std::uint64_t, kComputingParties> next_counter_{};
  int stop_count_ = 0;
  std::array<bool, kComputingParties> stopped_{};

  // Unary material cache: counter -> per-party serialized responses +
  // served mask.
  std::unordered_map<std::uint64_t,
                     std::pair<std::array<Bytes, kComputingParties>, int>>
      unary_cache_;
  std::unordered_map<std::uint64_t, Group> groups_;
  std::map<std::string, RingTensor> revealed_;
  std::size_t anomalies_ = 0;
};

}  // namespace trustddl::core
