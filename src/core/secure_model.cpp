#include "core/secure_model.hpp"

#include "numeric/conv.hpp"
#include "numeric/fixed_point.hpp"
#include "obs/trace.hpp"

namespace trustddl::core {

mpc::PartyShare SecureExecContext::rescale(const mpc::PartyShare& product) {
  if (trunc_mode == TruncationMode::kMaskedOpen) {
    const mpc::TruncPairShare pair = triples->trunc_pair(product.shape());
    return mpc::truncate_product_masked(*mpc, product, pair);
  }
  return mpc::truncate_product_local(product, mpc->frac_bits);
}

mpc::DeferredShare SecureExecContext::rescale_prepare(
    mpc::OpenBatch& batch, const mpc::PartyShare& product) {
  if (trunc_mode == TruncationMode::kMaskedOpen) {
    const mpc::TruncPairShare pair = triples->trunc_pair(product.shape());
    mpc::DeferredShare out =
        mpc::truncate_product_masked_prepare(batch, product, pair);
    if (!batch_openings) {
      batch.flush_all();
    }
    return out;
  }
  mpc::DeferredShare out;
  out.set(mpc::truncate_product_local(product, mpc->frac_bits));
  return out;
}

mpc::DeferredShare SecureExecContext::matmul_rescaled_prepare(
    mpc::OpenBatch& batch, const mpc::PartyShare& x, const mpc::PartyShare& y,
    const mpc::BeaverTripleShare& triple) {
  mpc::DeferredShare out;
  if (trunc_mode == TruncationMode::kMaskedOpen) {
    const mpc::TruncPairShare pair =
        triples->trunc_pair(Shape{x.shape()[0], y.shape()[1]});
    out = mpc::sec_matmul_bt_rescaled_prepare(
        batch, x, y, triple, TruncationMode::kMaskedOpen, &pair);
  } else {
    out = mpc::sec_matmul_bt_rescaled_prepare(batch, x, y, triple,
                                              TruncationMode::kLocal, nullptr);
  }
  if (!batch_openings) {
    batch.flush_all();
  }
  return out;
}

void add_row_broadcast(mpc::PartyShare& matrix, const mpc::PartyShare& bias) {
  TRUSTDDL_REQUIRE(bias.shape().size() == 2 && bias.shape()[0] == 1 &&
                       matrix.shape().size() == 2 &&
                       matrix.shape()[1] == bias.shape()[1],
                   "add_row_broadcast: shape mismatch");
  const auto add = [&](RingTensor& component, const RingTensor& row) {
    for (std::size_t r = 0; r < component.rows(); ++r) {
      for (std::size_t c = 0; c < component.cols(); ++c) {
        component.at(r, c) += row.at(0, c);
      }
    }
  };
  add(matrix.primary, bias.primary);
  add(matrix.duplicate, bias.duplicate);
  add(matrix.second, bias.second);
}

void add_col_broadcast(mpc::PartyShare& matrix, const mpc::PartyShare& bias) {
  TRUSTDDL_REQUIRE(bias.shape().size() == 1 && matrix.shape().size() == 2 &&
                       matrix.shape()[0] == bias.shape()[0],
                   "add_col_broadcast: shape mismatch");
  const auto add = [&](RingTensor& component, const RingTensor& column) {
    for (std::size_t r = 0; r < component.rows(); ++r) {
      for (std::size_t c = 0; c < component.cols(); ++c) {
        component.at(r, c) += column[r];
      }
    }
  };
  add(matrix.primary, bias.primary);
  add(matrix.duplicate, bias.duplicate);
  add(matrix.second, bias.second);
}

mpc::PartyShare SecureDense::forward(SecureExecContext& ctx,
                                     const mpc::PartyShare& input) {
  obs::ScopedSpan span("layer.dense.forward", ctx.mpc->party, ctx.mpc->step);
  cached_input_ = input;
  const std::size_t batch = input.shape()[0];
  const std::size_t in_features = input.shape()[1];
  const std::size_t out_features = weights_.value.shape()[1];
  const mpc::BeaverTripleShare triple =
      ctx.triples->matmul_triple(batch, in_features, out_features);
  mpc::PartyShare output = ctx.rescale(
      mpc::sec_matmul_bt(*ctx.mpc, input, weights_.value, triple));
  add_row_broadcast(output, bias_.value);
  return output;
}

mpc::PartyShare SecureDense::backward(SecureExecContext& ctx,
                                      const mpc::PartyShare& grad_output) {
  obs::ScopedSpan span("layer.dense.backward", ctx.mpc->party, ctx.mpc->step);
  const std::size_t batch = cached_input_.shape()[0];
  const std::size_t in_features = cached_input_.shape()[1];
  const std::size_t out_features = grad_output.shape()[1];

  // The weight and input gradients are data-independent, so their
  // Beaver-mask openings (and, in masked-open mode, their truncation
  // openings) ride the same rounds.
  mpc::OpenBatch open_batch(*ctx.mpc);

  const mpc::PartyShare input_t = mpc::transpose_share(cached_input_);
  const mpc::BeaverTripleShare w_triple =
      ctx.triples->matmul_triple(in_features, batch, out_features);
  mpc::DeferredShare w_grad =
      ctx.matmul_rescaled_prepare(open_batch, input_t, grad_output, w_triple);

  bias_.grad += mpc::transform_share(grad_output, [](const RingTensor& g) {
    return sum_rows(g);
  });

  const mpc::PartyShare weights_t = mpc::transpose_share(weights_.value);
  const mpc::BeaverTripleShare x_triple =
      ctx.triples->matmul_triple(batch, out_features, in_features);
  mpc::DeferredShare x_grad = ctx.matmul_rescaled_prepare(
      open_batch, grad_output, weights_t, x_triple);

  open_batch.flush_all();
  weights_.grad += w_grad.take();
  return x_grad.take();
}

mpc::PartyShare SecureConv::forward(SecureExecContext& ctx,
                                    const mpc::PartyShare& input) {
  obs::ScopedSpan span("layer.conv.forward", ctx.mpc->party, ctx.mpc->step);
  const std::size_t batch = input.shape()[0];
  cached_batch_ = batch;
  const std::size_t pixels = spec_.col_cols();
  cached_columns_ = mpc::transform_share(input, [&](const RingTensor& x) {
    return batch_im2col(x, spec_);
  });
  const mpc::BeaverTripleShare triple = ctx.triples->matmul_triple(
      spec_.out_channels, spec_.col_rows(), batch * pixels);
  mpc::PartyShare maps = ctx.rescale(mpc::sec_matmul_bt(
      *ctx.mpc, weights_.value, cached_columns_, triple));
  add_col_broadcast(maps, bias_.value);
  return mpc::transform_share(maps, [&](const RingTensor& m) {
    return maps_to_rows(m, batch, pixels);
  });
}

mpc::PartyShare SecureConv::backward(SecureExecContext& ctx,
                                     const mpc::PartyShare& grad_output) {
  obs::ScopedSpan span("layer.conv.backward", ctx.mpc->party, ctx.mpc->step);
  const std::size_t batch = cached_batch_;
  const std::size_t pixels = spec_.col_cols();
  const mpc::PartyShare grad_maps =
      mpc::transform_share(grad_output, [&](const RingTensor& g) {
        return rows_to_maps(g, spec_.out_channels, pixels);
      });

  // As in SecureDense::backward, the two gradient matmuls are
  // data-independent and share opening rounds.
  mpc::OpenBatch open_batch(*ctx.mpc);

  const mpc::PartyShare columns_t = mpc::transpose_share(cached_columns_);
  const mpc::BeaverTripleShare w_triple = ctx.triples->matmul_triple(
      spec_.out_channels, batch * pixels, spec_.col_rows());
  mpc::DeferredShare w_grad =
      ctx.matmul_rescaled_prepare(open_batch, grad_maps, columns_t, w_triple);

  bias_.grad += mpc::transform_share(grad_maps, [](const RingTensor& g) {
    return sum_cols(g);
  });

  const mpc::PartyShare weights_t = mpc::transpose_share(weights_.value);
  const mpc::BeaverTripleShare x_triple = ctx.triples->matmul_triple(
      spec_.col_rows(), spec_.out_channels, batch * pixels);
  mpc::DeferredShare x_grad =
      ctx.matmul_rescaled_prepare(open_batch, weights_t, grad_maps, x_triple);

  open_batch.flush_all();
  weights_.grad += w_grad.take();
  const mpc::PartyShare grad_columns = x_grad.take();
  return mpc::transform_share(grad_columns, [&](const RingTensor& cols) {
    return batch_col2im(cols, spec_, batch);
  });
}

mpc::PartyShare SecureRelu::forward(SecureExecContext& ctx,
                                    const mpc::PartyShare& input) {
  obs::ScopedSpan span("layer.relu.forward", ctx.mpc->party, ctx.mpc->step);
  const Shape& shape = input.shape();
  const mpc::PartyShare t_aux = ctx.triples->comp_aux(shape);
  const mpc::BeaverTripleShare triple = ctx.triples->mul_triple(shape);
  const RingTensor signs = mpc::sec_sign_bt(*ctx.mpc, input, t_aux, triple);
  cached_mask_ = mpc::positive_mask(signs);
  mpc::PartyShare output = input;
  output.mul_public(cached_mask_);
  return output;
}

mpc::PartyShare SecureRelu::backward(SecureExecContext& /*ctx*/,
                                     const mpc::PartyShare& grad_output) {
  obs::ScopedSpan span("layer.relu.backward");
  TRUSTDDL_REQUIRE(grad_output.shape() == cached_mask_.shape(),
                   "secure relu: backward before forward");
  mpc::PartyShare grad = grad_output;
  grad.mul_public(cached_mask_);
  return grad;
}

mpc::PartyShare SecureMaxPool::forward(SecureExecContext& ctx,
                                       const mpc::PartyShare& input) {
  obs::ScopedSpan span("layer.maxpool.forward", ctx.mpc->party, ctx.mpc->step);
  TRUSTDDL_REQUIRE(input.shape().size() == 2 &&
                       input.shape()[1] == spec_.in_features(),
                   "secure maxpool: input shape mismatch");
  const std::size_t batch = input.shape()[0];
  const std::size_t pools = spec_.out_features();
  cached_batch_ = batch;

  // Flat input index of window slot k for each pool (batch-invariant).
  const std::size_t window_size = spec_.window * spec_.window;
  std::vector<std::vector<std::size_t>> slot_index(
      window_size, std::vector<std::size_t>(pools));
  {
    std::size_t pool = 0;
    for (std::size_t channel = 0; channel < spec_.channels; ++channel) {
      for (std::size_t oy = 0; oy < spec_.out_height(); ++oy) {
        for (std::size_t ox = 0; ox < spec_.out_width(); ++ox) {
          std::size_t slot = 0;
          for (std::size_t wy = 0; wy < spec_.window; ++wy) {
            for (std::size_t wx = 0; wx < spec_.window; ++wx) {
              slot_index[slot][pool] =
                  spec_.input_index(channel, oy, ox, wy, wx);
              ++slot;
            }
          }
          ++pool;
        }
      }
    }
  }

  // Gather each window slot into a [batch, pools] candidate share.
  struct Candidate {
    mpc::PartyShare share;
    /// Per (sample, pool): flat input index this candidate came from.
    std::vector<std::size_t> source;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(window_size);
  for (std::size_t slot = 0; slot < window_size; ++slot) {
    Candidate candidate;
    candidate.share =
        mpc::transform_share(input, [&](const RingTensor& component) {
          RingTensor gathered(Shape{batch, pools});
          for (std::size_t sample = 0; sample < batch; ++sample) {
            for (std::size_t pool = 0; pool < pools; ++pool) {
              gathered.at(sample, pool) =
                  component.at(sample, slot_index[slot][pool]);
            }
          }
          return gathered;
        });
    candidate.source.resize(batch * pools);
    for (std::size_t sample = 0; sample < batch; ++sample) {
      for (std::size_t pool = 0; pool < pools; ++pool) {
        candidate.source[sample * pools + pool] = slot_index[slot][pool];
      }
    }
    candidates.push_back(std::move(candidate));
  }

  // Tournament: one batched SecComp per round halves the candidates.
  while (candidates.size() > 1) {
    std::vector<Candidate> next;
    for (std::size_t i = 0; i + 1 < candidates.size(); i += 2) {
      Candidate& lhs = candidates[i];
      Candidate& rhs = candidates[i + 1];
      const Shape shape = lhs.share.shape();
      const RingTensor signs = mpc::sec_comp_bt(
          *ctx.mpc, lhs.share, rhs.share, ctx.triples->comp_aux(shape),
          ctx.triples->mul_triple(shape));
      const RingTensor mask = mpc::positive_mask(signs);  // 1 where lhs > rhs
      // winner = mask (.) (lhs - rhs) + rhs, computed locally.
      Candidate winner;
      mpc::PartyShare diff = lhs.share - rhs.share;
      diff.mul_public(mask);
      winner.share = diff + rhs.share;
      winner.source.resize(lhs.source.size());
      for (std::size_t e = 0; e < winner.source.size(); ++e) {
        winner.source[e] = mask[e] != 0 ? lhs.source[e] : rhs.source[e];
      }
      next.push_back(std::move(winner));
    }
    if (candidates.size() % 2 == 1) {
      next.push_back(std::move(candidates.back()));
    }
    candidates = std::move(next);
  }

  cached_argmax_.assign(batch, std::vector<std::size_t>(pools));
  for (std::size_t sample = 0; sample < batch; ++sample) {
    for (std::size_t pool = 0; pool < pools; ++pool) {
      cached_argmax_[sample][pool] =
          candidates[0].source[sample * pools + pool];
    }
  }
  return candidates[0].share;
}

mpc::PartyShare SecureMaxPool::backward(SecureExecContext& /*ctx*/,
                                        const mpc::PartyShare& grad_output) {
  obs::ScopedSpan span("layer.maxpool.backward");
  TRUSTDDL_REQUIRE(grad_output.shape().size() == 2 &&
                       grad_output.shape()[0] == cached_batch_ &&
                       grad_output.shape()[1] == spec_.out_features(),
                   "secure maxpool: backward before forward");
  const std::size_t pools = spec_.out_features();
  return mpc::transform_share(grad_output, [&](const RingTensor& component) {
    RingTensor scattered(Shape{cached_batch_, spec_.in_features()});
    for (std::size_t sample = 0; sample < cached_batch_; ++sample) {
      for (std::size_t pool = 0; pool < pools; ++pool) {
        scattered.at(sample, cached_argmax_[sample][pool]) +=
            component.at(sample, pool);
      }
    }
    return scattered;
  });
}

mpc::PartyShare SecureSoftmax::forward(SecureExecContext& ctx,
                                       const mpc::PartyShare& input) {
  obs::ScopedSpan span("layer.softmax.forward", ctx.mpc->party, ctx.mpc->step);
  cached_probabilities_ = ctx.owner->softmax_forward(input);
  return cached_probabilities_;
}

mpc::PartyShare SecureSoftmax::backward(SecureExecContext& ctx,
                                        const mpc::PartyShare& grad_output) {
  obs::ScopedSpan span("layer.softmax.backward", ctx.mpc->party,
                       ctx.mpc->step);
  return ctx.owner->softmax_backward(cached_probabilities_, grad_output);
}

SecureModel::SecureModel(const nn::ModelSpec& spec,
                         std::vector<mpc::PartyShare> parameter_shares) {
  nn::validate_spec(spec);
  std::size_t next = 0;
  const auto take = [&]() -> mpc::PartyShare {
    TRUSTDDL_REQUIRE(next < parameter_shares.size(),
                     "SecureModel: not enough parameter shares");
    return std::move(parameter_shares[next++]);
  };
  for (const nn::LayerSpec& layer : spec.layers) {
    switch (layer.kind) {
      case nn::LayerSpec::Kind::kConv: {
        mpc::PartyShare weights = take();
        mpc::PartyShare bias = take();
        layers_.push_back(std::make_unique<SecureConv>(
            layer.conv, std::move(weights), std::move(bias)));
        break;
      }
      case nn::LayerSpec::Kind::kDense: {
        mpc::PartyShare weights = take();
        mpc::PartyShare bias = take();
        layers_.push_back(std::make_unique<SecureDense>(std::move(weights),
                                                        std::move(bias)));
        break;
      }
      case nn::LayerSpec::Kind::kRelu:
        layers_.push_back(std::make_unique<SecureRelu>());
        break;
      case nn::LayerSpec::Kind::kSoftmax:
        layers_.push_back(std::make_unique<SecureSoftmax>());
        break;
      case nn::LayerSpec::Kind::kMaxPool:
        layers_.push_back(std::make_unique<SecureMaxPool>(layer.pool));
        break;
    }
  }
  TRUSTDDL_REQUIRE(next == parameter_shares.size(),
                   "SecureModel: unused parameter shares");
}

mpc::PartyShare SecureModel::forward(SecureExecContext& ctx,
                                     const mpc::PartyShare& input) {
  obs::ScopedSpan span("model.forward", ctx.mpc->party, ctx.mpc->step);
  mpc::PartyShare activation = input;
  for (auto& layer : layers_) {
    activation = layer->forward(ctx, activation);
  }
  return activation;
}

void SecureModel::backward_from_logit_grad(
    SecureExecContext& ctx, const mpc::PartyShare& grad_logits) {
  obs::ScopedSpan span("model.backward", ctx.mpc->party, ctx.mpc->step);
  mpc::PartyShare grad = grad_logits;
  // Skip the trailing softmax layer: the fused gradient is already
  // w.r.t. the logits.
  for (std::size_t i = layers_.size() - 1; i-- > 0;) {
    grad = layers_[i]->backward(ctx, grad);
  }
}

void SecureModel::sgd_step(SecureExecContext& ctx, double learning_rate,
                           int frac_bits) {
  obs::ScopedSpan span("model.sgd_step", ctx.mpc->party, ctx.mpc->step);
  const std::uint64_t lr_encoded = fx::encode(learning_rate, frac_bits);
  (void)frac_bits;
  // grad * lr is a share-times-public product at scale 2f.  The rescale
  // MUST follow the configured truncation mode: share-local truncation
  // here would re-introduce the cross-set ulp drift that masked-open
  // mode exists to eliminate (weight shares are persistent state, so
  // any drift compounds into divergence between parties under attack —
  // see DESIGN.md §4).  The per-parameter rescales are independent, so
  // in masked-open mode their openings share ONE round for the whole
  // update.
  mpc::OpenBatch open_batch(*ctx.mpc);
  std::vector<SecureParameter*> params = parameters();
  std::vector<mpc::DeferredShare> deltas;
  deltas.reserve(params.size());
  for (SecureParameter* parameter : params) {
    deltas.push_back(
        ctx.rescale_prepare(open_batch, parameter->grad.scaled(lr_encoded)));
  }
  open_batch.flush_all();
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value -= deltas[i].take();
    params[i]->zero_grad();
  }
}

std::vector<SecureParameter*> SecureModel::parameters() {
  std::vector<SecureParameter*> all;
  for (auto& layer : layers_) {
    for (SecureParameter* parameter : layer->parameters()) {
      all.push_back(parameter);
    }
  }
  return all;
}

void SecureModel::zero_grads() {
  for (SecureParameter* parameter : parameters()) {
    parameter->zero_grad();
  }
}

}  // namespace trustddl::core
