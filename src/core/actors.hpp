// Actor bodies for TrustDDL's five roles, factored out of the engine
// so the same SPMD programs run in two deployments:
//   * in-process: TrustDdlEngine spawns all five bodies as threads
//     over one Transport (the in-memory Network, or a TcpFabric);
//   * multi-process: the trustddl_party CLI runs one body per OS
//     process over its own TcpTransport.
// Every body derives its randomness from EngineConfig::seed through
// fixed per-role derivations, so a distributed run reconstructs
// exactly the outputs of the in-memory engine, bit for bit.
#pragma once

#include <vector>

#include "core/engine.hpp"

namespace trustddl::core {

/// Owner-service knobs derived from the engine configuration; the
/// seed derivation differs per mode so training and inference never
/// share preprocessing material.
OwnerServiceConfig make_owner_service_config(const EngineConfig& config,
                                             bool training);

/// Key under which epoch `epoch`'s parameter `param` is revealed to
/// the model owner.
std::string reveal_key(std::size_t epoch, std::size_t param);

/// Share `model`'s parameters from the model owner to the three
/// computing parties (tags "init/<i>").  Exposed for actor bodies that
/// live outside this translation unit — e.g. the serving layer's
/// model-owner body — so every deployment distributes parameters the
/// same way.
void share_parameters(nn::Sequential& model, net::Endpoint endpoint,
                      int frac_bits, Rng& rng);

/// Receive the shared parameters at a computing party (counterpart of
/// share_parameters).
std::vector<mpc::PartyShare> receive_parameters(net::Endpoint endpoint,
                                                std::size_t param_count);

// --- Secure inference -----------------------------------------------

/// Everything an inference actor needs to know up front.  All actors
/// of one run must be built from identical inputs (the batches only
/// matter to the data owner, but deriving the job identically
/// everywhere keeps counts and tags aligned).
struct InferJob {
  nn::ModelSpec spec;
  EngineConfig config;
  std::size_t param_count = 0;
  std::vector<data::Dataset> batches;
  std::size_t total_rows = 0;
};

InferJob make_infer_job(nn::ModelSpec spec, const EngineConfig& config,
                        std::size_t param_count, const data::Dataset& inputs,
                        std::size_t batch_size);

/// Model owner: share `model`'s parameters to the proxy layer, then
/// serve preprocessing/softmax requests until the parties stop.
void infer_model_owner_body(const InferJob& job, net::Endpoint endpoint,
                            nn::Sequential& model,
                            ModelOwnerService& service);

/// Data owner: share each batch's inputs, collect prediction shares,
/// robustly reconstruct; returns the predicted labels.
std::vector<std::size_t> infer_data_owner_body(const InferJob& job,
                                               net::Endpoint endpoint);

/// Computing party `party` (0..2); `adversary` may be nullptr and is
/// only attached when `party` equals config.byzantine_party.
mpc::DetectionLog infer_computing_party_body(const InferJob& job, int party,
                                             net::Endpoint endpoint,
                                             mpc::AdversaryHooks* adversary);

// --- Secure training ------------------------------------------------

struct TrainJob {
  nn::ModelSpec spec;
  EngineConfig config;
  TrainOptions options;
  /// Deterministic batch schedule (shuffled with options.shuffle_seed),
  /// identical at the data owner and every computing party.
  std::vector<data::Dataset> batches;
  std::vector<std::size_t> epoch_last_step;
  std::size_t param_count = 0;
};

TrainJob make_train_job(nn::ModelSpec spec, const EngineConfig& config,
                        const TrainOptions& options,
                        const data::Dataset& train_data,
                        std::size_t param_count);

void train_model_owner_body(const TrainJob& job, net::Endpoint endpoint,
                            nn::Sequential& model,
                            ModelOwnerService& service);

void train_data_owner_body(const TrainJob& job, net::Endpoint endpoint);

mpc::DetectionLog train_computing_party_body(const TrainJob& job, int party,
                                             net::Endpoint endpoint,
                                             mpc::AdversaryHooks* adversary);

}  // namespace trustddl::core
