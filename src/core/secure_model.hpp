// TrustDDL's secure deep-learning engine: the Table-I layer types
// implemented over replicated secret shares (paper §III-C).
//
//  * Linear operations (dense / convolution matmuls) run through
//    SecMatMul-BT with dealer triples, followed by a fixed-point
//    rescale (local share truncation or masked opening, configurable).
//  * ReLU uses SecComp-BT: the sign of the activation is revealed to
//    the computing parties (as in the paper) and applied as a public
//    0/1 mask — which also serves the backward pass.
//  * Softmax (and its derivative) is outsourced to the model owner.
//  * Local transformations (im2col, reshapes, transposes) are applied
//    to each share component directly.
//
// All functions are SPMD across the three computing parties.
#pragma once

#include <memory>
#include <vector>

#include "core/owner_link.hpp"
#include "mpc/context.hpp"
#include "mpc/protocols_bt.hpp"
#include "nn/model_zoo.hpp"

namespace trustddl::core {

/// How fixed-point products are rescaled (see mpc::TruncationMode).
using mpc::TruncationMode;

/// Everything a secure layer needs at execution time.
struct SecureExecContext {
  mpc::PartyContext* mpc = nullptr;       ///< party-to-party protocols
  mpc::TripleSource* triples = nullptr;   ///< preprocessing material
  OwnerLink* owner = nullptr;             ///< Softmax outsourcing
  TruncationMode trunc_mode = TruncationMode::kLocal;
  /// Schedule data-independent openings within a layer/step through a
  /// shared mpc::OpenBatch so they travel in one round.  Off reproduces
  /// the pre-scheduler round structure (each protocol call flushes
  /// immediately) — reconstructed values are identical either way; only
  /// the number of round trips changes.
  bool batch_openings = true;

  /// Rescale a double-precision product share back to f fractional
  /// bits according to the configured strategy.
  mpc::PartyShare rescale(const mpc::PartyShare& product);

  /// Deferred rescale against `batch` (fetches the truncation pair now,
  /// keeping SPMD preprocessing order aligned).  With kLocal truncation
  /// the result is ready immediately; with kMaskedOpen it resolves one
  /// flush later.
  mpc::DeferredShare rescale_prepare(mpc::OpenBatch& batch,
                                     const mpc::PartyShare& product);

  /// Deferred matmul + rescale against `batch`; honours batch_openings
  /// by flushing eagerly when batching is off.
  mpc::DeferredShare matmul_rescaled_prepare(
      mpc::OpenBatch& batch, const mpc::PartyShare& x,
      const mpc::PartyShare& y, const mpc::BeaverTripleShare& triple);
};

/// A shared trainable parameter and its shared gradient accumulator.
struct SecureParameter {
  mpc::PartyShare value;
  mpc::PartyShare grad;

  explicit SecureParameter(mpc::PartyShare initial)
      : value(std::move(initial)), grad(mpc::zero_share(value.shape())) {}

  void zero_grad() { grad = mpc::zero_share(value.shape()); }
};

class SecureLayer {
 public:
  virtual ~SecureLayer() = default;
  virtual mpc::PartyShare forward(SecureExecContext& ctx,
                                  const mpc::PartyShare& input) = 0;
  virtual mpc::PartyShare backward(SecureExecContext& ctx,
                                   const mpc::PartyShare& grad_output) = 0;
  virtual std::vector<SecureParameter*> parameters() { return {}; }
};

/// Fully connected layer on shares: y = xW + b.
class SecureDense final : public SecureLayer {
 public:
  SecureDense(mpc::PartyShare weights, mpc::PartyShare bias)
      : weights_(std::move(weights)), bias_(std::move(bias)) {}

  mpc::PartyShare forward(SecureExecContext& ctx,
                          const mpc::PartyShare& input) override;
  mpc::PartyShare backward(SecureExecContext& ctx,
                           const mpc::PartyShare& grad_output) override;
  std::vector<SecureParameter*> parameters() override {
    return {&weights_, &bias_};
  }

 private:
  SecureParameter weights_;
  SecureParameter bias_;
  mpc::PartyShare cached_input_;
};

/// Convolution on shares via share-local im2col + SecMatMul-BT.
class SecureConv final : public SecureLayer {
 public:
  SecureConv(const ConvSpec& spec, mpc::PartyShare weights,
             mpc::PartyShare bias)
      : spec_(spec), weights_(std::move(weights)), bias_(std::move(bias)) {}

  mpc::PartyShare forward(SecureExecContext& ctx,
                          const mpc::PartyShare& input) override;
  mpc::PartyShare backward(SecureExecContext& ctx,
                           const mpc::PartyShare& grad_output) override;
  std::vector<SecureParameter*> parameters() override {
    return {&weights_, &bias_};
  }

 private:
  ConvSpec spec_;
  SecureParameter weights_;  ///< [out_channels, in_channels*kh*kw]
  SecureParameter bias_;     ///< [out_channels]
  mpc::PartyShare cached_columns_;  ///< [k, batch*outPixels]
  std::size_t cached_batch_ = 0;
};

/// ReLU via SecComp-BT; the public sign mask is cached for backward.
class SecureRelu final : public SecureLayer {
 public:
  mpc::PartyShare forward(SecureExecContext& ctx,
                          const mpc::PartyShare& input) override;
  mpc::PartyShare backward(SecureExecContext& ctx,
                           const mpc::PartyShare& grad_output) override;

 private:
  RingTensor cached_mask_;
};

/// 2-D max pooling via a tournament of SecComp-BT comparisons
/// (extension beyond the paper's Table I network).  Each tournament
/// round compares all surviving window candidates pairwise in ONE
/// batched comparison; the revealed sign masks select winners locally
/// and determine the (public) argmax routing for backward — the same
/// public-mask pattern the paper uses for ReLU.
class SecureMaxPool final : public SecureLayer {
 public:
  explicit SecureMaxPool(const nn::PoolSpec& spec) : spec_(spec) {}

  mpc::PartyShare forward(SecureExecContext& ctx,
                          const mpc::PartyShare& input) override;
  mpc::PartyShare backward(SecureExecContext& ctx,
                           const mpc::PartyShare& grad_output) override;

 private:
  nn::PoolSpec spec_;
  /// Public flat input index of each output's argmax, per sample.
  std::vector<std::vector<std::size_t>> cached_argmax_;
  std::size_t cached_batch_ = 0;
};

/// Softmax outsourced to the model owner (§III-C).
class SecureSoftmax final : public SecureLayer {
 public:
  mpc::PartyShare forward(SecureExecContext& ctx,
                          const mpc::PartyShare& input) override;
  mpc::PartyShare backward(SecureExecContext& ctx,
                           const mpc::PartyShare& grad_output) override;

  const mpc::PartyShare& cached_probabilities() const {
    return cached_probabilities_;
  }

 private:
  mpc::PartyShare cached_probabilities_;
};

/// One computing party's view of the secured model.
class SecureModel {
 public:
  /// Build from a spec and this party's shares of the parameters, in
  /// the same order as nn::Sequential::parameters() (conv/dense: W
  /// then b).
  SecureModel(const nn::ModelSpec& spec,
              std::vector<mpc::PartyShare> parameter_shares);

  /// Full forward pass (ends with outsourced Softmax); returns shares
  /// of the class probabilities.
  mpc::PartyShare forward(SecureExecContext& ctx,
                          const mpc::PartyShare& input);

  /// Backward pass from the fused softmax+cross-entropy gradient
  /// (p - y), which is w.r.t. the logits, so the softmax layer is
  /// skipped — mirroring nn::Sequential::train_step.
  void backward_from_logit_grad(SecureExecContext& ctx,
                                const mpc::PartyShare& grad_logits);

  /// SGD update W -= lr * dW on shares; lr is public.
  void sgd_step(SecureExecContext& ctx, double learning_rate,
                int frac_bits);

  std::vector<SecureParameter*> parameters();
  void zero_grads();

 private:
  std::vector<std::unique_ptr<SecureLayer>> layers_;
};

/// Helpers shared with the engine.

/// Add a shared bias row to every row of a shared matrix.
void add_row_broadcast(mpc::PartyShare& matrix, const mpc::PartyShare& bias);

/// Add a shared per-row bias (column broadcast): bias[r] added to
/// every column of row r.
void add_col_broadcast(mpc::PartyShare& matrix, const mpc::PartyShare& bias);

}  // namespace trustddl::core
