// Offline/online preprocessing pipeline (DESIGN.md §10).
//
// Ties the pieces of the offline phase together for one computing
// party:
//
//  * a demand profiler that walks a ModelSpec and counts exactly which
//    (kind, shape) material a forward/backward/sgd step consumes —
//    the same arithmetic the Secure* layers perform, so a warm store
//    holds precisely what the online phase will pop;
//  * a TripleStore over the party's OwnerLink-as-backend, with
//    optional disk persistence (material survives restarts);
//  * warm() — the synchronous offline phase — and a background
//    producer thread that keeps stores above the low-water mark while
//    the online phase runs.
//
// When prefetch and persistence are both disabled the pipeline is
// inert and source() hands back the link itself: the synchronous
// dealing path, bit-identical to the store-backed one (both consume
// each per-key stream in order from index 0).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/owner_link.hpp"
#include "mpc/robust_aggregate.hpp"
#include "mpc/triple_store.hpp"
#include "nn/model_zoo.hpp"

namespace trustddl::core {

/// Aggregated material requirement: entry count per stream key.
struct DemandPlan {
  std::vector<std::pair<mpc::TripleKey, std::size_t>> counts;

  /// Add `count` entries of `key` (merging with an existing line).
  void add(const mpc::TripleKey& key, std::size_t count);
  void merge(const DemandPlan& other);
  bool empty() const { return counts.empty(); }
  std::size_t total() const;
};

/// Material one training/inference step consumes for a batch of
/// `batch_rows` samples: forward pass always; backward + SGD update
/// when `training`.  Truncation pairs appear only in kMaskedOpen mode
/// (local truncation consumes no material).  Mirrors the consumption
/// sites in secure_model.cpp layer by layer.
DemandPlan profile_step_demand(const nn::ModelSpec& spec,
                               std::size_t batch_rows,
                               TruncationMode trunc_mode, bool training);

/// Demand for a whole job: one step per entry of `batch_rows` (batches
/// may differ in size — the trailing partial batch gets its own shape
/// classes).
DemandPlan profile_job_demand(const nn::ModelSpec& spec,
                              const std::vector<std::size_t>& batch_rows,
                              TruncationMode trunc_mode, bool training);

/// Material one multi-owner training round consumes: per owner a full
/// forward/backward step on that owner's minibatch plus the masked
/// rescale of its normalized logit gradient, then per parameter the
/// comparison and truncation demand of the robust aggregation (see
/// mpc::aggregate_demand) and the optional momentum rescale.  Slightly
/// over-counts the per-round SGD truncation pairs (once per owner
/// instead of once per round) — a deliberate overshoot: store targets
/// are maxima, and surplus prefetched entries persist for later
/// rounds.
DemandPlan profile_train_round_demand(
    const nn::ModelSpec& spec, const std::vector<std::size_t>& owner_rows,
    TruncationMode trunc_mode, const mpc::AggregateOptions& aggregation,
    bool momentum);

class TriplePipeline {
 public:
  /// Builds the store when EngineConfig enables prefetch and/or
  /// persistence; otherwise stays inert.  Loads a persisted store for
  /// this party/role if one exists under triple_store_dir.
  TriplePipeline(const EngineConfig& config, OwnerLink& link, int party,
                 bool training);
  ~TriplePipeline();

  TriplePipeline(const TriplePipeline&) = delete;
  TriplePipeline& operator=(const TriplePipeline&) = delete;

  /// False when the pipeline is pass-through (source() == the link).
  bool active() const { return store_ != nullptr; }

  /// What the online phase should consume from.
  mpc::TripleSource& source();

  /// The underlying store; nullptr when inactive.
  mpc::TripleStore* store() { return store_.get(); }

  /// Raise per-key targets from a demand plan (each capped at
  /// EngineConfig::triple_max_depth).
  void plan(const DemandPlan& plan);

  /// Convenience for serving: plan `depth_factor` steps' worth of
  /// demand for a batch of `rows` (adaptive steady-state planning —
  /// the first manifest of a size pays the miss cost, later ones pop
  /// prefetched entries).
  void plan_step(const nn::ModelSpec& spec, std::size_t rows,
                 std::size_t depth_factor);

  /// Synchronous offline phase: refill every store to target.  Returns
  /// entries fetched.  No-op when inactive.
  std::size_t warm();

  /// One bounded refill pass (for idle loops).  Returns entries added.
  std::size_t refill_once();

  /// Start the background producer (refills keys below the low-water
  /// mark).  No-op when inactive or prefetch is off.
  void start();

  /// Stop the producer and persist the store if a store dir is
  /// configured.  Idempotent; also runs from the destructor.
  void shutdown();

  /// Provenance tag for persisted stores: ties a file to the dealing
  /// seed and fixed-point format of this run.
  static std::uint64_t store_provenance(const EngineConfig& config,
                                        bool training);

  /// Path of this party's persisted store under `dir`.
  static std::string store_path(const std::string& dir, int party,
                                bool training);

 private:
  void producer_loop();

  EngineConfig config_;
  OwnerLink& link_;
  int party_;
  bool training_;
  std::unique_ptr<mpc::TripleStore> store_;
  std::thread producer_;
  std::atomic<bool> stop_{false};
  bool shut_down_ = false;
};

}  // namespace trustddl::core
