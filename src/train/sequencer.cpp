#include "train/sequencer.hpp"

#include <chrono>
#include <thread>

#include "common/logging.hpp"
#include "core/roles.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace trustddl::train {
namespace {

constexpr const char* kLog = "train.sequencer";

using Clock = std::chrono::steady_clock;

}  // namespace

RoundSequencer::RoundSequencer(net::Endpoint endpoint, TrainConfig config,
                               int num_owners, std::uint64_t provenance)
    : endpoint_(endpoint), config_(config), num_owners_(num_owners),
      provenance_(provenance),
      owners_(static_cast<std::size_t>(num_owners)),
      consumed_(static_cast<std::size_t>(num_owners), 0) {
  TRUSTDDL_REQUIRE(num_owners >= 1, "train: need at least one owner");
  TRUSTDDL_REQUIRE(config.quorum >= 1 &&
                       config.quorum <= static_cast<std::size_t>(num_owners),
                   "train: quorum out of range");
  TRUSTDDL_REQUIRE(config.rounds_per_epoch >= 1 && config.epochs >= 1,
                   "train: need at least one round per epoch and one epoch");
  if (!config_.checkpoint_dir.empty()) {
    SequencerCheckpoint ckpt;
    if (load_sequencer_checkpoint(
            sequencer_checkpoint_path(config_.checkpoint_dir), provenance_,
            ckpt)) {
      TRUSTDDL_REQUIRE(ckpt.consumed.size() ==
                           static_cast<std::size_t>(num_owners),
                       "train: checkpoint owner count mismatch");
      round_ = ckpt.round;
      consumed_ = ckpt.consumed;
      for (std::size_t slot = 0; slot < owners_.size(); ++slot) {
        owners_[slot].next_seq = consumed_[slot];
      }
      TRUSTDDL_LOG_INFO(kLog)
          << "resuming at round " << round_ << " from checkpoint";
    }
  }
}

void RoundSequencer::run() {
  const std::size_t total_rounds = config_.total_rounds();
  Clock::time_point window_start{};
  bool window_open = false;
  while (true) {
    bool progress = poll_hellos();
    if (poll_notices()) {
      progress = true;
    }

    if (round_ >= total_rounds) {
      break;
    }
    if (config_.max_rounds != 0 && round_ >= config_.max_rounds) {
      // Suspend: checkpoint the cursors and tell the parties to do the
      // same.  Anything still pending is discarded — restarted owners
      // will regenerate those submissions from their seq-derived seeds.
      discard_pending();
      save_checkpoint();
      RoundManifest suspend;
      suspend.round = round_;
      suspend.epoch = round_ / config_.rounds_per_epoch;
      suspend.suspend = true;
      broadcast(suspend);
      stats_.suspended = true;
      TRUSTDDL_LOG_INFO(kLog)
          << "suspended at round " << round_ << ": " << stats_.consumed
          << " consumed, " << stats_.discarded << " discarded";
      return;
    }

    std::size_t ready = 0;
    std::size_t live_waiting = 0;
    bool all_stopped = true;
    for (const OwnerState& owner : owners_) {
      if (!owner.pending.empty()) {
        ++ready;
      } else if (!owner.stopped && !owner.dormant) {
        ++live_waiting;
      }
      if (!owner.stopped && !owner.dormant) {
        all_stopped = false;
      }
    }

    if (ready >= config_.quorum) {
      if (!window_open) {
        window_start = Clock::now();
        window_open = true;
      }
      // Cut as soon as every owner the window still waits for is ready
      // (all_stopped makes this vacuous), or the window expires.
      if (live_waiting == 0 ||
          Clock::now() - window_start >= config_.round_window) {
        cut_round();
        window_open = false;
        progress = true;
      }
    } else if (all_stopped) {
      // No owner will ever complete the quorum again.
      break;
    }

    if (!progress) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  discard_pending();
  save_checkpoint();
  RoundManifest goodbye;
  goodbye.round = round_;
  goodbye.epoch =
      round_ == 0 ? 0 : (round_ - 1) / config_.rounds_per_epoch;
  goodbye.shutdown = true;
  broadcast(goodbye);
  TRUSTDDL_LOG_INFO(kLog) << "sequencer done: " << stats_.rounds
                          << " rounds, " << stats_.admitted << " admitted, "
                          << stats_.consumed << " consumed, "
                          << stats_.discarded << " discarded, "
                          << stats_.dropped_owner_slots
                          << " dropped owner slots";
}

bool RoundSequencer::poll_hellos() {
  bool progress = false;
  for (int index = 0; index < num_owners_; ++index) {
    const net::PartyId owner = kFirstOwnerId + index;
    Bytes payload;
    while (endpoint_.try_recv(owner, hello_tag(), payload)) {
      progress = true;
      decode_hello(std::move(payload));
      HelloAck ack;
      ack.next_seq = consumed_[static_cast<std::size_t>(index)];
      endpoint_.send(owner, hello_ack_tag(), encode_hello_ack(ack));
    }
  }
  return progress;
}

bool RoundSequencer::poll_notices() {
  bool progress = false;
  for (int index = 0; index < num_owners_; ++index) {
    const auto slot = static_cast<std::size_t>(index);
    OwnerState& owner = owners_[slot];
    if (owner.stopped) {
      continue;
    }
    const net::PartyId id = kFirstOwnerId + index;
    Bytes payload;
    // Notices are read strictly in per-owner seq order; seq is the
    // only framing, so arrival order over the transport never matters.
    while (endpoint_.try_recv(id, notice_tag(owner.next_seq), payload)) {
      progress = true;
      ++owner.next_seq;
      const SubmitNotice notice = decode_submit_notice(std::move(payload));
      if (notice.kind == SubmitKind::kStop) {
        owner.stopped = true;
        break;
      }
      owner.pending.push_back({notice, Clock::now()});
      ++stats_.admitted;
      obs::count("train.owner.submissions.admitted");
      if (owner.dormant) {
        owner.dormant = false;
        owner.misses = 0;
      }
    }
  }
  return progress;
}

void RoundSequencer::cut_round() {
  const auto now = Clock::now();
  RoundManifest manifest;
  manifest.round = round_;
  manifest.epoch = round_ / config_.rounds_per_epoch;
  manifest.epoch_end = (round_ + 1) % config_.rounds_per_epoch == 0;
  std::uint64_t dropped = 0;
  for (int index = 0; index < num_owners_; ++index) {
    const auto slot = static_cast<std::size_t>(index);
    OwnerState& owner = owners_[slot];
    if (!owner.pending.empty()) {
      const PendingSubmission pending = owner.pending.front();
      const SubmitNotice notice = pending.notice;
      owner.pending.pop_front();
      const auto waited =
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - pending.admitted);
      const std::uint64_t queue_us =
          waited.count() > 0 ? static_cast<std::uint64_t>(waited.count())
                             : 0;
      manifest.entries.push_back(
          {static_cast<net::PartyId>(kFirstOwnerId + index), notice.seq,
           notice.rows, queue_us});
      obs::observe("train.queue.wait.us", queue_us);
      consumed_[slot] = notice.seq + 1;
      owner.misses = 0;
      ++stats_.consumed;
      obs::count("train.owner.submissions.consumed");
      obs::count("train.owner.slots.included");
    } else if (!owner.stopped && !owner.dormant) {
      ++owner.misses;
      if (owner.misses >= config_.dormant_after_misses) {
        owner.dormant = true;
        TRUSTDDL_LOG_INFO(kLog)
            << "owner " << (kFirstOwnerId + index) << " dormant after "
            << owner.misses << " missed rounds";
      }
      ++dropped;
      ++stats_.dropped_owner_slots;
      obs::count("train.owner.slots.dropped");
    }
  }
  obs::count("train.owner.slots.expected",
             manifest.entries.size() + dropped);
  if (dropped != 0) {
    obs::count("train.round.dropped_owners", dropped);
  }
  broadcast(manifest);
  obs::HealthState::global().note_progress("train.last_round",
                                           manifest.round);
  if (obs::tracing_enabled()) {
    // Sequencer-side join record for merge_traces.py: the round's
    // correlation id plus per-owner queue attribution.
    const obs::CorrelationScope corr(
        "round:" + std::to_string(manifest.epoch) + ":" +
        std::to_string(manifest.round));
    std::string extra = "\"epoch\": " + std::to_string(manifest.epoch) +
                        ", \"entries\": [";
    for (std::size_t i = 0; i < manifest.entries.size(); ++i) {
      const auto& entry = manifest.entries[i];
      if (i > 0) {
        extra += ", ";
      }
      extra += "{\"owner\": " + std::to_string(entry.owner) +
               ", \"seq\": " + std::to_string(entry.seq) +
               ", \"rows\": " + std::to_string(entry.rows) +
               ", \"queue_us\": " + std::to_string(entry.queue_us) + "}";
    }
    extra += "]";
    obs::trace_instant("train.dispatch", core::kModelOwner, manifest.round,
                       extra);
  }
  ++stats_.rounds;
  obs::count("train.rounds");
  obs::observe("train.round.owners", manifest.entries.size());
  obs::observe("train.round.rows", manifest.total_rows());
  if (manifest.epoch_end) {
    ++stats_.epochs_completed;
    obs::count("train.epochs");
  }
  ++round_;
}

void RoundSequencer::broadcast(const RoundManifest& manifest) {
  const Bytes payload = encode_round_manifest(manifest);
  for (int party = 0; party < core::kComputingParties; ++party) {
    endpoint_.send(party, manifest_tag(manifest.round), payload);
  }
}

void RoundSequencer::discard_pending() {
  for (OwnerState& owner : owners_) {
    while (!owner.pending.empty()) {
      owner.pending.pop_front();
      ++stats_.discarded;
      obs::count("train.owner.submissions.discarded");
    }
  }
}

void RoundSequencer::save_checkpoint() {
  if (config_.checkpoint_dir.empty()) {
    return;
  }
  SequencerCheckpoint ckpt;
  ckpt.round = round_;
  ckpt.epoch = round_ / config_.rounds_per_epoch;
  ckpt.consumed = consumed_;
  save_sequencer_checkpoint(sequencer_checkpoint_path(config_.checkpoint_dir),
                            provenance_, ckpt);
}

}  // namespace trustddl::train
