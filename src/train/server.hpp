// Computing-party side of the multi-owner training service.
//
// Each party follows the sequencer's round manifests in lockstep: per
// manifest entry it receives that owner's minibatch shares (zero-share
// substitution on timeout keeps the SPMD loop aligned), computes the
// owner's normalized gradient via the SecureModel backward pass, then
// robust-aggregates the per-owner gradient shares coordinate-wise
// (mpc::RobustAggregate) before one SGD step.  A shutdown manifest
// ends training; a suspend manifest checkpoints parameter (and
// momentum) shares plus the round cursor to TDCK files so a later
// session resumes mid-epoch — bit-identical under masked-open
// truncation (see train/checkpoint.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/actors.hpp"
#include "core/secure_model.hpp"
#include "core/triple_pipeline.hpp"
#include "train/sequencer.hpp"
#include "train/wire.hpp"

namespace trustddl::train {

class TrainServer {
 public:
  TrainServer(int party, net::Endpoint endpoint, TrainConfig config,
              std::uint64_t provenance);

  /// Attach an active preprocessing pipeline: idle manifest polls spend
  /// their wait on refills, and each manifest raises the store targets
  /// by one round's profiled demand.
  void set_pipeline(core::TriplePipeline* pipeline,
                    const nn::ModelSpec* spec) {
    pipeline_ = pipeline;
    spec_ = spec;
  }

  /// Execute round manifests until shutdown (returns true) or suspend
  /// (returns false).  If a TDCK checkpoint exists under the configured
  /// directory, parameter/velocity shares and the round cursor are
  /// restored before the first manifest; on suspend and shutdown they
  /// are persisted.  `link` is used for epoch-end weight reveals.
  bool run(core::SecureModel& model, core::SecureExecContext& ctx,
           core::OwnerLink& link, const nn::ModelSpec& spec);

  std::uint64_t rounds_executed() const { return rounds_; }

 private:
  int party_;
  net::Endpoint endpoint_;
  TrainConfig config_;
  std::uint64_t provenance_;
  core::TriplePipeline* pipeline_ = nullptr;
  const nn::ModelSpec* spec_ = nullptr;
  std::uint64_t rounds_ = 0;
};

/// Full computing-party body: receive parameter shares, restore any
/// checkpoint, run the train server, persist the preprocessing store.
/// `clean_out` (optional) reports shutdown (true) vs suspend (false).
mpc::DetectionLog train_service_party_body(
    const nn::ModelSpec& spec, const core::EngineConfig& config,
    std::size_t param_count, int party, net::Endpoint endpoint,
    const TrainConfig& train_config, bool* clean_out = nullptr,
    std::uint64_t* rounds_out = nullptr);

/// Full model-owner body: share fresh parameter shares, run the
/// owner service (Softmax + dealing + reveals) on a side thread and
/// the round sequencer on this one.
void train_service_owner_body(
    const core::EngineConfig& config, nn::Sequential& model,
    net::Endpoint endpoint, const TrainConfig& train_config, int num_owners,
    SequencerStats* stats_out = nullptr,
    std::map<std::string, RingTensor>* revealed_out = nullptr);

}  // namespace trustddl::train
