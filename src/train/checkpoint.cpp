#include "train/checkpoint.hpp"

#include <fstream>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "mpc/share_serde.hpp"

namespace trustddl::train {
namespace {

constexpr std::uint32_t kCheckpointMagic = 0x5444434bu;  // "TDCK"
constexpr std::uint32_t kCheckpointVersion = 1;
// Role field: parties store their id (0..2); the sequencer stores a
// sentinel so party and sequencer files can never be confused.
constexpr std::uint32_t kSequencerRole = 0xffffffffu;

void write_file(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw Error("checkpoint: cannot write " + path);
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw Error("checkpoint: short write to " + path);
  }
}

/// Reads the whole file; returns false when it does not exist.
bool read_file(const std::string& path, Bytes& bytes) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return false;
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  bytes.resize(static_cast<std::size_t>(size));
  if (!in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw SerializationError("checkpoint: short read from " + path);
  }
  return true;
}

void write_header(ByteWriter& writer, std::uint64_t provenance,
                  std::uint32_t role) {
  writer.write_u32(kCheckpointMagic);
  writer.write_u32(kCheckpointVersion);
  writer.write_u64(provenance);
  writer.write_u32(role);
}

void check_header(ByteReader& reader, std::uint64_t provenance,
                  std::uint32_t role, const std::string& path) {
  if (reader.read_u32() != kCheckpointMagic) {
    throw SerializationError("checkpoint: bad magic in " + path);
  }
  if (reader.read_u32() != kCheckpointVersion) {
    throw SerializationError("checkpoint: unsupported version in " + path);
  }
  if (reader.read_u64() != provenance) {
    throw SerializationError(
        "checkpoint: provenance mismatch (saved under a different session "
        "seed): " +
        path);
  }
  if (reader.read_u32() != role) {
    throw SerializationError("checkpoint: file belongs to another role: " +
                             path);
  }
}

}  // namespace

std::string party_checkpoint_path(const std::string& dir, net::PartyId party) {
  return dir + "/party" + std::to_string(party) + ".tdck";
}

std::string sequencer_checkpoint_path(const std::string& dir) {
  return dir + "/sequencer.tdck";
}

void save_party_checkpoint(const std::string& path, std::uint64_t provenance,
                           net::PartyId party, const PartyCheckpoint& ckpt) {
  ByteWriter writer;
  write_header(writer, provenance, static_cast<std::uint32_t>(party));
  writer.write_u64(ckpt.round);
  writer.write_u64(ckpt.epoch);
  writer.write_u64(ckpt.params.size());
  for (const CheckpointParam& param : ckpt.params) {
    writer.write_string(param.name);
    mpc::write_party_share(writer, param.value);
    writer.write_u8(param.has_velocity ? 1 : 0);
    if (param.has_velocity) {
      mpc::write_party_share(writer, param.velocity);
    }
  }
  write_file(path, writer.bytes());
}

bool load_party_checkpoint(const std::string& path, std::uint64_t provenance,
                           net::PartyId party, PartyCheckpoint& out) {
  Bytes bytes;
  if (!read_file(path, bytes)) {
    return false;
  }
  ByteReader reader(std::move(bytes));
  check_header(reader, provenance, static_cast<std::uint32_t>(party), path);
  out.round = reader.read_u64();
  out.epoch = reader.read_u64();
  const std::uint64_t count = reader.read_u64();
  out.params.clear();
  out.params.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    CheckpointParam param;
    param.name = reader.read_string();
    param.value = mpc::read_party_share(reader);
    param.has_velocity = reader.read_u8() != 0;
    if (param.has_velocity) {
      param.velocity = mpc::read_party_share(reader);
    }
    out.params.push_back(std::move(param));
  }
  return true;
}

void save_sequencer_checkpoint(const std::string& path,
                               std::uint64_t provenance,
                               const SequencerCheckpoint& ckpt) {
  ByteWriter writer;
  write_header(writer, provenance, kSequencerRole);
  writer.write_u64(ckpt.round);
  writer.write_u64(ckpt.epoch);
  writer.write_u64_vector(ckpt.consumed);
  write_file(path, writer.bytes());
}

bool load_sequencer_checkpoint(const std::string& path,
                               std::uint64_t provenance,
                               SequencerCheckpoint& out) {
  Bytes bytes;
  if (!read_file(path, bytes)) {
    return false;
  }
  ByteReader reader(std::move(bytes));
  check_header(reader, provenance, kSequencerRole, path);
  out.round = reader.read_u64();
  out.epoch = reader.read_u64();
  out.consumed = reader.read_u64_vector();
  return true;
}

}  // namespace trustddl::train
