// Owner-side round sequencer for the multi-owner training service.
//
// Training rounds need every computing party to execute IDENTICAL
// per-owner gradient batches (the MPC protocols are SPMD).  As in the
// serving layer, the trusted model owner is the single sequencer: data
// owners notify it of shared minibatches, it cuts rounds once a quorum
// of owners is ready, and it broadcasts each round manifest to the
// three parties, which follow in lockstep.
//
// The sequencer owns the submission lifecycle ledger: every admitted
// minibatch notice ends in exactly one of {consumed (included in a
// round manifest), discarded (left pending at shutdown or suspend)} —
// the train.owner.submissions.* counters satisfy
//   admitted == consumed + discarded
// by construction.  Per round, every live owner slot is either
// included or dropped:
//   train.owner.slots.expected == included + dropped
// and scripts/check_metrics.py enforces both.
//
// Straggler policy: a round is cut once `quorum` owners have a pending
// submission AND (every live owner does, or `round_window` expired).
// A live owner with nothing pending at the cut is dropped from that
// round (train.round.dropped_owners); after `dormant_after_misses`
// consecutive misses it is declared dormant and the window stops
// waiting for it, so a killed owner degrades the service to quorum
// operation instead of stalling it.  A dormant owner that submits
// again is revived.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "train/checkpoint.hpp"
#include "train/wire.hpp"

namespace trustddl::train {

struct SequencerStats {
  std::uint64_t admitted = 0;
  std::uint64_t consumed = 0;
  std::uint64_t discarded = 0;
  std::uint64_t rounds = 0;
  std::uint64_t epochs_completed = 0;
  std::uint64_t dropped_owner_slots = 0;
  /// True when the run ended with a suspend manifest (max_rounds hit)
  /// rather than a shutdown manifest.
  bool suspended = false;
};

class RoundSequencer {
 public:
  /// `endpoint` must be the model owner's; owners occupy actor ids
  /// kFirstOwnerId .. kFirstOwnerId + num_owners - 1.  `provenance` is
  /// the session seed and guards checkpoint compatibility.
  RoundSequencer(net::Endpoint endpoint, TrainConfig config, int num_owners,
                 std::uint64_t provenance);

  /// Sequence rounds until the configured number of epochs completed
  /// (or max_rounds triggered a suspend, or every owner stopped);
  /// then broadcast the terminal manifest.  Runs on the model owner's
  /// thread, alongside — not inside — ModelOwnerService.
  void run();

  const SequencerStats& stats() const { return stats_; }

 private:
  /// A notice waiting for a round cut, stamped on arrival so the cut
  /// can report how long the submission queued (manifest queue_us).
  struct PendingSubmission {
    SubmitNotice notice;
    std::chrono::steady_clock::time_point admitted;
  };

  struct OwnerState {
    std::uint64_t next_seq = 0;  ///< next notice to read off the wire
    std::deque<PendingSubmission> pending;
    bool stopped = false;
    std::size_t misses = 0;
    bool dormant = false;
  };

  bool poll_hellos();
  bool poll_notices();
  void cut_round();
  void broadcast(const RoundManifest& manifest);
  void discard_pending();
  void save_checkpoint();

  net::Endpoint endpoint_;
  TrainConfig config_;
  int num_owners_;
  std::uint64_t provenance_;
  std::vector<OwnerState> owners_;
  /// Next submission seq each owner slot should produce for us —
  /// the resume cursor persisted in the sequencer checkpoint and
  /// returned in hello acks.
  std::vector<std::uint64_t> consumed_;
  std::uint64_t round_ = 0;
  SequencerStats stats_;
};

}  // namespace trustddl::train
