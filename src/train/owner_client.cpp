#include "train/owner_client.hpp"

#include <array>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/roles.hpp"
#include "mpc/share_serde.hpp"
#include "nn/loss.hpp"
#include "obs/trace.hpp"

namespace trustddl::train {
namespace {

Bytes encode_share(const mpc::PartyShare& share) {
  ByteWriter writer;
  mpc::write_party_share(writer, share);
  return writer.take();
}

}  // namespace

const char* poison_mode_name(PoisonMode mode) {
  switch (mode) {
    case PoisonMode::kNone:
      return "none";
    case PoisonMode::kSignFlip:
      return "sign-flip";
    case PoisonMode::kScale:
      return "scale";
    case PoisonMode::kLabelFlip:
      return "label-flip";
  }
  return "unknown";
}

PoisonSpec parse_poison_spec(const std::string& text) {
  PoisonSpec spec;
  if (text.empty() || text == "none") {
    return spec;
  }
  if (text == "sign-flip") {
    spec.mode = PoisonMode::kSignFlip;
    return spec;
  }
  if (text == "label-flip") {
    spec.mode = PoisonMode::kLabelFlip;
    return spec;
  }
  if (text.rfind("scale", 0) == 0) {
    spec.mode = PoisonMode::kScale;
    const auto eq = text.find('=');
    if (eq != std::string::npos) {
      spec.factor = std::stod(text.substr(eq + 1));
    }
    return spec;
  }
  throw Error("train: unknown poison spec '" + text +
              "' (want none|sign-flip|scale[=F]|label-flip)");
}

data::Dataset apply_poison(const data::Dataset& batch,
                           const PoisonSpec& poison, std::size_t classes) {
  data::Dataset out = batch;
  switch (poison.mode) {
    case PoisonMode::kNone:
      break;
    case PoisonMode::kSignFlip:
      for (std::size_t i = 0; i < out.images.size(); ++i) {
        out.images[i] = -out.images[i];
      }
      break;
    case PoisonMode::kScale:
      for (std::size_t i = 0; i < out.images.size(); ++i) {
        out.images[i] *= poison.factor;
      }
      break;
    case PoisonMode::kLabelFlip:
      for (std::size_t& label : out.labels) {
        label = (label + 1) % classes;
      }
      break;
  }
  return out;
}

TrainingOwner::TrainingOwner(net::Endpoint endpoint, OwnerOptions options)
    : endpoint_(endpoint), options_(options) {
  TRUSTDDL_REQUIRE(endpoint_.id() >= kFirstOwnerId,
                   "train: owner endpoint must use an owner actor id");
  TRUSTDDL_REQUIRE(options_.batch_rows >= 1,
                   "train: owner batch_rows must be at least 1");
}

std::uint64_t TrainingOwner::hello() {
  endpoint_.send(core::kModelOwner, hello_tag(), encode_hello());
  const auto start = std::chrono::steady_clock::now();
  Bytes payload;
  while (!endpoint_.try_recv(core::kModelOwner, hello_ack_tag(), payload)) {
    if (std::chrono::steady_clock::now() - start >= options_.hello_timeout) {
      throw Error("train: owner " + std::to_string(endpoint_.id()) +
                  " timed out waiting for hello ack");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return decode_hello_ack(std::move(payload)).next_seq;
}

std::size_t TrainingOwner::submit(std::uint64_t seq,
                                  const data::Dataset& shard) {
  TRUSTDDL_REQUIRE(shard.size() >= 1, "train: owner shard is empty");
  // Everything about this submission — which rows, and how they are
  // split into shares — is a pure function of (owner seed, seq).
  Rng rng(submission_seed(options_.seed, seq));
  std::vector<std::size_t> indices(options_.batch_rows);
  for (std::size_t& index : indices) {
    index = static_cast<std::size_t>(rng.next_below(shard.size()));
  }
  data::Dataset batch =
      data::gather(shard, indices, 0, indices.size());
  batch = apply_poison(batch, options_.poison, options_.classes);

  const RingTensor x = to_ring(batch.images, options_.frac_bits);
  const RingTensor y =
      to_ring(nn::one_hot(batch.labels, options_.classes),
              options_.frac_bits);
  const std::array<mpc::PartyShare, mpc::kNumParties> x_views =
      mpc::share_secret(x, rng);
  const std::array<mpc::PartyShare, mpc::kNumParties> y_views =
      mpc::share_secret(y, rng);
  // Input shares first, then the notice, so the manifest a party acts
  // on usually finds the shares already in its mailbox.
  for (int party = 0; party < mpc::kNumParties; ++party) {
    const auto slot = static_cast<std::size_t>(party);
    endpoint_.send(party, input_x_tag(seq), encode_share(x_views[slot]));
    endpoint_.send(party, input_y_tag(seq), encode_share(y_views[slot]));
  }
  SubmitNotice notice;
  notice.seq = seq;
  notice.rows = batch.size();
  endpoint_.send(core::kModelOwner, notice_tag(seq),
                 encode_submit_notice(notice));
  if (obs::tracing_enabled()) {
    // No round correlation yet — the sequencer assigns the round later
    // and its train.dispatch record maps (owner, seq) pairs to rounds,
    // which is the join key merge_traces.py uses for this instant.
    obs::trace_instant("train.submit", static_cast<int>(endpoint_.id()), seq,
                       "\"rows\": " + std::to_string(batch.size()));
  }
  return batch.size();
}

void TrainingOwner::stop(std::uint64_t seq) {
  SubmitNotice notice;
  notice.kind = SubmitKind::kStop;
  notice.seq = seq;
  endpoint_.send(core::kModelOwner, notice_tag(seq),
                 encode_submit_notice(notice));
}

}  // namespace trustddl::train
