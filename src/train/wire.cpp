#include "train/wire.hpp"

namespace trustddl::train {
namespace {

std::string trn_tag(std::uint64_t number, const char* what) {
  return "trn/" + std::to_string(number) + "/" + what;
}

/// splitmix64 finalizer — a cheap, well-mixed injection so seeds for
/// nearby (owner, seq) pairs share no low-bit structure.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::string hello_tag() { return "trn/hello"; }
std::string hello_ack_tag() { return "trn/hello/ack"; }
std::string notice_tag(std::uint64_t seq) { return trn_tag(seq, "notice"); }
std::string input_x_tag(std::uint64_t seq) { return trn_tag(seq, "x"); }
std::string input_y_tag(std::uint64_t seq) { return trn_tag(seq, "y"); }
std::string manifest_tag(std::uint64_t round) { return trn_tag(round, "man"); }

Bytes encode_submit_notice(const SubmitNotice& notice) {
  ByteWriter writer;
  writer.write_u8(static_cast<std::uint8_t>(notice.kind));
  writer.write_u64(notice.seq);
  writer.write_u64(notice.rows);
  return writer.take();
}

SubmitNotice decode_submit_notice(Bytes payload) {
  ByteReader reader(std::move(payload));
  SubmitNotice notice;
  const std::uint8_t kind = reader.read_u8();
  TRUSTDDL_REQUIRE(kind <= static_cast<std::uint8_t>(SubmitKind::kStop),
                   "train: unknown notice kind");
  notice.kind = static_cast<SubmitKind>(kind);
  notice.seq = reader.read_u64();
  notice.rows = reader.read_u64();
  return notice;
}

Bytes encode_hello(std::uint32_t protocol_version) {
  ByteWriter writer;
  writer.write_u32(protocol_version);
  return writer.take();
}

std::uint32_t decode_hello(Bytes payload) {
  ByteReader reader(std::move(payload));
  return reader.read_u32();
}

Bytes encode_hello_ack(const HelloAck& ack) {
  ByteWriter writer;
  writer.write_u64(ack.next_seq);
  return writer.take();
}

HelloAck decode_hello_ack(Bytes payload) {
  ByteReader reader(std::move(payload));
  HelloAck ack;
  ack.next_seq = reader.read_u64();
  return ack;
}

std::size_t RoundManifest::total_rows() const {
  std::size_t rows = 0;
  for (const auto& entry : entries) {
    rows += entry.rows;
  }
  return rows;
}

Bytes encode_round_manifest(const RoundManifest& manifest) {
  ByteWriter writer;
  writer.write_u64(manifest.round);
  writer.write_u64(manifest.epoch);
  writer.write_u8(manifest.epoch_end ? 1 : 0);
  writer.write_u8(manifest.shutdown ? 1 : 0);
  writer.write_u8(manifest.suspend ? 1 : 0);
  writer.write_u32(static_cast<std::uint32_t>(manifest.entries.size()));
  for (const auto& entry : manifest.entries) {
    writer.write_u32(static_cast<std::uint32_t>(entry.owner));
    writer.write_u64(entry.seq);
    writer.write_u64(entry.rows);
    writer.write_u64(entry.queue_us);
  }
  return writer.take();
}

RoundManifest decode_round_manifest(Bytes payload) {
  ByteReader reader(std::move(payload));
  RoundManifest manifest;
  manifest.round = reader.read_u64();
  manifest.epoch = reader.read_u64();
  manifest.epoch_end = reader.read_u8() != 0;
  manifest.shutdown = reader.read_u8() != 0;
  manifest.suspend = reader.read_u8() != 0;
  const std::uint32_t count = reader.read_u32();
  manifest.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TrainManifestEntry entry;
    entry.owner = static_cast<net::PartyId>(reader.read_u32());
    entry.seq = reader.read_u64();
    entry.rows = reader.read_u64();
    entry.queue_us = reader.read_u64();
    manifest.entries.push_back(entry);
  }
  return manifest;
}

std::uint64_t owner_base_seed(std::uint64_t session_seed, int owner_index) {
  return mix64(session_seed * 0x100000001b3ull +
               static_cast<std::uint64_t>(owner_index) + 1);
}

std::uint64_t submission_seed(std::uint64_t owner_seed, std::uint64_t seq) {
  return mix64(owner_seed ^ mix64(seq + 0x5eed));
}

}  // namespace trustddl::train
