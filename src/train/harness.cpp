#include "train/harness.hpp"

#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/stopwatch.hpp"
#include "core/metrics_export.hpp"
#include "net/network.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"

namespace trustddl::train {
namespace {

/// Training-session cost report for the metrics export — the same
/// traffic split as the serving harness: proxy = party<->party links,
/// owner = everything touching the model owner or data owners.
core::CostReport session_cost(const net::TrafficSnapshot& traffic,
                              double wall_seconds,
                              const std::array<mpc::DetectionLog, 3>& logs) {
  core::CostReport report;
  report.wall_seconds = wall_seconds;
  report.total_bytes = traffic.total_bytes;
  report.total_messages = traffic.total_messages;
  const auto actors = traffic.links.size();
  for (std::size_t i = 0; i < actors; ++i) {
    for (std::size_t j = 0; j < actors; ++j) {
      const auto bytes = traffic.links[i][j].bytes;
      if (i < core::kComputingParties && j < core::kComputingParties) {
        report.proxy_bytes += bytes;
      } else {
        report.owner_bytes += bytes;
      }
    }
  }
  for (const auto& log : logs) {
    report.commitment_violations +=
        log.count(mpc::DetectionEvent::Kind::kCommitmentViolation);
    report.distance_anomalies +=
        log.count(mpc::DetectionEvent::Kind::kDistanceAnomaly);
    report.share_auth_failures +=
        log.count(mpc::DetectionEvent::Kind::kShareAuthFailure);
    report.recovered_opens += log.recovered_opens;
  }
  report.opening_rounds = logs[0].opens;
  report.values_opened = logs[0].values_opened;
  return report;
}

}  // namespace

data::Dataset owner_shard(const data::Dataset& dataset, int index,
                          int count) {
  TRUSTDDL_REQUIRE(count >= 1 && index >= 0 && index < count,
                   "train: bad owner shard index");
  std::vector<std::size_t> indices;
  for (std::size_t row = static_cast<std::size_t>(index);
       row < dataset.size(); row += static_cast<std::size_t>(count)) {
    indices.push_back(row);
  }
  TRUSTDDL_REQUIRE(!indices.empty(), "train: owner shard is empty");
  return data::gather(dataset, indices, 0, indices.size());
}

TrainSessionResult run_training_session(const TrainSessionConfig& config) {
  TRUSTDDL_REQUIRE(config.num_owners >= 1,
                   "train: session needs at least one owner");
  TRUSTDDL_REQUIRE(config.dataset.size() >=
                       static_cast<std::size_t>(config.num_owners),
                   "train: dataset smaller than the owner count");
  kernels::set_global_config(config.engine.kernels);
  if (!config.engine.metrics_out.empty()) {
    obs::set_metrics_enabled(true);
    obs::MetricsRegistry::global().reset();
    obs::EventLog::global().clear();
  }
  if (!config.engine.trace_out.empty()) {
    obs::Tracer::global().open(config.engine.trace_out);
  }

  net::NetworkConfig net_config;
  net_config.num_parties = core::kNumActors + config.num_owners;
  net_config.recv_timeout = config.engine.recv_timeout;
  net_config.emulate_latency = config.engine.emulate_latency;
  net_config.link_latency = config.engine.link_latency;
  net::Network network(net_config);

  // Same reference-model construction as TrustDdlEngine, so the
  // service trains exactly the model engine.train() would start from.
  Rng model_rng(config.engine.seed);
  nn::Sequential model = nn::build_model(config.spec, model_rng);
  const std::size_t param_count = model.parameters().size();

  TrainSessionResult result;
  std::array<mpc::DetectionLog, 3> detection_logs;
  std::array<bool, 3> party_clean{true, true, true};

  std::vector<std::function<void()>> bodies;
  bodies.emplace_back([&] {
    train_service_owner_body(config.engine, model,
                             network.endpoint(core::kModelOwner),
                             config.train, config.num_owners,
                             &result.sequencer, &result.revealed);
  });
  for (int party = 0; party < core::kComputingParties; ++party) {
    bodies.emplace_back([&, party] {
      const auto slot = static_cast<std::size_t>(party);
      detection_logs[slot] = train_service_party_body(
          config.spec, config.engine, param_count, party,
          network.endpoint(party), config.train, &party_clean[slot],
          &result.party_rounds[slot]);
    });
  }
  for (int index = 0; index < config.num_owners; ++index) {
    bodies.emplace_back([&, index] {
      OwnerBehaviour behaviour;
      if (static_cast<std::size_t>(index) < config.owners.size()) {
        behaviour = config.owners[static_cast<std::size_t>(index)];
      }
      OwnerOptions options;
      options.seed = owner_base_seed(config.engine.seed, index);
      options.classes = config.spec.classes;
      options.batch_rows = config.owner_batch_rows;
      options.frac_bits = config.engine.frac_bits;
      options.poison = behaviour.poison;
      const data::Dataset shard =
          owner_shard(config.dataset, index, config.num_owners);
      TrainingOwner owner(network.endpoint(kFirstOwnerId + index), options);
      std::size_t made = 0;
      for (std::uint64_t seq = owner.hello();
           seq < config.submissions_per_owner; ++seq) {
        owner.submit(seq, shard);
        ++made;
        if (behaviour.crash_after_submissions != 0 &&
            made >= behaviour.crash_after_submissions) {
          return;  // abrupt exit — no stop notice, like a killed process
        }
      }
      owner.stop(config.submissions_per_owner);
    });
  }

  Stopwatch stopwatch;
  std::vector<std::exception_ptr> errors(bodies.size());
  std::vector<std::thread> threads;
  threads.reserve(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        bodies[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  result.wall_seconds = stopwatch.elapsed_seconds();
  result.traffic = network.traffic();
  result.clean = party_clean[0];

  for (const auto& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }

  if (!config.engine.metrics_out.empty()) {
    core::write_metrics_export(
        config.engine.metrics_out, obs::MetricsRegistry::global().snapshot(),
        obs::EventLog::global().snapshot(), result.traffic,
        session_cost(result.traffic, result.wall_seconds, detection_logs));
  }
  if (!config.engine.trace_out.empty()) {
    obs::Tracer::global().close();
  }
  return result;
}

bool apply_revealed_weights(const std::map<std::string, RingTensor>& revealed,
                            std::size_t epoch, std::size_t param_count,
                            int frac_bits, nn::Sequential& model) {
  const auto parameters = model.parameters();
  TRUSTDDL_REQUIRE(parameters.size() == param_count,
                   "train: parameter count mismatch");
  for (std::size_t i = 0; i < param_count; ++i) {
    const auto it = revealed.find(core::reveal_key(epoch, i));
    if (it == revealed.end()) {
      return false;
    }
    parameters[i]->value = to_real(it->second, frac_bits);
  }
  return true;
}

}  // namespace trustddl::train
