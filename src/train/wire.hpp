// Wire format of the multi-owner secure training service.
//
// Training-as-a-service reuses the serving layer's actor layout: K
// data owners join as client-style actors at ids kFirstOwnerId onward
// (transport sized core::kNumActors + num_owners; the single-owner
// slot 3 stays unused), and the model owner — trusted, and already the
// dealer and Softmax hub — is the single round sequencer, keeping the
// three computing parties SPMD.  Traffic per submission:
//
//   owner -> party       "trn/<seq>/x","trn/<seq>/y"  minibatch shares
//   owner -> model owner "trn/<seq>/notice"           submission notice
//   owner -> model owner "trn/hello"                  (re)join handshake
//   model owner -> owner "trn/hello/ack"              resume cursor
//   model owner -> party "trn/<round>/man"            round manifest
//
// `seq` is a per-owner monotonic submission counter; every message of
// one submission is matched by (sender, tag) alone.  The hello/ack
// handshake makes owners restartable: the ack carries the first seq
// the sequencer has NOT consumed, and owners derive each submission's
// minibatch and sharing randomness from (owner seed, seq), so a
// restarted owner regenerates byte-identical submissions for every
// seq the service still needs.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "core/roles.hpp"
#include "mpc/robust_aggregate.hpp"
#include "mpc/sharing.hpp"

namespace trustddl::train {

/// First actor id used for training data owners (after the five core
/// roles); owner k is actor kFirstOwnerId + k.
inline constexpr net::PartyId kFirstOwnerId = core::kNumActors;

std::string hello_tag();
std::string hello_ack_tag();
std::string notice_tag(std::uint64_t seq);
std::string input_x_tag(std::uint64_t seq);
std::string input_y_tag(std::uint64_t seq);
std::string manifest_tag(std::uint64_t round);

/// Kinds of owner -> sequencer notices.  kStop is the final message on
/// an owner's notice stream; its seq is one past the last submission.
enum class SubmitKind : std::uint8_t { kMinibatch = 0, kStop = 1 };

/// Owner -> sequencer notice for submission `seq` (`rows` labelled
/// minibatch rows were shared to the parties under the same seq).
struct SubmitNotice {
  SubmitKind kind = SubmitKind::kMinibatch;
  std::uint64_t seq = 0;
  std::uint64_t rows = 0;
};

Bytes encode_submit_notice(const SubmitNotice& notice);
SubmitNotice decode_submit_notice(Bytes payload);

/// Sequencer -> owner handshake reply: the owner resumes submitting
/// at `next_seq` (0 on a fresh session).
struct HelloAck {
  std::uint64_t next_seq = 0;
};

Bytes encode_hello(std::uint32_t protocol_version = 1);
std::uint32_t decode_hello(Bytes payload);
Bytes encode_hello_ack(const HelloAck& ack);
HelloAck decode_hello_ack(Bytes payload);

/// One owner's contribution to a training round.
struct TrainManifestEntry {
  net::PartyId owner = 0;
  std::uint64_t seq = 0;
  std::uint64_t rows = 0;
  /// Microseconds the submission waited at the sequencer between
  /// notice arrival and round cut (queue attribution for
  /// merge_traces.py, mirroring serve's ManifestEntry::queue_us).
  std::uint64_t queue_us = 0;
};

/// Sequencer -> party round instruction: which owners' submissions
/// form this round's per-owner gradients, in owner-id order (identical
/// at every party — the SPMD anchor of the whole service).
/// `shutdown` ends training cleanly; `suspend` asks the parties to
/// checkpoint and exit so a later session resumes at `round`.
struct RoundManifest {
  std::uint64_t round = 0;
  std::uint64_t epoch = 0;
  bool epoch_end = false;
  bool shutdown = false;
  bool suspend = false;
  std::vector<TrainManifestEntry> entries;

  std::size_t total_rows() const;
};

Bytes encode_round_manifest(const RoundManifest& manifest);
RoundManifest decode_round_manifest(Bytes payload);

/// Seed of owner `owner_index`'s submission stream, derived from the
/// session seed so in-memory and multi-process deployments share data
/// bit for bit.
std::uint64_t owner_base_seed(std::uint64_t session_seed, int owner_index);

/// Seed of ONE submission's randomness (minibatch sampling + secret
/// sharing).  Pure function of (owner seed, seq): a restarted owner
/// regenerates identical shares for any seq it is asked to resend.
std::uint64_t submission_seed(std::uint64_t owner_seed, std::uint64_t seq);

/// Knobs of one training session, identical at the sequencer and all
/// three parties (any divergence desynchronises the SPMD loop).
struct TrainConfig {
  mpc::AggregationRule rule = mpc::AggregationRule::kTrimmedMean;
  /// Owners trimmed per side under kTrimmedMean (clamped per round to
  /// the manifest's owner count).
  std::size_t trim = 1;
  /// A round is cut once at least this many owners have a pending
  /// submission (and either every live owner does, or the window
  /// expired).
  std::size_t quorum = 1;
  /// How long the sequencer waits for more owners once quorum is met.
  std::chrono::milliseconds round_window{50};
  /// How long a party waits for one owner's minibatch share before
  /// substituting a zero share (the trim window absorbs the garbage
  /// gradient exactly like a poisoned one).
  std::chrono::milliseconds input_wait{2000};
  std::size_t rounds_per_epoch = 4;
  std::size_t epochs = 1;
  /// Suspend (checkpoint + exit) after this many rounds; 0 = run to
  /// completion.  A later session with the same checkpoint_dir
  /// resumes at the saved round cursor.
  std::size_t max_rounds = 0;
  /// Consecutive rounds an owner may miss before it is declared
  /// dormant and stops counting toward "every live owner".
  std::size_t dormant_after_misses = 3;
  double learning_rate = 0.1;
  /// Momentum coefficient; 0 disables the velocity state entirely.
  double momentum = 0.0;
  /// Directory for TDCK checkpoints (parties + sequencer); empty
  /// disables checkpointing.
  std::string checkpoint_dir;

  std::size_t total_rounds() const { return epochs * rounds_per_epoch; }
};

}  // namespace trustddl::train
