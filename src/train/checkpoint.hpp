// TDCK checkpoint files for the multi-owner training service.
//
// Each party persists its model parameter shares (and optional
// momentum velocity shares) plus the round cursor; the sequencer
// persists the round cursor and each owner's consumed-submission
// cursor.  The format mirrors the TDST triple store: magic / version /
// provenance / role header, then the payload.  Provenance is the
// session seed, so a checkpoint dealt under a different seed (whose
// preprocessing stream and owner data would diverge) refuses to load
// instead of silently corrupting training.
//
// Resume is bit-identical at the VALUE level: under masked-open
// truncation every opened message is a pure function of input values
// and dealt material, so restoring value shares (any valid splitting)
// plus the triple-stream cursor reproduces the exact weight sequence
// of an uninterrupted run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpc/sharing.hpp"
#include "net/transport.hpp"

namespace trustddl::train {

/// One named parameter's persisted state.
struct CheckpointParam {
  std::string name;
  mpc::PartyShare value;
  /// Momentum velocity share; empty tensor when momentum is off.
  mpc::PartyShare velocity;
  bool has_velocity = false;
};

/// A computing party's training state between sessions.
struct PartyCheckpoint {
  std::uint64_t round = 0;
  std::uint64_t epoch = 0;
  std::vector<CheckpointParam> params;
};

/// The sequencer's state: the next round to cut and, per owner slot,
/// the next submission seq to consume.
struct SequencerCheckpoint {
  std::uint64_t round = 0;
  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> consumed;
};

/// File path helpers; `dir` must exist (created by the caller).
std::string party_checkpoint_path(const std::string& dir, net::PartyId party);
std::string sequencer_checkpoint_path(const std::string& dir);

void save_party_checkpoint(const std::string& path, std::uint64_t provenance,
                           net::PartyId party, const PartyCheckpoint& ckpt);
/// Returns false if the file does not exist; throws SerializationError
/// on a malformed file or a provenance/party mismatch.
bool load_party_checkpoint(const std::string& path, std::uint64_t provenance,
                           net::PartyId party, PartyCheckpoint& out);

void save_sequencer_checkpoint(const std::string& path,
                               std::uint64_t provenance,
                               const SequencerCheckpoint& ckpt);
bool load_sequencer_checkpoint(const std::string& path,
                               std::uint64_t provenance,
                               SequencerCheckpoint& out);

}  // namespace trustddl::train
