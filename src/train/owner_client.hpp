// Data-owner client of the multi-owner training service.
//
// An owner holds a private labelled dataset shard.  Per submission it
// samples a minibatch, secret-shares the fixed-point images and
// one-hot labels to the three computing parties, and notifies the
// sequencer.  ALL per-submission randomness (minibatch sampling and
// share splitting) is drawn from an Rng seeded by
// submission_seed(owner seed, seq), so an owner restarted after a
// crash or suspend regenerates byte-identical submissions for any seq
// the hello ack asks it to resume at.
//
// Poisoning attacks live here, in the owner's DATA SPACE, before
// sharing: the parties never see plaintext, so a malicious owner can
// only poison what it submits — exactly the threat the trimmed-mean /
// median aggregation window is sized to absorb.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "data/synthetic_mnist.hpp"
#include "net/transport.hpp"
#include "numeric/fixed_point.hpp"
#include "train/wire.hpp"

namespace trustddl::train {

/// Data-space poisoning modes for the malicious-owner experiments.
enum class PoisonMode : std::uint8_t {
  kNone = 0,
  /// Negate every pixel: gradients point away from the true descent
  /// direction.
  kSignFlip = 1,
  /// Multiply pixels by `factor`: a scaling attack that inflates the
  /// owner's gradient magnitude.
  kScale = 2,
  /// Rotate each label to (label + 1) mod classes.
  kLabelFlip = 3,
};

struct PoisonSpec {
  PoisonMode mode = PoisonMode::kNone;
  double factor = 10.0;  ///< kScale multiplier

  bool active() const { return mode != PoisonMode::kNone; }
};

const char* poison_mode_name(PoisonMode mode);

/// Parse "none", "sign-flip", "scale=<f>" / "scale", "label-flip".
PoisonSpec parse_poison_spec(const std::string& text);

/// Apply `poison` to a copy of `batch` (images and labels).
data::Dataset apply_poison(const data::Dataset& batch,
                           const PoisonSpec& poison, std::size_t classes);

struct OwnerOptions {
  /// Base seed of this owner's submission stream; use
  /// owner_base_seed(session_seed, owner_index) so all deployments
  /// agree.
  std::uint64_t seed = 1;
  std::size_t classes = 10;
  /// Minibatch rows sampled (with replacement) from the local shard
  /// per submission.
  std::size_t batch_rows = 8;
  int frac_bits = fx::kDefaultFracBits;
  PoisonSpec poison;
  std::chrono::milliseconds hello_timeout{30000};
};

class TrainingOwner {
 public:
  /// `endpoint` must use an owner actor id (kFirstOwnerId + index).
  TrainingOwner(net::Endpoint endpoint, OwnerOptions options);

  /// Join (or rejoin) the session: returns the seq of the first
  /// submission the sequencer still needs from us.
  std::uint64_t hello();

  /// Sample, (optionally) poison, and secret-share one minibatch under
  /// `seq`; returns the rows submitted.
  std::size_t submit(std::uint64_t seq, const data::Dataset& shard);

  /// Final notice; `seq` is one past the last submission.
  void stop(std::uint64_t seq);

 private:
  net::Endpoint endpoint_;
  OwnerOptions options_;
};

}  // namespace trustddl::train
