#include "train/server.hpp"

#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "mpc/share_serde.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace trustddl::train {
namespace {

constexpr const char* kLog = "train.server";

/// Generous bound for the next manifest: the sequencer may be waiting
/// on slow owners for a full round window.
constexpr auto kManifestTimeout = std::chrono::seconds(60);

mpc::PartyShare decode_share(Bytes payload) {
  ByteReader reader(std::move(payload));
  return mpc::read_party_share(reader);
}

}  // namespace

TrainServer::TrainServer(int party, net::Endpoint endpoint,
                         TrainConfig config, std::uint64_t provenance)
    : party_(party), endpoint_(endpoint), config_(std::move(config)),
      provenance_(provenance) {}

bool TrainServer::run(core::SecureModel& model, core::SecureExecContext& ctx,
                      core::OwnerLink& link, const nn::ModelSpec& spec) {
  const int frac_bits = ctx.mpc->frac_bits;
  const std::vector<core::SecureParameter*> params = model.parameters();
  const bool use_momentum = config_.momentum != 0.0;
  std::vector<mpc::PartyShare> velocity;
  if (use_momentum) {
    velocity.reserve(params.size());
    for (core::SecureParameter* param : params) {
      velocity.push_back(mpc::zero_share(param->value.shape()));
    }
  }

  std::uint64_t start_round = 0;
  if (!config_.checkpoint_dir.empty()) {
    PartyCheckpoint ckpt;
    if (load_party_checkpoint(
            party_checkpoint_path(config_.checkpoint_dir, party_),
            provenance_, static_cast<net::PartyId>(party_), ckpt)) {
      TRUSTDDL_REQUIRE(ckpt.params.size() == params.size(),
                       "train: checkpoint parameter count mismatch");
      for (std::size_t i = 0; i < params.size(); ++i) {
        TRUSTDDL_REQUIRE(
            ckpt.params[i].value.shape() == params[i]->value.shape(),
            "train: checkpoint parameter shape mismatch");
        params[i]->value = ckpt.params[i].value;
        if (use_momentum && ckpt.params[i].has_velocity) {
          velocity[i] = ckpt.params[i].velocity;
        }
      }
      start_round = ckpt.round;
      TRUSTDDL_LOG_INFO(kLog) << "party " << party_ << " resuming at round "
                              << start_round << " from checkpoint";
    }
  }

  const mpc::AggregateOptions agg_options{config_.rule, config_.trim,
                                          ctx.trunc_mode};
  const auto save = [&](std::uint64_t round, std::uint64_t epoch) {
    if (config_.checkpoint_dir.empty()) {
      return;
    }
    PartyCheckpoint ckpt;
    ckpt.round = round;
    ckpt.epoch = epoch;
    ckpt.params.reserve(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      CheckpointParam param;
      param.name = "p" + std::to_string(i);
      param.value = params[i]->value;
      if (use_momentum) {
        param.velocity = velocity[i];
        param.has_velocity = true;
      }
      ckpt.params.push_back(std::move(param));
    }
    save_party_checkpoint(
        party_checkpoint_path(config_.checkpoint_dir, party_), provenance_,
        static_cast<net::PartyId>(party_), ckpt);
  };

  for (std::uint64_t round = start_round;; ++round) {
    // Poll for the next manifest, spending idle gaps on triple-store
    // refills — the gaps between rounds are the training service's
    // offline phase.
    Bytes manifest_bytes;
    const auto deadline = std::chrono::steady_clock::now() + kManifestTimeout;
    while (!endpoint_.try_recv(core::kModelOwner, manifest_tag(round),
                               manifest_bytes)) {
      if (std::chrono::steady_clock::now() > deadline) {
        throw TimeoutError("train: no manifest " + std::to_string(round));
      }
      const std::size_t refilled =
          pipeline_ != nullptr ? pipeline_->refill_once() : 0;
      if (refilled == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    const RoundManifest manifest = decode_round_manifest(manifest_bytes);
    if (manifest.shutdown) {
      save(manifest.round, manifest.epoch);
      return true;
    }
    if (manifest.suspend) {
      save(manifest.round, manifest.epoch);
      TRUSTDDL_LOG_INFO(kLog) << "party " << party_
                              << " suspended before round " << round;
      return false;
    }
    TRUSTDDL_REQUIRE(!manifest.entries.empty(), "train: empty manifest");

    // Correlation scope first (so it outlives the span's destructor):
    // every protocol span of this round carries "round:<epoch>:<round>"
    // at every party, matching the sequencer's dispatch record.
    const obs::CorrelationScope corr(
        "round:" + std::to_string(manifest.epoch) + ":" +
        std::to_string(manifest.round));
    obs::trace_instant("train.manifest", party_, round,
                       "\"epoch\": " + std::to_string(manifest.epoch) +
                           ", \"entries\": " +
                           std::to_string(manifest.entries.size()));
    obs::HealthState::global().note_progress("train.last_round", round);
    obs::ScopedSpan span("train.round", party_, round);
    if (pipeline_ != nullptr && spec_ != nullptr) {
      std::vector<std::size_t> owner_rows;
      owner_rows.reserve(manifest.entries.size());
      for (const auto& entry : manifest.entries) {
        owner_rows.push_back(entry.rows);
      }
      pipeline_->plan(core::profile_train_round_demand(
          *spec_, owner_rows, ctx.trunc_mode, agg_options, use_momentum));
    }

    // Per-owner normalized gradients.  Gradients are scaled by 1/rows
    // BEFORE backward (not folded into the learning rate as in the
    // single-owner loop) so owners with different minibatch sizes
    // contribute comparable coordinates to the aggregation.
    std::vector<std::vector<mpc::PartyShare>> owner_grads(params.size());
    for (auto& grads : owner_grads) {
      grads.reserve(manifest.entries.size());
    }
    for (const auto& entry : manifest.entries) {
      TRUSTDDL_REQUIRE(entry.rows >= 1, "train: empty manifest entry");
      const Shape x_shape{entry.rows, spec.input_features};
      const Shape y_shape{entry.rows, spec.classes};
      mpc::PartyShare x = mpc::zero_share(x_shape);
      mpc::PartyShare y = mpc::zero_share(y_shape);
      try {
        x = decode_share(endpoint_.recv(entry.owner, input_x_tag(entry.seq),
                                        config_.input_wait));
        y = decode_share(endpoint_.recv(entry.owner, input_y_tag(entry.seq),
                                        config_.input_wait));
        TRUSTDDL_REQUIRE(x.shape() == x_shape && y.shape() == y_shape,
                         "train: input share shape mismatch");
      } catch (const Error& error) {
        // Missing or malformed minibatch: stay in lockstep with zero
        // shares — the resulting garbage gradient is absorbed by the
        // trim window exactly like a poisoned one.
        x = mpc::zero_share(x_shape);
        y = mpc::zero_share(y_shape);
        obs::count("train.party.input_substituted");
        TRUSTDDL_LOG_WARN(kLog)
            << "party " << party_ << " round " << round
            << ": substituting zero minibatch for owner " << entry.owner
            << " seq " << entry.seq << " (" << error.what() << ")";
      }

      model.zero_grads();
      const mpc::PartyShare probabilities = model.forward(ctx, x);
      mpc::PartyShare grad_logits = probabilities - y;
      grad_logits = ctx.rescale(grad_logits.scaled(
          fx::encode(1.0 / static_cast<double>(entry.rows), frac_bits)));
      model.backward_from_logit_grad(ctx, grad_logits);
      for (std::size_t i = 0; i < params.size(); ++i) {
        owner_grads[i].push_back(params[i]->grad);
      }
    }

    // Robust aggregation of the per-owner gradient shares: one
    // prepared call per parameter so all comparison and truncation
    // openings share rounds across the whole model.
    {
      mpc::OpenBatch batch(*ctx.mpc);
      std::vector<mpc::DeferredShare> aggregated;
      aggregated.reserve(params.size());
      mpc::AggregateStats totals;
      for (std::size_t i = 0; i < params.size(); ++i) {
        mpc::AggregateStats stats;
        aggregated.push_back(mpc::robust_aggregate_prepare(
            batch, *ctx.triples, owner_grads[i], agg_options, &stats));
        totals.values_submitted += stats.values_submitted;
        totals.values_aggregated += stats.values_aggregated;
        totals.values_trimmed += stats.values_trimmed;
        totals.comparisons += stats.comparisons;
      }
      batch.flush_all();
      for (std::size_t i = 0; i < params.size(); ++i) {
        params[i]->grad = aggregated[i].take();
      }
      obs::count("train.agg.values.submitted", totals.values_submitted);
      obs::count("train.agg.values.aggregated", totals.values_aggregated);
      obs::count("train.agg.values.trimmed", totals.values_trimmed);
      obs::count("train.agg.comparisons", totals.comparisons);
    }

    if (use_momentum) {
      // v <- m*v + g; the m*v rescales share one opening round.
      const std::uint64_t momentum_encoded =
          fx::encode(config_.momentum, frac_bits);
      mpc::OpenBatch batch(*ctx.mpc);
      std::vector<mpc::DeferredShare> damped;
      damped.reserve(params.size());
      for (std::size_t i = 0; i < params.size(); ++i) {
        damped.push_back(ctx.rescale_prepare(
            batch, velocity[i].scaled(momentum_encoded)));
      }
      batch.flush_all();
      for (std::size_t i = 0; i < params.size(); ++i) {
        velocity[i] = damped[i].take();
        velocity[i] += params[i]->grad;
        params[i]->grad = velocity[i];
      }
    }

    model.sgd_step(ctx, config_.learning_rate, frac_bits);
    ++rounds_;
    obs::count("train.party.rounds");

    if (manifest.epoch_end) {
      for (std::size_t i = 0; i < params.size(); ++i) {
        link.reveal(core::reveal_key(manifest.epoch, i), params[i]->value);
      }
    }
  }
}

mpc::DetectionLog train_service_party_body(
    const nn::ModelSpec& spec, const core::EngineConfig& config,
    std::size_t param_count, int party, net::Endpoint endpoint,
    const TrainConfig& train_config, bool* clean_out,
    std::uint64_t* rounds_out) {
  core::OwnerLink link(endpoint, party, std::chrono::seconds(60));
  core::SecureModel model(spec,
                          core::receive_parameters(endpoint, param_count));

  mpc::PartyContext pctx = core::make_party_context(config, party, endpoint);
  core::SecureExecContext sctx = core::make_exec_context(config, pctx, link);

  core::TriplePipeline pipeline(config, link, party, /*training=*/true);
  TrainServer server(party, endpoint, train_config, config.seed);
  if (pipeline.active()) {
    sctx.triples = &pipeline.source();
    server.set_pipeline(&pipeline, &spec);
  }
  const bool clean = server.run(model, sctx, link, spec);
  if (clean_out != nullptr) {
    *clean_out = clean;
  }
  if (rounds_out != nullptr) {
    *rounds_out = server.rounds_executed();
  }
  pipeline.shutdown();  // persist the store before the link closes
  // Both shutdown and suspend are orderly exits: release the owner
  // service so the sequencer's host thread can join it.
  link.stop();
  return pctx.detections;
}

void train_service_owner_body(
    const core::EngineConfig& config, nn::Sequential& model,
    net::Endpoint endpoint, const TrainConfig& train_config, int num_owners,
    SequencerStats* stats_out, std::map<std::string, RingTensor>* revealed_out) {
  // Same parameter-sharing seed derivation as single-owner training,
  // so a service deployment distributes bit-identical initial shares.
  Rng rng(config.seed * 101 + 3);
  core::share_parameters(model, endpoint, config.frac_bits, rng);

  core::ModelOwnerService service(
      endpoint, core::make_owner_service_config(config, /*training=*/true));
  std::exception_ptr service_error;
  std::thread service_thread([&] {
    try {
      service.run();
    } catch (...) {
      service_error = std::current_exception();
    }
  });

  RoundSequencer sequencer(endpoint, train_config, num_owners, config.seed);
  try {
    sequencer.run();
  } catch (...) {
    service_thread.join();
    throw;
  }
  service_thread.join();
  if (stats_out != nullptr) {
    *stats_out = sequencer.stats();
  }
  if (revealed_out != nullptr) {
    *revealed_out = service.revealed();
  }
  if (service_error) {
    std::rethrow_exception(service_error);
  }
}

}  // namespace trustddl::train
