// In-memory harness for multi-owner training sessions: spins up the
// three computing parties, the model owner (sequencer + owner
// service) and K data-owner clients as threads over one in-memory
// Network, runs the configured epochs, and returns the sequencer
// ledger, revealed epoch weights and traffic snapshot.  The TCP
// deployment (examples/trustddl_party --task train-serve +
// examples/trustddl_owner) runs the same bodies over TcpTransport and
// produces bit-identical weights for the same seeds.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "data/synthetic_mnist.hpp"
#include "net/transport.hpp"
#include "nn/model_zoo.hpp"
#include "train/owner_client.hpp"
#include "train/server.hpp"

namespace trustddl::train {

/// Behaviour of one harness-driven owner.
struct OwnerBehaviour {
  PoisonSpec poison;
  /// Exit abruptly (no stop notice) after this many submissions in
  /// this session; 0 runs to completion.  Models a killed owner
  /// process — the sequencer must degrade to quorum operation.
  std::size_t crash_after_submissions = 0;
};

struct TrainSessionConfig {
  nn::ModelSpec spec;
  core::EngineConfig engine;
  TrainConfig train;
  int num_owners = 3;
  /// Submissions each owner makes over its whole LIFETIME (across
  /// suspend/resume sessions: a resumed owner starts at the hello
  /// ack's seq and submits up to this bound).
  std::size_t submissions_per_owner = 4;
  std::size_t owner_batch_rows = 8;
  /// Per-owner behaviour; entries beyond the vector are honest.
  std::vector<OwnerBehaviour> owners;
  /// Training data, sharded round-robin across owners.
  data::Dataset dataset;
};

struct TrainSessionResult {
  SequencerStats sequencer;
  std::array<std::uint64_t, 3> party_rounds{};
  /// True on a shutdown manifest; false when the session suspended
  /// (train.max_rounds) and expects a resume session.
  bool clean = false;
  /// Epoch-end weight reveals: reveal_key(epoch, param) -> RingTensor.
  std::map<std::string, RingTensor> revealed;
  double wall_seconds = 0.0;
  net::TrafficSnapshot traffic;
};

/// Rows dataset.row % count == index — every owner gets a distinct,
/// near-equal shard.
data::Dataset owner_shard(const data::Dataset& dataset, int index, int count);

TrainSessionResult run_training_session(const TrainSessionConfig& config);

/// Load the revealed epoch-`epoch` weights into `model`'s parameters
/// (for plaintext accuracy evaluation).  Returns false when any of the
/// `param_count` reveal keys is missing.
bool apply_revealed_weights(const std::map<std::string, RingTensor>& revealed,
                            std::size_t epoch, std::size_t param_count,
                            int frac_bits, nn::Sequential& model);

}  // namespace trustddl::train
