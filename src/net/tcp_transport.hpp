// Real TCP transport: length-prefixed framed messages over a full
// mesh of peer connections between OS processes.
//
// Frame format (all integers little-endian):
//
//   magic(u32) | sender(u32) | tag_len(u32) | tag | payload_len(u64) | payload
//
// Rendezvous: every party binds a listener at construction; connect()
// dials every peer with a LOWER id (retrying with exponential backoff
// under NetworkConfig::connect) and accepts one connection from every
// HIGHER id, identified by a `magic | party_id` handshake.  Because
// listeners exist before anyone dials and the kernel backlog holds
// early arrivals, the sequential connect-then-accept order cannot
// deadlock.
//
// One reader thread per peer connection demultiplexes inbound frames
// into the same tag-keyed mailboxes the in-memory network uses, so
// recv timeouts map onto TimeoutError and the Byzantine/crash-fault
// handling in protocols_bt works unchanged over sockets.
// NetworkConfig::emulate_latency is honored the same way as in the
// in-memory network: inbound frames are stamped with a delivery time
// link_latency in the future, adding a modeled one-way delay on top
// of the real socket cost without blocking any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/mailbox.hpp"
#include "net/transport.hpp"

namespace trustddl::net {

/// Split "host:port" (e.g. "127.0.0.1:29500"); throws InvalidArgument
/// on malformed input.
struct TcpAddress {
  std::string host;
  std::uint16_t port = 0;
};
TcpAddress parse_address(const std::string& text);

/// One party's transport in a multi-process deployment.  Serves
/// exactly one endpoint (its own id); every other id is a remote peer.
class TcpTransport final : public Transport {
 public:
  /// Binds and listens on `listen_address` immediately (port 0 picks
  /// an ephemeral port, see bound_port()); peers attach via connect().
  TcpTransport(PartyId self, const std::string& listen_address,
               NetworkConfig config = {});
  ~TcpTransport() override;

  PartyId self() const { return self_; }
  std::uint16_t bound_port() const { return bound_port_; }

  /// Full-mesh rendezvous (see header comment).  `peer_addresses[i]`
  /// is party i's advertised listen address; the self entry is
  /// ignored.  Blocks until the mesh is up; throws TimeoutError when
  /// the RetryPolicy budget runs out.
  void connect(const std::vector<std::string>& peer_addresses);

  /// Subset-mesh rendezvous: link only the ids in `peers` (dialing
  /// the lower ones, accepting the higher ones).  `peer_addresses` is
  /// still indexed by party id; slots for non-peers may be empty.
  /// Topologies that are not a full mesh — e.g. serving, where clients
  /// talk to the parties and the model owner but parties never dial
  /// clients — must agree on pairs: for every a in b's list, b must be
  /// in a's list, or the rendezvous times out.
  void connect(const std::vector<std::string>& peer_addresses,
               const std::vector<PartyId>& peers);

  /// Fleet deployments: after the initial rendezvous, keep accepting
  /// connections from actors with id >= `min_id` on a background
  /// thread, for as long as the transport lives.  A hello from an id
  /// that is already connected replaces the link (the stale reader is
  /// joined first), so a client may drop and re-attach at any time.
  /// Ids at or above `min_id` also become *loss-tolerant*: send() to a
  /// departed or never-connected dynamic peer drops the frame (metered
  /// under net.dropped.*) instead of throwing, and a clean EOF from
  /// one marks it departed in HealthState rather than leaving a
  /// forever-stale heartbeat.  Call after connect(); at most once.
  void accept_dynamic_peers(PartyId min_id);

  /// Graceful teardown: closes every socket and joins the reader
  /// threads.  Idempotent; also run by the destructor.
  void shutdown();

  int num_parties() const override { return config_.num_parties; }
  std::chrono::milliseconds default_recv_timeout() const override {
    return config_.recv_timeout;
  }
  Endpoint endpoint(PartyId id) override;

  void send(Message message) override;
  Bytes blocking_recv(PartyId receiver, PartyId from, const std::string& tag,
                      std::chrono::milliseconds timeout) override;
  bool probe(PartyId receiver, PartyId from, const std::string& tag,
             Bytes& out) override;

  void set_fault_injector(std::shared_ptr<FaultInjector> injector) override;

  /// Per-process view: row `self()` counts frames sent, column
  /// `self()` counts frames received.  Aggregating the send rows of
  /// every party's transport reproduces the in-memory network's
  /// snapshot exactly (each message metered once, at its sender).
  TrafficSnapshot traffic() const override;
  void reset_traffic() override;

 private:
  struct Peer {
    int fd = -1;
    std::mutex send_mu;
    std::thread reader;
  };

  void start_reader(PartyId peer_id);
  void reader_loop(PartyId peer_id);
  int connect_with_retry(PartyId peer_id, const TcpAddress& address);
  void accept_higher_peers(int expected);
  void acceptor_loop();
  /// Installs `fd` as the live connection for dynamic peer `peer_id`,
  /// tearing down and reaping any stale predecessor link first.
  void install_dynamic_peer(PartyId peer_id, int fd);

  PartyId self_;
  NetworkConfig config_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{true};
  bool shut_down_ = false;
  std::mutex shutdown_mu_;
  /// First dynamic (loss-tolerant, hot-attachable) actor id; -1 means
  /// accept_dynamic_peers was never called.
  std::atomic<PartyId> dynamic_min_id_{-1};
  std::thread acceptor_;

  std::vector<std::unique_ptr<Peer>> peers_;          // [party id]
  std::vector<std::unique_ptr<TagMailbox>> inboxes_;  // [sender id]

  mutable std::mutex metrics_mu_;
  std::vector<std::vector<LinkMetrics>> link_metrics_;

  std::mutex injector_mu_;
  std::shared_ptr<FaultInjector> injector_;
};

/// All parties in one process, each with its own TcpTransport over
/// real loopback sockets — the engine and benchmarks use this to run
/// the unmodified five-actor thread topology over genuine TCP.
/// Construction binds every party to 127.0.0.1 on an ephemeral port
/// and performs the whole mesh rendezvous.
class TcpFabric final : public Transport {
 public:
  explicit TcpFabric(NetworkConfig config = {});
  ~TcpFabric() override;

  TcpTransport& transport(PartyId id) {
    return *transports_[static_cast<std::size_t>(id)];
  }

  int num_parties() const override { return config_.num_parties; }
  std::chrono::milliseconds default_recv_timeout() const override {
    return config_.recv_timeout;
  }

  void send(Message message) override;
  Bytes blocking_recv(PartyId receiver, PartyId from, const std::string& tag,
                      std::chrono::milliseconds timeout) override;
  bool probe(PartyId receiver, PartyId from, const std::string& tag,
             Bytes& out) override;

  void set_fault_injector(std::shared_ptr<FaultInjector> injector) override;

  /// Send rows of every party's transport: one metering event per
  /// message, matching the in-memory network's snapshot shape.
  TrafficSnapshot traffic() const override;
  void reset_traffic() override;

 private:
  NetworkConfig config_;
  std::vector<std::unique_ptr<TcpTransport>> transports_;
};

}  // namespace trustddl::net
