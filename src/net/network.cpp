#include "net/network.hpp"

#include <algorithm>
#include <thread>

#include "common/error.hpp"

namespace trustddl::net {

int Endpoint::num_parties() const {
  TRUSTDDL_ASSERT(network_ != nullptr);
  return network_->num_parties();
}

void Endpoint::send(PartyId to, const std::string& tag, Bytes payload) const {
  TRUSTDDL_ASSERT(network_ != nullptr);
  TRUSTDDL_REQUIRE(to >= 0 && to < network_->num_parties(),
                   "send: receiver out of range");
  TRUSTDDL_REQUIRE(to != id_, "send: party cannot message itself");
  Message message;
  message.sender = id_;
  message.receiver = to;
  message.tag = tag;
  message.payload = std::move(payload);
  network_->deliver(std::move(message));
}

Bytes Endpoint::recv(PartyId from, const std::string& tag) const {
  TRUSTDDL_ASSERT(network_ != nullptr);
  return network_->blocking_recv(id_, from, tag,
                                 network_->config().recv_timeout);
}

Bytes Endpoint::recv(PartyId from, const std::string& tag,
                     std::chrono::milliseconds timeout) const {
  TRUSTDDL_ASSERT(network_ != nullptr);
  return network_->blocking_recv(id_, from, tag, timeout);
}

bool Endpoint::try_recv(PartyId from, const std::string& tag,
                        Bytes& out) const {
  TRUSTDDL_ASSERT(network_ != nullptr);
  return network_->probe(id_, from, tag, out);
}

Network::Network(NetworkConfig config) : config_(config) {
  TRUSTDDL_REQUIRE(config_.num_parties >= 2, "network needs >= 2 parties");
  const auto n = static_cast<std::size_t>(config_.num_parties);
  mailboxes_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  link_metrics_.assign(n, std::vector<LinkMetrics>(n));
}

Endpoint Network::endpoint(PartyId id) {
  TRUSTDDL_REQUIRE(id >= 0 && id < config_.num_parties,
                   "endpoint id out of range");
  return Endpoint(this, id);
}

void Network::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  std::lock_guard<std::mutex> lock(injector_mu_);
  injector_ = std::move(injector);
}

void Network::deliver(Message message) {
  // Meter the traffic the sender put on the wire, even if a fault
  // later drops it: the bytes were still sent.
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    auto& link = link_metrics_[static_cast<std::size_t>(message.sender)]
                              [static_cast<std::size_t>(message.receiver)];
    link.messages += 1;
    link.bytes += message.wire_size();
  }

  FaultDecision decision;
  {
    std::lock_guard<std::mutex> lock(injector_mu_);
    if (injector_) {
      decision = injector_->on_message(message);
    }
  }
  if (decision.drop) {
    return;
  }
  if (decision.corrupt) {
    // Flip the last payload byte: enough to break any integrity check
    // while keeping length prefixes intact, so receivers exercise
    // their verification logic rather than their deserializer.
    if (!message.payload.empty()) {
      message.payload.back() ^= 0xa5;
    }
  }
  if (decision.delay.count() > 0) {
    std::this_thread::sleep_for(decision.delay);
  }
  if (config_.emulate_latency) {
    std::this_thread::sleep_for(config_.link_latency);
  }

  Mailbox& box = mailbox(message.receiver, message.sender);
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.pending.push_back(std::move(message));
  }
  box.cv.notify_all();
}

Bytes Network::blocking_recv(PartyId receiver, PartyId from,
                             const std::string& tag,
                             std::chrono::milliseconds timeout) {
  TRUSTDDL_REQUIRE(from >= 0 && from < config_.num_parties,
                   "recv: sender out of range");
  Mailbox& box = mailbox(receiver, from);
  std::unique_lock<std::mutex> lock(box.mu);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto it = std::find_if(box.pending.begin(), box.pending.end(),
                           [&](const Message& m) { return m.tag == tag; });
    if (it != box.pending.end()) {
      Bytes payload = std::move(it->payload);
      box.pending.erase(it);
      return payload;
    }
    if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Re-scan once in case of a late notify racing the timeout.
      it = std::find_if(box.pending.begin(), box.pending.end(),
                        [&](const Message& m) { return m.tag == tag; });
      if (it != box.pending.end()) {
        Bytes payload = std::move(it->payload);
        box.pending.erase(it);
        return payload;
      }
      throw TimeoutError("recv timeout: party " + std::to_string(receiver) +
                         " waiting for '" + tag + "' from party " +
                         std::to_string(from));
    }
  }
}

bool Network::probe(PartyId receiver, PartyId from, const std::string& tag,
                    Bytes& out) {
  Mailbox& box = mailbox(receiver, from);
  std::lock_guard<std::mutex> lock(box.mu);
  auto it = std::find_if(box.pending.begin(), box.pending.end(),
                         [&](const Message& m) { return m.tag == tag; });
  if (it == box.pending.end()) {
    return false;
  }
  out = std::move(it->payload);
  box.pending.erase(it);
  return true;
}

TrafficSnapshot Network::traffic() const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  TrafficSnapshot snapshot;
  snapshot.links = link_metrics_;
  for (const auto& row : link_metrics_) {
    for (const auto& link : row) {
      snapshot.total_messages += link.messages;
      snapshot.total_bytes += link.bytes;
    }
  }
  return snapshot;
}

void Network::reset_traffic() {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  for (auto& row : link_metrics_) {
    for (auto& link : row) {
      link = LinkMetrics{};
    }
  }
}

}  // namespace trustddl::net
