#include "net/network.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace trustddl::net {
namespace {

/// Cached registry references — stable for the process lifetime, so
/// the enabled hot path skips the name lookup.
obs::Histogram& recv_wait_histogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::global().histogram("net.recv_wait_us");
  return histogram;
}

obs::Histogram& msg_bytes_histogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::global().histogram("net.msg_bytes");
  return histogram;
}

}  // namespace

Network::Network(NetworkConfig config) : config_(config) {
  TRUSTDDL_REQUIRE(config_.num_parties >= 2, "network needs >= 2 parties");
  const auto n = static_cast<std::size_t>(config_.num_parties);
  mailboxes_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    mailboxes_.push_back(std::make_unique<TagMailbox>());
  }
  link_metrics_.assign(n, std::vector<LinkMetrics>(n));
}

void Network::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  std::lock_guard<std::mutex> lock(injector_mu_);
  injector_ = std::move(injector);
}

void Network::send(Message message) {
  // Meter the traffic the sender put on the wire, even if a fault
  // later drops it: the bytes were still sent.
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    auto& link = link_metrics_[static_cast<std::size_t>(message.sender)]
                              [static_cast<std::size_t>(message.receiver)];
    link.messages += 1;
    link.bytes += message.wire_size();
  }
  if (obs::metrics_enabled()) {
    const std::string cls = tag_class(message.tag);
    obs::count("net.sent.messages." + cls);
    obs::count("net.sent.bytes." + cls, message.wire_size());
    msg_bytes_histogram().observe(message.wire_size());
  }

  FaultDecision decision;
  {
    std::lock_guard<std::mutex> lock(injector_mu_);
    if (injector_) {
      decision = injector_->on_message(message);
    }
  }
  if (decision.drop) {
    return;
  }
  if (decision.corrupt) {
    // Flip the last payload byte: enough to break any integrity check
    // while keeping length prefixes intact, so receivers exercise
    // their verification logic rather than their deserializer.
    if (!message.payload.empty()) {
      message.payload.back() ^= 0xa5;
    }
  }

  // Emulated latency and fault delays are charged to the *receiver*
  // via the delivery timestamp; the sending thread never sleeps, so
  // its fan-out to the other parties overlaps like real links.
  auto deliver_at = TagMailbox::Clock::now() + decision.delay;
  if (config_.emulate_latency) {
    deliver_at += config_.link_latency;
  }
  mailbox(message.receiver, message.sender)
      .push(std::move(message), deliver_at);
}

Bytes Network::blocking_recv(PartyId receiver, PartyId from,
                             const std::string& tag,
                             std::chrono::milliseconds timeout) {
  TRUSTDDL_REQUIRE(from >= 0 && from < config_.num_parties,
                   "recv: sender out of range");
  const bool timed = obs::metrics_enabled();
  const std::uint64_t start_us = timed ? obs::now_us() : 0;
  auto payload = mailbox(receiver, from).recv(tag, timeout);
  if (timed) {
    recv_wait_histogram().observe(obs::now_us() - start_us);
  }
  if (!payload) {
    throw_recv_timeout(receiver, from, tag);
  }
  return std::move(*payload);
}

bool Network::probe(PartyId receiver, PartyId from, const std::string& tag,
                    Bytes& out) {
  return mailbox(receiver, from).try_recv(tag, out);
}

TrafficSnapshot Network::traffic() const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  TrafficSnapshot snapshot;
  snapshot.links = link_metrics_;
  for (const auto& row : link_metrics_) {
    for (const auto& link : row) {
      snapshot.total_messages += link.messages;
      snapshot.total_bytes += link.bytes;
    }
  }
  return snapshot;
}

void Network::reset_traffic() {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  for (auto& row : link_metrics_) {
    for (auto& link : row) {
      link = LinkMetrics{};
    }
  }
}

}  // namespace trustddl::net
