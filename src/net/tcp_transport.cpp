#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace trustddl::net {
namespace {

constexpr const char* kLog = "net.tcp";

constexpr std::uint32_t kMagic = 0x314c4454;  // "TDL1"
constexpr std::uint32_t kMaxTagLen = 1u << 16;
constexpr std::uint64_t kMaxPayloadLen = 1ull << 33;
constexpr std::size_t kFrameHeaderLen = 12;  // magic + sender + tag_len

void put_u32(std::uint8_t* out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

void put_u64(std::uint8_t* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  }
  return value;
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return value;
}

/// Read exactly `size` bytes; false on EOF/error (connection gone).
bool read_exact(int fd, std::uint8_t* out, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd, out + done, size - done, 0);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR)) {
      continue;
    }
    return false;  // orderly shutdown (0) or hard error
  }
  return true;
}

/// Write exactly `size` bytes; throws on a dead connection.
void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    throw ProtocolError(std::string("tcp send failed: ") +
                        std::strerror(errno));
  }
}

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

struct ResolvedAddress {
  sockaddr_storage storage{};
  socklen_t length = 0;
};

ResolvedAddress resolve(const TcpAddress& address) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string port = std::to_string(address.port);
  const int rc = ::getaddrinfo(address.host.c_str(), port.c_str(), &hints,
                               &result);
  if (rc != 0 || result == nullptr) {
    throw InvalidArgument("cannot resolve address '" + address.host + ":" +
                          port + "': " + ::gai_strerror(rc));
  }
  ResolvedAddress out;
  std::memcpy(&out.storage, result->ai_addr, result->ai_addrlen);
  out.length = result->ai_addrlen;
  ::freeaddrinfo(result);
  return out;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Bound the blocking reads on `fd` (0 ms clears the bound) — used
/// for the dynamic-acceptor hello so a half-open connection cannot
/// wedge the acceptor thread.
void set_recv_timeout(int fd, long ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

TcpAddress parse_address(const std::string& text) {
  const auto colon = text.rfind(':');
  TRUSTDDL_REQUIRE(colon != std::string::npos && colon > 0 &&
                       colon + 1 < text.size(),
                   "address must be host:port");
  TcpAddress address;
  address.host = text.substr(0, colon);
  // Port 0 is allowed: binding to it picks an ephemeral port.
  const long port = std::strtol(text.c_str() + colon + 1, nullptr, 10);
  TRUSTDDL_REQUIRE(port >= 0 && port <= 65535, "port out of range");
  address.port = static_cast<std::uint16_t>(port);
  return address;
}

TcpTransport::TcpTransport(PartyId self, const std::string& listen_address,
                           NetworkConfig config)
    : self_(self), config_(config) {
  TRUSTDDL_REQUIRE(config_.num_parties >= 2, "transport needs >= 2 parties");
  TRUSTDDL_REQUIRE(self >= 0 && self < config_.num_parties,
                   "self id out of range");
  const auto n = static_cast<std::size_t>(config_.num_parties);
  peers_.resize(n);
  inboxes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    peers_[i] = std::make_unique<Peer>();
    inboxes_[i] = std::make_unique<TagMailbox>();
  }
  link_metrics_.assign(n, std::vector<LinkMetrics>(n));

  const TcpAddress address = parse_address(listen_address);
  const ResolvedAddress resolved = resolve(address);
  listen_fd_ = ::socket(resolved.storage.ss_family, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw ProtocolError(std::string("tcp socket failed: ") +
                        std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_,
             reinterpret_cast<const sockaddr*>(&resolved.storage),
             resolved.length) != 0 ||
      ::listen(listen_fd_, config_.num_parties + 8) != 0) {
    const std::string reason = std::strerror(errno);
    close_quietly(listen_fd_);
    throw ProtocolError("tcp bind/listen on " + listen_address +
                        " failed: " + reason);
  }
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    if (bound.ss_family == AF_INET) {
      bound_port_ = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      bound_port_ =
          ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
    }
  }
}

TcpTransport::~TcpTransport() { shutdown(); }

int TcpTransport::connect_with_retry(PartyId peer_id,
                                     const TcpAddress& address) {
  TRUSTDDL_REQUIRE(address.port != 0, "cannot dial port 0");
  const ResolvedAddress resolved = resolve(address);
  const auto deadline =
      std::chrono::steady_clock::now() + config_.connect.connect_timeout;
  auto backoff = config_.connect.initial_backoff;
  for (;;) {
    const int fd = ::socket(resolved.storage.ss_family, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<const sockaddr*>(&resolved.storage),
                  resolved.length) == 0) {
      set_nodelay(fd);
      // Handshake: tell the acceptor who dialed.
      std::uint8_t hello[8];
      put_u32(hello, kMagic);
      put_u32(hello + 4, static_cast<std::uint32_t>(self_));
      write_all(fd, hello, sizeof(hello));
      return fd;
    }
    int closing = fd;
    close_quietly(closing);
    if (std::chrono::steady_clock::now() + backoff > deadline) {
      throw TimeoutError("tcp rendezvous: party " + std::to_string(self_) +
                         " could not connect to party " +
                         std::to_string(peer_id) + " at " + address.host +
                         ":" + std::to_string(address.port) + " within " +
                         std::to_string(config_.connect.connect_timeout
                                            .count()) +
                         " ms");
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(
        std::chrono::milliseconds(static_cast<long>(
            static_cast<double>(backoff.count()) *
            config_.connect.backoff_multiplier)),
        config_.connect.max_backoff);
  }
}

void TcpTransport::accept_higher_peers(int expected) {
  const auto deadline =
      std::chrono::steady_clock::now() + config_.connect.connect_timeout;
  int accepted = 0;
  while (accepted < expected) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      throw TimeoutError("tcp rendezvous: party " + std::to_string(self_) +
                         " timed out waiting for " +
                         std::to_string(expected - accepted) +
                         " inbound peer connection(s)");
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (rc <= 0) {
      continue;  // timeout re-checked above; EINTR retried
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    std::uint8_t hello[8];
    if (!read_exact(fd, hello, sizeof(hello)) ||
        get_u32(hello) != kMagic) {
      TRUSTDDL_LOG_WARN(kLog) << "rejecting connection with bad handshake";
      close_quietly(fd);
      continue;
    }
    const auto peer_id = static_cast<PartyId>(get_u32(hello + 4));
    if (peer_id <= self_ || peer_id >= config_.num_parties ||
        peers_[static_cast<std::size_t>(peer_id)]->fd >= 0) {
      TRUSTDDL_LOG_WARN(kLog)
          << "rejecting connection claiming party " << peer_id;
      close_quietly(fd);
      continue;
    }
    set_nodelay(fd);
    peers_[static_cast<std::size_t>(peer_id)]->fd = fd;
    start_reader(peer_id);
    ++accepted;
  }
}

void TcpTransport::connect(const std::vector<std::string>& peer_addresses) {
  std::vector<PartyId> peers;
  peers.reserve(static_cast<std::size_t>(config_.num_parties) - 1);
  for (PartyId id = 0; id < config_.num_parties; ++id) {
    if (id != self_) {
      peers.push_back(id);
    }
  }
  connect(peer_addresses, peers);
}

void TcpTransport::accept_dynamic_peers(PartyId min_id) {
  TRUSTDDL_REQUIRE(min_id > self_ && min_id < config_.num_parties,
                   "accept_dynamic_peers: min_id must be above self and "
                   "inside the actor space");
  TRUSTDDL_REQUIRE(dynamic_min_id_.load() < 0,
                   "accept_dynamic_peers: already accepting");
  dynamic_min_id_.store(min_id);
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

void TcpTransport::acceptor_loop() {
  while (running_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc <= 0) {
      continue;  // periodic running_ re-check; EINTR retried
    }
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
      return;  // listener torn down
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    // Hello under a read bound: a connection that never says who it
    // is gets dropped instead of wedging the acceptor.
    set_recv_timeout(fd, 2000);
    std::uint8_t hello[8];
    const bool ok = read_exact(fd, hello, sizeof(hello));
    set_recv_timeout(fd, 0);
    if (!ok || get_u32(hello) != kMagic) {
      TRUSTDDL_LOG_WARN(kLog)
          << "party " << self_
          << ": rejecting dynamic connection with bad handshake";
      close_quietly(fd);
      continue;
    }
    const auto peer_id = static_cast<PartyId>(get_u32(hello + 4));
    if (peer_id < dynamic_min_id_.load() || peer_id >= config_.num_parties ||
        peer_id == self_) {
      TRUSTDDL_LOG_WARN(kLog)
          << "party " << self_
          << ": rejecting dynamic connection claiming actor " << peer_id;
      close_quietly(fd);
      continue;
    }
    if (!running_.load()) {
      close_quietly(fd);
      return;
    }
    set_nodelay(fd);
    install_dynamic_peer(peer_id, fd);
  }
}

void TcpTransport::install_dynamic_peer(PartyId peer_id, int fd) {
  Peer& peer = *peers_[static_cast<std::size_t>(peer_id)];
  int old_fd = -1;
  {
    std::lock_guard<std::mutex> lock(peer.send_mu);
    old_fd = peer.fd;
    peer.fd = -1;  // sends drop while the link is swapped
  }
  if (old_fd >= 0) {
    // Wake the stale reader (client reconnected before its EOF was
    // seen, e.g. after a crash with no FIN).
    ::shutdown(old_fd, SHUT_RDWR);
  }
  if (peer.reader.joinable()) {
    // Reap the previous connection's reader before the slot is
    // reused; reader_loop caches its fd at entry, so replacing the
    // link without this join would leak a thread reading a dead
    // socket.
    peer.reader.join();
  }
  if (old_fd >= 0) {
    ::close(old_fd);
    TRUSTDDL_LOG_INFO(kLog) << "party " << self_ << ": actor " << peer_id
                            << " reconnected; stale link replaced";
  }
  {
    std::lock_guard<std::mutex> lock(peer.send_mu);
    peer.fd = fd;
  }
  start_reader(peer_id);
  obs::HealthState::global().note_peer(static_cast<int>(peer_id));
  if (obs::metrics_enabled()) {
    obs::count("net.dynamic.accepts");
  }
}

void TcpTransport::connect(const std::vector<std::string>& peer_addresses,
                           const std::vector<PartyId>& peers) {
  TRUSTDDL_REQUIRE(
      peer_addresses.size() ==
          static_cast<std::size_t>(config_.num_parties),
      "connect: need one address slot per party");
  // Dial lower ids first; their listeners have existed since
  // construction, so at worst we retry while the peer process starts.
  int higher = 0;
  for (const PartyId peer : peers) {
    TRUSTDDL_REQUIRE(peer >= 0 && peer < config_.num_parties &&
                         peer != self_,
                     "connect: invalid peer id");
    if (peer > self_) {
      ++higher;
      continue;
    }
    const TcpAddress address =
        parse_address(peer_addresses[static_cast<std::size_t>(peer)]);
    peers_[static_cast<std::size_t>(peer)]->fd =
        connect_with_retry(peer, address);
    start_reader(peer);
  }
  accept_higher_peers(higher);
}

void TcpTransport::start_reader(PartyId peer_id) {
  Peer& peer = *peers_[static_cast<std::size_t>(peer_id)];
  peer.reader = std::thread([this, peer_id] { reader_loop(peer_id); });
}

void TcpTransport::reader_loop(PartyId peer_id) {
  const int fd = peers_[static_cast<std::size_t>(peer_id)]->fd;
  std::vector<std::uint8_t> scratch;
  for (;;) {
    std::uint8_t header[kFrameHeaderLen];
    if (!read_exact(fd, header, sizeof(header))) {
      break;
    }
    const std::uint32_t magic = get_u32(header);
    const auto sender = static_cast<PartyId>(get_u32(header + 4));
    const std::uint32_t tag_len = get_u32(header + 8);
    if (magic != kMagic || sender != peer_id || tag_len > kMaxTagLen) {
      if (running_.load()) {
        TRUSTDDL_LOG_WARN(kLog)
            << "party " << self_ << ": malformed frame from peer "
            << peer_id << "; closing link";
      }
      break;
    }
    Message message;
    message.sender = sender;
    message.receiver = self_;
    message.tag.resize(tag_len);
    scratch.resize(tag_len + 8);
    if (!read_exact(fd, scratch.data(), tag_len + 8)) {
      break;
    }
    std::memcpy(message.tag.data(), scratch.data(), tag_len);
    const std::uint64_t payload_len = get_u64(scratch.data() + tag_len);
    if (payload_len > kMaxPayloadLen) {
      TRUSTDDL_LOG_WARN(kLog)
          << "party " << self_ << ": oversized frame ("
          << payload_len << " bytes) from peer " << peer_id
          << "; closing link";
      break;
    }
    message.payload.resize(payload_len);
    if (payload_len > 0 &&
        !read_exact(fd, message.payload.data(), payload_len)) {
      break;
    }
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      auto& link = link_metrics_[static_cast<std::size_t>(sender)]
                                [static_cast<std::size_t>(self_)];
      link.messages += 1;
      link.bytes += message.wire_size();
    }
    // Heartbeat for /healthz: any received frame refreshes the peer's
    // freshness stamp (one relaxed store when an admin server is up).
    obs::HealthState::global().note_peer(static_cast<int>(sender));
    // Emulated link latency is applied on the receiving side, exactly
    // like the in-memory network: the frame is already here, but it
    // only becomes visible to recv() once the modeled one-way delay
    // has elapsed.  Nobody blocks, so independent messages overlap.
    auto deliver_at = TagMailbox::Clock::now();
    if (config_.emulate_latency) {
      deliver_at += config_.link_latency;
    }
    inboxes_[static_cast<std::size_t>(sender)]->push(std::move(message),
                                                    deliver_at);
  }
  // Dynamic peers own their EOF: close the dead socket (unless a
  // reconnect already swapped it out) and mark the actor departed so
  // /healthz doesn't report a gone client as a stale link forever.
  const PartyId dynamic_min = dynamic_min_id_.load();
  if (dynamic_min >= 0 && peer_id >= dynamic_min) {
    Peer& peer = *peers_[static_cast<std::size_t>(peer_id)];
    {
      std::lock_guard<std::mutex> lock(peer.send_mu);
      if (peer.fd == fd) {
        ::close(peer.fd);
        peer.fd = -1;
      }
    }
    obs::HealthState::global().note_peer_departed(static_cast<int>(peer_id));
    if (running_.load()) {
      TRUSTDDL_LOG_INFO(kLog) << "party " << self_ << ": dynamic actor "
                              << peer_id << " disconnected";
    }
  }
}

Endpoint TcpTransport::endpoint(PartyId id) {
  TRUSTDDL_REQUIRE(id == self_,
                   "TcpTransport only serves its own party's endpoint");
  return make_endpoint(id);
}

void TcpTransport::send(Message message) {
  TRUSTDDL_REQUIRE(message.sender == self_,
                   "TcpTransport can only send as its own party");
  TRUSTDDL_REQUIRE(message.receiver >= 0 &&
                       message.receiver < config_.num_parties &&
                       message.receiver != self_,
                   "send: receiver out of range");
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    auto& link = link_metrics_[static_cast<std::size_t>(self_)]
                              [static_cast<std::size_t>(message.receiver)];
    link.messages += 1;
    link.bytes += message.wire_size();
  }
  if (obs::metrics_enabled()) {
    const std::string cls = tag_class(message.tag);
    obs::count("net.sent.messages." + cls);
    obs::count("net.sent.bytes." + cls, message.wire_size());
    obs::observe("net.msg_bytes", message.wire_size());
  }

  FaultDecision decision;
  {
    std::lock_guard<std::mutex> lock(injector_mu_);
    if (injector_) {
      decision = injector_->on_message(message);
    }
  }
  if (decision.drop) {
    return;  // metered but never written, like the in-memory network
  }
  if (decision.corrupt && !message.payload.empty()) {
    message.payload.back() ^= 0xa5;
  }
  if (decision.delay.count() > 0) {
    // Injected delays are a test-only feature; the frame format has no
    // delivery-time field, so the sender sleeps.  Emulated *latency*
    // is never applied here — the wire provides the real thing.
    std::this_thread::sleep_for(decision.delay);
  }

  Peer& peer = *peers_[static_cast<std::size_t>(message.receiver)];
  std::vector<std::uint8_t> frame(kFrameHeaderLen + message.tag.size() + 8 +
                                  message.payload.size());
  put_u32(frame.data(), kMagic);
  put_u32(frame.data() + 4, static_cast<std::uint32_t>(self_));
  put_u32(frame.data() + 8, static_cast<std::uint32_t>(message.tag.size()));
  std::memcpy(frame.data() + kFrameHeaderLen, message.tag.data(),
              message.tag.size());
  put_u64(frame.data() + kFrameHeaderLen + message.tag.size(),
          message.payload.size());
  std::memcpy(frame.data() + kFrameHeaderLen + message.tag.size() + 8,
              message.payload.data(), message.payload.size());

  std::lock_guard<std::mutex> lock(peer.send_mu);
  const PartyId dynamic_min = dynamic_min_id_.load();
  if (dynamic_min >= 0 && message.receiver >= dynamic_min) {
    // Loss-tolerant lane: a departed client must not take its serving
    // party down with an EPIPE — drop the frame and count it.
    if (peer.fd < 0) {
      if (obs::metrics_enabled()) {
        obs::count("net.dropped.peer_gone");
      }
      return;
    }
    try {
      write_all(peer.fd, frame.data(), frame.size());
    } catch (const ProtocolError&) {
      // Wake the reader with an EOF; its cleanup closes the fd and
      // marks the peer departed.
      ::shutdown(peer.fd, SHUT_RDWR);
      if (obs::metrics_enabled()) {
        obs::count("net.dropped.peer_gone");
      }
    }
    return;
  }
  TRUSTDDL_REQUIRE(peer.fd >= 0, "send: no connection to receiver");
  write_all(peer.fd, frame.data(), frame.size());
}

Bytes TcpTransport::blocking_recv(PartyId receiver, PartyId from,
                                  const std::string& tag,
                                  std::chrono::milliseconds timeout) {
  TRUSTDDL_REQUIRE(receiver == self_,
                   "TcpTransport can only receive as its own party");
  TRUSTDDL_REQUIRE(from >= 0 && from < config_.num_parties && from != self_,
                   "recv: sender out of range");
  const bool timed = obs::metrics_enabled();
  const std::uint64_t start_us = timed ? obs::now_us() : 0;
  auto payload = inboxes_[static_cast<std::size_t>(from)]->recv(tag, timeout);
  if (timed) {
    obs::observe("net.recv_wait_us", obs::now_us() - start_us);
  }
  if (!payload) {
    throw_recv_timeout(receiver, from, tag);
  }
  return std::move(*payload);
}

bool TcpTransport::probe(PartyId receiver, PartyId from,
                         const std::string& tag, Bytes& out) {
  TRUSTDDL_REQUIRE(receiver == self_,
                   "TcpTransport can only receive as its own party");
  return inboxes_[static_cast<std::size_t>(from)]->try_recv(tag, out);
}

void TcpTransport::set_fault_injector(
    std::shared_ptr<FaultInjector> injector) {
  std::lock_guard<std::mutex> lock(injector_mu_);
  injector_ = std::move(injector);
}

TrafficSnapshot TcpTransport::traffic() const {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  TrafficSnapshot snapshot;
  snapshot.links = link_metrics_;
  // The matrix holds both this party's sends (row self_) and its
  // receipts (column self_); the totals count each message once — the
  // sender row only — matching the in-memory network's semantics.
  // Receipt cells stay in `links` so callers can verify delivery.
  for (const auto& link : link_metrics_[static_cast<std::size_t>(self_)]) {
    snapshot.total_messages += link.messages;
    snapshot.total_bytes += link.bytes;
  }
  return snapshot;
}

void TcpTransport::reset_traffic() {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  for (auto& row : link_metrics_) {
    for (auto& link : row) {
      link = LinkMetrics{};
    }
  }
}

void TcpTransport::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) {
      return;
    }
    shut_down_ = true;
  }
  running_.store(false);
  // Shutting down the sockets wakes every reader blocked in recv();
  // fds are closed only after the join so no reader touches a reused
  // descriptor.  The dynamic acceptor is reaped first so no new links
  // install while the peer table is being torn down.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  for (auto& peer : peers_) {
    // send_mu serializes against a dynamic reader's EOF cleanup
    // closing (and -1-ing) the same fd concurrently.
    std::lock_guard<std::mutex> lock(peer->send_mu);
    if (peer->fd >= 0) {
      ::shutdown(peer->fd, SHUT_RDWR);
    }
  }
  for (auto& peer : peers_) {
    if (peer->reader.joinable()) {
      peer->reader.join();
    }
    std::lock_guard<std::mutex> lock(peer->send_mu);
    close_quietly(peer->fd);
  }
  close_quietly(listen_fd_);
}

TcpFabric::TcpFabric(NetworkConfig config) : config_(config) {
  const auto n = static_cast<std::size_t>(config_.num_parties);
  transports_.reserve(n);
  std::vector<std::string> addresses(n);
  for (std::size_t id = 0; id < n; ++id) {
    transports_.push_back(std::make_unique<TcpTransport>(
        static_cast<PartyId>(id), "127.0.0.1:0", config_));
    addresses[id] =
        "127.0.0.1:" + std::to_string(transports_[id]->bound_port());
  }
  // The rendezvous blocks until the mesh is up, so every party must
  // run it concurrently.
  std::vector<std::exception_ptr> errors(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      try {
        transports_[id]->connect(addresses);
      } catch (...) {
        errors[id] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (const auto& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

TcpFabric::~TcpFabric() {
  for (auto& transport : transports_) {
    transport->shutdown();
  }
}

void TcpFabric::send(Message message) {
  transport(message.sender).send(std::move(message));
}

Bytes TcpFabric::blocking_recv(PartyId receiver, PartyId from,
                               const std::string& tag,
                               std::chrono::milliseconds timeout) {
  return transport(receiver).blocking_recv(receiver, from, tag, timeout);
}

bool TcpFabric::probe(PartyId receiver, PartyId from, const std::string& tag,
                      Bytes& out) {
  return transport(receiver).probe(receiver, from, tag, out);
}

void TcpFabric::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  for (auto& transport : transports_) {
    transport->set_fault_injector(injector);
  }
}

TrafficSnapshot TcpFabric::traffic() const {
  const auto n = static_cast<std::size_t>(config_.num_parties);
  TrafficSnapshot snapshot;
  snapshot.links.assign(n, std::vector<LinkMetrics>(n));
  for (std::size_t sender = 0; sender < n; ++sender) {
    snapshot.links[sender] = transports_[sender]->traffic().links[sender];
    for (const auto& link : snapshot.links[sender]) {
      snapshot.total_messages += link.messages;
      snapshot.total_bytes += link.bytes;
    }
  }
  return snapshot;
}

void TcpFabric::reset_traffic() {
  for (auto& transport : transports_) {
    transport->reset_traffic();
  }
}

}  // namespace trustddl::net
