#include "net/transport.hpp"

#include "common/error.hpp"

namespace trustddl::net {

void TrafficSnapshot::reset() {
  for (auto& row : links) {
    for (auto& cell : row) {
      cell = LinkMetrics{};
    }
  }
  total_messages = 0;
  total_bytes = 0;
}

TrafficSnapshot TrafficSnapshot::diff(const TrafficSnapshot& before) const {
  TrafficSnapshot delta = *this;
  if (before.links.empty()) {
    return delta;
  }
  TRUSTDDL_REQUIRE(before.links.size() == links.size(),
                   "TrafficSnapshot::diff: shape mismatch");
  for (std::size_t i = 0; i < links.size(); ++i) {
    TRUSTDDL_REQUIRE(before.links[i].size() == links[i].size(),
                     "TrafficSnapshot::diff: shape mismatch");
    for (std::size_t j = 0; j < links[i].size(); ++j) {
      delta.links[i][j].messages -= before.links[i][j].messages;
      delta.links[i][j].bytes -= before.links[i][j].bytes;
    }
  }
  delta.total_messages -= before.total_messages;
  delta.total_bytes -= before.total_bytes;
  return delta;
}

int Endpoint::num_parties() const {
  TRUSTDDL_ASSERT(transport_ != nullptr);
  return transport_->num_parties();
}

void Endpoint::send(PartyId to, const std::string& tag, Bytes payload) const {
  TRUSTDDL_ASSERT(transport_ != nullptr);
  TRUSTDDL_REQUIRE(to >= 0 && to < transport_->num_parties(),
                   "send: receiver out of range");
  TRUSTDDL_REQUIRE(to != id_, "send: party cannot message itself");
  Message message;
  message.sender = id_;
  message.receiver = to;
  message.tag = tag;
  message.payload = std::move(payload);
  transport_->send(std::move(message));
}

Bytes Endpoint::recv(PartyId from, const std::string& tag) const {
  TRUSTDDL_ASSERT(transport_ != nullptr);
  return transport_->blocking_recv(id_, from, tag,
                                   transport_->default_recv_timeout());
}

Bytes Endpoint::recv(PartyId from, const std::string& tag,
                     std::chrono::milliseconds timeout) const {
  TRUSTDDL_ASSERT(transport_ != nullptr);
  return transport_->blocking_recv(id_, from, tag, timeout);
}

bool Endpoint::try_recv(PartyId from, const std::string& tag,
                        Bytes& out) const {
  TRUSTDDL_ASSERT(transport_ != nullptr);
  return transport_->probe(id_, from, tag, out);
}

Endpoint Transport::endpoint(PartyId id) {
  TRUSTDDL_REQUIRE(id >= 0 && id < num_parties(),
                   "endpoint id out of range");
  return make_endpoint(id);
}

void throw_recv_timeout(PartyId receiver, PartyId from,
                        const std::string& tag) {
  throw TimeoutError("recv timeout: party " + std::to_string(receiver) +
                     " waiting for '" + tag + "' from party " +
                     std::to_string(from));
}

std::string tag_class(const std::string& tag) {
  const std::size_t last_slash = tag.rfind('/');
  if (last_slash == std::string::npos) {
    return tag;
  }
  const std::string last = tag.substr(last_slash + 1);
  const bool numeric =
      !last.empty() &&
      last.find_first_not_of("0123456789") == std::string::npos;
  if (!numeric) {
    return last;
  }
  return tag.substr(0, tag.find('/'));
}

}  // namespace trustddl::net
