#include "net/transport.hpp"

#include "common/error.hpp"

namespace trustddl::net {

int Endpoint::num_parties() const {
  TRUSTDDL_ASSERT(transport_ != nullptr);
  return transport_->num_parties();
}

void Endpoint::send(PartyId to, const std::string& tag, Bytes payload) const {
  TRUSTDDL_ASSERT(transport_ != nullptr);
  TRUSTDDL_REQUIRE(to >= 0 && to < transport_->num_parties(),
                   "send: receiver out of range");
  TRUSTDDL_REQUIRE(to != id_, "send: party cannot message itself");
  Message message;
  message.sender = id_;
  message.receiver = to;
  message.tag = tag;
  message.payload = std::move(payload);
  transport_->send(std::move(message));
}

Bytes Endpoint::recv(PartyId from, const std::string& tag) const {
  TRUSTDDL_ASSERT(transport_ != nullptr);
  return transport_->blocking_recv(id_, from, tag,
                                   transport_->default_recv_timeout());
}

Bytes Endpoint::recv(PartyId from, const std::string& tag,
                     std::chrono::milliseconds timeout) const {
  TRUSTDDL_ASSERT(transport_ != nullptr);
  return transport_->blocking_recv(id_, from, tag, timeout);
}

bool Endpoint::try_recv(PartyId from, const std::string& tag,
                        Bytes& out) const {
  TRUSTDDL_ASSERT(transport_ != nullptr);
  return transport_->probe(id_, from, tag, out);
}

Endpoint Transport::endpoint(PartyId id) {
  TRUSTDDL_REQUIRE(id >= 0 && id < num_parties(),
                   "endpoint id out of range");
  return make_endpoint(id);
}

void throw_recv_timeout(PartyId receiver, PartyId from,
                        const std::string& tag) {
  throw TimeoutError("recv timeout: party " + std::to_string(receiver) +
                     " waiting for '" + tag + "' from party " +
                     std::to_string(from));
}

}  // namespace trustddl::net
