// Transport-level fault injection.
//
// Protocol-level Byzantine behaviour (wrong shares, commitment
// violations) lives in mpc/adversary.hpp; this hook models the
// *transport* misbehaviour the paper discusses in §III-B — dropped and
// delayed messages — plus bit-level corruption for testing the
// commitment check.
#pragma once

#include <chrono>
#include <memory>

#include "net/message.hpp"

namespace trustddl::net {

/// Decision returned by a fault injector for one in-flight message.
struct FaultDecision {
  bool drop = false;
  std::chrono::milliseconds delay{0};
  /// If true, flip bits of the payload before delivery.
  bool corrupt = false;
};

/// Interface consulted for every message before delivery.  Must be
/// thread-safe: the network calls it from every sending thread.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultDecision on_message(const Message& message) = 0;
};

/// Injector that never interferes.
class NoFaults final : public FaultInjector {
 public:
  FaultDecision on_message(const Message&) override { return {}; }
};

}  // namespace trustddl::net
