// Transport abstraction for the inter-party network.
//
// Protocols talk to `Endpoint` (send / blocking tag-matched recv /
// try_recv); an Endpoint is a thin handle onto a `Transport`, of which
// two implementations exist:
//   * net::Network      — the in-process mailbox network (network.hpp),
//     parties on threads, optional emulated latency;
//   * net::TcpTransport — real length-prefixed frames over a full mesh
//     of TCP connections between OS processes (tcp_transport.hpp).
// Both meter every directed link and map receive expiry onto
// TimeoutError, so the Byzantine/crash-fault handling in mpc/ works
// identically over either.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/fault_injector.hpp"
#include "net/message.hpp"

namespace trustddl::net {

/// Connection-establishment policy shared by the TCP rendezvous logic
/// (and any future reconnecting transport): how long to keep trying,
/// and how the retry backoff grows.
struct RetryPolicy {
  /// Total budget for establishing one peer connection (covers every
  /// retry) and for awaiting inbound peers.
  std::chrono::milliseconds connect_timeout{10000};
  std::chrono::milliseconds initial_backoff{20};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{500};
};

struct NetworkConfig {
  int num_parties = 3;
  /// Default recv() wait bound; protocols treat expiry as a dropped
  /// message.  Overridable per call via Endpoint::recv(from, tag, t).
  std::chrono::milliseconds recv_timeout{2000};
  /// If true, the in-memory network stamps each message with an
  /// earliest-delivery time `link_latency` in the future to emulate a
  /// LAN; off by default so tests stay fast.  Ignored by TcpTransport
  /// (real links have real latency).
  bool emulate_latency = false;
  std::chrono::microseconds link_latency{50};
  /// TCP rendezvous retry policy (unused by the in-memory network).
  RetryPolicy connect{};
};

/// Byte/message counters for one directed link.
struct LinkMetrics {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Aggregated traffic snapshot.
struct TrafficSnapshot {
  std::vector<std::vector<LinkMetrics>> links;  // [sender][receiver]
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;

  double total_megabytes() const {
    return static_cast<double>(total_bytes) / (1024.0 * 1024.0);
  }

  /// Zero every link counter and the totals (the matrix shape is
  /// kept).
  void reset();

  /// Per-link and total deltas since `before` (which must have the
  /// same matrix shape, or be empty).  Lets benches and the metrics
  /// layer measure a section of a run without re-creating transports.
  TrafficSnapshot diff(const TrafficSnapshot& before) const;
};

class Transport;

/// A party's handle onto a transport.  Cheap to copy; thread-affine
/// use is expected (one endpoint per party thread).
class Endpoint {
 public:
  Endpoint() = default;

  PartyId id() const { return id_; }
  int num_parties() const;

  /// Send `payload` to `to` under `tag`.
  void send(PartyId to, const std::string& tag, Bytes payload) const;

  /// Block until a message from `from` with tag `tag` arrives; throws
  /// TimeoutError after the transport's default timeout.
  Bytes recv(PartyId from, const std::string& tag) const;

  /// recv with an explicit timeout override.
  Bytes recv(PartyId from, const std::string& tag,
             std::chrono::milliseconds timeout) const;

  /// Non-blocking probe; returns true and fills `out` if available.
  bool try_recv(PartyId from, const std::string& tag, Bytes& out) const;

 private:
  friend class Transport;
  Endpoint(Transport* transport, PartyId id)
      : transport_(transport), id_(id) {}

  Transport* transport_ = nullptr;
  PartyId id_ = -1;
};

/// Abstract message transport between `num_parties()` actors.
///
/// The low-level send/blocking_recv/probe calls are public so that
/// composite transports (e.g. TcpFabric) can delegate, but protocol
/// code should always go through Endpoint.
class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual int num_parties() const = 0;
  virtual std::chrono::milliseconds default_recv_timeout() const = 0;

  /// Handle for party `id`.  Single-process transports serve every id;
  /// TcpTransport overrides this to reject ids other than its own.
  virtual Endpoint endpoint(PartyId id);

  /// Deliver a fully-formed message (sender/receiver/tag/payload set).
  virtual void send(Message message) = 0;

  /// Block until a (from, tag) match arrives or `timeout` expires
  /// (TimeoutError).
  virtual Bytes blocking_recv(PartyId receiver, PartyId from,
                              const std::string& tag,
                              std::chrono::milliseconds timeout) = 0;

  /// Non-blocking probe for a (from, tag) match.
  virtual bool probe(PartyId receiver, PartyId from, const std::string& tag,
                     Bytes& out) = 0;

  /// Install a transport fault injector (nullptr restores NoFaults).
  virtual void set_fault_injector(std::shared_ptr<FaultInjector> injector) = 0;

  /// Traffic counters since construction or the last reset.
  virtual TrafficSnapshot traffic() const = 0;
  virtual void reset_traffic() = 0;

 protected:
  Transport() = default;

  Endpoint make_endpoint(PartyId id) { return Endpoint(this, id); }
};

/// Shared TimeoutError wording so both transports (and tests matching
/// on the message) agree.
[[noreturn]] void throw_recv_timeout(PartyId receiver, PartyId from,
                                     const std::string& tag);

/// Collapse a message tag into its protocol class for per-class
/// metrics: the last '/'-separated segment ("12/c" -> "c",
/// "7/s2" -> "s2"), falling back to the first segment when the last is
/// purely numeric ("init/3" -> "init", "e/0/p/2" -> "e").  Tags with
/// no '/' map to themselves.
std::string tag_class(const std::string& tag);

}  // namespace trustddl::net
