// Tag-matched mailbox shared by both transports.
//
// One mailbox holds the messages one receiver has pending from one
// sender.  Each message carries an earliest-delivery time: the
// in-memory network stamps `now + emulated latency + fault delay` so
// the *sender* never blocks (emulated latency overlaps across links,
// like real ones), while the TCP reader threads stamp `now` (the wire
// already provided the latency).  recv() only matches messages whose
// delivery time has passed and sleeps until the earliest candidate or
// the deadline, whichever comes first.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

#include "net/message.hpp"

namespace trustddl::net {

class TagMailbox {
 public:
  using Clock = std::chrono::steady_clock;

  /// Enqueue a message that becomes visible to recv/try_recv at
  /// `deliver_at`.
  void push(Message message, Clock::time_point deliver_at);

  /// Wait up to `timeout` for a deliverable message with `tag`;
  /// returns nullopt on expiry (callers map this to TimeoutError).
  std::optional<Bytes> recv(const std::string& tag,
                            std::chrono::milliseconds timeout);

  /// Non-blocking: pop a deliverable message with `tag` if present.
  bool try_recv(const std::string& tag, Bytes& out);

 private:
  struct Entry {
    Message message;
    Clock::time_point deliver_at;
  };

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> pending_;
};

}  // namespace trustddl::net
