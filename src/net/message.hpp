// Message type for the simulated inter-party network.
//
// The paper's implementation used Ray RPC between four machines; this
// repository replaces the transport with an in-process network (see
// DESIGN.md §5) that moves real bytes between party threads and meters
// every link, so communication cost (Table II) is measured, not
// estimated.
#pragma once

#include <string>

#include "common/bytes.hpp"

namespace trustddl::net {

/// Zero-based party index.  The paper's P1, P2, P3 map to 0, 1, 2;
/// auxiliary actors (data owner, model owner) take higher indices.
using PartyId = int;

struct Message {
  PartyId sender = -1;
  PartyId receiver = -1;
  /// Protocol-step tag, e.g. "secmul-bt/17/commit".  Receives match on
  /// (sender, tag) so out-of-order delivery across steps is harmless.
  std::string tag;
  Bytes payload;

  std::size_t wire_size() const { return tag.size() + payload.size() + 16; }
};

}  // namespace trustddl::net
