#include "net/runtime.hpp"

#include <thread>

#include "common/error.hpp"

namespace trustddl::net {

std::vector<PartyOutcome> run_parties(
    int num_parties, const std::function<void(PartyId)>& body, bool rethrow) {
  TRUSTDDL_REQUIRE(num_parties >= 1, "run_parties needs >= 1 party");
  std::vector<PartyOutcome> outcomes(static_cast<std::size_t>(num_parties));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_parties));
  for (int party = 0; party < num_parties; ++party) {
    threads.emplace_back([&, party] {
      try {
        body(party);
      } catch (...) {
        outcomes[static_cast<std::size_t>(party)].ok = false;
        outcomes[static_cast<std::size_t>(party)].error =
            std::current_exception();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  if (rethrow) {
    for (const auto& outcome : outcomes) {
      if (!outcome.ok) {
        std::rethrow_exception(outcome.error);
      }
    }
  }
  return outcomes;
}

}  // namespace trustddl::net
