// Multi-party execution helper: runs one callable per party, each on
// its own thread, and joins them all.  Exceptions thrown by party
// bodies are captured and rethrown on the calling thread (the first
// one, by party index), so tests can assert on protocol failures.
#pragma once

#include <exception>
#include <functional>
#include <vector>

#include "net/message.hpp"

namespace trustddl::net {

/// Result of one party's execution.
struct PartyOutcome {
  bool ok = true;
  std::exception_ptr error;
};

/// Run `body(party)` for party = 0..num_parties-1 concurrently; join
/// all; rethrow the lowest-index failure if `rethrow` is true.
/// Returns per-party outcomes (useful when some parties are *expected*
/// to fail, e.g. abort-style baselines under attack).
std::vector<PartyOutcome> run_parties(
    int num_parties, const std::function<void(PartyId)>& body,
    bool rethrow = true);

}  // namespace trustddl::net
