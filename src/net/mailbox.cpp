#include "net/mailbox.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace trustddl::net {
namespace {

/// Aggregate queued-message depth across every mailbox in the
/// process; the peak is the interesting number (how far receivers
/// fall behind senders).
obs::Gauge& depth_gauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::global().gauge("net.mailbox.depth");
  return gauge;
}

}  // namespace

void TagMailbox::push(Message message, Clock::time_point deliver_at) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(Entry{std::move(message), deliver_at});
  }
  depth_gauge().add(1);
  cv_.notify_all();
}

std::optional<Bytes> TagMailbox::recv(const std::string& tag,
                                      std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    const auto now = Clock::now();
    // The next wake-up is either the deadline or the earliest matching
    // message still in its emulated-latency window.
    auto next_wake = deadline;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->message.tag != tag) {
        continue;
      }
      if (it->deliver_at <= now) {
        Bytes payload = std::move(it->message.payload);
        pending_.erase(it);
        depth_gauge().sub(1);
        return payload;
      }
      next_wake = std::min(next_wake, it->deliver_at);
    }
    // Scanning before this check re-examines the queue once after a
    // timeout, so a notify racing the deadline is never lost.
    if (now >= deadline) {
      return std::nullopt;
    }
    cv_.wait_until(lock, next_wake);
  }
}

bool TagMailbox::try_recv(const std::string& tag, Bytes& out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = Clock::now();
  const auto it = std::find_if(
      pending_.begin(), pending_.end(), [&](const Entry& entry) {
        return entry.message.tag == tag && entry.deliver_at <= now;
      });
  if (it == pending_.end()) {
    return false;
  }
  out = std::move(it->message.payload);
  pending_.erase(it);
  depth_gauge().sub(1);
  return true;
}

}  // namespace trustddl::net
