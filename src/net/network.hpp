// In-process simulated network (the mailbox Transport).
//
// One `Network` hosts N endpoints (one per actor thread).  Each ordered
// pair of endpoints has a mailbox; `Endpoint::recv` blocks until a
// message with a matching (sender, tag) arrives or the timeout expires
// (TimeoutError).  All links are metered: the benchmark harness reads
// bytes/messages per link to report the paper's communication costs.
//
// Latency emulation stamps messages with an earliest-delivery time and
// makes the *receiver* wait, so a sender fanning out to several peers
// pays the link latency once (overlapped), as on real links — not once
// per message.
#pragma once

#include <memory>
#include <vector>

#include "net/mailbox.hpp"
#include "net/transport.hpp"

namespace trustddl::net {

class Network final : public Transport {
 public:
  explicit Network(NetworkConfig config = {});
  ~Network() override = default;

  int num_parties() const override { return config_.num_parties; }
  const NetworkConfig& config() const { return config_; }
  std::chrono::milliseconds default_recv_timeout() const override {
    return config_.recv_timeout;
  }

  void send(Message message) override;
  Bytes blocking_recv(PartyId receiver, PartyId from, const std::string& tag,
                      std::chrono::milliseconds timeout) override;
  bool probe(PartyId receiver, PartyId from, const std::string& tag,
             Bytes& out) override;

  void set_fault_injector(std::shared_ptr<FaultInjector> injector) override;
  TrafficSnapshot traffic() const override;
  void reset_traffic() override;

 private:
  TagMailbox& mailbox(PartyId receiver, PartyId sender) {
    return *mailboxes_[static_cast<std::size_t>(receiver) *
                           static_cast<std::size_t>(config_.num_parties) +
                       static_cast<std::size_t>(sender)];
  }

  NetworkConfig config_;
  std::vector<std::unique_ptr<TagMailbox>> mailboxes_;

  mutable std::mutex metrics_mu_;
  std::vector<std::vector<LinkMetrics>> link_metrics_;

  std::mutex injector_mu_;
  std::shared_ptr<FaultInjector> injector_;
};

}  // namespace trustddl::net
