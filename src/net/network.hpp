// In-process simulated network.
//
// One `Network` hosts N endpoints (one per actor thread).  Each ordered
// pair of endpoints has a mailbox; `Endpoint::recv` blocks until a
// message with a matching (sender, tag) arrives or the timeout expires
// (TimeoutError).  All links are metered: the benchmark harness reads
// bytes/messages per link to report the paper's communication costs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/fault_injector.hpp"
#include "net/message.hpp"

namespace trustddl::net {

struct NetworkConfig {
  int num_parties = 3;
  /// recv() wait bound; protocols treat expiry as a dropped message.
  std::chrono::milliseconds recv_timeout{2000};
  /// If true, the network sleeps `link_latency` per message to emulate
  /// a LAN; off by default so tests stay fast.
  bool emulate_latency = false;
  std::chrono::microseconds link_latency{50};
};

/// Byte/message counters for one directed link.
struct LinkMetrics {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Aggregated traffic snapshot.
struct TrafficSnapshot {
  std::vector<std::vector<LinkMetrics>> links;  // [sender][receiver]
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;

  double total_megabytes() const {
    return static_cast<double>(total_bytes) / (1024.0 * 1024.0);
  }
};

class Network;

/// A party's handle onto the network.  Cheap to copy; thread-affine use
/// is expected (one endpoint per party thread).
class Endpoint {
 public:
  Endpoint() = default;

  PartyId id() const { return id_; }
  int num_parties() const;

  /// Send `payload` to `to` under `tag`.
  void send(PartyId to, const std::string& tag, Bytes payload) const;

  /// Block until a message from `from` with tag `tag` arrives; throws
  /// TimeoutError after the configured timeout.
  Bytes recv(PartyId from, const std::string& tag) const;

  /// recv with an explicit timeout override.
  Bytes recv(PartyId from, const std::string& tag,
             std::chrono::milliseconds timeout) const;

  /// Non-blocking probe; returns true and fills `out` if available.
  bool try_recv(PartyId from, const std::string& tag, Bytes& out) const;

 private:
  friend class Network;
  Endpoint(Network* network, PartyId id) : network_(network), id_(id) {}

  Network* network_ = nullptr;
  PartyId id_ = -1;
};

class Network {
 public:
  explicit Network(NetworkConfig config = {});
  ~Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int num_parties() const { return config_.num_parties; }
  const NetworkConfig& config() const { return config_; }

  Endpoint endpoint(PartyId id);

  /// Install a transport fault injector (nullptr restores NoFaults).
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);

  /// Traffic counters since construction or the last reset.
  TrafficSnapshot traffic() const;
  void reset_traffic();

 private:
  friend class Endpoint;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> pending;
  };

  void deliver(Message message);
  Bytes blocking_recv(PartyId receiver, PartyId from, const std::string& tag,
                      std::chrono::milliseconds timeout);
  bool probe(PartyId receiver, PartyId from, const std::string& tag,
             Bytes& out);

  Mailbox& mailbox(PartyId receiver, PartyId sender) {
    return *mailboxes_[static_cast<std::size_t>(receiver) *
                           static_cast<std::size_t>(config_.num_parties) +
                       static_cast<std::size_t>(sender)];
  }

  NetworkConfig config_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  mutable std::mutex metrics_mu_;
  std::vector<std::vector<LinkMetrics>> link_metrics_;

  std::mutex injector_mu_;
  std::shared_ptr<FaultInjector> injector_;
};

}  // namespace trustddl::net
