#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace trustddl::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "TrustDDL assertion failed: %s at %s:%d %s\n", expr,
               file, line, msg.c_str());
  std::abort();
}

}  // namespace trustddl::detail
