// Minimal leveled logger.
//
// Protocol code logs Byzantine detections and recoveries at `warn`
// level so integration tests and examples can show the recovery path.
// The logger is process-global but all mutable state is behind a mutex
// (CP.2: avoid data races).
//
// Each line carries an ISO-8601 UTC timestamp and, when the logging
// thread has been tagged via `set_thread_party`, a `[pN]` party-id
// prefix — so interleaved lines from the three party threads (or the
// multi-process runner) stay attributable.  Components can be raised
// or lowered individually with `set_component_level`; the TRUSTDDL_LOG
// macro gates on the lock-free floor of all configured levels, so a
// fully disabled level still costs one relaxed atomic load.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <sstream>
#include <string>

namespace trustddl {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-global logging configuration and sink.
class Logger {
 public:
  /// Capture buffer bound: 1 MiB, then a truncation marker.
  static constexpr std::size_t kCaptureLimit = 1u << 20;
  static constexpr const char* kTruncationMarker =
      "[log capture truncated at 1 MiB]\n";

  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Per-component override; takes precedence over the global level
  /// for exact component-name matches.
  void set_component_level(const std::string& component, LogLevel level);
  void clear_component_levels();
  LogLevel effective_level(const std::string& component) const;

  /// Lock-free lower bound of the global level and every component
  /// override — the macro's early-out gate.  A line that passes this
  /// floor is still re-checked against its component's effective
  /// level in write().
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }

  /// Tag the calling thread with a party id (shown as `[pN]`); pass a
  /// negative value to clear.
  static void set_thread_party(int party);

  /// Write one formatted line if `level` is enabled.  Thread safe.
  void write(LogLevel level, const std::string& component,
             const std::string& message);

  /// Capture output into an internal buffer instead of stderr
  /// (used by tests asserting on detection messages).
  void set_capture(bool capture);
  std::string captured() const;
  void clear_captured();

 private:
  Logger() = default;

  void recompute_min_level_locked();

  mutable std::mutex mu_;
  LogLevel level_ = LogLevel::kWarn;
  std::map<std::string, LogLevel> component_levels_;
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kWarn)};
  bool capture_ = false;
  bool capture_truncated_ = false;
  std::string captured_;
};

namespace detail {
struct LogLine {
  LogLevel level;
  const char* component;
  std::ostringstream stream;

  LogLine(LogLevel lvl, const char* comp) : level(lvl), component(comp) {}
  ~LogLine() { Logger::instance().write(level, component, stream.str()); }
};
}  // namespace detail

}  // namespace trustddl

#define TRUSTDDL_LOG(lvl, component)                                       \
  if (static_cast<int>(lvl) <                                              \
      static_cast<int>(::trustddl::Logger::instance().min_level())) {      \
  } else                                                                   \
    ::trustddl::detail::LogLine(lvl, component).stream

#define TRUSTDDL_LOG_DEBUG(component) \
  TRUSTDDL_LOG(::trustddl::LogLevel::kDebug, component)
#define TRUSTDDL_LOG_INFO(component) \
  TRUSTDDL_LOG(::trustddl::LogLevel::kInfo, component)
#define TRUSTDDL_LOG_WARN(component) \
  TRUSTDDL_LOG(::trustddl::LogLevel::kWarn, component)
#define TRUSTDDL_LOG_ERROR(component) \
  TRUSTDDL_LOG(::trustddl::LogLevel::kError, component)
