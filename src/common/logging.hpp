// Minimal leveled logger.
//
// Protocol code logs Byzantine detections and recoveries at `warn`
// level so integration tests and examples can show the recovery path.
// The logger is process-global but all mutable state is behind a mutex
// (CP.2: avoid data races).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace trustddl {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-global logging configuration and sink.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Write one formatted line if `level` is enabled.  Thread safe.
  void write(LogLevel level, const std::string& component,
             const std::string& message);

  /// Capture output into an internal buffer instead of stderr
  /// (used by tests asserting on detection messages).
  void set_capture(bool capture);
  std::string captured() const;
  void clear_captured();

 private:
  Logger() = default;

  mutable std::mutex mu_;
  LogLevel level_ = LogLevel::kWarn;
  bool capture_ = false;
  std::string captured_;
};

namespace detail {
struct LogLine {
  LogLevel level;
  const char* component;
  std::ostringstream stream;

  LogLine(LogLevel lvl, const char* comp) : level(lvl), component(comp) {}
  ~LogLine() { Logger::instance().write(level, component, stream.str()); }
};
}  // namespace detail

}  // namespace trustddl

#define TRUSTDDL_LOG(lvl, component)                                       \
  if (static_cast<int>(lvl) <                                              \
      static_cast<int>(::trustddl::Logger::instance().level())) {          \
  } else                                                                   \
    ::trustddl::detail::LogLine(lvl, component).stream

#define TRUSTDDL_LOG_DEBUG(component) \
  TRUSTDDL_LOG(::trustddl::LogLevel::kDebug, component)
#define TRUSTDDL_LOG_INFO(component) \
  TRUSTDDL_LOG(::trustddl::LogLevel::kInfo, component)
#define TRUSTDDL_LOG_WARN(component) \
  TRUSTDDL_LOG(::trustddl::LogLevel::kWarn, component)
#define TRUSTDDL_LOG_ERROR(component) \
  TRUSTDDL_LOG(::trustddl::LogLevel::kError, component)
